GO ?= go

.PHONY: build test vet race verify bench bench-curve bench-gate chaos soak recycle-soak fleet-soak serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Data-race check over the packages the datapath fast path touches most,
# plus the telemetry layer (concurrent Snapshot vs a running sim), plus the
# blocking-bridge layers (host TCP, hostnet facade — alien goroutines vs
# the event loop), plus the control planes whose goroutines cross the sim
# boundary (ops driver/dead-man switch, supervision tree, raw-iron
# lifecycle), plus the shard-determinism property (full chaos soak at
# 1/2/4 workers — the run that actually exercises cross-domain
# synchronization under load).
race:
	$(GO) test -race ./internal/gateway ./internal/netsim ./internal/sim \
		./internal/obs ./internal/farm ./internal/host ./internal/hostnet \
		./internal/ops ./internal/supervisor ./internal/rawiron
	$(GO) test -race -run TestShardDeterminism ./internal/experiments -count=1

# Tier-1 verification recipe (see ROADMAP.md).
verify: build vet test race

# Chaos soak: the Botfarm demo under the "soak" fault profile (≥5% loss,
# reorder/dup/corruption, link flaps, a CS crash, verdict stalls, a sink
# outage) on two pinned seeds, run twice each — the journals must be
# byte-identical and every graceful-degradation invariant must hold.
chaos:
	$(GO) test -run TestChaosSoak ./internal/experiments -count=1 -v

# Recovery soak: the supervised kill-storm (3-member containment cluster,
# six round-robin CS kills) on two pinned seeds at 1 and 4 workers under
# the race detector, plus the workers-1/2/4 determinism proof (byte-equal
# journals, identical recovery intervals and health histories). Every kill
# must be detected by missed heartbeats, failed over fail-closed, and
# repaired within the recovery bound with zero probe escapes.
soak:
	$(GO) test -race -run 'TestRecoverySoak' ./internal/experiments -count=1 -v

# Recycling soak: three subfarms of raw-iron inmates cycling detonate →
# capture → reimage → re-admit under the "reimage" fault profile (hung
# netboots, stalled/corrupted transfers, stuck power ports) at 1/2/4
# workers. Every injected fault must end in a retry or a breaker
# quarantine — no wedged machines — the cycle floors must hold, flow
# tables must drain, no probe traffic may escape, and the journals must
# be byte-identical across worker counts.
recycle-soak:
	$(GO) test -run TestRecycleSoak ./internal/experiments -count=1 -v

# Fleet lockdown soak: three supervised subfarms under the "blackout"
# profile — sink crashes, a controller hang, a recycler wedge, and a
# containment-server kill storm past alpha's circuit breaker. The
# supervision tree must recover every survivable fault, escalate the
# unsurvivable one through subfarm fail-closed lockdown to global
# dead-man lockdown, hold zero probe escapes before/during/after the
# lockdown, and drain every flow table empty — with byte-identical
# journals and DeepEqual escalation records at 1/2/4 workers on both the
# single-internet and two-shard external topologies.
fleet-soak:
	$(GO) test -race -run TestFleetLockdownSoak ./internal/experiments -count=1 -v

# Serve-mode smoke: boot `gqfarm -serve` with raw-iron inmates, poll
# /healthz, scrape /metrics in both machine formats, list /machines, read
# one SSE event, POST a policy swap, force one recycle, then SIGTERM and
# require a clean exit 0.
serve-smoke:
	./scripts/serve_smoke.sh

# Benchmark the gateway datapath and merge the results into
# BENCH_gateway.json under $(BENCH_LABEL), alongside prior sections.
BENCH_LABEL ?= fastpath
BENCH_OUT   ?= BENCH_gateway.json

bench:
	$(GO) test -run '^$$' -bench 'ScalabilityGateway|Ablation|ShardedFarmDense' -benchmem -benchtime 3x . \
		| $(GO) run ./scripts/benchjson -label $(BENCH_LABEL) -out $(BENCH_OUT)
	$(GO) test -run '^$$' -bench SupervisorRecovery -benchmem -benchtime 3x . \
		| $(GO) run ./scripts/benchjson -label supervisor -out $(BENCH_OUT)
	$(GO) test -run '^$$' -bench RecyclePipeline -benchmem -benchtime 3x . \
		| $(GO) run ./scripts/benchjson -label recycle -out $(BENCH_OUT)
	$(GO) test -run '^$$' -bench LockdownEscalation -benchmem -benchtime 3x . \
		| $(GO) run ./scripts/benchjson -label lockdown -out $(BENCH_OUT)

# Scaling curve: the dense sharded farm (serial vs sharded vs external
# shards) and the parallel gateway datapath at 1, 2, and 4 CPUs,
# recorded side by side under the "curve" section. Benchmark names
# carry go test's -N GOMAXPROCS suffix, so one section holds every
# point of the curve and the gate only ever compares like-for-like
# CPU counts.
bench-curve:
	$(GO) test -run '^$$' -bench 'ShardedFarmDense|ScalabilityGatewayParallel' -benchmem -benchtime 1x -cpu 1,2,4 . \
		| $(GO) run ./scripts/benchjson -label curve -out $(BENCH_OUT)

# Allocation gate for the gateway fast path: re-run the scalability
# benchmarks and fail if allocs/op regressed more than 5% against the
# stored $(BENCH_LABEL) section (ns/op is reported, not gated). The
# supervisor section additionally gates recovery_ms — virtual crash-to-
# healthy time, deterministic per seed — at 5%, and the recycle section
# gates specimens_day (virtual recycling throughput, higher is better)
# against a 5% decrease. Run this alongside `make verify` before landing
# datapath, supervision, or lifecycle changes.
bench-gate:
	$(GO) test -run '^$$' -bench ScalabilityGateway -benchmem -benchtime 3x . \
		| $(GO) run ./scripts/benchjson -compare $(BENCH_LABEL) -out $(BENCH_OUT)
	$(GO) test -run '^$$' -bench SupervisorRecovery -benchmem -benchtime 3x . \
		| $(GO) run ./scripts/benchjson -compare supervisor -out $(BENCH_OUT) -max-recovery-regress 5
	$(GO) test -run '^$$' -bench RecyclePipeline -benchmem -benchtime 3x . \
		| $(GO) run ./scripts/benchjson -compare recycle -out $(BENCH_OUT) -max-specimens-regress 5
	$(GO) test -run '^$$' -bench LockdownEscalation -benchmem -benchtime 3x . \
		| $(GO) run ./scripts/benchjson -compare lockdown -out $(BENCH_OUT) -max-lockdown-regress 5
