GO ?= go

.PHONY: build test vet race verify bench bench-gate chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Data-race check over the packages the datapath fast path touches most,
# plus the telemetry layer (concurrent Snapshot vs a running sim), plus the
# shard-determinism property (full chaos soak at 1/2/4 workers — the run
# that actually exercises cross-domain synchronization under load).
race:
	$(GO) test -race ./internal/gateway ./internal/netsim ./internal/sim \
		./internal/obs ./internal/farm
	$(GO) test -race -run TestShardDeterminism ./internal/experiments -count=1

# Tier-1 verification recipe (see ROADMAP.md).
verify: build vet test race

# Chaos soak: the Botfarm demo under the "soak" fault profile (≥5% loss,
# reorder/dup/corruption, link flaps, a CS crash, verdict stalls, a sink
# outage) on two pinned seeds, run twice each — the journals must be
# byte-identical and every graceful-degradation invariant must hold.
chaos:
	$(GO) test -run TestChaosSoak ./internal/experiments -count=1 -v

# Benchmark the gateway datapath and merge the results into
# BENCH_gateway.json under $(BENCH_LABEL), alongside prior sections.
BENCH_LABEL ?= fastpath
BENCH_OUT   ?= BENCH_gateway.json

bench:
	$(GO) test -run '^$$' -bench 'ScalabilityGateway|Ablation|ShardedFarmDense' -benchmem -benchtime 3x . \
		| $(GO) run ./scripts/benchjson -label $(BENCH_LABEL) -out $(BENCH_OUT)

# Allocation gate for the gateway fast path: re-run the scalability
# benchmarks and fail if allocs/op regressed more than 5% against the
# stored $(BENCH_LABEL) section (ns/op is reported, not gated). Run this
# alongside `make verify` before landing datapath changes.
bench-gate:
	$(GO) test -run '^$$' -bench ScalabilityGateway -benchmem -benchtime 3x . \
		| $(GO) run ./scripts/benchjson -compare $(BENCH_LABEL) -out $(BENCH_OUT)
