GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Data-race check over the packages the datapath fast path touches most.
race:
	$(GO) test -race ./internal/gateway ./internal/netsim ./internal/sim

# Tier-1 verification recipe (see ROADMAP.md).
verify: build vet test race

# Benchmark the gateway datapath and merge the results into
# BENCH_gateway.json under $(BENCH_LABEL), alongside prior sections.
BENCH_LABEL ?= fastpath
BENCH_OUT   ?= BENCH_gateway.json

bench:
	$(GO) test -run '^$$' -bench 'ScalabilityGateway|Ablation' -benchmem -benchtime 3x . \
		| $(GO) run ./scripts/benchjson -label $(BENCH_LABEL) -out $(BENCH_OUT)
