module gq

go 1.22
