// Verifycontainment: the §4/§8 "verifiable containment" workflow as a
// library user sees it. An analyst has drafted a custom policy for a new
// specimen; before deploying it they (1) audit the verdicts it would issue
// against declarative safety rules and (2) probe a live farm running the
// policy with canary traffic, accounting for every byte that escapes.
package main

import (
	"fmt"
	"time"

	"gq"
	"gq/internal/farm"
	"gq/internal/netstack"
	"gq/internal/policy"
	"gq/internal/shim"
)

// draftPolicy is the analyst's first attempt for a specimen whose C&C
// looked like "HTTP to anywhere": it naively forwards all port-80 traffic
// — the §3 anti-pattern ("generally opening up HTTP would be overzealous,
// as malware might use HTTP both for C&C as well as a burst of SQL
// injection attacks").
type draftPolicy struct{ env *gq.PolicyEnv }

func (draftPolicy) Name() string { return "DraftHTTPOnly" }
func (p draftPolicy) Decide(req *shim.Request) gq.Decision {
	if req.RespPort == 80 {
		return gq.Decision{Verdict: gq.Forward, Annotation: "assumed C&C"}
	}
	sink := p.env.Service(policy.SvcCatchAllSink)
	return gq.Decision{Verdict: gq.Reflect, RespIP: sink.Addr, RespPort: req.RespPort}
}

// tightPolicy is the revision after verification: only the one confirmed
// C&C host keeps its lifeline.
type tightPolicy struct{ env *gq.PolicyEnv }

func (tightPolicy) Name() string { return "TightCC" }
func (p tightPolicy) Decide(req *shim.Request) gq.Decision {
	cc := p.env.CC("Mystery")
	if req.RespIP == cc.Addr && req.RespPort == cc.Port {
		return gq.Decision{Verdict: gq.Forward, Annotation: "confirmed C&C"}
	}
	sink := p.env.Service(policy.SvcCatchAllSink)
	return gq.Decision{Verdict: gq.Reflect, RespIP: sink.Addr, RespPort: req.RespPort}
}

func init() {
	gq.RegisterPolicy("DraftHTTPOnly", func(env *gq.PolicyEnv) gq.Decider { return draftPolicy{env} })
	gq.RegisterPolicy("TightCC", func(env *gq.PolicyEnv) gq.Decider { return tightPolicy{env} })
}

func verify(name string) (violations int, escapes []string) {
	env := &gq.PolicyEnv{
		Services: map[string]gq.AddrPort{
			policy.SvcCatchAllSink: {Addr: gq.MustParseAddr("10.3.0.2")},
		},
		InternalPrefix: gq.MustParsePrefix("10.0.0.0/16"),
		CCHosts:        map[string]gq.AddrPort{"Mystery": {Addr: gq.MustParseAddr("50.8.207.91"), Port: 80}},
	}
	d, err := gq.NewPolicy(name, env)
	if err != nil {
		panic(err)
	}

	// Phase 1: static audit.
	prober := &policy.Prober{Cases: policy.DefaultCases(env), Rules: policy.StandardSafetyRules(env)}
	vs, hist := prober.Verify(d)
	fmt.Print(policy.Report(name, vs, hist))

	// Phase 2: live canary probe.
	f := gq.NewFarm(5)
	sf, err := f.AddSubfarm(gq.SubfarmConfig{
		Name: "verify", VLANLo: 16, VLANHi: 20,
		GlobalPool:     gq.MustParsePrefix("192.0.2.0/24"),
		FallbackPolicy: name,
		CCHosts:        env.CCHosts,
	})
	if err != nil {
		panic(err)
	}
	out, err := farm.RunContainmentProbe(f, sf, append(farm.DefaultProbeTargets(),
		farm.ProbeTarget{Addr: netstack.MustParseAddr("50.8.207.91"), Port: 80}), 3*time.Minute)
	if err != nil {
		panic(err)
	}
	fmt.Printf("live probe: %s\n\n", out)
	return len(vs), out.Escaped()
}

func main() {
	fmt.Println("=== iteration 1: the draft policy ===")
	_, escapes := verify("DraftHTTPOnly")
	fmt.Printf("the probe caught HTTP escaping to arbitrary hosts: %v\n", escapes)
	fmt.Println("-> too broad; narrow the whitelist to the confirmed C&C host.")
	fmt.Println()

	fmt.Println("=== iteration 2: the tightened policy ===")
	_, escapes = verify("TightCC")
	fmt.Printf("remaining escapes (should be only the C&C lifeline): %v\n", escapes)
}
