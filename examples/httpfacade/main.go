// httpfacade: unmodified stdlib HTTP through the containment farm.
//
// The hostnet facade turns a simulated host's callback TCP stack into
// blocking net.Conn / net.Listener / DialContext, so ordinary Go protocol
// code runs inside the farm unchanged. Here the HTTP sink is a real
// net/http server (SubfarmConfig.StdlibHTTPSink) and the "specimen" is a
// real http.Client issuing click-fraud requests from an inmate — the
// Clickbot policy REFLECTs them into the sink, and the client cannot tell.
//
// Because the stdlib spawns its own goroutines, the simulation is driven
// with Pump instead of Run: alien goroutines inject their operations into
// the event loop and virtual time advances only when the farm has work.
// See DESIGN.md §3g for the two facade disciplines.
package main

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"gq"
	"gq/internal/farm"
	"gq/internal/hostnet"
)

func main() {
	f := gq.NewFarm(7)

	sf, err := f.AddSubfarm(gq.SubfarmConfig{
		Name:   "clickfarm",
		VLANLo: 16, VLANHi: 20,
		GlobalPool:     gq.MustParsePrefix("192.0.2.0/24"),
		PolicyConfig:   "[VLAN 16-20]\nDecider = Clickbot\n",
		StdlibHTTPSink: true, // net/http server over the facade
	})
	if err != nil {
		panic(err)
	}

	// The boot hook just signals the click loop below; no auto-infection.
	var booted atomic.Bool
	sf.OnBootHook = func(fi *farm.FarmInmate) { booted.Store(true) }
	fi, err := sf.AddInmate("clicker-0")
	if err != nil {
		panic(err)
	}

	// The specimen: a plain http.Client whose DialContext is the inmate
	// host's facade. Everything below the Transport is stock library code.
	stack := hostnet.New(fi.Host)
	var done atomic.Bool
	go func() {
		defer done.Store(true)
		for !booted.Load() {
			time.Sleep(time.Millisecond)
		}
		client := &http.Client{Transport: &http.Transport{
			DialContext:       stack.DialContext,
			DisableKeepAlives: true,
		}}
		for i := 0; i < 5; i++ {
			url := fmt.Sprintf("http://198.51.100.10/ads/click?campaign=%d", i)
			resp, err := client.Get(url)
			if err != nil {
				fmt.Printf("  click %d failed: %v\n", i, err)
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			fmt.Printf("  click %d: HTTP %d from %q\n", i, resp.StatusCode, url)
		}
	}()

	// Pump until the clicks are done (bounded by a virtual hour).
	f.Sim.Pump(time.Hour, done.Load)

	sink := sf.HTTPServerSink
	fmt.Printf("\nstdlib HTTP sink answered %d requests:\n", sink.Hits())
	for _, u := range sink.URLs() {
		fmt.Printf("  %s\n", u)
	}
	fmt.Println("\nEvery click got a well-formed 200 — none reached 198.51.100.10.")
}
