// Spambotfarm: the paper's Fig. 6/Fig. 7 "Botfarm" built against the
// public API — Rustock and Grum inmates under per-family containment
// policies, auto-infection from sample batches, SMTP sinks harvesting the
// spam, activity triggers reverting quiet inmates, and the Fig. 7 report.
package main

import (
	"fmt"
	"time"

	"gq"
	"gq/internal/malware"
	"gq/internal/netstack"
	"gq/internal/smtpx"
)

const botfarmConfig = `[VLAN 16-17]
Decider = Rustock
Infection = rustock.100921.*.exe

[VLAN 18-19]
Decider = Grum
Infection = grum.100818.*.exe

[VLAN 16-19]
Trigger = *:25/tcp / 30min < 1 -> revert
`

func main() {
	f := gq.NewFarm(42)

	// Botmaster-side infrastructure on the simulated Internet.
	ccAddr := gq.MustParseAddr("50.8.207.91") // the SteepHost.Net C&C of Fig. 7
	ccHost := f.AddExternalHost("steephost", ccAddr)
	if _, err := malware.NewCCServer(ccHost, malware.CCConfig{
		Template: "vip pharmacy",
		Targets: []netstack.Addr{
			gq.MustParseAddr("203.0.113.25"),
			gq.MustParseAddr("203.0.113.26"),
		},
		Forbidden: []string{"DDOS 203.0.113.99", "PROXY 203.0.113.98:1080"},
	}); err != nil {
		panic(err)
	}

	sf, err := f.AddSubfarm(gq.SubfarmConfig{
		Name:   "Botfarm",
		VLANLo: 16, VLANHi: 24,
		ServiceVLAN:  11,
		GlobalPool:   gq.MustParsePrefix("192.0.2.0/24"),
		InfraPool:    gq.MustParsePrefix("192.0.9.0/24"),
		PolicyConfig: botfarmConfig,
		SampleLibrary: []*gq.Sample{
			gq.NewSample("rustock.100921.001.exe", "rustock", []byte("MZ-rustock-1")),
			gq.NewSample("rustock.100921.002.exe", "rustock", []byte("MZ-rustock-2")),
			gq.NewSample("grum.100818.001.exe", "grum", []byte("MZ-grum-1")),
		},
		RepeatBatches: true,
		CCHosts: map[string]gq.AddrPort{
			"Rustock": {Addr: ccAddr, Port: 443},
			"Grum":    {Addr: ccAddr, Port: 80},
		},
		SinkDropProb:   0.35, // Fig. 7: flows exceed completed sessions
		SinkStrictness: smtpx.Lenient,
	})
	if err != nil {
		panic(err)
	}

	for i := 0; i < 4; i++ {
		if _, err := sf.AddInmate(fmt.Sprintf("bot-%d", i)); err != nil {
			panic(err)
		}
	}

	fmt.Println("running the Botfarm for 2 virtual hours...")
	f.Run(2 * time.Hour)

	fmt.Println(f.Reporter(true).Generate())

	fmt.Printf("harvested spam: %d envelopes at the simple sink, %d at the banner sink\n",
		len(sf.SMTPSink.Envelopes), len(sf.BannerSink.Envelopes))
	if len(sf.SMTPSink.Envelopes) > 0 {
		env := sf.SMTPSink.Envelopes[0]
		fmt.Printf("first harvested message: HELO=%q FROM=%q RCPT=%v\n",
			env.Helo, env.From, env.Rcpts)
	}
	fmt.Printf("life-cycle actions handled by the inmate controller: %d\n",
		len(f.Controller.Log))
}
