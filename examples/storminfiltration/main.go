// Storminfiltration: the §7.1 "unexpected visitors" discovery. A Storm
// C&C-relaying proxy bot runs with outside reachability preserved (the
// requirement for becoming a relay agent) and all non-C&C outbound
// activity reflected to the catch-all sink. When an upstream botmaster
// pushes an FTP iframe-injection job through the proxy, the sink — not the
// victim web server — receives the attack.
package main

import (
	"fmt"
	"time"

	"gq"
	"gq/internal/malware"
	"gq/internal/nat"
)

func main() {
	f := gq.NewFarm(7)

	ccAddr := gq.MustParseAddr("198.51.100.80")
	f.AddExternalHost("storm-cc", ccAddr)
	masterHost := f.AddExternalHost("botmaster", gq.MustParseAddr("198.51.100.90"))
	// The would-be victim: a small business FTP/web host. Under proper
	// containment it never hears from our proxy.
	f.AddExternalHost("victim-site", gq.MustParseAddr("203.0.113.21"))

	sf, err := f.AddSubfarm(gq.SubfarmConfig{
		Name:   "Stormfarm",
		VLANLo: 40, VLANHi: 44,
		ServiceVLAN:  13,
		GlobalPool:   gq.MustParsePrefix("192.0.3.0/24"),
		InboundMode:  nat.ForwardInbound, // proxies must be reachable
		PolicyConfig: "[VLAN 40-44]\nDecider = Storm\nInfection = storm.*.exe\n",
		SampleLibrary: []*gq.Sample{
			gq.NewSample("storm.080601.exe", "storm-proxy", []byte("MZ-storm")),
		},
		RepeatBatches: true,
		CCHosts:       map[string]gq.AddrPort{"Storm": {Addr: ccAddr, Port: 80}},
	})
	if err != nil {
		panic(err)
	}
	bot, err := sf.AddInmate("storm-proxy-0")
	if err != nil {
		panic(err)
	}

	f.Run(2 * time.Minute)
	fmt.Printf("proxy bot infected with %s, reachable at %s\n",
		bot.SampleName, sf.Router.NAT().ByVLAN(bot.VLAN).Global)

	// June 2008: the upstream botmaster has new plans for "harmless"
	// proxy bots.
	master := malware.NewStormMaster(masterHost)
	master.SendRelayJob(sf.Router.NAT().ByVLAN(bot.VLAN).Global,
		gq.MustParseAddr("203.0.113.21"), 21, []byte(malware.FTPInjectionPayload))
	f.Run(5 * time.Minute)

	proxy := bot.Specimen.(*malware.StormProxy)
	fmt.Printf("\nproxy received %d relay job(s) and opened %d outbound relay(s)\n",
		proxy.JobsReceived, proxy.RelaysOpened)

	hits := sf.CatchAll.FlowsMatching("iframe")
	if len(hits) == 0 {
		fmt.Println("no injection observed — containment failed?!")
		return
	}
	fmt.Println("\ncatch-all sink captured the relayed attack instead of the victim:")
	for _, h := range hits {
		fmt.Printf("  flow to port %d from %s:\n  %q\n", h.Port, h.Src, h.First)
	}
	fmt.Println("\n\"At the time, articles on Storm frequently stated that its proxy")
	fmt.Println("bots did not themselves engage in malicious activity, and a")
	fmt.Println("correspondingly loose containment policy would have allowed these")
	fmt.Println("attacks to proceed unhindered.\" — §7.1")
}
