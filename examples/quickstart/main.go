// Quickstart: the smallest useful GQ farm. One subfarm under a
// default-deny policy, one inmate that tries to phone home at boot, and a
// look at the per-flow containment verdicts that resulted.
package main

import (
	"fmt"
	"time"

	"gq"
	"gq/internal/farm"
)

func main() {
	f := gq.NewFarm(1)

	// A would-be C&C server on the simulated Internet. Under default-deny
	// nothing will ever reach it.
	cc := f.AddExternalHost("evil-cc", gq.MustParseAddr("203.0.113.5"))
	_ = cc

	sf, err := f.AddSubfarm(gq.SubfarmConfig{
		Name:   "quickstart",
		VLANLo: 16, VLANHi: 20,
		GlobalPool: gq.MustParsePrefix("192.0.2.0/24"),
		// No policy config: everything falls to the DefaultDeny fallback,
		// which reflects traffic to the catch-all sink so we can observe
		// the specimen without letting it reach anyone.
	})
	if err != nil {
		panic(err)
	}

	// Instead of real malware, the inmate runs a probe at boot: it tries
	// HTTP to the C&C, an SMTP delivery, and an IRC-ish port.
	sf.OnBootHook = func(fi *farm.FarmInmate) {
		for _, port := range []uint16{80, 25, 6667} {
			c := fi.Host.Dial(gq.MustParseAddr("203.0.113.5"), port)
			p := port
			c.OnConnect = func() {
				c.Write([]byte(fmt.Sprintf("phone-home on port %d\n", p)))
			}
		}
	}
	if _, err := sf.AddInmate("specimen-0"); err != nil {
		panic(err)
	}

	f.Run(1 * time.Minute)

	fmt.Println("Per-flow containment verdicts:")
	for _, rec := range sf.Router.Records() {
		if rec.Verdict == 0 {
			continue
		}
		fmt.Printf("  %s:%d -> %s:%d  %-8s policy=%s (%s)\n",
			rec.OrigIP, rec.OrigPort, rec.RespIP, rec.RespPort,
			rec.Verdict, rec.Policy, rec.Annotation)
	}
	fmt.Printf("\nCatch-all sink observed %d flows; first bytes of each:\n", sf.CatchAll.TCPConns)
	for _, fl := range sf.CatchAll.Flows {
		fmt.Printf("  port %-5d %q\n", fl.Port, fl.First)
	}
	fmt.Println("\nNothing reached 203.0.113.5 — that is the point.")
}
