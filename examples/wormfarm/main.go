// Wormfarm: the original 2006 worm-capturing honeyfarm (§2, Table 1).
// Honeypot inmates present vulnerable services; an external seed infection
// arrives through the inbound path; the WormCapture policy redirects all
// outbound propagation attempts back into the farm, so infection chains —
// and with them incubation periods — become measurable.
package main

import (
	"fmt"
	"time"

	"gq"
	"gq/internal/malware"
)

func main() {
	fmt.Println("Reproducing a Table 1 subset (one capture per family is slow enough to watch):")
	fmt.Printf("%-16s %-22s %8s %8s %12s %12s\n",
		"EXECUTABLE", "WORM NAME", "CONNS", "EVENTS", "INCUB(paper)", "INCUB(meas)")

	// One representative per family keeps the example snappy.
	seen := map[string]bool{}
	var specs []malware.WormSpec
	for _, w := range malware.Table1 {
		key := w.Executable + w.Name
		if seen[key] {
			continue
		}
		seen[key] = true
		specs = append(specs, w)
		if len(specs) == 8 {
			break
		}
	}

	for i, spec := range specs {
		e, err := gq.NewWormExperiment(int64(100+i), spec, 4)
		if err != nil {
			panic(err)
		}
		e.Farm.Run(30 * time.Second) // boot, DHCP, bindings
		e.Seed()
		e.Farm.Run(20 * time.Minute)

		res := e.Result()
		fmt.Printf("%-16s %-22s %8d %8d %11.1fs %11.1fs\n",
			spec.Executable, spec.Name, spec.Conns, res.Events,
			spec.Incubation.Seconds(), res.Incubation.Seconds())
	}

	fmt.Println("\nNote how fast incubators (Korgo-class, seconds) rack up events while")
	fmt.Println("slow ones (Spybot-class, minutes) barely re-propagate — the paper's")
	fmt.Println("argument for long-duration execution.")
}
