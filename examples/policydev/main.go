// Policydev: the §3 methodology for developing containment policies —
// "beginning from a complete default-deny of interaction with the outside
// world", observing the specimen at the sink, then iteratively
// whitelisting understood activity in the most narrow fashion possible
// until just the C&C lifeline reaches the Internet.
package main

import (
	"fmt"
	"time"

	"gq"
	"gq/internal/malware"
	"gq/internal/netstack"
	"gq/internal/smtpx"
)

// iterate runs a fresh farm with the named policy over the mystery sample
// and reports what the analyst would see.
func iterate(step int, policyName, note string) {
	fmt.Printf("--- iteration %d: policy %s ---\n%s\n", step, policyName, note)

	f := gq.NewFarm(int64(70 + step))
	ccAddr := gq.MustParseAddr("50.8.207.91")
	ccHost := f.AddExternalHost("unknown-host", ccAddr)
	cc, err := malware.NewCCServer(ccHost, malware.CCConfig{
		Template: "mystery spam",
		Targets:  []netstack.Addr{gq.MustParseAddr("203.0.113.25")},
	})
	if err != nil {
		panic(err)
	}

	sf, err := f.AddSubfarm(gq.SubfarmConfig{
		Name:   "development", // the paper's "development" vs "deployment" split
		VLANLo: 30, VLANHi: 34,
		ServiceVLAN:  12,
		GlobalPool:   gq.MustParsePrefix("192.0.2.0/24"),
		PolicyConfig: "[VLAN 30-34]\nDecider = " + policyName + "\nInfection = mystery.*.exe\n",
		SampleLibrary: []*gq.Sample{
			gq.NewSample("mystery.100818.exe", "grum", []byte("MZ-unknown")),
		},
		RepeatBatches:  true,
		CCHosts:        map[string]gq.AddrPort{"Grum": {Addr: ccAddr, Port: 80}},
		SinkStrictness: smtpx.Lenient,
	})
	if err != nil {
		panic(err)
	}
	if _, err := sf.AddInmate("mystery-0"); err != nil {
		panic(err)
	}
	f.Run(30 * time.Minute)

	// What the analyst inspects after each run:
	byAnn := map[string]int{}
	for _, rec := range sf.Router.Records() {
		if rec.Verdict != 0 {
			byAnn[fmt.Sprintf("%-8s %s (dst port %d)", rec.Verdict, rec.Annotation, rec.RespPort)]++
		}
	}
	for line, n := range byAnn {
		fmt.Printf("  %4dx %s\n", n, line)
	}
	fmt.Printf("  sink flows: %d (catch-all), SMTP sessions harvested: %d, C&C check-ins upstream: %d\n\n",
		sf.CatchAll.TCPConns, sf.SMTPSink.Sessions+sf.BannerSink.Sessions, cc.HTTPGets)
}

func main() {
	fmt.Println("Iterative containment development (§3): default-deny first, then")
	fmt.Println("whitelist believed-safe traffic in the most narrow fashion possible.")
	fmt.Println()

	iterate(1, "DefaultDeny",
		"Everything reflects to the sink. The specimen comes alive enough to\n"+
			"show us its attempted communication: HTTP polls to one fixed host\n"+
			"(candidate C&C) and a stream of SMTP connections (the payload).")

	iterate(2, "SpambotBase",
		"We understand the SMTP burst now: reflect it to a proper SMTP sink to\n"+
			"harvest the spam. The HTTP candidate C&C still reflects — the bot\n"+
			"gets no instructions, so activity stays thin.")

	iterate(3, "Grum",
		"The HTTP traffic to 50.8.207.91 matched Grum's C&C URL structure, so\n"+
			"we whitelist exactly that host:port (\"generally opening up HTTP\n"+
			"would be overzealous\"). The C&C lifeline is live; everything\n"+
			"malicious stays inside.")

	fmt.Println("Far from being a chore, the iterations themselves mapped the")
	fmt.Println("specimen's behavioural envelope — which is the paper's point.")
}
