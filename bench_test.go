package gq_test

// One benchmark per paper artifact (see DESIGN.md §3): each regenerates
// its table or figure end-to-end inside the timed loop, so the reported
// time is the full cost of reproducing that result. The Ablation*
// benchmarks quantify the design choices DESIGN.md §4 calls out.

import (
	"fmt"
	"testing"
	"time"

	"gq/internal/containment"
	"gq/internal/experiments"
	"gq/internal/farm"
	"gq/internal/host"
	"gq/internal/malware"
	"gq/internal/netstack"
	"gq/internal/policy"
	"gq/internal/shim"
	"gq/internal/smtpx"
	"gq/internal/supervisor"
)

// BenchmarkTable1WormCapture reproduces one Table 1 capture per iteration:
// a fresh honeyfarm, external seeding, and a contained infection chain.
func BenchmarkTable1WormCapture(b *testing.B) {
	spec := malware.Table1[28] // W32.Korgo.Q
	for i := 0; i < b.N; i++ {
		e, err := farm.NewWormExperiment(int64(i), spec, 4)
		if err != nil {
			b.Fatal(err)
		}
		e.Farm.Run(30 * time.Second)
		e.Seed()
		e.Farm.Run(5 * time.Minute)
		if len(e.Infections) < 2 {
			b.Fatalf("iteration %d: chain never formed", i)
		}
	}
}

// BenchmarkFigure1FarmBoot measures assembling the Fig. 1 architecture and
// booting an inmate through DHCP and auto-infection.
func BenchmarkFigure1FarmBoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := farm.New(int64(i))
		sf, err := f.AddSubfarm(farm.SubfarmConfig{
			Name: "boot", VLANLo: 16, VLANHi: 20,
			GlobalPool:   netstack.MustParsePrefix("192.0.2.0/24"),
			PolicyConfig: "[VLAN 16-20]\nDecider = DefaultDeny\nInfection = *.exe\n",
			SampleLibrary: []*policy.Sample{
				policy.NewSample("x.exe", "rustock", []byte("MZ")),
			},
			RepeatBatches: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		bot, err := sf.AddInmate("bot")
		if err != nil {
			b.Fatal(err)
		}
		f.Run(30 * time.Second)
		if bot.Family == "" {
			b.Fatal("inmate never infected")
		}
	}
}

// BenchmarkFigure2FlowModes regenerates the six flow-manipulation modes.
func BenchmarkFigure2FlowModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, _, err := experiments.RunFigure2(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if !r.OK {
				b.Fatalf("mode %s failed", r.Mode)
			}
		}
	}
}

// BenchmarkFigure3Subfarms runs three parallel independent subfarms on one
// gateway.
func BenchmarkFigure3Subfarms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.RunScalabilityGateway(int64(i), [][2]int{{3, 2}}, 10*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if pts[0].FlowsAdjudicated == 0 {
			b.Fatal("no flows")
		}
	}
}

// BenchmarkFigure4ShimCodec measures the shim protocol's wire codec.
func BenchmarkFigure4ShimCodec(b *testing.B) {
	req := &shim.Request{
		OrigIP: netstack.MustParseAddr("10.0.0.23"), RespIP: netstack.MustParseAddr("192.150.187.12"),
		OrigPort: 1234, RespPort: 80, VLAN: 12, NoncePort: 42,
	}
	resp := &shim.Response{
		Verdict: shim.Rewrite, PolicyName: "Rustock", Annotation: "C&C filtering",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rb := req.Marshal()
		if _, err := shim.UnmarshalRequest(rb); err != nil {
			b.Fatal(err)
		}
		pb := resp.Marshal()
		if _, _, err := shim.UnmarshalResponse(pb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Rewrite regenerates the Fig. 5 REWRITE packet flow.
func BenchmarkFigure5Rewrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, _, err := experiments.RunFigure5(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if !out.SawReqShim || !out.SawRewritten {
			b.Fatal("rewrite flow incomplete")
		}
	}
}

// BenchmarkFigure6ConfigParse measures the containment configuration
// parser on the paper's exact snippet.
func BenchmarkFigure6ConfigParse(b *testing.B) {
	text := "[VLAN 16-17]\nDecider = Rustock\nInfection = rustock.100921.*.exe\n\n" +
		"[VLAN 18-19]\nDecider = Grum\nInfection = grum.100818.*.exe\n\n" +
		"[VLAN 16-19]\nTrigger = *:25/tcp / 30min < 1 -> revert\n\n" +
		"[Autoinfect]\nAddress = 10.9.8.7\nPort = 6543\n\n" +
		"[BannerSmtpSink]\nAddress = 10.3.1.4\nPort = 2526\n"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg, err := policy.Parse(text)
		if err != nil || len(cfg.VLANRules) != 3 {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Report regenerates the Botfarm activity report (a full
// virtual hour of two-family spambot operation).
func BenchmarkFigure7Report(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.RunFigure7(experiments.Figure7Config{
			Seed: int64(i), Duration: time.Hour, DropProb: 0.35,
		})
		if err != nil {
			b.Fatal(err)
		}
		if out.SMTPSessions == 0 {
			b.Fatal("no sessions")
		}
	}
}

// benchGatewayScale runs the S1 sweep point (subfarms × inmates).
func benchGatewayScale(b *testing.B, subfarms, inmates int) {
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.RunScalabilityGateway(int64(i),
			[][2]int{{subfarms, inmates}}, 10*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pts[0].FlowsAdjudicated), "verdicts")
	}
}

func BenchmarkScalabilityGateway1x4(b *testing.B) { benchGatewayScale(b, 1, 4) }
func BenchmarkScalabilityGateway3x4(b *testing.B) { benchGatewayScale(b, 3, 4) }
func BenchmarkScalabilityGateway6x4(b *testing.B) { benchGatewayScale(b, 6, 4) }

// BenchmarkScalabilityGatewayParallel runs the 6×4 sweep point on a
// sharded farm — every subfarm in its own simulation domain, workers =
// GOMAXPROCS. Compare against BenchmarkScalabilityGateway6x4 at the same
// -cpu for the sharding speedup.
func BenchmarkScalabilityGatewayParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.RunScalabilityGatewayParallel(int64(i),
			[][2]int{{6, 4}}, 10*time.Minute, 0)
		if err != nil {
			b.Fatal(err)
		}
		if pts[0].FlowsAdjudicated == 0 {
			b.Fatal("no flows")
		}
		b.ReportMetric(float64(pts[0].FlowsAdjudicated), "verdicts")
		b.ReportMetric(pts[0].AvgParallelism, "domains/round")
	}
}

// benchShardedDense builds a 6-subfarm farm whose inmates continuously
// stream bulk data. Three modes:
//
//   - "serial": one event loop, catch-all sinks (the baseline).
//   - "sharded": per-subfarm domains, default-deny reflects every stream
//     into the subfarm's own catch-all sink — all bytes domain-local, all
//     six subfarm domains busy, ceiling 6.00 domains/round.
//   - "external": the same dense subfarm load, plus three external-host
//     domains carrying bulk server-to-server streams on the Internet
//     segment — the C&C/sink-side work that used to serialize on the root.
//     With that work in its own shards the ceiling rises above the
//     subfarm count.
//
// This is the dense-workload counterpart to the S1 sweep: S1 measures a
// realistic (sparse) malware workload, this one measures the sharding
// ceiling.
func benchShardedDense(b *testing.B, mode string) {
	const inmates = 4
	const subfarms = 6
	const extPairs = 6
	for i := 0; i < b.N; i++ {
		var f *farm.Farm
		switch mode {
		case "serial":
			f = farm.New(int64(i))
		case "sharded":
			f = farm.NewSharded(int64(i), 0)
		case "external":
			f = farm.NewShardedN(int64(i), 0, 3)
		}
		for s := 0; s < subfarms; s++ {
			lo := uint16(100 + s*40)
			sf, err := f.AddSubfarm(farm.SubfarmConfig{
				Name:   "dense" + string(rune('a'+s)),
				VLANLo: lo, VLANHi: lo + inmates + 2,
				ServiceVLAN:    uint16(10 + s),
				GlobalPool:     netstack.Prefix{Base: netstack.AddrFrom4(192, 0, byte(2+s), 0), Bits: 24},
				FallbackPolicy: "DefaultDeny",
			})
			if err != nil {
				b.Fatal(err)
			}
			// One long-lived outbound bulk flow per inmate, paced by a sim
			// timer so the stream never idles in TIME_WAIT; default-deny
			// reflects it into the subfarm's own catch-all sink, keeping the
			// bytes domain-local and every domain busy for the whole run.
			sf.OnBootHook = func(fi *farm.FarmInmate) {
				c := fi.Host.Dial(netstack.MustParseAddr("203.0.113.80"), 80)
				chunk := make([]byte, 1024)
				fi.Host.Sim().Every(2*time.Millisecond, func() { c.Write(chunk) })
			}
			for j := 0; j < inmates; j++ {
				if _, err := sf.AddInmate("bulk"); err != nil {
					b.Fatal(err)
				}
			}
		}
		// External server-to-server bulk pairs, two per external shard and
		// co-located within it (ExternalShardFor) so the bulk bytes stay
		// domain-local — the external analogue of the catch-all streams.
		// Per-pair byte counts are written only from the serving host's
		// domain and read after the run quiesces.
		received := make([]int, extPairs)
		if mode == "external" {
			byShard := make([][]netstack.Addr, f.ExternalShards())
			for x := byte(10); x < 250; x++ {
				addr := netstack.AddrFrom4(198, 51, 100, x)
				k := f.ExternalShardFor(addr)
				if len(byShard[k]) < 2*extPairs/len(byShard) {
					byShard[k] = append(byShard[k], addr)
				}
			}
			p := 0
			for _, addrs := range byShard {
				for j := 0; j+1 < len(addrs); j += 2 {
					idx := p
					srvAddr, cliAddr := addrs[j], addrs[j+1]
					srv := f.AddExternalHost(fmt.Sprintf("esink%d", idx), srvAddr)
					srv.Listen(80, func(c *host.Conn) {
						c.OnData = func(d []byte) { received[idx] += len(d) }
						c.OnPeerClose = func() { c.Close() }
					})
					cli := f.AddExternalHost(fmt.Sprintf("esrc%d", idx), cliAddr)
					cli.Sim().Schedule(0, func() {
						c := cli.Dial(srvAddr, 80)
						chunk := make([]byte, 1024)
						cli.Sim().Every(2*time.Millisecond, func() { c.Write(chunk) })
					})
					p++
				}
			}
			received = received[:p]
		}
		f.Run(30 * time.Second)
		for _, sf := range f.Subfarms {
			if sf.CatchAll.TCPConns == 0 {
				b.Fatal("no sink traffic")
			}
		}
		if mode == "external" {
			for p, n := range received {
				if n == 0 {
					b.Fatalf("external pair %d: no traffic", p)
				}
			}
		}
		if f.Coord != nil {
			if rounds, windows := f.Coord.Stats(); rounds > 0 {
				b.ReportMetric(float64(windows)/float64(rounds), "domains/round")
			}
		}
	}
}

// BenchmarkShardedFarmDense compares the serial event loop against sharded
// domains on a datapath-saturated farm. The domains/round metric is the
// workload's parallel speedup ceiling, independent of the host's CPU count;
// the wall-clock ratio at -cpu N is the achieved speedup. The external
// variant routes the streams off-subfarm so the root gateway and the
// external-host shards join the working set.
func BenchmarkShardedFarmDense(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchShardedDense(b, "serial") })
	b.Run("sharded", func(b *testing.B) { benchShardedDense(b, "sharded") })
	b.Run("external", func(b *testing.B) { benchShardedDense(b, "external") })
}

// BenchmarkSupervisorRecovery measures the supervised containment plane's
// crash-to-healthy turnaround: a containment server is shut down cold and
// the supervisor must detect it by missed heartbeats, fail the stranded
// flows closed, restart the server, and confirm health with a live echo.
// The recovery_ms metric is virtual (sim-clock) time — deterministic for a
// given seed — so benchjson can gate it tightly; ns/op is the wall cost of
// running the whole exercise.
func BenchmarkSupervisorRecovery(b *testing.B) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		f := farm.New(int64(i) + 1)
		sf, err := f.AddSubfarm(farm.SubfarmConfig{
			Name: "sup", VLANLo: 16, VLANHi: 20,
			GlobalPool:     netstack.MustParsePrefix("192.0.2.0/24"),
			FallbackPolicy: "DefaultDeny",
		})
		if err != nil {
			b.Fatal(err)
		}
		sup := sf.Supervise(supervisor.Config{})
		f.Run(30 * time.Second)
		sf.CS.Host.Shutdown()
		f.Run(2 * time.Minute)
		if len(sup.Recoveries) != 1 {
			b.Fatalf("recoveries = %v, want exactly one", sup.Recoveries)
		}
		total += sup.Recoveries[0]
	}
	b.ReportMetric(float64(total/time.Millisecond)/float64(b.N), "recovery_ms")
}

// BenchmarkLockdownEscalation measures the supervision tree's dead-man
// turnaround: both containment servers of a supervised subfarm are killed
// past the circuit breaker, and the tree must quarantine the plane, fail
// the subfarm closed after LockdownBudget, and escalate to global
// dead-man lockdown after DeadManBudget. The lockdown_ms metric — the
// sim-clock time from the unsurvivable kill to global lockdown — is
// deterministic for a given seed, so benchjson gates it tightly; ns/op is
// the wall cost of the whole exercise.
func BenchmarkLockdownEscalation(b *testing.B) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		f := farm.New(int64(i) + 1)
		sf, err := f.AddSubfarm(farm.SubfarmConfig{
			Name: "dm", VLANLo: 16, VLANHi: 20,
			GlobalPool:         netstack.MustParsePrefix("192.0.2.0/24"),
			FallbackPolicy:     "DefaultDeny",
			ContainmentServers: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		tree := f.SuperviseTree(supervisor.Config{
			BreakerThreshold: 1,
			LockdownBudget:   30 * time.Second,
			DeadManBudget:    time.Minute,
		})
		f.Run(30 * time.Second)
		// First kill round: survivable, the supervisor restarts both.
		for _, srv := range sf.CSCluster {
			srv.Host.Shutdown()
		}
		f.Run(2 * time.Minute)
		// Second kill round: past the breaker — the whole plane
		// quarantines and the escalation ladder runs to the top.
		for _, srv := range sf.CSCluster {
			srv.Host.Shutdown()
		}
		killAt := f.Sim.Now()
		f.Run(5 * time.Minute)
		if !tree.GlobalLockedDown() {
			b.Fatalf("iteration %d: ladder never reached global lockdown", i)
		}
		total += tree.GlobalLockdownAt() - killAt
	}
	b.ReportMetric(float64(total/time.Millisecond)/float64(b.N), "lockdown_ms")
}

// BenchmarkRecyclePipeline measures the raw-iron recycling pipeline's
// sustained throughput: one subfarm of three boxes cycling detonate →
// capture → reimage → re-admit, fault-free, bounded by the shared
// PXE/TFTP trunk. The specimens/day metric is virtual (sim-clock)
// throughput — deterministic for a given seed, benchjson-gated against
// regression — and must clear the paper's 48-specimens/day cadence;
// ns/op is the wall cost of the whole exercise.
func BenchmarkRecyclePipeline(b *testing.B) {
	var perDay float64
	for i := 0; i < b.N; i++ {
		out, err := experiments.RunRecycleSoak(experiments.RecycleConfig{
			Seed: int64(i) + 1, Subfarms: 1, Machines: 3,
			Duration: 45 * time.Minute, Settle: 15 * time.Minute,
			DetonateFor: 5 * time.Minute,
			MinCycles:   1, MinCyclesPerSubfarm: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, problem := range out.Problems {
			b.Errorf("iteration %d: %s", i, problem)
		}
		if out.SpecimensPerDay < 48 {
			b.Fatalf("iteration %d: %.1f specimens/day, want >= 48", i, out.SpecimensPerDay)
		}
		perDay = out.SpecimensPerDay
	}
	b.ReportMetric(perDay, "specimens/day")
}

// benchCluster runs the S2 point (containment servers).
func benchCluster(b *testing.B, servers int) {
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.RunScalabilityCluster(int64(i), []int{servers}, 8, 10*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pts[0].PerServerMax), "maxFlowsPerServer")
	}
}

func BenchmarkScalabilityCluster1(b *testing.B) { benchCluster(b, 1) }
func BenchmarkScalabilityCluster4(b *testing.B) { benchCluster(b, 4) }

// BenchmarkScalabilityVLANPool measures exhausting the 802.1Q ID space.
func BenchmarkScalabilityVLANPool(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n, _ := experiments.RunScalabilityVLANPool()
		if n != 4094 {
			b.Fatal("pool size wrong")
		}
	}
}

// --- ablations (DESIGN.md §4) ---

// BenchmarkAblationShimRoundTrip quantifies what the policy/mechanism
// separation costs per flow: the full redirect-to-containment-server shim
// exchange versus invoking the policy decision inline (the predecessor's
// hardwired design).
func BenchmarkAblationShimRoundTrip(b *testing.B) {
	b.Run("containment-server", func(b *testing.B) {
		// Virtual flow-setup latency through the CS, measured once, then
		// the farm run repeated per iteration for wall cost.
		for i := 0; i < b.N; i++ {
			f := farm.New(int64(i))
			f.AddExternalHost("t", netstack.MustParseAddr("203.0.113.80"))
			sf, err := f.AddSubfarm(farm.SubfarmConfig{
				Name: "ab", VLANLo: 16, VLANHi: 18,
				GlobalPool:     netstack.MustParsePrefix("192.0.2.0/24"),
				FallbackPolicy: "HardDeny",
			})
			if err != nil {
				b.Fatal(err)
			}
			sf.OnBootHook = func(fi *farm.FarmInmate) {
				for j := 0; j < 50; j++ {
					fi.Host.Dial(netstack.MustParseAddr("203.0.113.80"), uint16(1000+j))
				}
			}
			sf.AddInmate("probe")
			f.Run(time.Minute)
			if sf.CS.FlowsSeen != 50 {
				b.Fatalf("saw %d flows", sf.CS.FlowsSeen)
			}
		}
	})
	b.Run("inline-policy", func(b *testing.B) {
		// The hardwired alternative: the verdict is computed in-process
		// with no shim exchange. This is what the gateway saves per flow
		// when policies never change — and what GQ gave up for
		// adaptability.
		env := &policy.Env{InternalPrefix: netstack.MustParsePrefix("10.0.0.0/16")}
		d, err := policy.New("HardDeny", env)
		if err != nil {
			b.Fatal(err)
		}
		req := &shim.Request{
			OrigIP: netstack.MustParseAddr("10.0.0.23"), OrigPort: 1234,
			RespIP: netstack.MustParseAddr("203.0.113.80"), RespPort: 1000, VLAN: 16,
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 50; j++ {
				if dec := d.Decide(req); dec.Verdict == 0 {
					b.Fatal("no verdict")
				}
			}
		}
	})
}

// BenchmarkAblationFullProxy compares gateway-enforced endpoint control
// (FORWARD: the CS drops out after the verdict) against keeping the CS in
// the path for the whole flow (REWRITE with a pass-through handler) — the
// §5.4 rationale for endpoint control "conserving resources on the
// containment server".
func BenchmarkAblationFullProxy(b *testing.B) {
	b.Run("forward-spliced", func(b *testing.B) { benchBulk(b, "AllowAll") })
	b.Run("rewrite-proxied", func(b *testing.B) { benchBulk(b, "PassThroughProxy") })
}

// passThroughHandler proxies content without modification — the cost of
// content control without its benefit.
type passThroughHandler struct{}

func (passThroughHandler) OnClientData(s *containment.Session, d []byte) { s.WriteServer(d) }
func (passThroughHandler) OnServerData(s *containment.Session, d []byte) { s.WriteClient(d) }
func (passThroughHandler) OnClientClose(s *containment.Session)          { s.CloseServer() }
func (passThroughHandler) OnServerClose(s *containment.Session)          { s.CloseClient() }

type passThroughDecider struct{}

func (passThroughDecider) Name() string { return "PassThroughProxy" }
func (passThroughDecider) Decide(req *shim.Request) containment.Decision {
	return containment.Decision{Verdict: shim.Rewrite, Handler: passThroughHandler{}}
}

func init() {
	policy.Register("PassThroughProxy", func(env *policy.Env) containment.Decider {
		return passThroughDecider{}
	})
}

// benchBulk pushes 256 KiB through one contained flow per iteration.
func benchBulk(b *testing.B, decider string) {
	const payload = 256 << 10
	for i := 0; i < b.N; i++ {
		f := farm.New(int64(i))
		target := f.AddExternalHost("t", netstack.MustParseAddr("203.0.113.80"))
		received := 0
		target.Listen(80, func(c *host.Conn) {
			c.OnData = func(d []byte) { received += len(d) }
			c.OnPeerClose = func() { c.Close() }
		})
		sf, err := f.AddSubfarm(farm.SubfarmConfig{
			Name: "bulk", VLANLo: 16, VLANHi: 18,
			GlobalPool:     netstack.MustParsePrefix("192.0.2.0/24"),
			FallbackPolicy: decider,
		})
		if err != nil {
			b.Fatal(err)
		}
		sf.OnBootHook = func(fi *farm.FarmInmate) {
			c := fi.Host.Dial(netstack.MustParseAddr("203.0.113.80"), 80)
			buf := make([]byte, payload)
			c.OnConnect = func() { c.Write(buf); c.Close() }
		}
		sf.AddInmate("bulk")
		f.Run(5 * time.Minute)
		if received != payload {
			b.Fatalf("%s: received %d of %d", decider, received, payload)
		}
		b.SetBytes(payload)
	}
}

// BenchmarkSpamThroughput measures end-to-end harvested spam per virtual
// hour across the whole stack (sanity throughput number for EXPERIMENTS.md).
func BenchmarkSpamThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.RunFigure7(experiments.Figure7Config{
			Seed: int64(i), Duration: time.Hour, DropProb: 0,
			RustockInmates: 2, GrumInmates: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(out.SMTPDataTransfers), "msgs/vhour")
	}
}

// BenchmarkSMTPEngine isolates the SMTP sink protocol engine.
func BenchmarkSMTPEngine(b *testing.B) {
	lines := []string{
		"HELO bot", "MAIL FROM:<a@b.c>", "RCPT TO:<v@x.y>", "DATA",
		"Subject: x", "", "body", ".", "QUIT",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var replies int
		eng := smtpx.NewEngine(smtpx.Lenient, func(string) { replies++ }, nil)
		eng.Greet("220 bench")
		for _, l := range lines {
			eng.Feed([]byte(l + "\r\n"))
		}
		if eng.Envelopes != 1 {
			b.Fatal("engine broke")
		}
	}
}

// BenchmarkReportGeneration isolates the Fig. 7 renderer on a pre-built
// farm (the farm is constructed outside the timed loop).
func BenchmarkReportGeneration(b *testing.B) {
	out, err := experiments.RunFigure7(experiments.Figure7Config{
		Seed: 1, Duration: 30 * time.Minute, DropProb: 0.35,
	})
	if err != nil {
		b.Fatal(err)
	}
	rep := out.Farm.Reporter(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if text := rep.Generate(); len(text) == 0 {
			b.Fatal("empty report")
		}
	}
}
