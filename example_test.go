package gq_test

import (
	"fmt"
	"time"

	"gq"
	"gq/internal/farm"
)

// Example demonstrates the minimal farm: one inmate under default-deny
// containment, with the per-flow verdicts inspected afterwards.
func Example() {
	f := gq.NewFarm(1)
	f.AddExternalHost("cc", gq.MustParseAddr("203.0.113.5"))

	sf, err := f.AddSubfarm(gq.SubfarmConfig{
		Name:   "demo",
		VLANLo: 16, VLANHi: 20,
		GlobalPool: gq.MustParsePrefix("192.0.2.0/24"),
	})
	if err != nil {
		panic(err)
	}
	sf.OnBootHook = func(fi *farm.FarmInmate) {
		c := fi.Host.Dial(gq.MustParseAddr("203.0.113.5"), 6667)
		c.OnConnect = func() { c.Write([]byte("JOIN #botnet")) }
	}
	if _, err := sf.AddInmate("specimen"); err != nil {
		panic(err)
	}
	f.Run(time.Minute)

	for _, rec := range sf.Router.Records() {
		if rec.Verdict != 0 {
			fmt.Printf("%s -> %s:%d  %s (%s)\n",
				rec.Policy, rec.RespIP, rec.RespPort, rec.Verdict, rec.Annotation)
		}
	}
	fmt.Printf("sink absorbed %d flows\n", sf.CatchAll.TCPConns)
	// Output:
	// DefaultDeny -> 203.0.113.5:6667  REFLECT (default-deny reflection)
	// sink absorbed 1 flows
}
