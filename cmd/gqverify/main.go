// Command gqverify implements the paper's §8 wish list: "a traffic
// generation tool that can automatically produce test cases for a given
// concrete containment policy would strengthen confidence in the policy's
// correctness significantly."
//
// It verifies a containment policy two ways:
//
//  1. statically — the policy prober enumerates a probe matrix of flow
//     four-tuples, collects the verdicts, and checks declarative safety
//     rules (no raw SMTP to the Internet, no exploit ports out, ...);
//
//  2. dynamically — a live farm is built with the policy installed, a
//     probe inmate generates real flows toward canary hosts, and every
//     byte that reaches a canary is reported as an escape.
//
//     gqverify -policy Rustock
//     gqverify -policy AllowAll     # demonstrates violation reporting
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gq/internal/farm"
	"gq/internal/netstack"
	"gq/internal/policy"
)

func main() {
	name := flag.String("policy", "DefaultDeny", "containment policy to verify (see -list)")
	list := flag.Bool("list", false, "list registered policies")
	seed := flag.Int64("seed", 1, "simulation seed for the live probe")
	flag.Parse()

	if *list {
		for _, n := range policy.Names() {
			fmt.Println(n)
		}
		return
	}

	env := &policy.Env{
		Services: map[string]policy.AddrPort{
			policy.SvcCatchAllSink:   {Addr: netstack.MustParseAddr("10.3.0.2")},
			policy.SvcSMTPSink:       {Addr: netstack.MustParseAddr("10.3.0.3"), Port: 25},
			policy.SvcBannerSMTPSink: {Addr: netstack.MustParseAddr("10.3.0.4"), Port: 25},
			policy.SvcHTTPSink:       {Addr: netstack.MustParseAddr("10.3.0.5"), Port: 80},
			policy.SvcAutoinfect:     {Addr: netstack.MustParseAddr("10.9.8.7"), Port: 6543},
		},
		InternalPrefix: netstack.MustParsePrefix("10.0.0.0/16"),
		CCHosts: map[string]policy.AddrPort{
			"Grum":  {Addr: netstack.MustParseAddr("50.8.207.91"), Port: 80},
			"MegaD": {Addr: netstack.MustParseAddr("198.51.100.77"), Port: 4560},
		},
	}
	d, err := policy.New(*name, env)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gqverify:", err)
		os.Exit(1)
	}

	// Phase 1: static verdict audit.
	p := &policy.Prober{Cases: policy.DefaultCases(env), Rules: policy.StandardSafetyRules(env)}
	violations, hist := p.Verify(d)
	fmt.Print(policy.Report(*name, violations, hist))

	// Phase 2: live enforcement probe.
	fmt.Println("\nLive enforcement probe (canary hosts on the simulated Internet):")
	f := farm.New(*seed)
	sf, err := f.AddSubfarm(farm.SubfarmConfig{
		Name:   "verify",
		VLANLo: 16, VLANHi: 20,
		GlobalPool:     netstack.MustParsePrefix("192.0.2.0/24"),
		FallbackPolicy: *name,
		CCHosts:        env.CCHosts,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gqverify:", err)
		os.Exit(1)
	}
	out, err := farm.RunContainmentProbe(f, sf, nil, 3*time.Minute)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gqverify:", err)
		os.Exit(1)
	}
	fmt.Printf("  %s\n", out)
	// Escapes on the never-allowed ports are containment failures; other
	// escapes are deliberate C&C lifeline exposure (Fig. 7 shows Rustock
	// FORWARDing https to *.*.*.*) and are reported for analyst review.
	fatalPorts := map[string]bool{":25": true, ":135": true, ":139": true, ":445": true, ":3389": true}
	fatalEscapes := 0
	for _, esc := range out.Escaped() {
		fatal := false
		for suffix := range fatalPorts {
			if strings.HasSuffix(esc, suffix) {
				fatal = true
			}
		}
		if fatal {
			fatalEscapes++
			fmt.Printf("  ESCAPED (VIOLATION): probe bytes reached %s\n", esc)
		} else {
			fmt.Printf("  escaped (lifeline exposure, review): %s\n", esc)
		}
	}

	if len(violations) > 0 || fatalEscapes > 0 {
		fmt.Println("\nverdict: policy is NOT safe for deployment")
		os.Exit(1)
	}
	if n := len(out.Escaped()); n > 0 {
		fmt.Printf("\nverdict: no violations; %d deliberate lifeline exposure(s) to review\n", n)
		return
	}
	fmt.Println("\nverdict: no violations, no escapes")
}
