package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFailingRunFlushesJournal is the regression test for the truncated-
// journal bug: a run that exits non-zero used to os.Exit past the deferred
// NDJSON flush, truncating the tail of the event stream. The journal of a
// failing run must be complete and parseable — failures are exactly when
// the journal matters most. The run is made to fail deterministically: a
// containment-server crash at 5m with a 20m restore window and a 1ns
// drain leaves stranded flows in the gateway table at the health check.
func TestFailingRunFlushesJournal(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "run.ndjson")
	var out, errOut bytes.Buffer
	code := run([]string{
		"-duration", "15m", "-drain", "1ns", "-inmates", "2",
		"-chaos", "crash,cscrash=5m,csdownfor=20m",
		"-events", events, "-flight-dir", dir,
	}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "FAILED") {
		t.Fatalf("failure diagnostic missing from stderr: %s", errOut.String())
	}

	b, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	// The NDJSON sink buffers 4KiB; anything shorter would not prove the
	// buffered tail survived the failure exit.
	if len(b) < 4096 {
		t.Fatalf("journal only %d bytes — not enough to exercise the buffered tail", len(b))
	}
	if b[len(b)-1] != '\n' {
		t.Fatal("journal does not end in a newline: truncated mid-event")
	}
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("journal line %d/%d is not valid JSON: %.120q", i+1, len(lines), line)
		}
	}
}

// TestShardedRun drives the CLI sharded path end to end: subfarm plus two
// external domains, two workers, health checks green, and the scheduler
// efficiency line printed.
func TestShardedRun(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-duration", "15m", "-inmates", "2", "-shards", "2", "-workers", "2",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "domains busy per synchronization round") {
		t.Fatalf("sharded stats line missing from stderr: %s", errOut.String())
	}
}

// TestBadMetricsFormatRejected: the format is validated before the run so
// a typo cannot cost an hour of soak.
func TestBadMetricsFormatRejected(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-metrics-format", "xml"}, &out, &errOut)
	if code != 1 || !strings.Contains(errOut.String(), "metrics-format") {
		t.Fatalf("exit %d, stderr %s", code, errOut.String())
	}
}

// TestMetricsFormats exercises the -metrics writer in all three formats on
// a short healthy run.
func TestMetricsFormats(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		format string
		want   string
	}{
		{"json", `"counters"`},
		{"prom", "# TYPE gq_sim_time_seconds gauge"},
		{"text", "Telemetry snapshot (sim time"},
	} {
		path := filepath.Join(dir, "metrics."+tc.format)
		var out, errOut bytes.Buffer
		code := run([]string{
			"-duration", "5m", "-drain", "10m", "-inmates", "1",
			"-metrics", path, "-metrics-format", tc.format,
		}, &out, &errOut)
		if code != 0 {
			t.Fatalf("%s run exited %d (stderr: %s)", tc.format, code, errOut.String())
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(b), tc.want) {
			t.Fatalf("%s metrics missing %q:\n%.300s", tc.format, tc.want, b)
		}
	}
}
