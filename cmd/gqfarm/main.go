// Command gqfarm runs a GQ malware farm from a Fig. 6-style containment
// configuration file, populates it with inmates, executes for a configured
// virtual duration, and prints the Fig. 7 activity report.
//
//	gqfarm -config botfarm.conf -inmates 4 -duration 2h -trace run.pcap
//
// Sample binaries are synthesised from the configuration's Infection
// globs: the glob's first dotted component selects the behavioural family
// (rustock, grum, waledac, megad, storm-proxy, clickbot, dgabot).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gq/internal/farm"
	"gq/internal/malware"
	"gq/internal/netstack"
	"gq/internal/policy"
	"gq/internal/smtpx"
	"gq/internal/trace"
)

const defaultConfig = `[VLAN 16-17]
Decider = Rustock
Infection = rustock.100921.*.exe

[VLAN 18-19]
Decider = Grum
Infection = grum.100818.*.exe

[VLAN 16-19]
Trigger = *:25/tcp / 30min < 1 -> revert
`

func main() {
	cfgPath := flag.String("config", "", "containment configuration file (Fig. 6 format; built-in Botfarm demo if empty)")
	inmates := flag.Int("inmates", 4, "number of inmates to create")
	dur := flag.Duration("duration", time.Hour, "virtual run duration")
	seed := flag.Int64("seed", 1, "simulation seed")
	dropProb := flag.Float64("sink-drop", 0.35, "SMTP sink probabilistic connection drop")
	tracePath := flag.String("trace", "", "write the subfarm packet trace to this pcap file")
	anonymize := flag.Bool("anonymize", true, "mask global addresses in the report")
	flag.Parse()

	text := defaultConfig
	if *cfgPath != "" {
		b, err := os.ReadFile(*cfgPath)
		if err != nil {
			fatal(err)
		}
		text = string(b)
	}
	pcfg, err := policy.Parse(text)
	if err != nil {
		fatal(err)
	}

	// Synthesise a sample library from the Infection globs.
	var library []*policy.Sample
	known := map[string]bool{}
	for _, fam := range malware.Families() {
		known[fam] = true
	}
	var maxVLAN uint16
	for _, rule := range pcfg.VLANRules {
		if rule.Hi > maxVLAN {
			maxVLAN = rule.Hi
		}
		if rule.Infection == "" {
			continue
		}
		family := strings.SplitN(rule.Infection, ".", 2)[0]
		if !known[family] {
			fmt.Fprintf(os.Stderr, "gqfarm: warning: no behavioural model for family %q\n", family)
			continue
		}
		name := strings.Replace(rule.Infection, "*", "001", 1)
		library = append(library, policy.NewSample(name, family, []byte("MZ-"+name)))
	}

	f := farm.New(*seed)
	ccAddr := netstack.MustParseAddr("50.8.207.91")
	cc := f.AddExternalHost("cc", ccAddr)
	if _, err := malware.NewCCServer(cc, malware.CCConfig{
		Template: "pharma special",
		Targets: []netstack.Addr{
			netstack.MustParseAddr("203.0.113.25"),
			netstack.MustParseAddr("203.0.113.26"),
		},
		Forbidden: []string{"DDOS 203.0.113.99"},
	}); err != nil {
		fatal(err)
	}
	gmailAddr := netstack.MustParseAddr("172.217.0.25")
	gmailHost := f.AddExternalHost("gmail", gmailAddr)
	gmail, err := malware.NewGMailMX(gmailHost, []string{"wergvan"})
	if err != nil {
		fatal(err)
	}
	gmail.OnFingerprint = func(sender netstack.Addr, helo string) {
		f.CBL.List(sender, "HELO "+helo+" fingerprinted")
	}

	lo := pcfg.VLANRules[0].Lo
	sf, err := f.AddSubfarm(farm.SubfarmConfig{
		Name:   "Botfarm",
		VLANLo: lo, VLANHi: maxVLAN + 4,
		ServiceVLAN:   11,
		GlobalPool:    netstack.MustParsePrefix("192.0.2.0/24"),
		InfraPool:     netstack.MustParsePrefix("192.0.9.0/24"),
		PolicyConfig:  text,
		SampleLibrary: library,
		RepeatBatches: true,
		CCHosts: map[string]policy.AddrPort{
			"Rustock":  {Addr: ccAddr, Port: 443},
			"Grum":     {Addr: ccAddr, Port: 80},
			"MegaD":    {Addr: ccAddr, Port: 4560},
			"Clickbot": {Addr: ccAddr, Port: 8080},
			"GMailMX":  {Addr: gmailAddr, Port: 25},
		},
		GMailMX:        gmailAddr,
		SinkDropProb:   *dropProb,
		SinkStrictness: smtpx.Lenient,
		BannerGrab:     true,
	})
	if err != nil {
		fatal(err)
	}

	var traceW *trace.Writer
	if *tracePath != "" {
		fh, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer fh.Close()
		traceW = trace.NewWriter(fh)
		sf.Router.AddTap(func(p *netstack.Packet) {
			traceW.WritePacket(f.Sim.WallClock(), p.Marshal())
		})
	}

	for i := 0; i < *inmates; i++ {
		if _, err := sf.AddInmate(fmt.Sprintf("inmate-%d", i)); err != nil {
			fatal(err)
		}
	}

	fmt.Fprintf(os.Stderr, "gqfarm: running %d inmates for %v of virtual time...\n", *inmates, *dur)
	start := time.Now()
	f.Run(*dur)
	fmt.Fprintf(os.Stderr, "gqfarm: done in %v wall time (%d events)\n",
		time.Since(start).Round(time.Millisecond), f.Sim.Fired)

	fmt.Println(f.Reporter(*anonymize).Generate())
	if traceW != nil {
		fmt.Fprintf(os.Stderr, "gqfarm: wrote %d packets (%d bytes) to %s\n",
			traceW.Packets, traceW.Bytes, *tracePath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gqfarm:", err)
	os.Exit(1)
}
