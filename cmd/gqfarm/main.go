// Command gqfarm runs a GQ malware farm from a Fig. 6-style containment
// configuration file, populates it with inmates, executes for a configured
// virtual duration, and prints the Fig. 7 activity report with a telemetry
// snapshot appended.
//
//	gqfarm -config botfarm.conf -inmates 4 -duration 2h -trace run.pcap \
//	       -metrics run.json -events run.ndjson
//
// Sample binaries are synthesised from the configuration's Infection
// globs: the glob's first dotted component selects the behavioural family
// (rustock, grum, waledac, megad, storm-proxy, clickbot, dgabot).
//
// With -chaos the run executes under injected faults (see internal/chaos):
// link impairment and flaps on the inmate access links, containment-server
// crash/restart cycles, stalled verdicts, and sink outages. The spec is a
// preset name ("soak", "light", "crash") optionally followed by
// comma-separated key=value overrides, e.g. -chaos soak,loss=0.10.
// Injection stops before the drain, so the health checks still demand a
// farm that degraded gracefully.
//
// With -shards N each subfarm runs in its own simulation domain, the
// external hosts are hash-spread across N external domains, and -workers
// goroutines drive the whole topology under conservative lookahead
// synchronization (see internal/sim). The result is deterministic for a
// given seed whatever the worker count, but the trunk lookahead shifts
// cross-domain timing, so a sharded run is not byte-identical to the
// serial run of the same seed.
//
// With -rawiron N the subfarm gains N raw-iron inmates on the recycling
// pipeline (see internal/rawiron and farm.Recycler): each box detonates
// its specimen, is captured and reimaged over the shared PXE/TFTP trunk,
// and re-admitted — endlessly, until shutdown. Machine lifecycle state is
// served on GET /machines; POST /recycle/{inmate} forces a box out of its
// detonation window early.
//
// With -serve the farm runs as a long-lived soak paced against real time
// (-speed × real time) with the live ops plane (see internal/ops) mounted
// on the given address: SSE journal streaming on /events, metrics on
// /metrics (Prometheus text, JSON, or human text), flight-recorder dumps
// on /flights, raw-iron machine state on /machines, health on /healthz,
// pprof under /debug/pprof/, and runtime control via POST /policy,
// /chaos, /quarantine/{inmate}, and /recycle/{inmate}. -duration is
// ignored — the soak runs until SIGINT/SIGTERM, then shuts down cleanly
// (report, metrics, journal flush) and exits 0. On a sharded farm the
// control endpoints post their actions into the owning domain's event
// loop, so -serve composes with -shards.
//
// The run is health-checked: if it ends with flows still open in the
// gateway, with inmate addresses on the blacklist, or (with -verify) with
// containment-probe traffic escaping the farm, gqfarm writes the flight
// recorder to disk, prints a one-line diagnostic naming the dump, and
// exits non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"gq/internal/chaos"
	"gq/internal/farm"
	"gq/internal/malware"
	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/ops"
	"gq/internal/policy"
	"gq/internal/rawiron"
	"gq/internal/smtpx"
	"gq/internal/supervisor"
	"gq/internal/trace"
)

const defaultConfig = `[VLAN 16-17]
Decider = Rustock
Infection = rustock.100921.*.exe

[VLAN 18-19]
Decider = Grum
Infection = grum.100818.*.exe

[VLAN 16-19]
Trigger = *:25/tcp / 30min < 1 -> revert
`

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its exit code made explicit so deferred cleanups —
// most importantly the NDJSON journal flush — execute on the failure
// path too, and so tests can drive the binary in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gqfarm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfgPath := fs.String("config", "", "containment configuration file (Fig. 6 format; built-in Botfarm demo if empty)")
	inmates := fs.Int("inmates", 4, "number of inmates to create")
	dur := fs.Duration("duration", time.Hour, "virtual run duration")
	seed := fs.Int64("seed", 1, "simulation seed")
	dropProb := fs.Float64("sink-drop", 0.35, "SMTP sink probabilistic connection drop")
	tracePath := fs.String("trace", "", "write the subfarm packet trace to this pcap file")
	nanoTrace := fs.Bool("nano-trace", false, "use nanosecond pcap timestamps for -trace")
	anonymize := fs.Bool("anonymize", true, "mask global addresses in the report")
	metricsPath := fs.String("metrics", "", "write the final telemetry snapshot to this file")
	metricsFormat := fs.String("metrics-format", "json", "format for -metrics: json, prom (Prometheus text), or text")
	eventsPath := fs.String("events", "", "stream the event journal (NDJSON) to this file")
	flightDir := fs.String("flight-dir", ".", "directory for flight-recorder dumps when the run fails")
	drain := fs.Duration("drain", 3*time.Minute, "virtual time to drain after retiring the inmates")
	verify := fs.Bool("verify", false, "run a containment probe after the experiment and fail on escapes")
	chaosSpec := fs.String("chaos", "", "fault-injection profile: preset (soak, light, crash) and/or key=value overrides; see internal/chaos")
	shards := fs.Int("shards", 0, "with N > 0: run each subfarm in its own simulation domain and spread external hosts across N external domains (deterministic parallel execution)")
	workers := fs.Int("workers", 0, "with -shards: worker goroutines driving the domains (0 = GOMAXPROCS)")
	supervise := fs.Bool("supervise", false, "attach the containment-plane supervisor: heartbeat health, fail-closed failover, supervised restarts, inmate quarantine")
	treeFlag := fs.Bool("tree", false, "attach the farm-wide supervision tree: per-subfarm supervisors (CS, sinks, controller probes) under a root node with the controller restart ladder, recycler progress watches, shard-host watches, and dead-man lockdown escalation (implies -supervise)")
	deadmanBudget := fs.Duration("deadman", 0, "with -serve and -tree: wall-clock dead-man budget — if the soak loop itself stalls past it, drive the farm into global fail-closed lockdown")
	supHB := fs.Duration("supervise-hb", 0, "with -supervise: heartbeat probe cadence (0 = default 5s)")
	supK := fs.Int("supervise-k", 0, "with -supervise: consecutive missed heartbeats marking an endpoint down (0 = default 3)")
	supBreaker := fs.Int("supervise-breaker", 0, "with -supervise: restarts within the breaker window before quarantine (0 = default 5)")
	rawIron := fs.Int("rawiron", 0, "raw-iron inmates to add on the recycling pipeline (detonate → capture → reimage → re-admit)")
	serveAddr := fs.String("serve", "", "serve the live ops plane on this address and soak until SIGTERM")
	speed := fs.Float64("speed", 1, "with -serve: virtual-to-wall time ratio of the soak")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "gqfarm:", err)
		return 1
	}

	switch *metricsFormat {
	case "json", "prom", "text":
	default:
		return fail(fmt.Errorf("unknown -metrics-format %q (json, prom, text)", *metricsFormat))
	}
	var chaosProfile chaos.Profile
	if *chaosSpec != "" {
		p, err := chaos.Parse(*chaosSpec)
		if err != nil {
			return fail(err)
		}
		chaosProfile = p
		// Under injected faults the flow table holds reaped-but-idle
		// entries for up to the splice-idle sweep horizon; give the drain
		// room for every sweep to fire unless the user pinned it.
		drainSet := false
		fs.Visit(func(fl *flag.Flag) { drainSet = drainSet || fl.Name == "drain" })
		if !drainSet {
			*drain = 12 * time.Minute
		}
	}

	text := defaultConfig
	if *cfgPath != "" {
		b, err := os.ReadFile(*cfgPath)
		if err != nil {
			return fail(err)
		}
		text = string(b)
	}
	pcfg, err := policy.Parse(text)
	if err != nil {
		return fail(err)
	}

	// Synthesise a sample library from the Infection globs.
	var library []*policy.Sample
	known := map[string]bool{}
	for _, fam := range malware.Families() {
		known[fam] = true
	}
	var maxVLAN uint16
	for _, rule := range pcfg.VLANRules {
		if rule.Hi > maxVLAN {
			maxVLAN = rule.Hi
		}
		if rule.Infection == "" {
			continue
		}
		family := strings.SplitN(rule.Infection, ".", 2)[0]
		if !known[family] {
			fmt.Fprintf(stderr, "gqfarm: warning: no behavioural model for family %q\n", family)
			continue
		}
		name := strings.Replace(rule.Infection, "*", "001", 1)
		library = append(library, policy.NewSample(name, family, []byte("MZ-"+name)))
	}

	var f *farm.Farm
	if *shards > 0 {
		f = farm.NewShardedN(*seed, *workers, *shards)
	} else {
		f = farm.New(*seed)
	}
	ccAddr := netstack.MustParseAddr("50.8.207.91")
	cc := f.AddExternalHost("cc", ccAddr)
	if _, err := malware.NewCCServer(cc, malware.CCConfig{
		Template: "pharma special",
		Targets: []netstack.Addr{
			netstack.MustParseAddr("203.0.113.25"),
			netstack.MustParseAddr("203.0.113.26"),
		},
		Forbidden: []string{"DDOS 203.0.113.99"},
	}); err != nil {
		return fail(err)
	}
	gmailAddr := netstack.MustParseAddr("172.217.0.25")
	gmailHost := f.AddExternalHost("gmail", gmailAddr)
	gmail, err := malware.NewGMailMX(gmailHost, []string{"wergvan"})
	if err != nil {
		return fail(err)
	}
	// The MX fires this callback in gmailHost's domain; the CBL is
	// root-domain state, so on a sharded farm the listing is posted across.
	gmail.OnFingerprint = func(sender netstack.Addr, helo string) {
		if s := gmailHost.Sim(); s != f.Sim {
			s.PostTo(f.Sim, 0, func() { f.CBL.List(sender, "HELO "+helo+" fingerprinted") })
			return
		}
		f.CBL.List(sender, "HELO "+helo+" fingerprinted")
	}

	lo := pcfg.VLANRules[0].Lo
	sf, err := f.AddSubfarm(farm.SubfarmConfig{
		Name:   "Botfarm",
		VLANLo: lo, VLANHi: maxVLAN + 4,
		ServiceVLAN:   11,
		GlobalPool:    netstack.MustParsePrefix("192.0.2.0/24"),
		InfraPool:     netstack.MustParsePrefix("192.0.9.0/24"),
		PolicyConfig:  text,
		SampleLibrary: library,
		RepeatBatches: true,
		CCHosts: map[string]policy.AddrPort{
			"Rustock":  {Addr: ccAddr, Port: 443},
			"Grum":     {Addr: ccAddr, Port: 80},
			"MegaD":    {Addr: ccAddr, Port: 4560},
			"Clickbot": {Addr: ccAddr, Port: 8080},
			"GMailMX":  {Addr: gmailAddr, Port: 25},
		},
		GMailMX:        gmailAddr,
		SinkDropProb:   *dropProb,
		SinkStrictness: smtpx.Lenient,
		BannerGrab:     true,
	})
	if err != nil {
		return fail(err)
	}

	// Attach the NDJSON journal sink before any traffic flows so the journal
	// covers the whole run (the verdict namer is already installed by
	// farm.New, so verdict bits render symbolically). Deferred LIFO order
	// flushes the sink before closing the file — on every exit path.
	if *eventsPath != "" {
		eventsFile, err := os.Create(*eventsPath)
		if err != nil {
			return fail(err)
		}
		defer eventsFile.Close()
		sink := f.Sim.Obs().Journal.AttachNDJSON(eventsFile)
		defer sink.Flush()
	}

	var traceW *trace.Writer
	if *tracePath != "" {
		fh, err := os.Create(*tracePath)
		if err != nil {
			return fail(err)
		}
		defer fh.Close()
		if *nanoTrace {
			traceW = trace.NewNanoWriter(fh)
		} else {
			traceW = trace.NewWriter(fh)
		}
		// The tap fires in the router's domain; stamp packets with that
		// domain's clock (under -shards the router lives in the subfarm's
		// domain, not the farm root).
		sf.Router.AddTap(func(p *netstack.Packet) {
			traceW.WritePacket(sf.Sim.WallClock(), p.Marshal())
		})
	}

	for i := 0; i < *inmates; i++ {
		if _, err := sf.AddInmate(fmt.Sprintf("inmate-%d", i)); err != nil {
			return fail(err)
		}
	}

	// Raw-iron inmates join after the VM inmates so VLAN allocation stays
	// stable, and before chaos so reimage faults install on the controller.
	var recycler *farm.Recycler
	if *rawIron > 0 {
		sf.EnableRawIron(rawiron.Config{MaxConcurrent: 2})
		recycler = sf.AttachRecycler(farm.RecyclerConfig{Capture: true})
		for i := 0; i < *rawIron; i++ {
			fi, _, err := sf.AddRawIronInmate(fmt.Sprintf("iron-%d", i), "winxp-golden")
			if err != nil {
				return fail(err)
			}
			if err := recycler.Manage(fi); err != nil {
				return fail(err)
			}
		}
		recycler.Start()
		fmt.Fprintf(stderr, "gqfarm: %d raw-iron inmates on the recycling pipeline\n", *rawIron)
	}

	var sup *supervisor.Supervisor
	supCfg := supervisor.Config{
		HeartbeatEvery:   *supHB,
		MissThreshold:    *supK,
		BreakerThreshold: *supBreaker,
	}
	if *treeFlag {
		// The tree supervises every subfarm (idempotent over any earlier
		// Supervise) plus the farm root's own dependencies. Attached after
		// the recycler so its progress watch covers the pipeline.
		f.SuperviseTree(supCfg)
		sup = sf.Supervisor
		fmt.Fprintln(stderr, "gqfarm: supervision tree attached (root + per-subfarm nodes)")
	} else if *supervise {
		sup = sf.Supervise(supCfg)
		fmt.Fprintln(stderr, "gqfarm: containment-plane supervisor attached")
	}
	if *deadmanBudget > 0 && (*serveAddr == "" || !*treeFlag) {
		return fail(fmt.Errorf("-deadman needs both -serve and -tree"))
	}

	// Fault injection covers the inmate links present now; applied after
	// the inmates so every access link is impaired.
	var injector *chaos.Injector
	if *chaosSpec != "" {
		injector = chaos.Apply(sf, chaosProfile)
		fmt.Fprintf(stderr, "gqfarm: chaos profile %s\n", chaosProfile)
	}

	if *serveAddr != "" {
		return serve(f, *serveAddr, *speed, *deadmanBudget, *anonymize, *metricsPath, *metricsFormat, stdout, stderr, fail)
	}

	fmt.Fprintf(stderr, "gqfarm: running %d inmates for %v of virtual time...\n", *inmates, *dur)
	start := time.Now()
	f.Run(*dur)
	fmt.Fprintf(stderr, "gqfarm: done in %v wall time (%d events)\n",
		time.Since(start).Round(time.Millisecond), f.Sim.Fired)
	if f.Coord != nil {
		if rounds, windows := f.Coord.Stats(); rounds > 0 {
			fmt.Fprintf(stderr, "gqfarm: sharded: %.2f domains busy per synchronization round\n",
				float64(windows)/float64(rounds))
		}
	}

	// Health checks: probe containment if asked, then retire the inmates and
	// drain so the flow table can empty.
	var failures []string
	if *verify {
		out, err := farm.RunContainmentProbe(f, sf, nil, 2*time.Minute)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "gqfarm: %s\n", out)
		if escaped := out.Escaped(); len(escaped) > 0 {
			failures = append(failures,
				fmt.Sprintf("containment probe escaped to %s", strings.Join(escaped, ", ")))
		}
	}
	if recycler != nil {
		// Stop opening detonation windows before retiring the inmates;
		// in-flight capture/reimage operations run out during the drain.
		recycler.Stop()
	}
	for _, sub := range f.Subfarms {
		for _, fi := range sub.Inmates {
			fi.Terminate()
		}
	}
	if injector != nil {
		// End injection before the drain: links come back up, stalls clear,
		// and any crashed containment server is restarted (by the supervisor
		// when one is attached, by the injector's restore otherwise), so a
		// healthy farm must end with an empty flow table.
		injector.Stop()
		fmt.Fprintf(stderr, "gqfarm: chaos injection stopped (%d CS crashes injected)\n", injector.Crashes)
	}
	f.Run(*drain)

	if sup != nil {
		fmt.Fprintf(stderr, "gqfarm: supervisor: %d recoveries %v\n", len(sup.Recoveries), sup.Recoveries)
		for i := range sf.CSCluster {
			if !sup.Healthy(i) && !sup.Quarantined(i) {
				failures = append(failures, fmt.Sprintf("containment server %d still down after drain", i))
			}
		}
	}

	open := 0
	for _, sub := range f.Subfarms {
		open += sub.Router.ActiveFlows()
	}
	if open > 0 {
		failures = append(failures, fmt.Sprintf("%d flows still open after drain", open))
		f.Sim.Obs().Journal.DumpAll("run ended with open flows")
	}
	if n := f.CBL.ListedCount(); n > 0 {
		failures = append(failures, fmt.Sprintf("%d inmate addresses blacklisted", n))
	}

	fmt.Fprintln(stdout, f.Reporter(*anonymize).Generate())
	if traceW != nil {
		if err := traceW.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "gqfarm: wrote %d packets (%d bytes) to %s\n",
			traceW.Packets, traceW.Bytes, *tracePath)
	}
	if *metricsPath != "" {
		if err := writeMetricsFile(f, *metricsPath, *metricsFormat); err != nil {
			return fail(err)
		}
	}

	if len(failures) > 0 {
		dumpPath, err := writeFlightDumps(f, *flightDir)
		if err != nil {
			dumpPath = "(dump failed: " + err.Error() + ")"
		}
		fmt.Fprintf(stderr, "gqfarm: FAILED: %s — flight recorder at %s\n",
			strings.Join(failures, "; "), dumpPath)
		return 1
	}
	return 0
}

// serve runs the farm as a real-time-paced soak with the ops plane mounted
// on addr until SIGINT/SIGTERM, then shuts down cleanly: HTTP drained,
// report printed, metrics written, exit 0 (journal flushing is handled by
// run's defers).
func serve(f *farm.Farm, addr string, speed float64, deadmanBudget time.Duration, anonymize bool,
	metricsPath, metricsFormat string, stdout, stderr io.Writer, fail func(error) int) int {
	j := f.Sim.Obs().Journal
	fan := obs.NewFanout(j.Sink())
	j.SetSink(fan)
	drv := ops.NewDriver(f.Sim, speed)
	osrv, err := ops.NewServer(ops.Config{Farm: f, Fanout: fan, Driver: drv})
	if err != nil {
		return fail(err)
	}
	if deadmanBudget > 0 {
		// Wall-clock dead-man over the soak loop: the supervision tree
		// watches everything inside the simulation, this watches the
		// simulation itself. A stalled loop is driven into global lockdown
		// through the normal Driver doorway — if the loop is too wedged to
		// pick the action up before the control timeout, it stays queued
		// and executes the moment the loop revives, lockdown first.
		dm := ops.NewDeadman(drv, deadmanBudget, func(stalled time.Duration) {
			fmt.Fprintf(stderr, "gqfarm: dead-man: no soak progress for %v — engaging global lockdown\n",
				stalled.Round(time.Millisecond))
			reason := fmt.Sprintf("ops dead-man: soak stalled %v", stalled.Round(time.Second))
			if err := drv.Do(ops.DefaultControlTimeout, func() error {
				f.Tree.GlobalLockdown(reason)
				return nil
			}); err != nil {
				fmt.Fprintf(stderr, "gqfarm: dead-man: sim loop unresponsive (%v) — lockdown queued for when it revives\n", err)
			}
		})
		defer dm.Stop()
		fmt.Fprintf(stderr, "gqfarm: dead-man switch armed (budget %v)\n", deadmanBudget)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fail(err)
	}
	hs := &http.Server{Handler: osrv.Handler()}
	go hs.Serve(ln)
	fmt.Fprintf(stderr, "gqfarm: serving ops plane on http://%s (speed %gx, pid %d)\n",
		ln.Addr(), speed, os.Getpid())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(stderr, "gqfarm: caught %v — stopping the soak\n", sig)
		drv.Stop()
	}()

	start := time.Now()
	drv.Run() // the calling goroutine is the sim goroutine until Stop

	// Drain ordinary requests briefly, then cut lingering SSE streams.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if hs.Shutdown(ctx) != nil {
		hs.Close()
	}

	fmt.Fprintf(stderr, "gqfarm: soak ended at %v virtual after %v wall (%d events, %d journal drops across %d subscribers)\n",
		f.Sim.ObservedNow(), time.Since(start).Round(time.Millisecond),
		f.Sim.Fired, fan.Dropped(), fan.Subscribers())
	fmt.Fprintln(stdout, f.Reporter(anonymize).Generate())
	if metricsPath != "" {
		if err := writeMetricsFile(f, metricsPath, metricsFormat); err != nil {
			return fail(err)
		}
	}
	return 0
}

// writeMetricsFile writes the final telemetry snapshot in the chosen
// format (validated during flag parsing).
func writeMetricsFile(f *farm.Farm, path, format string) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	snap := f.Sim.Obs().Snapshot()
	switch format {
	case "prom":
		return snap.WriteProm(fh)
	case "text":
		return snap.WriteText(fh)
	default:
		return snap.WriteJSON(fh)
	}
}

// writeFlightDumps serializes every retained flight-recorder dump into one
// NDJSON file under dir and returns its path.
func writeFlightDumps(f *farm.Farm, dir string) (string, error) {
	dumps := f.FlightDumps()
	if len(dumps) == 0 {
		dumps = f.Sim.Obs().Journal.DumpAll("gqfarm failure")
	}
	path := filepath.Join(dir, "gqfarm-flight.ndjson")
	fh, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer fh.Close()
	for _, d := range dumps {
		if err := f.Sim.Obs().Journal.WriteDump(fh, d); err != nil {
			return "", err
		}
	}
	return path, nil
}
