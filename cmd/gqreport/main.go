// Command gqreport runs the Bro-style analyzers over a recorded pcap trace
// and prints a per-inmate activity summary: containment requests observed
// on the wire (shim analyzer) and SMTP sessions/DATA transfers (SMTP
// analyzer). This is the offline half of the §6.5 reporting pipeline —
// everything is extracted from network activity alone.
//
//	gqreport run.pcap
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gq/internal/netstack"
	"gq/internal/report"
	"gq/internal/trace"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gqreport <file.pcap>")
		os.Exit(2)
	}
	fh, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "gqreport:", err)
		os.Exit(1)
	}
	defer fh.Close()
	recs, err := trace.Read(fh)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gqreport:", err)
		os.Exit(1)
	}

	smtp := report.NewSMTPAnalyzer()
	shims := report.NewShimAnalyzer()
	for _, rec := range recs {
		p, err := netstack.ParseFrame(rec.Frame)
		if err != nil {
			continue
		}
		smtp.Tap(p)
		shims.Tap(p)
	}

	fmt.Printf("Trace Activity Summary (%d packets)\n", len(recs))
	fmt.Println("===================================")
	fmt.Println("\nContainment requests by inmate VLAN:")
	vlans := make([]int, 0, len(shims.RequestsByVLAN))
	for v := range shims.RequestsByVLAN {
		vlans = append(vlans, int(v))
	}
	sort.Ints(vlans)
	for _, v := range vlans {
		fmt.Printf("  VLAN %-5d %d flows\n", v, shims.RequestsByVLAN[uint16(v)])
	}

	fmt.Println("\nSMTP activity by inmate:")
	addrs := make([]netstack.Addr, 0, len(smtp.PerInmate))
	for a := range smtp.PerInmate {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		st := smtp.PerInmate[a]
		fmt.Printf("  %-15s sessions=%d DATA=%d\n", a, st.Sessions, st.DataTransfers)
	}
}
