// Command gqtrace dumps a pcap trace recorded by the farm (or any classic
// little-endian pcap of Ethernet frames) in a tcpdump-like one-line-per-
// packet format, decoding the farm's shim protocol where present.
//
//	gqtrace run.pcap
package main

import (
	"flag"
	"fmt"
	"os"

	"gq/internal/netstack"
	"gq/internal/shim"
	"gq/internal/trace"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gqtrace <file.pcap>")
		os.Exit(2)
	}
	fh, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "gqtrace:", err)
		os.Exit(1)
	}
	defer fh.Close()
	recs, err := trace.Read(fh)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gqtrace:", err)
		os.Exit(1)
	}
	for _, rec := range recs {
		p, err := netstack.ParseFrame(rec.Frame)
		if err != nil {
			fmt.Printf("%s  [unparseable frame, %d bytes]\n", rec.Time.Format("15:04:05.000000"), len(rec.Frame))
			continue
		}
		line := fmt.Sprintf("%s  %s", rec.Time.Format("15:04:05.000000"), p)
		if note := shimNote(p.Payload); note != "" {
			line += "  " + note
		}
		fmt.Println(line)
	}
	fmt.Fprintf(os.Stderr, "gqtrace: %d packets\n", len(recs))
}

// shimNote annotates shim protocol messages riding in the payload.
func shimNote(payload []byte) string {
	if len(payload) < shim.PreambleLen {
		return ""
	}
	if req, err := shim.UnmarshalRequest(payload); err == nil {
		return fmt.Sprintf("{REQ SHIM vlan=%d orig=%s:%d resp=%s:%d nonce=%d}",
			req.VLAN, req.OrigIP, req.OrigPort, req.RespIP, req.RespPort, req.NoncePort)
	}
	if resp, _, err := shim.UnmarshalResponse(payload); err == nil {
		return fmt.Sprintf("{RSP SHIM %s policy=%q ann=%q}",
			resp.Verdict, resp.PolicyName, resp.Annotation)
	}
	return ""
}
