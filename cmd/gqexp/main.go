// Command gqexp regenerates the paper's tables and figures. Each
// experiment id maps to a DESIGN.md index entry:
//
//	gqexp -exp t1         Table 1 (representative subset of captures)
//	gqexp -exp t1-full    Table 1 (all 66 captures; slower)
//	gqexp -exp f2         Figure 2 flow-manipulation modes
//	gqexp -exp f5         Figure 5 REWRITE packet flow
//	gqexp -exp f6         Figure 6 configuration round-trip
//	gqexp -exp f7         Figure 7 Botfarm activity report
//	gqexp -exp s1         §7.2 gateway scaling
//	gqexp -exp s2         §7.2 containment server cluster
//	gqexp -exp s3         §7.2 VLAN pool limit
//	gqexp -exp all        everything above (t1 subset)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gq/internal/experiments"
	"gq/internal/malware"
	"gq/internal/policy"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (t1, t1-full, f2, f5, f6, f7, s1, s2, s3, all)")
	seed := flag.Int64("seed", 1, "simulation seed")
	dur := flag.Duration("duration", time.Hour, "virtual duration for farm runs")
	flag.Parse()

	run := func(id string) error {
		switch id {
		case "t1", "t1-full":
			specs := malware.Table1
			if id == "t1" {
				specs = representativeSubset()
			}
			fmt.Printf("== Table 1: self-propagating worms caught by the honeyfarm (%d captures) ==\n", len(specs))
			_, text, err := experiments.RunTable1(*seed, specs, 20*time.Minute)
			if err != nil {
				return err
			}
			fmt.Println(text)
			fmt.Println("(* marks measured incubation over 3 minutes, the paper's bold rows)")
		case "f2":
			fmt.Println("== Figure 2 ==")
			_, text, err := experiments.RunFigure2(*seed)
			if err != nil {
				return err
			}
			fmt.Println(text)
		case "f5":
			fmt.Println("== Figure 5 ==")
			_, text, err := experiments.RunFigure5(*seed)
			if err != nil {
				return err
			}
			fmt.Println(text)
		case "f6":
			fmt.Println("== Figure 6: containment server configuration ==")
			cfg, err := policy.Parse(fig6Text)
			if err != nil {
				return err
			}
			fmt.Print(fig6Text)
			fmt.Printf("\nparsed: %d VLAN rules, services:", len(cfg.VLANRules))
			for name, loc := range cfg.Services {
				fmt.Printf(" %s=%s", name, loc)
			}
			fmt.Println()
		case "f7":
			fmt.Println("== Figure 7: Botfarm activity report ==")
			out, err := experiments.RunFigure7(experiments.Figure7Config{
				Seed: *seed, Duration: *dur, DropProb: 0.35,
			})
			if err != nil {
				return err
			}
			fmt.Println(out.Report)
			fmt.Printf("shape: %d REFLECTed SMTP flows vs %d completed sessions (%d DATA transfers)\n",
				out.ReflectedSMTPFlows, out.SMTPSessions, out.SMTPDataTransfers)
		case "s1":
			_, text, err := experiments.RunScalabilityGateway(*seed,
				[][2]int{{1, 4}, {2, 4}, {4, 4}, {6, 4}, {6, 12}}, 20*time.Minute)
			if err != nil {
				return err
			}
			fmt.Println(text)
		case "s2":
			_, text, err := experiments.RunScalabilityCluster(*seed, []int{1, 2, 4}, 8, 20*time.Minute)
			if err != nil {
				return err
			}
			fmt.Println(text)
		case "s3":
			_, text := experiments.RunScalabilityVLANPool()
			fmt.Println(text)
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		return nil
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"t1", "f2", "f5", "f6", "f7", "s1", "s2", "s3"}
	}
	for _, id := range ids {
		if err := run(id); err != nil {
			fmt.Fprintf(os.Stderr, "gqexp: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(strings.Repeat("-", 72))
	}
}

// representativeSubset picks one capture per family plus the extremes, so
// the default run finishes quickly while covering the table's range.
func representativeSubset() []malware.WormSpec {
	seen := map[string]bool{}
	var out []malware.WormSpec
	for _, w := range malware.Table1 {
		key := w.Name
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, w)
	}
	return out
}

const fig6Text = `[VLAN 16-17]
Decider = Rustock
Infection = rustock.100921.*.exe

[VLAN 18-19]
Decider = Grum
Infection = grum.100818.*.exe

[VLAN 16-19]
Trigger = *:25/tcp / 30min < 1 -> revert

[Autoinfect]
Address = 10.9.8.7
Port = 6543

[BannerSmtpSink]
Address = 10.3.1.4
Port = 2526
`
