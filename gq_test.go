package gq_test

// Tests of the public API surface: a downstream user's view of the
// library, exercised without touching internal packages beyond what the
// examples themselves use.

import (
	"strings"
	"testing"
	"time"

	"gq"
	"gq/internal/farm"
	"gq/internal/shim"
)

func TestPublicQuickstart(t *testing.T) {
	f := gq.NewFarm(1)
	f.AddExternalHost("cc", gq.MustParseAddr("203.0.113.5"))
	sf, err := f.AddSubfarm(gq.SubfarmConfig{
		Name:   "api",
		VLANLo: 16, VLANHi: 20,
		GlobalPool: gq.MustParsePrefix("192.0.2.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	sf.OnBootHook = func(fi *farm.FarmInmate) {
		c := fi.Host.Dial(gq.MustParseAddr("203.0.113.5"), 80)
		c.OnConnect = func() { c.Write([]byte("hello")) }
	}
	if _, err := sf.AddInmate("i0"); err != nil {
		t.Fatal(err)
	}
	f.Run(time.Minute)
	recs := sf.Router.Records()
	var contained bool
	for _, r := range recs {
		if r.Verdict == gq.Reflect && r.Policy == "DefaultDeny" {
			contained = true
		}
	}
	if !contained {
		t.Fatalf("default-deny did not contain: %+v", recs)
	}
	if !strings.Contains(f.Reporter(true).Generate(), "Inmate Activity") {
		t.Fatal("reporter broken")
	}
}

func TestPublicPolicyRegistry(t *testing.T) {
	names := gq.PolicyNames()
	for _, want := range []string{"DefaultDeny", "Rustock", "Grum", "Waledac", "Storm", "WormCapture"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("policy %q missing from registry", want)
		}
	}
	env := &gq.PolicyEnv{InternalPrefix: gq.MustParsePrefix("10.0.0.0/16")}
	d, err := gq.NewPolicy("HardDeny", env)
	if err != nil {
		t.Fatal(err)
	}
	dec := d.Decide(&shim.Request{VLAN: 16, RespPort: 80})
	if dec.Verdict != gq.Drop {
		t.Fatalf("verdict %v", dec.Verdict)
	}
}

func TestPublicCustomPolicy(t *testing.T) {
	gq.RegisterPolicy("TestOnlyHTTPS", func(env *gq.PolicyEnv) gq.Decider {
		return httpsOnly{}
	})
	d, err := gq.NewPolicy("TestOnlyHTTPS", &gq.PolicyEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Decide(&shim.Request{RespPort: 443}).Verdict != gq.Forward {
		t.Fatal("custom policy broken")
	}
	if d.Decide(&shim.Request{RespPort: 80}).Verdict != gq.Drop {
		t.Fatal("custom policy broken")
	}
}

type httpsOnly struct{}

func (httpsOnly) Name() string { return "TestOnlyHTTPS" }
func (httpsOnly) Decide(req *shim.Request) gq.Decision {
	if req.RespPort == 443 {
		return gq.Decision{Verdict: gq.Forward}
	}
	return gq.Decision{Verdict: gq.Drop}
}

func TestPublicConfigAndTriggerParsers(t *testing.T) {
	cfg, err := gq.ParsePolicyConfig("[VLAN 16-17]\nDecider = Rustock\n")
	if err != nil || len(cfg.VLANRules) != 1 {
		t.Fatal(err)
	}
	tr, err := gq.ParseTrigger("*:25/tcp / 30min < 1 -> revert")
	if err != nil || tr.Action != "revert" {
		t.Fatal(err)
	}
}

func TestPublicTable1AndFamilies(t *testing.T) {
	if len(gq.Table1) != 66 {
		t.Fatalf("Table1 rows %d", len(gq.Table1))
	}
	fams := gq.MalwareFamilies()
	if len(fams) < 7 {
		t.Fatalf("families %v", fams)
	}
	s := gq.NewSample("a.exe", "rustock", []byte("MZ"))
	if len(s.MD5) != 32 {
		t.Fatalf("md5 %q", s.MD5)
	}
}

func TestPublicWormExperiment(t *testing.T) {
	e, err := gq.NewWormExperiment(3, gq.Table1[28], 3)
	if err != nil {
		t.Fatal(err)
	}
	e.Farm.Run(30 * time.Second)
	e.Seed()
	gq.RunFor(e.Farm, 5*time.Minute)
	if len(e.Infections) < 2 {
		t.Fatal("no chain")
	}
}
