#!/usr/bin/env bash
# Serve-mode smoke test: boot `gqfarm -serve` with raw-iron inmates on the
# recycling pipeline, poll /healthz until the ops plane answers, scrape
# /metrics in both machine formats, list /machines, read one SSE event
# with a hard timeout, force one recycle, then SIGTERM and require a clean
# exit 0. A second leg repeats the core checks against a sharded farm
# (-shards 2 -workers 2): the ops plane must serve a multi-domain soak and
# control posts must land in the owning domain's event loop. Run from the
# repository root (CI job: serve-smoke).
set -euo pipefail

ADDR="127.0.0.1:${SMOKE_PORT:-9321}"
LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

go build -o /tmp/gqfarm-smoke ./cmd/gqfarm
/tmp/gqfarm-smoke -serve "$ADDR" -speed 600 -inmates 2 -rawiron 2 >"$LOG" 2>&1 &
PID=$!
trap 'kill -9 $PID 2>/dev/null || true; rm -f "$LOG"' EXIT

fail() {
    echo "serve_smoke: FAIL: $*" >&2
    echo "--- gqfarm log ---" >&2
    cat "$LOG" >&2
    exit 1
}

# The ops plane must come up within 10s.
up=0
for _ in $(seq 1 100); do
    if curl -sf -m 2 "http://$ADDR/healthz" >/dev/null 2>&1; then up=1; break; fi
    kill -0 $PID 2>/dev/null || fail "gqfarm died during startup"
    sleep 0.1
done
[ "$up" = 1 ] || fail "/healthz never answered"

# Capture then grep: under pipefail, grep -q closing the pipe early would
# fail an otherwise-healthy curl with EPIPE.
expect() { # expect <url> <pattern> <label>
    local body
    body=$(curl -sf -m 5 "$1") || fail "$3 unreachable"
    echo "$body" | grep -q "$2" || fail "$3 missing $2"
}
expect "http://$ADDR/healthz" '"status": "ok"' "/healthz"
expect "http://$ADDR/metrics" '# TYPE gq_sim_time_seconds gauge' "/metrics (prom)"
expect "http://$ADDR/metrics?format=json" '"counters"' "/metrics (json)"
expect "http://$ADDR/flights" '"dumps"' "/flights"
expect "http://$ADDR/machines" '"name": "Botfarm-iron-0"' "/machines"

# One SSE read: the stream must yield at least one data line before the
# timeout (curl exits non-zero on -m, so guard with the grep result).
(curl -s -N -m 8 "http://$ADDR/events" || true) | grep -q '^data: {"t_ns":' \
    || fail "SSE stream produced no events"

# Runtime control answers synchronously.
ctrl=$(curl -sf -m 5 -X POST -d '{"lo":16,"hi":17,"policy":"HardDeny"}' \
    "http://$ADDR/policy") || fail "POST /policy unreachable"
echo "$ctrl" | grep -q '"applied": "policy_swap"' || fail "POST /policy rejected: $ctrl"

# Force one recycle. The kick only lands while the box is inside its
# detonation window, and at -speed 600 the pipeline phases rotate in wall
# seconds — retry until we catch it detonating (VLAN 18 is iron-0: two VM
# inmates take 16-17, the raw-iron pair 18-19).
recycled=0
for _ in $(seq 1 50); do
    rc_body=$(curl -s -m 5 -X POST -d '{}' "http://$ADDR/recycle/18" || true)
    if echo "$rc_body" | grep -q '"applied": "recycle"'; then recycled=1; break; fi
    sleep 0.2
done
[ "$recycled" = 1 ] || fail "POST /recycle/18 never landed: $rc_body"

kill -TERM $PID
rc=0
wait $PID || rc=$?
[ "$rc" = 0 ] || fail "gqfarm exited $rc after SIGTERM, want 0"
grep -q 'soak ended' "$LOG" || fail "clean-shutdown line missing from log"

# Second leg: a sharded served soak. The ops plane must compose with
# -shards — control posts land in the owning domain's event loop — and
# the coordinator's scheduling metrics must surface on /metrics.
ADDR2="127.0.0.1:${SMOKE_PORT2:-9322}"
LOG2="$(mktemp)"
/tmp/gqfarm-smoke -serve "$ADDR2" -speed 600 -inmates 2 -shards 2 -workers 2 >"$LOG2" 2>&1 &
PID2=$!
trap 'kill -9 $PID $PID2 2>/dev/null || true; rm -f "$LOG" "$LOG2"' EXIT

up=0
for _ in $(seq 1 100); do
    if curl -sf -m 2 "http://$ADDR2/healthz" >/dev/null 2>&1; then up=1; break; fi
    kill -0 $PID2 2>/dev/null || { LOG="$LOG2" fail "sharded gqfarm died during startup"; }
    sleep 0.1
done
[ "$up" = 1 ] || { LOG="$LOG2" fail "sharded /healthz never answered"; }

sexpect() { # sexpect <url> <pattern> <label>
    local body
    body=$(curl -sf -m 5 "$1") || { LOG="$LOG2" fail "$3 unreachable (sharded)"; }
    echo "$body" | grep -q "$2" || { LOG="$LOG2" fail "$3 missing $2 (sharded)"; }
}
sexpect "http://$ADDR2/healthz" '"status": "ok"' "/healthz"
sexpect "http://$ADDR2/metrics" '# TYPE gq_sim_domains_busy gauge' "/metrics (prom)"
sexpect "http://$ADDR2/metrics?format=json" '"sim.rounds"' "/metrics (json)"

# A control post must round-trip through the owning domain's event loop.
ctrl=$(curl -sf -m 5 -X POST -d '{"lo":16,"hi":17,"policy":"HardDeny"}' \
    "http://$ADDR2/policy") || { LOG="$LOG2" fail "POST /policy unreachable (sharded)"; }
echo "$ctrl" | grep -q '"applied": "policy_swap"' \
    || { LOG="$LOG2" fail "POST /policy rejected on sharded farm: $ctrl"; }

kill -TERM $PID2
rc=0
wait $PID2 || rc=$?
[ "$rc" = 0 ] || { LOG="$LOG2" fail "sharded gqfarm exited $rc after SIGTERM, want 0"; }
grep -q 'soak ended' "$LOG2" || { LOG="$LOG2" fail "sharded clean-shutdown line missing from log"; }
rm -f "$LOG2"

echo "serve_smoke: OK"
