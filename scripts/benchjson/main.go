// Command benchjson parses `go test -bench` output on stdin and merges it
// into a JSON results file as a labelled section, so successive runs
// (baseline, fastpath, ...) accumulate side by side:
//
//	go test -run '^$' -bench Scalability -benchmem . | \
//	    go run ./scripts/benchjson -label fastpath -out BENCH_gateway.json
//
// Input lines are echoed to stdout so the tool can sit at the end of a
// pipe without hiding the benchmark output.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// metric names as they appear in benchmark output, mapped to JSON keys.
var unitKey = map[string]string{
	"ns/op":     "ns_op",
	"B/op":      "bytes_op",
	"allocs/op": "allocs_op",
	"MB/s":      "mb_s",
}

type result map[string]float64

type doc struct {
	Env      map[string]string            `json:"env,omitempty"`
	Sections map[string]map[string]result `json:"sections"`
}

func main() {
	label := flag.String("label", "", "section name to store results under (required)")
	out := flag.String("out", "BENCH_gateway.json", "JSON file to merge into")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}

	d := doc{Env: map[string]string{}, Sections: map[string]map[string]result{}}
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &d); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *out, err)
			os.Exit(1)
		}
		if d.Sections == nil {
			d.Sections = map[string]map[string]result{}
		}
		if d.Env == nil {
			d.Env = map[string]string{}
		}
	}

	section := map[string]result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if env, val, ok := strings.Cut(line, ": "); ok && !strings.Contains(env, " ") {
			// "goos: linux", "pkg: gq", "cpu: ..." preamble lines.
			d.Env[env] = val
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		name := strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", maxProcsSuffix(fields[0])))
		r := result{}
		if iters, err := strconv.ParseFloat(fields[1], 64); err == nil {
			r["iterations"] = iters
		}
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			key, ok := unitKey[fields[i+1]]
			if !ok {
				// Custom b.ReportMetric units (e.g. "verdicts").
				key = strings.NewReplacer("/", "_", ".", "_").Replace(fields[i+1])
			}
			r[key] = v
		}
		if len(r) > 1 {
			section[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(section) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	d.Sections[*label] = section

	enc, err := json.MarshalIndent(&d, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote section %q (%d benchmarks) to %s\n",
		*label, len(section), *out)
}

// maxProcsSuffix extracts the trailing -N GOMAXPROCS marker from a
// benchmark name, or 0 if there is none.
func maxProcsSuffix(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return 0
	}
	return n
}
