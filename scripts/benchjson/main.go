// Command benchjson parses `go test -bench` output on stdin and merges it
// into a JSON results file as a labelled section, so successive runs
// (baseline, fastpath, ...) accumulate side by side:
//
//	go test -run '^$' -bench Scalability -benchmem . | \
//	    go run ./scripts/benchjson -label fastpath -out BENCH_gateway.json
//
// Input lines are echoed to stdout so the tool can sit at the end of a
// pipe without hiding the benchmark output.
//
// Results are keyed by the full benchmark name including the -N suffix go
// test appends when GOMAXPROCS > 1, and each result records its CPU count
// under "cpus" — so one file can hold the same benchmark at several -cpu
// values, and the gate only ever compares like-for-like counts.
//
// With -compare the tool gates instead of recording: fresh results on
// stdin are diffed against the named stored section and the run fails
// (exit 1) when any benchmark's allocs/op regresses by more than
// -max-allocs-regress percent. ns/op deltas are reported but not gated —
// wall time on shared CI machines is too noisy to fail a build over:
//
//	go test -run '^$' -bench ScalabilityGateway -benchmem . | \
//	    go run ./scripts/benchjson -compare fastpath -out BENCH_gateway.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metric names as they appear in benchmark output, mapped to JSON keys.
var unitKey = map[string]string{
	"ns/op":     "ns_op",
	"B/op":      "bytes_op",
	"allocs/op": "allocs_op",
	"MB/s":      "mb_s",
}

type result map[string]float64

type doc struct {
	Env      map[string]string            `json:"env,omitempty"`
	Sections map[string]map[string]result `json:"sections"`
}

func main() {
	label := flag.String("label", "", "section name to store results under")
	out := flag.String("out", "BENCH_gateway.json", "JSON file to merge into (or compare against)")
	compare := flag.String("compare", "", "gate mode: compare stdin results against this stored section instead of recording")
	maxAllocs := flag.Float64("max-allocs-regress", 5, "with -compare: maximum allowed allocs/op regression in percent")
	maxRecovery := flag.Float64("max-recovery-regress", 5, "with -compare: maximum allowed recovery_ms regression in percent")
	maxSpecimens := flag.Float64("max-specimens-regress", 5, "with -compare: maximum allowed specimens/day decrease in percent")
	maxLockdown := flag.Float64("max-lockdown-regress", 5, "with -compare: maximum allowed lockdown_ms regression in percent")
	flag.Parse()
	if (*label == "") == (*compare == "") {
		fmt.Fprintln(os.Stderr, "benchjson: exactly one of -label or -compare is required")
		os.Exit(2)
	}

	d := doc{Env: map[string]string{}, Sections: map[string]map[string]result{}}
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &d); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *out, err)
			os.Exit(1)
		}
		if d.Sections == nil {
			d.Sections = map[string]map[string]result{}
		}
		if d.Env == nil {
			d.Env = map[string]string{}
		}
	} else if *compare != "" {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	section := map[string]result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if env, val, ok := strings.Cut(line, ": "); ok && !strings.Contains(env, " ") {
			// "goos: linux", "pkg: gq", "cpu: ..." preamble lines.
			d.Env[env] = val
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		// The full name — including the -N GOMAXPROCS suffix `go test -cpu`
		// appends — is the key, so one section can hold the same benchmark
		// at several CPU counts side by side. The count is also recorded as
		// the "cpus" metric (no suffix means GOMAXPROCS=1).
		name := fields[0]
		r := result{"cpus": 1}
		if n := maxProcsSuffix(name); n > 0 {
			r["cpus"] = float64(n)
		}
		if iters, err := strconv.ParseFloat(fields[1], 64); err == nil {
			r["iterations"] = iters
		}
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			key, ok := unitKey[fields[i+1]]
			if !ok {
				// Custom b.ReportMetric units (e.g. "verdicts").
				key = strings.NewReplacer("/", "_", ".", "_").Replace(fields[i+1])
			}
			r[key] = v
		}
		if len(r) > 2 { // more than the implicit cpus + iterations
			section[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(section) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	if *compare != "" {
		os.Exit(compareSections(d.Sections[*compare], section, *compare, *maxAllocs, *maxRecovery, *maxSpecimens, *maxLockdown))
	}
	d.Sections[*label] = section

	enc, err := json.MarshalIndent(&d, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote section %q (%d benchmarks) to %s\n",
		*label, len(section), *out)
}

// compareSections gates fresh results against a stored baseline section.
// allocs/op may not regress more than maxAllocsPct percent (a baseline of
// zero allocs must stay zero), recovery_ms — virtual supervisor recovery
// time, deterministic for a pinned seed — not more than maxRecoveryPct,
// specimens_day — virtual recycling throughput, where higher is better —
// may not DECREASE more than maxSpecimensPct, and lockdown_ms — the
// virtual kill-to-global-dead-man escalation time, equally deterministic
// — not more than maxLockdownPct. ns/op deltas are printed for the
// record but never fail the gate. Returns the process exit code.
func compareSections(baseline, fresh map[string]result, name string, maxAllocsPct, maxRecoveryPct, maxSpecimensPct, maxLockdownPct float64) int {
	if len(baseline) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no baseline section %q to compare against\n", name)
		return 1
	}
	failed := 0
	compared := 0
	for _, bench := range sortedKeys(fresh) {
		base, ok := baseline[bench]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: %s: not in baseline section %q, skipping\n", bench, name)
			continue
		}
		// Only like-for-like CPU counts compare: the full name carries the
		// -N GOMAXPROCS suffix, so a name match normally implies a cpus
		// match — but a baseline recorded before cpus were tracked gets one
		// chance to mismatch, and we refuse to gate across that.
		if bc, fc := base["cpus"], fresh[bench]["cpus"]; bc != 0 && fc != 0 && bc != fc {
			fmt.Fprintf(os.Stderr, "benchjson: %s: baseline at %.0f cpus, fresh at %.0f — not comparable, skipping\n",
				bench, bc, fc)
			continue
		}
		compared++
		oldAllocs, newAllocs := base["allocs_op"], fresh[bench]["allocs_op"]
		status := "ok"
		switch {
		case oldAllocs == 0 && newAllocs > 0:
			status = "FAIL"
			failed++
		case oldAllocs > 0 && (newAllocs-oldAllocs)/oldAllocs*100 > maxAllocsPct:
			status = "FAIL"
			failed++
		}
		line := fmt.Sprintf("benchjson: %-44s allocs/op %.0f -> %.0f", bench, oldAllocs, newAllocs)
		if oldRec, newRec := base["recovery_ms"], fresh[bench]["recovery_ms"]; oldRec > 0 {
			if (newRec-oldRec)/oldRec*100 > maxRecoveryPct {
				status = "FAIL"
				failed++
			}
			line += fmt.Sprintf("  recovery_ms %.0f -> %.0f", oldRec, newRec)
		}
		if oldSpec, newSpec := base["specimens_day"], fresh[bench]["specimens_day"]; oldSpec > 0 {
			if (oldSpec-newSpec)/oldSpec*100 > maxSpecimensPct {
				status = "FAIL"
				failed++
			}
			line += fmt.Sprintf("  specimens/day %.0f -> %.0f", oldSpec, newSpec)
		}
		if oldLock, newLock := base["lockdown_ms"], fresh[bench]["lockdown_ms"]; oldLock > 0 {
			if (newLock-oldLock)/oldLock*100 > maxLockdownPct {
				status = "FAIL"
				failed++
			}
			line += fmt.Sprintf("  lockdown_ms %.0f -> %.0f", oldLock, newLock)
		}
		if oldNs := base["ns_op"]; oldNs > 0 {
			line += fmt.Sprintf("  ns/op %+.1f%%", (fresh[bench]["ns_op"]-oldNs)/oldNs*100)
		}
		fmt.Fprintf(os.Stderr, "%s  [%s]\n", line, status)
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: nothing to compare against section %q\n", name)
		return 1
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: FAIL: %d benchmark(s) regressed beyond the gate (allocs/op %.0f%%, recovery_ms %.0f%%) vs section %q\n",
			failed, maxAllocsPct, maxRecoveryPct, name)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchjson: ok: %d benchmark(s) within %.0f%% allocs/op of section %q\n",
		compared, maxAllocsPct, name)
	return 0
}

// sortedKeys returns a map's keys in sorted order for stable output.
func sortedKeys(m map[string]result) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// maxProcsSuffix extracts the trailing -N GOMAXPROCS marker from a
// benchmark name, or 0 if there is none.
func maxProcsSuffix(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return 0
	}
	return n
}
