// Package gq is a from-scratch reproduction of GQ, the malware execution
// farm of Kreibich, Weaver, Kanich, Cui, and Paxson — "GQ: Practical
// Containment for Measuring Modern Malware Systems" (IMC 2011).
//
// GQ's design makes per-flow containment decisions first-order primitives:
// a central gateway redirects every new flow entering or leaving the
// inmate network to a containment server, which issues a verdict — FORWARD,
// LIMIT, DROP, REDIRECT, REFLECT, or REWRITE — via a shimming protocol
// injected into the flow itself. The gateway then enforces endpoint
// control on its own, while content control keeps the containment server
// in the path as a transparent rewriting proxy.
//
// The top-level API assembles complete farms:
//
//	f := gq.NewFarm(seed)
//	sf, _ := f.AddSubfarm(gq.SubfarmConfig{ ... })
//	inmate, _ := sf.AddInmate("rustock-0")
//	f.Run(time.Hour)
//	fmt.Println(f.Reporter(true).Generate())
//
// Everything the farm depends on is implemented in internal packages: a
// deterministic discrete-event simulator with a userspace TCP/IP stack
// (internal/sim, internal/netstack, internal/host), the learning VLAN
// bridge and links (internal/netsim), a Click-style element graph
// (internal/click), the gateway with NAT, safety filter and flow splicing
// (internal/gateway, internal/nat), the containment server, policies, and
// triggers (internal/containment, internal/policy, internal/shim), sink
// servers (internal/sink), inmate life-cycle and raw-iron management
// (internal/inmate, internal/rawiron), infrastructure services
// (internal/dhcp, internal/dnsx, internal/smtpx, internal/httpx),
// behavioural malware models (internal/malware), and Bro-style reporting
// with pcap trace recording (internal/report, internal/trace).
//
// The experiments that regenerate the paper's tables and figures live in
// internal/experiments and are exposed through cmd/gqexp and the
// repository-level benchmarks; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-versus-measured results.
package gq

import (
	"time"

	"gq/internal/containment"
	"gq/internal/farm"
	"gq/internal/malware"
	"gq/internal/netstack"
	"gq/internal/policy"
	"gq/internal/report"
	"gq/internal/shim"
)

// Re-exported farm assembly types.
type (
	// Farm is a complete GQ deployment: gateway, subfarms, management
	// network, inmate controller, blacklist feed.
	Farm = farm.Farm
	// Subfarm is one independent experiment habitat.
	Subfarm = farm.Subfarm
	// SubfarmConfig parameterises a subfarm.
	SubfarmConfig = farm.SubfarmConfig
	// FarmInmate couples inmate life-cycle with its running specimen.
	FarmInmate = farm.FarmInmate
	// WormExperiment is the worm-capturing honeyfarm configuration.
	WormExperiment = farm.WormExperiment
)

// Re-exported containment primitives.
type (
	// Verdict is a containment decision opcode (FORWARD, LIMIT, DROP,
	// REDIRECT, REFLECT, REWRITE — combinable when feasible).
	Verdict = shim.Verdict
	// Decision is a policy's verdict for one flow.
	Decision = containment.Decision
	// Decider is a containment policy.
	Decider = containment.Decider
	// StreamHandler performs content control on REWRITE-contained flows.
	StreamHandler = containment.StreamHandler
	// Trigger is an activity trigger driving inmate life-cycle actions.
	Trigger = containment.Trigger
	// Sample is a malware specimen served by auto-infection.
	Sample = policy.Sample
	// PolicyEnv supplies policies with their subfarm context.
	PolicyEnv = policy.Env
	// Reporter renders Fig. 7-style activity reports.
	Reporter = report.Reporter
	// Addr is an IPv4 address.
	Addr = netstack.Addr
	// Prefix is an IPv4 CIDR block.
	Prefix = netstack.Prefix
	// AddrPort locates a service.
	AddrPort = policy.AddrPort
)

// Containment verdicts (Fig. 2 flow-manipulation modes).
const (
	Forward  = shim.Forward
	Limit    = shim.Limit
	Drop     = shim.Drop
	Redirect = shim.Redirect
	Reflect  = shim.Reflect
	Rewrite  = shim.Rewrite
)

// NewFarm builds an empty farm with a deterministic seed.
func NewFarm(seed int64) *Farm { return farm.New(seed) }

// NewWormExperiment builds the worm-capturing honeyfarm for one Table 1
// capture spec.
func NewWormExperiment(seed int64, spec malware.WormSpec, inmates int) (*WormExperiment, error) {
	return farm.NewWormExperiment(seed, spec, inmates)
}

// NewSample builds an auto-infection sample (computing its MD5).
func NewSample(name, family string, content []byte) *Sample {
	return policy.NewSample(name, family, content)
}

// NewPolicy instantiates a registered containment policy by name
// (DefaultDeny, Rustock, Grum, Waledac, Storm, MegaD, Clickbot,
// WormCapture, ...).
func NewPolicy(name string, env *PolicyEnv) (Decider, error) { return policy.New(name, env) }

// RegisterPolicy adds a custom containment policy to the registry so
// configuration files can reference it by name.
func RegisterPolicy(name string, f func(env *PolicyEnv) Decider) {
	policy.Register(name, f)
}

// PolicyNames lists the registered containment policies.
func PolicyNames() []string { return policy.Names() }

// ParsePolicyConfig parses the Fig. 6 containment server configuration
// format.
func ParsePolicyConfig(text string) (*policy.Config, error) { return policy.Parse(text) }

// ParseTrigger parses the Fig. 6 activity-trigger syntax, e.g.
// "*:25/tcp / 30min < 1 -> revert".
func ParseTrigger(s string) (*Trigger, error) { return containment.ParseTrigger(s) }

// ParseAddr parses dotted-quad IPv4.
func ParseAddr(s string) (Addr, error) { return netstack.ParseAddr(s) }

// MustParseAddr is ParseAddr for constants; panics on error.
func MustParseAddr(s string) Addr { return netstack.MustParseAddr(s) }

// MustParsePrefix parses "a.b.c.d/n"; panics on error.
func MustParsePrefix(s string) Prefix { return netstack.MustParsePrefix(s) }

// Table1 is the paper's Table 1 worm-capture data.
var Table1 = malware.Table1

// MalwareFamilies lists the behavioural specimen models available for
// auto-infection (rustock, grum, waledac, megad, storm-proxy, clickbot,
// dgabot, split-personality).
func MalwareFamilies() []string { return malware.Families() }

// RunFor is a convenience mirror of (*Farm).Run for readability at call
// sites that hold the farm in an interface.
func RunFor(f *Farm, d time.Duration) { f.Run(d) }
