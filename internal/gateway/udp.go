package gateway

import (
	"time"

	"gq/internal/netstack"
	"gq/internal/shim"
)

// UDP containment pads datagrams with shims rather than splicing sequence
// space: the first initiator datagram travels to the containment server
// prefixed with the request shim, and the server's reply leads with the
// response shim. In REWRITE mode every subsequent datagram keeps being
// shim-wrapped so the server stays in the path (impersonating destinations
// as needed); endpoint-control verdicts relay datagrams directly.

const udpQueueCap = 64

// udpIdleTimeout expires UDP flow state.
const udpIdleTimeout = 2 * time.Minute

func (f *Flow) udpFromInitiator(p *netstack.Packet) {
	f.rec.BytesOrig += uint64(len(p.Payload))
	switch f.state {
	case fsAwaitVerdict:
		// Every pre-verdict datagram is queued for post-verdict replay to
		// the actual responder; the first one additionally travels to the
		// containment server wrapped with the request shim.
		if len(f.udpQueue) < udpQueueCap {
			f.udpQueue = append(f.udpQueue, append([]byte(nil), p.Payload...))
		}
		if !f.shimSent {
			f.shimSent = true
			f.sendUDPToCS(p.Payload)
		}

	case fsSplice:
		f.forwardUDPToResponder(p.Payload)

	case fsRewriteProxy:
		f.sendUDPToCS(p.Payload)

	case fsDropped, fsClosed:
		// Contained: silence. UDP has no reset to send.
	}
}

// sendUDPToCS wraps a datagram payload with the request shim and delivers
// it to the containment server.
func (f *Flow) sendUDPToCS(payload []byte) {
	req := &shim.Request{
		OrigIP: f.initIP, RespIP: f.respIP,
		OrigPort: f.initPort, RespPort: f.respPort,
		VLAN: f.vlan, NoncePort: f.noncePort,
	}
	wrapped := append(req.Marshal(), payload...)
	// Source the datagram from the flow's nonce port so the containment
	// server's reply demultiplexes to this flow even when one inmate
	// socket talks to many destinations.
	p := &netstack.Packet{
		Eth:     netstack.Ethernet{EtherType: netstack.EtherTypeIPv4},
		IP:      &netstack.IPv4{TTL: netstack.DefaultTTL, Src: f.initIP, Dst: f.cs.IP},
		UDP:     &netstack.UDP{SrcPort: f.noncePort, DstPort: f.cs.Port},
		Payload: wrapped,
	}
	f.r.sendToVLAN(p, f.cs.VLAN)
}

// udpFromCS handles containment-server datagrams: a response shim followed
// by optional payload for the initiator.
func (f *Flow) udpFromCS(p *netstack.Packet) {
	resp, n, err := shim.UnmarshalResponse(p.Payload)
	if err != nil {
		return // not shim-framed: drop
	}
	rest := p.Payload[n:]

	if f.state == fsAwaitVerdict {
		f.applyVerdictUDP(resp)
	}
	if len(rest) > 0 && f.state != fsDropped && f.state != fsClosed {
		f.rec.BytesResp += uint64(len(rest))
		f.sendToInitiator(nil, &netstack.UDP{SrcPort: f.respPort, DstPort: f.initPort}, rest)
	}
}

// applyVerdictUDP enacts a verdict on a UDP flow and flushes the queue.
func (f *Flow) applyVerdictUDP(resp *shim.Response) {
	f.verdict = resp.Verdict
	f.rec.Verdict = resp.Verdict
	f.rec.Policy = resp.PolicyName
	f.rec.Annotation = resp.Annotation
	f.rec.VerdictAt = f.now()
	f.recordVerdict(uint32(resp.Verdict), resp.PolicyName)
	f.actualIP, f.actualPort = resp.RespIP, resp.RespPort
	if f.actualIP == 0 {
		f.actualIP, f.actualPort = f.respIP, f.respPort
	}
	f.rec.ActualRespIP, f.rec.ActualRespPort = f.actualIP, f.actualPort
	f.r.udpByActual[udpKey{f.initIP, f.initPort, f.actualIP, f.actualPort}] = f
	if f.r.OnVerdict != nil {
		f.r.OnVerdict(f.rec)
	}

	v := resp.Verdict
	queue := f.udpQueue
	f.udpQueue = nil
	switch {
	case v.Has(shim.Drop):
		f.state = fsDropped
		f.scheduleClose(5 * time.Second)
	case v.Has(shim.Rewrite):
		f.state = fsRewriteProxy
		// The first queued datagram already reached the server with the
		// request shim; re-wrap only the ones queued after it.
		if len(queue) > 0 {
			queue = queue[1:]
		}
		for _, d := range queue {
			f.sendUDPToCS(d)
		}
	default:
		if v.Has(shim.Limit) {
			f.bucket = newTokenBucket(LimitRateBytesPerSec, LimitBurstBytes, f.r.sim)
		}
		f.state = fsSplice
		for _, d := range queue {
			f.forwardUDPToResponder(d)
		}
	}
}

// forwardUDPToResponder relays a datagram to the actual responder.
func (f *Flow) forwardUDPToResponder(payload []byte) {
	if f.bucket != nil && !f.bucket.take(len(payload)) {
		f.r.LimitDrops.Inc()
		return
	}
	rt, ok := f.responderRoute()
	if !ok {
		return
	}
	p := &netstack.Packet{
		Eth:     netstack.Ethernet{EtherType: netstack.EtherTypeIPv4},
		IP:      &netstack.IPv4{TTL: netstack.DefaultTTL},
		UDP:     &netstack.UDP{SrcPort: f.initPort, DstPort: f.actualPort},
		Payload: payload,
	}
	f.sendViaRoute(rt, p)
}

// udpFromResponder relays responder datagrams back, impersonating the
// original destination.
func (f *Flow) udpFromResponder(p *netstack.Packet) {
	if f.state != fsSplice {
		return
	}
	f.rec.BytesResp += uint64(len(p.Payload))
	f.sendToInitiator(nil, &netstack.UDP{SrcPort: f.respPort, DstPort: f.initPort}, p.Payload)
}
