package gateway

import (
	"time"

	"gq/internal/netstack"
	"gq/internal/sim"
)

// LIMIT verdict throttling parameters.
var (
	// LimitRateBytesPerSec is the sustained payload rate allowed through a
	// rate-limited flow.
	LimitRateBytesPerSec = 16 * 1024
	// LimitBurstBytes is the token-bucket burst size.
	LimitBurstBytes = 32 * 1024
)

// route describes where a flow's actual responder lives and how packets to
// it must be addressed.
type route struct {
	srcIP    netstack.Addr // initiator address as the responder will see it
	dstIP    netstack.Addr
	vlan     uint16 // destination VLAN (0 => external via the outside port)
	external bool
}

// responderRoute resolves the actual responder's location.
func (f *Flow) responderRoute() (route, bool) {
	cfg := f.r.cfg
	initSrc := func() (netstack.Addr, bool) {
		if f.inbound {
			return f.initIP, true // already an external address
		}
		if f.initGlobal == 0 {
			if b := f.r.nat.ByVLAN(f.vlan); b != nil {
				f.initGlobal = b.Global
			}
		}
		return f.initGlobal, f.initGlobal != 0
	}
	switch {
	case cfg.GlobalPool.Contains(f.actualIP):
		// An inmate addressed by its global address (e.g. FORWARD of an
		// inbound flow): translate.
		b := f.r.nat.ByGlobal(f.actualIP)
		if b == nil {
			return route{}, false
		}
		src := f.initIP
		return route{srcIP: src, dstIP: b.Internal, vlan: b.VLAN}, true
	case cfg.InternalPrefix.Contains(f.actualIP):
		// Another inmate (worm-style redirection). Source must route back
		// through the gateway, so use the initiator's global address.
		vlan, ok := f.r.inmateVLAN[f.actualIP]
		if !ok {
			return route{}, false
		}
		src, ok := initSrc()
		if !ok {
			return route{}, false
		}
		return route{srcIP: src, dstIP: f.actualIP, vlan: vlan}, true
	case cfg.ServicePrefix.Contains(f.actualIP):
		vlan, ok := f.r.serviceVLANFor(f.actualIP)
		if !ok {
			return route{}, false
		}
		return route{srcIP: f.initIP, dstIP: f.actualIP, vlan: vlan}, true
	default:
		src, ok := initSrc()
		if !ok {
			return route{}, false
		}
		return route{srcIP: src, dstIP: f.actualIP, external: true}, true
	}
}

// sendViaRoute addresses and transmits a packet along a route.
func (f *Flow) sendViaRoute(rt route, p *netstack.Packet) {
	p.IP.Src = rt.srcIP
	p.IP.Dst = rt.dstIP
	if rt.external {
		f.r.sendOutside(p)
		return
	}
	f.r.sendToVLAN(p, rt.vlan)
}

// dialResponder begins the gateway-driven handshake with the actual
// responder, re-using the initiator's ISN so post-verdict bytes relay
// without translation on the initiator->responder direction.
func (f *Flow) dialResponder() {
	rt, ok := f.responderRoute()
	if !ok {
		f.rstInitiatorRaw(f.csISN+1, f.initNextSeq, netstack.FlagRST|netstack.FlagACK)
		f.close("actual responder unroutable")
		return
	}
	f.sender = newGwSender(f, rt)
	f.sender.sendSYN()
}

// fromResponder handles packets from the flow's actual responder.
func (f *Flow) fromResponder(p *netstack.Packet) {
	f.touch()
	if f.proto == netstack.ProtoUDP {
		f.udpFromResponder(p)
		return
	}
	t := p.TCP

	// Rewrite-proxy flows with a live leg 2 route responder traffic back
	// to the containment server.
	if f.state == fsRewriteProxy {
		f.leg2FromResponder(p)
		return
	}

	switch f.state {
	case fsEstablishing:
		if t.Flags&netstack.FlagRST != 0 {
			// Responder refused: propagate as the impersonated original.
			f.rstInitiatorRaw(f.csISN+1, f.initNextSeq, netstack.FlagRST|netstack.FlagACK)
			f.close("responder refused connection")
			return
		}
		if t.Flags&netstack.FlagSYN == 0 || t.Flags&netstack.FlagACK == 0 {
			return
		}
		f.targetISN = t.Seq
		f.respNextSeq = t.Seq + 1
		f.seqDelta = f.csISN - f.targetISN
		f.state = fsSplice
		f.sender.onEstablished()

	case fsSplice:
		if t.Flags&netstack.FlagRST != 0 {
			rst := &netstack.TCP{
				SrcPort: f.respPort, DstPort: f.initPort,
				Seq: t.Seq + f.seqDelta, Ack: t.Ack, Flags: t.Flags,
			}
			f.sendToInitiator(rst, nil, nil)
			f.close("responder reset")
			return
		}
		if f.sender != nil && t.Flags&netstack.FlagACK != 0 {
			f.sender.onAck(t.Ack)
		}
		if len(p.Payload) > 0 && t.Seq == f.respNextSeq {
			f.respNextSeq += uint32(len(p.Payload))
			f.rec.BytesResp += uint64(len(p.Payload))
		}
		if t.Flags&netstack.FlagFIN != 0 {
			if t.Seq+uint32(len(p.Payload)) == f.respNextSeq {
				f.respNextSeq++
			}
			f.finResp = true
		}
		// Relay to the initiator, impersonating the original destination
		// and translating into the containment server's sequence space.
		rt := *t
		rt.SrcPort = f.respPort
		rt.DstPort = f.initPort
		rt.Seq += f.seqDelta
		f.sendToInitiator(&rt, nil, p.Payload)
		f.maybeFinish()

	case fsDropped, fsClosed:
		// Late responder traffic: reset it.
		if t.Flags&netstack.FlagRST == 0 && f.sender != nil {
			f.sender.sendRST()
		}
	}
}

// spliceFromInitiator relays initiator segments to the responder after the
// verdict, applying LIMIT throttling.
func (f *Flow) spliceFromInitiator(p *netstack.Packet) {
	t := p.TCP
	rt, ok := f.responderRoute()
	if !ok {
		return
	}
	if t.Flags&netstack.FlagRST != 0 {
		t.SrcPort = f.initPort
		t.DstPort = f.actualPort
		if t.Flags&netstack.FlagACK != 0 {
			t.Ack -= f.seqDelta
		}
		f.sendViaRoute(rt, p)
		f.close("initiator reset")
		return
	}
	if f.bucket != nil && len(p.Payload) > 0 && !f.bucket.take(len(p.Payload)) {
		// Over the rate limit: drop; the initiator's stack retransmits,
		// which is exactly the throttling effect LIMIT wants.
		f.r.LimitDrops.Inc()
		return
	}
	if t.Flags&netstack.FlagFIN != 0 {
		f.finInit = true
	}
	t.SrcPort = f.initPort
	t.DstPort = f.actualPort
	if t.Flags&netstack.FlagACK != 0 {
		t.Ack -= f.seqDelta
	}
	f.sendViaRoute(rt, p)
	f.maybeFinish()
}

// abortResponder resets the responder leg (initiator gave up mid-dial).
func (f *Flow) abortResponder() {
	if f.sender != nil {
		f.sender.sendRST()
	}
}

// --- leg 2: containment server <-> responder for REWRITE flows ---

// leg2Open handles the containment server's SYN to the nonce port.
func (f *Flow) leg2Open(p *netstack.Packet) {
	key, _ := p.FlowKey()
	if f.leg2Live && f.leg2CS != (flowHalfKey{key.SrcIP, key.SrcPort, key.Proto}) {
		// The CS redialled from a fresh ephemeral port; drop the stale
		// registration or it lingers in nonceLegs until flow close (leak).
		delete(f.r.nonceLegs, f.leg2CS)
	}
	f.leg2CS = flowHalfKey{key.SrcIP, key.SrcPort, key.Proto}
	f.leg2Live = true
	f.r.nonceLegs[f.leg2CS] = f
	f.leg2FromCS(p)
}

// leg2FromCS forwards CS->responder packets, rewriting the CS's nonce
// connection to look like the original initiator (Fig. 5: the forwarded
// leg-2 SYN carries the inmate's endpoint).
func (f *Flow) leg2FromCS(p *netstack.Packet) {
	f.touch()
	rt, ok := f.responderRoute()
	if !ok {
		return
	}
	switch {
	case p.TCP != nil:
		p.TCP.SrcPort = f.initPort
		p.TCP.DstPort = f.actualPort
	case p.UDP != nil:
		p.UDP.SrcPort = f.initPort
		p.UDP.DstPort = f.actualPort
	}
	f.rec.BytesOrig += uint64(len(p.Payload))
	f.sendViaRoute(rt, p)
}

// leg2FromResponder forwards responder->CS packets back over the nonce
// connection.
func (f *Flow) leg2FromResponder(p *netstack.Packet) {
	f.touch()
	p.IP.Src = f.r.cfg.NonceIP
	p.IP.Dst = f.leg2CS.ip
	switch {
	case p.TCP != nil:
		p.TCP.SrcPort = f.noncePort
		p.TCP.DstPort = f.leg2CS.port
	case p.UDP != nil:
		p.UDP.SrcPort = f.noncePort
		p.UDP.DstPort = f.leg2CS.port
	}
	f.rec.BytesResp += uint64(len(p.Payload))
	f.r.sendToVLAN(p, f.r.cfg.ContainmentVLAN)
}

// --- gateway-synthesised TCP sender ---

// gwSender owns the gateway's own TCP voice toward a flow's actual
// responder: the phase-2 handshake and the replay of payload the initiator
// sent during phase 1 (which the containment server already acknowledged,
// so the initiator will not retransmit it).
type gwSender struct {
	f  *Flow
	rt route

	una     uint32 // lowest unacknowledged sequence number
	nextSeq uint32
	pending []gwSeg
	finQued bool

	timer   *sim.Event
	retries int
	dead    bool
}

type gwSeg struct {
	seq     uint32
	payload []byte
	fin     bool
}

func newGwSender(f *Flow, rt route) *gwSender {
	return &gwSender{f: f, rt: rt, una: f.initISS, nextSeq: f.initISS}
}

func (s *gwSender) sendSYN() {
	s.transmitSeg(&netstack.TCP{
		SrcPort: s.f.initPort, DstPort: s.f.actualPort,
		Seq: s.f.initISS, Flags: netstack.FlagSYN, Window: 65535,
	}, nil)
	s.una = s.f.initISS
	s.nextSeq = s.f.initISS + 1
	s.arm()
}

// onEstablished completes the handshake and replays buffered payload.
func (s *gwSender) onEstablished() {
	s.una = s.nextSeq
	s.retries = 0
	s.cancelTimer()
	// Handshake ACK.
	s.transmitSeg(&netstack.TCP{
		SrcPort: s.f.initPort, DstPort: s.f.actualPort,
		Seq: s.nextSeq, Ack: s.f.respNextSeq,
		Flags: netstack.FlagACK, Window: 65535,
	}, nil)
	// Queue the phase-1 payload (and FIN, if the initiator already closed).
	data := s.f.initPayload
	s.f.initPayload = nil
	for len(data) > 0 {
		n := len(data)
		if n > 1400 {
			n = 1400
		}
		s.pending = append(s.pending, gwSeg{seq: s.nextSeq, payload: data[:n]})
		s.nextSeq += uint32(n)
		data = data[n:]
	}
	if s.f.initFin && !s.f.initAborted {
		s.pending = append(s.pending, gwSeg{seq: s.nextSeq, fin: true})
		s.nextSeq++
		s.f.finInit = true
	}
	if len(s.pending) > 0 {
		s.flush()
		s.arm()
	} else if s.f.initAborted {
		// Nothing to replay and the initiator is gone: reset immediately.
		s.sendRST()
		s.f.scheduleClose(time.Second)
	}
	s.f.maybeFinish()
}

func (s *gwSender) flush() {
	for _, seg := range s.pending {
		flags := uint8(netstack.FlagACK)
		if len(seg.payload) > 0 {
			flags |= netstack.FlagPSH
		}
		if seg.fin {
			flags |= netstack.FlagFIN
		}
		s.transmitSeg(&netstack.TCP{
			SrcPort: s.f.initPort, DstPort: s.f.actualPort,
			Seq: seg.seq, Ack: s.f.respNextSeq,
			Flags: flags, Window: 65535,
		}, seg.payload)
	}
}

func (s *gwSender) onAck(ack uint32) {
	if s.dead || int32(ack-s.una) <= 0 {
		return
	}
	s.una = ack
	s.retries = 0
	kept := s.pending[:0]
	for _, seg := range s.pending {
		end := seg.seq + uint32(len(seg.payload))
		if seg.fin {
			end++
		}
		if int32(ack-end) < 0 {
			kept = append(kept, seg)
		}
	}
	s.pending = kept
	if len(s.pending) == 0 {
		s.cancelTimer()
		if s.f.initAborted && !s.dead {
			// Replay delivered; mirror the initiator's abrupt teardown.
			s.sendRST()
			s.f.scheduleClose(time.Second)
		}
	}
}

func (s *gwSender) transmitSeg(t *netstack.TCP, payload []byte) {
	p := &netstack.Packet{
		Eth:     netstack.Ethernet{EtherType: netstack.EtherTypeIPv4},
		IP:      &netstack.IPv4{TTL: netstack.DefaultTTL},
		TCP:     t,
		Payload: payload,
	}
	s.f.sendViaRoute(s.rt, p)
}

func (s *gwSender) sendRST() {
	s.transmitSeg(&netstack.TCP{
		SrcPort: s.f.initPort, DstPort: s.f.actualPort,
		Seq: s.nextSeq, Ack: s.f.respNextSeq,
		Flags: netstack.FlagRST | netstack.FlagACK,
	}, nil)
	s.stop()
}

func (s *gwSender) arm() {
	s.cancelTimer()
	s.timer = s.f.r.sim.Schedule(time.Second, s.retransmit)
}

func (s *gwSender) retransmit() {
	if s.dead {
		return
	}
	s.retries++
	s.f.r.Retransmits.Inc()
	if s.retries > 6 {
		// Responder unresponsive: give the initiator a reset from the
		// impersonated destination and close.
		s.f.rstInitiatorRaw(s.f.csISN+1, s.f.initNextSeq, netstack.FlagRST|netstack.FlagACK)
		s.f.close("responder unresponsive")
		return
	}
	if s.f.state == fsEstablishing {
		s.transmitSeg(&netstack.TCP{
			SrcPort: s.f.initPort, DstPort: s.f.actualPort,
			Seq: s.f.initISS, Flags: netstack.FlagSYN, Window: 65535,
		}, nil)
	} else {
		s.flush()
	}
	s.arm()
}

func (s *gwSender) cancelTimer() {
	if s.timer != nil {
		s.timer.Cancel()
		s.timer = nil
	}
}

func (s *gwSender) stop() {
	s.dead = true
	s.cancelTimer()
}

// --- token bucket for LIMIT ---

type tokenBucket struct {
	rate   float64 // tokens (bytes) per second
	burst  float64
	tokens float64
	last   time.Duration
	sim    *sim.Simulator
}

func newTokenBucket(rate, burst int, s *sim.Simulator) *tokenBucket {
	return &tokenBucket{
		rate: float64(rate), burst: float64(burst),
		tokens: float64(burst), last: s.Now(), sim: s,
	}
}

func (b *tokenBucket) take(n int) bool {
	now := b.sim.Now()
	b.tokens += b.rate * (now - b.last).Seconds()
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens < float64(n) {
		return false
	}
	b.tokens -= float64(n)
	return true
}
