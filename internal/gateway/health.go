package gateway

import (
	"gq/internal/netstack"
	"gq/internal/shim"
)

// Containment-plane health plumbing. The supervisor (internal/supervisor)
// owns the policy — probe cadence, miss thresholds, restarts — while the
// router owns the mechanism: it crafts heartbeat probes onto the service
// VLAN wire, demultiplexes the echoes, mirrors per-endpoint health for
// dispatch, and fail-closes the flows a dead endpoint strands. Everything
// here runs in the router's simulation domain.

// healthProbePortBase is the first gateway-side UDP source port used for
// heartbeat probes (endpoint i probes from healthProbePortBase+i). The
// range sits below the nonce-port space (40000+), so probe echoes can never
// collide with a flow's nonce demultiplexing.
const healthProbePortBase = 39000

// endpointAt returns cluster member idx, or the single configured server
// for idx 0 when no cluster is set.
func (r *Router) endpointAt(idx int) (ContainmentEndpoint, bool) {
	if n := len(r.cfg.ContainmentCluster); n > 0 {
		if idx < 0 || idx >= n {
			return ContainmentEndpoint{}, false
		}
		return r.cfg.ContainmentCluster[idx], true
	}
	if idx != 0 {
		return ContainmentEndpoint{}, false
	}
	return ContainmentEndpoint{VLAN: r.cfg.ContainmentVLAN, IP: r.cfg.ContainmentIP, Port: r.cfg.ContainmentPort}, true
}

// SetHealthObserver registers the callback receiving heartbeat echoes
// (endpoint index, echoed sequence number). One observer — the supervisor.
func (r *Router) SetHealthObserver(fn func(idx int, seq uint64)) {
	r.onHealthReply = fn
}

// SendHealthProbe emits one heartbeat probe to containment endpoint idx
// over the shim channel: a UDP datagram from the gateway's nonce address,
// exactly like a flow's shim-wrapped datagrams but carrying a heartbeat
// message no flow accounting will ever count. A live server echoes it; a
// dead one lets the deadline lapse.
func (r *Router) SendHealthProbe(idx int, seq uint64) {
	ep, ok := r.endpointAt(idx)
	if !ok {
		return
	}
	port := uint16(healthProbePortBase + idx)
	r.healthPorts[port] = idx
	hb := shim.Heartbeat{Seq: seq}
	p := &netstack.Packet{
		Eth:     netstack.Ethernet{EtherType: netstack.EtherTypeIPv4},
		IP:      &netstack.IPv4{TTL: netstack.DefaultTTL, Src: r.cfg.NonceIP, Dst: ep.IP},
		UDP:     &netstack.UDP{SrcPort: port, DstPort: ep.Port},
		Payload: hb.Marshal(),
	}
	r.sendToVLAN(p, ep.VLAN)
}

// handleHealthReply delivers a heartbeat echo (a containment-server UDP
// datagram that matched no flow nonce) to the health observer.
func (r *Router) handleHealthReply(key netstack.FlowKey, p *netstack.Packet) {
	idx, ok := r.healthPorts[key.DstPort]
	if !ok || r.onHealthReply == nil {
		return
	}
	hb, err := shim.UnmarshalHeartbeat(p.Payload)
	if err != nil {
		return
	}
	r.onHealthReply(idx, hb.Seq)
}

// SetEndpointHealth mirrors the supervisor's health verdict for endpoint
// idx into dispatch state: containmentFor skips unhealthy members.
func (r *Router) SetEndpointHealth(idx int, healthy bool) {
	if idx < 0 || idx >= len(r.csDown) {
		return
	}
	r.csDown[idx] = !healthy
}

// FailCloseEndpoint resolves every flow pinned to containment endpoint idx
// that still depends on it — awaiting a verdict, or mid-rewrite-proxy —
// fail-closed: synthetic Drop verdict, RST both legs, flow table entry
// gone. Post-verdict endpoint-control flows (splice, establishing) don't
// touch the containment server anymore and are left alone. Returns the
// number of flows resolved.
func (r *Router) FailCloseEndpoint(idx int, reason string) int {
	ep, ok := r.endpointAt(idx)
	if !ok {
		return 0
	}
	var doomed []*Flow
	seen := make(map[*Flow]bool)
	consider := func(f *Flow) {
		if seen[f] || f.cs != ep {
			return
		}
		switch f.state {
		case fsAwaitVerdict, fsRewriteProxy:
			seen[f] = true
			doomed = append(doomed, f)
		}
	}
	for _, f := range r.flows {
		consider(f)
	}
	for _, f := range r.udpFlows {
		consider(f)
	}
	// Tuple order, not map order: same-seed runs must journal the same
	// fail-close sequence.
	sortFlowsByTuple(doomed)
	for _, f := range doomed {
		f.failClose(reason)
	}
	return len(doomed)
}
