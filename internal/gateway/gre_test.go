package gateway_test

import (
	"strings"
	"testing"
	"time"

	"gq/internal/containment"
	"gq/internal/gateway"
	"gq/internal/host"
	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/shim"
	"gq/internal/sim"
)

// greTestbed: a farm whose primary pool holds exactly one usable address,
// plus a GRE tunnel contributing a second /24 via a peer router on the
// outside segment.
func greTestbed(t *testing.T) (*testbed, *gateway.GREPeer) {
	t.Helper()
	s := sim.New(77)
	tb := &testbed{sim: s}
	tb.gw = gateway.New(s)
	tb.inSw = netsim.NewSwitch(s, "inmate-sw")
	tb.extSw = netsim.NewSwitch(s, "internet-sw")
	netsim.Connect(tb.inSw.AddTrunkPort("uplink"), tb.gw.Trunk(), 0)
	netsim.Connect(tb.extSw.AddAccessPort("gw", 100), tb.gw.Outside(), 0)

	tunnel := gateway.GRETunnel{
		LocalAddr: netstack.MustParseAddr("192.0.2.2"), // farm space, below pool start
		PeerAddr:  netstack.MustParseAddr("198.51.100.254"),
		ExtraPool: netstack.MustParsePrefix("203.0.114.0/24"),
		PoolStart: 16,
	}
	tb.router = tb.gw.AddRouter(gateway.RouterConfig{
		Name:   "grefarm",
		VLANLo: 10, VLANHi: 30,
		ServiceVLANs:    []uint16{serviceVLAN},
		InternalPrefix:  netstack.MustParsePrefix("10.0.0.0/16"),
		RouterIP:        netstack.MustParseAddr("10.0.0.1"),
		ServicePrefix:   netstack.MustParsePrefix("10.3.0.0/16"),
		ServiceRouterIP: netstack.MustParseAddr("10.3.0.254"),
		// /28: indices 14 usable, start 14 -> exactly ONE address (.14)
		// before the pool exhausts (.15 is broadcast).
		GlobalPool:      netstack.MustParsePrefix("192.0.2.0/28"),
		GlobalPoolStart: 14,
		ContainmentVLAN: serviceVLAN,
		ContainmentIP:   csIP,
		ContainmentPort: csPort,
		NonceIP:         nonceIP,
		GRETunnels:      []gateway.GRETunnel{tunnel},
	})

	csHost := tb.addServiceHost(t, "cs", csIP)
	var err error
	tb.cs, err = containment.NewServer(csHost, csPort, nonceIP)
	if err != nil {
		t.Fatal(err)
	}
	tb.sink = tb.addServiceHost(t, "sink", sinkIP)
	tb.router.RegisterServiceHost(sinkIP, serviceVLAN)
	tb.inmate = tb.addInmate(t, inmateIP, inmateVLAN)

	peer := gateway.NewGREPeer(s, tunnel)
	netsim.Connect(tb.extSw.AddAccessPort("grepeer", 100), peer.Port(), 0)
	return tb, peer
}

func TestGRETunnelExtendsAddressSpace(t *testing.T) {
	tb, peer := greTestbed(t)
	tb.cs.SetFallback(policyFunc{"AllowAll", func(req *shim.Request) containment.Decision {
		return containment.Decision{Verdict: shim.Forward}
	}})
	// External server records source addresses.
	var sources []netstack.Addr
	var bodies []string
	ext := tb.addExternal(t, "web", netstack.MustParseAddr("198.51.100.10"))
	ext.Listen(80, func(c *host.Conn) {
		src, _ := c.RemoteAddr()
		sources = append(sources, src)
		c.OnData = func(d []byte) {
			bodies = append(bodies, string(d))
			c.Write([]byte("pong:" + string(d)))
		}
	})

	// Inmate 1 gets the last primary-pool address.
	var got1 []byte
	c1 := tb.inmate.Dial(netstack.MustParseAddr("198.51.100.10"), 80)
	c1.OnConnect = func() { c1.Write([]byte("one")) }
	c1.OnData = func(d []byte) { got1 = append(got1, d...) }
	tb.sim.RunFor(10 * time.Second)

	// Inmate 2's binding must come from the tunnelled pool.
	inmate2 := tb.addInmate(t, netstack.MustParseAddr("10.0.0.24"), 17)
	var got2 []byte
	c2 := inmate2.Dial(netstack.MustParseAddr("198.51.100.10"), 80)
	c2.OnConnect = func() { c2.Write([]byte("two")) }
	c2.OnData = func(d []byte) { got2 = append(got2, d...) }
	tb.sim.RunFor(30 * time.Second)

	if string(got1) != "pong:one" {
		t.Fatalf("primary-pool inmate got %q", got1)
	}
	if string(got2) != "pong:two" {
		t.Fatalf("tunnel-pool inmate got %q", got2)
	}
	if len(sources) != 2 {
		t.Fatalf("server saw %d connections", len(sources))
	}
	if sources[0] != netstack.MustParseAddr("192.0.2.14") {
		t.Fatalf("inmate 1 source %v, want last primary address", sources[0])
	}
	if !netstack.MustParsePrefix("203.0.114.0/24").Contains(sources[1]) {
		t.Fatalf("inmate 2 source %v, want tunnelled pool", sources[1])
	}
	// The tunnel actually carried traffic both ways.
	if peer.TunnelledIn == 0 || peer.TunnelledOut == 0 {
		t.Fatalf("tunnel counters in=%d out=%d", peer.TunnelledIn, peer.TunnelledOut)
	}
	if tb.gw.GRETx.Value() == 0 || tb.gw.GRERx.Value() == 0 {
		t.Fatalf("gateway GRE counters tx=%d rx=%d", tb.gw.GRETx.Value(), tb.gw.GRERx.Value())
	}
}

func TestGRECodecRoundTrip(t *testing.T) {
	p := &netstack.Packet{
		IP:      &netstack.IPv4{TTL: 64, Protocol: netstack.ProtoTCP, Src: 1, Dst: 2},
		TCP:     &netstack.TCP{SrcPort: 1234, DstPort: 80, Flags: netstack.FlagSYN},
		Payload: nil,
	}
	inner := netstack.MarshalIPPacket(p)
	wrapped := netstack.GREEncap(inner)
	if len(wrapped) != netstack.GREHeaderLen+len(inner) {
		t.Fatalf("GRE length %d", len(wrapped))
	}
	back, err := netstack.GREDecap(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	q, err := netstack.ParseIPPacket(back)
	if err != nil {
		t.Fatal(err)
	}
	if q.TCP == nil || q.TCP.SrcPort != 1234 || q.IP.Src != 1 {
		t.Fatalf("round trip %+v", q)
	}
	// Rejections.
	if _, err := netstack.GREDecap([]byte{0, 0}); err == nil {
		t.Error("short GRE accepted")
	}
	bad := append([]byte{0x80, 0, 0x08, 0}, inner...)
	if _, err := netstack.GREDecap(bad); err == nil || !strings.Contains(err.Error(), "flags") {
		t.Error("flagged GRE accepted")
	}
}
