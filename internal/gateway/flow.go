package gateway

import (
	"time"

	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/shim"
)

// FlowRecord is the per-flow accounting GQ's reporting consumes: the
// original and actual endpoints, the verdict and policy that produced them,
// and payload byte counts.
type FlowRecord struct {
	Subfarm string
	VLAN    uint16
	Proto   uint8
	Inbound bool // initiator is outside the farm

	OrigIP   netstack.Addr // initiator
	OrigPort uint16
	RespIP   netstack.Addr // destination as the initiator addressed it
	RespPort uint16

	ActualRespIP   netstack.Addr // destination after containment
	ActualRespPort uint16

	Verdict    shim.Verdict
	Policy     string
	Annotation string

	Start, VerdictAt, End time.Duration
	BytesOrig, BytesResp  uint64
	Closed                bool

	// FailClosed marks a flow resolved by the gateway's fail-closed path
	// (containment server lost, or await-verdict deadline exceeded) rather
	// than by a verdict from the wire. A fail-closed flow that still had a
	// pending verdict carries no Policy; one whose server died after
	// adjudication (mid-rewrite) keeps its policy name. Reporting uses the
	// distinction to reconcile verdicts_applied against the records.
	FailClosed bool
}

type flowState int

const (
	fsAwaitVerdict flowState = iota // phase 1: initiator <-> containment server
	fsEstablishing                  // phase 2 setup: handshaking with the actual responder
	fsSplice                        // phase 2: gateway-enforced endpoint control
	fsRewriteProxy                  // phase 2: containment server stays in path
	fsDropped
	fsClosed
)

// Flow is the gateway's per-flow state.
type Flow struct {
	r   *Router
	rec *FlowRecord

	proto      uint8
	vlan       uint16 // the inmate's VLAN (initiator for outbound, responder for inbound)
	inbound    bool
	initIP     netstack.Addr // initiator endpoint (internal addr for inmates)
	initPort   uint16
	respIP     netstack.Addr // original destination
	respPort   uint16
	initGlobal netstack.Addr // NAT'd initiator address for external responders

	state      flowState
	verdict    shim.Verdict
	actualIP   netstack.Addr // post-verdict responder
	actualPort uint16

	// TCP phase 1: shim bookkeeping (Fig. 5).
	initISS   uint32 // initiator's ISN
	csISN     uint32 // containment server's ISN (the "server ISN" the initiator saw)
	haveCSISN bool
	shimSent  bool
	c2sShim   uint32 // bytes injected initiator->CS
	s2cShim   uint32 // bytes stripped CS->initiator
	noncePort uint16

	// CS->initiator reassembly until the response shim is complete.
	csBuf     []byte
	csNextSeq uint32

	// Initiator payload buffered during phase 1 for replay to the actual
	// responder after the verdict.
	initPayload []byte
	initNextSeq uint32
	initFin     bool
	// initAborted: the initiator reset the connection (common for exploit
	// payloads) — buffered bytes must still reach the responder after the
	// verdict, then the responder leg is reset too.
	initAborted bool

	// Phase 2 splice state.
	targetISN   uint32
	respNextSeq uint32 // next expected sequence number from the responder
	seqDelta    uint32 // responder->initiator: seq_initiator_view = seq + seqDelta
	sender      *gwSender

	// Rewrite leg 2 (containment server <-> actual responder via nonce).
	leg2CS   flowHalfKey // CS-side endpoint of the nonce connection
	leg2Live bool

	// cs is the containment server handling this flow (sticky per inmate
	// when a cluster is configured).
	cs ContainmentEndpoint

	// Rate limiting for LIMIT verdicts.
	bucket *tokenBucket

	// UDP phase 1 queue.
	udpQueue [][]byte

	// Teardown tracking.
	finInit, finResp bool
	lastActivity     time.Duration
}

func (f *Flow) now() time.Duration { return f.r.sim.Now() }

func (f *Flow) touch() { f.lastActivity = f.now() }

// newFlowRecord initialises accounting.
func (r *Router) newFlowRecord(f *Flow) *FlowRecord {
	rec := &FlowRecord{
		Subfarm: r.cfg.Name, VLAN: f.vlan, Proto: f.proto, Inbound: f.inbound,
		OrigIP: f.initIP, OrigPort: f.initPort,
		RespIP: f.respIP, RespPort: f.respPort,
		Start: r.sim.Now(),
	}
	r.records = append(r.records, rec)
	return rec
}

// dispatchInmateIP routes an IP packet that arrived from an inmate VLAN.
func (r *Router) dispatchInmateIP(p *netstack.Packet) {
	if p.IP.Dst == r.cfg.RouterIP {
		return // traffic to the gateway itself: no services offered
	}
	key, ok := p.FlowKey()
	if !ok {
		return
	}
	if key.Proto == netstack.ProtoUDP {
		if f, found := r.udpFlows[udpKey{key.SrcIP, key.SrcPort, key.DstIP, key.DstPort}]; found {
			f.fromInitiator(p)
			return
		}
		if f, found := r.udpByActual[udpKey{key.DstIP, key.DstPort, key.SrcIP, key.SrcPort}]; found {
			f.fromResponder(p)
			return
		}
		if r.lockdownDrop() {
			return
		}
		if !r.safetyCheck(p.Eth.VLAN, p.IP.Dst) {
			return
		}
		f := r.newFlow(key, p.Eth.VLAN, false)
		f.fromInitiator(p)
		return
	}
	// Existing TCP flow where this inmate is the initiator?
	if f, found := r.flows[flowHalfKey{key.SrcIP, key.SrcPort, key.Proto}]; found {
		// A pure SYN with a new ISN on a known tuple is a fresh
		// incarnation — reverted inmates reuse ephemeral ports. Retire the
		// stale flow and adjudicate the new one from scratch.
		if p.TCP.Flags&(netstack.FlagSYN|netstack.FlagACK) == netstack.FlagSYN &&
			p.TCP.Seq != f.initISS {
			f.abortResponder()
			f.close("superseded by new incarnation")
		} else {
			f.fromInitiator(p)
			return
		}
	}
	// Existing flow where this inmate is the responder (inbound flows,
	// worm-style redirections)? Redirected flows carry the initiating
	// inmate's global address, so translate before the lookup.
	respDst := key.DstIP
	if b := r.nat.ByGlobal(respDst); b != nil {
		respDst = b.Internal
	}
	if f, found := r.flows[flowHalfKey{respDst, key.DstPort, key.Proto}]; found {
		f.fromResponder(p)
		return
	}
	// New outbound flow. Only flow-initiating pure SYNs create state;
	// stray mid-stream packets (stale after a revert) get nothing.
	if p.TCP != nil && p.TCP.Flags&(netstack.FlagSYN|netstack.FlagACK) != netstack.FlagSYN {
		return
	}
	// A SYN retransmission of a flow that just failed closed is not a new
	// connection attempt: the initiator has already been reset, this copy
	// was merely in flight. Admitting it would double-count the incarnation.
	if p.TCP != nil {
		tk := synTombKey{key.SrcIP, key.SrcPort, key.DstIP, key.DstPort, p.TCP.Seq}
		if exp, ok := r.synTombs[tk]; ok && r.sim.Now() <= exp {
			return
		}
	}
	if r.lockdownDrop() {
		return
	}
	if !r.safetyCheck(p.Eth.VLAN, p.IP.Dst) {
		return
	}
	f := r.newFlow(key, p.Eth.VLAN, false)
	f.fromInitiator(p)
}

// newFlow creates and registers flow state for a new five-tuple.
func (r *Router) newFlow(key netstack.FlowKey, vlan uint16, inbound bool) *Flow {
	// Bounded table: shed the least-recently-active flow under pressure
	// instead of growing without limit.
	for r.ActiveFlows() >= r.maxFlows {
		if !r.shedLRU() {
			break
		}
	}
	r.FlowsCreated.Inc()
	f := &Flow{
		r: r, proto: key.Proto, vlan: vlan, inbound: inbound,
		initIP: key.SrcIP, initPort: key.SrcPort,
		respIP: key.DstIP, respPort: key.DstPort,
		state: fsAwaitVerdict,
	}
	if !inbound {
		if b := r.nat.ByVLAN(vlan); b != nil {
			f.initGlobal = b.Global
		}
	}
	f.cs = r.containmentFor(f.vlan)
	f.rec = r.newFlowRecord(f)
	f.noncePort = r.allocNonce(f)
	if key.Proto == netstack.ProtoUDP {
		r.udpFlows[udpKey{f.initIP, f.initPort, f.respIP, f.respPort}] = f
	} else {
		r.flows[flowHalfKey{f.initIP, f.initPort, f.proto}] = f
	}
	r.FlowsActive.Set(int64(r.ActiveFlows()))
	r.sc.Emit(obs.Event{
		Type: obs.EvFlowCreated, VLAN: vlan, Proto: key.Proto,
		SrcIP: uint32(f.initIP), SrcPort: f.initPort,
		DstIP: uint32(f.respIP), DstPort: f.respPort,
	})
	f.touch()
	return f
}

// handleFromOutside routes a packet arriving on the upstream interface with
// a destination in this subfarm's global pool.
func (r *Router) handleFromOutside(p *netstack.Packet) {
	key, ok := p.FlowKey()
	if !ok {
		return
	}
	if key.Proto == netstack.ProtoUDP {
		if f, found := r.udpFlows[udpKey{key.SrcIP, key.SrcPort, key.DstIP, key.DstPort}]; found && f.inbound {
			f.fromInitiator(p)
			return
		}
		if b := r.nat.ByGlobal(key.DstIP); b != nil {
			if f, found := r.udpByActual[udpKey{b.Internal, key.DstPort, key.SrcIP, key.SrcPort}]; found {
				f.fromResponder(p)
				return
			}
		}
	} else {
		// Existing flow with an external initiator?
		if f, found := r.flows[flowHalfKey{key.SrcIP, key.SrcPort, key.Proto}]; found && f.inbound {
			f.fromInitiator(p)
			return
		}
		// Reply to an inmate-initiated flow: translate global dst to internal.
		if b := r.nat.ByGlobal(key.DstIP); b != nil {
			if f, found := r.flows[flowHalfKey{b.Internal, key.DstPort, key.Proto}]; found {
				f.fromResponder(p)
				return
			}
		}
		if p.TCP.Flags&netstack.FlagSYN == 0 {
			return
		}
	}
	// New inbound flow: subject to the NAT inbound mode. Inbound rewrites
	// the destination to the inmate's internal address in place; that is
	// harmless because the phase-1 path overwrites the destination again
	// (containment server) before the packet goes anywhere.
	if r.lockdownDrop() {
		return
	}
	b := r.nat.Inbound(p)
	if b == nil {
		return
	}
	// The initiator addressed the inmate's global address; that is the
	// original destination the containment server adjudicates.
	f := r.newFlow(key, b.VLAN, true)
	f.fromInitiator(p)
}

// dispatchServiceIP routes packets from service VLANs (containment server,
// sinks) addressed to the gateway.
func (r *Router) dispatchServiceIP(p *netstack.Packet) {
	key, ok := p.FlowKey()
	if !ok {
		return
	}
	// Containment server leg-1 traffic toward an initiator. UDP replies
	// arrive on the flow's nonce port (the gateway rewrote the source port
	// of the shim-padded datagram so replies demultiplex unambiguously).
	if r.isContainmentEndpoint(key.SrcIP, key.SrcPort) {
		// Run the subfarm taps before the flow machinery strips the
		// response shim: the redirected initiator->CS frames are already
		// tapped on transmit, and trace auditing needs the CS's verdict
		// reply visible on the same wire.
		for _, t := range r.taps {
			t(p)
		}
		if key.Proto == netstack.ProtoUDP {
			if f, found := r.byNonce[key.DstPort]; found {
				f.fromCS(p)
				return
			}
			// Not a flow reply: perhaps a heartbeat echo for the
			// supervisor (probe source ports sit below the nonce range).
			r.handleHealthReply(key, p)
			return
		}
		if f, found := r.flows[flowHalfKey{key.DstIP, key.DstPort, key.Proto}]; found {
			f.fromCS(p)
		}
		return
	}
	// Nonce-port connections from the containment server (leg 2).
	if key.DstIP == r.cfg.NonceIP {
		if f, found := r.nonceLegs[flowHalfKey{key.SrcIP, key.SrcPort, key.Proto}]; found {
			f.leg2FromCS(p)
			return
		}
		if f, found := r.byNonce[key.DstPort]; found && p.TCP != nil && p.TCP.Flags&netstack.FlagSYN != 0 {
			f.leg2Open(p)
		}
		return
	}
	// A service host (sink) acting as a flow responder?
	if key.Proto == netstack.ProtoUDP {
		if f, found := r.udpByActual[udpKey{key.DstIP, key.DstPort, key.SrcIP, key.SrcPort}]; found {
			f.fromResponder(p)
			return
		}
	} else if f, found := r.flows[flowHalfKey{key.DstIP, key.DstPort, key.Proto}]; found {
		f.fromResponder(p)
		return
	}
	// Otherwise: infrastructure-originated traffic (e.g. the banner-
	// grabbing sink reaching out to a real MX). Statically NAT it into the
	// infrastructure pool, bypassing containment.
	if r.cfg.InfraPool.Bits == 0 {
		return // no infra egress configured
	}
	if r.cfg.InternalPrefix.Contains(key.DstIP) || r.cfg.ServicePrefix.Contains(key.DstIP) {
		return
	}
	g, ok := r.infraGlobalFor(key.SrcIP)
	if !ok {
		return
	}
	p.IP.Src = g
	r.sendOutside(p)
}

// infraGlobalFor allocates (or returns) a service host's infra-pool
// address.
func (r *Router) infraGlobalFor(svc netstack.Addr) (netstack.Addr, bool) {
	if g, ok := r.infraOut[svc]; ok {
		return g, true
	}
	if r.infraNext >= r.cfg.InfraPool.Size()-1 {
		return 0, false
	}
	g := r.cfg.InfraPool.Nth(r.infraNext)
	r.infraNext++
	r.infraOut[svc] = g
	r.infraIn[g] = svc
	return g, true
}

// handleInfraInbound delivers replies addressed to the infrastructure pool
// back to the owning service host.
func (r *Router) handleInfraInbound(p *netstack.Packet) {
	svc, ok := r.infraIn[p.IP.Dst]
	if !ok {
		return
	}
	p.IP.Dst = svc
	vlan, ok := r.serviceVLANFor(svc)
	if !ok {
		// Not registered as a responder; find it on any service VLAN.
		if len(r.cfg.ServiceVLANs) == 0 {
			return
		}
		vlan = r.cfg.ServiceVLANs[0]
	}
	r.sendToVLAN(p, vlan)
}

// --- phase 1: initiator <-> containment server ---

// sendToCS rewrites a packet's destination to the containment server and
// delivers it on the containment VLAN. The packet is consumed: it is
// patched in place and its buffer relinquished to the trunk.
func (f *Flow) sendToCS(p *netstack.Packet) {
	p.IP.Dst = f.cs.IP
	switch {
	case p.TCP != nil:
		p.TCP.DstPort = f.cs.Port
	case p.UDP != nil:
		p.UDP.DstPort = f.cs.Port
	}
	f.r.sendToVLAN(p, f.cs.VLAN)
}

// sendToInitiator delivers a packet to the flow's initiator, impersonating
// the original responder in the source fields.
func (f *Flow) sendToInitiator(tcp *netstack.TCP, udp *netstack.UDP, payload []byte) {
	p := &netstack.Packet{
		Eth: netstack.Ethernet{EtherType: netstack.EtherTypeIPv4},
		IP: &netstack.IPv4{
			TTL: netstack.DefaultTTL,
			Src: f.respIP, Dst: f.initIP,
		},
		TCP: tcp, UDP: udp, Payload: payload,
	}
	f.deliverToInitiator(p)
}

// deliverToInitiator routes an already-addressed packet to the initiator.
func (f *Flow) deliverToInitiator(p *netstack.Packet) {
	if f.inbound {
		f.r.sendOutside(p)
		return
	}
	f.r.sendToVLAN(p, f.vlan)
}

func (f *Flow) fromInitiator(p *netstack.Packet) {
	f.touch()
	if f.proto == netstack.ProtoUDP {
		f.udpFromInitiator(p)
		return
	}
	t := p.TCP
	f.rec.BytesOrig += uint64(len(p.Payload))

	switch f.state {
	case fsAwaitVerdict:
		if t.Flags&netstack.FlagSYN != 0 {
			f.initISS = t.Seq
			f.initNextSeq = t.Seq + 1
			f.sendToCS(p)
			return
		}
		if t.Flags&netstack.FlagRST != 0 {
			// Abrupt initiator teardown before the verdict (exploit-style
			// write-and-reset). Keep the flow: the verdict still governs
			// what happens to the buffered payload.
			f.initFin = true
			f.initAborted = true
			return
		}
		if !f.shimSent && f.haveCSISN && t.Flags&netstack.FlagACK != 0 {
			if len(p.Payload) == 0 && t.Flags&netstack.FlagFIN == 0 {
				// Handshake-completing pure ACK: forward it, then inject
				// the request shim into the sequence space (Fig. 5).
				f.sendToCS(p)
				f.injectRequestShim()
				return
			}
			// Data arrived with the handshake ACK: the shim itself (which
			// carries ack=csISN+1) completes the handshake; the data is
			// then forwarded sequence-bumped behind it.
			f.injectRequestShim()
		}
		// Buffer payload for later replay (in-order; the simulated farm
		// links do not reorder).
		if len(p.Payload) > 0 && t.Seq == f.initNextSeq {
			f.initPayload = append(f.initPayload, p.Payload...)
			f.initNextSeq += uint32(len(p.Payload))
		}
		if t.Flags&netstack.FlagFIN != 0 {
			f.initFin = true
			f.initNextSeq++
		}
		f.forwardInitToCS(p)

	case fsEstablishing:
		// Waiting for the actual responder's handshake; keep buffering.
		if len(p.Payload) > 0 && t.Seq == f.initNextSeq {
			f.initPayload = append(f.initPayload, p.Payload...)
			f.initNextSeq += uint32(len(p.Payload))
		}
		if t.Flags&netstack.FlagFIN != 0 && t.Seq+uint32(len(p.Payload)) == f.initNextSeq {
			f.initFin = true
			f.initNextSeq++
		}
		if t.Flags&netstack.FlagRST != 0 {
			f.initFin = true
			f.initAborted = true
		}

	case fsSplice:
		f.spliceFromInitiator(p)

	case fsRewriteProxy:
		if t.Flags&netstack.FlagRST != 0 {
			f.forwardInitToCS(p)
			f.close("initiator reset")
			return
		}
		if t.Flags&netstack.FlagFIN != 0 {
			f.finInit = true
		}
		f.forwardInitToCS(p)
		f.maybeFinish()

	case fsDropped, fsClosed:
		// Residual packets of a contained flow: answer TCP with RST so the
		// inmate's stack gives up quickly.
		if t.Flags&netstack.FlagRST == 0 {
			f.rstInitiator(t)
		}
	}
}

// forwardInitToCS relays an initiator segment to the containment server,
// applying the shim sequence bump in place (consumes the packet).
func (f *Flow) forwardInitToCS(p *netstack.Packet) {
	if f.shimSent {
		p.TCP.Seq += f.c2sShim
		if p.TCP.Flags&netstack.FlagACK != 0 && f.s2cShim > 0 {
			p.TCP.Ack += f.s2cShim
		}
	}
	f.sendToCS(p)
}

// injectRequestShim sends the 24-byte containment request into the
// initiator->CS sequence space.
func (f *Flow) injectRequestShim() {
	req := &shim.Request{
		OrigIP: f.initIP, RespIP: f.respIP,
		OrigPort: f.initPort, RespPort: f.respPort,
		VLAN: f.vlan, NoncePort: f.noncePort,
	}
	if f.inbound {
		// For inbound flows the initiator is external; the VLAN identifies
		// the responding inmate.
		req.OrigIP = f.initIP
	}
	payload := req.Marshal()
	p := &netstack.Packet{
		Eth: netstack.Ethernet{EtherType: netstack.EtherTypeIPv4},
		IP:  &netstack.IPv4{TTL: netstack.DefaultTTL, Src: f.initIP},
		TCP: &netstack.TCP{
			SrcPort: f.initPort,
			Seq:     f.initISS + 1,
			Ack:     f.csISN + 1,
			Flags:   netstack.FlagACK | netstack.FlagPSH,
			Window:  65535,
		},
		Payload: payload,
	}
	f.sendToCS(p)
	f.shimSent = true
	f.c2sShim = uint32(len(payload))
}

// fromCS processes containment-server leg-1 packets toward the initiator.
func (f *Flow) fromCS(p *netstack.Packet) {
	f.touch()
	if f.proto == netstack.ProtoUDP {
		f.udpFromCS(p)
		return
	}
	t := p.TCP

	if t.Flags&netstack.FlagRST != 0 {
		// CS refused or tore down: propagate to initiator.
		f.rstInitiatorRaw(t.Seq, 0, netstack.FlagRST)
		f.close("containment server reset")
		return
	}

	switch f.state {
	case fsAwaitVerdict:
		if t.Flags&netstack.FlagSYN != 0 {
			f.csISN = t.Seq
			f.csNextSeq = t.Seq + 1
			f.haveCSISN = true
			// Impersonate the original destination toward the initiator.
			f.relayCSSegmentToInit(p, nil)
			return
		}
		// Collect CS stream bytes until the response shim is complete.
		if len(p.Payload) > 0 {
			if t.Seq == f.csNextSeq {
				f.csBuf = append(f.csBuf, p.Payload...)
				f.csNextSeq += uint32(len(p.Payload))
				f.tryParseResponseShim(t)
			}
			// Don't forward data to the initiator yet: everything so far
			// is shim bytes (handled above) in the await state.
			return
		}
		// Pure ACK from CS: relay with ack unbumping.
		f.relayCSSegmentToInit(p, nil)

	case fsRewriteProxy:
		if t.Flags&netstack.FlagFIN != 0 {
			f.finResp = true
		}
		f.rec.BytesResp += uint64(len(p.Payload))
		f.relayCSSegmentToInit(p, p.Payload)
		f.maybeFinish()

	case fsEstablishing, fsSplice, fsDropped, fsClosed:
		// The CS leg has been cut; ignore stragglers.
	}
}

// relayCSSegmentToInit rewrites a CS segment in place to impersonate the
// original responder and applies shim offsets (consumes the packet).
// payload is the application payload to deliver — nil for control segments
// whose buffered bytes (shim remnants) must not reach the initiator.
func (f *Flow) relayCSSegmentToInit(p *netstack.Packet, payload []byte) {
	t := p.TCP
	t.SrcPort = f.respPort
	t.DstPort = f.initPort
	t.Seq -= f.s2cShim
	if f.shimSent && t.Flags&netstack.FlagACK != 0 {
		t.Ack -= f.c2sShim
	}
	if len(payload) != len(p.Payload) {
		p.Payload = payload // forces the slow marshal path; rare
	}
	// Normalise the network header the way a freshly built packet would
	// look (the initiator must see the impersonated responder, not the
	// containment server's IP metadata).
	p.IP.TOS, p.IP.ID, p.IP.Flags, p.IP.FragOff = 0, 0, 0, 0
	p.IP.TTL = netstack.DefaultTTL
	p.IP.Src, p.IP.Dst = f.respIP, f.initIP
	f.deliverToInitiator(p)
}

// tryParseResponseShim attempts to parse the buffered CS stream as a
// response shim; on success it strips it and applies the verdict.
func (f *Flow) tryParseResponseShim(t *netstack.TCP) {
	length, complete, err := shim.PeekLength(f.csBuf)
	if err != nil {
		// The CS spoke something other than shim protocol; contain hard.
		f.applyDrop("malformed response shim")
		return
	}
	if !complete {
		return
	}
	resp, _, err := shim.UnmarshalResponse(f.csBuf[:length])
	if err != nil {
		f.applyDrop("bad response shim: " + err.Error())
		return
	}
	extra := append([]byte(nil), f.csBuf[length:]...)
	f.csBuf = nil
	f.s2cShim = uint32(length)

	// Acknowledge the CS bytes ourselves: the initiator never sees the
	// shim, so its own ACKs can't cover it.
	f.ackCS(f.csNextSeq)

	f.applyVerdict(resp, extra)
}

// ackCS sends a pure ACK to the containment server on leg 1.
func (f *Flow) ackCS(ackSeq uint32) {
	p := &netstack.Packet{
		Eth: netstack.Ethernet{EtherType: netstack.EtherTypeIPv4},
		IP:  &netstack.IPv4{TTL: netstack.DefaultTTL, Src: f.initIP},
		TCP: &netstack.TCP{
			SrcPort: f.initPort,
			Seq:     f.initNextSeq + f.c2sShim,
			Ack:     ackSeq,
			Flags:   netstack.FlagACK,
			Window:  65535,
		},
	}
	f.sendToCS(p)
}

// rstCS cuts the containment-server leg after an endpoint-control verdict.
func (f *Flow) rstCS() {
	p := &netstack.Packet{
		Eth: netstack.Ethernet{EtherType: netstack.EtherTypeIPv4},
		IP:  &netstack.IPv4{TTL: netstack.DefaultTTL, Src: f.initIP},
		TCP: &netstack.TCP{
			SrcPort: f.initPort,
			Seq:     f.initNextSeq + f.c2sShim,
			Ack:     f.csNextSeq,
			Flags:   netstack.FlagRST | netstack.FlagACK,
		},
	}
	f.sendToCS(p)
}

// rstInitiator answers a stray initiator segment with a reset from the
// impersonated responder.
func (f *Flow) rstInitiator(t *netstack.TCP) {
	seq := uint32(0)
	flags := netstack.FlagRST | netstack.FlagACK
	if t.Flags&netstack.FlagACK != 0 {
		seq = t.Ack
		flags = netstack.FlagRST
	}
	f.rstInitiatorRaw(seq, t.Seq, flags)
}

func (f *Flow) rstInitiatorRaw(seq, ack uint32, flags uint8) {
	f.sendToInitiator(&netstack.TCP{
		SrcPort: f.respPort, DstPort: f.initPort,
		Seq: seq, Ack: ack, Flags: flags,
	}, nil, nil)
}

// applyDrop is the hard-containment path for protocol errors.
func (f *Flow) applyDrop(reason string) {
	f.verdict = shim.Drop
	f.rec.Verdict = shim.Drop
	f.rec.Annotation = reason
	f.rec.VerdictAt = f.now()
	f.recordVerdict(uint32(shim.Drop), reason)
	f.state = fsDropped
	f.rstInitiatorRaw(f.csISN+1, f.initNextSeq, netstack.FlagRST|netstack.FlagACK)
	f.rstCS()
	if f.r.OnVerdict != nil {
		f.r.OnVerdict(f.rec)
	}
	f.scheduleClose(5 * time.Second)
}

// failClose resolves a flow whose containment server is gone — crashed,
// quarantined, or stalled past the await-verdict deadline: record a
// synthetic Drop, reset both legs, and close. The flow never reached the
// outside (phase 1 only ever talks to the containment server; a rewrite
// proxy forwards nothing once its server is dead), so failing closed is the
// fate the paper's containment doctrine demands. Unlike applyDrop this does
// NOT count toward verdicts_applied — no verdict crossed the wire, and the
// trace audit (report.AuditTrace) checks exactly that equality — it is
// metered separately under flows_failclosed.
func (f *Flow) failClose(reason string) {
	if f.state == fsClosed || f.state == fsDropped {
		return
	}
	hadVerdict := f.rec.Verdict != 0
	f.verdict = shim.Drop
	f.rec.Verdict = shim.Drop
	f.rec.FailClosed = true
	if f.rec.Annotation == "" {
		f.rec.Annotation = reason
	}
	if !hadVerdict {
		f.rec.VerdictAt = f.now()
	}
	if f.proto == netstack.ProtoTCP {
		if f.haveCSISN {
			f.rstInitiatorRaw(f.csISN+1, f.initNextSeq, netstack.FlagRST|netstack.FlagACK)
		} else {
			// No SYN-ACK was ever relayed, so the initiator is still in
			// SYN-SENT and retransmitting. RST|ACK acking its SYN aborts the
			// connect, and a tombstone swallows any retransmitted SYN already
			// in flight — either would re-admit the flow under the same ISN
			// and break the trace audit's flow count.
			f.rstInitiatorRaw(0, f.initNextSeq, netstack.FlagRST|netstack.FlagACK)
			f.r.synTombs[synTombKey{f.initIP, f.initPort, f.respIP, f.respPort, f.initISS}] =
				f.now() + synTombstoneTTL
		}
		// Reset the containment-server leg too: a stalled verdict written
		// after the fail-close would otherwise put an unaccounted response
		// shim on the wire, and a live CS-side connection would sit
		// ESTABLISHED forever. Against a dead server the RST just drops.
		f.rstCS()
	}
	f.r.FlowsFailClosed.Inc()
	f.r.sc.Emit(obs.Event{
		Type: obs.EvFlowFailClosed, VLAN: f.vlan, Proto: f.proto,
		SrcIP: uint32(f.initIP), SrcPort: f.initPort,
		DstIP: uint32(f.respIP), DstPort: f.respPort,
		Verdict: uint32(shim.Drop), Detail: reason,
	})
	f.close(reason)
}

// applyVerdict enacts the containment server's decision.
func (f *Flow) applyVerdict(resp *shim.Response, extra []byte) {
	f.verdict = resp.Verdict
	f.rec.Verdict = resp.Verdict
	f.rec.Policy = resp.PolicyName
	f.rec.Annotation = resp.Annotation
	f.rec.VerdictAt = f.now()
	f.recordVerdict(uint32(resp.Verdict), resp.PolicyName)

	// The resulting four-tuple names the actual responder.
	f.actualIP, f.actualPort = resp.RespIP, resp.RespPort
	if f.actualIP == 0 {
		f.actualIP, f.actualPort = f.respIP, f.respPort
	}
	f.rec.ActualRespIP, f.rec.ActualRespPort = f.actualIP, f.actualPort

	if f.r.OnVerdict != nil {
		f.r.OnVerdict(f.rec)
	}

	v := resp.Verdict
	switch {
	case v.Has(shim.Drop):
		f.state = fsDropped
		f.rstInitiatorRaw(f.csISN+1, f.initNextSeq, netstack.FlagRST|netstack.FlagACK)
		f.rstCS()
		f.scheduleClose(5 * time.Second)

	case v.Has(shim.Rewrite):
		if f.initAborted {
			// Nothing left to proxy for: cut the CS leg.
			f.rstCS()
			f.scheduleClose(time.Second)
			return
		}
		// Content control: the CS stays in the path. Any bytes that
		// followed the shim are application data to relay.
		f.state = fsRewriteProxy
		if len(extra) > 0 {
			f.relayCSBytes(extra)
		}

	default:
		// Endpoint control: FORWARD, LIMIT, REDIRECT, REFLECT. The gateway
		// takes over; the CS leg is cut and the actual responder dialled.
		if v.Has(shim.Limit) {
			f.bucket = newTokenBucket(LimitRateBytesPerSec, LimitBurstBytes, f.r.sim)
		}
		f.state = fsEstablishing
		f.rstCS()
		f.dialResponder()
	}
}

// recordVerdict updates the verdict counter, latency histogram, and journal
// once a flow's verdict is known. detail names the policy (or drop reason).
func (f *Flow) recordVerdict(verdict uint32, detail string) {
	f.r.VerdictsApplied.Inc()
	f.r.VerdictLatencyUS.Observe(int64((f.rec.VerdictAt - f.rec.Start) / time.Microsecond))
	f.r.sc.Emit(obs.Event{
		Type: obs.EvFlowVerdict, VLAN: f.vlan, Proto: f.proto,
		SrcIP: uint32(f.initIP), SrcPort: f.initPort,
		DstIP: uint32(f.respIP), DstPort: f.respPort,
		Verdict: verdict, Detail: detail,
	})
}

// relayCSBytes delivers rewrite-proxy payload that arrived in the same
// segments as the shim.
func (f *Flow) relayCSBytes(data []byte) {
	t := &netstack.TCP{
		SrcPort: f.respPort, DstPort: f.initPort,
		Seq:    f.csNextSeq - uint32(len(data)) - f.s2cShim,
		Ack:    f.initNextSeq,
		Flags:  netstack.FlagACK | netstack.FlagPSH,
		Window: 65535,
	}
	f.rec.BytesResp += uint64(len(data))
	f.sendToInitiator(t, nil, data)
}

// maybeFinish closes the record once both directions have FINed.
func (f *Flow) maybeFinish() {
	if f.finInit && f.finResp {
		f.scheduleClose(10 * time.Second)
	}
}

// scheduleClose finalises the flow after a linger.
func (f *Flow) scheduleClose(after time.Duration) {
	f.r.sim.Schedule(after, func() { f.close("") })
}

// close finalises accounting and removes lookup state.
func (f *Flow) close(reason string) {
	if f.state == fsClosed {
		return
	}
	f.state = fsClosed
	f.rec.End = f.now()
	f.rec.Closed = true
	if reason != "" && f.rec.Annotation == "" {
		f.rec.Annotation = reason
	}
	if f.proto == netstack.ProtoUDP {
		delete(f.r.udpFlows, udpKey{f.initIP, f.initPort, f.respIP, f.respPort})
		delete(f.r.udpByActual, udpKey{f.initIP, f.initPort, f.actualIP, f.actualPort})
	} else {
		delete(f.r.flows, flowHalfKey{f.initIP, f.initPort, f.proto})
	}
	delete(f.r.byNonce, f.noncePort)
	if f.leg2Live {
		delete(f.r.nonceLegs, f.leg2CS)
	}
	if f.sender != nil {
		f.sender.stop()
	}
	f.r.FlowsActive.Set(int64(f.r.ActiveFlows()))
	f.r.sc.Emit(obs.Event{
		Type: obs.EvFlowClosed, VLAN: f.vlan, Proto: f.proto,
		SrcIP: uint32(f.initIP), SrcPort: f.initPort,
		DstIP: uint32(f.respIP), DstPort: f.respPort,
		N: f.rec.BytesOrig + f.rec.BytesResp, Detail: reason,
	})
	if f.r.OnFlowClosed != nil {
		f.r.OnFlowClosed(f.rec)
	}
}
