package gateway_test

import (
	"strings"
	"testing"
	"time"

	"gq/internal/containment"
	"gq/internal/gateway"
	"gq/internal/host"
	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/shim"
	"gq/internal/sim"
)

// testbed assembles a one-subfarm farm: inmate switch with trunked gateway,
// containment server and sink on a service VLAN, one inmate, and an
// external "Internet" switch with servers.
type testbed struct {
	sim     *sim.Simulator
	gw      *gateway.Gateway
	router  *gateway.Router
	cs      *containment.Server
	inmate  *host.Host
	sink    *host.Host
	extSw   *netsim.Switch
	inSw    *netsim.Switch
	nextMAC byte
}

var (
	csIP     = netstack.MustParseAddr("10.3.0.1")
	sinkIP   = netstack.MustParseAddr("10.3.1.4")
	nonceIP  = netstack.MustParseAddr("10.4.0.1")
	inmateIP = netstack.MustParseAddr("10.0.0.23")
	extWebIP = netstack.MustParseAddr("203.0.113.80")
)

const (
	inmateVLAN  = 16
	serviceVLAN = 2
	csPort      = 6666
)

func newTestbed(t *testing.T, seed int64) *testbed {
	t.Helper()
	s := sim.New(seed)
	tb := &testbed{sim: s}
	tb.gw = gateway.New(s)
	tb.inSw = netsim.NewSwitch(s, "inmate-sw")
	tb.extSw = netsim.NewSwitch(s, "internet-sw")
	netsim.Connect(tb.inSw.AddTrunkPort("uplink"), tb.gw.Trunk(), 0)
	netsim.Connect(tb.extSw.AddAccessPort("gw", 100), tb.gw.Outside(), 0)

	tb.router = tb.gw.AddRouter(gateway.RouterConfig{
		Name:   "testfarm",
		VLANLo: 10, VLANHi: 30,
		ServiceVLANs:    []uint16{serviceVLAN},
		InternalPrefix:  netstack.MustParsePrefix("10.0.0.0/16"),
		RouterIP:        netstack.MustParseAddr("10.0.0.1"),
		ServicePrefix:   netstack.MustParsePrefix("10.3.0.0/16"),
		ServiceRouterIP: netstack.MustParseAddr("10.3.0.254"),
		GlobalPool:      netstack.MustParsePrefix("192.0.2.0/24"),
		GlobalPoolStart: 16,
		ContainmentVLAN: serviceVLAN,
		ContainmentIP:   csIP,
		ContainmentPort: csPort,
		NonceIP:         nonceIP,
	})

	// Containment server host.
	csHost := tb.addServiceHost(t, "cs", csIP)
	var err error
	tb.cs, err = containment.NewServer(csHost, csPort, nonceIP)
	if err != nil {
		t.Fatal(err)
	}

	// Catch-all sink host.
	tb.sink = tb.addServiceHost(t, "sink", sinkIP)
	tb.router.RegisterServiceHost(sinkIP, serviceVLAN)

	// One inmate.
	tb.inmate = tb.addInmate(t, inmateIP, inmateVLAN)

	// External web server.
	tb.addExternal(t, "web", extWebIP)
	return tb
}

func (tb *testbed) mac() netstack.MAC {
	tb.nextMAC++
	return netstack.MAC{2, 0, 0, 0, 1, tb.nextMAC}
}

func (tb *testbed) addServiceHost(t *testing.T, name string, addr netstack.Addr) *host.Host {
	t.Helper()
	h := host.New(tb.sim, name, tb.mac())
	netsim.Connect(tb.inSw.AddAccessPort(name, serviceVLAN), h.NIC(), 0)
	h.ConfigureStatic(addr, 16, netstack.MustParseAddr("10.3.0.254"))
	return h
}

func (tb *testbed) addInmate(t *testing.T, addr netstack.Addr, vlan uint16) *host.Host {
	t.Helper()
	h := host.New(tb.sim, "inmate", tb.mac())
	netsim.Connect(tb.inSw.AddAccessPort("inmate", vlan), h.NIC(), 0)
	h.ConfigureStatic(addr, 16, netstack.MustParseAddr("10.0.0.1"))
	return h
}

func (tb *testbed) addExternal(t *testing.T, name string, addr netstack.Addr) *host.Host {
	t.Helper()
	h := host.New(tb.sim, name, tb.mac())
	netsim.Connect(tb.extSw.AddAccessPort(name, 100), h.NIC(), 0)
	h.ConfigureStatic(addr, 0, 0) // flat Internet: everything on-link
	return h
}

// policyFunc adapts a closure to the Decider interface.
type policyFunc struct {
	name string
	fn   func(req *shim.Request) containment.Decision
}

func (p policyFunc) Name() string { return p.name }
func (p policyFunc) Decide(req *shim.Request) containment.Decision {
	return p.fn(req)
}

// webEcho runs a server on h that records request lines and answers 200.
func webEcho(h *host.Host, port uint16, banner string) *[]string {
	var got []string
	h.Listen(port, func(c *host.Conn) {
		c.OnData = func(d []byte) {
			got = append(got, string(d))
			c.Write([]byte("HTTP/1.1 200 OK\r\nContent-Length: " + banner + "\r\n\r\n"))
		}
		c.OnPeerClose = func() { c.Close() }
	})
	return &got
}

func TestForwardVerdictEndToEnd(t *testing.T) {
	tb := newTestbed(t, 1)
	tb.cs.SetFallback(policyFunc{"AllowAll", func(req *shim.Request) containment.Decision {
		return containment.Decision{Verdict: shim.Forward, Annotation: "C&C"}
	}})

	var serverSaw []string
	var serverFrom netstack.Addr
	ext := tb.addExternal(t, "cc", netstack.MustParseAddr("198.51.100.7"))
	ext.Listen(80, func(c *host.Conn) {
		serverFrom, _ = c.RemoteAddr()
		c.OnData = func(d []byte) {
			serverSaw = append(serverSaw, string(d))
			c.Write([]byte("RESPONSE-FROM-CC"))
		}
		c.OnPeerClose = func() { c.Close() }
	})

	var got []byte
	var closed bool
	c := tb.inmate.Dial(netstack.MustParseAddr("198.51.100.7"), 80)
	c.OnConnect = func() { c.Write([]byte("GET /c2 HTTP/1.1\r\n\r\n")) }
	c.OnData = func(d []byte) { got = append(got, d...); c.Close() }
	c.OnClose = func(err error) { closed = true }
	tb.sim.RunFor(30 * time.Second)

	if len(serverSaw) != 1 || !strings.Contains(serverSaw[0], "GET /c2") {
		t.Fatalf("server saw %q", serverSaw)
	}
	if string(got) != "RESPONSE-FROM-CC" {
		t.Fatalf("inmate got %q", got)
	}
	if !closed {
		t.Fatal("inmate connection never closed")
	}
	// The external server must see the inmate's NAT'd global address.
	if serverFrom != netstack.MustParseAddr("192.0.2.16") {
		t.Fatalf("server saw source %v, want NAT global 192.0.2.16", serverFrom)
	}
	recs := tb.router.Records()
	if len(recs) != 1 || recs[0].Verdict != shim.Forward || recs[0].Policy != "AllowAll" {
		t.Fatalf("records %+v", recs)
	}
	if recs[0].Annotation != "C&C" {
		t.Fatalf("annotation %q", recs[0].Annotation)
	}
}

func TestDropVerdict(t *testing.T) {
	tb := newTestbed(t, 2)
	tb.cs.SetFallback(policyFunc{"DefaultDeny", func(req *shim.Request) containment.Decision {
		return containment.Decision{Verdict: shim.Drop}
	}})
	serverSaw := webEcho(tb.inmate, 9, "0") // placeholder; unused
	_ = serverSaw

	extSaw := webEcho(mustExternal(t, tb, "victim", "198.51.100.9"), 80, "0")

	var resetErr error
	c := tb.inmate.Dial(netstack.MustParseAddr("198.51.100.9"), 80)
	c.OnConnect = func() { c.Write([]byte("ATTACK")) }
	c.OnClose = func(err error) { resetErr = err }
	tb.sim.RunFor(30 * time.Second)

	if len(*extSaw) != 0 {
		t.Fatalf("contained traffic leaked to the victim: %q", *extSaw)
	}
	if resetErr == nil {
		t.Fatal("inmate connection should have been reset")
	}
}

func mustExternal(t *testing.T, tb *testbed, name, addr string) *host.Host {
	return tb.addExternal(t, name, netstack.MustParseAddr(addr))
}

func TestReflectVerdictToSink(t *testing.T) {
	tb := newTestbed(t, 3)
	tb.cs.SetFallback(policyFunc{"ReflectAll", func(req *shim.Request) containment.Decision {
		return containment.Decision{
			Verdict: shim.Reflect,
			RespIP:  sinkIP, RespPort: req.RespPort,
			Annotation: "full containment",
		}
	}})
	// Sink accepts anything on port 25.
	var sinkSaw []string
	tb.sink.Listen(25, func(c *host.Conn) {
		c.Write([]byte("220 sink ready\r\n"))
		c.OnData = func(d []byte) { sinkSaw = append(sinkSaw, string(d)) }
	})
	extSaw := webEcho(mustExternal(t, tb, "mx", "198.51.100.25"), 25, "0")

	var banner []byte
	c := tb.inmate.Dial(netstack.MustParseAddr("198.51.100.25"), 25)
	c.OnData = func(d []byte) {
		banner = append(banner, d...)
		c.Write([]byte("HELO spambot\r\n"))
	}
	tb.sim.RunFor(30 * time.Second)

	if len(*extSaw) != 0 {
		t.Fatal("reflected traffic reached the real MX")
	}
	if !strings.Contains(string(banner), "220 sink ready") {
		t.Fatalf("inmate banner %q", banner)
	}
	if len(sinkSaw) == 0 || !strings.Contains(sinkSaw[0], "HELO spambot") {
		t.Fatalf("sink saw %q", sinkSaw)
	}
}

func TestRedirectVerdict(t *testing.T) {
	tb := newTestbed(t, 4)
	honeypot := netstack.MustParseAddr("198.51.100.99")
	tb.cs.SetFallback(policyFunc{"RedirectAll", func(req *shim.Request) containment.Decision {
		return containment.Decision{Verdict: shim.Redirect, RespIP: honeypot, RespPort: 8080}
	}})
	origSaw := webEcho(mustExternal(t, tb, "orig", "198.51.100.50"), 80, "0")
	var altSaw []string
	alt := mustExternal(t, tb, "alt", "198.51.100.99")
	alt.Listen(8080, func(c *host.Conn) {
		c.OnData = func(d []byte) {
			altSaw = append(altSaw, string(d))
			c.Write([]byte("ALT"))
		}
	})

	var got []byte
	c := tb.inmate.Dial(netstack.MustParseAddr("198.51.100.50"), 80)
	c.OnConnect = func() { c.Write([]byte("probe")) }
	c.OnData = func(d []byte) { got = append(got, d...) }
	tb.sim.RunFor(30 * time.Second)

	if len(*origSaw) != 0 {
		t.Fatal("redirect leaked to original destination")
	}
	if len(altSaw) != 1 || altSaw[0] != "probe" {
		t.Fatalf("alternate target saw %q", altSaw)
	}
	if string(got) != "ALT" {
		t.Fatalf("inmate got %q (should believe it talks to the original)", got)
	}
}

// rewriteHandler implements the Fig. 5 scenario: the request path is
// rewritten before reaching the real server, and the server's response is
// rewritten into a 404 before reaching the inmate.
type rewriteHandler struct{}

func (rewriteHandler) OnClientData(s *containment.Session, data []byte) {
	out := strings.Replace(string(data), "GET /bot.exe", "GET /cleanup.exe", 1)
	s.WriteServer([]byte(out))
}
func (rewriteHandler) OnServerData(s *containment.Session, data []byte) {
	out := strings.Replace(string(data), "HTTP/1.1 200 OK", "HTTP/1.1 404 NOT FOUND", 1)
	s.WriteClient([]byte(out))
}
func (rewriteHandler) OnClientClose(s *containment.Session) { s.CloseServer() }
func (rewriteHandler) OnServerClose(s *containment.Session) { s.CloseClient() }

func TestFigure5RewriteFlow(t *testing.T) {
	tb := newTestbed(t, 5)
	tb.cs.SetFallback(policyFunc{"Rewriter", func(req *shim.Request) containment.Decision {
		return containment.Decision{
			Verdict: shim.Rewrite, Handler: rewriteHandler{},
			Annotation: "C&C filtering",
		}
	}})

	var serverSaw []string
	web := tb.addExternal(t, "target", netstack.MustParseAddr("192.150.187.12"))
	web.Listen(80, func(c *host.Conn) {
		c.OnData = func(d []byte) {
			serverSaw = append(serverSaw, string(d))
			c.Write([]byte("HTTP/1.1 200 OK\r\n\r\nMZ-REAL-BINARY"))
		}
	})

	var got []byte
	c := tb.inmate.Dial(netstack.MustParseAddr("192.150.187.12"), 80)
	c.OnConnect = func() { c.Write([]byte("GET /bot.exe HTTP/1.1\r\n\r\n")) }
	c.OnData = func(d []byte) { got = append(got, d...) }
	tb.sim.RunFor(30 * time.Second)

	if len(serverSaw) != 1 || !strings.Contains(serverSaw[0], "GET /cleanup.exe") {
		t.Fatalf("server saw %q, want rewritten path", serverSaw)
	}
	if !strings.Contains(string(got), "404 NOT FOUND") {
		t.Fatalf("inmate got %q, want rewritten 404", got)
	}
	if strings.Contains(string(got), "200 OK") {
		t.Fatal("original status leaked through the rewrite")
	}
	recs := tb.router.Records()
	if len(recs) != 1 || !recs[0].Verdict.Has(shim.Rewrite) {
		t.Fatalf("records %+v", recs)
	}
}

// impersonateHandler answers the client itself: the destination never sees
// the flow (auto-infection works this way, §6.6).
type impersonateHandler struct{ reply string }

func (h impersonateHandler) OnClientData(s *containment.Session, data []byte) {
	s.WriteClient([]byte(h.reply))
	s.CloseClient()
}
func (impersonateHandler) OnServerData(s *containment.Session, data []byte) {}
func (impersonateHandler) OnClientClose(s *containment.Session)             {}
func (impersonateHandler) OnServerClose(s *containment.Session)             {}

func TestRewriteImpersonation(t *testing.T) {
	tb := newTestbed(t, 6)
	tb.cs.SetFallback(policyFunc{"AutoInfect", func(req *shim.Request) containment.Decision {
		return containment.Decision{
			Verdict: shim.Rewrite,
			Handler: impersonateHandler{reply: "HTTP/1.1 200 OK\r\n\r\nFAKE-SAMPLE"},
		}
	}})
	// Note: no host exists at 10.9.8.7 — the CS impersonates it.
	var got []byte
	var eof bool
	c := tb.inmate.Dial(netstack.MustParseAddr("10.9.8.7"), 6543)
	c.OnConnect = func() { c.Write([]byte("GET /sample HTTP/1.1\r\n\r\n")) }
	c.OnData = func(d []byte) { got = append(got, d...) }
	c.OnPeerClose = func() { eof = true; c.Close() }
	tb.sim.RunFor(30 * time.Second)

	if !strings.Contains(string(got), "FAKE-SAMPLE") {
		t.Fatalf("inmate got %q", got)
	}
	if !eof {
		t.Fatal("impersonated server should close the connection")
	}
}

func TestLimitVerdictThrottles(t *testing.T) {
	tb := newTestbed(t, 7)
	tb.cs.SetFallback(policyFunc{"Limiter", func(req *shim.Request) containment.Decision {
		return containment.Decision{Verdict: shim.Limit}
	}})
	var received int
	ext := mustExternal(t, tb, "fast", "198.51.100.40")
	ext.Listen(80, func(c *host.Conn) {
		c.OnData = func(d []byte) { received += len(d) }
	})

	payload := make([]byte, 512*1024)
	c := tb.inmate.Dial(netstack.MustParseAddr("198.51.100.40"), 80)
	c.OnConnect = func() { c.Write(payload) }
	tb.sim.RunFor(10 * time.Second)

	// At 16 KB/s + 32 KB burst, 10s admits ~192 KB. Allow generous slack
	// but require real throttling versus the 512 KB offered.
	if received == 0 {
		t.Fatal("limit verdict blocked everything")
	}
	if received > 300*1024 {
		t.Fatalf("limit verdict admitted %d bytes in 10s", received)
	}
}

func TestInboundFlowContainment(t *testing.T) {
	tb := newTestbed(t, 8)
	tb.router.NAT().SetVLANMode(inmateVLAN, 1 /* nat.ForwardInbound */)
	tb.cs.SetFallback(policyFunc{"StormProxy", func(req *shim.Request) containment.Decision {
		return containment.Decision{Verdict: shim.Forward, Annotation: "proxy reachability"}
	}})
	// Inmate runs a service (Storm proxy style).
	var inmateSaw []string
	tb.inmate.Listen(8001, func(c *host.Conn) {
		c.OnData = func(d []byte) {
			inmateSaw = append(inmateSaw, string(d))
			c.Write([]byte("PROXY-ACK"))
		}
	})
	// Prime the NAT binding with some outbound chatter first (the paper's
	// dynamic binding needs boot-time traffic).
	warm := tb.inmate.Dial(extWebIP, 80)
	tb.sim.RunFor(5 * time.Second)
	warm.Abort()

	var got []byte
	ext := mustExternal(t, tb, "master", "198.51.100.66")
	c := ext.Dial(netstack.MustParseAddr("192.0.2.16"), 8001)
	c.OnConnect = func() { c.Write([]byte("RELAY-JOB")) }
	c.OnData = func(d []byte) { got = append(got, d...) }
	tb.sim.RunFor(30 * time.Second)

	if len(inmateSaw) != 1 || inmateSaw[0] != "RELAY-JOB" {
		t.Fatalf("inmate saw %q", inmateSaw)
	}
	if string(got) != "PROXY-ACK" {
		t.Fatalf("external initiator got %q", got)
	}
	// The flow must have been adjudicated.
	var sawInbound bool
	for _, rec := range tb.router.Records() {
		if rec.Inbound && rec.Verdict == shim.Forward {
			sawInbound = true
		}
	}
	if !sawInbound {
		t.Fatal("inbound flow was not adjudicated by the containment server")
	}
}

func TestInboundDroppedInHomeUserMode(t *testing.T) {
	tb := newTestbed(t, 9)
	tb.cs.SetFallback(policyFunc{"AllowAll", func(req *shim.Request) containment.Decision {
		return containment.Decision{Verdict: shim.Forward}
	}})
	// Prime the binding.
	warm := tb.inmate.Dial(extWebIP, 80)
	tb.sim.RunFor(5 * time.Second)
	warm.Abort()

	var connected bool
	ext := mustExternal(t, tb, "scanner", "198.51.100.13")
	c := ext.Dial(netstack.MustParseAddr("192.0.2.16"), 445)
	c.OnConnect = func() { connected = true }
	tb.sim.RunFor(30 * time.Second)
	if connected {
		t.Fatal("home-user NAT mode let an inbound connection through")
	}
}

func TestSafetyFilterCapsConnectionRate(t *testing.T) {
	tb := newTestbed(t, 10)
	cfgRouter := tb.gw.AddRouter(gateway.RouterConfig{
		Name:   "limited",
		VLANLo: 40, VLANHi: 50,
		ServiceVLANs:    []uint16{serviceVLAN},
		InternalPrefix:  netstack.MustParsePrefix("10.0.0.0/16"),
		RouterIP:        netstack.MustParseAddr("10.0.0.1"),
		ServicePrefix:   netstack.MustParsePrefix("10.3.0.0/16"),
		ServiceRouterIP: netstack.MustParseAddr("10.3.0.254"),
		GlobalPool:      netstack.MustParsePrefix("192.0.3.0/24"),
		GlobalPoolStart: 16,
		ContainmentVLAN: serviceVLAN,
		ContainmentIP:   csIP,
		ContainmentPort: csPort,
		NonceIP:         nonceIP,

		MaxFlowsPerMinute:        10,
		MaxFlowsPerDestPerMinute: 3,
	})
	_ = cfgRouter
	tb.cs.SetFallback(policyFunc{"AllowAll", func(req *shim.Request) containment.Decision {
		return containment.Decision{Verdict: shim.Forward}
	}})
	worm := tb.addInmate(t, netstack.MustParseAddr("10.0.0.99"), 45)

	// 30 connection attempts to distinct addresses within a minute.
	for i := 0; i < 30; i++ {
		dst := netstack.AddrFrom4(198, 51, 100, byte(100+i))
		worm.Dial(dst, 445)
	}
	tb.sim.RunFor(20 * time.Second)
	if n := cfgRouter.FlowsCreated.Value(); n > 10 {
		t.Fatalf("safety filter admitted %d flows, cap is 10", n)
	}
	if n := cfgRouter.SafetyDrops.Value(); n < 20 {
		t.Fatalf("safety drops %d, want >= 20", n)
	}

	// Per-destination cap: hammer one address from a fresh window.
	tb.sim.RunFor(2 * time.Minute)
	before := cfgRouter.FlowsCreated.Value()
	for i := 0; i < 10; i++ {
		worm.Dial(netstack.MustParseAddr("198.51.100.200"), 25)
	}
	tb.sim.RunFor(10 * time.Second)
	if n := cfgRouter.FlowsCreated.Value() - before; n > 3 {
		t.Fatalf("per-destination cap admitted %d flows", n)
	}
}

func TestUDPForwardAndReflect(t *testing.T) {
	tb := newTestbed(t, 11)
	tb.cs.SetFallback(policyFunc{"UDPPolicy", func(req *shim.Request) containment.Decision {
		if req.RespPort == 53 {
			return containment.Decision{Verdict: shim.Forward}
		}
		return containment.Decision{Verdict: shim.Reflect, RespIP: sinkIP, RespPort: 9999}
	}})
	// External "DNS" echoes datagrams.
	ext := mustExternal(t, tb, "dns", "198.51.100.53")
	extSock, _ := ext.ListenUDP(53, nil)
	ext.ListenUDP(53+1, nil) // silence unused warnings pattern
	var extGot []string
	extSock.Close()
	extSock2, _ := ext.ListenUDP(53, func(src netstack.Addr, sp uint16, d []byte) {
		extGot = append(extGot, string(d))
	})
	_ = extSock2
	// Sink records datagrams on 9999.
	var sinkGot []string
	tb.sink.ListenUDP(9999, func(src netstack.Addr, sp uint16, d []byte) {
		sinkGot = append(sinkGot, string(d))
	})

	sock, _ := tb.inmate.ListenUDP(5000, nil)
	sock.SendTo(netstack.MustParseAddr("198.51.100.53"), 53, []byte("query"))
	sock.SendTo(netstack.MustParseAddr("198.51.100.53"), 4000, []byte("flood"))
	tb.sim.RunFor(30 * time.Second)

	if len(extGot) != 1 || extGot[0] != "query" {
		t.Fatalf("external DNS got %q", extGot)
	}
	if len(sinkGot) != 1 || sinkGot[0] != "flood" {
		t.Fatalf("sink got %q", sinkGot)
	}
}

// Containment invariant (DESIGN.md §5): with DefaultDeny (drop), zero
// inmate payload bytes reach any external endpoint.
func TestDefaultDenyContainmentInvariant(t *testing.T) {
	tb := newTestbed(t, 12)
	tb.cs.SetFallback(policyFunc{"DefaultDeny", func(req *shim.Request) containment.Decision {
		return containment.Decision{Verdict: shim.Drop}
	}})
	var leaked int
	for _, addr := range []string{"198.51.100.1", "198.51.100.2", "198.51.100.3"} {
		h := mustExternal(t, tb, "v"+addr, addr)
		for _, port := range []uint16{25, 80, 443} {
			p := port
			h.Listen(p, func(c *host.Conn) {
				c.OnData = func(d []byte) { leaked += len(d) }
			})
		}
	}
	for i := 0; i < 3; i++ {
		for _, port := range []uint16{25, 80, 443} {
			dst := netstack.AddrFrom4(198, 51, 100, byte(1+i))
			c := tb.inmate.Dial(dst, port)
			c.Write([]byte("MALICIOUS PAYLOAD"))
		}
	}
	tb.sim.RunFor(time.Minute)
	if leaked != 0 {
		t.Fatalf("containment invariant violated: %d bytes leaked", leaked)
	}
}

func TestShimAnalyzableOnWire(t *testing.T) {
	// The subfarm tap must observe the request shim in flight — this is
	// what the Bro-style reporting consumes.
	tb := newTestbed(t, 13)
	tb.cs.SetFallback(policyFunc{"AllowAll", func(req *shim.Request) containment.Decision {
		return containment.Decision{Verdict: shim.Forward}
	}})
	var sawRequestShim bool
	tb.router.AddTap(func(p *netstack.Packet) {
		if p.TCP != nil && len(p.Payload) == shim.RequestLen {
			if req, err := shim.UnmarshalRequest(p.Payload); err == nil {
				if req.VLAN == inmateVLAN && req.RespPort == 80 {
					sawRequestShim = true
				}
			}
		}
	})
	c := tb.inmate.Dial(extWebIP, 80)
	_ = c
	tb.sim.RunFor(10 * time.Second)
	if !sawRequestShim {
		t.Fatal("request shim not visible on the subfarm tap")
	}
}
