package gateway

import (
	"testing"
	"time"

	"gq/internal/netstack"
	"gq/internal/shim"
	"gq/internal/sim"
)

// rstCollector taps the router and buckets RSTs by destination.
func rstCollector(r *Router, initIP, csIP netstack.Addr) (toInit, toCS *[]*netstack.Packet) {
	var init, cs []*netstack.Packet
	r.AddTap(func(p *netstack.Packet) {
		if p.TCP == nil || p.TCP.Flags&netstack.FlagRST == 0 {
			return
		}
		switch p.IP.Dst {
		case initIP:
			init = append(init, p)
		case csIP:
			cs = append(cs, p)
		}
	})
	return &init, &cs
}

// A flow stuck in fsAwaitVerdict past the await-verdict deadline — its
// containment server stalled or silently died — must resolve fail-closed:
// RST on both legs, a synthetic Drop record flagged FailClosed, metered
// under flows_failclosed (not sweep_reaped), and the table drains empty.
func TestAwaitVerdictDeadlineFailsClosed(t *testing.T) {
	s, r := newSweepRig(t)
	initIP := netstack.MustParseAddr("10.0.0.7")
	key := netstack.FlowKey{
		VLAN:  12,
		SrcIP: initIP, SrcPort: 4100,
		DstIP: netstack.MustParseAddr("198.51.100.9"), DstPort: 25,
		Proto: netstack.ProtoTCP,
	}
	r.inmateMAC[12] = netstack.MAC{2, 0, 0, 0, 0, 7}
	// The rig has no real CS host; resolve its ARP so the CS-leg RST is
	// emitted (and tapped) instead of parking in the pending queue.
	r.vlanARP[vlanAddr{r.cfg.ContainmentVLAN, r.cfg.ContainmentIP}] = netstack.MAC{2, 0, 0, 0, 0, 66}
	toInit, toCS := rstCollector(r, initIP, r.cfg.ContainmentIP)

	f := r.newFlow(key, 12, false)
	f.state = fsAwaitVerdict
	f.haveCSISN = true
	f.csISN = 1000
	f.initNextSeq = 2001

	s.RunFor(r.awaitVerdictTimeout / 2)
	if n := r.ActiveFlows(); n == 0 {
		t.Fatal("awaiting flow reaped before the deadline")
	}
	s.RunFor(r.awaitVerdictTimeout + time.Minute)

	if n := r.ActiveFlows(); n != 0 {
		t.Fatalf("awaiting flow leaked: ActiveFlows = %d", n)
	}
	if f.rec.Verdict != shim.Drop || !f.rec.FailClosed {
		t.Fatalf("record verdict=%v failclosed=%v, want synthetic Drop", f.rec.Verdict, f.rec.FailClosed)
	}
	if f.rec.Policy != "" {
		t.Fatalf("pre-verdict fail-close must carry no policy, got %q", f.rec.Policy)
	}
	if got := r.FlowsFailClosed.Value(); got != 1 {
		t.Fatalf("flows_failclosed = %d, want 1", got)
	}
	if got := r.SweepReaped.Value(); got != 0 {
		t.Fatalf("sweep_reaped = %d — fail-closed reap must not count as routine sweep", got)
	}
	if len(*toInit) == 0 {
		t.Fatal("no RST sent toward the initiator")
	}
	if rst := (*toInit)[0]; rst.TCP.Seq != f.csISN+1 || rst.TCP.Ack != f.initNextSeq {
		t.Fatalf("initiator RST seq=%d ack=%d, want seq=csISN+1=%d ack=%d",
			rst.TCP.Seq, rst.TCP.Ack, f.csISN+1, f.initNextSeq)
	}
	if len(*toCS) == 0 {
		t.Fatal("no RST sent toward the containment server")
	}
}

// A shorter AwaitVerdictTimeout must be honored: the knob exists so a farm
// that wants tighter fail-closed bounds can have them.
func TestAwaitVerdictTimeoutKnob(t *testing.T) {
	s := sim.New(1)
	g := New(s)
	r := g.AddRouter(RouterConfig{
		Name:   "knobrig",
		VLANLo: 10, VLANHi: 20,
		ServiceVLANs:        []uint16{2},
		InternalPrefix:      netstack.MustParsePrefix("10.0.0.0/16"),
		RouterIP:            netstack.MustParseAddr("10.0.0.1"),
		ServicePrefix:       netstack.MustParsePrefix("10.3.0.0/16"),
		ServiceRouterIP:     netstack.MustParseAddr("10.3.0.254"),
		GlobalPool:          netstack.MustParsePrefix("192.0.2.0/24"),
		GlobalPoolStart:     16,
		ContainmentVLAN:     2,
		ContainmentIP:       netstack.MustParseAddr("10.3.0.1"),
		ContainmentPort:     6666,
		NonceIP:             netstack.MustParseAddr("10.4.0.1"),
		AwaitVerdictTimeout: 10 * time.Second,
	})
	key := netstack.FlowKey{
		VLAN:  11,
		SrcIP: netstack.MustParseAddr("10.0.0.3"), SrcPort: 4200,
		DstIP: netstack.MustParseAddr("198.51.100.9"), DstPort: 80,
		Proto: netstack.ProtoTCP,
	}
	f := r.newFlow(key, 11, false)
	f.state = fsAwaitVerdict

	s.RunFor(45 * time.Second) // one sweep past the 10s bound, well short of the 1m default
	if n := r.ActiveFlows(); n != 0 {
		t.Fatalf("ActiveFlows = %d — custom await-verdict timeout not honored", n)
	}
	if !f.rec.FailClosed {
		t.Fatal("record not marked fail-closed")
	}
}

// A containment server dying mid-rewrite-proxy must fail the proxied flow
// closed — RST both legs — while keeping the policy name from the verdict
// that did cross the wire (the reporting discriminator for a post-verdict
// fail-close).
func TestFailCloseEndpointRewriteProxy(t *testing.T) {
	_, r := newSweepRig(t)
	initIP := netstack.MustParseAddr("10.0.0.8")
	key := netstack.FlowKey{
		VLAN:  13,
		SrcIP: initIP, SrcPort: 4300,
		DstIP: netstack.MustParseAddr("198.51.100.10"), DstPort: 25,
		Proto: netstack.ProtoTCP,
	}
	r.inmateMAC[13] = netstack.MAC{2, 0, 0, 0, 0, 8}
	r.vlanARP[vlanAddr{r.cfg.ContainmentVLAN, r.cfg.ContainmentIP}] = netstack.MAC{2, 0, 0, 0, 0, 66}
	toInit, toCS := rstCollector(r, initIP, r.cfg.ContainmentIP)

	f := r.newFlow(key, 13, false)
	f.state = fsRewriteProxy
	f.haveCSISN = true
	f.csISN = 5000
	f.initNextSeq = 6001
	f.rec.Verdict = shim.Rewrite
	f.rec.Policy = "Rustock"

	// An unrelated established splice must NOT be touched: it no longer
	// depends on the containment server.
	sk := netstack.FlowKey{
		VLAN:  14,
		SrcIP: netstack.MustParseAddr("10.0.0.9"), SrcPort: 4400,
		DstIP: netstack.MustParseAddr("198.51.100.11"), DstPort: 80,
		Proto: netstack.ProtoTCP,
	}
	spliced := r.newFlow(sk, 14, false)
	spliced.state = fsSplice

	if n := r.FailCloseEndpoint(0, "containment server down"); n != 1 {
		t.Fatalf("FailCloseEndpoint evicted %d flows, want 1", n)
	}
	if spliced.state != fsSplice {
		t.Fatalf("spliced flow disturbed: state=%v", spliced.state)
	}
	if f.rec.Verdict != shim.Drop || !f.rec.FailClosed {
		t.Fatalf("record verdict=%v failclosed=%v", f.rec.Verdict, f.rec.FailClosed)
	}
	if f.rec.Policy != "Rustock" {
		t.Fatalf("post-verdict fail-close lost its policy: %q", f.rec.Policy)
	}
	if len(*toInit) == 0 || len(*toCS) == 0 {
		t.Fatalf("RSTs: %d toward initiator, %d toward CS — want both legs reset",
			len(*toInit), len(*toCS))
	}
	if got := r.FlowsFailClosed.Value(); got != 1 {
		t.Fatalf("flows_failclosed = %d, want 1", got)
	}
}

// A SYN retransmission of a fail-closed flow must not re-admit it (the
// trace audit counts incarnations by ISN), while a genuinely new connection
// attempt — fresh ISN — must.
func TestFailCloseSynTombstone(t *testing.T) {
	s, r := newSweepRig(t)
	initIP := netstack.MustParseAddr("10.0.0.5")
	respIP := netstack.MustParseAddr("198.51.100.12")
	key := netstack.FlowKey{
		VLAN:  12,
		SrcIP: initIP, SrcPort: 4500,
		DstIP: respIP, DstPort: 25,
		Proto: netstack.ProtoTCP,
	}
	r.inmateMAC[12] = netstack.MAC{2, 0, 0, 0, 0, 5}

	f := r.newFlow(key, 12, false)
	f.state = fsAwaitVerdict
	f.initISS = 7000
	f.initNextSeq = 7001
	f.failClose("containment server down")

	syn := func(isn uint32) *netstack.Packet {
		return &netstack.Packet{
			Eth: netstack.Ethernet{VLAN: 12},
			IP:  &netstack.IPv4{Src: initIP, Dst: respIP, Protocol: netstack.ProtoTCP, TTL: 64},
			TCP: &netstack.TCP{SrcPort: 4500, DstPort: 25, Seq: isn, Flags: netstack.FlagSYN, Window: 65535},
		}
	}
	r.dispatchInmateIP(syn(7000))
	if got := r.FlowsCreated.Value(); got != 1 {
		t.Fatalf("retransmitted SYN re-admitted the fail-closed flow: flows_created=%d", got)
	}
	r.dispatchInmateIP(syn(9000))
	if got := r.FlowsCreated.Value(); got != 2 {
		t.Fatalf("fresh incarnation rejected: flows_created=%d, want 2", got)
	}

	// After the tombstone TTL the stale keys must be forgotten (bounded
	// state), which the periodic sweep handles. The second flow fail-closes
	// at the await-verdict deadline and plants its own tombstone, so run
	// past that one's expiry too.
	s.RunFor(r.awaitVerdictTimeout + synTombstoneTTL + 2*time.Minute)
	if len(r.synTombs) != 0 {
		t.Fatalf("%d tombstones leaked past their TTL", len(r.synTombs))
	}
}
