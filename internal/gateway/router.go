package gateway

import (
	"fmt"
	"sort"
	"time"

	"gq/internal/click"
	"gq/internal/nat"
	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/sim"
)

// RouterConfig is a subfarm's packet-router configuration: the small,
// per-subfarm module (≈40 lines in the paper's Click setup) layered over
// the invariant forwarding elements.
type RouterConfig struct {
	Name string

	// VLANLo..VLANHi is the subfarm's inmate VLAN ID range.
	VLANLo, VLANHi uint16
	// ServiceVLANs hold infrastructure hosts (DHCP, DNS, sinks, the
	// containment server) forming the restricted broadcast domain together
	// with the inmate VLANs.
	ServiceVLANs []uint16

	// InternalPrefix is the inmates' RFC 1918 subnet; RouterIP the
	// gateway's address on it (the inmates' default route).
	InternalPrefix netstack.Prefix
	RouterIP       netstack.Addr
	// ServicePrefix is the service hosts' subnet; ServiceRouterIP the
	// gateway's address there (the services' default route).
	ServicePrefix   netstack.Prefix
	ServiceRouterIP netstack.Addr

	// GlobalPool is the subfarm's routable address space; the first
	// GlobalPoolStart host indices are reserved.
	GlobalPool      netstack.Prefix
	GlobalPoolStart int
	InboundMode     nat.Mode

	// InfraPool is routable address space for the farm's own
	// infrastructure (§6.7 dedicates one network to making the control
	// infrastructure externally available). Service hosts that originate
	// traffic — e.g. the banner-grabbing SMTP sink — are statically
	// NAT'd into this pool, bypassing containment. Zero means service
	// hosts cannot reach out.
	InfraPool netstack.Prefix

	// Containment server location. NonceIP is the gateway-side address the
	// containment server dials for nonce-port connections (Fig. 5).
	ContainmentVLAN uint16
	ContainmentIP   netstack.Addr
	ContainmentPort uint16
	NonceIP         netstack.Addr

	// GRETunnels graft additional routable address space from cooperating
	// networks (§7.2). NAT draws from the tunnel pools once GlobalPool is
	// exhausted.
	GRETunnels []GRETunnel

	// ContainmentCluster optionally replaces the single containment server
	// with several (§7.2): the router selects per inmate, with the same
	// server always handling the same inmate. When set, the single
	// Containment* fields above are ignored for flow dispatch.
	ContainmentCluster []ContainmentEndpoint

	// Safety filter thresholds (§5.1): the rate of connections across
	// destinations and to a given destination never exceeds these.
	MaxFlowsPerMinute        int // per inmate, across destinations; 0 = no limit
	MaxFlowsPerDestPerMinute int // per (inmate, destination); 0 = no limit

	// MaxFlows bounds the flow table (TCP + UDP + nonce legs). At the
	// bound, the least-recently-active flow is shed with an RST to the
	// initiator rather than letting state grow without limit. Zero means
	// DefaultMaxFlows.
	MaxFlows int

	// AwaitVerdictTimeout bounds how long a flow may sit in fsAwaitVerdict
	// before the sweep resolves it fail-closed (synthetic Drop, RST both
	// legs, flows_failclosed counter). Zero means DefaultAwaitVerdictTimeout.
	AwaitVerdictTimeout time.Duration
}

// DefaultAwaitVerdictTimeout is the await-verdict bound when
// RouterConfig.AwaitVerdictTimeout is zero.
const DefaultAwaitVerdictTimeout = time.Minute

// DefaultMaxFlows is the flow-table bound when RouterConfig.MaxFlows is zero.
const DefaultMaxFlows = 4096

// ContainmentEndpoint locates one containment server instance.
type ContainmentEndpoint struct {
	VLAN uint16
	IP   netstack.Addr
	Port uint16
}

type flowHalfKey struct {
	ip    netstack.Addr
	port  uint16
	proto uint8
}

// synTombKey identifies one fail-closed TCP flow incarnation by its full
// initiator tuple plus ISN (see Router.synTombs).
type synTombKey struct {
	srcIP   netstack.Addr
	srcPort uint16
	dstIP   netstack.Addr
	dstPort uint16
	isn     uint32
}

// synTombstoneTTL bounds how long a fail-closed SYN key is remembered. The
// reset we send can itself be lost on an impaired inmate link, in which
// case the initiator keeps retransmitting on its backoff schedule — 1, 2,
// 4, 8, 16 seconds, i.e. a last copy up to 31s after the first SYN — so
// the tombstone must outlive the whole schedule, not just copies already
// in flight.
const synTombstoneTTL = 35 * time.Second

// Router is one subfarm's packet router. Each router runs in exactly one
// simulation domain (r.sim): the gateway's own for a single-domain farm,
// the subfarm's for a sharded one. All router state — flow table, NAT,
// bridging tables, sweeps — is touched only from that domain.
type Router struct {
	gw  *Gateway
	sim *sim.Simulator
	cfg RouterConfig

	// Sharded-topology ports, nil in a single-domain farm: trunk is the
	// router's private tagged link into its subfarm switch; uplink (router
	// domain) <-> uplinkCore (gateway domain) carry outside-bound and
	// inbound frames across the shard boundary at lookahead latency.
	trunk      *netsim.Port
	uplink     *netsim.Port
	uplinkCore *netsim.Port

	// L2 bridging state for the subfarm's restricted broadcast domain.
	// MAC addresses are farm-unique, and bridging only ever targets VLANs
	// this router owns, so the per-router table behaves identically to
	// the former gateway-wide one.
	macTable map[netstack.MAC]uint16 // MAC -> VLAN where last seen

	// scratch is the reusable marshal buffer for flood paths that emit the
	// same packet several times (see emitTrunk). Valid only within a
	// single synchronous call chain; Port.Send copies before the event
	// returns.
	scratch []byte

	// Click composition for inspection; the heavy lifting elements hold
	// references back into the router.
	graph *click.Graph

	nat *nat.Table

	flows     map[flowHalfKey]*Flow // TCP flows keyed by initiator endpoint
	nonceLegs map[flowHalfKey]*Flow // keyed by containment-server leg-2 endpoint
	byNonce   map[uint16]*Flow
	// UDP needs full four-tuple keys: one socket talks to many peers.
	udpFlows    map[udpKey]*Flow // (initiator, original responder)
	udpByActual map[udpKey]*Flow // (initiator, actual responder)
	nextNonce   uint16
	inmateMAC   map[uint16]netstack.MAC // VLAN -> inmate MAC (learned)
	inmateVLAN  map[netstack.Addr]uint16

	// VLAN-side ARP (for reaching service hosts and inmates).
	vlanARP     map[vlanAddr]netstack.MAC
	vlanPending map[vlanAddr][]*netstack.Packet

	// Safety filter state: fixed one-minute windows.
	rateWindow  time.Duration
	rateAll     map[uint16]int
	rateDest    map[vlanAddr]int
	SafetyDrops *obs.Counter

	// Crosstalk: explicitly enabled inmate VLAN pairs.
	crosstalk map[[2]uint16]bool

	// Service host registry: sinks and other infrastructure reachable as
	// flow responders, keyed by address.
	serviceHosts map[netstack.Addr]uint16

	// Static infrastructure NAT (service host <-> InfraPool address).
	infraOut  map[netstack.Addr]netstack.Addr
	infraIn   map[netstack.Addr]netstack.Addr
	infraNext int

	// Records of all flows, for reporting.
	records []*FlowRecord
	// OnVerdict fires when a flow receives its containment verdict.
	OnVerdict func(rec *FlowRecord)
	// OnFlowClosed fires when a flow record is finalised.
	OnFlowClosed func(rec *FlowRecord)

	// Taps observe packets traversing this subfarm (inmate-side, i.e. with
	// unroutable internal addresses, per §5.6).
	taps []func(p *netstack.Packet)

	// sc is the subfarm's journal scope / flight recorder.
	sc *obs.Scope

	// maxFlows is the resolved flow-table bound (cfg.MaxFlows or default).
	maxFlows int
	// awaitVerdictTimeout is the resolved await-verdict bound.
	awaitVerdictTimeout time.Duration

	// Containment-plane health, driven by internal/supervisor: csDown[i]
	// mirrors cluster member i's health, healthPorts demultiplexes
	// heartbeat echoes back to the supervisor by probe source port, and
	// onHealthReply delivers them. All touched only from the router's
	// domain, like the rest of the flow state.
	csDown        []bool
	healthPorts   map[uint16]int
	onHealthReply func(idx int, seq uint64)

	// synTombs remembers the (tuple, ISN) of TCP flows fail-closed before
	// their SYN-ACK was relayed: the initiator was reset, but a SYN
	// retransmission already in flight would otherwise re-admit the flow
	// under the same ISN — double-counting it against the trace audit,
	// which dedups flows by ISN. Entries expire after synTombstoneTTL.
	synTombs map[synTombKey]time.Duration

	// lockdown is the fail-closed switch (see SetLockdown): while set,
	// every flow-creation site drops instead of admitting, so no new
	// traffic crosses the containment boundary. Engaged by the supervision
	// tree when the containment plane stays dead past its budget, or by an
	// operator via the ops plane.
	lockdown       bool
	lockdownReason string

	// Counters, registered once in newRouter (see internal/obs).
	FlowsCreated, VerdictsApplied *obs.Counter
	SweepReaped                   *obs.Counter
	FlowsFailClosed               *obs.Counter
	NATExhausted                  *obs.Counter
	LimitDrops                    *obs.Counter
	Retransmits                   *obs.Counter
	FlowsShed                     *obs.Counter
	LockdownDrops                 *obs.Counter
	FlowsActive                   *obs.Gauge
	VerdictLatencyUS              *obs.Histogram

	// natExhaustedSeen dedups the nat.exhausted event per inmate VLAN so a
	// chatty unaddressable inmate doesn't flood the journal.
	natExhaustedSeen map[uint16]bool
	// greUp remembers which tunnel endpoints already emitted gre.tunnel_up.
	greUp map[netstack.Addr]bool
}

type vlanAddr struct {
	vlan uint16
	addr netstack.Addr
}

type udpKey struct {
	initIP   netstack.Addr
	initPort uint16
	peerIP   netstack.Addr
	peerPort uint16
}

func newRouter(g *Gateway, s *sim.Simulator, cfg RouterConfig) *Router {
	r := &Router{
		gw: g, sim: s, cfg: cfg,
		macTable:     make(map[netstack.MAC]uint16),
		nat:          nat.NewTable(cfg.GlobalPool, cfg.GlobalPoolStart, cfg.InboundMode),
		flows:        make(map[flowHalfKey]*Flow),
		nonceLegs:    make(map[flowHalfKey]*Flow),
		byNonce:      make(map[uint16]*Flow),
		udpFlows:     make(map[udpKey]*Flow),
		udpByActual:  make(map[udpKey]*Flow),
		nextNonce:    40000,
		inmateMAC:    make(map[uint16]netstack.MAC),
		inmateVLAN:   make(map[netstack.Addr]uint16),
		vlanARP:      make(map[vlanAddr]netstack.MAC),
		vlanPending:  make(map[vlanAddr][]*netstack.Packet),
		rateAll:      make(map[uint16]int),
		rateDest:     make(map[vlanAddr]int),
		crosstalk:    make(map[[2]uint16]bool),
		serviceHosts: make(map[netstack.Addr]uint16),
		infraOut:     make(map[netstack.Addr]netstack.Addr),
		infraIn:      make(map[netstack.Addr]netstack.Addr),
		infraNext:    1,

		natExhaustedSeen: make(map[uint16]bool),
		greUp:            make(map[netstack.Addr]bool),
	}
	r.maxFlows = cfg.MaxFlows
	if r.maxFlows <= 0 {
		r.maxFlows = DefaultMaxFlows
	}
	r.awaitVerdictTimeout = cfg.AwaitVerdictTimeout
	if r.awaitVerdictTimeout <= 0 {
		r.awaitVerdictTimeout = DefaultAwaitVerdictTimeout
	}
	ncs := len(cfg.ContainmentCluster)
	if ncs == 0 {
		ncs = 1 // the single configured server is endpoint 0
	}
	r.csDown = make([]bool, ncs)
	r.healthPorts = make(map[uint16]int)
	r.synTombs = make(map[synTombKey]time.Duration)
	o := s.Obs()
	pfx := "subfarm." + cfg.Name + "."
	r.FlowsCreated = o.Reg.Counter(pfx + "flows_created")
	r.VerdictsApplied = o.Reg.Counter(pfx + "verdicts_applied")
	r.SafetyDrops = o.Reg.Counter(pfx + "safety_drops")
	r.SweepReaped = o.Reg.Counter(pfx + "sweep_reaped")
	r.FlowsFailClosed = o.Reg.Counter(pfx + "flows_failclosed")
	r.NATExhausted = o.Reg.Counter(pfx + "nat_exhausted")
	r.LimitDrops = o.Reg.Counter(pfx + "limit_drops")
	r.Retransmits = o.Reg.Counter(pfx + "retransmits")
	r.FlowsShed = o.Reg.Counter(pfx + "flows_shed")
	r.LockdownDrops = o.Reg.Counter(pfx + "lockdown_drops")
	r.FlowsActive = o.Reg.Gauge(pfx + "flows_active")
	r.VerdictLatencyUS = o.Reg.Histogram(pfx+"verdict_latency_us",
		100, 200, 500, 1000, 2000, 5000, 10000, 50000, 100000, 500000)
	r.sc = o.Scope(cfg.Name, obs.DefaultRingSize)
	r.serviceHosts[cfg.ContainmentIP] = cfg.ContainmentVLAN
	for _, ep := range cfg.ContainmentCluster {
		r.serviceHosts[ep.IP] = ep.VLAN
	}
	r.attachTunnels()
	r.buildGraph()
	// Roll the safety-filter window every minute. Both periodic jobs run
	// in the router's own domain.
	s.Every(time.Minute, func() {
		r.rateAll = make(map[uint16]int)
		r.rateDest = make(map[vlanAddr]int)
	})
	// Sweep idle and stalled flows.
	s.Every(30*time.Second, r.sweepFlows)
	if s != g.Sim {
		// Sharded topology: private trunk plus the cross-domain uplink
		// pair. The uplink latency is exactly the coordinator's lookahead
		// — the modeled trunk wire that makes conservative
		// synchronization sound.
		r.trunk = netsim.NewPort(s, "gw/trunk-"+cfg.Name, r.recvTrunkFrame)
		r.uplink = netsim.NewPort(s, "gw/uplink-"+cfg.Name, r.recvFromCore)
		r.uplinkCore = netsim.NewPort(g.Sim, "gw/core-"+cfg.Name, r.recvAtCore)
		netsim.Connect(r.uplink, r.uplinkCore, s.CrossFloor(g.Sim))
	}
	return r
}

// TrunkPort returns the port a subfarm switch trunk should wire into: the
// router's private trunk in a sharded farm, the gateway's shared trunk
// otherwise.
func (r *Router) TrunkPort() *netsim.Port {
	if r.trunk != nil {
		return r.trunk
	}
	return r.gw.trunk
}

// Sim returns the simulation domain this router runs in.
func (r *Router) Sim() *sim.Simulator { return r.sim }

// recvTrunkFrame receives frames on the router's private trunk (sharded
// topology only). It mirrors Gateway.recvTrunk but skips VLAN routing:
// everything on this trunk is ours.
func (r *Router) recvTrunkFrame(frame []byte) {
	r.gw.TrunkRx.Inc()
	p, err := netstack.ParseFrame(frame)
	if err != nil || p.Eth.VLAN == netstack.NoVLAN {
		return
	}
	if !r.ownsVLAN(p.Eth.VLAN) {
		return
	}
	r.receiveTrunk(p)
}

// receiveTrunk is the router's trunk ingress: learn L2 placement, then
// dispatch by frame type. Runs in the router's domain.
func (r *Router) receiveTrunk(p *netstack.Packet) {
	// Learn where this MAC lives for broadcast-domain bridging.
	if !p.Eth.Src.IsBroadcast() && !p.Eth.Src.IsZero() {
		r.macTable[p.Eth.Src] = p.Eth.VLAN
	}
	if p.ARP != nil {
		r.handleARP(p)
		return
	}
	// Frames addressed to the gateway itself go to the router's IP logic;
	// anything else is a candidate for intra-farm L2 bridging.
	if p.Eth.Dst == GatewayMAC {
		r.handleIP(p)
		return
	}
	r.bridge(p)
}

// bridge forwards a frame between VLANs of the restricted broadcast domain
// (inmate VLANs <-> service VLANs of the same subfarm). Inmate-to-inmate
// unicast requires explicitly enabled crosstalk.
func (r *Router) bridge(p *netstack.Packet) {
	srcVLAN := p.Eth.VLAN
	if p.Eth.Dst.IsBroadcast() {
		// Flood into the other half of the broadcast domain.
		if r.isServiceVLAN(srcVLAN) {
			for vlan := r.cfg.VLANLo; vlan <= r.cfg.VLANHi; vlan++ {
				r.emitTrunk(p, vlan)
			}
		} else {
			for _, sv := range r.cfg.ServiceVLANs {
				r.emitTrunk(p, sv)
			}
			for _, other := range r.crosstalkPeers(srcVLAN) {
				r.emitTrunk(p, other)
			}
		}
		return
	}
	dstVLAN, known := r.macTable[p.Eth.Dst]
	if !known || dstVLAN == srcVLAN || !r.ownsVLAN(dstVLAN) {
		return
	}
	srcInmate, dstInmate := !r.isServiceVLAN(srcVLAN), !r.isServiceVLAN(dstVLAN)
	if srcInmate && dstInmate && !r.crosstalkAllowed(srcVLAN, dstVLAN) {
		return
	}
	r.gw.Bridged.Inc()
	r.emitTrunkTapped(p, dstVLAN, r.gw.bridgeTaps)
}

// emitTrunk retags a packet and transmits it on the trunk. The packet is
// not consumed: the frame is staged in the router's scratch buffer and
// retagged there, so flood loops reuse one buffer instead of cloning and
// re-marshalling per target VLAN.
func (r *Router) emitTrunk(p *netstack.Packet, vlan uint16) {
	r.emitTrunkTapped(p, vlan, nil)
}

// emitTrunkTapped is emitTrunk plus an optional tap list observing the
// retagged frame exactly as transmitted.
func (r *Router) emitTrunkTapped(p *netstack.Packet, vlan uint16, taps []func(frame []byte)) {
	r.scratch = p.AppendWire(r.scratch[:0])
	if netstack.RetagVLAN(r.scratch, vlan) {
		for _, t := range taps {
			t(r.scratch)
		}
		r.TrunkPort().Send(r.scratch) // Send copies; scratch stays ours
		return
	}
	// Untagged or reshaped frame: fall back to clone-and-marshal.
	q := p.Clone()
	q.Eth.VLAN = vlan
	frame := q.Marshal()
	for _, t := range taps {
		t(frame)
	}
	r.TrunkPort().SendOwned(frame)
}

// sendTrunk transmits a crafted packet (already addressed) on the trunk,
// consuming it: the marshalled frame may alias the packet's buffer.
func (r *Router) sendTrunk(p *netstack.Packet) { r.TrunkPort().SendOwned(p.Marshal()) }

// sendOutside routes an outbound IP packet toward the upstream network:
// GRE-encapsulating tunnelled source space here (tunnel state lives in the
// router's domain), then handing the result to the gateway core — directly
// in a single-domain farm, over the uplink in a sharded one.
func (r *Router) sendOutside(p *netstack.Packet) {
	if p.IP.Protocol != netstack.ProtoGRE {
		if t := r.tunnelForSrc(p.IP.Src); t != nil {
			r.greEncapAndSend(t, p)
			return
		}
	}
	r.emitOutside(p)
}

// emitOutside ships a wire-ready outbound packet to the gateway core.
func (r *Router) emitOutside(p *netstack.Packet) {
	if r.uplink != nil {
		p.Eth.VLAN = netstack.NoVLAN
		p.Eth.EtherType = netstack.EtherTypeIPv4
		r.uplink.SendOwned(p.Marshal())
		return
	}
	r.gw.emitOutside(p)
}

// recvAtCore runs in the gateway core's domain: outbound frames arriving
// over the router's uplink re-parse and continue on the core's upstream
// path (ARP resolution, taps, transmission).
func (r *Router) recvAtCore(frame []byte) {
	p, err := netstack.ParseFrame(frame)
	if err != nil || p.IP == nil {
		return
	}
	r.gw.emitOutside(p)
}

// recvFromCore runs in the router's domain: inbound frames the core
// dispatched to this router's global space.
func (r *Router) recvFromCore(frame []byte) {
	p, err := netstack.ParseFrame(frame)
	if err != nil || p.IP == nil {
		return
	}
	r.dispatchFromOutside(p)
}

// dispatchFromOutside classifies an inbound packet for this router's
// address space: GRE tunnel arrivals, infrastructure-pool traffic, and
// everything else (inmate-bound flows). Runs in the router's domain.
func (r *Router) dispatchFromOutside(p *netstack.Packet) {
	if p.IP.Protocol == netstack.ProtoGRE {
		// Tunnel traffic terminating at one of our GRE endpoints.
		if t := r.tunnelForEndpoint(p.IP.Dst); t != nil {
			r.handleGRE(p)
		}
		return
	}
	if r.cfg.InfraPool.Bits != 0 && r.cfg.InfraPool.Contains(p.IP.Dst) {
		r.handleInfraInbound(p)
		return
	}
	r.handleFromOutside(p)
}

// buildGraph assembles the Click composition. The invariant element module
// is identical across subfarms; RouterConfig supplies the variant parts.
func (r *Router) buildGraph() {
	g := click.NewGraph("subfarm-" + r.cfg.Name)
	rx := click.NewCounter("rx_inmate")
	tapEl := click.NewTap("trace_tap", func(p *netstack.Packet) {
		for _, t := range r.taps {
			t(p)
		}
	})
	classify := click.NewClassifier("classify", func(p *netstack.Packet) int {
		if p.IP == nil {
			return -1
		}
		if p.TCP == nil && p.UDP == nil {
			return -1
		}
		return 0
	})
	safety := click.NewFunc("safety_filter", func(_ int, p *netstack.Packet) {
		r.dispatchInmateIP(p)
	})
	g.Add(rx)
	g.Add(tapEl)
	g.Add(classify)
	g.Add(safety)
	g.Connect(rx, 0, tapEl, 0)
	g.Connect(tapEl, 0, classify, 0)
	g.Connect(classify, 0, safety, 0)
	r.graph = g
}

// Graph exposes the Click composition.
func (r *Router) Graph() *click.Graph { return r.graph }

// Config returns the router configuration.
func (r *Router) Config() RouterConfig { return r.cfg }

// NAT exposes the subfarm's NAT table.
func (r *Router) NAT() *nat.Table { return r.nat }

// AddTap registers a subfarm trace tap (internal addressing).
func (r *Router) AddTap(t func(p *netstack.Packet)) { r.taps = append(r.taps, t) }

// EnableCrosstalk permits direct L2 traffic between two inmate VLANs.
func (r *Router) EnableCrosstalk(a, b uint16) {
	if a > b {
		a, b = b, a
	}
	r.crosstalk[[2]uint16{a, b}] = true
}

func (r *Router) crosstalkAllowed(a, b uint16) bool {
	if a > b {
		a, b = b, a
	}
	return r.crosstalk[[2]uint16{a, b}]
}

func (r *Router) crosstalkPeers(vlan uint16) []uint16 {
	var out []uint16
	for pair := range r.crosstalk {
		if pair[0] == vlan {
			out = append(out, pair[1])
		} else if pair[1] == vlan {
			out = append(out, pair[0])
		}
	}
	return out
}

func (r *Router) ownsVLAN(vlan uint16) bool {
	if vlan >= r.cfg.VLANLo && vlan <= r.cfg.VLANHi {
		return true
	}
	return r.isServiceVLAN(vlan)
}

func (r *Router) isServiceVLAN(vlan uint16) bool {
	for _, sv := range r.cfg.ServiceVLANs {
		if sv == vlan {
			return true
		}
	}
	return false
}

func (r *Router) isInmateVLAN(vlan uint16) bool {
	return vlan >= r.cfg.VLANLo && vlan <= r.cfg.VLANHi
}

// RegisterServiceHost records where a service host (sink, proxy) lives so
// verdicts can route flows to it.
func (r *Router) RegisterServiceHost(addr netstack.Addr, vlan uint16) {
	r.serviceHosts[addr] = vlan
}

// serviceVLANFor resolves a service host's VLAN.
func (r *Router) serviceVLANFor(addr netstack.Addr) (uint16, bool) {
	vlan, ok := r.serviceHosts[addr]
	return vlan, ok
}

// InmateByVLAN returns the learned (internal address, MAC) of an inmate.
func (r *Router) InmateByVLAN(vlan uint16) (netstack.Addr, netstack.MAC, bool) {
	b := r.nat.ByVLAN(vlan)
	if b == nil {
		return 0, netstack.MAC{}, false
	}
	return b.Internal, b.MAC, true
}

// Records returns all flow records.
func (r *Router) Records() []*FlowRecord { return r.records }

// ActiveFlows reports live flow-table entries (TCP + UDP + nonce legs),
// for leak detection in tests and operations dashboards.
func (r *Router) ActiveFlows() int {
	return len(r.flows) + len(r.udpFlows) + len(r.nonceLegs)
}

// handleARP answers ARP requests addressed to the gateway's router IPs and
// bridges everything else within the broadcast domain.
func (r *Router) handleARP(p *netstack.Packet) {
	a := p.ARP
	// Learn inmate addressing from chatter.
	if r.isInmateVLAN(p.Eth.VLAN) && !a.SenderIP.IsZero() {
		r.learnInmate(p.Eth.VLAN, a.SenderIP, a.SenderHW)
	}
	if !a.SenderIP.IsZero() {
		key := vlanAddr{p.Eth.VLAN, a.SenderIP}
		r.vlanARP[key] = a.SenderHW
		r.flushVLANPending(key)
	}
	if a.Op == netstack.ARPRequest {
		var mine netstack.Addr
		switch {
		case a.TargetIP == r.cfg.RouterIP:
			mine = r.cfg.RouterIP
		case a.TargetIP == r.cfg.ServiceRouterIP:
			mine = r.cfg.ServiceRouterIP
		case a.TargetIP == r.cfg.NonceIP:
			mine = r.cfg.NonceIP
		default:
			// Not ours: bridge the broadcast within the domain so inmates
			// can resolve infrastructure hosts (DHCP, DNS).
			r.bridge(p)
			return
		}
		reply := &netstack.Packet{
			Eth: netstack.Ethernet{
				Dst: a.SenderHW, Src: GatewayMAC,
				VLAN: p.Eth.VLAN, EtherType: netstack.EtherTypeARP,
			},
			ARP: &netstack.ARP{
				Op:       netstack.ARPReply,
				SenderHW: GatewayMAC, SenderIP: mine,
				TargetHW: a.SenderHW, TargetIP: a.SenderIP,
			},
		}
		r.sendTrunk(reply)
		return
	}
	// ARP replies: bridge toward the querier if it lives elsewhere.
	r.bridge(p)
}

func (r *Router) learnInmate(vlan uint16, addr netstack.Addr, mac netstack.MAC) {
	if !r.cfg.InternalPrefix.Contains(addr) {
		return
	}
	r.inmateMAC[vlan] = mac
	r.inmateVLAN[addr] = vlan
	if r.nat.Learn(vlan, addr, mac) == nil && !r.natExhaustedSeen[vlan] {
		// Global pool (plus any tunnel pools) had no free address: this
		// inmate is unroutable until capacity frees up. Record it once per
		// VLAN — the condition repeats on every packet the inmate sends.
		r.natExhaustedSeen[vlan] = true
		r.NATExhausted.Inc()
		r.sc.Emit(obs.Event{Type: obs.EvNATExhausted, VLAN: vlan, SrcIP: uint32(addr)})
	}
}

// handleIP is the entry point for IP packets addressed to the gateway MAC
// on the trunk.
func (r *Router) handleIP(p *netstack.Packet) {
	if p.IP == nil {
		// Not IP after all — e.g. a corrupted EtherType that still parsed.
		// Nothing routable; drop.
		return
	}
	if r.isInmateVLAN(p.Eth.VLAN) {
		r.learnInmate(p.Eth.VLAN, p.IP.Src, p.Eth.Src)
		// Push through the Click pipeline (counters, taps, classifier,
		// safety filter, then flow dispatch).
		r.graph.Lookup("rx_inmate").Push(0, p)
		return
	}
	// From a service VLAN: containment-server traffic or sink replies.
	r.dispatchServiceIP(p)
}

// safetyCheck enforces connection-rate thresholds for new flows from an
// inmate. It returns false when the flow must be dropped.
func (r *Router) safetyCheck(vlan uint16, dst netstack.Addr) bool {
	if r.cfg.MaxFlowsPerMinute > 0 {
		if r.rateAll[vlan] >= r.cfg.MaxFlowsPerMinute {
			r.SafetyDrops.Inc()
			return false
		}
	}
	if r.cfg.MaxFlowsPerDestPerMinute > 0 {
		key := vlanAddr{vlan, dst}
		if r.rateDest[key] >= r.cfg.MaxFlowsPerDestPerMinute {
			r.SafetyDrops.Inc()
			return false
		}
	}
	r.rateAll[vlan]++
	r.rateDest[vlanAddr{vlan, dst}]++
	return true
}

// sendToVLAN delivers an IP packet to (vlan, dstIP) on the inmate network,
// resolving the destination MAC via ARP on that VLAN when unknown.
func (r *Router) sendToVLAN(p *netstack.Packet, vlan uint16) {
	p.Eth.Src = GatewayMAC
	p.Eth.VLAN = vlan
	key := vlanAddr{vlan, p.IP.Dst}
	if mac, ok := r.vlanARP[key]; ok {
		p.Eth.Dst = mac
		r.tapAndSend(p)
		return
	}
	// For inmates we usually know the MAC already from NAT learning.
	if r.isInmateVLAN(vlan) {
		if mac, ok := r.inmateMAC[vlan]; ok {
			p.Eth.Dst = mac
			r.tapAndSend(p)
			return
		}
	}
	r.vlanPending[key] = append(r.vlanPending[key], p)
	if len(r.vlanPending[key]) > 1 {
		return
	}
	r.arpVLAN(key, 0)
}

func (r *Router) arpVLAN(key vlanAddr, tries int) {
	sender := r.cfg.RouterIP
	if r.isServiceVLAN(key.vlan) {
		sender = r.cfg.ServiceRouterIP
	}
	req := &netstack.Packet{
		Eth: netstack.Ethernet{
			Dst: netstack.BroadcastMAC, Src: GatewayMAC,
			VLAN: key.vlan, EtherType: netstack.EtherTypeARP,
		},
		ARP: &netstack.ARP{
			Op: netstack.ARPRequest, SenderHW: GatewayMAC,
			SenderIP: sender, TargetIP: key.addr,
		},
	}
	r.sendTrunk(req)
	r.sim.Schedule(time.Second, func() {
		if _, ok := r.vlanARP[key]; ok {
			return
		}
		if tries+1 >= 3 {
			delete(r.vlanPending, key)
			return
		}
		r.arpVLAN(key, tries+1)
	})
}

func (r *Router) flushVLANPending(key vlanAddr) {
	queued := r.vlanPending[key]
	if len(queued) == 0 {
		return
	}
	delete(r.vlanPending, key)
	mac := r.vlanARP[key]
	for _, p := range queued {
		p.Eth.Dst = mac
		r.tapAndSend(p)
	}
}

// tapAndSend runs subfarm taps and transmits on the trunk.
func (r *Router) tapAndSend(p *netstack.Packet) {
	for _, t := range r.taps {
		t(p)
	}
	r.sendTrunk(p)
}

// containmentFor selects the containment server for an inmate: sticky
// per-VLAN rendezvous hashing over the healthy cluster subset, or the
// single configured server. Rendezvous (highest-random-weight) hashing
// keeps the inmate->server mapping stable while a member is down — only
// the dead member's inmates move, and they move back when it recovers —
// unlike the old modulo selection, which kept dispatching onto the corpse.
func (r *Router) containmentFor(vlan uint16) ContainmentEndpoint {
	n := len(r.cfg.ContainmentCluster)
	if n == 0 {
		return ContainmentEndpoint{VLAN: r.cfg.ContainmentVLAN, IP: r.cfg.ContainmentIP, Port: r.cfg.ContainmentPort}
	}
	best := -1
	var bestScore uint64
	pick := func(skipDown bool) {
		for i := 0; i < n; i++ {
			if skipDown && r.csDown[i] {
				continue
			}
			if s := rendezvousScore(vlan, i); best < 0 || s > bestScore {
				best, bestScore = i, s
			}
		}
	}
	pick(true)
	if best < 0 {
		// Every member down: hash over the full cluster anyway. New flows
		// still head to a containment server — where they will fail closed
		// — never to the outside.
		pick(false)
	}
	return r.cfg.ContainmentCluster[best]
}

// rendezvousScore is the highest-random-weight score of cluster member idx
// for an inmate VLAN: a splitmix64 finalizer over the (vlan, member) pair.
// Pure function of its inputs — selection must not depend on RNG state or
// arrival order, or same-seed runs would diverge.
func rendezvousScore(vlan uint16, idx int) uint64 {
	x := uint64(vlan)<<32 | uint64(idx+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

// isContainmentEndpoint reports whether (ip, port) is one of the subfarm's
// containment servers.
func (r *Router) isContainmentEndpoint(ip netstack.Addr, port uint16) bool {
	if ip == r.cfg.ContainmentIP && port == r.cfg.ContainmentPort {
		return true
	}
	for _, ep := range r.cfg.ContainmentCluster {
		if ep.IP == ip && ep.Port == port {
			return true
		}
	}
	return false
}

// establishTimeout bounds how long a flow may sit in fsEstablishing (the
// phase-2 handshake with the actual responder). The gateway's own sender
// normally gives up much sooner, but a flow whose sender was stopped (or
// never started) would otherwise occupy the table forever.
const establishTimeout = time.Minute

// spliceIdleTimeout reaps established (spliced or rewrite-proxied) flows
// with no traffic in either direction. A reaped C&C poll simply re-dials at
// its next scheduled poll; what this prevents is flows whose endpoints were
// silently destroyed (inmate revert, containment-server crash) pinning the
// table forever.
const spliceIdleTimeout = 10 * time.Minute

// sweepFlows expires idle UDP flows, TCP flows stuck without a containment
// verdict (e.g. the containment server is being reconfigured), and flows
// stalled mid-establishment. It also reaps orphaned nonce-leg entries so
// the flow table returns to empty once traffic stops.
func (r *Router) sweepFlows() {
	now := r.sim.Now()
	var stale, failclosed []*Flow
	seen := make(map[*Flow]bool)
	consider := func(f *Flow) {
		if seen[f] {
			return // registered under several keys (e.g. nonce leg)
		}
		idle := now - f.lastActivity
		switch {
		case f.state == fsAwaitVerdict && idle > r.awaitVerdictTimeout:
			// No verdict within the bound: resolve fail-closed. Metered
			// under flows_failclosed, not sweep_reaped, so telemetry can
			// tell a containment-plane failure from routine idle cleanup.
			seen[f] = true
			failclosed = append(failclosed, f)
		case f.proto == netstack.ProtoUDP && idle > udpIdleTimeout,
			f.state == fsEstablishing && idle > establishTimeout,
			(f.state == fsSplice || f.state == fsRewriteProxy) && idle > spliceIdleTimeout,
			f.state == fsClosed:
			seen[f] = true
			stale = append(stale, f)
		}
	}
	for _, f := range r.flows {
		consider(f)
	}
	for _, f := range r.udpFlows {
		consider(f)
	}
	// Tear down in tuple order, not map order: a sweep that reaps several
	// flows at once must emit the same event sequence on every same-seed
	// run for the journal-determinism guarantee.
	sortFlowsByTuple(stale)
	sortFlowsByTuple(failclosed)
	if n := len(stale); n > 0 {
		r.SweepReaped.Add(uint64(n))
		r.sc.Emit(obs.Event{Type: obs.EvSweepReaped, N: uint64(n)})
	}
	for _, f := range stale {
		switch {
		case f.state == fsEstablishing:
			// Tell the initiator the connection is gone and abort any
			// half-open responder leg.
			f.abortResponder()
			f.rstInitiatorRaw(f.csISN+1, f.initNextSeq, netstack.FlagRST|netstack.FlagACK)
		case f.state == fsSplice:
			f.abortResponder()
			f.rstInitiatorRaw(f.csISN+1, f.initNextSeq, netstack.FlagRST|netstack.FlagACK)
		case f.state == fsRewriteProxy:
			f.rstCS()
			f.rstInitiatorRaw(f.csISN+1, f.initNextSeq, netstack.FlagRST|netstack.FlagACK)
		}
		f.close("flow expired")
	}
	for _, f := range failclosed {
		f.failClose("await-verdict deadline exceeded")
	}
	// Nonce-leg registrations whose flow already closed under a different
	// key (e.g. the containment server redialled leg 2 from a fresh port)
	// are unreachable and must not pin the map forever.
	for k, f := range r.nonceLegs {
		if f.state == fsClosed || f.state == fsDropped {
			delete(r.nonceLegs, k)
		}
	}
	// Expired fail-close tombstones (map order is fine: deletion only).
	for k, exp := range r.synTombs {
		if now > exp {
			delete(r.synTombs, k)
		}
	}
	r.FlowsActive.Set(int64(r.ActiveFlows()))
}

// sortFlowsByTuple orders flows by their five-tuple so bulk teardown emits
// the same event sequence on every same-seed run despite map iteration.
func sortFlowsByTuple(flows []*Flow) {
	sort.Slice(flows, func(i, j int) bool {
		a, b := flows[i], flows[j]
		if a.initIP != b.initIP {
			return a.initIP < b.initIP
		}
		if a.initPort != b.initPort {
			return a.initPort < b.initPort
		}
		if a.respIP != b.respIP {
			return a.respIP < b.respIP
		}
		if a.respPort != b.respPort {
			return a.respPort < b.respPort
		}
		return a.proto < b.proto
	})
}

// shedLRU evicts the least-recently-active flow to make room for a new one
// when the table is at its bound. The victim's endpoints receive RSTs so
// inmates see clean failure instead of a silent blackhole. Ties break on the
// flow key, keeping eviction order deterministic for a given seed despite
// map iteration. Reports whether a victim was found.
func (r *Router) shedLRU() bool {
	var victim *Flow
	better := func(f *Flow) bool {
		if victim == nil {
			return true
		}
		if f.lastActivity != victim.lastActivity {
			return f.lastActivity < victim.lastActivity
		}
		if f.initIP != victim.initIP {
			return f.initIP < victim.initIP
		}
		if f.initPort != victim.initPort {
			return f.initPort < victim.initPort
		}
		return f.proto < victim.proto
	}
	for _, f := range r.flows {
		if better(f) {
			victim = f
		}
	}
	for _, f := range r.udpFlows {
		if better(f) {
			victim = f
		}
	}
	if victim == nil {
		return false
	}
	if victim.proto == netstack.ProtoTCP {
		switch victim.state {
		case fsAwaitVerdict:
			if victim.haveCSISN {
				victim.rstInitiatorRaw(victim.csISN+1, victim.initNextSeq, netstack.FlagRST|netstack.FlagACK)
			}
			victim.rstCS()
		case fsEstablishing, fsSplice:
			victim.abortResponder()
			victim.rstInitiatorRaw(victim.csISN+1, victim.initNextSeq, netstack.FlagRST|netstack.FlagACK)
		case fsRewriteProxy:
			victim.rstCS()
			victim.rstInitiatorRaw(victim.csISN+1, victim.initNextSeq, netstack.FlagRST|netstack.FlagACK)
		}
	}
	r.FlowsShed.Inc()
	r.sc.Emit(obs.Event{
		Type: obs.EvFlowShed, VLAN: victim.vlan, Proto: victim.proto,
		SrcIP: uint32(victim.initIP), SrcPort: victim.initPort,
		DstIP: uint32(victim.respIP), DstPort: victim.respPort,
		Detail: "flow table full",
	})
	victim.close("shed under pressure")
	return true
}

// allocNonce reserves a nonce port for a flow.
func (r *Router) allocNonce(f *Flow) uint16 {
	for i := 0; i < 20000; i++ {
		port := r.nextNonce
		r.nextNonce++
		if r.nextNonce < 40000 {
			r.nextNonce = 40000
		}
		if _, taken := r.byNonce[port]; !taken {
			r.byNonce[port] = f
			return port
		}
	}
	panic(fmt.Sprintf("gateway %s: nonce port space exhausted", r.cfg.Name))
}
