package gateway

import (
	"testing"
	"time"

	"gq/internal/netstack"
	"gq/internal/sim"
)

func newSweepRig(t *testing.T) (*sim.Simulator, *Router) {
	t.Helper()
	s := sim.New(1)
	g := New(s)
	r := g.AddRouter(RouterConfig{
		Name:   "sweeprig",
		VLANLo: 10, VLANHi: 20,
		ServiceVLANs:    []uint16{2},
		InternalPrefix:  netstack.MustParsePrefix("10.0.0.0/16"),
		RouterIP:        netstack.MustParseAddr("10.0.0.1"),
		ServicePrefix:   netstack.MustParsePrefix("10.3.0.0/16"),
		ServiceRouterIP: netstack.MustParseAddr("10.3.0.254"),
		GlobalPool:      netstack.MustParsePrefix("192.0.2.0/24"),
		GlobalPoolStart: 16,
		ContainmentVLAN: 2,
		ContainmentIP:   netstack.MustParseAddr("10.3.0.1"),
		ContainmentPort: 6666,
		NonceIP:         netstack.MustParseAddr("10.4.0.1"),
	})
	return s, r
}

// A flow stalled in fsEstablishing (its sender stopped, or the dial never
// completed) must be reaped by the periodic sweep, not pinned forever.
func TestSweepExpiresEstablishingFlows(t *testing.T) {
	s, r := newSweepRig(t)
	key := netstack.FlowKey{
		VLAN:  12,
		SrcIP: netstack.MustParseAddr("10.0.0.5"), SrcPort: 1234,
		DstIP: netstack.MustParseAddr("198.51.100.1"), DstPort: 80,
		Proto: netstack.ProtoTCP,
	}
	f := r.newFlow(key, 12, false)
	f.state = fsEstablishing
	if n := r.ActiveFlows(); n != 1 {
		t.Fatalf("ActiveFlows = %d before sweep", n)
	}
	s.RunFor(2 * time.Minute)
	if n := r.ActiveFlows(); n != 0 {
		t.Fatalf("establishing flow leaked: ActiveFlows = %d after 2m", n)
	}
	if !f.rec.Closed {
		t.Fatal("flow record not finalised")
	}
	if f.rec.Annotation != "flow expired" {
		t.Fatalf("annotation = %q", f.rec.Annotation)
	}
}

// An fsEstablishing flow whose inmate port died mid-handshake (the SYN was
// redirected, the containment server answered, and then the initiator went
// silent) must be swept at the establish timeout, with an RST sent toward
// the initiator impersonating the original responder so a revived inmate
// sees clean failure instead of a half-open connection.
func TestSweepEstablishingPortDownMidHandshake(t *testing.T) {
	s, r := newSweepRig(t)
	initIP := netstack.MustParseAddr("10.0.0.9")
	key := netstack.FlowKey{
		VLAN:  13,
		SrcIP: initIP, SrcPort: 2048,
		DstIP: netstack.MustParseAddr("198.51.100.3"), DstPort: 443,
		Proto: netstack.ProtoTCP,
	}
	// The gateway knows the inmate's MAC from NAT learning, so the RST can
	// be addressed without ARP.
	r.inmateMAC[13] = netstack.MAC{2, 0, 0, 0, 0, 9}

	var rsts []*netstack.Packet
	r.AddTap(func(p *netstack.Packet) {
		if p.TCP != nil && p.TCP.Flags&netstack.FlagRST != 0 && p.IP.Dst == initIP {
			rsts = append(rsts, p)
		}
	})

	f := r.newFlow(key, 13, false)
	f.state = fsEstablishing
	f.haveCSISN = true
	f.csISN = 1000
	f.initNextSeq = 2001
	// ...and the inmate's access port goes down: no further packets arrive.

	s.RunFor(2 * time.Minute)
	if n := r.ActiveFlows(); n != 0 {
		t.Fatalf("half-open flow leaked: ActiveFlows = %d", n)
	}
	if !f.rec.Closed || f.rec.Annotation != "flow expired" {
		t.Fatalf("closed=%v annotation=%q", f.rec.Closed, f.rec.Annotation)
	}
	if len(rsts) == 0 {
		t.Fatal("no RST sent toward the initiator on sweep")
	}
	rst := rsts[0]
	if rst.IP.Src != key.DstIP || rst.TCP.SrcPort != key.DstPort || rst.TCP.DstPort != key.SrcPort {
		t.Fatalf("RST does not impersonate the original responder: %v:%d -> %v:%d",
			rst.IP.Src, rst.TCP.SrcPort, rst.IP.Dst, rst.TCP.DstPort)
	}
	if rst.TCP.Seq != f.csISN+1 {
		t.Fatalf("RST seq = %d, want csISN+1 = %d", rst.TCP.Seq, f.csISN+1)
	}
}

// Established (spliced) flows whose endpoints silently vanished must fall
// to the splice-idle sweep rather than pin the table forever.
func TestSweepReapsIdleSplice(t *testing.T) {
	s, r := newSweepRig(t)
	key := netstack.FlowKey{
		VLAN:  14,
		SrcIP: netstack.MustParseAddr("10.0.0.11"), SrcPort: 3333,
		DstIP: netstack.MustParseAddr("198.51.100.4"), DstPort: 80,
		Proto: netstack.ProtoTCP,
	}
	f := r.newFlow(key, 14, false)
	f.state = fsSplice
	f.haveCSISN = true

	s.RunFor(spliceIdleTimeout / 2)
	if n := r.ActiveFlows(); n != 1 {
		t.Fatalf("splice reaped too early: ActiveFlows = %d at half the idle timeout", n)
	}
	s.RunFor(spliceIdleTimeout)
	if n := r.ActiveFlows(); n != 0 {
		t.Fatalf("idle splice leaked: ActiveFlows = %d", n)
	}
	if f.rec.Annotation != "flow expired" {
		t.Fatalf("annotation = %q", f.rec.Annotation)
	}
}

// At the flow-table bound, a new flow sheds the least-recently-active
// entry instead of growing without limit, counting the eviction.
func TestShedLRUAtCap(t *testing.T) {
	s := sim.New(1)
	g := New(s)
	r := g.AddRouter(RouterConfig{
		Name:   "shedrig",
		VLANLo: 10, VLANHi: 20,
		ServiceVLANs:    []uint16{2},
		InternalPrefix:  netstack.MustParsePrefix("10.0.0.0/16"),
		RouterIP:        netstack.MustParseAddr("10.0.0.1"),
		ServicePrefix:   netstack.MustParsePrefix("10.3.0.0/16"),
		ServiceRouterIP: netstack.MustParseAddr("10.3.0.254"),
		GlobalPool:      netstack.MustParsePrefix("192.0.2.0/24"),
		GlobalPoolStart: 16,
		ContainmentVLAN: 2,
		ContainmentIP:   netstack.MustParseAddr("10.3.0.1"),
		ContainmentPort: 6666,
		NonceIP:         netstack.MustParseAddr("10.4.0.1"),
		MaxFlows:        3,
	})

	mkFlow := func(port uint16) *Flow {
		key := netstack.FlowKey{
			VLAN:  15,
			SrcIP: netstack.MustParseAddr("10.0.0.20"), SrcPort: port,
			DstIP: netstack.MustParseAddr("198.51.100.5"), DstPort: 80,
			Proto: netstack.ProtoTCP,
		}
		f := r.newFlow(key, 15, false)
		f.state = fsAwaitVerdict
		return f
	}

	flows := make([]*Flow, 0, 4)
	for i := 0; i < 3; i++ {
		flows = append(flows, mkFlow(uint16(5000+i)))
		s.RunFor(time.Second) // distinct lastActivity per flow
	}
	if n := r.ActiveFlows(); n != 3 {
		t.Fatalf("ActiveFlows = %d at cap", n)
	}

	flows = append(flows, mkFlow(5003)) // over the bound: oldest is shed
	if n := r.ActiveFlows(); n != 3 {
		t.Fatalf("ActiveFlows = %d after shed, want 3 (bounded)", n)
	}
	if got := r.FlowsShed.Value(); got != 1 {
		t.Fatalf("FlowsShed = %d, want 1", got)
	}
	victim, survivor := flows[0], flows[3]
	if victim.state != fsClosed && victim.state != fsDropped {
		t.Fatalf("LRU victim not torn down: state = %v", victim.state)
	}
	if victim.rec.Annotation != "shed under pressure" {
		t.Fatalf("victim annotation = %q", victim.rec.Annotation)
	}
	if survivor.state == fsClosed {
		t.Fatal("newest flow was shed instead of the LRU entry")
	}
}

// leg2Open re-registration (the containment server redialling leg 2 from a
// fresh ephemeral port) must drop the stale nonceLegs entry, and the sweep
// must reap any orphan pointing at a closed flow.
func TestNonceLegOrphansReaped(t *testing.T) {
	s, r := newSweepRig(t)
	key := netstack.FlowKey{
		VLAN:  11,
		SrcIP: netstack.MustParseAddr("10.0.0.7"), SrcPort: 4321,
		DstIP: netstack.MustParseAddr("198.51.100.2"), DstPort: 25,
		Proto: netstack.ProtoTCP,
	}
	f := r.newFlow(key, 11, false)
	f.state = fsRewriteProxy

	csIP := netstack.MustParseAddr("10.3.0.1")
	leg2SYN := func(port uint16) *netstack.Packet {
		return &netstack.Packet{
			Eth: netstack.Ethernet{VLAN: 2, EtherType: netstack.EtherTypeIPv4},
			IP: &netstack.IPv4{TTL: 64, Protocol: netstack.ProtoTCP,
				Src: csIP, Dst: r.cfg.NonceIP},
			TCP: &netstack.TCP{SrcPort: port, DstPort: f.noncePort,
				Seq: 7, Flags: netstack.FlagSYN},
		}
	}
	f.leg2Open(leg2SYN(50001))
	f.leg2Open(leg2SYN(50002)) // redial from a fresh port
	if n := len(r.nonceLegs); n != 1 {
		t.Fatalf("stale leg-2 entry survived redial: %d entries", n)
	}

	// A historical orphan (registered under a key close() will not clean,
	// simulating pre-fix state) must be swept once the flow is closed.
	orphan := flowHalfKey{csIP, 50099, netstack.ProtoTCP}
	r.nonceLegs[orphan] = f
	f.close("done")
	if _, ok := r.nonceLegs[orphan]; !ok {
		t.Fatal("test setup: orphan removed too early")
	}
	s.RunFor(time.Minute)
	if n := len(r.nonceLegs); n != 0 {
		t.Fatalf("orphaned nonce leg leaked: %d entries after sweep", n)
	}
}
