package gateway

import (
	"testing"
	"time"

	"gq/internal/netstack"
	"gq/internal/sim"
)

func newSweepRig(t *testing.T) (*sim.Simulator, *Router) {
	t.Helper()
	s := sim.New(1)
	g := New(s)
	r := g.AddRouter(RouterConfig{
		Name:   "sweeprig",
		VLANLo: 10, VLANHi: 20,
		ServiceVLANs:    []uint16{2},
		InternalPrefix:  netstack.MustParsePrefix("10.0.0.0/16"),
		RouterIP:        netstack.MustParseAddr("10.0.0.1"),
		ServicePrefix:   netstack.MustParsePrefix("10.3.0.0/16"),
		ServiceRouterIP: netstack.MustParseAddr("10.3.0.254"),
		GlobalPool:      netstack.MustParsePrefix("192.0.2.0/24"),
		GlobalPoolStart: 16,
		ContainmentVLAN: 2,
		ContainmentIP:   netstack.MustParseAddr("10.3.0.1"),
		ContainmentPort: 6666,
		NonceIP:         netstack.MustParseAddr("10.4.0.1"),
	})
	return s, r
}

// A flow stalled in fsEstablishing (its sender stopped, or the dial never
// completed) must be reaped by the periodic sweep, not pinned forever.
func TestSweepExpiresEstablishingFlows(t *testing.T) {
	s, r := newSweepRig(t)
	key := netstack.FlowKey{
		VLAN:  12,
		SrcIP: netstack.MustParseAddr("10.0.0.5"), SrcPort: 1234,
		DstIP: netstack.MustParseAddr("198.51.100.1"), DstPort: 80,
		Proto: netstack.ProtoTCP,
	}
	f := r.newFlow(key, 12, false)
	f.state = fsEstablishing
	if n := r.ActiveFlows(); n != 1 {
		t.Fatalf("ActiveFlows = %d before sweep", n)
	}
	s.RunFor(2 * time.Minute)
	if n := r.ActiveFlows(); n != 0 {
		t.Fatalf("establishing flow leaked: ActiveFlows = %d after 2m", n)
	}
	if !f.rec.Closed {
		t.Fatal("flow record not finalised")
	}
	if f.rec.Annotation != "flow expired" {
		t.Fatalf("annotation = %q", f.rec.Annotation)
	}
}

// leg2Open re-registration (the containment server redialling leg 2 from a
// fresh ephemeral port) must drop the stale nonceLegs entry, and the sweep
// must reap any orphan pointing at a closed flow.
func TestNonceLegOrphansReaped(t *testing.T) {
	s, r := newSweepRig(t)
	key := netstack.FlowKey{
		VLAN:  11,
		SrcIP: netstack.MustParseAddr("10.0.0.7"), SrcPort: 4321,
		DstIP: netstack.MustParseAddr("198.51.100.2"), DstPort: 25,
		Proto: netstack.ProtoTCP,
	}
	f := r.newFlow(key, 11, false)
	f.state = fsRewriteProxy

	csIP := netstack.MustParseAddr("10.3.0.1")
	leg2SYN := func(port uint16) *netstack.Packet {
		return &netstack.Packet{
			Eth: netstack.Ethernet{VLAN: 2, EtherType: netstack.EtherTypeIPv4},
			IP: &netstack.IPv4{TTL: 64, Protocol: netstack.ProtoTCP,
				Src: csIP, Dst: r.cfg.NonceIP},
			TCP: &netstack.TCP{SrcPort: port, DstPort: f.noncePort,
				Seq: 7, Flags: netstack.FlagSYN},
		}
	}
	f.leg2Open(leg2SYN(50001))
	f.leg2Open(leg2SYN(50002)) // redial from a fresh port
	if n := len(r.nonceLegs); n != 1 {
		t.Fatalf("stale leg-2 entry survived redial: %d entries", n)
	}

	// A historical orphan (registered under a key close() will not clean,
	// simulating pre-fix state) must be swept once the flow is closed.
	orphan := flowHalfKey{csIP, 50099, netstack.ProtoTCP}
	r.nonceLegs[orphan] = f
	f.close("done")
	if _, ok := r.nonceLegs[orphan]; !ok {
		t.Fatal("test setup: orphan removed too early")
	}
	s.RunFor(time.Minute)
	if n := len(r.nonceLegs); n != 0 {
		t.Fatalf("orphaned nonce leg leaked: %d entries after sweep", n)
	}
}
