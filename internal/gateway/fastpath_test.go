package gateway_test

import (
	"bytes"
	"testing"
	"time"

	"gq/internal/gateway"
	"gq/internal/netsim"
	"gq/internal/netstack"
)

// expectPanic reports whether fn panicked.
func expectPanic(fn func()) (panicked bool) {
	defer func() { panicked = recover() != nil }()
	fn()
	return
}

// Regression for the VLAN-overlap check in AddRouter: the old
// endpoint-containment test missed a new range that strictly contains an
// existing one, silently double-homing every inmate VLAN in the gap.
func TestAddRouterRejectsOverlappingVLANRanges(t *testing.T) {
	tb := newTestbed(t, 41) // existing router owns VLANs 10-30
	overlapping := []struct{ lo, hi uint16 }{
		{5, 40},  // strictly contains 10-30 (the escaped case)
		{12, 20}, // strictly contained
		{10, 30}, // identical
		{25, 35}, // partial, high side
		{5, 10},  // partial, touching low endpoint
		{30, 40}, // partial, touching high endpoint
	}
	for _, c := range overlapping {
		if !expectPanic(func() {
			tb.gw.AddRouter(gateway.RouterConfig{Name: "clash", VLANLo: c.lo, VLANHi: c.hi})
		}) {
			t.Errorf("AddRouter accepted VLAN range %d-%d overlapping 10-30", c.lo, c.hi)
		}
	}
	// A genuinely disjoint range must still be accepted.
	if expectPanic(func() {
		tb.gw.AddRouter(gateway.RouterConfig{
			Name:   "disjoint",
			VLANLo: 31, VLANHi: 39,
			ServiceVLANs:    []uint16{serviceVLAN},
			InternalPrefix:  netstack.MustParsePrefix("10.0.0.0/16"),
			RouterIP:        netstack.MustParseAddr("10.0.0.1"),
			ServicePrefix:   netstack.MustParsePrefix("10.3.0.0/16"),
			ServiceRouterIP: netstack.MustParseAddr("10.3.0.254"),
			GlobalPool:      netstack.MustParsePrefix("192.0.3.0/24"),
			GlobalPoolStart: 16,
			ContainmentVLAN: serviceVLAN,
			ContainmentIP:   csIP,
			ContainmentPort: csPort,
			NonceIP:         nonceIP,
		})
	}) {
		t.Error("AddRouter rejected disjoint VLAN range 31-39")
	}
}

// An inmate broadcast (here: ARP for a non-gateway on-link address) must be
// bridged into the service VLANs byte-identically except for the VLAN tag.
// This locks in the emitTrunk retag fast path against the slow-path
// (re-marshal) reference.
func TestBroadcastFloodBridgingBytes(t *testing.T) {
	tb := newTestbed(t, 42)
	target := netstack.MustParseAddr("10.0.0.99")

	var tapped [][]byte
	tb.inSw.AddTap(func(f []byte) {
		tapped = append(tapped, append([]byte(nil), f...))
	})

	// Dialling an unclaimed on-link address makes the inmate ARP for it;
	// the router does not own it and bridges the broadcast.
	tb.inmate.Dial(target, 80)
	tb.sim.RunFor(2 * time.Second)

	var orig, flooded []byte
	for _, f := range tapped {
		p, err := netstack.ParseFrame(append([]byte(nil), f...))
		if err != nil || p.ARP == nil || p.ARP.Op != netstack.ARPRequest ||
			p.ARP.TargetIP != target {
			continue
		}
		switch p.Eth.VLAN {
		case inmateVLAN:
			if orig == nil {
				orig = f
			}
		case serviceVLAN:
			if flooded == nil {
				flooded = f
			}
		}
	}
	if orig == nil {
		t.Fatal("inmate ARP broadcast never traversed the switch")
	}
	if flooded == nil {
		t.Fatal("broadcast was not bridged into the service VLAN")
	}

	// Reference frame: the original, re-parsed and retagged through the
	// packet layer. Must match the bridged frame byte for byte.
	ref, err := netstack.ParseFrame(append([]byte(nil), orig...))
	if err != nil {
		t.Fatal(err)
	}
	ref.Eth.VLAN = serviceVLAN
	if want := ref.Marshal(); !bytes.Equal(flooded, want) {
		t.Fatalf("bridged frame differs from retagged original:\n got %x\nwant %x", flooded, want)
	}
}

// A pure SYN with a fresh ISN on a known tuple supersedes the stale flow
// (reverted inmates reuse ephemeral ports). Both incarnations' SYNs must
// reach the containment server byte-identical to a slow-path reference
// frame, locking the forwardInitToCS/sendToCS rewrite in place.
func TestFlowSupersedeFreshSYN(t *testing.T) {
	tb := newTestbed(t, 43)

	// Raw frame injector on its own inmate VLAN: lets us control the ISN
	// and replay the exact same five-tuple, which the host stack won't.
	raw := netsim.NewPort(tb.sim, "raw", nil)
	netsim.Connect(tb.inSw.AddAccessPort("raw", 17), raw, 0)
	rawMAC := netstack.MAC{2, 0, 0, 0, 9, 9}
	rawIP := netstack.MustParseAddr("10.0.0.55")

	var toCS [][]byte
	tb.inSw.AddTap(func(f []byte) {
		p, err := netstack.ParseFrame(append([]byte(nil), f...))
		if err == nil && p.TCP != nil && p.IP.Dst == csIP &&
			p.TCP.DstPort == csPort && p.TCP.Flags == netstack.FlagSYN {
			toCS = append(toCS, append([]byte(nil), f...))
		}
	})

	syn := func(isn uint32) []byte {
		p := &netstack.Packet{
			Eth: netstack.Ethernet{Dst: gateway.GatewayMAC, Src: rawMAC,
				EtherType: netstack.EtherTypeIPv4},
			IP: &netstack.IPv4{TTL: netstack.DefaultTTL,
				Protocol: netstack.ProtoTCP, Src: rawIP, Dst: extWebIP},
			TCP: &netstack.TCP{SrcPort: 2000, DstPort: 80, Seq: isn,
				Flags: netstack.FlagSYN, Window: 65535},
		}
		return p.Marshal()
	}

	before := tb.router.FlowsCreated.Value()
	raw.Send(syn(1000))
	tb.sim.RunFor(time.Second)
	raw.Send(syn(5000)) // same tuple, fresh ISN: new incarnation
	tb.sim.RunFor(time.Second)

	if got := tb.router.FlowsCreated.Value() - before; got != 2 {
		t.Fatalf("FlowsCreated = %d, want 2 (supersede must adjudicate anew)", got)
	}
	var mine []*gateway.FlowRecord
	for _, rec := range tb.router.Records() {
		if rec.OrigIP == rawIP {
			mine = append(mine, rec)
		}
	}
	if len(mine) != 2 {
		t.Fatalf("flow records for %v = %d, want 2", rawIP, len(mine))
	}
	if !mine[0].Closed || mine[0].Annotation != "superseded by new incarnation" {
		t.Fatalf("stale flow not superseded: closed=%v annotation=%q",
			mine[0].Closed, mine[0].Annotation)
	}
	if mine[1].Closed {
		t.Fatal("new incarnation was closed prematurely")
	}

	// Byte-identity: each forwarded SYN must equal a freshly marshalled
	// reference packet (slow path) with only dst IP/port rewritten to the
	// containment server.
	if len(toCS) != 2 {
		t.Fatalf("SYNs forwarded to containment server = %d, want 2", len(toCS))
	}
	for i, isn := range []uint32{1000, 5000} {
		got, err := netstack.ParseFrame(append([]byte(nil), toCS[i]...))
		if err != nil {
			t.Fatalf("forwarded SYN %d unparseable: %v", i, err)
		}
		ref := &netstack.Packet{
			Eth: netstack.Ethernet{Dst: got.Eth.Dst, Src: gateway.GatewayMAC,
				VLAN: serviceVLAN, EtherType: netstack.EtherTypeIPv4},
			IP: &netstack.IPv4{TTL: netstack.DefaultTTL,
				Protocol: netstack.ProtoTCP, Src: rawIP, Dst: csIP},
			TCP: &netstack.TCP{SrcPort: 2000, DstPort: csPort, Seq: isn,
				Flags: netstack.FlagSYN, Window: 65535},
		}
		if want := ref.Marshal(); !bytes.Equal(toCS[i], want) {
			t.Fatalf("forwarded SYN %d differs from reference:\n got %x\nwant %x",
				i, toCS[i], want)
		}
	}
}
