package gateway_test

// Edge-case and robustness tests for the gateway's containment machinery:
// splice integrity under varied payload patterns, combined verdicts,
// failure injection, packet loss, and flow-table hygiene.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"gq/internal/containment"
	"gq/internal/host"
	"gq/internal/netstack"
	"gq/internal/shim"
)

// TestSpliceIntegrityVariedSizes pushes pseudo-random payloads of many
// sizes through FORWARD containment in both directions and verifies
// byte-exact delivery — the DESIGN.md splice invariant. Payload sizes
// cross every interesting boundary: shim sizes, MSS, multiple segments.
func TestSpliceIntegrityVariedSizes(t *testing.T) {
	sizes := []int{1, 23, 24, 25, 55, 56, 57, 1399, 1400, 1401, 4096, 50000}
	for _, size := range sizes {
		size := size
		t.Run(fmt.Sprint(size), func(t *testing.T) {
			tb := newTestbed(t, int64(1000+size))
			tb.cs.SetFallback(policyFunc{"AllowAll", func(req *shim.Request) containment.Decision {
				return containment.Decision{Verdict: shim.Forward}
			}})
			out := make([]byte, size)
			for i := range out {
				out[i] = byte(i*7 + size)
			}
			back := make([]byte, size)
			for i := range back {
				back[i] = byte(i*13 + size + 1)
			}

			var serverGot, clientGot []byte
			srv := tb.addExternal(t, "srv", netstack.MustParseAddr("198.51.100.42"))
			srv.Listen(4242, func(c *host.Conn) {
				c.OnData = func(d []byte) {
					serverGot = append(serverGot, d...)
					if len(serverGot) == size {
						c.Write(back)
						c.Close()
					}
				}
			})
			c := tb.inmate.Dial(netstack.MustParseAddr("198.51.100.42"), 4242)
			c.OnConnect = func() { c.Write(out) }
			c.OnData = func(d []byte) { clientGot = append(clientGot, d...) }
			tb.sim.RunFor(2 * time.Minute)

			if !bytes.Equal(serverGot, out) {
				t.Fatalf("size %d: server got %d bytes, first mismatch at %d",
					size, len(serverGot), firstMismatch(serverGot, out))
			}
			if !bytes.Equal(clientGot, back) {
				t.Fatalf("size %d: client got %d bytes back", size, len(clientGot))
			}
		})
	}
}

func firstMismatch(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestEarlyDataBeforeVerdict: the initiator transmits payload immediately
// after the handshake, racing the containment verdict. The buffered bytes
// must be replayed to the responder exactly once.
func TestEarlyDataBeforeVerdict(t *testing.T) {
	tb := newTestbed(t, 21)
	tb.cs.SetFallback(policyFunc{"AllowAll", func(req *shim.Request) containment.Decision {
		return containment.Decision{Verdict: shim.Forward}
	}})
	var got []byte
	srv := tb.addExternal(t, "srv", netstack.MustParseAddr("198.51.100.43"))
	srv.Listen(80, func(c *host.Conn) {
		c.OnData = func(d []byte) { got = append(got, d...) }
	})
	c := tb.inmate.Dial(netstack.MustParseAddr("198.51.100.43"), 80)
	// Write is queued before the connection even establishes.
	c.Write([]byte("EARLY-"))
	c.OnConnect = func() { c.Write([]byte("CONNECTED")) }
	tb.sim.RunFor(time.Minute)
	if string(got) != "EARLY-CONNECTED" {
		t.Fatalf("server got %q", got)
	}
}

// TestRedirectPlusRewrite exercises the combined verdict the paper calls
// out: "it can make sense to redirect a flow to a different destination
// while also rewriting some of its contents."
func TestRedirectPlusRewrite(t *testing.T) {
	tb := newTestbed(t, 22)
	alt := netstack.MustParseAddr("198.51.100.44")
	tb.cs.SetFallback(policyFunc{"RedirRewrite", func(req *shim.Request) containment.Decision {
		return containment.Decision{
			Verdict: shim.Redirect | shim.Rewrite,
			RespIP:  alt, RespPort: 8088,
			Handler:    upperHandler{},
			Annotation: "redirect+rewrite",
		}
	}})
	origSaw := webEcho(mustExternal(t, tb, "orig", "198.51.100.50"), 80, "0")
	var altSaw []string
	altHost := mustExternal(t, tb, "alt", "198.51.100.44")
	altHost.Listen(8088, func(c *host.Conn) {
		c.OnData = func(d []byte) {
			altSaw = append(altSaw, string(d))
			c.Write([]byte("reply-lower"))
		}
	})

	var got []byte
	c := tb.inmate.Dial(netstack.MustParseAddr("198.51.100.50"), 80)
	c.OnConnect = func() { c.Write([]byte("hello")) }
	c.OnData = func(d []byte) { got = append(got, d...) }
	tb.sim.RunFor(time.Minute)

	if len(*origSaw) != 0 {
		t.Fatal("combined verdict leaked to the original destination")
	}
	// Content reached the REDIRECTed endpoint, REWRITTEN on the way.
	if len(altSaw) != 1 || altSaw[0] != "HELLO" {
		t.Fatalf("alternate saw %q", altSaw)
	}
	if string(got) != "REPLY-LOWER" {
		t.Fatalf("inmate got %q", got)
	}
}

// upperHandler upcases both directions.
type upperHandler struct{}

func (upperHandler) OnClientData(s *containment.Session, d []byte) {
	s.WriteServer([]byte(strings.ToUpper(string(d))))
}
func (upperHandler) OnServerData(s *containment.Session, d []byte) {
	s.WriteClient([]byte(strings.ToUpper(string(d))))
}
func (upperHandler) OnClientClose(s *containment.Session) { s.CloseServer() }
func (upperHandler) OnServerClose(s *containment.Session) { s.CloseClient() }

// TestContainmentServerCrash: the CS host dies; pending and future flows
// must fail closed (nothing reaches the Internet) and the flow table must
// not grow without bound.
func TestContainmentServerCrash(t *testing.T) {
	tb := newTestbed(t, 23)
	tb.cs.SetFallback(policyFunc{"AllowAll", func(req *shim.Request) containment.Decision {
		return containment.Decision{Verdict: shim.Forward}
	}})
	extSaw := webEcho(mustExternal(t, tb, "ext", "198.51.100.60"), 80, "0")

	// One healthy flow to prove the path, then kill the CS.
	c1 := tb.inmate.Dial(netstack.MustParseAddr("198.51.100.60"), 80)
	c1.OnConnect = func() { c1.Write([]byte("pre-crash")) }
	tb.sim.RunFor(10 * time.Second)
	if len(*extSaw) != 1 {
		t.Fatalf("healthy path broken: %q", *extSaw)
	}
	c1.Abort() // finish the healthy flow so only crash fallout remains
	tb.sim.RunFor(10 * time.Second)

	tb.cs.Host.Shutdown()
	var errs int
	for i := 0; i < 5; i++ {
		c := tb.inmate.Dial(netstack.MustParseAddr("198.51.100.60"), 80)
		c.Write([]byte("post-crash"))
		c.OnClose = func(err error) {
			if err != nil {
				errs++
			}
		}
	}
	tb.sim.RunFor(5 * time.Minute)

	if len(*extSaw) != 1 {
		t.Fatalf("flows escaped with the CS down: %q", *extSaw)
	}
	if errs != 5 {
		t.Fatalf("inmate connections should all error, got %d of 5", errs)
	}
	if n := tb.router.ActiveFlows(); n != 0 {
		t.Fatalf("flow table leaked %d entries after CS crash", n)
	}
}

// TestFlowTableHygiene opens many short flows and checks the table drains.
func TestFlowTableHygiene(t *testing.T) {
	tb := newTestbed(t, 24)
	tb.cs.SetFallback(policyFunc{"AllowAll", func(req *shim.Request) containment.Decision {
		return containment.Decision{Verdict: shim.Forward}
	}})
	ext := mustExternal(t, tb, "ext", "198.51.100.61")
	ext.Listen(80, func(c *host.Conn) {
		c.OnData = func(d []byte) { c.Write([]byte("ok")); c.Close() }
		c.OnPeerClose = func() { c.Close() }
	})
	const flows = 60
	done := 0
	for i := 0; i < flows; i++ {
		i := i
		tb.sim.Schedule(time.Duration(i)*2*time.Second, func() {
			c := tb.inmate.Dial(netstack.MustParseAddr("198.51.100.61"), 80)
			c.OnConnect = func() { c.Write([]byte("ping")) }
			c.OnData = func(d []byte) { c.Close() }
			c.OnClose = func(err error) { done++ }
		})
	}
	tb.sim.RunFor(10 * time.Minute)
	if done != flows {
		t.Fatalf("completed %d of %d flows", done, flows)
	}
	if n := tb.router.ActiveFlows(); n != 0 {
		t.Fatalf("flow table holds %d entries after all flows closed", n)
	}
	if len(tb.router.Records()) != flows {
		t.Fatalf("records %d", len(tb.router.Records()))
	}
}

// TestSpliceUnderLoss drops 15% of frames on the inmate link; end-to-end
// TCP retransmission must still deliver everything through containment.
func TestSpliceUnderLoss(t *testing.T) {
	tb := newTestbed(t, 25)
	tb.cs.SetFallback(policyFunc{"AllowAll", func(req *shim.Request) containment.Decision {
		return containment.Decision{Verdict: shim.Forward}
	}})
	var got []byte
	ext := mustExternal(t, tb, "ext", "198.51.100.62")
	ext.Listen(80, func(c *host.Conn) {
		c.OnData = func(d []byte) { got = append(got, d...) }
	})
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	c := tb.inmate.Dial(netstack.MustParseAddr("198.51.100.62"), 80)
	c.OnConnect = func() {
		tb.inmate.NIC().Loss = 0.15
		c.Write(payload)
	}
	tb.sim.RunFor(10 * time.Minute)
	tb.inmate.NIC().Loss = 0
	if !bytes.Equal(got, payload) {
		t.Fatalf("under loss: delivered %d of %d bytes", len(got), len(payload))
	}
}

// TestRewriteSessionTeardownBothWays: whichever side closes first, the
// REWRITE proxy must propagate the close and the flow must drain.
func TestRewriteSessionTeardownBothWays(t *testing.T) {
	for _, serverCloses := range []bool{true, false} {
		name := "client-closes"
		if serverCloses {
			name = "server-closes"
		}
		t.Run(name, func(t *testing.T) {
			tb := newTestbed(t, 26)
			tb.cs.SetFallback(policyFunc{"Proxy", func(req *shim.Request) containment.Decision {
				return containment.Decision{Verdict: shim.Rewrite, Handler: upperHandler{}}
			}})
			ext := mustExternal(t, tb, "ext", "198.51.100.63")
			ext.Listen(80, func(c *host.Conn) {
				c.OnData = func(d []byte) {
					c.Write([]byte("resp"))
					if serverCloses {
						c.Close()
					}
				}
				c.OnPeerClose = func() { c.Close() }
			})
			closed := false
			c := tb.inmate.Dial(netstack.MustParseAddr("198.51.100.63"), 80)
			c.OnConnect = func() { c.Write([]byte("req")) }
			c.OnData = func(d []byte) {
				if !serverCloses {
					c.Close()
				}
			}
			c.OnPeerClose = func() { c.Close() }
			c.OnClose = func(err error) { closed = true }
			tb.sim.RunFor(5 * time.Minute)
			if !closed {
				t.Fatal("inmate connection never fully closed")
			}
			if n := tb.router.ActiveFlows(); n != 0 {
				t.Fatalf("%d flow entries leaked", n)
			}
		})
	}
}

// TestInmateRevertMidFlow: an inmate is reset while flows are in flight;
// the gateway must not wedge, and a fresh flow from the rebooted inmate
// must work.
func TestInmateRevertMidFlow(t *testing.T) {
	tb := newTestbed(t, 27)
	tb.cs.SetFallback(policyFunc{"AllowAll", func(req *shim.Request) containment.Decision {
		return containment.Decision{Verdict: shim.Forward}
	}})
	extSaw := webEcho(mustExternal(t, tb, "ext", "198.51.100.64"), 80, "0")
	c := tb.inmate.Dial(netstack.MustParseAddr("198.51.100.64"), 80)
	c.OnConnect = func() { c.Write([]byte("gen0")) }
	tb.sim.RunFor(10 * time.Second)

	// Simulated revert: host reset and fresh static config.
	tb.inmate.Reset()
	tb.inmate.ConfigureStatic(inmateIP, 16, netstack.MustParseAddr("10.0.0.1"))
	c2 := tb.inmate.Dial(netstack.MustParseAddr("198.51.100.64"), 80)
	c2.OnConnect = func() { c2.Write([]byte("gen1")) }
	tb.sim.RunFor(5 * time.Minute)

	joined := strings.Join(*extSaw, ",")
	if !strings.Contains(joined, "gen0") || !strings.Contains(joined, "gen1") {
		t.Fatalf("server saw %q", joined)
	}
}

// TestUDPRewriteImpersonation covers datagram content control: the CS
// answers a UDP flow itself (no server exists).
func TestUDPRewriteImpersonation(t *testing.T) {
	tb := newTestbed(t, 28)
	tb.cs.SetFallback(policyFunc{"UDPImp", func(req *shim.Request) containment.Decision {
		return containment.Decision{Verdict: shim.Rewrite, Handler: udpEchoUpper{}}
	}})
	var got []string
	sock, _ := tb.inmate.ListenUDP(5353, func(src netstack.Addr, sp uint16, d []byte) {
		got = append(got, string(d))
		if src != netstack.MustParseAddr("198.51.100.99") {
			t.Errorf("reply source %v: impersonation broken", src)
		}
	})
	sock.SendTo(netstack.MustParseAddr("198.51.100.99"), 9999, []byte("query"))
	tb.sim.RunFor(time.Minute)
	if len(got) != 1 || got[0] != "QUERY" {
		t.Fatalf("got %q", got)
	}
}

type udpEchoUpper struct{}

func (udpEchoUpper) OnClientData(s *containment.Session, d []byte) {
	s.WriteClient([]byte(strings.ToUpper(string(d))))
}
func (udpEchoUpper) OnServerData(s *containment.Session, d []byte) {}
func (udpEchoUpper) OnClientClose(s *containment.Session)          {}
func (udpEchoUpper) OnServerClose(s *containment.Session)          {}

// TestConcurrentFlowsSameInmate: many simultaneous flows from one inmate
// to distinct destinations must each get independent verdicts and stay
// isolated.
func TestConcurrentFlowsSameInmate(t *testing.T) {
	tb := newTestbed(t, 29)
	tb.cs.SetFallback(policyFunc{"PortSplit", func(req *shim.Request) containment.Decision {
		if req.RespPort%2 == 0 {
			return containment.Decision{Verdict: shim.Forward}
		}
		return containment.Decision{Verdict: shim.Drop}
	}})
	received := map[uint16]string{}
	ext := mustExternal(t, tb, "ext", "198.51.100.70")
	for port := uint16(9000); port < 9010; port++ {
		p := port
		ext.Listen(p, func(c *host.Conn) {
			c.OnData = func(d []byte) { received[p] += string(d) }
		})
	}
	for port := uint16(9000); port < 9010; port++ {
		p := port
		c := tb.inmate.Dial(netstack.MustParseAddr("198.51.100.70"), p)
		c.OnConnect = func() { c.Write([]byte(fmt.Sprintf("to-%d", p))) }
		c.Write([]byte{}) // no-op
	}
	tb.sim.RunFor(2 * time.Minute)
	for port := uint16(9000); port < 9010; port++ {
		want := ""
		if port%2 == 0 {
			want = fmt.Sprintf("to-%d", port)
		}
		if received[port] != want {
			t.Fatalf("port %d: got %q want %q", port, received[port], want)
		}
	}
}

// TestUDPRewriteMultiDatagram: in UDP REWRITE mode every subsequent
// datagram keeps being shim-wrapped to the CS (the paper's "padding the
// datagrams with the respective shims"), so the impersonation continues
// across a whole exchange.
func TestUDPRewriteMultiDatagram(t *testing.T) {
	tb := newTestbed(t, 30)
	tb.cs.SetFallback(policyFunc{"UDPImp", func(req *shim.Request) containment.Decision {
		return containment.Decision{Verdict: shim.Rewrite, Handler: udpEchoUpper{}}
	}})
	var got []string
	sock, _ := tb.inmate.ListenUDP(5353, func(src netstack.Addr, sp uint16, d []byte) {
		got = append(got, string(d))
	})
	dst := netstack.MustParseAddr("198.51.100.99")
	sock.SendTo(dst, 9999, []byte("one"))
	tb.sim.RunFor(5 * time.Second)
	sock.SendTo(dst, 9999, []byte("two"))
	sock.SendTo(dst, 9999, []byte("three"))
	tb.sim.RunFor(time.Minute)
	if len(got) != 3 || got[0] != "ONE" || got[1] != "TWO" || got[2] != "THREE" {
		t.Fatalf("got %q", got)
	}
}
