package gateway

import (
	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/sim"
)

// GRETunnel grafts routable address space provided by a cooperating
// network onto a subfarm (§7.2): traffic for ExtraPool arrives at the peer
// network and is tunnelled to the gateway over GRE; the gateway tunnels
// return traffic sourced from ExtraPool back to the peer, which emits it
// natively.
type GRETunnel struct {
	// LocalAddr is the gateway-side tunnel endpoint (a routable address
	// from the farm's own space).
	LocalAddr netstack.Addr
	// PeerAddr is the cooperating router's endpoint.
	PeerAddr netstack.Addr
	// ExtraPool is the address space the peer contributes.
	ExtraPool netstack.Prefix
	// PoolStart reserves the first host indices.
	PoolStart int
}

// attachTunnels registers tunnel pools with NAT (called from newRouter).
func (r *Router) attachTunnels() {
	for _, t := range r.cfg.GRETunnels {
		r.nat.AddPool(t.ExtraPool, t.PoolStart)
	}
}

// tunnelForSrc finds the tunnel whose pool contains src (nil if none).
func (r *Router) tunnelForSrc(src netstack.Addr) *GRETunnel {
	for i := range r.cfg.GRETunnels {
		if r.cfg.GRETunnels[i].ExtraPool.Contains(src) {
			return &r.cfg.GRETunnels[i]
		}
	}
	return nil
}

// tunnelForEndpoint finds the tunnel terminated at local (nil if none).
func (r *Router) tunnelForEndpoint(local netstack.Addr) *GRETunnel {
	for i := range r.cfg.GRETunnels {
		if r.cfg.GRETunnels[i].LocalAddr == local {
			return &r.cfg.GRETunnels[i]
		}
	}
	return nil
}

// greEncapAndSend wraps an IP packet for its tunnel and transmits the
// outer packet upstream. Runs in the router's domain so tunnel state
// (greUp, the journal scope) stays domain-local.
func (r *Router) greEncapAndSend(t *GRETunnel, p *netstack.Packet) {
	inner := netstack.MarshalIPPacket(p)
	outer := &netstack.Packet{
		Eth: netstack.Ethernet{EtherType: netstack.EtherTypeIPv4},
		IP: &netstack.IPv4{
			TTL: netstack.DefaultTTL, Protocol: netstack.ProtoGRE,
			Src: t.LocalAddr, Dst: t.PeerAddr,
		},
		Payload: netstack.GREEncap(inner),
	}
	r.gw.GRETx.Inc()
	r.noteTunnelUp(t)
	r.emitOutside(outer)
}

// noteTunnelUp journals the first packet through a tunnel endpoint. The
// farm has no tunnel teardown today, so gre.tunnel_down stays reserved.
func (r *Router) noteTunnelUp(t *GRETunnel) {
	if r.greUp[t.LocalAddr] {
		return
	}
	r.greUp[t.LocalAddr] = true
	r.sc.Emit(obs.Event{
		Type:  obs.EvGRETunnelUp,
		SrcIP: uint32(t.LocalAddr), DstIP: uint32(t.PeerAddr),
	})
}

// handleGRE decapsulates a tunnel packet arriving at a local endpoint and
// re-injects the inner packet into the subfarm's inbound path. Runs in
// the router's domain.
func (r *Router) handleGRE(p *netstack.Packet) {
	inner, err := netstack.GREDecap(p.Payload)
	if err != nil {
		return
	}
	ip, err := netstack.ParseIPPacket(inner)
	if err != nil {
		return
	}
	r.gw.GRERx.Inc()
	if t := r.tunnelForEndpoint(p.IP.Dst); t != nil {
		r.noteTunnelUp(t)
	}
	if r.cfg.InfraPool.Bits != 0 && r.cfg.InfraPool.Contains(ip.IP.Dst) {
		r.handleInfraInbound(ip)
		return
	}
	r.handleFromOutside(ip)
}

// GREPeer simulates the cooperating network's router: it owns PeerAddr and
// proxy-ARPs the contributed pool on the outside network, tunnelling
// everything for the pool to the gateway and emitting decapsulated return
// traffic natively.
type GREPeer struct {
	Tunnel GRETunnel

	sim  *sim.Simulator
	port *netsim.Port

	arp     map[netstack.Addr]netstack.MAC
	pending map[netstack.Addr][][]byte
	mac     netstack.MAC

	// TunnelledIn / TunnelledOut count packets each way.
	TunnelledIn, TunnelledOut uint64
}

// NewGREPeer creates the peer router; connect Port() to the outside
// switch.
func NewGREPeer(s *sim.Simulator, t GRETunnel) *GREPeer {
	p := &GREPeer{
		Tunnel: t, sim: s,
		arp:     make(map[netstack.Addr]netstack.MAC),
		pending: make(map[netstack.Addr][][]byte),
		mac:     netstack.MAC{0x02, 0x47, 0x52, 0x45, 0x00, 0x01},
	}
	p.port = netsim.NewPort(s, "grepeer", p.recv)
	return p
}

// Port returns the peer's network attachment.
func (p *GREPeer) Port() *netsim.Port { return p.port }

func (p *GREPeer) recv(frame []byte) {
	pkt, err := netstack.ParseFrame(frame)
	if err != nil {
		return
	}
	if pkt.ARP != nil {
		p.handleARP(pkt)
		return
	}
	if pkt.IP == nil {
		return
	}
	switch {
	case pkt.IP.Dst == p.Tunnel.PeerAddr && pkt.IP.Protocol == netstack.ProtoGRE:
		// From the gateway: decap and emit natively.
		inner, err := netstack.GREDecap(pkt.Payload)
		if err != nil {
			return
		}
		ip, err := netstack.ParseIPPacket(inner)
		if err != nil {
			return
		}
		p.TunnelledOut++
		p.emit(ip)
	case p.Tunnel.ExtraPool.Contains(pkt.IP.Dst):
		// Native traffic for the contributed pool: tunnel to the gateway.
		p.TunnelledIn++
		outer := &netstack.Packet{
			Eth: netstack.Ethernet{Src: p.mac, EtherType: netstack.EtherTypeIPv4},
			IP: &netstack.IPv4{
				TTL: netstack.DefaultTTL, Protocol: netstack.ProtoGRE,
				Src: p.Tunnel.PeerAddr, Dst: p.Tunnel.LocalAddr,
			},
			Payload: netstack.GREEncap(netstack.MarshalIPPacket(pkt)),
		}
		p.send(outer)
	}
}

func (p *GREPeer) handleARP(pkt *netstack.Packet) {
	a := pkt.ARP
	if !a.SenderIP.IsZero() {
		p.arp[a.SenderIP] = a.SenderHW
		if queued := p.pending[a.SenderIP]; len(queued) > 0 {
			delete(p.pending, a.SenderIP)
			for _, f := range queued {
				if netstack.SetEthDst(f, p.arp[a.SenderIP]) {
					p.port.SendOwned(f)
				}
			}
		}
	}
	if a.Op != netstack.ARPRequest {
		return
	}
	// Proxy-ARP the contributed pool plus the peer's own endpoint.
	if a.TargetIP != p.Tunnel.PeerAddr && !p.Tunnel.ExtraPool.Contains(a.TargetIP) {
		return
	}
	reply := &netstack.Packet{
		Eth: netstack.Ethernet{Dst: a.SenderHW, Src: p.mac, EtherType: netstack.EtherTypeARP},
		ARP: &netstack.ARP{
			Op:       netstack.ARPReply,
			SenderHW: p.mac, SenderIP: a.TargetIP,
			TargetHW: a.SenderHW, TargetIP: a.SenderIP,
		},
	}
	p.port.SendOwned(reply.Marshal())
}

// emit transmits an IP packet natively on the outside segment, resolving
// the destination via ARP.
func (p *GREPeer) emit(ip *netstack.Packet) {
	ip.Eth = netstack.Ethernet{Src: p.mac, EtherType: netstack.EtherTypeIPv4}
	p.sendTo(ip, ip.IP.Dst)
}

// send transmits toward an IP destination (used for tunnel upstream too).
func (p *GREPeer) send(pkt *netstack.Packet) { p.sendTo(pkt, pkt.IP.Dst) }

func (p *GREPeer) sendTo(pkt *netstack.Packet, dst netstack.Addr) {
	if mac, ok := p.arp[dst]; ok {
		pkt.Eth.Dst = mac
		p.port.SendOwned(pkt.Marshal())
		return
	}
	p.pending[dst] = append(p.pending[dst], pkt.Marshal())
	req := &netstack.Packet{
		Eth: netstack.Ethernet{Dst: netstack.BroadcastMAC, Src: p.mac, EtherType: netstack.EtherTypeARP},
		ARP: &netstack.ARP{
			Op: netstack.ARPRequest, SenderHW: p.mac,
			SenderIP: p.Tunnel.PeerAddr, TargetIP: dst,
		},
	}
	p.port.SendOwned(req.Marshal())
}
