package gateway

// Fail-closed lockdown: the router's last line of defence when the
// containment plane can no longer adjudicate (DESIGN.md §3k). While
// engaged, every live flow is resolved through the fail-close path —
// initiators reset, containment legs torn down, SYN tombstones laid so
// retransmissions cannot re-admit a flow under its audited ISN — and the
// three flow-creation sites (inmate-originated TCP and UDP, NAT-inbound)
// drop instead of admitting. Heartbeat probes still flow: they are
// crafted below the flow table (sendToVLAN) and echoes demultiplex by
// probe port before flow lookup, so the supervisor can observe a
// containment server recovering inside a locked-down subfarm.

// SetLockdown engages or releases fail-closed lockdown. On engage it
// fail-closes every live flow (in five-tuple order, so bulk teardown is
// deterministic) and returns how many were resolved; flows already
// carrying a Drop verdict are closed in place — no reset needed, the
// verdict already holds. On release it simply reopens admission: flows
// never survive a lockdown, so there is nothing to restore. Idempotent;
// runs on the router's domain goroutine like all flow state.
func (r *Router) SetLockdown(on bool, reason string) int {
	if r.lockdown == on {
		return 0
	}
	r.lockdown = on
	r.lockdownReason = reason
	if !on {
		return 0
	}
	seen := make(map[*Flow]bool)
	var doomed []*Flow
	consider := func(f *Flow) {
		if !seen[f] && f.state != fsClosed {
			seen[f] = true
			doomed = append(doomed, f)
		}
	}
	for _, f := range r.flows {
		consider(f)
	}
	for _, f := range r.udpFlows {
		consider(f)
	}
	for _, f := range r.nonceLegs {
		consider(f)
	}
	sortFlowsByTuple(doomed)
	for _, f := range doomed {
		if f.state == fsDropped {
			f.close("lockdown")
		} else {
			f.failClose(reason)
		}
	}
	return len(doomed)
}

// LockedDown reports whether fail-closed lockdown is engaged.
func (r *Router) LockedDown() bool { return r.lockdown }

// lockdownDrop is the admission gate at every flow-creation site.
func (r *Router) lockdownDrop() bool {
	if !r.lockdown {
		return false
	}
	r.LockdownDrops.Inc()
	return true
}
