// Package gateway implements GQ's central gateway: the custom packet
// forwarding logic that sits between the outside network and the internal
// machinery (§5.1). It comprises a learning VLAN bridge for the restricted
// broadcast domain, per-subfarm packet routers (built from Click elements,
// §6.1) that redirect new flows to containment servers via the shimming
// protocol, NAT, a safety filter, and trace taps.
//
// The gateway operates on raw frames: unlike every other machine in the
// farm it has no host TCP stack, because its job is to rewrite other
// machines' traffic in flight — including injecting and stripping shim
// bytes inside TCP sequence space (Fig. 5).
package gateway

import (
	"fmt"
	"time"

	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/sim"
)

// GatewayMAC is the hardware address the gateway uses on all interfaces.
var GatewayMAC = netstack.MAC{0x02, 0x47, 0x51, 0x00, 0x00, 0x01}

// Gateway is the central forwarding machine. One Gateway serves the whole
// farm; per-subfarm Routers attach to it and each handles a disjoint set of
// VLAN IDs (Fig. 3).
type Gateway struct {
	Sim *sim.Simulator

	trunk   *netsim.Port // tagged uplink into the inmate-network switch
	outside *netsim.Port // untagged upstream interface

	routers []*Router

	// L2 bridging state for the restricted broadcast domain.
	macTable map[netstack.MAC]uint16 // MAC -> VLAN where last seen

	// Outside-interface ARP.
	outARP     map[netstack.Addr]netstack.MAC
	outPending map[netstack.Addr][][]byte

	// upstreamTaps observe all frames crossing the outside interface, in
	// both directions — the system-wide trace recording point (§5.6).
	upstreamTaps []func(frame []byte)

	// scratch is the reusable marshal buffer for flood paths that emit the
	// same packet several times (see emitTrunk). Valid only within a single
	// synchronous call chain; Port.Send copies before the event returns.
	scratch []byte

	// bridgeTaps observe every unicast-bridged frame (post-retag), so a
	// trace can capture exactly the frames Bridged counts.
	bridgeTaps []func(frame []byte)

	// Counters, registered once at construction (see internal/obs).
	TrunkRx, OutsideRx, Bridged *obs.Counter
	// GRETx/GRERx count tunnel packets each way.
	GRETx, GRERx *obs.Counter
}

// New creates a gateway. Wire Trunk() into a switch trunk port and
// Outside() into the upstream network.
func New(s *sim.Simulator) *Gateway {
	g := &Gateway{
		Sim:        s,
		macTable:   make(map[netstack.MAC]uint16),
		outARP:     make(map[netstack.Addr]netstack.MAC),
		outPending: make(map[netstack.Addr][][]byte),
	}
	g.trunk = netsim.NewPort(s, "gw/trunk", g.recvTrunk)
	g.outside = netsim.NewPort(s, "gw/outside", g.recvOutside)
	reg := s.Obs().Reg
	g.TrunkRx = reg.Counter("gw.trunk_rx_frames")
	g.OutsideRx = reg.Counter("gw.outside_rx_frames")
	g.Bridged = reg.Counter("gw.bridged_frames")
	g.GRETx = reg.Counter("gw.gre_tx_pkts")
	g.GRERx = reg.Counter("gw.gre_rx_pkts")
	return g
}

// Trunk returns the inmate-network uplink port.
func (g *Gateway) Trunk() *netsim.Port { return g.trunk }

// Outside returns the upstream port.
func (g *Gateway) Outside() *netsim.Port { return g.outside }

// AddUpstreamTap registers a tap on the outside interface.
func (g *Gateway) AddUpstreamTap(t func(frame []byte)) {
	g.upstreamTaps = append(g.upstreamTaps, t)
}

// AddBridgeTap registers a tap seeing every unicast frame the gateway
// bridges between VLANs of the restricted broadcast domain — exactly the
// frames the gw.bridged_frames counter counts.
func (g *Gateway) AddBridgeTap(t func(frame []byte)) {
	g.bridgeTaps = append(g.bridgeTaps, t)
}

// AddRouter attaches a subfarm router. VLAN ranges must not overlap with
// existing routers.
func (g *Gateway) AddRouter(cfg RouterConfig) *Router {
	for _, r := range g.routers {
		// Two closed intervals [lo1,hi1], [lo2,hi2] overlap iff each starts
		// no later than the other ends. (The earlier endpoint-containment
		// check missed the case where the new range strictly contains an
		// existing one.)
		if cfg.VLANLo <= r.cfg.VLANHi && r.cfg.VLANLo <= cfg.VLANHi {
			panic(fmt.Sprintf("gateway: VLAN range %d-%d overlaps subfarm %s",
				cfg.VLANLo, cfg.VLANHi, r.cfg.Name))
		}
	}
	r := newRouter(g, cfg)
	g.routers = append(g.routers, r)
	return r
}

// Routers returns the attached subfarm routers.
func (g *Gateway) Routers() []*Router { return g.routers }

// routerForVLAN finds the subfarm handling a VLAN (inmate or service).
func (g *Gateway) routerForVLAN(vlan uint16) *Router {
	for _, r := range g.routers {
		if r.ownsVLAN(vlan) {
			return r
		}
	}
	return nil
}

// routerForGlobal finds the subfarm owning a global destination address
// (inmate pool, infrastructure pool, or tunnelled extra pool).
func (g *Gateway) routerForGlobal(dst netstack.Addr) *Router {
	for _, r := range g.routers {
		if r.cfg.GlobalPool.Contains(dst) {
			return r
		}
		if r.cfg.InfraPool.Bits != 0 && r.cfg.InfraPool.Contains(dst) {
			return r
		}
		for _, t := range r.cfg.GRETunnels {
			if t.ExtraPool.Contains(dst) {
				return r
			}
		}
	}
	return nil
}

// recvTrunk handles frames arriving from the inmate network.
func (g *Gateway) recvTrunk(frame []byte) {
	g.TrunkRx.Inc()
	p, err := netstack.ParseFrame(frame)
	if err != nil || p.Eth.VLAN == netstack.NoVLAN {
		return
	}
	// Learn where this MAC lives for broadcast-domain bridging.
	if !p.Eth.Src.IsBroadcast() && !p.Eth.Src.IsZero() {
		g.macTable[p.Eth.Src] = p.Eth.VLAN
	}
	r := g.routerForVLAN(p.Eth.VLAN)
	if r == nil {
		return // VLAN not assigned to any subfarm
	}
	if p.ARP != nil {
		r.handleARP(p)
		return
	}
	// Frames addressed to the gateway itself go to the router's IP logic;
	// anything else is a candidate for intra-farm L2 bridging.
	if p.Eth.Dst == GatewayMAC {
		r.handleIP(p)
		return
	}
	g.bridge(r, p)
}

// bridge forwards a frame between VLANs of the restricted broadcast domain
// (inmate VLANs <-> service VLANs of the same subfarm). Inmate-to-inmate
// unicast requires explicitly enabled crosstalk.
func (g *Gateway) bridge(r *Router, p *netstack.Packet) {
	srcVLAN := p.Eth.VLAN
	if p.Eth.Dst.IsBroadcast() {
		// Flood into the other half of the broadcast domain.
		if r.isServiceVLAN(srcVLAN) {
			for vlan := r.cfg.VLANLo; vlan <= r.cfg.VLANHi; vlan++ {
				g.emitTrunk(p, vlan)
			}
		} else {
			for _, sv := range r.cfg.ServiceVLANs {
				g.emitTrunk(p, sv)
			}
			for _, other := range r.crosstalkPeers(srcVLAN) {
				g.emitTrunk(p, other)
			}
		}
		return
	}
	dstVLAN, known := g.macTable[p.Eth.Dst]
	if !known || dstVLAN == srcVLAN || !r.ownsVLAN(dstVLAN) {
		return
	}
	srcInmate, dstInmate := !r.isServiceVLAN(srcVLAN), !r.isServiceVLAN(dstVLAN)
	if srcInmate && dstInmate && !r.crosstalkAllowed(srcVLAN, dstVLAN) {
		return
	}
	g.Bridged.Inc()
	g.emitTrunkTapped(p, dstVLAN, g.bridgeTaps)
}

// emitTrunk retags a packet and transmits it on the trunk. The packet is
// not consumed: the frame is staged in the gateway's scratch buffer and
// retagged there, so flood loops reuse one buffer instead of cloning and
// re-marshalling per target VLAN.
func (g *Gateway) emitTrunk(p *netstack.Packet, vlan uint16) {
	g.emitTrunkTapped(p, vlan, nil)
}

// emitTrunkTapped is emitTrunk plus an optional tap list observing the
// retagged frame exactly as transmitted.
func (g *Gateway) emitTrunkTapped(p *netstack.Packet, vlan uint16, taps []func(frame []byte)) {
	g.scratch = p.AppendWire(g.scratch[:0])
	if netstack.RetagVLAN(g.scratch, vlan) {
		for _, t := range taps {
			t(g.scratch)
		}
		g.trunk.Send(g.scratch) // Send copies; scratch stays ours
		return
	}
	// Untagged or reshaped frame: fall back to clone-and-marshal.
	q := p.Clone()
	q.Eth.VLAN = vlan
	frame := q.Marshal()
	for _, t := range taps {
		t(frame)
	}
	g.trunk.SendOwned(frame)
}

// sendTrunk transmits a crafted packet (already addressed) on the trunk,
// consuming it: the marshalled frame may alias the packet's buffer.
func (g *Gateway) sendTrunk(p *netstack.Packet) { g.trunk.SendOwned(p.Marshal()) }

// recvOutside handles frames from the upstream network.
func (g *Gateway) recvOutside(frame []byte) {
	g.OutsideRx.Inc()
	for _, t := range g.upstreamTaps {
		t(frame)
	}
	p, err := netstack.ParseFrame(frame)
	if err != nil || p.Eth.VLAN != netstack.NoVLAN {
		return
	}
	if p.ARP != nil {
		g.handleOutsideARP(p)
		return
	}
	if !p.Eth.Dst.IsBroadcast() && p.Eth.Dst != GatewayMAC {
		return
	}
	if p.IP == nil {
		return
	}
	r := g.routerForGlobal(p.IP.Dst)
	if r == nil {
		return
	}
	// Tunnel traffic terminating at one of our GRE endpoints.
	if p.IP.Protocol == netstack.ProtoGRE {
		if t := r.tunnelForEndpoint(p.IP.Dst); t != nil {
			g.handleGRE(r, p)
		}
		return
	}
	if r.cfg.InfraPool.Bits != 0 && r.cfg.InfraPool.Contains(p.IP.Dst) {
		r.handleInfraInbound(p)
		return
	}
	r.handleFromOutside(p)
}

// handleOutsideARP answers requests for any address the farm owns (proxy
// ARP over the global pools) and learns external neighbours.
func (g *Gateway) handleOutsideARP(p *netstack.Packet) {
	a := p.ARP
	if !a.SenderIP.IsZero() {
		g.outARP[a.SenderIP] = a.SenderHW
		g.flushOutside(a.SenderIP)
	}
	if a.Op != netstack.ARPRequest {
		return
	}
	if g.routerForGlobal(a.TargetIP) == nil {
		return
	}
	reply := &netstack.Packet{
		Eth: netstack.Ethernet{Dst: a.SenderHW, Src: GatewayMAC, EtherType: netstack.EtherTypeARP},
		ARP: &netstack.ARP{
			Op:       netstack.ARPReply,
			SenderHW: GatewayMAC, SenderIP: a.TargetIP,
			TargetHW: a.SenderHW, TargetIP: a.SenderIP,
		},
	}
	g.outside.SendOwned(reply.Marshal())
}

// sendOutside transmits an IP packet upstream, resolving the destination
// MAC first. Unresolvable destinations are dropped after the ARP timeout.
// Packets sourced from tunnelled address space are GRE-encapsulated toward
// their contributing peer instead of being emitted natively.
func (g *Gateway) sendOutside(p *netstack.Packet) {
	if p.IP.Protocol != netstack.ProtoGRE {
		for _, r := range g.routers {
			if t := r.tunnelForSrc(p.IP.Src); t != nil {
				g.greEncapAndSend(r, t, p)
				return
			}
		}
	}
	dst := p.IP.Dst
	p.Eth.Src = GatewayMAC
	p.Eth.VLAN = netstack.NoVLAN
	if mac, ok := g.outARP[dst]; ok {
		p.Eth.Dst = mac
		frame := p.Marshal()
		for _, t := range g.upstreamTaps {
			t(frame)
		}
		g.outside.SendOwned(frame)
		return
	}
	g.outPending[dst] = append(g.outPending[dst], p.Marshal())
	if len(g.outPending[dst]) > 1 {
		return // request already in flight
	}
	g.arpOutside(dst, 0)
}

func (g *Gateway) arpOutside(dst netstack.Addr, tries int) {
	// Source the request from the first router's pool base + 1 so external
	// stacks can learn a sane sender. Any farm global works.
	var sender netstack.Addr
	if len(g.routers) > 0 {
		sender = g.routers[0].cfg.GlobalPool.Nth(1)
	}
	req := &netstack.Packet{
		Eth: netstack.Ethernet{Dst: netstack.BroadcastMAC, Src: GatewayMAC, EtherType: netstack.EtherTypeARP},
		ARP: &netstack.ARP{
			Op: netstack.ARPRequest, SenderHW: GatewayMAC,
			SenderIP: sender, TargetIP: dst,
		},
	}
	g.outside.SendOwned(req.Marshal())
	g.Sim.Schedule(time.Second, func() {
		if _, ok := g.outARP[dst]; ok {
			return
		}
		if tries+1 >= 3 {
			delete(g.outPending, dst)
			return
		}
		g.arpOutside(dst, tries+1)
	})
}

func (g *Gateway) flushOutside(addr netstack.Addr) {
	frames := g.outPending[addr]
	if len(frames) == 0 {
		return
	}
	delete(g.outPending, addr)
	mac := g.outARP[addr]
	for _, f := range frames {
		// The queued frame is fully marshalled; only the destination MAC
		// was unknown when it was parked. Patch it in place.
		if !netstack.SetEthDst(f, mac) {
			continue
		}
		for _, t := range g.upstreamTaps {
			t(f)
		}
		g.outside.SendOwned(f)
	}
}
