// Package gateway implements GQ's central gateway: the custom packet
// forwarding logic that sits between the outside network and the internal
// machinery (§5.1). It comprises a learning VLAN bridge for the restricted
// broadcast domain, per-subfarm packet routers (built from Click elements,
// §6.1) that redirect new flows to containment servers via the shimming
// protocol, NAT, a safety filter, and trace taps.
//
// The gateway operates on raw frames: unlike every other machine in the
// farm it has no host TCP stack, because its job is to rewrite other
// machines' traffic in flight — including injecting and stripping shim
// bytes inside TCP sequence space (Fig. 5).
package gateway

import (
	"fmt"
	"time"

	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/sim"
)

// GatewayMAC is the hardware address the gateway uses on all interfaces.
var GatewayMAC = netstack.MAC{0x02, 0x47, 0x51, 0x00, 0x00, 0x01}

// Gateway is the central forwarding machine. One Gateway serves the whole
// farm; per-subfarm Routers attach to it and each handles a disjoint set of
// VLAN IDs (Fig. 3).
//
// In a sharded farm the Gateway core (outside interface, upstream ARP,
// proxy ARP over the global pools) lives in the root simulation domain
// while each Router — including its bridging state and trunk — lives in
// its subfarm's domain; the router<->core uplink is then the
// domain-crossing synchronization edge.
type Gateway struct {
	Sim *sim.Simulator

	trunk   *netsim.Port // tagged uplink into the inmate-network switch
	outside *netsim.Port // untagged upstream interface

	routers []*Router

	// Outside-interface ARP.
	outARP     map[netstack.Addr]netstack.MAC
	outPending map[netstack.Addr][][]byte

	// upstreamTaps observe all frames crossing the outside interface, in
	// both directions — the system-wide trace recording point (§5.6).
	upstreamTaps []func(frame []byte)

	// bridgeTaps observe every unicast-bridged frame (post-retag), so a
	// trace can capture exactly the frames Bridged counts. Registered at
	// build time, read-only during a run (routers on other domains read
	// the slice).
	bridgeTaps []func(frame []byte)

	// Counters, registered once at construction (see internal/obs).
	TrunkRx, OutsideRx, Bridged *obs.Counter
	// GRETx/GRERx count tunnel packets each way.
	GRETx, GRERx *obs.Counter
}

// New creates a gateway. Wire Trunk() into a switch trunk port and
// Outside() into the upstream network.
func New(s *sim.Simulator) *Gateway {
	g := &Gateway{
		Sim:        s,
		outARP:     make(map[netstack.Addr]netstack.MAC),
		outPending: make(map[netstack.Addr][][]byte),
	}
	g.trunk = netsim.NewPort(s, "gw/trunk", g.recvTrunk)
	g.outside = netsim.NewPort(s, "gw/outside", g.recvOutside)
	reg := s.Obs().Reg
	g.TrunkRx = reg.Counter("gw.trunk_rx_frames")
	g.OutsideRx = reg.Counter("gw.outside_rx_frames")
	g.Bridged = reg.Counter("gw.bridged_frames")
	g.GRETx = reg.Counter("gw.gre_tx_pkts")
	g.GRERx = reg.Counter("gw.gre_rx_pkts")
	return g
}

// Trunk returns the inmate-network uplink port.
func (g *Gateway) Trunk() *netsim.Port { return g.trunk }

// Outside returns the upstream port.
func (g *Gateway) Outside() *netsim.Port { return g.outside }

// AddUpstreamTap registers a tap on the outside interface.
func (g *Gateway) AddUpstreamTap(t func(frame []byte)) {
	g.upstreamTaps = append(g.upstreamTaps, t)
}

// AddBridgeTap registers a tap seeing every unicast frame the gateway
// bridges between VLANs of the restricted broadcast domain — exactly the
// frames the gw.bridged_frames counter counts.
func (g *Gateway) AddBridgeTap(t func(frame []byte)) {
	g.bridgeTaps = append(g.bridgeTaps, t)
}

// AddRouter attaches a subfarm router running in the gateway's own
// simulation domain. VLAN ranges must not overlap with existing routers.
func (g *Gateway) AddRouter(cfg RouterConfig) *Router {
	return g.AddRouterIn(g.Sim, cfg)
}

// AddRouterIn attaches a subfarm router whose datapath runs in simulation
// domain s. When s differs from the gateway's own domain the router gets
// its own trunk port (wire it to the subfarm's switch) and a private
// uplink to the gateway core; the uplink latency is the coordinator's
// lookahead window. VLAN ranges must not overlap with existing routers.
func (g *Gateway) AddRouterIn(s *sim.Simulator, cfg RouterConfig) *Router {
	if !g.Sim.SameWorld(s) {
		panic("gateway: router simulator unrelated to the gateway's")
	}
	for _, r := range g.routers {
		// Two closed intervals [lo1,hi1], [lo2,hi2] overlap iff each starts
		// no later than the other ends. (The earlier endpoint-containment
		// check missed the case where the new range strictly contains an
		// existing one.)
		if cfg.VLANLo <= r.cfg.VLANHi && r.cfg.VLANLo <= cfg.VLANHi {
			panic(fmt.Sprintf("gateway: VLAN range %d-%d overlaps subfarm %s",
				cfg.VLANLo, cfg.VLANHi, r.cfg.Name))
		}
	}
	r := newRouter(g, s, cfg)
	g.routers = append(g.routers, r)
	return r
}

// Routers returns the attached subfarm routers.
func (g *Gateway) Routers() []*Router { return g.routers }

// routerForVLAN finds the subfarm handling a VLAN (inmate or service).
func (g *Gateway) routerForVLAN(vlan uint16) *Router {
	for _, r := range g.routers {
		if r.ownsVLAN(vlan) {
			return r
		}
	}
	return nil
}

// routerForGlobal finds the subfarm owning a global destination address
// (inmate pool, infrastructure pool, or tunnelled extra pool).
func (g *Gateway) routerForGlobal(dst netstack.Addr) *Router {
	for _, r := range g.routers {
		if r.cfg.GlobalPool.Contains(dst) {
			return r
		}
		if r.cfg.InfraPool.Bits != 0 && r.cfg.InfraPool.Contains(dst) {
			return r
		}
		for _, t := range r.cfg.GRETunnels {
			if t.ExtraPool.Contains(dst) {
				return r
			}
		}
	}
	return nil
}

// recvTrunk handles frames arriving from the inmate network on the
// gateway's shared trunk (single-domain topology; sharded routers own a
// private trunk and receive via Router.recvTrunkFrame).
func (g *Gateway) recvTrunk(frame []byte) {
	g.TrunkRx.Inc()
	p, err := netstack.ParseFrame(frame)
	if err != nil || p.Eth.VLAN == netstack.NoVLAN {
		return
	}
	r := g.routerForVLAN(p.Eth.VLAN)
	if r == nil {
		return // VLAN not assigned to any subfarm
	}
	r.receiveTrunk(p)
}

// recvOutside handles frames from the upstream network.
func (g *Gateway) recvOutside(frame []byte) {
	g.OutsideRx.Inc()
	for _, t := range g.upstreamTaps {
		t(frame)
	}
	p, err := netstack.ParseFrame(frame)
	if err != nil || p.Eth.VLAN != netstack.NoVLAN {
		return
	}
	if p.ARP != nil {
		g.handleOutsideARP(p)
		return
	}
	if !p.Eth.Dst.IsBroadcast() && p.Eth.Dst != GatewayMAC {
		return
	}
	if p.IP == nil {
		return
	}
	r := g.routerForGlobal(p.IP.Dst)
	if r == nil {
		return
	}
	if r.uplinkCore != nil {
		// Sharded topology: hand the raw frame across the domain boundary
		// over the router's uplink. The buffer is ours to relinquish (the
		// receiving port owns it) and the router re-parses in its own
		// domain — zero copies, one extra parse.
		r.uplinkCore.SendOwned(frame)
		return
	}
	r.dispatchFromOutside(p)
}

// handleOutsideARP answers requests for any address the farm owns (proxy
// ARP over the global pools) and learns external neighbours.
func (g *Gateway) handleOutsideARP(p *netstack.Packet) {
	a := p.ARP
	if !a.SenderIP.IsZero() {
		g.outARP[a.SenderIP] = a.SenderHW
		g.flushOutside(a.SenderIP)
	}
	if a.Op != netstack.ARPRequest {
		return
	}
	if g.routerForGlobal(a.TargetIP) == nil {
		return
	}
	reply := &netstack.Packet{
		Eth: netstack.Ethernet{Dst: a.SenderHW, Src: GatewayMAC, EtherType: netstack.EtherTypeARP},
		ARP: &netstack.ARP{
			Op:       netstack.ARPReply,
			SenderHW: GatewayMAC, SenderIP: a.TargetIP,
			TargetHW: a.SenderHW, TargetIP: a.SenderIP,
		},
	}
	g.outside.SendOwned(reply.Marshal())
}

// emitOutside transmits an IP packet upstream, resolving the destination
// MAC first. Unresolvable destinations are dropped after the ARP timeout.
// GRE encapsulation for tunnelled source space happens router-side (see
// Router.sendOutside) so tunnel state stays in the router's domain; by the
// time a packet reaches here it is ready for the wire.
func (g *Gateway) emitOutside(p *netstack.Packet) {
	dst := p.IP.Dst
	p.Eth.Src = GatewayMAC
	p.Eth.VLAN = netstack.NoVLAN
	if mac, ok := g.outARP[dst]; ok {
		p.Eth.Dst = mac
		frame := p.Marshal()
		for _, t := range g.upstreamTaps {
			t(frame)
		}
		g.outside.SendOwned(frame)
		return
	}
	g.outPending[dst] = append(g.outPending[dst], p.Marshal())
	if len(g.outPending[dst]) > 1 {
		return // request already in flight
	}
	g.arpOutside(dst, 0)
}

func (g *Gateway) arpOutside(dst netstack.Addr, tries int) {
	// Source the request from the first router's pool base + 1 so external
	// stacks can learn a sane sender. Any farm global works.
	var sender netstack.Addr
	if len(g.routers) > 0 {
		sender = g.routers[0].cfg.GlobalPool.Nth(1)
	}
	req := &netstack.Packet{
		Eth: netstack.Ethernet{Dst: netstack.BroadcastMAC, Src: GatewayMAC, EtherType: netstack.EtherTypeARP},
		ARP: &netstack.ARP{
			Op: netstack.ARPRequest, SenderHW: GatewayMAC,
			SenderIP: sender, TargetIP: dst,
		},
	}
	g.outside.SendOwned(req.Marshal())
	g.Sim.Schedule(time.Second, func() {
		if _, ok := g.outARP[dst]; ok {
			return
		}
		if tries+1 >= 3 {
			delete(g.outPending, dst)
			return
		}
		g.arpOutside(dst, tries+1)
	})
}

func (g *Gateway) flushOutside(addr netstack.Addr) {
	frames := g.outPending[addr]
	if len(frames) == 0 {
		return
	}
	delete(g.outPending, addr)
	mac := g.outARP[addr]
	for _, f := range frames {
		// The queued frame is fully marshalled; only the destination MAC
		// was unknown when it was parked. Patch it in place.
		if !netstack.SetEthDst(f, mac) {
			continue
		}
		for _, t := range g.upstreamTaps {
			t(f)
		}
		g.outside.SendOwned(f)
	}
}
