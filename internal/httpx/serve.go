package httpx

import (
	"gq/internal/host"
	"gq/internal/netstack"
)

// Handler produces a response for a request. conn identifies the client.
type Handler func(req *Request, from netstack.Addr) *Response

// Serve binds an HTTP server to a TCP port on h. Each connection handles
// any number of sequential requests (keep-alive); the handler's response is
// written back verbatim.
func Serve(h *host.Host, port uint16, handler Handler) error {
	return h.Listen(port, func(c *host.Conn) {
		p := &Parser{}
		p.OnRequest = func(req *Request) {
			from, _ := c.RemoteAddr()
			resp := handler(req, from)
			if resp == nil {
				c.Abort()
				return
			}
			c.Write(resp.Marshal())
		}
		p.OnError = func(error) { c.Abort() }
		c.OnData = func(data []byte) { p.Feed(data) }
		c.OnPeerClose = func() { c.Close() }
	})
}

// Result delivers the outcome of a client request: resp is nil on
// connection failure.
type Result func(resp *Response, err error)

// Do opens a connection from h to addr:port, sends req, and invokes done
// with the first response, then closes.
func Do(h *host.Host, addr netstack.Addr, port uint16, req *Request, done Result) {
	c := h.Dial(addr, port)
	p := &Parser{}
	finished := false
	finish := func(resp *Response, err error) {
		if finished {
			return
		}
		finished = true
		done(resp, err)
	}
	p.OnResponse = func(resp *Response) {
		finish(resp, nil)
		c.Close()
	}
	c.OnConnect = func() { c.Write(req.Marshal()) }
	c.OnData = func(data []byte) { p.Feed(data) }
	c.OnClose = func(err error) {
		if err == nil && !finished {
			err = errIncomplete
		}
		finish(nil, err)
	}
}

type incompleteError struct{}

func (incompleteError) Error() string { return "httpx: connection closed before response" }

var errIncomplete = incompleteError{}
