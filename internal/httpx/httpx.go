// Package httpx is a minimal HTTP/1.1 engine over the simulated socket API.
// Malware C&C in the paper's era was predominantly HTTP ("in practice the
// majority of specimens we encounter still possesses readily distinguishable
// C&C protocols"), and GQ's containment policies match on method, path, and
// body — so requests and responses here are fully materialised messages.
// Only Content-Length framing is supported; both ends are ours.
package httpx

import (
	"fmt"
	"strconv"
	"strings"
)

// Request is an HTTP request.
type Request struct {
	Method  string
	Path    string
	Proto   string
	Headers map[string]string // canonicalised: lower-case keys
	Body    []byte
}

// Response is an HTTP response.
type Response struct {
	Status  int
	Reason  string
	Headers map[string]string
	Body    []byte
}

// NewRequest constructs a request with a Host header; Content-Length is set
// when a body is present.
func NewRequest(method, path, hostHdr string, body []byte) *Request {
	r := &Request{
		Method: method, Path: path, Proto: "HTTP/1.1",
		Headers: map[string]string{"host": hostHdr},
		Body:    body,
	}
	if len(body) > 0 {
		r.Headers["content-length"] = strconv.Itoa(len(body))
	}
	return r
}

// NewResponse constructs a response with standard reason phrases.
func NewResponse(status int, body []byte) *Response {
	r := &Response{Status: status, Reason: reasonPhrase(status), Headers: map[string]string{}, Body: body}
	r.Headers["content-length"] = strconv.Itoa(len(body))
	return r
}

func reasonPhrase(status int) string {
	switch status {
	case 200:
		return "OK"
	case 204:
		return "No Content"
	case 302:
		return "Found"
	case 400:
		return "Bad Request"
	case 403:
		return "Forbidden"
	case 404:
		return "NOT FOUND"
	case 500:
		return "Internal Server Error"
	default:
		return "Unknown"
	}
}

// Marshal encodes the request.
func (r *Request) Marshal() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s\r\n", r.Method, r.Path, r.Proto)
	writeHeaders(&b, r.Headers)
	b.WriteString("\r\n")
	return append([]byte(b.String()), r.Body...)
}

// Marshal encodes the response.
func (r *Response) Marshal() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", r.Status, r.Reason)
	writeHeaders(&b, r.Headers)
	b.WriteString("\r\n")
	return append([]byte(b.String()), r.Body...)
}

func writeHeaders(b *strings.Builder, h map[string]string) {
	// Deterministic order: sorted keys. Few headers, so insertion sort via
	// simple scan is fine.
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		fmt.Fprintf(b, "%s: %s\r\n", canonical(k), h[k])
	}
}

func canonical(k string) string {
	parts := strings.Split(k, "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + p[1:]
	}
	return strings.Join(parts, "-")
}

// Parser incrementally consumes a byte stream and emits complete messages.
// Set OnRequest or OnResponse depending on direction.
type Parser struct {
	OnRequest  func(*Request)
	OnResponse func(*Response)
	// OnError fires when the stream is unparseable; the parser stops.
	OnError func(error)

	buf    []byte
	broken bool
}

// Feed appends stream bytes and emits any complete messages.
func (p *Parser) Feed(data []byte) {
	if p.broken {
		return
	}
	p.buf = append(p.buf, data...)
	for {
		if !p.tryParse() {
			return
		}
	}
}

func (p *Parser) fail(err error) bool {
	p.broken = true
	if p.OnError != nil {
		p.OnError(err)
	}
	return false
}

func (p *Parser) tryParse() bool {
	headEnd := strings.Index(string(p.buf), "\r\n\r\n")
	if headEnd < 0 {
		if len(p.buf) > 64<<10 {
			return p.fail(fmt.Errorf("httpx: header section too large"))
		}
		return false
	}
	head := string(p.buf[:headEnd])
	lines := strings.Split(head, "\r\n")
	headers := make(map[string]string)
	for _, line := range lines[1:] {
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return p.fail(fmt.Errorf("httpx: malformed header line %q", line))
		}
		headers[strings.ToLower(strings.TrimSpace(line[:colon]))] = strings.TrimSpace(line[colon+1:])
	}
	bodyLen := 0
	if cl, ok := headers["content-length"]; ok {
		n, err := strconv.Atoi(cl)
		if err != nil || n < 0 {
			return p.fail(fmt.Errorf("httpx: bad Content-Length %q", cl))
		}
		bodyLen = n
	}
	total := headEnd + 4 + bodyLen
	if len(p.buf) < total {
		return false
	}
	body := append([]byte(nil), p.buf[headEnd+4:total]...)
	p.buf = p.buf[total:]

	first := strings.Fields(lines[0])
	if len(first) < 3 {
		return p.fail(fmt.Errorf("httpx: malformed start line %q", lines[0]))
	}
	if strings.HasPrefix(first[0], "HTTP/") {
		status, err := strconv.Atoi(first[1])
		if err != nil {
			return p.fail(fmt.Errorf("httpx: bad status %q", first[1]))
		}
		resp := &Response{
			Status: status, Reason: strings.Join(first[2:], " "),
			Headers: headers, Body: body,
		}
		if p.OnResponse != nil {
			p.OnResponse(resp)
		}
	} else {
		req := &Request{
			Method: first[0], Path: first[1], Proto: first[2],
			Headers: headers, Body: body,
		}
		if p.OnRequest != nil {
			p.OnRequest(req)
		}
	}
	return true
}
