package httpx

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"gq/internal/host"
	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/sim"
)

func TestRequestMarshalParse(t *testing.T) {
	req := NewRequest("GET", "/bot.exe", "192.150.187.12", nil)
	var got *Request
	p := &Parser{OnRequest: func(r *Request) { got = r }}
	p.Feed(req.Marshal())
	if got == nil {
		t.Fatal("no request parsed")
	}
	if got.Method != "GET" || got.Path != "/bot.exe" || got.Headers["host"] != "192.150.187.12" {
		t.Fatalf("parsed %+v", got)
	}
}

func TestResponseMarshalParse(t *testing.T) {
	resp := NewResponse(404, []byte("gone"))
	var got *Response
	p := &Parser{OnResponse: func(r *Response) { got = r }}
	p.Feed(resp.Marshal())
	if got == nil || got.Status != 404 || got.Reason != "NOT FOUND" || string(got.Body) != "gone" {
		t.Fatalf("parsed %+v", got)
	}
}

func TestParserIncrementalFeeding(t *testing.T) {
	req := NewRequest("POST", "/c2", "cc.example.com", []byte("report=1"))
	raw := req.Marshal()
	var got *Request
	p := &Parser{OnRequest: func(r *Request) { got = r }}
	for _, b := range raw {
		p.Feed([]byte{b})
	}
	if got == nil || string(got.Body) != "report=1" {
		t.Fatalf("incremental parse %+v", got)
	}
}

func TestParserPipelined(t *testing.T) {
	var paths []string
	p := &Parser{OnRequest: func(r *Request) { paths = append(paths, r.Path) }}
	raw := append(NewRequest("GET", "/a", "h", nil).Marshal(), NewRequest("GET", "/b", "h", nil).Marshal()...)
	p.Feed(raw)
	if len(paths) != 2 || paths[0] != "/a" || paths[1] != "/b" {
		t.Fatalf("pipelined %v", paths)
	}
}

func TestParserMalformed(t *testing.T) {
	var gotErr error
	p := &Parser{OnError: func(err error) { gotErr = err }}
	p.Feed([]byte("NOT A HEADER LINE\r\nmissing colon\r\n\r\n"))
	if gotErr == nil {
		t.Fatal("malformed input accepted")
	}
	// Parser must stay broken.
	var got *Request
	p.OnRequest = func(r *Request) { got = r }
	p.Feed(NewRequest("GET", "/", "h", nil).Marshal())
	if got != nil {
		t.Fatal("broken parser resumed")
	}
}

func TestParserBadContentLength(t *testing.T) {
	var gotErr error
	p := &Parser{OnError: func(err error) { gotErr = err }}
	p.Feed([]byte("GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"))
	if gotErr == nil {
		t.Fatal("bad content-length accepted")
	}
}

func TestPropertyParserNoPanic(t *testing.T) {
	f := func(chunks [][]byte) bool {
		p := &Parser{}
		for _, c := range chunks {
			p.Feed(c)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRoundTripBody(t *testing.T) {
	f := func(body []byte) bool {
		var got *Response
		p := &Parser{OnResponse: func(r *Response) { got = r }}
		p.Feed(NewResponse(200, body).Marshal())
		return got != nil && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func webPair(t *testing.T) (*sim.Simulator, *host.Host, *host.Host) {
	t.Helper()
	s := sim.New(1)
	sw := netsim.NewSwitch(s, "sw")
	a := host.New(s, "client", netstack.MAC{2, 0, 0, 0, 0, 1})
	b := host.New(s, "server", netstack.MAC{2, 0, 0, 0, 0, 2})
	netsim.Connect(sw.AddAccessPort("a", 10), a.NIC(), 0)
	netsim.Connect(sw.AddAccessPort("b", 10), b.NIC(), 0)
	a.ConfigureStatic(netstack.MustParseAddr("10.0.0.1"), 24, 0)
	b.ConfigureStatic(netstack.MustParseAddr("10.0.0.2"), 24, 0)
	return s, a, b
}

func TestServeAndDo(t *testing.T) {
	s, client, server := webPair(t)
	err := Serve(server, 80, func(req *Request, from netstack.Addr) *Response {
		if req.Path == "/bot.exe" {
			return NewResponse(200, []byte("MZbinary"))
		}
		return NewResponse(404, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	var got *Response
	Do(client, server.Addr(), 80, NewRequest("GET", "/bot.exe", "server", nil),
		func(resp *Response, err error) { got = resp })
	s.RunFor(time.Minute)
	if got == nil || got.Status != 200 || string(got.Body) != "MZbinary" {
		t.Fatalf("got %+v", got)
	}
}

func TestDoConnectionRefused(t *testing.T) {
	s, client, server := webPair(t)
	var gotErr error
	called := 0
	Do(client, server.Addr(), 81, NewRequest("GET", "/", "server", nil),
		func(resp *Response, err error) { called++; gotErr = err })
	s.RunFor(time.Minute)
	if called != 1 || gotErr == nil {
		t.Fatalf("called=%d err=%v", called, gotErr)
	}
}

func TestServeKeepAlive(t *testing.T) {
	s, client, server := webPair(t)
	hits := 0
	Serve(server, 80, func(req *Request, from netstack.Addr) *Response {
		hits++
		return NewResponse(200, []byte(req.Path))
	})
	// Raw connection sending two pipelined requests.
	c := client.Dial(server.Addr(), 80)
	var bodies []string
	p := &Parser{OnResponse: func(r *Response) { bodies = append(bodies, string(r.Body)) }}
	c.OnConnect = func() {
		c.Write(NewRequest("GET", "/one", "h", nil).Marshal())
		c.Write(NewRequest("GET", "/two", "h", nil).Marshal())
	}
	c.OnData = func(d []byte) { p.Feed(d) }
	s.RunFor(time.Minute)
	if hits != 2 || len(bodies) != 2 || bodies[0] != "/one" || bodies[1] != "/two" {
		t.Fatalf("hits=%d bodies=%v", hits, bodies)
	}
}
