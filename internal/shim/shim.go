// Package shim implements GQ's shimming protocol (Fig. 4), the coupling
// between the gateway's packet router and the containment server. It is
// conceptually similar to SOCKS: upon redirecting a new flow to the
// containment server, the gateway injects a containment request shim with
// meta-information into the flow; the containment server conveys its
// verdict back in a containment response shim, which the gateway strips
// before relaying content onward.
//
// For TCP the shims travel as extra bytes injected into the sequence space
// (requiring the gateway to bump and unbump sequence and acknowledgement
// numbers); for UDP they pad the datagrams.
package shim

import (
	"encoding/binary"
	"fmt"
	"strings"

	"gq/internal/netstack"
)

// Magic identifies shim messages ("GQSM").
const Magic uint32 = 0x4751534d

// Version is the shim protocol version.
const Version uint8 = 1

// Message types.
const (
	TypeRequest  uint8 = 1
	TypeResponse uint8 = 2
	// TypeHeartbeat is a supervisor liveness probe: the gateway sends one
	// over the shim channel and a live containment server echoes it back
	// verbatim. Heartbeats carry no flow information, so flow accounting
	// (ShimAnalyzer, AuditTrace) must never count them — their 16-byte
	// length sits below RequestLen on purpose.
	TypeHeartbeat uint8 = 3
)

// Wire sizes.
const (
	PreambleLen = 8
	// HeartbeatLen is the fixed size of a heartbeat probe (preamble plus a
	// 64-bit sequence number).
	HeartbeatLen = 16
	// RequestLen is the fixed size of a containment request shim.
	RequestLen = 24
	// ResponseMinLen is the minimum size of a containment response shim
	// (annotation may extend it).
	ResponseMinLen = 56
	// PolicyNameLen is the fixed-size policy name field.
	PolicyNameLen = 32
)

// Verdict is the containment decision, expressed as a numeric opcode.
// Verdicts combine when feasible (e.g. Redirect|Rewrite sends a flow to a
// different destination while also rewriting its contents).
type Verdict uint32

// Containment verdicts (Fig. 2).
const (
	Forward Verdict = 1 << iota
	Limit
	Drop
	Redirect
	Reflect
	Rewrite
)

// String renders e.g. "REDIRECT|REWRITE".
func (v Verdict) String() string {
	if v == 0 {
		return "NONE"
	}
	names := []struct {
		bit  Verdict
		name string
	}{
		{Forward, "FORWARD"}, {Limit, "LIMIT"}, {Drop, "DROP"},
		{Redirect, "REDIRECT"}, {Reflect, "REFLECT"}, {Rewrite, "REWRITE"},
	}
	var parts []string
	for _, n := range names {
		if v&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	if len(parts) == 0 {
		return fmt.Sprintf("Verdict(%#x)", uint32(v))
	}
	return strings.Join(parts, "|")
}

// Has reports whether v includes bit.
func (v Verdict) Has(bit Verdict) bool { return v&bit != 0 }

// Request is the containment request shim: the original flow's endpoint
// four-tuple, the VLAN ID of the sending/receiving inmate, and a nonce port
// on which the gateway will expect a possible subsequent outbound
// connection from the containment server (for continuous rewriting).
type Request struct {
	OrigIP    netstack.Addr
	RespIP    netstack.Addr
	OrigPort  uint16
	RespPort  uint16
	VLAN      uint16
	NoncePort uint16
}

// Response is the containment response shim: the resulting endpoint
// four-tuple, the verdict, the name tag of the containment policy, and an
// optional annotation clarifying the decision context.
type Response struct {
	OrigIP     netstack.Addr
	RespIP     netstack.Addr
	OrigPort   uint16
	RespPort   uint16
	Verdict    Verdict
	PolicyName string // truncated/padded to 32 bytes on the wire
	Annotation string
}

func putPreamble(b []byte, typ uint8, length int) []byte {
	b = binary.BigEndian.AppendUint32(b, Magic)
	b = binary.BigEndian.AppendUint16(b, uint16(length))
	return append(b, typ, Version)
}

// parsePreamble validates and returns (length, type).
func parsePreamble(b []byte) (int, uint8, error) {
	if len(b) < PreambleLen {
		return 0, 0, fmt.Errorf("shim: preamble truncated (%d bytes)", len(b))
	}
	if binary.BigEndian.Uint32(b[0:4]) != Magic {
		return 0, 0, fmt.Errorf("shim: bad magic %#x", binary.BigEndian.Uint32(b[0:4]))
	}
	length := int(binary.BigEndian.Uint16(b[4:6]))
	typ := b[6]
	if b[7] != Version {
		return 0, 0, fmt.Errorf("shim: unsupported version %d", b[7])
	}
	return length, typ, nil
}

// Marshal encodes the 24-byte request shim.
func (r *Request) Marshal() []byte {
	b := putPreamble(make([]byte, 0, RequestLen), TypeRequest, RequestLen)
	b = binary.BigEndian.AppendUint32(b, uint32(r.OrigIP))
	b = binary.BigEndian.AppendUint32(b, uint32(r.RespIP))
	b = binary.BigEndian.AppendUint16(b, r.OrigPort)
	b = binary.BigEndian.AppendUint16(b, r.RespPort)
	b = binary.BigEndian.AppendUint16(b, r.VLAN)
	b = binary.BigEndian.AppendUint16(b, r.NoncePort)
	return b
}

// UnmarshalRequest decodes a request shim.
func UnmarshalRequest(b []byte) (*Request, error) {
	length, typ, err := parsePreamble(b)
	if err != nil {
		return nil, err
	}
	if typ != TypeRequest {
		return nil, fmt.Errorf("shim: message type %d, want request", typ)
	}
	if length != RequestLen || len(b) < RequestLen {
		return nil, fmt.Errorf("shim: request length %d", length)
	}
	return &Request{
		OrigIP:    netstack.AddrFromSlice(b[8:12]),
		RespIP:    netstack.AddrFromSlice(b[12:16]),
		OrigPort:  binary.BigEndian.Uint16(b[16:18]),
		RespPort:  binary.BigEndian.Uint16(b[18:20]),
		VLAN:      binary.BigEndian.Uint16(b[20:22]),
		NoncePort: binary.BigEndian.Uint16(b[22:24]),
	}, nil
}

// Marshal encodes the response shim (>= 56 bytes).
func (r *Response) Marshal() []byte {
	total := ResponseMinLen + len(r.Annotation)
	b := putPreamble(make([]byte, 0, total), TypeResponse, total)
	b = binary.BigEndian.AppendUint32(b, uint32(r.OrigIP))
	b = binary.BigEndian.AppendUint32(b, uint32(r.RespIP))
	b = binary.BigEndian.AppendUint16(b, r.OrigPort)
	b = binary.BigEndian.AppendUint16(b, r.RespPort)
	b = binary.BigEndian.AppendUint32(b, uint32(r.Verdict))
	var name [PolicyNameLen]byte
	copy(name[:], r.PolicyName)
	b = append(b, name[:]...)
	return append(b, r.Annotation...)
}

// UnmarshalResponse decodes a response shim and returns it along with its
// total wire length (so stream parsers can consume exactly that much).
func UnmarshalResponse(b []byte) (*Response, int, error) {
	length, typ, err := parsePreamble(b)
	if err != nil {
		return nil, 0, err
	}
	if typ != TypeResponse {
		return nil, 0, fmt.Errorf("shim: message type %d, want response", typ)
	}
	if length < ResponseMinLen {
		return nil, 0, fmt.Errorf("shim: response length %d below minimum", length)
	}
	if len(b) < length {
		return nil, 0, fmt.Errorf("shim: response truncated (%d of %d bytes)", len(b), length)
	}
	name := b[24 : 24+PolicyNameLen]
	end := len(name)
	for end > 0 && name[end-1] == 0 {
		end--
	}
	return &Response{
		OrigIP:     netstack.AddrFromSlice(b[8:12]),
		RespIP:     netstack.AddrFromSlice(b[12:16]),
		OrigPort:   binary.BigEndian.Uint16(b[16:18]),
		RespPort:   binary.BigEndian.Uint16(b[18:20]),
		Verdict:    Verdict(binary.BigEndian.Uint32(b[20:24])),
		PolicyName: string(name[:end]),
		Annotation: string(b[ResponseMinLen:length]),
	}, length, nil
}

// PeekLength inspects a buffered stream prefix and reports the total length
// of the shim message at its head, or (0, false) if more bytes are needed.
// It returns an error if the buffer cannot begin with a valid shim.
func PeekLength(b []byte) (int, bool, error) {
	if len(b) < PreambleLen {
		return 0, false, nil
	}
	length, _, err := parsePreamble(b)
	if err != nil {
		return 0, false, err
	}
	return length, len(b) >= length, nil
}
