package shim

import (
	"encoding/binary"
	"fmt"
)

// Heartbeat is the supervisor's liveness probe. The gateway addresses it to
// a containment endpoint's shim port exactly like a UDP request shim; a
// live containment server echoes the message back unchanged, and the
// supervisor matches the echoed sequence number against the probe it is
// awaiting. A crashed or shut-down server simply never answers — missed
// deadlines, not error replies, are the down signal.
type Heartbeat struct {
	Seq uint64
}

// Marshal encodes the 16-byte heartbeat probe.
func (h *Heartbeat) Marshal() []byte {
	b := putPreamble(make([]byte, 0, HeartbeatLen), TypeHeartbeat, HeartbeatLen)
	return binary.BigEndian.AppendUint64(b, h.Seq)
}

// UnmarshalHeartbeat decodes a heartbeat probe.
func UnmarshalHeartbeat(b []byte) (*Heartbeat, error) {
	length, typ, err := parsePreamble(b)
	if err != nil {
		return nil, err
	}
	if typ != TypeHeartbeat {
		return nil, fmt.Errorf("shim: message type %d, want heartbeat", typ)
	}
	if length != HeartbeatLen || len(b) < HeartbeatLen {
		return nil, fmt.Errorf("shim: heartbeat length %d", length)
	}
	return &Heartbeat{Seq: binary.BigEndian.Uint64(b[8:16])}, nil
}
