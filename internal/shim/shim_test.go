package shim

import (
	"testing"
	"testing/quick"

	"gq/internal/netstack"
)

func TestRequestSize(t *testing.T) {
	r := &Request{
		OrigIP: netstack.MustParseAddr("10.0.0.23"), RespIP: netstack.MustParseAddr("192.150.187.12"),
		OrigPort: 1234, RespPort: 80, VLAN: 12, NoncePort: 42,
	}
	b := r.Marshal()
	if len(b) != RequestLen {
		t.Fatalf("request shim is %d bytes, paper specifies %d", len(b), RequestLen)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	r := &Request{
		OrigIP: netstack.MustParseAddr("10.0.0.23"), RespIP: netstack.MustParseAddr("192.150.187.12"),
		OrigPort: 1234, RespPort: 80, VLAN: 12, NoncePort: 42,
	}
	d, err := UnmarshalRequest(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *d != *r {
		t.Fatalf("round trip %+v want %+v", d, r)
	}
}

func TestResponseMinimumSize(t *testing.T) {
	r := &Response{Verdict: Drop, PolicyName: "DefaultDeny"}
	b := r.Marshal()
	if len(b) != ResponseMinLen {
		t.Fatalf("response shim without annotation is %d bytes, paper specifies at least %d",
			len(b), ResponseMinLen)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	r := &Response{
		OrigIP: netstack.MustParseAddr("10.0.0.23"), RespIP: netstack.MustParseAddr("10.3.0.1"),
		OrigPort: 1234, RespPort: 6666,
		Verdict:    Rewrite,
		PolicyName: "Rustock",
		Annotation: "C&C filtering",
	}
	d, n, err := UnmarshalResponse(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if n != ResponseMinLen+len(r.Annotation) {
		t.Fatalf("length %d", n)
	}
	if *d != *r {
		t.Fatalf("round trip %+v want %+v", d, r)
	}
}

func TestPolicyNameTruncation(t *testing.T) {
	long := "ThisPolicyNameIsFarLongerThanTheThirtyTwoByteFieldAllows"
	r := &Response{Verdict: Forward, PolicyName: long}
	d, _, err := UnmarshalResponse(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.PolicyName) != PolicyNameLen || d.PolicyName != long[:PolicyNameLen] {
		t.Fatalf("name %q", d.PolicyName)
	}
}

func TestTypeConfusionRejected(t *testing.T) {
	req := (&Request{}).Marshal()
	if _, _, err := UnmarshalResponse(req); err == nil {
		t.Error("request accepted as response")
	}
	resp := (&Response{Verdict: Drop}).Marshal()
	if _, err := UnmarshalRequest(resp); err == nil {
		t.Error("response accepted as request")
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	b := (&Request{}).Marshal()
	b[0] ^= 0xff
	if _, err := UnmarshalRequest(b); err == nil {
		t.Error("bad magic accepted")
	}
	b = (&Request{}).Marshal()
	b[7] = 99
	if _, err := UnmarshalRequest(b); err == nil {
		t.Error("bad version accepted")
	}
}

func TestPeekLength(t *testing.T) {
	r := &Response{Verdict: Reflect, PolicyName: "SpambotBase", Annotation: "full SMTP containment"}
	b := r.Marshal()
	// Too short to know.
	if n, ok, err := PeekLength(b[:4]); n != 0 || ok || err != nil {
		t.Fatalf("short peek n=%d ok=%v err=%v", n, ok, err)
	}
	// Preamble present, body incomplete.
	if n, ok, err := PeekLength(b[:20]); err != nil || ok || n != len(b) {
		t.Fatalf("partial peek n=%d ok=%v err=%v", n, ok, err)
	}
	// Complete.
	if n, ok, err := PeekLength(b); err != nil || !ok || n != len(b) {
		t.Fatalf("full peek n=%d ok=%v err=%v", n, ok, err)
	}
	// Garbage.
	if _, _, err := PeekLength([]byte("GET / HTTP/1.1\r\n")); err == nil {
		t.Fatal("garbage peek accepted")
	}
}

func TestVerdictString(t *testing.T) {
	if (Redirect | Rewrite).String() != "REDIRECT|REWRITE" {
		t.Errorf("got %q", (Redirect | Rewrite).String())
	}
	if Drop.String() != "DROP" {
		t.Errorf("got %q", Drop.String())
	}
	if Verdict(0).String() != "NONE" {
		t.Errorf("got %q", Verdict(0).String())
	}
	if !(Forward | Limit).Has(Limit) || Drop.Has(Forward) {
		t.Error("Has wrong")
	}
}

// Property: request round-trips for arbitrary field values.
func TestPropertyRequestRoundTrip(t *testing.T) {
	f := func(oip, rip uint32, op, rp, vlan, nonce uint16) bool {
		r := &Request{
			OrigIP: netstack.Addr(oip), RespIP: netstack.Addr(rip),
			OrigPort: op, RespPort: rp, VLAN: vlan, NoncePort: nonce,
		}
		d, err := UnmarshalRequest(r.Marshal())
		return err == nil && *d == *r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: response round-trips for arbitrary annotations and short names.
func TestPropertyResponseRoundTrip(t *testing.T) {
	f := func(verdict uint32, name string, ann string) bool {
		if len(name) > PolicyNameLen {
			name = name[:PolicyNameLen]
		}
		// NUL bytes in the name are indistinguishable from padding.
		for i := 0; i < len(name); i++ {
			if name[i] == 0 {
				return true
			}
		}
		if len(ann) > 60000 {
			ann = ann[:60000]
		}
		r := &Response{Verdict: Verdict(verdict), PolicyName: name, Annotation: ann}
		d, n, err := UnmarshalResponse(r.Marshal())
		return err == nil && n == ResponseMinLen+len(ann) &&
			d.Verdict == r.Verdict && d.PolicyName == name && d.Annotation == ann
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: unmarshal never panics on junk.
func TestPropertyUnmarshalNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = UnmarshalRequest(b)
		_, _, _ = UnmarshalResponse(b)
		_, _, _ = PeekLength(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
