package ops

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gq/internal/chaos"
	"gq/internal/farm"
	"gq/internal/obs"
	"gq/internal/supervisor"
)

// DefaultControlTimeout bounds how long a control endpoint waits for the
// sim loop to pick up its injected action before answering 503.
const DefaultControlTimeout = 2 * time.Second

// keepAliveEvery paces SSE comment lines so idle streams stay open through
// proxies and dead clients are detected.
const keepAliveEvery = 5 * time.Second

// Config wires an ops Server to a served farm.
type Config struct {
	Farm *farm.Farm
	// Fanout is the subscription hub interposed on the journal sink; the
	// /events endpoint subscribes here.
	Fanout *obs.Fanout
	// Driver owns the soak loop; control endpoints inject through it.
	Driver *Driver
	// ControlTimeout overrides DefaultControlTimeout when > 0.
	ControlTimeout time.Duration
}

// Server is the ops-plane HTTP handler set. All read handlers consume only
// registry snapshots, journal dump copies, and fanout rings; all write
// handlers go through Driver.DoIn into the domain owning the state they
// touch.
type Server struct {
	cfg Config
	mux *http.ServeMux

	// injectors tracks the operator-started chaos injector per subfarm.
	// On a sharded farm the chaos closures run on different subfarms'
	// domain goroutines, so the map takes a lock; the injectors themselves
	// are only ever touched from their own subfarm's domain.
	injMu     sync.Mutex
	injectors map[string]*chaos.Injector
}

// NewServer builds the handler set. Sharded farms are served too: control
// actions are posted into the owning subfarm's domain (Driver.DoIn)
// instead of injected into a single event loop.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Farm == nil || cfg.Fanout == nil || cfg.Driver == nil {
		return nil, fmt.Errorf("ops: Config needs Farm, Fanout, and Driver")
	}
	if cfg.ControlTimeout <= 0 {
		cfg.ControlTimeout = DefaultControlTimeout
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux(), injectors: map[string]*chaos.Injector{}}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /events", s.handleEvents)
	s.mux.HandleFunc("GET /flights", s.handleFlights)
	s.mux.HandleFunc("GET /flights/{i}", s.handleFlight)
	s.mux.HandleFunc("GET /machines", s.handleMachines)
	s.mux.HandleFunc("POST /policy", s.handlePolicy)
	s.mux.HandleFunc("POST /chaos", s.handleChaos)
	s.mux.HandleFunc("POST /lockdown", s.handleLockdown)
	s.mux.HandleFunc("POST /quarantine/{inmate}", s.handleQuarantine)
	s.mux.HandleFunc("POST /recycle/{inmate}", s.handleRecycle)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s, nil
}

// Handler returns the root handler for http.Serve.
func (s *Server) Handler() http.Handler { return s.mux }

// subfarm resolves a subfarm by name; empty selects a sole subfarm.
func (s *Server) subfarm(name string) (*farm.Subfarm, error) {
	subs := s.cfg.Farm.Subfarms
	if name == "" {
		if len(subs) == 1 {
			return subs[0], nil
		}
		return nil, fmt.Errorf("farm has %d subfarms; name one", len(subs))
	}
	for _, sf := range subs {
		if sf.Name == name {
			return sf, nil
		}
	}
	return nil, fmt.Errorf("no subfarm %q", name)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// --- /healthz ----------------------------------------------------------

// stalledAfter is how long the soak loop may go without completing a pump
// slice before /healthz reports the driver stalled. Generous against GC
// pauses and loaded CI machines; tiny against a wedged loop.
const stalledAfter = 30 * time.Second

// kindHealth is one supervised endpoint kind's census in /healthz:
// how many endpoints the supervision tree claims to watch (expected), how
// many health gauges the registry actually holds (present), how many read
// healthy, and which are down.
type kindHealth struct {
	Expected int      `json:"expected"`
	Present  int      `json:"present"`
	Healthy  int      `json:"healthy"`
	Down     []string `json:"down,omitempty"`
}

type healthReply struct {
	Status          string                 `json:"status"` // "ok", "degraded", "stalled"
	SimTimeNS       int64                  `json:"sim_time_ns"`
	SimTime         string                 `json:"sim_time"`
	ProgressAgoMS   int64                  `json:"progress_ago_ms"`
	Subscribers     int                    `json:"subscribers"`
	EventsPublished uint64                 `json:"events_published"`
	EventsDropped   uint64                 `json:"events_dropped"`
	Supervision     map[string]*kindHealth `json:"supervision,omitempty"`
	Lockdowns       []string               `json:"lockdowns,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	d := s.cfg.Driver
	rep := healthReply{
		Status:          "ok",
		SimTimeNS:       int64(d.Now()),
		SimTime:         d.Now().String(),
		ProgressAgoMS:   d.SinceProgress().Milliseconds(),
		Subscribers:     s.cfg.Fanout.Subscribers(),
		EventsPublished: s.cfg.Fanout.Published(),
		EventsDropped:   s.cfg.Fanout.Dropped(),
	}
	degraded := s.supervisionHealth(&rep)
	status := http.StatusOK
	if degraded {
		rep.Status = "degraded"
		status = http.StatusServiceUnavailable
	}
	if d.SinceProgress() > stalledAfter {
		rep.Status = "stalled"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rep)
}

// supervisionHealth fills rep.Supervision and rep.Lockdowns from the
// metric registry plus the tree's build-time watch censuses, and reports
// whether the containment plane is degraded. A bare gauge scan would be
// vacuously healthy with no gauges at all — a supervisor that was never
// attached, or whose registrations went missing, read as green. Checking
// present against expected per kind closes that hole: every endpoint a
// node claims to watch must have its health gauge present and at 1, and
// no node may sit in fail-closed lockdown.
func (s *Server) supervisionHealth(rep *healthReply) bool {
	expected := map[string]int{}
	for _, sf := range s.cfg.Farm.Subfarms {
		if sup := sf.Supervisor; sup != nil {
			for k, n := range sup.WatchCounts() {
				expected[k] += n
			}
		}
	}
	if tr := s.cfg.Farm.Tree; tr != nil {
		for k, n := range tr.WatchCounts() {
			expected[k] += n
		}
	}
	kinds := map[string]*kindHealth{}
	kindFor := func(k string) *kindHealth {
		if kinds[k] == nil {
			kinds[k] = &kindHealth{}
		}
		return kinds[k]
	}
	for k, n := range expected {
		kindFor(k).Expected = n
	}
	degraded := false
	snap := s.cfg.Farm.Sim.Obs().Snapshot()
	names := make([]string, 0, len(snap.Gauges))
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names) // stable Down lists and lockdown order
	for _, name := range names {
		v := snap.Gauges[name]
		if kind, ep, ok := supervisor.ParseHealthGauge(name); ok {
			kh := kindFor(string(kind))
			kh.Present++
			if v == 1 {
				kh.Healthy++
			} else {
				kh.Down = append(kh.Down, ep)
				degraded = true
			}
			continue
		}
		if strings.HasPrefix(name, supervisor.HealthGaugePrefix) &&
			strings.HasSuffix(name, supervisor.LockdownGaugeSuffix) && v == 1 {
			node := strings.TrimSuffix(strings.TrimPrefix(name, supervisor.HealthGaugePrefix), supervisor.LockdownGaugeSuffix)
			rep.Lockdowns = append(rep.Lockdowns, node)
			degraded = true
		}
	}
	for _, kh := range kinds {
		if kh.Present < kh.Expected {
			degraded = true
		}
	}
	if len(kinds) > 0 {
		rep.Supervision = kinds
	}
	return degraded
}

// --- /metrics ----------------------------------------------------------

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.cfg.Farm.Sim.Obs().Snapshot()
	switch f := r.URL.Query().Get("format"); f {
	case "", "prom":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WriteProm(w)
	case "json":
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap.WriteText(w)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (prom, json, text)", f))
	}
}

// --- /events (SSE) -----------------------------------------------------

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	q := r.URL.Query()
	buf := 0
	if bs := q.Get("buf"); bs != "" {
		n, err := strconv.Atoi(bs)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad buf %q", bs))
			return
		}
		buf = n
	}
	sub := s.cfg.Fanout.Subscribe(buf, obs.ParseFilter(q.Get("scope"), q.Get("type")))
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": gq ops event stream t=%s\n\n", s.cfg.Driver.Now())
	fl.Flush()

	j := s.cfg.Farm.Sim.Obs().Journal
	keep := time.NewTicker(keepAliveEvery)
	defer keep.Stop()
	var (
		evs     []obs.Event
		line    []byte
		dropped uint64
	)
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keep.C:
			fmt.Fprintf(w, ": keepalive t=%s\n\n", s.cfg.Driver.Now())
			fl.Flush()
		case <-sub.Notify():
			evs = sub.Drain(evs[:0])
			for _, e := range evs {
				line = j.RenderEvent(line[:0], e)
				// RenderEvent yields one JSON object + trailing newline;
				// SSE data lines must not embed raw newlines.
				fmt.Fprintf(w, "data: %s\n\n", strings.TrimRight(string(line), "\n"))
			}
			if d := sub.Dropped(); d > dropped {
				fmt.Fprintf(w, "event: dropped\ndata: {\"dropped\":%d}\n\n", d)
				dropped = d
			}
			fl.Flush()
		}
	}
}

// --- /flights ----------------------------------------------------------

type flightEntry struct {
	I      int    `json:"i"`
	Scope  string `json:"scope"`
	Reason string `json:"reason"`
	TNS    int64  `json:"t_ns"`
	Events int    `json:"events"`
}

func (s *Server) handleFlights(w http.ResponseWriter, r *http.Request) {
	j := s.cfg.Farm.Sim.Obs().Journal
	dumps := j.Dumps()
	out := struct {
		Dumps   []flightEntry `json:"dumps"`
		Evicted uint64        `json:"evicted"`
	}{Dumps: []flightEntry{}, Evicted: j.EvictedDumps()}
	for i, d := range dumps {
		out.Dumps = append(out.Dumps, flightEntry{
			I: i, Scope: d.Scope, Reason: d.Reason, TNS: int64(d.At), Events: len(d.Events),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	i, err := strconv.Atoi(r.PathValue("i"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad dump index %q", r.PathValue("i")))
		return
	}
	j := s.cfg.Farm.Sim.Obs().Journal
	dumps := j.Dumps()
	if i < 0 || i >= len(dumps) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("dump %d of %d", i, len(dumps)))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	j.WriteDump(w, dumps[i])
}

// --- /machines ---------------------------------------------------------

// handleMachines lists every subfarm's raw-iron machines with their
// lifecycle, retry, and breaker status. Machine state is sim-owned mutable
// state (not a snapshot) and each subfarm's raw-iron controller lives in
// that subfarm's domain, so the read fans out one posted action per
// subfarm, each running on its own domain's event loop.
func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	out := []farm.MachineInfo{}
	var err error
	for _, sf := range s.cfg.Farm.Subfarms {
		sf := sf
		if err = s.cfg.Driver.DoIn(s.cfg.ControlTimeout, sf.Sim, func() error {
			out = append(out, sf.Machines()...)
			return nil
		}); err != nil {
			break
		}
	}
	if err != nil {
		s.answerControl(w, err, nil)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Machines []farm.MachineInfo `json:"machines"`
	}{out})
}

// --- control endpoints -------------------------------------------------

type policyReq struct {
	Subfarm string `json:"subfarm"`
	Lo      uint16 `json:"lo"`
	Hi      uint16 `json:"hi"`
	Policy  string `json:"policy"`
}

func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	var req policyReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Policy == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("policy name required"))
		return
	}
	sf, err := s.subfarm(req.Subfarm)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	// Resolve nothing else up front: the swap itself — decider
	// construction included — runs inside the subfarm's event loop.
	err = s.cfg.Driver.DoIn(s.cfg.ControlTimeout, sf.Sim, func() error {
		return sf.SwapPolicy(req.Lo, req.Hi, req.Policy)
	})
	s.answerControl(w, err, map[string]any{
		"applied": "policy_swap", "subfarm": sf.Name,
		"lo": req.Lo, "hi": req.Hi, "policy": req.Policy,
	})
}

type chaosReq struct {
	Subfarm string `json:"subfarm"`
	// Spec is a chaos profile spec (preset and/or key=value overrides);
	// fault times count from injection. Empty with Stop set stops the
	// running injector.
	Spec string `json:"spec"`
	Stop bool   `json:"stop"`
}

func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	var req chaosReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	sf, err := s.subfarm(req.Subfarm)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if req.Stop == (req.Spec != "") {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("exactly one of spec or stop required"))
		return
	}
	sc := func() *obs.Scope { return sf.Sim.Obs().Scope(sf.Name, 0) }
	if req.Stop {
		err = s.cfg.Driver.DoIn(s.cfg.ControlTimeout, sf.Sim, func() error {
			s.injMu.Lock()
			inj := s.injectors[sf.Name]
			delete(s.injectors, sf.Name)
			s.injMu.Unlock()
			if inj == nil {
				return fmt.Errorf("no chaos injector running on %s", sf.Name)
			}
			inj.Stop()
			sc().Emit(obs.Event{Type: obs.EvOpsChaosStop})
			return nil
		})
		s.answerControl(w, err, map[string]any{"applied": "chaos_stop", "subfarm": sf.Name})
		return
	}
	p, err := chaos.Parse(req.Spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	err = s.cfg.Driver.DoIn(s.cfg.ControlTimeout, sf.Sim, func() error {
		s.injMu.Lock()
		running := s.injectors[sf.Name] != nil
		s.injMu.Unlock()
		if running {
			return fmt.Errorf("chaos injector already running on %s (stop it first)", sf.Name)
		}
		inj := chaos.Apply(sf, p)
		s.injMu.Lock()
		s.injectors[sf.Name] = inj
		s.injMu.Unlock()
		sc().Emit(obs.Event{Type: obs.EvOpsChaosInject, Detail: req.Spec})
		return nil
	})
	s.answerControl(w, err, map[string]any{
		"applied": "chaos_inject", "subfarm": sf.Name, "spec": req.Spec,
	})
}

type lockdownReq struct {
	// On engages the fail-closed lockdown; false releases it.
	On bool `json:"on"`
	// Subfarm scopes the action to one subfarm's containment plane; empty
	// means the whole farm (requires a supervision tree).
	Subfarm string `json:"subfarm"`
	Reason  string `json:"reason"`
}

// handleLockdown drives the containment lockdown from the ops plane: the
// reversible counterpart of the tree's own escalation. Subfarm lockdowns
// go through the subfarm's tree node when one is attached (so the
// operator action lands in the escalation history like any other
// transition); global lockdowns fan out through the root.
func (s *Server) handleLockdown(w http.ResponseWriter, r *http.Request) {
	var req lockdownReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Reason == "" {
		req.Reason = "operator"
	}
	verb := "off"
	if req.On {
		verb = "on"
	}
	f := s.cfg.Farm
	if req.Subfarm == "" {
		tree := f.Tree
		if tree == nil {
			writeErr(w, http.StatusUnprocessableEntity,
				fmt.Errorf("global lockdown needs a supervision tree (run with -tree)"))
			return
		}
		err := s.cfg.Driver.DoIn(s.cfg.ControlTimeout, f.Sim, func() error {
			if req.On {
				tree.GlobalLockdown(req.Reason)
			} else {
				tree.Release(req.Reason)
			}
			f.Sim.Obs().Scope("farm", 0).Emit(obs.Event{
				Type: obs.EvOpsLockdown, Detail: "global " + verb + " " + req.Reason,
			})
			return nil
		})
		s.answerControl(w, err, map[string]any{
			"applied": "lockdown", "scope": "global", "on": req.On, "reason": req.Reason,
		})
		return
	}
	sf, err := s.subfarm(req.Subfarm)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	closed := 0
	err = s.cfg.Driver.DoIn(s.cfg.ControlTimeout, sf.Sim, func() error {
		closed = sf.SetLockdown(req.On, req.Reason)
		sf.Sim.Obs().Scope(sf.Name, 0).Emit(obs.Event{
			Type: obs.EvOpsLockdown, Detail: sf.Name + " " + verb + " " + req.Reason,
		})
		return nil
	})
	s.answerControl(w, err, map[string]any{
		"applied": "lockdown", "scope": sf.Name, "on": req.On,
		"reason": req.Reason, "flows_failed_closed": closed,
	})
}

type quarantineReq struct {
	Subfarm string `json:"subfarm"`
	Action  string `json:"action"` // start, stop, reboot, revert, terminate
}

func (s *Server) handleQuarantine(w http.ResponseWriter, r *http.Request) {
	vlan64, err := strconv.ParseUint(r.PathValue("inmate"), 10, 16)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad inmate VLAN %q", r.PathValue("inmate")))
		return
	}
	vlan := uint16(vlan64)
	var req quarantineReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Action == "" {
		req.Action = "revert"
	}
	sf, err := s.subfarm(req.Subfarm)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	err = s.cfg.Driver.DoIn(s.cfg.ControlTimeout, sf.Sim, func() error {
		return sf.QuarantineInmate(vlan, req.Action)
	})
	s.answerControl(w, err, map[string]any{
		"applied": "quarantine", "subfarm": sf.Name, "vlan": vlan, "action": req.Action,
	})
}

type recycleReq struct {
	Subfarm string `json:"subfarm"`
}

// handleRecycle forces one raw-iron inmate out of its detonation window
// through the capture → reimage → re-admit path.
func (s *Server) handleRecycle(w http.ResponseWriter, r *http.Request) {
	vlan64, err := strconv.ParseUint(r.PathValue("inmate"), 10, 16)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad inmate VLAN %q", r.PathValue("inmate")))
		return
	}
	vlan := uint16(vlan64)
	var req recycleReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	sf, err := s.subfarm(req.Subfarm)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	err = s.cfg.Driver.DoIn(s.cfg.ControlTimeout, sf.Sim, func() error {
		return sf.RecycleInmate(vlan)
	})
	s.answerControl(w, err, map[string]any{
		"applied": "recycle", "subfarm": sf.Name, "vlan": vlan,
	})
}

// answerControl maps a Driver.Do outcome onto a control response.
func (s *Server) answerControl(w http.ResponseWriter, err error, ok map[string]any) {
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, ok)
	case err == ErrTimeout, err == ErrStopped:
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		writeErr(w, http.StatusUnprocessableEntity, err)
	}
}
