// Package ops is the live operations plane: an HTTP server exposing a
// running farm's event journal (SSE), telemetry registry (JSON and
// Prometheus text), flight-recorder dumps, health, and runtime control
// (policy swaps, chaos injection, inmate quarantine) while the simulation
// soaks in real time.
//
// Two rules keep the ops plane from perturbing the experiment it watches
// (DESIGN.md §3h):
//
//   - Read endpoints touch only snapshots and bounded per-subscriber ring
//     buffers — never sim-owned state, and never with backpressure into
//     the emit path. A slow HTTP client loses events (counted), not the
//     farm.
//   - Control endpoints mutate sim state only from inside a sim event —
//     injected on an unsharded farm, posted into the owning domain's event
//     loop on a sharded one — so operator intervention lands in the
//     journal in the same total order as everything else the farm does,
//     and cross-domain effects travel the same PostTo trunks as farm
//     traffic.
package ops

import (
	"errors"
	"sync/atomic"
	"time"

	"gq/internal/sim"
)

// DefaultTick is the wall-clock pacing quantum of the soak loop: each tick
// the driver advances virtual time by speed*DefaultTick.
const DefaultTick = 50 * time.Millisecond

// ErrTimeout is returned by Do when the simulation loop does not pick up
// an injected control action within the deadline (wedged or stopped sim).
var ErrTimeout = errors.New("ops: control action timed out awaiting the sim loop")

// ErrStopped is returned by Do after the driver has shut down.
var ErrStopped = errors.New("ops: driver stopped")

// Driver runs a simulation as a long-lived real-time-paced soak, and is
// the sole doorway through which alien goroutines (HTTP handlers) reach
// sim state. An uncoordinated farm is pumped with sim.Pump and controlled
// with sim.Inject; a sharded farm is advanced tick-by-tick through its
// Coordinator, with control actions posted into their owning domains via
// Coordinator.Post — they execute inside the target domain's event loop,
// and any cross-domain effect rides the regular PostTo trunks.
type Driver struct {
	s     *sim.Simulator
	coord *sim.Coordinator // non-nil when s is a coordinated root
	speed float64
	tick  time.Duration

	stop     atomic.Bool
	done     chan struct{}
	progress atomic.Int64 // wall ns of the last completed pump slice
}

// NewDriver prepares a soak driver advancing s at speed× real time
// (speed <= 0 defaults to 1). When s is the root of a coordinated
// (sharded) farm the driver runs the whole coordinator.
func NewDriver(s *sim.Simulator, speed float64) *Driver {
	if speed <= 0 {
		speed = 1
	}
	return &Driver{
		s: s, coord: s.Coordinator(),
		speed: speed, tick: DefaultTick, done: make(chan struct{}),
	}
}

// Run drives the soak loop until Stop, blocking the calling goroutine —
// which becomes the simulation goroutine for the duration. Each iteration
// advances one tick's worth of virtual time, stamps the liveness clock,
// and sleeps off any wall-time surplus.
func (d *Driver) Run() {
	defer close(d.done)
	d.progress.Store(time.Now().UnixNano())
	stop := func() bool { return d.stop.Load() }
	for !d.stop.Load() {
		start := time.Now()
		if d.coord != nil {
			d.coord.RunUntil(d.coord.Now() + time.Duration(float64(d.tick)*d.speed))
		} else {
			target := d.s.Now() + time.Duration(float64(d.tick)*d.speed)
			if d.s.Pump(target, stop) {
				break // stop predicate satisfied mid-pump
			}
		}
		d.progress.Store(time.Now().UnixNano())
		if rest := d.tick - time.Since(start); rest > 0 {
			time.Sleep(rest)
		}
	}
}

// Stop ends the soak loop and waits for Run to return. Safe to call more
// than once and from any goroutine.
func (d *Driver) Stop() {
	d.stop.Store(true)
	if d.coord == nil {
		// Wake a Pump parked on an empty event queue. A coordinated loop
		// never parks — RunUntil returns as soon as the tick's events are
		// done — so it needs no wake-up.
		d.s.Inject(func() {})
	}
	<-d.done
}

// Now reports virtual time through the simulator's cross-goroutine mirror.
func (d *Driver) Now() time.Duration { return d.s.ObservedNow() }

// SinceProgress reports wall time since the soak loop last completed a
// pump slice — the /healthz liveness signal.
func (d *Driver) SinceProgress() time.Duration {
	return time.Since(time.Unix(0, d.progress.Load()))
}

// Do injects fn into the simulation loop and waits for its result, at most
// timeout. fn runs on the sim goroutine, interleaved with the soak in FIFO
// injection order; on timeout the action may still execute later — the
// caller just stops waiting. On a sharded farm fn runs inside the root
// domain's event loop (see DoIn for other domains).
func (d *Driver) Do(timeout time.Duration, fn func() error) error {
	return d.DoIn(timeout, d.s, fn)
}

// DoIn runs fn inside dom's event loop and waits for its result, at most
// timeout. fn executes on dom's own goroutine at dom's clock while other
// domains may be running concurrently, so it must touch only state dom
// owns — reaching any other domain goes through PostTo. On an unsharded
// farm dom is necessarily the farm simulator and DoIn is exactly Do.
func (d *Driver) DoIn(timeout time.Duration, dom *sim.Simulator, fn func() error) error {
	if d.stop.Load() {
		return ErrStopped
	}
	ch := make(chan error, 1)
	run := func() { ch <- fn() }
	if d.coord != nil {
		d.coord.Post(dom, run)
	} else {
		d.s.Inject(run)
	}
	select {
	case err := <-ch:
		return err
	case <-d.done:
		return ErrStopped
	case <-time.After(timeout):
		return ErrTimeout
	}
}
