package ops_test

import (
	"bufio"
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gq/internal/chaos"
	"gq/internal/experiments"
	"gq/internal/farm"
	"gq/internal/obs"
	"gq/internal/ops"
)

// TestServedSoakJournalByteIdentity is the ops-plane non-perturbation
// acceptance check: running the chaos soak with the full serving stack
// interposed — fanout on the sink chain, HTTP server up, a deliberately
// slow SSE client attached with a tiny ring — must produce byte-identical
// journal NDJSON to the unserved run of the same (seed, profile), while
// the slow client demonstrably loses events (dropped > 0) instead of
// backpressuring the sim.
func TestServedSoakJournalByteIdentity(t *testing.T) {
	profile, err := chaos.Parse("light,cscrash=6m")
	if err != nil {
		t.Fatal(err)
	}
	const seed = 7

	run := func(serve bool) (journal []byte, dropped uint64) {
		cfg := experiments.ChaosConfig{Seed: seed, Profile: profile}
		var (
			fan    *obs.Fanout
			ts     *httptest.Server
			cancel context.CancelFunc
		)
		if serve {
			cfg.WrapSink = func(inner obs.Sink) obs.Sink {
				fan = obs.NewFanout(inner)
				return fan
			}
			cfg.OnBuild = func(f *farm.Farm, sf *farm.Subfarm) {
				// The soak drives the sim itself (f.Run); the driver here
				// only satisfies the server wiring and is never Run, so
				// control endpoints are out of scope for this test.
				srv, err := ops.NewServer(ops.Config{
					Farm: f, Fanout: fan, Driver: ops.NewDriver(f.Sim, 1),
				})
				if err != nil {
					t.Error(err)
					return
				}
				ts = httptest.NewServer(srv.Handler())
				// Don't start the soak until the subscription exists, or
				// the run could finish before the client ever attaches.
				cancel = startSlowSSEClient(t, ts.URL+"/events?buf=4")
			}
		}
		out, err := experiments.RunChaosSoak(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fan != nil {
			dropped = fan.Dropped()
		}
		if cancel != nil {
			cancel() // release the parked stream so Close doesn't wait on it
		}
		if ts != nil {
			ts.Close()
		}
		return out.Journal, dropped
	}

	unserved, _ := run(false)
	served, dropped := run(true)

	if len(unserved) == 0 {
		t.Fatal("unserved soak journalled nothing")
	}
	if !bytes.Equal(unserved, served) {
		t.Fatalf("serving perturbed the journal: %d bytes unserved vs %d served",
			len(unserved), len(served))
	}
	if dropped == 0 {
		t.Fatal("slow SSE client lost nothing — the bounded ring was never exercised")
	}
}

// startSlowSSEClient subscribes with a tiny ring, waits for the stream
// preamble to prove the subscription is live, then stops reading entirely:
// the worst-behaved client the ops plane must tolerate. The returned
// cancel tears the connection down.
func startSlowSSEClient(t *testing.T, url string) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(resp.Body).ReadString('\n')
	if err != nil || !strings.HasPrefix(line, ":") {
		t.Fatalf("SSE preamble %q: %v", line, err)
	}
	go func() {
		// Park without reading until cancelled, then release the body.
		<-ctx.Done()
		resp.Body.Close()
	}()
	// The subscription exists (the preamble arrived after Subscribe); from
	// here on the unread stream backs up into the tiny ring and drops.
	return cancel
}
