package ops

import (
	"sync"
	"time"
)

// Deadman is the ops plane's wall-clock dead-man switch over the soak
// loop itself — the one watcher that cannot run on the virtual clock,
// because the failure it guards against is the virtual clock no longer
// advancing (a wedged pump, a livelocked domain, a Driver whose
// goroutine died). It polls the driver's progress stamp and fires onDead
// once per stall episode when no pump slice has completed for the
// budget; a recovering loop re-arms it.
//
// onDead runs on the deadman's own goroutine and must not block on the
// sim loop it just declared dead: hand the escalation to the tree with a
// bounded Driver.Do (which itself times out against a wedged loop) and
// fall back to direct router action only if that fails.
type Deadman struct {
	drv    *Driver
	budget time.Duration
	onDead func(stalled time.Duration)

	mu      sync.Mutex
	stop    chan struct{}
	stopped bool
	fired   bool
	trips   int
}

// NewDeadman starts a dead-man watch over drv: when the soak loop makes
// no progress for budget wall time, onDead fires (once per stall
// episode). Poll cadence is budget/4, floored at 10ms.
func NewDeadman(drv *Driver, budget time.Duration, onDead func(stalled time.Duration)) *Deadman {
	if budget <= 0 {
		budget = 30 * time.Second
	}
	dm := &Deadman{drv: drv, budget: budget, onDead: onDead, stop: make(chan struct{})}
	every := budget / 4
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	go dm.loop(every)
	return dm
}

func (dm *Deadman) loop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-dm.stop:
			return
		case <-t.C:
			dm.check()
		}
	}
}

func (dm *Deadman) check() {
	stalled := dm.drv.SinceProgress()
	dm.mu.Lock()
	if stalled < dm.budget {
		dm.fired = false // progress resumed; re-arm for the next episode
		dm.mu.Unlock()
		return
	}
	if dm.fired {
		dm.mu.Unlock()
		return
	}
	dm.fired = true
	dm.trips++
	fire := dm.onDead
	dm.mu.Unlock()
	if fire != nil {
		fire(stalled)
	}
}

// Trips reports how many distinct stall episodes have fired onDead.
func (dm *Deadman) Trips() int {
	dm.mu.Lock()
	defer dm.mu.Unlock()
	return dm.trips
}

// Stop ends the watch. Safe to call more than once.
func (dm *Deadman) Stop() {
	dm.mu.Lock()
	defer dm.mu.Unlock()
	if dm.stopped {
		return
	}
	dm.stopped = true
	close(dm.stop)
}
