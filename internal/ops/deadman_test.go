package ops

import (
	"sync"
	"testing"
	"time"

	"gq/internal/sim"
)

// TestDeadmanFiresOncePerStall drives the dead-man switch against a
// driver that is never Run: its progress stamp never advances, so the
// watch must fire — exactly once for the whole stall episode, however
// long it lasts.
func TestDeadmanFiresOncePerStall(t *testing.T) {
	drv := NewDriver(sim.New(1), 1)

	var mu sync.Mutex
	fired := 0
	var stalledAt time.Duration
	dm := NewDeadman(drv, 40*time.Millisecond, func(stalled time.Duration) {
		mu.Lock()
		fired++
		stalledAt = stalled
		mu.Unlock()
	})
	defer dm.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := fired
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("deadman never fired against a stalled driver")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The stall persists; the switch must not keep firing.
	time.Sleep(200 * time.Millisecond)
	mu.Lock()
	n, at := fired, stalledAt
	mu.Unlock()
	if n != 1 {
		t.Fatalf("deadman fired %d times for one stall episode", n)
	}
	if at < 40*time.Millisecond {
		t.Fatalf("reported stall %v below budget", at)
	}
	if dm.Trips() != 1 {
		t.Fatalf("Trips() = %d, want 1", dm.Trips())
	}

	// A "recovered" loop (fresh progress stamp) re-arms the episode latch;
	// the next stall past the budget trips it again.
	drv.progress.Store(time.Now().UnixNano())
	deadline = time.Now().Add(5 * time.Second)
	for dm.Trips() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("deadman never re-armed after progress resumed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	dm.Stop()
	dm.Stop() // idempotent
}
