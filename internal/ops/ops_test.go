package ops_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gq/internal/farm"
	"gq/internal/malware"
	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/ops"
	"gq/internal/policy"
	"gq/internal/smtpx"
)

const testPolicy = "[VLAN 16-17]\n" +
	"Decider = Rustock\nInfection = rustock.100921.*.exe\n\n" +
	"[VLAN 18-19]\n" +
	"Decider = Grum\nInfection = grum.100818.*.exe\n"

// buildFarm assembles the unsharded Botfarm demo with an NDJSON journal
// capture, ready for serving.
func buildFarm(t *testing.T, seed int64) (*farm.Farm, *farm.Subfarm, *bytes.Buffer, *obs.NDJSONSink) {
	t.Helper()
	f := farm.New(seed)
	var journal bytes.Buffer
	sink := f.Sim.Obs().Journal.AttachNDJSON(&journal)

	ccAddr := netstack.MustParseAddr("50.8.207.91")
	ccHost := f.AddExternalHost("cc", ccAddr)
	if _, err := malware.NewCCServer(ccHost, malware.CCConfig{Template: "pharma special"}); err != nil {
		t.Fatal(err)
	}
	sf, err := f.AddSubfarm(farm.SubfarmConfig{
		Name:   "Botfarm",
		VLANLo: 16, VLANHi: 24,
		ServiceVLAN:  11,
		GlobalPool:   netstack.MustParsePrefix("192.0.2.0/24"),
		InfraPool:    netstack.MustParsePrefix("192.0.9.0/24"),
		PolicyConfig: testPolicy,
		SampleLibrary: []*policy.Sample{
			policy.NewSample("rustock.100921.001.exe", "rustock", []byte("MZ-r")),
			policy.NewSample("grum.100818.001.exe", "grum", []byte("MZ-g")),
		},
		RepeatBatches: true,
		CCHosts: map[string]policy.AddrPort{
			"Rustock": {Addr: ccAddr, Port: 443},
			"Grum":    {Addr: ccAddr, Port: 80},
		},
		SinkDropProb:   0.2,
		SinkStrictness: smtpx.Lenient,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := sf.AddInmate(fmt.Sprintf("bot-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return f, sf, &journal, sink
}

// serveFarm interposes a fanout, starts the soak driver and an httptest
// ops server, and registers cleanup. speed is the virtual:wall ratio.
func serveFarm(t *testing.T, f *farm.Farm, speed float64) (*httptest.Server, *ops.Driver, *obs.Fanout) {
	t.Helper()
	j := f.Sim.Obs().Journal
	fan := obs.NewFanout(j.Sink())
	j.SetSink(fan)
	d := ops.NewDriver(f.Sim, speed)
	srv, err := ops.NewServer(ops.Config{Farm: f, Fanout: fan, Driver: d})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	go d.Run()
	t.Cleanup(func() { d.Stop(); ts.Close() })
	return ts, d, fan
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitSim blocks until the served farm's virtual clock passes target.
func waitSim(t *testing.T, d *ops.Driver, target time.Duration) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for d.Now() < target {
		if time.Now().After(deadline) {
			t.Fatalf("sim stuck at %v waiting for %v", d.Now(), target)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeEndToEnd drives the full ops surface against one served soak:
// health, both metrics formats, SSE streaming, flight listings, and the
// three control verbs, each of which must land in the journal.
func TestServeEndToEnd(t *testing.T) {
	f, _, journal, sink := buildFarm(t, 7)
	ts, d, _ := serveFarm(t, f, 2400) // 2 virtual minutes per wall second

	// Health comes up OK (no supervisor attached, nothing unhealthy).
	var health struct {
		Status    string `json:"status"`
		SimTimeNS int64  `json:"sim_time_ns"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, health)
	}

	// Let the inmates boot and start emitting.
	waitSim(t, d, 2*time.Minute)

	// Metrics: prom is the endpoint default, json round-trips, text renders,
	// junk is rejected.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := readAll(resp)
	if resp.StatusCode != 200 || !strings.Contains(prom, "# TYPE gq_sim_time_seconds gauge") {
		t.Fatalf("prom metrics: %d %.120s", resp.StatusCode, prom)
	}
	if !strings.Contains(prom, "gq_subfarm_Botfarm_flows_created") {
		t.Fatalf("prom metrics missing farm counters:\n%.400s", prom)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if code := getJSON(t, ts.URL+"/metrics?format=json", &snap); code != 200 || len(snap.Counters) == 0 {
		t.Fatalf("json metrics: %d %d counters", code, len(snap.Counters))
	}
	resp, err = http.Get(ts.URL + "/metrics?format=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad format answered %d", resp.StatusCode)
	}

	// SSE: an unfiltered subscriber sees journal events as data lines.
	sawData := readSSE(t, ts.URL+"/events?buf=4096", 1, 10*time.Second)
	if len(sawData) == 0 || !strings.HasPrefix(sawData[0], "{\"t_ns\":") {
		t.Fatalf("SSE data lines: %q", sawData)
	}

	// Flights: listing answers (empty or not) with the eviction counter.
	var flights struct {
		Dumps   []map[string]any `json:"dumps"`
		Evicted uint64           `json:"evicted"`
	}
	if code := getJSON(t, ts.URL+"/flights", &flights); code != 200 {
		t.Fatalf("flights: %d", code)
	}

	// Control: swap VLAN 16-17 to HardDeny, inject + stop chaos, revert an
	// inmate. Each answers 200 synchronously.
	if code := postJSON(t, ts.URL+"/policy",
		map[string]any{"subfarm": "Botfarm", "lo": 16, "hi": 17, "policy": "HardDeny"}, nil); code != 200 {
		t.Fatalf("policy swap: %d", code)
	}
	if code := postJSON(t, ts.URL+"/policy",
		map[string]any{"lo": 16, "hi": 17, "policy": "NoSuchPolicy"}, nil); code != 422 {
		t.Fatalf("unknown policy answered %d", code)
	}
	if code := postJSON(t, ts.URL+"/chaos",
		map[string]any{"subfarm": "Botfarm", "spec": "loss=0.05"}, nil); code != 200 {
		t.Fatalf("chaos inject: %d", code)
	}
	if code := postJSON(t, ts.URL+"/chaos",
		map[string]any{"subfarm": "Botfarm", "spec": "loss=0.10"}, nil); code != 422 {
		t.Fatalf("double chaos inject answered %d", code)
	}
	if code := postJSON(t, ts.URL+"/chaos",
		map[string]any{"subfarm": "Botfarm", "stop": true}, nil); code != 200 {
		t.Fatalf("chaos stop: %d", code)
	}
	if code := postJSON(t, ts.URL+"/quarantine/16",
		map[string]any{"action": "revert"}, nil); code != 200 {
		t.Fatalf("quarantine: %d", code)
	}
	if code := postJSON(t, ts.URL+"/quarantine/99",
		map[string]any{"action": "revert"}, nil); code != 422 {
		t.Fatalf("quarantine of unknown VLAN answered %d", code)
	}

	// Verify the swap dispatches: decisions made after the swap on VLANs
	// 16-17 must name HardDeny. Read sim-owned state through the driver.
	target := d.Now() + 10*time.Minute
	waitSim(t, d, target)
	var swapped bool
	err = d.Do(5*time.Second, func() error {
		for _, sub := range f.Subfarms {
			for _, ld := range sub.CS.DecisionLog {
				if ld.Policy == "HardDeny" {
					swapped = true
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !swapped {
		t.Fatal("no post-swap decision names HardDeny")
	}

	d.Stop() // idempotent with cleanup; quiesces the journal for reading
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	text := journal.String()
	for _, ev := range []string{
		`"type":"ops.policy_swap"`,
		`"type":"ops.chaos_inject"`,
		`"type":"ops.chaos_stop"`,
		`"type":"ops.quarantine"`,
	} {
		if !strings.Contains(text, ev) {
			t.Errorf("journal missing %s", ev)
		}
	}
	if !strings.Contains(text, `"detail":"HardDeny"`) {
		t.Error("policy swap journal event does not carry the policy name")
	}
}

// TestMetricsAgreeWithRegistry pins /metrics to the same registry the
// final report cross-checks: a JSON scrape after quiescing equals a direct
// snapshot, counter for counter.
func TestMetricsAgreeWithRegistry(t *testing.T) {
	f, _, _, _ := buildFarm(t, 11)
	ts, d, _ := serveFarm(t, f, 2400)
	waitSim(t, d, 5*time.Minute)
	d.Stop()

	var scraped struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if code := getJSON(t, ts.URL+"/metrics?format=json", &scraped); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	direct := f.Sim.Obs().Snapshot()
	if len(scraped.Counters) != len(direct.Counters) {
		t.Fatalf("scrape has %d counters, registry %d", len(scraped.Counters), len(direct.Counters))
	}
	for name, v := range direct.Counters {
		if scraped.Counters[name] != v {
			t.Fatalf("counter %s: scraped %d, registry %d", name, scraped.Counters[name], v)
		}
	}
	if direct.Counter("subfarm.Botfarm.flows_created") == 0 {
		t.Fatal("soak created no flows; the agreement check proved nothing")
	}
}

// buildShardedFarm assembles the Botfarm demo sharded: the subfarm in its
// own domain, external hosts across two external shards.
func buildShardedFarm(t *testing.T, seed int64) (*farm.Farm, *farm.Subfarm) {
	t.Helper()
	f := farm.NewShardedN(seed, 2, 2)
	ccAddr := netstack.MustParseAddr("50.8.207.91")
	ccHost := f.AddExternalHost("cc", ccAddr)
	if _, err := malware.NewCCServer(ccHost, malware.CCConfig{Template: "pharma special"}); err != nil {
		t.Fatal(err)
	}
	sf, err := f.AddSubfarm(farm.SubfarmConfig{
		Name:   "Botfarm",
		VLANLo: 16, VLANHi: 24,
		ServiceVLAN:  11,
		GlobalPool:   netstack.MustParsePrefix("192.0.2.0/24"),
		InfraPool:    netstack.MustParsePrefix("192.0.9.0/24"),
		PolicyConfig: testPolicy,
		SampleLibrary: []*policy.Sample{
			policy.NewSample("rustock.100921.001.exe", "rustock", []byte("MZ-r")),
			policy.NewSample("grum.100818.001.exe", "grum", []byte("MZ-g")),
		},
		RepeatBatches: true,
		CCHosts: map[string]policy.AddrPort{
			"Rustock": {Addr: ccAddr, Port: 443},
			"Grum":    {Addr: ccAddr, Port: 80},
		},
		SinkDropProb:   0.2,
		SinkStrictness: smtpx.Lenient,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := sf.AddInmate(fmt.Sprintf("bot-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return f, sf
}

// TestServeShardedFarm: the ops plane serves a sharded farm — the soak
// loop drives the coordinator, and every control endpoint lands its action
// inside the owning domain's event loop instead of sim.Inject.
func TestServeShardedFarm(t *testing.T) {
	f, sf := buildShardedFarm(t, 3)
	if f.ExternalShards() != 2 {
		t.Fatalf("external shards: %d", f.ExternalShards())
	}
	ts, _, _ := serveFarm(t, f, 5000)

	// Let the soak make progress across domains.
	deadline := time.Now().Add(10 * time.Second)
	for f.Sim.ObservedNow() < 30*time.Second {
		if time.Now().After(deadline) {
			t.Fatal("sharded soak made no progress")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Policy swap runs inside the subfarm's domain.
	var reply map[string]any
	status := postJSON(t, ts.URL+"/policy",
		map[string]any{"subfarm": "Botfarm", "lo": 16, "hi": 24, "policy": "HardDeny"}, &reply)
	if status != http.StatusOK || reply["applied"] != "policy_swap" {
		t.Fatalf("policy swap on sharded farm: %d %v", status, reply)
	}

	// Chaos inject + stop run inside the subfarm's domain.
	status = postJSON(t, ts.URL+"/chaos",
		map[string]any{"subfarm": "Botfarm", "spec": "loss=0.01"}, &reply)
	if status != http.StatusOK || reply["applied"] != "chaos_inject" {
		t.Fatalf("chaos inject on sharded farm: %d %v", status, reply)
	}
	status = postJSON(t, ts.URL+"/chaos",
		map[string]any{"subfarm": "Botfarm", "stop": true}, &reply)
	if status != http.StatusOK || reply["applied"] != "chaos_stop" {
		t.Fatalf("chaos stop on sharded farm: %d %v", status, reply)
	}

	// Quarantine posts the lifecycle action across the management trunk
	// into the controller's (root) domain.
	status = postJSON(t, ts.URL+"/quarantine/16",
		map[string]any{"subfarm": "Botfarm", "action": "revert"}, &reply)
	if status != http.StatusOK || reply["applied"] != "quarantine" {
		t.Fatalf("quarantine on sharded farm: %d %v", status, reply)
	}
	// An unknown verb must be rejected before crossing domains.
	status = postJSON(t, ts.URL+"/quarantine/16",
		map[string]any{"subfarm": "Botfarm", "action": "defenestrate"}, nil)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("bad quarantine verb: status %d", status)
	}

	// The machines fan-out answers per subfarm (none has raw iron here).
	var machines struct {
		Machines []farm.MachineInfo `json:"machines"`
	}
	if status := getJSON(t, ts.URL+"/machines", &machines); status != http.StatusOK {
		t.Fatalf("machines on sharded farm: status %d", status)
	}

	// Shard utilization is live in /metrics.
	var metrics struct {
		Gauges   map[string]int64  `json:"gauges"`
		Counters map[string]uint64 `json:"counters"`
	}
	if status := getJSON(t, ts.URL+"/metrics?format=json", &metrics); status != http.StatusOK {
		t.Fatalf("metrics on sharded farm: status %d", status)
	}
	if metrics.Counters["sim.rounds"] == 0 {
		t.Fatal("sim.rounds counter not exported on a served sharded soak")
	}
	if _, ok := metrics.Gauges["sim.domains_busy"]; !ok {
		t.Fatal("sim.domains_busy gauge not exported on a served sharded soak")
	}
	if sf.Sim == f.Sim {
		t.Fatal("sharded subfarm shares the root domain")
	}
}

// TestDriverDoAfterStop: control actions fail fast once the soak ended.
func TestDriverDoAfterStop(t *testing.T) {
	f, _, _, _ := buildFarm(t, 3)
	d := ops.NewDriver(f.Sim, 1000)
	go d.Run()
	d.Stop()
	if err := d.Do(time.Second, func() error { return nil }); err != ops.ErrStopped {
		t.Fatalf("Do after Stop: %v", err)
	}
}

// readSSE reads from an SSE endpoint until n data lines or the timeout,
// returning the data payloads.
func readSSE(t *testing.T, url string, n int, timeout time.Duration) []string {
	t.Helper()
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var out []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			out = append(out, strings.TrimPrefix(line, "data: "))
			if len(out) >= n {
				break
			}
		}
	}
	return out
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var sb strings.Builder
	_, err := bufio.NewReader(resp.Body).WriteTo(&sb)
	return sb.String(), err
}
