package dhcp

import (
	"time"

	"gq/internal/host"
	"gq/internal/netstack"
	"gq/internal/sim"
)

const clientRetryInterval = 4 * time.Second

// Client runs the DISCOVER/OFFER/REQUEST/ACK exchange on a host and
// configures its address, router, and DNS from the resulting lease. Inmates
// run this at boot; the resulting "boot-time chatter" is what triggers the
// gateway's dynamic address assignment (§5.3).
type Client struct {
	h       *host.Host
	onBound func(netstack.Addr)
	xid     uint32
	state   int // 0 discovering, 1 requesting, 2 bound
	retry   *sim.Event
	subnet  int
	// Bound reports whether a lease was obtained.
	Bound bool
}

// RunClient starts DHCP configuration on h. onBound fires once the lease is
// installed; it may be nil.
func RunClient(h *host.Host, onBound func(netstack.Addr)) *Client {
	c := &Client{h: h, onBound: onBound, xid: h.Sim().Rand().Uint32()}
	// Replies arrive addressed to 255.255.255.255 before the host has an
	// address, so receive them through the raw hook.
	h.SetRawUDPHook(c.rawUDP)
	c.sendDiscover()
	return c
}

func (c *Client) rawUDP(p *netstack.Packet) bool {
	if p.UDP.DstPort != ClientPort {
		return false
	}
	m, err := Unmarshal(p.Payload)
	if err != nil || m.Op != OpReply || m.XID != c.xid || m.CHAddr != c.h.MAC() {
		return true // consumed but ignored
	}
	switch m.Type() {
	case Offer:
		if c.state != 0 {
			return true
		}
		c.state = 1
		c.sendRequest(m)
	case Ack:
		if c.state != 1 {
			return true
		}
		c.state = 2
		c.Bound = true
		if c.retry != nil {
			c.retry.Cancel()
		}
		bits := 24
		if mask, ok := m.AddrOption(OptSubnetMask); ok {
			bits = maskBits(mask)
		}
		router, _ := m.AddrOption(OptRouter)
		c.h.ConfigureStatic(m.YIAddr, bits, router)
		if dns, ok := m.AddrOption(OptDNS); ok {
			c.h.SetDNS(dns)
		}
		c.h.SetRawUDPHook(nil)
		// Gratuitous ARP so the network learns the new binding.
		c.h.AnnounceARP()
		if c.onBound != nil {
			c.onBound(m.YIAddr)
		}
	case Nak:
		c.state = 0
		c.sendDiscover()
	}
	return true
}

func (c *Client) sendDiscover() {
	m := &Message{Op: OpRequest, XID: c.xid, Flags: BroadcastFlag, CHAddr: c.h.MAC()}
	m.SetType(Discover)
	c.broadcast(m)
	c.armRetry()
}

func (c *Client) sendRequest(offer *Message) {
	m := &Message{Op: OpRequest, XID: c.xid, Flags: BroadcastFlag, CHAddr: c.h.MAC()}
	m.SetType(Request)
	m.SetAddrOption(OptRequestedIP, offer.YIAddr)
	if sid, ok := offer.AddrOption(OptServerID); ok {
		m.SetAddrOption(OptServerID, sid)
	}
	c.broadcast(m)
	c.armRetry()
}

func (c *Client) broadcast(m *Message) {
	// A dedicated ephemeral socket per transmission keeps the host API
	// simple; port 68 is the canonical source.
	sock, err := c.h.ListenUDP(ClientPort, nil)
	if err != nil {
		return
	}
	sock.SendTo(netstack.Addr(0xffffffff), ServerPort, m.Marshal())
	sock.Close()
}

func (c *Client) armRetry() {
	if c.retry != nil {
		c.retry.Cancel()
	}
	c.retry = c.h.Sim().Schedule(clientRetryInterval, func() {
		if c.state == 2 {
			return
		}
		c.state = 0
		c.sendDiscover()
	})
}

func maskBits(mask netstack.Addr) int {
	bits := 0
	for v := uint32(mask); v&0x80000000 != 0; v <<= 1 {
		bits++
	}
	return bits
}
