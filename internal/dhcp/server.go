package dhcp

import (
	"time"

	"gq/internal/host"
	"gq/internal/netstack"
)

// Lease describes an address binding handed to a client.
type Lease struct {
	MAC     netstack.MAC
	Addr    netstack.Addr
	Expires time.Duration // virtual time
}

// ServerConfig configures the pool the server hands out.
type ServerConfig struct {
	Pool       netstack.Prefix // addresses drawn from here
	PoolStart  int             // first host index offered (skip infra addrs)
	Router     netstack.Addr
	DNS        netstack.Addr
	SubnetBits int
	LeaseTime  time.Duration
}

// Server is the inmate network's DHCP service. It is a normal Host
// application bound to UDP port 67.
type Server struct {
	h      *host.Host
	cfg    ServerConfig
	sock   *host.UDPSock
	leases map[netstack.MAC]*Lease
	inUse  map[netstack.Addr]bool
	next   int

	// Served counts DHCPACKs issued.
	Served uint64
}

// NewServer starts a DHCP server on h.
func NewServer(h *host.Host, cfg ServerConfig) (*Server, error) {
	if cfg.LeaseTime <= 0 {
		cfg.LeaseTime = time.Hour
	}
	s := &Server{
		h: h, cfg: cfg,
		leases: make(map[netstack.MAC]*Lease),
		inUse:  make(map[netstack.Addr]bool),
		next:   cfg.PoolStart,
	}
	sock, err := h.ListenUDP(ServerPort, s.handle)
	if err != nil {
		return nil, err
	}
	s.sock = sock
	return s, nil
}

// Leases returns current bindings keyed by MAC.
func (s *Server) Leases() map[netstack.MAC]*Lease { return s.leases }

// ReleaseMAC frees a client's binding, e.g. when an inmate is expired.
func (s *Server) ReleaseMAC(mac netstack.MAC) {
	if l, ok := s.leases[mac]; ok {
		delete(s.inUse, l.Addr)
		delete(s.leases, mac)
	}
}

func (s *Server) handle(src netstack.Addr, srcPort uint16, data []byte) {
	m, err := Unmarshal(data)
	if err != nil || m.Op != OpRequest {
		return
	}
	switch m.Type() {
	case Discover:
		lease := s.leaseFor(m.CHAddr)
		if lease == nil {
			return // pool exhausted
		}
		s.reply(m, Offer, lease.Addr)
	case Request:
		want, _ := m.AddrOption(OptRequestedIP)
		lease := s.leaseFor(m.CHAddr)
		if lease == nil || (want != 0 && want != lease.Addr) {
			s.nak(m)
			return
		}
		lease.Expires = s.h.Sim().Now() + s.cfg.LeaseTime
		s.Served++
		s.reply(m, Ack, lease.Addr)
	case Release:
		s.ReleaseMAC(m.CHAddr)
	}
}

func (s *Server) leaseFor(mac netstack.MAC) *Lease {
	if l, ok := s.leases[mac]; ok {
		return l
	}
	for i := 0; i < s.cfg.Pool.Size(); i++ {
		idx := s.next + i
		if idx >= s.cfg.Pool.Size()-1 { // avoid broadcast addr
			idx = s.cfg.PoolStart + (idx-s.cfg.PoolStart)%(s.cfg.Pool.Size()-1-s.cfg.PoolStart)
		}
		a := s.cfg.Pool.Nth(idx)
		if !s.inUse[a] {
			s.next = idx + 1
			l := &Lease{MAC: mac, Addr: a}
			s.leases[mac] = l
			s.inUse[a] = true
			return l
		}
	}
	return nil
}

func (s *Server) reply(req *Message, typ uint8, yiaddr netstack.Addr) {
	m := &Message{
		Op: OpReply, XID: req.XID, Flags: req.Flags,
		YIAddr: yiaddr, SIAddr: s.h.Addr(), CHAddr: req.CHAddr,
	}
	m.SetType(typ)
	m.SetAddrOption(OptServerID, s.h.Addr())
	m.SetAddrOption(OptSubnetMask, maskAddr(s.cfg.SubnetBits))
	if s.cfg.Router != 0 {
		m.SetAddrOption(OptRouter, s.cfg.Router)
	}
	if s.cfg.DNS != 0 {
		m.SetAddrOption(OptDNS, s.cfg.DNS)
	}
	lease := make([]byte, 4)
	putU32(lease, uint32(s.cfg.LeaseTime/time.Second))
	m.Options[OptLeaseTime] = lease
	s.send(req, m)
}

func (s *Server) nak(req *Message) {
	m := &Message{Op: OpReply, XID: req.XID, Flags: req.Flags, CHAddr: req.CHAddr}
	m.SetType(Nak)
	m.SetAddrOption(OptServerID, s.h.Addr())
	s.send(req, m)
}

func (s *Server) send(req, m *Message) {
	// Clients without an address ask for broadcast replies.
	dst := netstack.Addr(0xffffffff)
	if req.Flags&BroadcastFlag == 0 && req.CIAddr != 0 {
		dst = req.CIAddr
	}
	s.sock.SendTo(dst, ClientPort, m.Marshal())
}

func maskAddr(bits int) netstack.Addr {
	return netstack.Addr(0xffffffff).Mask(bits)
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
