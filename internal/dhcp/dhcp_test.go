package dhcp

import (
	"testing"
	"testing/quick"
	"time"

	"gq/internal/host"
	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/sim"
)

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Op: OpRequest, XID: 0xdeadbeef, Flags: BroadcastFlag,
		CHAddr: netstack.MAC{2, 0, 0, 0, 0, 9},
		YIAddr: netstack.MustParseAddr("10.0.0.23"),
	}
	m.SetType(Discover)
	m.SetAddrOption(OptRequestedIP, netstack.MustParseAddr("10.0.0.23"))
	d, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if d.XID != m.XID || d.Type() != Discover || d.CHAddr != m.CHAddr || d.YIAddr != m.YIAddr {
		t.Fatalf("round trip %+v", d)
	}
	if got, ok := d.AddrOption(OptRequestedIP); !ok || got != m.YIAddr {
		t.Fatalf("requested IP %v %v", got, ok)
	}
}

func TestUnmarshalRejectsJunk(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := Unmarshal(make([]byte, 300)); err == nil {
		t.Error("zero bytes accepted (bad cookie)")
	}
	m := (&Message{Op: OpRequest}).Marshal()
	m[1] = 9 // htype
	if _, err := Unmarshal(m); err == nil {
		t.Error("bad htype accepted")
	}
}

func TestPropertyUnmarshalNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// farmNet wires a DHCP server and n clients onto one broadcast segment.
func farmNet(t *testing.T, s *sim.Simulator, n int) (*Server, []*host.Host) {
	t.Helper()
	sw := netsim.NewSwitch(s, "sw")
	srvHost := host.New(s, "dhcp", netstack.MAC{2, 0, 0, 0, 0, 100})
	netsim.Connect(sw.AddAccessPort("dhcp", 10), srvHost.NIC(), 0)
	srvHost.ConfigureStatic(netstack.MustParseAddr("10.0.0.2"), 16, 0)
	srv, err := NewServer(srvHost, ServerConfig{
		Pool:       netstack.MustParsePrefix("10.0.0.0/16"),
		PoolStart:  16,
		Router:     netstack.MustParseAddr("10.0.0.1"),
		DNS:        netstack.MustParseAddr("10.0.0.3"),
		SubnetBits: 16,
		LeaseTime:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	var clients []*host.Host
	for i := 0; i < n; i++ {
		h := host.New(s, "inmate", netstack.MAC{2, 0, 0, 0, 1, byte(i)})
		netsim.Connect(sw.AddAccessPort("c", 10), h.NIC(), 0)
		clients = append(clients, h)
	}
	return srv, clients
}

func TestClientObtainsLease(t *testing.T) {
	s := sim.New(1)
	srv, clients := farmNet(t, s, 1)
	var bound netstack.Addr
	RunClient(clients[0], func(a netstack.Addr) { bound = a })
	s.RunFor(time.Minute)
	if bound == 0 {
		t.Fatal("client never bound")
	}
	h := clients[0]
	if h.Addr() != bound || h.Gateway() != netstack.MustParseAddr("10.0.0.1") ||
		h.DNS() != netstack.MustParseAddr("10.0.0.3") {
		t.Fatalf("config addr=%v gw=%v dns=%v", h.Addr(), h.Gateway(), h.DNS())
	}
	if srv.Served != 1 {
		t.Errorf("Served = %d", srv.Served)
	}
}

func TestManyClientsGetDistinctAddresses(t *testing.T) {
	s := sim.New(2)
	_, clients := farmNet(t, s, 20)
	for _, c := range clients {
		RunClient(c, nil)
	}
	s.RunFor(time.Minute)
	seen := map[netstack.Addr]bool{}
	for _, c := range clients {
		if c.Addr() == 0 {
			t.Fatal("a client failed to bind")
		}
		if seen[c.Addr()] {
			t.Fatalf("duplicate address %v", c.Addr())
		}
		seen[c.Addr()] = true
	}
}

func TestLeaseStableAcrossRequests(t *testing.T) {
	s := sim.New(1)
	srv, clients := farmNet(t, s, 1)
	RunClient(clients[0], nil)
	s.RunFor(time.Minute)
	first := clients[0].Addr()
	// Same MAC rebooting gets the same address.
	clients[0].Reset()
	RunClient(clients[0], nil)
	s.RunFor(time.Minute)
	if clients[0].Addr() != first {
		t.Fatalf("address changed across reboot: %v -> %v", first, clients[0].Addr())
	}
	// After release, the address can go to someone else.
	srv.ReleaseMAC(clients[0].MAC())
	if len(srv.Leases()) != 0 {
		t.Error("lease not released")
	}
}

func TestClientRetriesWhenServerSlow(t *testing.T) {
	s := sim.New(1)
	// No server at all for 10s, then attach one.
	sw := netsim.NewSwitch(s, "sw")
	h := host.New(s, "inmate", netstack.MAC{2, 0, 0, 0, 1, 1})
	netsim.Connect(sw.AddAccessPort("c", 10), h.NIC(), 0)
	RunClient(h, nil)
	s.RunFor(10 * time.Second)
	if h.Addr() != 0 {
		t.Fatal("bound without server")
	}
	srvHost := host.New(s, "dhcp", netstack.MAC{2, 0, 0, 0, 0, 100})
	netsim.Connect(sw.AddAccessPort("dhcp", 10), srvHost.NIC(), 0)
	srvHost.ConfigureStatic(netstack.MustParseAddr("10.0.0.2"), 16, 0)
	if _, err := NewServer(srvHost, ServerConfig{
		Pool: netstack.MustParsePrefix("10.0.0.0/16"), PoolStart: 16, SubnetBits: 16,
	}); err != nil {
		t.Fatal(err)
	}
	s.RunFor(time.Minute)
	if h.Addr() == 0 {
		t.Fatal("client never recovered after server appeared")
	}
}

func TestPoolExhaustion(t *testing.T) {
	s := sim.New(1)
	sw := netsim.NewSwitch(s, "sw")
	srvHost := host.New(s, "dhcp", netstack.MAC{2, 0, 0, 0, 0, 100})
	netsim.Connect(sw.AddAccessPort("dhcp", 10), srvHost.NIC(), 0)
	srvHost.ConfigureStatic(netstack.MustParseAddr("10.0.0.2"), 29, 0)
	// /29 = 8 addresses, PoolStart 5 → indices 5,6 usable (7 is broadcast).
	if _, err := NewServer(srvHost, ServerConfig{
		Pool: netstack.MustParsePrefix("10.0.0.0/29"), PoolStart: 5, SubnetBits: 29,
	}); err != nil {
		t.Fatal(err)
	}
	var hosts []*host.Host
	for i := 0; i < 4; i++ {
		h := host.New(s, "c", netstack.MAC{2, 0, 0, 0, 2, byte(i)})
		netsim.Connect(sw.AddAccessPort("c", 10), h.NIC(), 0)
		hosts = append(hosts, h)
		RunClient(h, nil)
	}
	s.RunFor(30 * time.Second)
	bound := 0
	for _, h := range hosts {
		if h.Addr() != 0 {
			bound++
		}
	}
	if bound != 2 {
		t.Fatalf("bound %d clients from a 2-address pool", bound)
	}
}
