// Package dhcp implements the subset of RFC 2131 the farm needs: the BOOTP
// wire format with DHCP options, a server (one of GQ's inmate-network
// infrastructure services, §5.3), and a client run by inmates at boot.
// GQ assigns internal addresses dynamically, "triggered by the inmates'
// boot-time chatter", which is exactly the DISCOVER/OFFER/REQUEST/ACK
// exchange implemented here.
package dhcp

import (
	"encoding/binary"
	"fmt"

	"gq/internal/netstack"
)

// UDP ports.
const (
	ServerPort = 67
	ClientPort = 68
)

// Message op codes.
const (
	OpRequest = 1
	OpReply   = 2
)

// DHCP message types (option 53).
const (
	Discover = 1
	Offer    = 2
	Request  = 3
	Ack      = 5
	Nak      = 6
	Release  = 7
)

// Option codes used by the farm.
const (
	OptSubnetMask  = 1
	OptRouter      = 3
	OptDNS         = 6
	OptRequestedIP = 50
	OptLeaseTime   = 51
	OptMessageType = 53
	OptServerID    = 54
	OptEnd         = 255
)

var magicCookie = [4]byte{99, 130, 83, 99}

// Message is a DHCP message. Fixed fields follow the BOOTP layout; Options
// holds raw option bytes keyed by code.
type Message struct {
	Op      uint8
	XID     uint32
	Flags   uint16 // bit 15: broadcast
	CIAddr  netstack.Addr
	YIAddr  netstack.Addr
	SIAddr  netstack.Addr
	GIAddr  netstack.Addr
	CHAddr  netstack.MAC
	Options map[uint8][]byte
}

const fixedLen = 236 // through the BOOTP 'file' field

// BroadcastFlag is the flags value requesting broadcast replies.
const BroadcastFlag uint16 = 0x8000

// Type returns the DHCP message type option, or 0 if absent.
func (m *Message) Type() uint8 {
	if v, ok := m.Options[OptMessageType]; ok && len(v) == 1 {
		return v[0]
	}
	return 0
}

// AddrOption decodes a 4-byte option as an address.
func (m *Message) AddrOption(code uint8) (netstack.Addr, bool) {
	v, ok := m.Options[code]
	if !ok || len(v) != 4 {
		return 0, false
	}
	return netstack.AddrFromSlice(v), true
}

// SetAddrOption stores an address-valued option.
func (m *Message) SetAddrOption(code uint8, a netstack.Addr) {
	b := make([]byte, 4)
	a.Put(b)
	m.setOption(code, b)
}

// SetType stores the message-type option.
func (m *Message) SetType(t uint8) { m.setOption(OptMessageType, []byte{t}) }

func (m *Message) setOption(code uint8, v []byte) {
	if m.Options == nil {
		m.Options = make(map[uint8][]byte)
	}
	m.Options[code] = v
}

// Marshal encodes the message.
func (m *Message) Marshal() []byte {
	b := make([]byte, fixedLen, fixedLen+64)
	b[0] = m.Op
	b[1] = 1 // htype Ethernet
	b[2] = 6 // hlen
	binary.BigEndian.PutUint32(b[4:8], m.XID)
	binary.BigEndian.PutUint16(b[10:12], m.Flags)
	m.CIAddr.Put(b[12:16])
	m.YIAddr.Put(b[16:20])
	m.SIAddr.Put(b[20:24])
	m.GIAddr.Put(b[24:28])
	copy(b[28:34], m.CHAddr[:])
	b = append(b, magicCookie[:]...)
	// Deterministic option order: message type first, then ascending codes.
	emit := func(code uint8) {
		if v, ok := m.Options[code]; ok {
			b = append(b, code, uint8(len(v)))
			b = append(b, v...)
		}
	}
	emit(OptMessageType)
	for code := uint8(1); code < OptEnd; code++ {
		if code != OptMessageType {
			emit(code)
		}
	}
	return append(b, OptEnd)
}

// Unmarshal decodes a DHCP message.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < fixedLen+4 {
		return nil, fmt.Errorf("dhcp: message too short (%d bytes)", len(b))
	}
	m := &Message{Options: make(map[uint8][]byte)}
	m.Op = b[0]
	if b[1] != 1 || b[2] != 6 {
		return nil, fmt.Errorf("dhcp: unsupported hardware type/length")
	}
	m.XID = binary.BigEndian.Uint32(b[4:8])
	m.Flags = binary.BigEndian.Uint16(b[10:12])
	m.CIAddr = netstack.AddrFromSlice(b[12:16])
	m.YIAddr = netstack.AddrFromSlice(b[16:20])
	m.SIAddr = netstack.AddrFromSlice(b[20:24])
	m.GIAddr = netstack.AddrFromSlice(b[24:28])
	copy(m.CHAddr[:], b[28:34])
	if [4]byte(b[fixedLen:fixedLen+4]) != magicCookie {
		return nil, fmt.Errorf("dhcp: bad magic cookie")
	}
	opts := b[fixedLen+4:]
	for len(opts) > 0 {
		code := opts[0]
		if code == OptEnd {
			break
		}
		if code == 0 { // pad
			opts = opts[1:]
			continue
		}
		if len(opts) < 2 || len(opts) < 2+int(opts[1]) {
			return nil, fmt.Errorf("dhcp: truncated option %d", code)
		}
		l := int(opts[1])
		m.Options[code] = append([]byte(nil), opts[2:2+l]...)
		opts = opts[2+l:]
	}
	return m, nil
}
