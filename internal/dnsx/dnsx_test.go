package dnsx

import (
	"testing"
	"testing/quick"
	"time"

	"gq/internal/host"
	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/sim"
)

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		ID: 0xbeef, Response: true, Name: "cc.steephost.net",
		Answers: []netstack.Addr{netstack.MustParseAddr("50.8.207.91")},
		TTL:     300,
	}
	d, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != m.ID || !d.Response || d.Name != m.Name || len(d.Answers) != 1 ||
		d.Answers[0] != m.Answers[0] || d.TTL != 300 {
		t.Fatalf("round trip %+v", d)
	}
}

func TestNameCaseFolding(t *testing.T) {
	m := &Message{ID: 1, Name: "C2.Example.COM"}
	d, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "c2.example.com" {
		t.Fatalf("name %q", d.Name)
	}
}

func TestPropertyUnmarshalNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func dnsNet(t *testing.T, zones map[string]netstack.Addr) (*sim.Simulator, *Server, *host.Host) {
	t.Helper()
	s := sim.New(1)
	sw := netsim.NewSwitch(s, "sw")
	srvHost := host.New(s, "dns", netstack.MAC{2, 0, 0, 0, 0, 3})
	client := host.New(s, "client", netstack.MAC{2, 0, 0, 0, 0, 4})
	netsim.Connect(sw.AddAccessPort("dns", 10), srvHost.NIC(), 0)
	netsim.Connect(sw.AddAccessPort("client", 10), client.NIC(), 0)
	srvHost.ConfigureStatic(netstack.MustParseAddr("10.0.0.3"), 24, 0)
	client.ConfigureStatic(netstack.MustParseAddr("10.0.0.4"), 24, 0)
	srv, err := NewServer(srvHost, zones)
	if err != nil {
		t.Fatal(err)
	}
	return s, srv, client
}

func TestResolve(t *testing.T) {
	cc := netstack.MustParseAddr("50.8.207.91")
	s, srv, client := dnsNet(t, map[string]netstack.Addr{"cc.steephost.net": cc})
	var got []netstack.Addr
	var ok bool
	Resolve(client, netstack.MustParseAddr("10.0.0.3"), "CC.SteepHost.Net",
		func(a []netstack.Addr, o bool) { got, ok = a, o })
	s.RunFor(time.Minute)
	if !ok || len(got) != 1 || got[0] != cc {
		t.Fatalf("resolve got %v ok=%v", got, ok)
	}
	if srv.Queries != 1 || srv.NXDomains != 0 {
		t.Errorf("counters q=%d nx=%d", srv.Queries, srv.NXDomains)
	}
	if len(srv.QueryLog) != 1 || srv.QueryLog[0] != "cc.steephost.net" {
		t.Errorf("query log %v", srv.QueryLog)
	}
}

func TestNXDomain(t *testing.T) {
	s, srv, client := dnsNet(t, nil)
	calls := 0
	var ok bool
	Resolve(client, netstack.MustParseAddr("10.0.0.3"), "dga-a8f2k.biz",
		func(a []netstack.Addr, o bool) { calls++; ok = o })
	s.RunFor(time.Minute)
	if calls != 1 || ok {
		t.Fatalf("calls=%d ok=%v", calls, ok)
	}
	if srv.NXDomains != 1 {
		t.Errorf("NXDomains = %d", srv.NXDomains)
	}
}

func TestWildcard(t *testing.T) {
	sink := netstack.MustParseAddr("10.3.0.9")
	s, _, client := dnsNet(t, map[string]netstack.Addr{"*.spamdomain.com": sink})
	var got []netstack.Addr
	Resolve(client, netstack.MustParseAddr("10.0.0.3"), "mx1.deep.spamdomain.com",
		func(a []netstack.Addr, o bool) { got = a })
	s.RunFor(time.Minute)
	if len(got) != 1 || got[0] != sink {
		t.Fatalf("wildcard got %v", got)
	}
}

func TestResolveTimeout(t *testing.T) {
	s, _, client := dnsNet(t, nil)
	calls := 0
	var ok bool
	// Query a server address that does not exist.
	Resolve(client, netstack.MustParseAddr("10.0.0.99"), "x.com",
		func(a []netstack.Addr, o bool) { calls++; ok = o })
	s.RunFor(time.Minute)
	if calls != 1 || ok {
		t.Fatalf("timeout path calls=%d ok=%v", calls, ok)
	}
}

func TestRuntimeAdd(t *testing.T) {
	s, srv, client := dnsNet(t, nil)
	srv.Add("late.example.com", netstack.MustParseAddr("1.2.3.4"))
	var ok bool
	Resolve(client, netstack.MustParseAddr("10.0.0.3"), "late.example.com",
		func(a []netstack.Addr, o bool) { ok = o })
	s.RunFor(time.Minute)
	if !ok {
		t.Fatal("runtime-added record not served")
	}
}
