package dnsx

import (
	"strings"
	"time"

	"gq/internal/host"
	"gq/internal/netstack"
)

// Server is the farm's recursive-resolver stand-in. It answers from a
// static zone map; unknown names get NXDOMAIN. Wildcards of the form
// "*.example.com" match any subdomain depth.
type Server struct {
	h     *host.Host
	bound *host.UDPSock
	zones map[string]netstack.Addr

	// Queries and NXDomains count lookups for reports and DGA experiments.
	Queries, NXDomains uint64
	// QueryLog records names asked, in order.
	QueryLog []string
}

// NewServer starts a DNS server on h with the given zone data.
func NewServer(h *host.Host, zones map[string]netstack.Addr) (*Server, error) {
	s := &Server{h: h, zones: make(map[string]netstack.Addr, len(zones))}
	for name, addr := range zones {
		s.zones[strings.ToLower(name)] = addr
	}
	sock, err := h.ListenUDP(Port, s.handle)
	if err != nil {
		return nil, err
	}
	s.bound = sock
	return s, nil
}

// Add registers or replaces a record at runtime.
func (s *Server) Add(name string, addr netstack.Addr) {
	s.zones[strings.ToLower(name)] = addr
}

func (s *Server) lookup(name string) (netstack.Addr, bool) {
	if a, ok := s.zones[name]; ok {
		return a, true
	}
	// Wildcard match against successive parent domains.
	rest := name
	for {
		i := strings.IndexByte(rest, '.')
		if i < 0 {
			return 0, false
		}
		rest = rest[i+1:]
		if a, ok := s.zones["*."+rest]; ok {
			return a, true
		}
	}
}

func (s *Server) handle(src netstack.Addr, sport uint16, data []byte) {
	q, err := Unmarshal(data)
	if err != nil || q.Response {
		return
	}
	s.Queries++
	s.QueryLog = append(s.QueryLog, q.Name)
	resp := &Message{ID: q.ID, Response: true, Name: q.Name, TTL: 300}
	if addr, ok := s.lookup(q.Name); ok {
		resp.Answers = []netstack.Addr{addr}
	} else {
		resp.Rcode = RcodeNXDomain
		s.NXDomains++
	}
	s.bound.SendTo(src, sport, resp.Marshal())
}

// resolveTimeout bounds how long a Resolve waits for an answer.
const resolveTimeout = 5 * time.Second

// Resolve sends an A query from h to server and invokes done exactly once
// with the result; ok is false on NXDOMAIN or timeout.
func Resolve(h *host.Host, server netstack.Addr, name string, done func(addrs []netstack.Addr, ok bool)) {
	id := uint16(h.Sim().Rand().Uint32())
	q := &Message{ID: id, Name: strings.ToLower(name)}

	var sock *host.UDPSock
	answered := false
	finish := func(addrs []netstack.Addr, ok bool) {
		if answered {
			return
		}
		answered = true
		sock.Close()
		done(addrs, ok)
	}
	var err error
	sock, err = h.ListenUDP(0, func(src netstack.Addr, sport uint16, data []byte) {
		if src != server || sport != Port {
			return
		}
		m, err := Unmarshal(data)
		if err != nil || !m.Response || m.ID != id {
			return
		}
		finish(m.Answers, m.Rcode == RcodeNoError && len(m.Answers) > 0)
	})
	if err != nil {
		done(nil, false)
		return
	}
	h.Sim().Schedule(resolveTimeout, func() { finish(nil, false) })
	sock.SendTo(server, Port, q.Marshal())
}
