// Package dnsx implements the slice of DNS the farm needs: the RFC 1035
// wire format for A-record queries, a recursive-resolver stand-in served on
// the inmate network (§5.3), and a client helper. Malware that locates its
// C&C via DNS — including domain-generation algorithms probing for
// registered names — exercises this service.
package dnsx

import (
	"encoding/binary"
	"fmt"
	"strings"

	"gq/internal/netstack"
)

// Port is the DNS service port.
const Port = 53

// Query/response codes.
const (
	RcodeNoError  = 0
	RcodeNXDomain = 3

	TypeA   = 1
	ClassIN = 1
)

// Message is a DNS message restricted to a single question plus A answers.
type Message struct {
	ID       uint16
	Response bool
	Rcode    uint8
	Name     string // question name, lower-case, no trailing dot
	Answers  []netstack.Addr
	TTL      uint32
}

// Marshal encodes the message (question section always present).
func (m *Message) Marshal() []byte {
	b := make([]byte, 0, 64)
	b = binary.BigEndian.AppendUint16(b, m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15 // QR
		flags |= 1 << 7  // RA
	}
	flags |= 1 << 8 // RD
	flags |= uint16(m.Rcode) & 0xf
	b = binary.BigEndian.AppendUint16(b, flags)
	b = binary.BigEndian.AppendUint16(b, 1)                      // QDCOUNT
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Answers))) // ANCOUNT
	b = binary.BigEndian.AppendUint16(b, 0)                      // NSCOUNT
	b = binary.BigEndian.AppendUint16(b, 0)                      // ARCOUNT
	b = appendName(b, m.Name)
	b = binary.BigEndian.AppendUint16(b, TypeA)
	b = binary.BigEndian.AppendUint16(b, ClassIN)
	for _, a := range m.Answers {
		b = appendName(b, m.Name) // no compression; repeat the name
		b = binary.BigEndian.AppendUint16(b, TypeA)
		b = binary.BigEndian.AppendUint16(b, ClassIN)
		b = binary.BigEndian.AppendUint32(b, m.TTL)
		b = binary.BigEndian.AppendUint16(b, 4)
		b = binary.BigEndian.AppendUint32(b, uint32(a))
	}
	return b
}

func appendName(b []byte, name string) []byte {
	for _, label := range strings.Split(name, ".") {
		if label == "" {
			continue
		}
		if len(label) > 63 {
			label = label[:63]
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0)
}

// Unmarshal decodes a message produced by Marshal (no compression support,
// which is fine: both ends are ours).
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("dnsx: message too short")
	}
	m := &Message{}
	m.ID = binary.BigEndian.Uint16(b[0:2])
	flags := binary.BigEndian.Uint16(b[2:4])
	m.Response = flags&(1<<15) != 0
	m.Rcode = uint8(flags & 0xf)
	qd := binary.BigEndian.Uint16(b[4:6])
	an := binary.BigEndian.Uint16(b[6:8])
	if qd != 1 {
		return nil, fmt.Errorf("dnsx: want exactly one question, got %d", qd)
	}
	off := 12
	name, off, err := readName(b, off)
	if err != nil {
		return nil, err
	}
	m.Name = name
	if len(b) < off+4 {
		return nil, fmt.Errorf("dnsx: truncated question")
	}
	off += 4 // qtype + qclass
	for i := 0; i < int(an); i++ {
		_, o, err := readName(b, off)
		if err != nil {
			return nil, err
		}
		off = o
		if len(b) < off+10 {
			return nil, fmt.Errorf("dnsx: truncated answer")
		}
		typ := binary.BigEndian.Uint16(b[off : off+2])
		m.TTL = binary.BigEndian.Uint32(b[off+4 : off+8])
		rdlen := int(binary.BigEndian.Uint16(b[off+8 : off+10]))
		off += 10
		if len(b) < off+rdlen {
			return nil, fmt.Errorf("dnsx: truncated rdata")
		}
		if typ == TypeA && rdlen == 4 {
			m.Answers = append(m.Answers, netstack.AddrFromSlice(b[off:off+4]))
		}
		off += rdlen
	}
	return m, nil
}

func readName(b []byte, off int) (string, int, error) {
	var labels []string
	for {
		if off >= len(b) {
			return "", 0, fmt.Errorf("dnsx: truncated name")
		}
		l := int(b[off])
		off++
		if l == 0 {
			break
		}
		if l > 63 || off+l > len(b) {
			return "", 0, fmt.Errorf("dnsx: bad label")
		}
		labels = append(labels, string(b[off:off+l]))
		off += l
	}
	return strings.ToLower(strings.Join(labels, ".")), off, nil
}
