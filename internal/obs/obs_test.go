package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x.y")
	b := r.Counter("x.y")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	b.Add(2)
	if a.Value() != 3 {
		t.Fatalf("shared counter value %d", a.Value())
	}
	g := r.Gauge("x.g")
	if r.Gauge("x.g") != g {
		t.Fatal("same name returned distinct gauges")
	}
	h := r.Histogram("x.h", 10, 20)
	if r.Histogram("x.h", 10, 20) != h {
		t.Fatal("same name returned distinct histograms")
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("cross-kind registration did not panic")
		}
	}()
	r.Gauge("dual")
}

func TestHistogramBoundMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", 1, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("bound mismatch did not panic")
		}
	}()
	r.Histogram("h", 1, 2)
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 10, 100)
	for _, v := range []int64{5, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	snap := r.Snapshot(0).Histograms["lat"]
	if snap.Count != 6 {
		t.Fatalf("count %d", snap.Count)
	}
	// Inclusive upper bounds: 5,10 <= 10; 11,100 <= 100; 101,5000 overflow.
	want := []uint64{2, 2, 2}
	for i, n := range want {
		if snap.Buckets[i] != n {
			t.Fatalf("bucket %d = %d want %d", i, snap.Buckets[i], n)
		}
	}
	if snap.Sum != 5+10+11+100+101+5000 {
		t.Fatalf("sum %d", snap.Sum)
	}
}

func TestSnapshotAccessorsAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(-4)
	snap := r.Snapshot(3 * time.Second)
	if snap.Counter("c") != 7 || snap.Counter("absent") != 0 {
		t.Fatal("counter accessor")
	}
	if snap.Gauge("g") != -4 {
		t.Fatal("gauge accessor")
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		SimTimeNS int64             `json:"sim_time_ns"`
		Counters  map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.SimTimeNS != int64(3*time.Second) || decoded.Counters["c"] != 7 {
		t.Fatalf("decoded %+v", decoded)
	}
	var text strings.Builder
	snap.WriteText(&text)
	if !strings.Contains(text.String(), "c") || !strings.Contains(text.String(), "7") {
		t.Fatalf("text table: %s", text.String())
	}
}

func TestScopeRingWrapAndDump(t *testing.T) {
	clock := time.Duration(0)
	j := NewJournal(func() time.Duration { return clock })
	sc := j.Scope("sf", 4)
	for i := 1; i <= 6; i++ {
		clock = time.Duration(i) * time.Second
		sc.Emit(Event{Type: EvFlowCreated, N: uint64(i)})
	}
	if sc.Len() != 4 {
		t.Fatalf("ring length %d", sc.Len())
	}
	d := sc.Dump("test")
	if len(d.Events) != 4 {
		t.Fatalf("dump %d events", len(d.Events))
	}
	// Oldest first: events 3,4,5,6 survived the wrap.
	for i, e := range d.Events {
		if e.N != uint64(i+3) {
			t.Fatalf("event %d has N=%d", i, e.N)
		}
		if e.Scope != "sf" {
			t.Fatalf("scope not stamped: %+v", e)
		}
	}
	if got := j.Dumps(); len(got) != 1 || got[0].Reason != "test" {
		t.Fatalf("retained dumps %+v", got)
	}
}

func TestDumpRetentionBounded(t *testing.T) {
	j := NewJournal(nil)
	sc := j.Scope("s", 2)
	sc.Emit(Event{Type: EvFlowCreated})
	for i := 0; i < DefaultMaxDumps+10; i++ {
		sc.Dump("storm")
	}
	if n := len(j.Dumps()); n != DefaultMaxDumps {
		t.Fatalf("retained %d dumps, cap %d", n, DefaultMaxDumps)
	}
	if n := j.EvictedDumps(); n != 10 {
		t.Fatalf("evicted %d dumps, want 10", n)
	}
}

// TestDumpRetentionConfigurable exercises the soak-tuned cap: newest
// dumps survive, older ones are evicted and counted, and shrinking the
// cap mid-run trims immediately.
func TestDumpRetentionConfigurable(t *testing.T) {
	j := NewJournal(nil)
	j.SetMaxDumps(4)
	sc := j.Scope("s", 2)
	sc.Emit(Event{Type: EvFlowCreated})
	for i := 0; i < 10; i++ {
		sc.Dump(string(rune('a' + i)))
	}
	got := j.Dumps()
	if len(got) != 4 {
		t.Fatalf("retained %d dumps, cap 4", len(got))
	}
	for i, d := range got {
		if want := string(rune('a' + 6 + i)); d.Reason != want {
			t.Fatalf("dump %d reason %q, want %q (newest-N retention)", i, d.Reason, want)
		}
	}
	if n := j.EvictedDumps(); n != 6 {
		t.Fatalf("evicted %d, want 6", n)
	}
	j.SetMaxDumps(2)
	if n := len(j.Dumps()); n != 2 {
		t.Fatalf("after shrink: %d dumps, want 2", n)
	}
	if n := j.EvictedDumps(); n != 8 {
		t.Fatalf("after shrink: evicted %d, want 8", n)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := HistogramSnapshot{
		Count:   100,
		Bounds:  []int64{10, 100, 1000},
		Buckets: []uint64{50, 30, 20, 0},
	}
	// p50: the 50th observation closes the first bucket → 10.
	if got := h.Quantile(0.50); got != 10 {
		t.Fatalf("p50 = %v, want 10", got)
	}
	// p80: rank 80 closes the second bucket → 100.
	if got := h.Quantile(0.80); got != 100 {
		t.Fatalf("p80 = %v, want 100", got)
	}
	// p65: rank 65 is halfway through the 30-wide second bucket (10..100).
	if got := h.Quantile(0.65); got != 55 {
		t.Fatalf("p65 = %v, want 55", got)
	}
	// p99: rank 99 interpolates inside the third bucket (100..1000).
	if got := h.Quantile(0.99); got != 100+900*0.95 {
		t.Fatalf("p99 = %v", got)
	}
	// Overflow-bucket quantile clamps to the last finite bound.
	over := HistogramSnapshot{Count: 10, Bounds: []int64{10}, Buckets: []uint64{2, 8}}
	if got := over.Quantile(0.99); got != 10 {
		t.Fatalf("overflow p99 = %v, want 10", got)
	}
	// Empty histogram.
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
}

func TestWriteTextShowsQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 10, 100)
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	var b strings.Builder
	if err := r.Snapshot(0).WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "p50=") || !strings.Contains(b.String(), "p99=") {
		t.Fatalf("telemetry table lacks quantiles: %s", b.String())
	}
}

func TestNDJSONSink(t *testing.T) {
	clock := 1500 * time.Millisecond
	j := NewJournal(func() time.Duration { return clock })
	j.Epoch = time.Date(2011, 11, 2, 0, 0, 0, 0, time.UTC)
	j.SetVerdictNamer(func(v uint32) string { return "VERDICT" })
	var buf bytes.Buffer
	sink := j.AttachNDJSON(&buf)
	sc := j.Scope("sf", 4)
	sc.Emit(Event{
		Type: EvFlowVerdict, VLAN: 16, Proto: 6,
		SrcIP: 0x0a000010, SrcPort: 1234, DstIP: 0x08080808, DstPort: 25,
		Verdict: 4, Detail: "Rustock",
	})
	sc.Emit(Event{Type: EvSweepReaped, N: 3})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines %d: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line not valid JSON: %v\n%s", err, lines[0])
	}
	if rec["type"] != "flow.verdict" || rec["vlan"] != float64(16) ||
		rec["proto"] != "tcp" || rec["src"] != "10.0.0.16:1234" ||
		rec["dst"] != "8.8.8.8:25" || rec["verdict"] != "VERDICT" ||
		rec["detail"] != "Rustock" {
		t.Fatalf("decoded %+v", rec)
	}
	if rec["wall"] != "2011-11-02T00:00:01.500000Z" {
		t.Fatalf("wall %v", rec["wall"])
	}
	var reap map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &reap); err != nil {
		t.Fatal(err)
	}
	if reap["n"] != float64(3) || reap["type"] != "sweep.reaped" {
		t.Fatalf("decoded %+v", reap)
	}
}

func TestWriteDump(t *testing.T) {
	j := NewJournal(nil)
	sc := j.Scope("sf", 4)
	sc.Emit(Event{Type: EvTriggerFired, VLAN: 17, Detail: "revert"})
	d := sc.Dump("trigger fired")
	var buf bytes.Buffer
	if err := j.WriteDump(&buf, d); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump lines %d", len(lines))
	}
	var head map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &head); err != nil {
		t.Fatal(err)
	}
	if head["flight_recorder"] != "sf" || head["reason"] != "trigger fired" || head["events"] != float64(1) {
		t.Fatalf("header %+v", head)
	}
}

func TestOnDumpCallback(t *testing.T) {
	j := NewJournal(nil)
	var got []*Dump
	j.SetOnDump(func(d *Dump) { got = append(got, d) })
	sc := j.Scope("s", 2)
	sc.Emit(Event{Type: EvFlowCreated})
	sc.Dump("why")
	if len(got) != 1 || got[0].Reason != "why" {
		t.Fatalf("callback saw %+v", got)
	}
}

// TestConcurrentCountersAndSnapshot exercises the advertised concurrency
// contract under -race: many writers bump metrics while another goroutine
// snapshots.
func TestConcurrentCountersAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", 10, 100)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 200))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			snap := r.Snapshot(0)
			if snap.Counter("c") > 4000 {
				t.Error("counter overshot")
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 4000 {
		t.Fatalf("final counter %d", c.Value())
	}
}
