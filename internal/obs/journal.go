package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Event types recorded by the farm. The set is small and closed on purpose:
// each names an operationally meaningful state change, not a packet.
const (
	EvFlowCreated  = "flow.created"        // gateway admitted a new flow into the table
	EvFlowVerdict  = "flow.verdict"        // containment server's verdict applied to a flow
	EvFlowClosed   = "flow.closed"         // flow left the table (Detail = reason)
	EvTriggerFired = "policy.trigger_fired" // a containment trigger's action fired
	EvNATExhausted = "nat.exhausted"       // NAT pool had no free address for an inmate
	EvFlowShed     = "flow.shed"           // bounded flow table evicted an LRU flow under pressure
	EvSweepReaped  = "sweep.reaped"        // periodic sweep reaped stale flows (N = count)
	// EvFlowFailClosed marks a flow resolved fail-closed: its containment
	// server died (or stalled past AwaitVerdictTimeout) before delivering a
	// verdict, so the gateway recorded a synthetic Drop and RST both legs.
	// Distinct from EvFlowVerdict — no verdict crossed the wire.
	EvFlowFailClosed = "flow.failclosed"
	EvGRETunnelUp  = "gre.tunnel_up"       // first packet through a GRE tunnel endpoint
	// EvGRETunnelDown is reserved: tunnels currently live for the whole
	// experiment, so nothing emits it yet, but consumers should treat it
	// as part of the vocabulary.
	EvGRETunnelDown = "gre.tunnel_down"
	// EvInmatePrefix prefixes inmate lifecycle actions driven by triggers
	// or the operator: "inmate.revert", "inmate.reboot", "inmate.terminate".
	EvInmatePrefix = "inmate."
	// EvChaosPrefix prefixes fault-injection actions from internal/chaos:
	// "chaos.link_down", "chaos.link_up", "chaos.cs_crash",
	// "chaos.cs_restart", "chaos.verdict_stall", "chaos.sink_down",
	// "chaos.sink_up".
	EvChaosPrefix = "chaos."
	// EvSupervisorPrefix prefixes containment-plane supervision actions
	// from internal/supervisor: "supervisor.cs_down", "supervisor.cs_up",
	// "supervisor.cs_restart", "supervisor.cs_quarantine",
	// "supervisor.inmate_quarantine".
	EvSupervisorPrefix = "supervisor."
	// EvFacadeEcho records one blocking-facade echo round trip from the
	// farm's facade self-test pair (N = round, Verdict 0 ok / 1 failed).
	EvFacadeEcho = "facade.echo"
	// EvOpsPrefix prefixes operator control actions applied through the
	// live ops plane (internal/ops): "ops.policy_swap", "ops.chaos_inject",
	// "ops.chaos_stop", "ops.quarantine". Each is emitted from inside the
	// injected sim event that applies the action, so served runs stay
	// journal-consistent — the journal records operator intervention in
	// the same total order as everything else.
	EvOpsPrefix = "ops."
	// EvOpsPolicySwap records a mid-run containment-policy swap
	// (VLAN = lo, N = hi, Detail = policy name).
	EvOpsPolicySwap = EvOpsPrefix + "policy_swap"
	// EvOpsChaosInject / EvOpsChaosStop bracket an operator-injected chaos
	// profile (Detail = profile spec / name).
	EvOpsChaosInject = EvOpsPrefix + "chaos_inject"
	EvOpsChaosStop   = EvOpsPrefix + "chaos_stop"
	// EvOpsQuarantine records an operator lifecycle action on one inmate
	// (VLAN = inmate, Detail = action verb).
	EvOpsQuarantine = EvOpsPrefix + "quarantine"
	// EvOpsRecycle records an operator-forced recycle of one raw-iron
	// inmate (VLAN = inmate): the recycling pipeline pulls it out of its
	// detonation window immediately.
	EvOpsRecycle = EvOpsPrefix + "recycle"
	// EvOpsLockdown records an operator lockdown engage/release (Detail =
	// "<scope> on <reason>" / "<scope> off <reason>", scope "global" or a
	// subfarm name).
	EvOpsLockdown = EvOpsPrefix + "lockdown"
	// EvRawIronPrefix prefixes raw-iron lifecycle events from
	// internal/rawiron, journalled per machine under the "rawiron.<machine>"
	// scope: "rawiron.op_start", "rawiron.fault", "rawiron.retry",
	// "rawiron.queued", "rawiron.quarantine", "rawiron.readmit",
	// "rawiron.op_done".
	EvRawIronPrefix = "rawiron."
	// EvLifecyclePrefix prefixes specimen-recycling pipeline events from
	// the farm recycler, journalled under "lifecycle.<subfarm>":
	// "lifecycle.detonate", "lifecycle.capture", "lifecycle.reimage",
	// "lifecycle.recycled", "lifecycle.lost".
	EvLifecyclePrefix = "lifecycle."
)

// Event is one journal record. It is a fixed-size value type: emitting one
// copies it into the scope's preallocated ring and (optionally) hands a
// copy to the sink, so the hot path never allocates. String fields must
// reference strings that already exist (constants, policy names, reasons) —
// never build a string to put in an Event on the datapath.
type Event struct {
	T     time.Duration // virtual sim-time stamp
	Type  string        // one of the Ev* constants
	Scope string        // originating scope (subfarm name, "gw", ...)

	VLAN             uint16
	Proto            uint8 // IP protocol (6 tcp, 17 udp), 0 if n/a
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Verdict          uint32 // raw shim verdict bits, 0 if n/a
	N                uint64 // generic magnitude (reap count, ...)
	Detail           string // policy name, close reason, action, ...
}

// Sink receives every journalled event. WriteEvent takes the event by
// value: a pointer signature would force each Event to escape to the heap
// even when no sink is attached.
type Sink interface {
	WriteEvent(e Event) error
}

// DefaultRingSize is the per-scope flight-recorder depth.
const DefaultRingSize = 256

// DefaultMaxDumps bounds the dumps a Journal retains so a trigger storm —
// or an indefinite served soak — cannot grow memory without bound. The
// newest dumps are kept; evictions are counted (EvictedDumps). Tune with
// SetMaxDumps.
const DefaultMaxDumps = 32

// Journal owns the farm's event scopes. Emission is single-threaded per
// scope (each scope belongs to one simulation domain's goroutine); the
// mutex only guards scope/dump bookkeeping so that dump inspection from
// another goroutine is safe.
type Journal struct {
	clock func() time.Duration

	// Epoch, when nonzero, adds a wall-clock rendering of each event's
	// virtual timestamp to serialized records (sim.Epoch for the farm).
	// Stamping itself always uses virtual time — see DESIGN.md §Telemetry.
	Epoch time.Time

	// parallel switches emission from write-through (stamp, ring, sink)
	// to per-stream buffering merged by FlushOrdered. Set once at
	// coordinator construction, before any domain goroutine starts, and
	// never cleared — safe to read without synchronization.
	parallel bool

	mu          sync.Mutex
	sink        Sink
	streams     []*Stream
	scopes      map[string]*Scope
	order       []string
	dumps       []*Dump
	maxDumps    int
	evicted     uint64
	onDump      func(*Dump)
	verdictName func(uint32) string

	// Emitted counts events written to the journal (all scopes). In
	// parallel mode buffered events are counted when FlushOrdered merges
	// them, keeping the total identical to a serial run's at flush points.
	Emitted uint64
}

// NewJournal creates a journal stamping events with clock.
func NewJournal(clock func() time.Duration) *Journal {
	if clock == nil {
		clock = func() time.Duration { return 0 }
	}
	j := &Journal{clock: clock, scopes: make(map[string]*Scope), maxDumps: DefaultMaxDumps}
	// Stream 0 is the root domain's: scopes created via Journal.Scope
	// bind to it and stamp with the journal's own clock.
	j.streams = []*Stream{{j: j, shard: 0, clock: clock}}
	return j
}

// Stream is one simulation domain's emission context: its shard id, its
// domain clock, and — in parallel mode — a buffer of events awaiting the
// deterministic merge. Each stream is written by exactly one goroutine at
// a time (its domain's), so no locking is needed on the emit path.
type Stream struct {
	j     *Journal
	shard int
	clock func() time.Duration
	seq   uint64
	buf   []bufferedEvent
}

// bufferedEvent tags a parallel-mode event with its merge key. Events are
// merged by (T, shard, seq): virtual time first, then shard id, then the
// stream-local emission sequence — a unique total order reproduced exactly
// for a given seed regardless of how many workers ran the domains.
type bufferedEvent struct {
	e     Event
	shard int
	seq   uint64
}

// NewStream registers a new emission stream (one per simulation domain)
// stamping events with the domain's clock. Stream 0 always exists and is
// the journal's own.
func (j *Journal) NewStream(clock func() time.Duration) *Stream {
	if clock == nil {
		clock = func() time.Duration { return 0 }
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &Stream{j: j, shard: len(j.streams), clock: clock}
	j.streams = append(j.streams, st)
	return st
}

// SetParallel switches the journal into buffered multi-domain mode. Must be
// called before any domain goroutine emits; it is one-way for the journal's
// lifetime.
func (j *Journal) SetParallel() { j.parallel = true }

// FlushOrdered merges every stream's buffered events into the journal's
// total order — (T, shard, seq) — and writes them through to the sink.
// Call only while all domains are quiesced (between coordinator windows or
// after a run). No-op outside parallel mode.
func (j *Journal) FlushOrdered() {
	if !j.parallel {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, st := range j.streams {
		n += len(st.buf)
	}
	if n == 0 {
		return
	}
	all := make([]bufferedEvent, 0, n)
	for _, st := range j.streams {
		all = append(all, st.buf...)
		st.buf = st.buf[:0]
	}
	sort.Slice(all, func(i, k int) bool {
		if all[i].e.T != all[k].e.T {
			return all[i].e.T < all[k].e.T
		}
		if all[i].shard != all[k].shard {
			return all[i].shard < all[k].shard
		}
		return all[i].seq < all[k].seq
	})
	j.Emitted += uint64(len(all))
	if j.sink == nil {
		return
	}
	for _, be := range all {
		_ = j.sink.WriteEvent(be.e)
	}
}

// SetSink installs the event sink (nil to detach). Events emitted with no
// sink still land in the flight recorder.
func (j *Journal) SetSink(s Sink) {
	j.mu.Lock()
	j.sink = s
	j.mu.Unlock()
}

// Sink returns the installed event sink, nil when detached. The serve
// path uses it to interpose a Fanout over an already-attached NDJSON sink.
func (j *Journal) Sink() Sink {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sink
}

// SetVerdictNamer installs the function used to render Event.Verdict bits
// symbolically during serialization. Kept out of Event emission so the
// datapath never pays for verdict formatting.
func (j *Journal) SetVerdictNamer(fn func(uint32) string) {
	j.mu.Lock()
	j.verdictName = fn
	j.mu.Unlock()
}

// SetOnDump installs a callback invoked each time a flight-recorder dump is
// taken (trigger fired, verify failed). The callback runs on the dumping
// goroutine — typically the simulator loop — so it must not block.
func (j *Journal) SetOnDump(fn func(*Dump)) {
	j.mu.Lock()
	j.onDump = fn
	j.mu.Unlock()
}

// Scope returns the named scope, creating it with the given ring depth on
// first use (DefaultRingSize if ring <= 0). Idempotent: later calls ignore
// ring and return the existing scope. Scopes created this way emit on the
// root stream; domain-local scopes come from Stream.Scope (via Obs.Scope).
func (j *Journal) Scope(name string, ring int) *Scope {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.scopeOn(j.streams[0], name, ring)
}

// Scope returns the named scope bound to this stream, creating it on first
// use. Idempotent by name across the whole journal: a scope keeps the
// stream it was first created on.
func (st *Stream) Scope(name string, ring int) *Scope {
	st.j.mu.Lock()
	defer st.j.mu.Unlock()
	return st.j.scopeOn(st, name, ring)
}

// scopeOn creates or returns a scope; callers hold j.mu.
func (j *Journal) scopeOn(st *Stream, name string, ring int) *Scope {
	if sc, ok := j.scopes[name]; ok {
		return sc
	}
	if ring <= 0 {
		ring = DefaultRingSize
	}
	sc := &Scope{Name: name, j: j, stream: st, ring: make([]Event, ring)}
	j.scopes[name] = sc
	j.order = append(j.order, name)
	return sc
}

// Scopes returns all scopes in creation order.
func (j *Journal) Scopes() []*Scope {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]*Scope, 0, len(j.order))
	for _, name := range j.order {
		out = append(out, j.scopes[name])
	}
	return out
}

// DumpScope snapshots one scope's flight recorder. Returns nil for an
// unknown scope.
func (j *Journal) DumpScope(name, reason string) *Dump {
	j.mu.Lock()
	sc := j.scopes[name]
	j.mu.Unlock()
	if sc == nil {
		return nil
	}
	return sc.Dump(reason)
}

// DumpAll snapshots every scope's flight recorder.
func (j *Journal) DumpAll(reason string) []*Dump {
	out := make([]*Dump, 0, len(j.order))
	for _, sc := range j.Scopes() {
		out = append(out, sc.Dump(reason))
	}
	return out
}

// Dumps returns the retained flight-recorder dumps, oldest first.
func (j *Journal) Dumps() []*Dump {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]*Dump(nil), j.dumps...)
}

// SetMaxDumps bounds the retained flight-recorder dumps (keep newest n;
// n <= 0 restores DefaultMaxDumps). A long-lived served soak keeps its
// telemetry memory bounded however many dumps fire.
func (j *Journal) SetMaxDumps(n int) {
	if n <= 0 {
		n = DefaultMaxDumps
	}
	j.mu.Lock()
	j.maxDumps = n
	if excess := len(j.dumps) - n; excess > 0 {
		j.dumps = append([]*Dump(nil), j.dumps[excess:]...)
		j.evicted += uint64(excess)
	}
	j.mu.Unlock()
}

// EvictedDumps reports how many retained dumps the cap has evicted since
// the journal was created. Safe from any goroutine.
func (j *Journal) EvictedDumps() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.evicted
}

func (j *Journal) retain(d *Dump) {
	j.mu.Lock()
	j.dumps = append(j.dumps, d)
	if excess := len(j.dumps) - j.maxDumps; excess > 0 {
		j.dumps = j.dumps[excess:]
		j.evicted += uint64(excess)
	}
	fn := j.onDump
	j.mu.Unlock()
	if fn != nil {
		fn(d)
	}
}

// Scope is one flight-recorder ring plus an emission point. All emission
// happens on the owning domain's goroutine; Dump may be called from it too
// (the mutex in Journal covers retained-dump bookkeeping).
type Scope struct {
	Name string

	j      *Journal
	stream *Stream
	ring   []Event
	head   int // next write position
	n      int // events ever written (min(n, len(ring)) are live)
}

// Emit stamps the event with the owning domain's current virtual time and
// this scope's name, records it in the ring, and forwards it to the
// journal's sink if one is attached (or, in parallel mode, to the stream's
// merge buffer). Allocation-free when e.Detail references an existing
// string and no sink is attached.
func (sc *Scope) Emit(e Event) {
	st := sc.stream
	e.T = st.clock()
	e.Scope = sc.Name
	sc.ring[sc.head] = e
	sc.head++
	if sc.head == len(sc.ring) {
		sc.head = 0
	}
	sc.n++
	if sc.j.parallel {
		st.buf = append(st.buf, bufferedEvent{e: e, shard: st.shard, seq: st.seq})
		st.seq++
		return
	}
	sc.j.Emitted++
	if s := sc.j.sink; s != nil {
		_ = s.WriteEvent(e)
	}
}

// Len returns the number of events currently held in the ring.
func (sc *Scope) Len() int {
	if sc.n < len(sc.ring) {
		return sc.n
	}
	return len(sc.ring)
}

// Dump copies the ring's live events (oldest first) into a retained Dump
// and fires the journal's on-dump callback.
func (sc *Scope) Dump(reason string) *Dump {
	live := sc.Len()
	evs := make([]Event, 0, live)
	start := 0
	if sc.n >= len(sc.ring) {
		start = sc.head
	}
	for i := 0; i < live; i++ {
		evs = append(evs, sc.ring[(start+i)%len(sc.ring)])
	}
	d := &Dump{Scope: sc.Name, Reason: reason, At: sc.stream.clock(), Events: evs}
	sc.j.retain(d)
	return d
}

// Dump is a flight-recorder snapshot: the last events seen by one scope at
// the moment something went wrong.
type Dump struct {
	Scope  string
	Reason string
	At     time.Duration
	Events []Event
}

// WriteDump serializes a dump as NDJSON: a header line, then one line per
// event, using the journal's epoch and verdict namer.
func (j *Journal) WriteDump(w io.Writer, d *Dump) error {
	j.mu.Lock()
	epoch, vn := j.Epoch, j.verdictName
	j.mu.Unlock()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `{"flight_recorder":%s,"reason":%s,"t_ns":%d,"events":%d}`+"\n",
		strconv.Quote(d.Scope), strconv.Quote(d.Reason), int64(d.At), len(d.Events))
	var buf []byte
	for _, e := range d.Events {
		buf = appendEventJSON(buf[:0], e, epoch, vn)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// RenderEvent appends one event's JSON line (newline-terminated, same
// rendering as the NDJSON stream: journal epoch, symbolic verdicts) to dst
// and returns it. Unlike the emit path it takes the journal lock, so it is
// safe from any goroutine — the ops plane's SSE encoder uses it.
func (j *Journal) RenderEvent(dst []byte, e Event) []byte {
	j.mu.Lock()
	epoch, vn := j.Epoch, j.verdictName
	j.mu.Unlock()
	return appendEventJSON(dst, e, epoch, vn)
}

// NDJSONSink streams events as newline-delimited JSON. Not safe for
// concurrent use; the farm emits from the single simulator goroutine.
type NDJSONSink struct {
	w       *bufio.Writer
	epoch   time.Time
	verdict func(uint32) string
	buf     []byte
}

// AttachNDJSON creates an NDJSON sink rendering with the journal's current
// epoch and verdict namer, and installs it as the journal's sink. Call
// Flush on the returned sink before closing the underlying writer.
func (j *Journal) AttachNDJSON(w io.Writer) *NDJSONSink {
	j.mu.Lock()
	s := &NDJSONSink{w: bufio.NewWriter(w), epoch: j.Epoch, verdict: j.verdictName}
	j.sink = s
	j.mu.Unlock()
	return s
}

// WriteEvent implements Sink.
func (s *NDJSONSink) WriteEvent(e Event) error {
	s.buf = appendEventJSON(s.buf[:0], e, s.epoch, s.verdict)
	_, err := s.w.Write(s.buf)
	return err
}

// Flush drains buffered output to the underlying writer.
func (s *NDJSONSink) Flush() error { return s.w.Flush() }

// appendEventJSON renders one event as a single JSON line. Zero-valued
// optional fields are omitted so journals stay skimmable.
func appendEventJSON(b []byte, e Event, epoch time.Time, verdictName func(uint32) string) []byte {
	b = append(b, `{"t_ns":`...)
	b = strconv.AppendInt(b, int64(e.T), 10)
	if !epoch.IsZero() {
		b = append(b, `,"wall":"`...)
		b = epoch.Add(e.T).UTC().AppendFormat(b, "2006-01-02T15:04:05.000000Z")
		b = append(b, '"')
	}
	b = append(b, `,"type":`...)
	b = strconv.AppendQuote(b, e.Type)
	if e.Scope != "" {
		b = append(b, `,"scope":`...)
		b = strconv.AppendQuote(b, e.Scope)
	}
	if e.VLAN != 0 {
		b = append(b, `,"vlan":`...)
		b = strconv.AppendUint(b, uint64(e.VLAN), 10)
	}
	switch e.Proto {
	case 0:
	case 6:
		b = append(b, `,"proto":"tcp"`...)
	case 17:
		b = append(b, `,"proto":"udp"`...)
	case 1:
		b = append(b, `,"proto":"icmp"`...)
	default:
		b = append(b, `,"proto":`...)
		b = strconv.AppendUint(b, uint64(e.Proto), 10)
	}
	if e.SrcIP != 0 || e.SrcPort != 0 {
		b = append(b, `,"src":"`...)
		b = appendIPPort(b, e.SrcIP, e.SrcPort)
		b = append(b, '"')
	}
	if e.DstIP != 0 || e.DstPort != 0 {
		b = append(b, `,"dst":"`...)
		b = appendIPPort(b, e.DstIP, e.DstPort)
		b = append(b, '"')
	}
	if e.Verdict != 0 {
		b = append(b, `,"verdict":`...)
		if verdictName != nil {
			b = strconv.AppendQuote(b, verdictName(e.Verdict))
		} else {
			b = strconv.AppendUint(b, uint64(e.Verdict), 10)
		}
	}
	if e.N != 0 {
		b = append(b, `,"n":`...)
		b = strconv.AppendUint(b, e.N, 10)
	}
	if e.Detail != "" {
		b = append(b, `,"detail":`...)
		b = strconv.AppendQuote(b, e.Detail)
	}
	b = append(b, '}', '\n')
	return b
}

func appendIPPort(b []byte, ip uint32, port uint16) []byte {
	b = strconv.AppendUint(b, uint64(ip>>24), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(ip>>16&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(ip>>8&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(ip&0xff), 10)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(port), 10)
	return b
}
