// Package obs is GQ's telemetry substrate: a metrics registry of named
// counters, gauges and fixed-bucket histograms, a structured event journal
// stamped with virtual sim-time, and a bounded per-scope flight recorder.
//
// The package is deliberately dependency-free so every layer of the farm
// (netsim links, the gateway datapath, containment servers, sinks) can
// reach the shared instance hanging off the simulator without import
// cycles. Metrics follow the datapath's hot-path discipline (DESIGN.md
// §Telemetry): instruments are registered once at component construction,
// held as plain struct fields, and updated with single-word atomic adds —
// no map lookups, no allocation, no locking on the packet path. Snapshot()
// may therefore run concurrently with a live simulation.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can move both ways (e.g. live flow-table entries).
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Bounds are inclusive upper
// bounds; an implicit overflow bucket catches everything beyond the last
// bound. Values are plain int64s — callers pick the unit (the farm uses
// microseconds for latencies) and encode it in the metric name.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Uint64 // len(bounds)+1, last is overflow
	count   atomic.Uint64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Registry holds the farm's named instruments. Registration is idempotent:
// asking for an existing name returns the same instrument, so components
// constructed several times per simulation (ports, cluster members) share
// one series. Requesting a name already registered as a different kind
// panics — that is a wiring bug, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

func (r *Registry) checkFree(name, want string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a counter, wanted %s", name, want))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a gauge, wanted %s", name, want))
	}
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a histogram, wanted %s", name, want))
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFree(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFree(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given inclusive upper bucket bounds (ascending) on first use. Bounds
// of an existing histogram must match.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		if len(h.bounds) != len(bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
		for i := range bounds {
			if h.bounds[i] != bounds[i] {
				panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
			}
		}
		return h
	}
	r.checkFree(name, "histogram")
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		bounds:  append([]int64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Bounds  []int64  `json:"bounds"`
	Buckets []uint64 `json:"buckets"` // len(Bounds)+1, last is overflow
}

// Quantile estimates the q-quantile (0 < q <= 1) of the recorded
// distribution by locating the bucket holding the q*Count-th observation
// and interpolating linearly inside it. The estimate is in the histogram's
// native unit. Observations in the overflow bucket cannot be interpolated;
// a quantile landing there reports the last finite bound (a lower bound on
// the true value). An empty histogram reports 0.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := uint64(0)
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) < rank {
			cum += n
			continue
		}
		if i >= len(h.Bounds) {
			return float64(h.Bounds[len(h.Bounds)-1])
		}
		lo := 0.0
		if i > 0 {
			lo = float64(h.Bounds[i-1])
		}
		hi := float64(h.Bounds[i])
		return lo + (hi-lo)*((rank-float64(cum))/float64(n))
	}
	return float64(h.Bounds[len(h.Bounds)-1])
}

// Snapshot is a point-in-time copy of every registered metric, stamped with
// the virtual sim-time it was taken at.
type Snapshot struct {
	SimTimeNS  time.Duration                `json:"sim_time_ns"`
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry, safe to call concurrently with updates.
func (r *Registry) Snapshot(at time.Duration) *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		SimTimeNS: at,
		Counters:  make(map[string]uint64, len(r.counters)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{
				Count:   h.count.Load(),
				Sum:     h.sum.Load(),
				Bounds:  h.bounds,
				Buckets: make([]uint64, len(h.buckets)),
			}
			for i := range h.buckets {
				hs.Buckets[i] = h.buckets[i].Load()
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// Counter returns a counter's snapshotted value (0 when absent).
func (s *Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns a gauge's snapshotted value (0 when absent).
func (s *Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// WriteJSON emits the snapshot as indented JSON (map keys marshal sorted,
// so output is deterministic).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// WriteText renders a human-readable, sorted metric table.
func (s *Snapshot) WriteText(w io.Writer) error {
	type row struct{ name, value string }
	rows := make([]row, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name, v := range s.Counters {
		rows = append(rows, row{name, fmt.Sprintf("%d", v)})
	}
	for name, v := range s.Gauges {
		rows = append(rows, row{name, fmt.Sprintf("%d", v)})
	}
	for name, h := range s.Histograms {
		var b strings.Builder
		fmt.Fprintf(&b, "count=%d sum=%d", h.Count, h.Sum)
		if h.Count > 0 {
			fmt.Fprintf(&b, " p50=%.0f p95=%.0f p99=%.0f",
				h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		}
		for i, n := range h.Buckets {
			if n == 0 {
				continue
			}
			if i < len(h.Bounds) {
				fmt.Fprintf(&b, " le%d=%d", h.Bounds[i], n)
			} else {
				fmt.Fprintf(&b, " inf=%d", n)
			}
		}
		rows = append(rows, row{name, b.String()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	width := 0
	for _, r := range rows {
		if len(r.name) > width {
			width = len(r.name)
		}
	}
	if _, err := fmt.Fprintf(w, "Telemetry snapshot (sim time %v)\n", s.SimTimeNS); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "  %-*s  %s\n", width, r.name, r.value); err != nil {
			return err
		}
	}
	return nil
}

// Obs bundles a registry and a journal sharing one virtual clock. One Obs
// hangs off every sim.Simulator. In a sharded farm the registry and
// journal objects are shared across all domains (counters are single-word
// atomics; journal scopes are domain-owned), while each domain's Obs view
// carries its own clock and emission stream.
type Obs struct {
	Reg     *Registry
	Journal *Journal

	clock  func() time.Duration
	stream *Stream
}

// New creates an Obs whose instruments and events are stamped by clock
// (the simulator's virtual Now). A nil clock stamps everything zero.
func New(clock func() time.Duration) *Obs {
	if clock == nil {
		clock = func() time.Duration { return 0 }
	}
	j := NewJournal(clock)
	return &Obs{Reg: NewRegistry(), Journal: j, clock: clock, stream: j.streams[0]}
}

// ShardView derives a domain-local view of this Obs: the registry and
// journal are shared, but events emitted through the view's scopes are
// stamped with the domain's clock and tagged with a fresh stream (shard id,
// per-stream sequence) so the parallel merge can reproduce the serial
// order.
func (o *Obs) ShardView(clock func() time.Duration) *Obs {
	if clock == nil {
		clock = func() time.Duration { return 0 }
	}
	return &Obs{Reg: o.Reg, Journal: o.Journal, clock: clock, stream: o.Journal.NewStream(clock)}
}

// Scope returns the named journal scope bound to this view's emission
// stream (the root stream for a non-sharded Obs). Idempotent by name
// journal-wide; use this instead of Journal.Scope when the scope belongs
// to a specific simulation domain.
func (o *Obs) Scope(name string, ring int) *Scope {
	return o.stream.Scope(name, ring)
}

// Snapshot captures all metrics at the current virtual time. Safe to call
// from a goroutine other than the simulator's.
func (o *Obs) Snapshot() *Snapshot { return o.Reg.Snapshot(o.clock()) }
