package obs

import (
	"strings"
	"sync"
	"sync/atomic"
)

// Fanout is a Sink that forwards every event to an optional inner sink
// (the run's primary NDJSON stream) and broadcasts it to any number of
// live subscribers, each behind its own bounded ring buffer. It is the
// bridge between the single-threaded journal emission path and the ops
// plane's SSE consumers (DESIGN.md §3h).
//
// The emission side never blocks and never allocates per subscriber: a
// full ring drops its oldest event and counts the loss, so a stalled
// HTTP client costs the simulation nothing but an atomic add. Subscribers
// drain their rings from their own goroutines.
type Fanout struct {
	inner Sink // may be nil: fanout-only, no primary stream

	mu   sync.RWMutex
	subs []*Subscription

	// published counts events offered to subscribers (delivered to the
	// inner sink regardless); dropped counts ring evictions across all
	// subscribers, including closed ones.
	published atomic.Uint64
	dropped   atomic.Uint64
}

// NewFanout wraps inner (which may be nil) in a broadcasting sink.
// Install it with Journal.SetSink; events keep flowing to inner unchanged,
// so a served run's primary journal stays byte-identical to an unserved
// run's.
func NewFanout(inner Sink) *Fanout { return &Fanout{inner: inner} }

// WriteEvent implements Sink. Called from the simulation goroutine.
func (f *Fanout) WriteEvent(e Event) error {
	var err error
	if f.inner != nil {
		err = f.inner.WriteEvent(e)
	}
	f.published.Add(1)
	f.mu.RLock()
	for _, s := range f.subs {
		s.push(e)
	}
	f.mu.RUnlock()
	return err
}

// Published returns the number of events that have passed through the
// fanout. Safe from any goroutine.
func (f *Fanout) Published() uint64 { return f.published.Load() }

// Dropped returns the total ring evictions across all subscribers, ever.
// Safe from any goroutine.
func (f *Fanout) Dropped() uint64 { return f.dropped.Load() }

// Subscribers returns the current live subscription count.
func (f *Fanout) Subscribers() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.subs)
}

// Subscribe registers a new subscriber holding at most buf events
// (DefaultRingSize if buf <= 0). Events not matched by filter are never
// enqueued. Call Subscription.Close when done.
func (f *Fanout) Subscribe(buf int, filter Filter) *Subscription {
	if buf <= 0 {
		buf = DefaultRingSize
	}
	s := &Subscription{
		f:      f,
		filter: filter,
		ring:   make([]Event, buf),
		notify: make(chan struct{}, 1),
	}
	f.mu.Lock()
	f.subs = append(f.subs, s)
	f.mu.Unlock()
	return s
}

// Filter selects the events a subscriber receives. The zero value matches
// everything. Scopes match exactly; Types match by prefix, so "chaos."
// selects the whole chaos vocabulary and "flow.verdict" exactly one type.
type Filter struct {
	Scopes []string
	Types  []string
}

// ParseFilter builds a Filter from comma-separated scope and type lists
// (as found in /events query parameters); empty strings mean "all".
func ParseFilter(scopes, types string) Filter {
	var fl Filter
	if scopes != "" {
		fl.Scopes = strings.Split(scopes, ",")
	}
	if types != "" {
		fl.Types = strings.Split(types, ",")
	}
	return fl
}

// Match reports whether e passes the filter.
func (fl Filter) Match(e Event) bool {
	if len(fl.Scopes) > 0 {
		ok := false
		for _, s := range fl.Scopes {
			if e.Scope == s {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(fl.Types) > 0 {
		for _, t := range fl.Types {
			if strings.HasPrefix(e.Type, t) {
				return true
			}
		}
		return false
	}
	return true
}

// Subscription is one subscriber's bounded event queue. push runs on the
// simulation goroutine; Drain/Dropped/Close run on the subscriber's.
type Subscription struct {
	f      *Fanout
	filter Filter

	mu      sync.Mutex
	ring    []Event
	head    int // oldest buffered event
	n       int // buffered events
	closed  bool
	dropped uint64

	notify chan struct{}
}

// push enqueues a matching event, evicting the oldest on overflow.
func (s *Subscription) push(e Event) {
	if !s.filter.Match(e) {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.ring) {
		s.head++
		if s.head == len(s.ring) {
			s.head = 0
		}
		s.n--
		s.dropped++
		s.f.dropped.Add(1)
	}
	s.ring[(s.head+s.n)%len(s.ring)] = e
	s.n++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Drain appends all buffered events to dst (oldest first) and returns the
// result. The ring is emptied.
func (s *Subscription) Drain(dst []Event) []Event {
	s.mu.Lock()
	for i := 0; i < s.n; i++ {
		dst = append(dst, s.ring[(s.head+i)%len(s.ring)])
	}
	s.head, s.n = 0, 0
	s.mu.Unlock()
	return dst
}

// Dropped returns how many events this subscription has evicted so far.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Notify returns a channel that receives a token when new events may be
// available. It is edge-triggered with a one-slot buffer: always Drain
// after a receive, and poll Drain once more before blocking.
func (s *Subscription) Notify() <-chan struct{} { return s.notify }

// Close detaches the subscription from the fanout; further events are not
// delivered. Idempotent.
func (s *Subscription) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	f := s.f
	f.mu.Lock()
	for i, sub := range f.subs {
		if sub == s {
			f.subs = append(f.subs[:i], f.subs[i+1:]...)
			break
		}
	}
	f.mu.Unlock()
}
