package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// TestWritePromGolden pins the Prometheus text exposition byte-for-byte
// against testdata/snapshot.prom. Regenerate with:
//
//	go test ./internal/obs -run TestWritePromGolden -update-golden
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("subfarm.Botfarm.flows_created").Add(42)
	r.Counter("gw.trunk_rx_frames").Add(100000)
	r.Gauge("subfarm.Botfarm.flows_active").Set(7)
	r.Gauge("supervisor.cs.Botfarm-cs0.healthy").Set(1)
	r.Counter("sim.rounds").Add(1200)
	r.Counter("sim.domain_windows").Add(3600)
	r.Gauge("sim.domains_busy").Set(3)
	h := r.Histogram("subfarm.Botfarm.verdict_latency_us", 100, 1000, 10000)
	for _, v := range []int64{50, 150, 150, 5000, 99999} {
		h.Observe(v)
	}
	snap := r.Snapshot(90 * time.Minute)

	var buf bytes.Buffer
	if err := snap.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "snapshot.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("prom exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}

// TestWritePromHistogramCumulative spells out the histogram invariants
// separately from the golden bytes: buckets are cumulative, le="+Inf"
// equals _count, and names are sanitized.
func TestWritePromHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("a.b-c.lat", 10, 100)
	for _, v := range []int64{5, 50, 50, 500} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.Snapshot(0).WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE gq_a_b_c_lat histogram",
		`gq_a_b_c_lat_bucket{le="10"} 1`,
		`gq_a_b_c_lat_bucket{le="100"} 3`,
		`gq_a_b_c_lat_bucket{le="+Inf"} 4`,
		"gq_a_b_c_lat_sum 605",
		"gq_a_b_c_lat_count 4",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
