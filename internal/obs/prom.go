package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// promPrefix namespaces every exposed series, per Prometheus convention.
const promPrefix = "gq_"

// WriteProm emits the snapshot in the Prometheus text exposition format
// (version 0.0.4): one `# TYPE` line per series, counters and gauges as
// plain samples, histograms as cumulative `_bucket{le="..."}` series plus
// `_sum` and `_count`. Metric names are sanitized — every character
// outside [a-zA-Z0-9_:] becomes '_' — and prefixed with "gq_", so
// `subfarm.Botfarm.flows_created` scrapes as
// `gq_subfarm_Botfarm_flows_created`. Output is sorted by series name,
// hence deterministic for a given snapshot.
func (s *Snapshot) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)

	// The snapshot's virtual timestamp, so a scraper can tell how much
	// simulated time the run has covered.
	bw.WriteString("# TYPE " + promPrefix + "sim_time_seconds gauge\n")
	bw.WriteString(promPrefix + "sim_time_seconds ")
	bw.WriteString(strconv.FormatFloat(s.SimTimeNS.Seconds(), 'g', -1, 64))
	bw.WriteByte('\n')

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		bw.WriteString("# TYPE " + pn + " counter\n")
		bw.WriteString(pn + " ")
		bw.WriteString(strconv.FormatUint(s.Counters[name], 10))
		bw.WriteByte('\n')
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		bw.WriteString("# TYPE " + pn + " gauge\n")
		bw.WriteString(pn + " ")
		bw.WriteString(strconv.FormatInt(s.Gauges[name], 10))
		bw.WriteByte('\n')
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		bw.WriteString("# TYPE " + pn + " histogram\n")
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			bw.WriteString(pn + `_bucket{le="`)
			bw.WriteString(strconv.FormatInt(bound, 10))
			bw.WriteString(`"} `)
			bw.WriteString(strconv.FormatUint(cum, 10))
			bw.WriteByte('\n')
		}
		bw.WriteString(pn + `_bucket{le="+Inf"} `)
		bw.WriteString(strconv.FormatUint(h.Count, 10))
		bw.WriteByte('\n')
		bw.WriteString(pn + "_sum ")
		bw.WriteString(strconv.FormatInt(h.Sum, 10))
		bw.WriteByte('\n')
		bw.WriteString(pn + "_count ")
		bw.WriteString(strconv.FormatUint(h.Count, 10))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// promName sanitizes a registry name into a legal Prometheus metric name.
func promName(name string) string {
	b := make([]byte, 0, len(promPrefix)+len(name))
	b = append(b, promPrefix...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b = append(b, c)
		case c >= '0' && c <= '9':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}
