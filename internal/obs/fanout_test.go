package obs

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFanoutForwardsToInnerAndSubscribers(t *testing.T) {
	j := NewJournal(nil)
	var buf bytes.Buffer
	inner := j.AttachNDJSON(&buf)
	fan := NewFanout(inner)
	j.SetSink(fan)

	sub := fan.Subscribe(8, Filter{})
	sc := j.Scope("sf", 4)
	sc.Emit(Event{Type: EvFlowCreated, N: 1})
	sc.Emit(Event{Type: EvFlowClosed, N: 2})
	inner.Flush()

	if got := bytes.Count(buf.Bytes(), []byte("\n")); got != 2 {
		t.Fatalf("inner sink saw %d lines", got)
	}
	evs := sub.Drain(nil)
	if len(evs) != 2 || evs[0].N != 1 || evs[1].N != 2 {
		t.Fatalf("subscriber drained %+v", evs)
	}
	if fan.Published() != 2 || fan.Dropped() != 0 {
		t.Fatalf("published=%d dropped=%d", fan.Published(), fan.Dropped())
	}
	// Drained ring is empty until the next emit.
	if evs := sub.Drain(nil); len(evs) != 0 {
		t.Fatalf("second drain returned %d events", len(evs))
	}
}

// TestFanoutDropOldest pins the bounded-ring contract: a subscriber that
// never drains loses the oldest events, counts the losses, and the sim-side
// emit path never blocks.
func TestFanoutDropOldest(t *testing.T) {
	fan := NewFanout(nil)
	sub := fan.Subscribe(4, Filter{})
	for i := 1; i <= 10; i++ {
		fan.WriteEvent(Event{Type: EvFlowCreated, N: uint64(i)})
	}
	evs := sub.Drain(nil)
	if len(evs) != 4 {
		t.Fatalf("ring held %d events, cap 4", len(evs))
	}
	for i, e := range evs {
		if e.N != uint64(i+7) {
			t.Fatalf("event %d has N=%d, want %d (drop-oldest)", i, e.N, i+7)
		}
	}
	if sub.Dropped() != 6 || fan.Dropped() != 6 {
		t.Fatalf("dropped sub=%d fan=%d, want 6", sub.Dropped(), fan.Dropped())
	}
}

func TestFanoutFilter(t *testing.T) {
	fan := NewFanout(nil)
	byScope := fan.Subscribe(8, ParseFilter("gw", ""))
	byType := fan.Subscribe(8, ParseFilter("", "chaos.,flow.verdict"))
	all := fan.Subscribe(8, ParseFilter("", ""))

	fan.WriteEvent(Event{Type: EvFlowCreated, Scope: "sf"})
	fan.WriteEvent(Event{Type: EvFlowVerdict, Scope: "sf"})
	fan.WriteEvent(Event{Type: "chaos.cs_crash", Scope: "chaos.sf"})
	fan.WriteEvent(Event{Type: EvFlowClosed, Scope: "gw"})

	if evs := byScope.Drain(nil); len(evs) != 1 || evs[0].Scope != "gw" {
		t.Fatalf("scope filter drained %+v", evs)
	}
	evs := byType.Drain(nil)
	if len(evs) != 2 || evs[0].Type != EvFlowVerdict || evs[1].Type != "chaos.cs_crash" {
		t.Fatalf("type filter drained %+v", evs)
	}
	if evs := all.Drain(nil); len(evs) != 4 {
		t.Fatalf("unfiltered drained %d", len(evs))
	}
	// Filtered-out events must not count as subscriber drops.
	if byScope.Dropped() != 0 {
		t.Fatalf("filter counted drops: %d", byScope.Dropped())
	}
}

func TestFanoutCloseDetaches(t *testing.T) {
	fan := NewFanout(nil)
	sub := fan.Subscribe(2, Filter{})
	fan.WriteEvent(Event{Type: EvFlowCreated})
	sub.Close()
	sub.Close() // idempotent
	fan.WriteEvent(Event{Type: EvFlowClosed})
	if fan.Subscribers() != 0 {
		t.Fatalf("%d subscribers after close", fan.Subscribers())
	}
	if evs := sub.Drain(nil); len(evs) != 1 {
		t.Fatalf("closed sub drained %d events, want the 1 pre-close", len(evs))
	}
}

// TestFanoutChurnStalledClient is the subscriber-churn race proof for the
// ops plane's worst hour, run under -race: one emitter (the sim
// goroutine) pushing through a real Journal into a Fanout over the
// primary NDJSON sink, one permanently stalled client whose tiny ring
// overflows on nearly every emit, and four goroutines doing exactly what
// the SSE handler does — subscribe, drain, render the drained events via
// Journal.RenderEvent, close — as fast as they can. Nothing may race,
// the emitter must never block, the primary stream must stay intact, and
// the loss accounting must reconcile: the fanout-wide drop counter
// equals the stalled client's evictions plus whatever the churners lost
// (their rings die young, they cannot drop much).
func TestFanoutChurnStalledClient(t *testing.T) {
	j := NewJournal(nil)
	var buf bytes.Buffer
	inner := j.AttachNDJSON(&buf)
	fan := NewFanout(inner)
	j.SetSink(fan)
	sc := j.Scope("churn", 4)

	stalled := fan.Subscribe(2, Filter{})
	const emits = 5000

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < emits; i++ {
			sc.Emit(Event{Type: EvFlowCreated, N: uint64(i)})
		}
	}()

	var churnDropped atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var evs []Event
			var line []byte
			for i := 0; i < 200; i++ {
				sub := fan.Subscribe(4, Filter{})
				select {
				case <-sub.Notify():
				case <-time.After(100 * time.Microsecond):
				}
				// Render from this goroutine like the SSE handler: it must
				// be safe against the emitter's concurrent journal writes.
				evs = sub.Drain(evs[:0])
				for _, e := range evs {
					line = j.RenderEvent(line[:0], e)
				}
				churnDropped.Add(sub.Dropped())
				sub.Close()
			}
		}()
	}
	<-done
	wg.Wait()
	// The NDJSON sink is single-goroutine by contract; flush only after
	// the emitter is done.
	inner.Flush()

	if fan.Published() != emits {
		t.Fatalf("published %d, want %d", fan.Published(), emits)
	}
	if got := bytes.Count(buf.Bytes(), []byte("\n")); got != emits {
		t.Fatalf("inner sink saw %d lines, want %d — churn corrupted the primary stream", got, emits)
	}
	if fan.Subscribers() != 1 {
		t.Fatalf("%d subscribers left, want only the stalled one", fan.Subscribers())
	}
	// The stalled ring holds the final 2 events; everything else it was
	// offered was evicted.
	if evs := stalled.Drain(nil); len(evs) != 2 || evs[len(evs)-1].N != emits-1 {
		t.Fatalf("stalled client drained %d events, tail %+v", len(evs), evs)
	}
	if want := uint64(emits - 2); stalled.Dropped() != want {
		t.Fatalf("stalled client dropped %d, want %d", stalled.Dropped(), want)
	}
	if got, want := fan.Dropped(), stalled.Dropped()+churnDropped.Load(); got != want {
		t.Fatalf("fanout-wide drops %d, want %d (stalled %d + churn %d)",
			got, want, stalled.Dropped(), churnDropped.Load())
	}
	stalled.Close()
}

// TestFanoutConcurrent drives the advertised concurrency contract under
// -race: one emitter (the sim goroutine) against subscribers that attach,
// drain, and detach concurrently.
func TestFanoutConcurrent(t *testing.T) {
	fan := NewFanout(nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			fan.WriteEvent(Event{Type: EvFlowCreated, N: uint64(i)})
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sub := fan.Subscribe(16, Filter{})
				// Edge-triggered wait; time out rather than park forever
				// once the emitter has finished.
				select {
				case <-sub.Notify():
				case <-time.After(time.Millisecond):
				}
				sub.Drain(nil)
				sub.Close()
			}
		}()
	}
	<-done
	wg.Wait()
	if fan.Published() != 5000 {
		t.Fatalf("published %d", fan.Published())
	}
}
