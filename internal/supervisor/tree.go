package supervisor

import (
	"fmt"
	"time"

	"gq/internal/host"
	"gq/internal/obs"
	"gq/internal/sim"
)

// Root is the farm-root node of the supervision tree. It runs on the
// farm's root simulation domain and watches the dependencies no single
// subfarm owns: the inmate controller's restart authority (subfarm nodes
// probe it and report here; the root dedups those reports and drives the
// breaker-guarded restart ladder, because the controller lives in the
// root domain), recycler progress per subfarm (wedge detection plus
// re-arm), external-shard service hosts (aliveness), and each subfarm's
// lockdown state. When a root-level dependency stays dead past
// DeadManBudget — the controller unrestartable, or a subfarm still
// locked down — the root escalates to global dead-man lockdown: every
// attached subfarm fails closed at once.
//
// Cross-domain rules match the rest of the tree: subfarm→root reports
// and root→subfarm lockdown commands travel sim.PostTo, so escalation
// order is part of the deterministic event order at any worker count.
// Operator commands (POST /lockdown, the ops dead-man switch) enter from
// alien goroutines via ops.Driver.DoIn, which posts through
// sim.Coordinator.Post onto the root domain before touching any of this
// state.
type Root struct {
	cfg  Config
	deps RootDeps
	s    *sim.Simulator
	sc   *obs.Scope // "supervisor.tree" on the root domain

	subfarms []*subLink

	// Controller restart ladder (same shape as the subfarm endpoint
	// ladder, but fed by subfarm down/up reports instead of probes).
	ctlDown        bool
	ctlQuarantined bool
	ctlDownAt      time.Duration
	ctlBackoff     time.Duration
	ctlRestartPend bool
	ctlRestarts    []time.Duration
	ctlHistory     []string
	ctlGauge       *obs.Gauge

	watches []*progressWatch
	hosts   []*hostWatch

	global   bool
	globalAt time.Duration
	history  []string

	restartsTotal *obs.Counter
	quarantines   *obs.Counter
	rearmsTotal   *obs.Counter
	globalLocks   *obs.Counter
	lockGauge     *obs.Gauge
	watchCounts   map[string]int
}

// RootDeps wires the root node into the farm.
type RootDeps struct {
	Sim *sim.Simulator
	// ControllerHost, when non-nil, is the inmate controller's host;
	// RestartController power-cycles it (reset, re-address, rebind). Both
	// live on the root domain.
	ControllerHost    *host.Host
	RestartController func()
}

type subLink struct {
	name     string
	dom      *sim.Simulator
	sup      *Supervisor
	locked   bool
	lockedAt time.Duration
}

// progressWatch tracks one progress-marked component (a recycler): its
// mark must keep advancing while it is active, or the root declares it
// wedged, journals it, and re-arms it — behind the same circuit breaker
// as restarts.
type progressWatch struct {
	kind  Kind
	id    string
	dom   *sim.Simulator
	read  func() (mark int, active bool)
	rearm func()

	lastMark    int
	lastChange  time.Duration
	wedged      bool
	quarantined bool
	rearms      []time.Duration
	gauge       *obs.Gauge
}

// hostWatch is a pure aliveness watch over a service host (external
// shards): journalled and gauged, never restarted — shard hosts have no
// supervised restart path, they are infrastructure the operator owns.
type hostWatch struct {
	kind  Kind
	id    string
	h     *host.Host
	alive bool
	gauge *obs.Gauge
}

// NewRoot builds the farm-root node and starts its progress poll.
func NewRoot(deps RootDeps, cfg Config) *Root {
	cfg = cfg.withDefaults()
	s := deps.Sim
	o := s.Obs()
	r := &Root{
		cfg: cfg, deps: deps, s: s,
		sc:          o.Scope(TreeScope, obs.DefaultRingSize),
		ctlBackoff:  cfg.RestartBackoff,
		watchCounts: make(map[string]int),
	}
	const pfx = "supervisor.root."
	r.restartsTotal = o.Reg.Counter(pfx + "restarts")
	r.quarantines = o.Reg.Counter(pfx + "quarantines")
	r.rearmsTotal = o.Reg.Counter(pfx + "rearms")
	r.globalLocks = o.Reg.Counter(pfx + "global_lockdowns")
	r.lockGauge = o.Reg.Gauge("supervisor.root" + LockdownGaugeSuffix)
	if deps.ControllerHost != nil {
		r.ctlGauge = o.Reg.Gauge(HealthGaugeName(KindController, "root", "controller"))
		r.ctlGauge.Set(1)
		r.watchCounts[string(KindController)]++
	}
	s.Every(cfg.ProgressEvery, r.poll)
	return r
}

// Attach links a subfarm node under this root. Called at wiring time,
// before the farm runs. Idempotent per node.
func (r *Root) Attach(sup *Supervisor) {
	if sup.parent != nil {
		return
	}
	sup.parent = r
	sup.parentDom = r.s
	r.subfarms = append(r.subfarms, &subLink{name: sup.deps.Name, dom: sup.s, sup: sup})
}

// WatchProgress registers a progress-marked component owned by domain
// dom. read and rearm are invoked on dom's goroutine (the root
// round-trips via sim.PostTo); read returns the current monotone
// progress mark and whether the component is active — an inactive
// component is never wedged.
func (r *Root) WatchProgress(kind Kind, id string, dom *sim.Simulator, read func() (int, bool), rearm func()) {
	w := &progressWatch{
		kind: kind, id: id, dom: dom, read: read, rearm: rearm,
		lastMark: -1, lastChange: r.s.Now(),
		gauge: r.s.Obs().Reg.Gauge(HealthGaugeName(kind, "root", id)),
	}
	w.gauge.Set(1)
	r.watches = append(r.watches, w)
	r.watchCounts[string(kind)]++
}

// WatchHost registers an aliveness watch over a root-domain-reachable
// service host (external-shard hosts are bridged, but their Alive bit is
// plain memory the root may read after a PostTo round trip).
func (r *Root) WatchHost(kind Kind, id string, h *host.Host) {
	w := &hostWatch{
		kind: kind, id: id, h: h, alive: true,
		gauge: r.s.Obs().Reg.Gauge(HealthGaugeName(kind, "root", id)),
	}
	w.gauge.Set(1)
	r.hosts = append(r.hosts, w)
	r.watchCounts[string(kind)]++
}

// WatchCounts reports how many dependencies of each kind the root
// watches. Fixed once wiring completes (before the farm runs); safe to
// read from the ops plane.
func (r *Root) WatchCounts() map[string]int {
	out := make(map[string]int, len(r.watchCounts))
	for k, v := range r.watchCounts {
		out[k] = v
	}
	return out
}

// poll advances every progress and host watch. Watches owned by other
// domains are read with a PostTo round trip — out to the owning domain,
// result posted back — which keeps both sides' event order deterministic.
func (r *Root) poll() {
	for _, w := range r.watches {
		if w.quarantined {
			continue
		}
		w := w
		if w.dom == r.s {
			mark, active := w.read()
			r.noteProgress(w, mark, active)
		} else {
			r.s.PostTo(w.dom, 0, func() {
				mark, active := w.read()
				w.dom.PostTo(r.s, 0, func() { r.noteProgress(w, mark, active) })
			})
		}
	}
	for _, w := range r.hosts {
		w := w
		if w.h.Sim() == r.s {
			r.noteAlive(w, w.h.Alive())
		} else {
			r.s.PostTo(w.h.Sim(), 0, func() {
				alive := w.h.Alive()
				w.h.Sim().PostTo(r.s, 0, func() { r.noteAlive(w, alive) })
			})
		}
	}
}

// noteProgress folds one progress reading into the watch: any mark
// advance (or inactivity) is health; an active mark frozen past
// WedgeBudget is a wedge — journalled, dumped, and re-armed behind the
// breaker.
func (r *Root) noteProgress(w *progressWatch, mark int, active bool) {
	now := r.s.Now()
	if !active || mark != w.lastMark {
		w.lastMark = mark
		w.lastChange = now
		if w.wedged {
			w.wedged = false
			w.gauge.Set(1)
			r.history = append(r.history, string(w.kind)+":"+w.id+"_recovered@"+now.String())
			r.sc.Emit(obs.Event{Type: EvEndpointUp, Detail: string(w.kind) + ":" + w.id})
		}
		return
	}
	if now-w.lastChange <= r.cfg.WedgeBudget || w.wedged {
		return
	}
	w.wedged = true
	w.gauge.Set(0)
	r.history = append(r.history, string(w.kind)+":"+w.id+"_wedged@"+now.String())
	r.sc.Emit(obs.Event{Type: EvEndpointDown, Detail: string(w.kind) + ":" + w.id})
	r.sc.Dump(fmt.Sprintf("%s %s wedged (no progress for %s)", w.kind, w.id, now-w.lastChange))
	// Re-arm behind the breaker: a component that keeps wedging inside
	// the window is quarantined rather than kicked forever.
	kept := w.rearms[:0]
	for _, t := range w.rearms {
		if now-t <= r.cfg.BreakerWindow {
			kept = append(kept, t)
		}
	}
	w.rearms = kept
	if len(w.rearms) >= r.cfg.BreakerThreshold {
		w.quarantined = true
		r.quarantines.Inc()
		r.history = append(r.history, string(w.kind)+":"+w.id+"_quarantined@"+now.String())
		r.sc.Emit(obs.Event{Type: EvEndpointQuarantine, Detail: string(w.kind) + ":" + w.id})
		return
	}
	w.rearms = append(w.rearms, now)
	w.lastChange = now // grant a fresh budget after the kick
	r.rearmsTotal.Inc()
	r.sc.Emit(obs.Event{Type: EvEndpointRestart, Detail: string(w.kind) + ":" + w.id + " rearm"})
	if w.dom == r.s {
		w.rearm()
	} else {
		r.s.PostTo(w.dom, 0, w.rearm)
	}
}

// noteAlive folds one aliveness reading into a host watch.
func (r *Root) noteAlive(w *hostWatch, alive bool) {
	if alive == w.alive {
		return
	}
	w.alive = alive
	now := r.s.Now()
	if alive {
		w.gauge.Set(1)
		r.history = append(r.history, string(w.kind)+":"+w.id+"_up@"+now.String())
		r.sc.Emit(obs.Event{Type: EvEndpointUp, Detail: string(w.kind) + ":" + w.id})
		return
	}
	w.gauge.Set(0)
	r.history = append(r.history, string(w.kind)+":"+w.id+"_down@"+now.String())
	r.sc.Emit(obs.Event{Type: EvEndpointDown, Detail: string(w.kind) + ":" + w.id})
	r.sc.Dump(fmt.Sprintf("%s %s down", w.kind, w.id))
}

// ReportControllerDown is how subfarm nodes escalate a dead controller:
// the first report starts the restart ladder and the dead-man clock;
// repeats while a restart is pending or the breaker has tripped are
// dedup'd. Runs on the root domain goroutine (callers post).
func (r *Root) ReportControllerDown(from string) {
	if r.ctlQuarantined {
		return
	}
	if !r.ctlDown {
		r.ctlDown = true
		r.ctlDownAt = r.s.Now()
		r.ctlGauge.Set(0)
		r.ctlHistory = append(r.ctlHistory, "down@"+r.s.Now().String())
		r.history = append(r.history, "controller_down@"+r.s.Now().String()+" by "+from)
		r.sc.Emit(obs.Event{Type: EvEndpointDown, Detail: "controller:controller by " + from})
		r.sc.Dump("inmate controller down (reported by " + from + ")")
		// Dead-man clock: a controller that stays dead past the budget —
		// restarts failing or breaker tripped — means no lifecycle verbs,
		// no quarantine actions, no recycle: fail the whole farm closed.
		stamp := r.ctlDownAt
		r.s.Schedule(r.cfg.DeadManBudget, func() {
			if r.ctlDown && r.ctlDownAt == stamp && !r.global {
				r.GlobalLockdown("inmate controller dead past budget")
			}
		})
	}
	if !r.ctlRestartPend {
		r.scheduleCtlRestart()
	}
}

// ReportControllerUp is the matching recovery report, sent when a
// subfarm's controller probe answers again.
func (r *Root) ReportControllerUp(from string) {
	if !r.ctlDown {
		return
	}
	r.ctlDown = false
	r.ctlBackoff = r.cfg.RestartBackoff
	r.ctlGauge.Set(1)
	r.ctlHistory = append(r.ctlHistory, "up@"+r.s.Now().String())
	r.history = append(r.history, "controller_up@"+r.s.Now().String()+" by "+from)
	r.sc.Emit(obs.Event{Type: EvEndpointUp, Detail: "controller:controller by " + from})
}

// scheduleCtlRestart arms the next controller restart: same capped
// backoff, sim-RNG jitter and circuit breaker as subfarm endpoints.
func (r *Root) scheduleCtlRestart() {
	now := r.s.Now()
	kept := r.ctlRestarts[:0]
	for _, t := range r.ctlRestarts {
		if now-t <= r.cfg.BreakerWindow {
			kept = append(kept, t)
		}
	}
	r.ctlRestarts = kept
	if len(r.ctlRestarts) >= r.cfg.BreakerThreshold {
		r.ctlQuarantined = true
		r.quarantines.Inc()
		r.ctlHistory = append(r.ctlHistory, "quarantine@"+now.String())
		r.history = append(r.history, "controller_quarantined@"+now.String())
		r.sc.Emit(obs.Event{Type: EvEndpointQuarantine, Detail: "controller:controller"})
		r.sc.Dump("inmate controller quarantined (restart breaker tripped); dead-man clock running")
		return
	}
	delay := r.ctlBackoff
	delay += time.Duration(r.s.Rand().Float64() * r.cfg.RestartJitter * float64(delay))
	r.ctlBackoff *= 2
	if r.ctlBackoff > r.cfg.RestartBackoffMax {
		r.ctlBackoff = r.cfg.RestartBackoffMax
	}
	r.ctlRestartPend = true
	r.s.Schedule(delay, func() {
		r.ctlRestartPend = false
		if !r.ctlDown || r.ctlQuarantined {
			return
		}
		r.ctlRestarts = append(r.ctlRestarts, r.s.Now())
		r.restartsTotal.Inc()
		r.ctlHistory = append(r.ctlHistory, "restart@"+r.s.Now().String())
		r.sc.Emit(obs.Event{Type: EvEndpointRestart, Detail: "controller:controller"})
		if r.deps.RestartController != nil {
			r.deps.RestartController()
		}
		// Subfarm probes confirm recovery; if none has within two probe
		// cycles, climb the ladder again.
		r.s.Schedule(2*r.cfg.HeartbeatEvery, func() {
			if r.ctlDown && !r.ctlRestartPend && !r.ctlQuarantined {
				r.scheduleCtlRestart()
			}
		})
	})
}

// onSubfarmLockdown starts the dead-man clock for a locked-down subfarm:
// lockdown is a holding state, not a resolution, and one that persists
// past DeadManBudget means the farm as a whole can no longer be trusted
// to contain.
func (r *Root) onSubfarmLockdown(name string) {
	for _, l := range r.subfarms {
		if l.name != name {
			continue
		}
		if l.locked {
			return
		}
		l.locked = true
		l.lockedAt = r.s.Now()
		r.history = append(r.history, "subfarm_lockdown@"+r.s.Now().String()+" "+name)
		r.sc.Emit(obs.Event{Type: EvEscalate, Detail: "subfarm " + name + " locked down"})
		stamp := l.lockedAt
		r.s.Schedule(r.cfg.DeadManBudget, func() {
			if l.locked && l.lockedAt == stamp && !r.global {
				r.GlobalLockdown("subfarm " + name + " locked down past budget")
			}
		})
		return
	}
}

// onSubfarmRelease clears the dead-man clock for a released subfarm.
func (r *Root) onSubfarmRelease(name string) {
	for _, l := range r.subfarms {
		if l.name == name && l.locked {
			l.locked = false
			r.history = append(r.history, "subfarm_release@"+r.s.Now().String()+" "+name)
			return
		}
	}
}

// GlobalLockdown is the dead-man switch: every attached subfarm fails
// closed at once. Runs on the root domain goroutine; the per-subfarm
// engage commands cross-post into each subfarm's domain. Idempotent.
func (r *Root) GlobalLockdown(reason string) {
	if r.global {
		return
	}
	r.global = true
	r.globalAt = r.s.Now()
	r.lockGauge.Set(1)
	r.globalLocks.Inc()
	r.history = append(r.history, "global_lockdown@"+r.s.Now().String()+" "+reason)
	r.sc.Emit(obs.Event{Type: EvGlobalLockdown, Detail: reason})
	r.sc.Dump("GLOBAL DEAD-MAN LOCKDOWN: " + reason)
	for _, l := range r.subfarms {
		l := l
		if l.dom == r.s {
			l.sup.EngageLockdown("dead-man: " + reason)
		} else {
			r.s.PostTo(l.dom, 0, func() { l.sup.EngageLockdown("dead-man: " + reason) })
		}
	}
}

// Release lifts a global lockdown: every attached subfarm reopens (its
// own escalation clocks restart if its containment plane is still dead).
// Runs on the root domain goroutine.
func (r *Root) Release(reason string) {
	if !r.global {
		return
	}
	r.global = false
	r.lockGauge.Set(0)
	r.history = append(r.history, "global_release@"+r.s.Now().String()+" "+reason)
	r.sc.Emit(obs.Event{Type: EvGlobalRelease, Detail: reason})
	for _, l := range r.subfarms {
		l := l
		if l.dom == r.s {
			l.sup.ReleaseLockdown("global release: " + reason)
		} else {
			r.s.PostTo(l.dom, 0, func() { l.sup.ReleaseLockdown("global release: " + reason) })
		}
	}
}

// GlobalLockedDown reports whether the dead-man switch is engaged.
func (r *Root) GlobalLockedDown() bool { return r.global }

// GlobalLockdownAt returns the sim time the dead-man switch engaged
// (zero if it never did) — the lockdown-latency benchmark reads it.
func (r *Root) GlobalLockdownAt() time.Duration { return r.globalAt }

// ControllerHealthy reports the controller's current state as the tree
// sees it.
func (r *Root) ControllerHealthy() bool { return !r.ctlDown && !r.ctlQuarantined }

// History returns the root's escalation history, identical across worker
// counts for a (seed, profile) pair.
func (r *Root) History() []string {
	return append([]string(nil), r.history...)
}

// ControllerHistory returns the controller ladder's transition history.
func (r *Root) ControllerHistory() []string {
	return append([]string(nil), r.ctlHistory...)
}
