// Package supervisor makes the farm's measurement plane self-healing
// while keeping it provably fail-closed. It is organised as a supervision
// tree (DESIGN.md §3k): one per-subfarm node watches every endpoint kind
// an escape could route through — containment servers (sim-clock
// heartbeat probes over the shim channel), sink servers (TCP liveness
// probes from a dedicated prober host) and the farm-wide inmate
// controller (an application-level PING over the management network) —
// and a farm-root node (see Root) watches the root-level dependencies:
// the controller's restart authority, recycler progress, and
// external-shard service hosts.
//
// Every node escalates deterministically on sim-clock budgets:
//
//	probe miss ×K  →  supervised restart (capped exponential backoff plus
//	sim-RNG jitter, behind a circuit breaker)  →  component quarantine
//	→  subfarm fail-closed lockdown (Router.SetLockdown: every live flow
//	resolved through the fail-close path, new traffic dropped)  →
//	global dead-man lockdown when a root-level dependency stays dead
//	past its budget.
//
// Determinism: every timer runs on the owning node's simulation domain
// clock, every random choice (restart jitter) draws from that domain's
// RNG, and every cross-domain escalation travels sim.PostTo — so a
// (seed, profile) pair replays byte-identically at any worker count; the
// tree is just more events in the same ordered world. All state is
// touched only from the owning domain goroutine, like the router's.
package supervisor

import (
	"fmt"
	"strings"
	"time"

	"gq/internal/containment"
	"gq/internal/gateway"
	"gq/internal/host"
	"gq/internal/inmate"
	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/sim"
)

// Kind names an endpoint class in the supervision tree. It appears in
// health-gauge names (supervisor.<kind>.<id>.healthy) and journal events.
type Kind string

// Supervised endpoint kinds.
const (
	KindCS         Kind = "cs"         // containment server (shim heartbeats)
	KindSink       Kind = "sink"       // sink server (TCP liveness probe)
	KindController Kind = "controller" // inmate controller (PING/PONG probe)
	KindRecycler   Kind = "recycler"   // recycling pipeline (progress watch)
	KindShard      Kind = "shard"      // external-shard service host (aliveness)
)

// Journalled supervision events (all under obs.EvSupervisorPrefix). The
// containment-server kind keeps its original vocabulary; every other kind
// uses the generic endpoint events with "<kind>:<id>" in Detail. Tree
// escalations — lockdowns and their releases — are journalled under the
// "supervisor.tree" scope.
const (
	EvCSDown           = obs.EvSupervisorPrefix + "cs_down"
	EvCSUp             = obs.EvSupervisorPrefix + "cs_up"
	EvCSRestart        = obs.EvSupervisorPrefix + "cs_restart"
	EvCSQuarantine     = obs.EvSupervisorPrefix + "cs_quarantine"
	EvInmateQuarantine = obs.EvSupervisorPrefix + "inmate_quarantine"

	EvEndpointDown       = obs.EvSupervisorPrefix + "down"
	EvEndpointUp         = obs.EvSupervisorPrefix + "up"
	EvEndpointRestart    = obs.EvSupervisorPrefix + "restart"
	EvEndpointQuarantine = obs.EvSupervisorPrefix + "quarantine"

	EvEscalate        = obs.EvSupervisorPrefix + "escalate"
	EvLockdown        = obs.EvSupervisorPrefix + "lockdown"
	EvLockdownRelease = obs.EvSupervisorPrefix + "lockdown_release"
	EvGlobalLockdown  = obs.EvSupervisorPrefix + "global_lockdown"
	EvGlobalRelease   = obs.EvSupervisorPrefix + "global_release"
)

// TreeScope is the journal scope every escalation transition is emitted
// under, on the escalating node's own domain.
const TreeScope = "supervisor.tree"

// Config tunes the supervision loops. Zero values select the defaults.
type Config struct {
	// HeartbeatEvery is the probe cadence per endpoint, every kind.
	HeartbeatEvery time.Duration // default 5s
	// HeartbeatTimeout is how long one probe may go unanswered.
	HeartbeatTimeout time.Duration // default 1s
	// MissThreshold is K: consecutive missed deadlines marking an endpoint
	// unhealthy.
	MissThreshold int // default 3

	// RestartBackoff is the initial restart delay after an endpoint goes
	// down; it doubles per attempt up to RestartBackoffMax, each attempt
	// jittered by up to RestartJitter of the delay (sim RNG).
	RestartBackoff    time.Duration // default 5s
	RestartBackoffMax time.Duration // default 2m
	RestartJitter     float64       // default 0.5

	// BreakerThreshold restarts within BreakerWindow trip the circuit
	// breaker: the endpoint is drained and no longer redialed.
	BreakerWindow    time.Duration // default 10m
	BreakerThreshold int           // default 5

	// InmateStrikeThreshold strikes (trigger firings or containment-probe
	// escapes) within InmateStrikeWindow quarantine an inmate via the
	// controller, using InmateQuarantineAction as the lifecycle verb.
	InmateStrikeWindow     time.Duration // default 30m
	InmateStrikeThreshold  int           // default 3
	InmateQuarantineAction string        // default "stop"

	// LockdownBudget is how long the subfarm's containment plane may stay
	// fully dead — every containment server down or quarantined,
	// continuously — before the node escalates to subfarm fail-closed
	// lockdown.
	LockdownBudget time.Duration // default 2m
	// DeadManBudget is how long a root-level dependency (the controller,
	// or a subfarm already in lockdown) may stay dead before the root
	// node escalates to global dead-man lockdown.
	DeadManBudget time.Duration // default 5m
	// ProgressEvery is the root node's progress-watch poll cadence
	// (recyclers, external-shard hosts).
	ProgressEvery time.Duration // default 30s
	// WedgeBudget is how long a progress-watched component may go without
	// advancing its mark, while active, before it is declared wedged and
	// re-armed.
	WedgeBudget time.Duration // default 15m
}

func (c Config) withDefaults() Config {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 5 * time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = time.Second
	}
	if c.MissThreshold <= 0 {
		c.MissThreshold = 3
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 5 * time.Second
	}
	if c.RestartBackoffMax <= 0 {
		c.RestartBackoffMax = 2 * time.Minute
	}
	if c.RestartJitter <= 0 {
		c.RestartJitter = 0.5
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 10 * time.Minute
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.InmateStrikeWindow <= 0 {
		c.InmateStrikeWindow = 30 * time.Minute
	}
	if c.InmateStrikeThreshold <= 0 {
		c.InmateStrikeThreshold = 3
	}
	if c.InmateQuarantineAction == "" {
		c.InmateQuarantineAction = "stop"
	}
	if c.LockdownBudget <= 0 {
		c.LockdownBudget = 2 * time.Minute
	}
	if c.DeadManBudget <= 0 {
		c.DeadManBudget = 5 * time.Minute
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 30 * time.Second
	}
	if c.WedgeBudget <= 0 {
		c.WedgeBudget = 15 * time.Minute
	}
	return c
}

// Endpoint pairs a containment server with the host it runs on.
type Endpoint struct {
	Srv  *containment.Server
	Host *host.Host
}

// SinkEndpoint describes one supervised sink server: the host it runs
// on, a TCP port a liveness probe can dial, and the Rebind closure that
// reinstalls its listeners after a supervised host reset.
type SinkEndpoint struct {
	ID     string // SvcHosts role, e.g. "catchall", "smtpsink"
	Host   *host.Host
	Port   uint16
	Rebind func() error
}

// Deps wires a Supervisor into its subfarm. Everything lives in (or is
// reachable from) the subfarm's simulation domain.
type Deps struct {
	Sim    *sim.Simulator
	Router *gateway.Router
	Name   string // subfarm name, used in metric and scope names
	// Endpoints lists the containment servers in router endpoint-index
	// order (cluster order, or the single server).
	Endpoints []Endpoint
	// Sinks lists the subfarm's supervised sink servers. Each is probed
	// with a TCP dial from Prober and restarted in place (host reset +
	// Rebind) on its own breaker-guarded ladder.
	Sinks []SinkEndpoint
	// Prober is the service-VLAN host sink liveness probes dial from.
	// Required when Sinks is non-empty.
	Prober *host.Host
	// Mgmt is the subfarm's management-network host; inmate-quarantine
	// actions are sent from it to Controller over the real management
	// network, cross-posting into the inmate's shard domain like any other
	// controller action. It is also where controller liveness probes dial
	// from.
	Mgmt       *host.Host
	Controller *host.Host

	// WatchController probes the farm-wide inmate controller with an
	// application-level PING from Mgmt. The subfarm node only detects —
	// restart authority belongs to the farm root, which owns the
	// controller's domain — so down/up transitions are reported through
	// the two callbacks below (invoked on the subfarm's goroutine; the
	// farm wiring posts them into the root domain).
	WatchController  bool
	OnControllerDown func()
	OnControllerUp   func()
}

// Health gauges, one per supervised endpoint, named
// supervisor.<kind>.<scope>-<id>.healthy (1 healthy, 0 down). The ops
// plane's /healthz handler scans the registry snapshot for them and
// reports a per-kind breakdown; degraded when any reads 0 or an expected
// kind registered none.
const (
	HealthGaugePrefix = "supervisor."
	HealthGaugeSuffix = ".healthy"
)

// HealthGaugeName returns the registry gauge name for one endpoint's
// health bit. scope is the owning node ("<subfarm>" or "root").
func HealthGaugeName(kind Kind, scope, id string) string {
	return HealthGaugePrefix + string(kind) + "." + scope + "-" + id + HealthGaugeSuffix
}

// ParseHealthGauge splits a registry gauge name produced by
// HealthGaugeName back into its kind and "<scope>-<id>" endpoint name.
func ParseHealthGauge(name string) (kind Kind, endpoint string, ok bool) {
	if !strings.HasPrefix(name, HealthGaugePrefix) || !strings.HasSuffix(name, HealthGaugeSuffix) {
		return "", "", false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, HealthGaugePrefix), HealthGaugeSuffix)
	k, ep, found := strings.Cut(body, ".")
	if !found || k == "" || ep == "" {
		return "", "", false
	}
	return Kind(k), ep, true
}

// LockdownGaugeSuffix suffixes the per-node lockdown gauges
// ("supervisor.<name>.lockdown", 1 while the node is in fail-closed
// lockdown).
const LockdownGaugeSuffix = ".lockdown"

// endpoint is the supervisor's per-endpoint state, shared by every kind.
type endpoint struct {
	kind Kind
	id   string // "cs0", "catchall", "controller", ...

	srv    *containment.Server // KindCS
	csIdx  int                 // router endpoint index (KindCS)
	host   *host.Host
	port   uint16       // probe port (sink, controller)
	prober *host.Host   // host TCP probes dial from
	rebind func() error // reinstalls app listeners after host reset (sink)

	// watchOnly endpoints (the controller) are probed and journalled but
	// never restarted here: restart authority lives at the tree root, and
	// transitions are reported through the notify hooks.
	watchOnly    bool
	onDown, onUp func()

	// Addressing snapshot taken at attach time, replayed on restart.
	addr netstack.Addr
	bits int
	gw   netstack.Addr

	healthy     bool
	quarantined bool
	misses      int // consecutive missed probe deadlines
	seq         uint64
	replied     bool // current probe answered

	backoff     time.Duration
	restartPend bool
	restarts    []time.Duration // restart times inside the breaker window
	downAt      time.Duration

	// transitions is the endpoint's health history ("down@8m1s", ...),
	// part of the determinism proof: it must be identical across worker
	// counts for a (seed, profile) pair.
	transitions []string

	gauge *obs.Gauge // supervisor.<kind>.<subfarm>-<id>.healthy
}

// Supervisor is one subfarm's supervision-tree node.
type Supervisor struct {
	cfg  Config
	deps Deps
	s    *sim.Simulator
	sc   *obs.Scope // "supervisor.<name>": endpoint-level transitions
	tree *obs.Scope // "supervisor.tree": escalations and lockdowns

	eps    []*endpoint // every supervised endpoint, probe order
	csEps  []*endpoint // the containment servers, router index order
	ticker *sim.Ticker

	// Inmate quarantine state: strike times per VLAN, and which VLANs have
	// already been quarantined.
	strikes     map[uint16][]time.Duration
	quarantined map[uint16]bool

	// Escalation state: containment fully dead since (or -1), lockdown
	// engaged, and the DeepEqual-able escalation history.
	deadSince   time.Duration
	lockdown    bool
	escalations []string

	// parent links this node under a farm-root node (Root.Attach).
	parent    *Root
	parentDom *sim.Simulator

	restartsTotal     *obs.Counter
	quarantinesTotal  *obs.Counter
	sinkQuarantines   *obs.Counter
	missesTotal       *obs.Counter
	inmateQuarantines *obs.Counter
	lockdownsTotal    *obs.Counter
	recoveryMS        *obs.Histogram
	lockGauge         *obs.Gauge

	// watchCounts is the build-time endpoint census per kind, read by the
	// ops plane's /healthz to detect expected-but-absent kinds. Fixed
	// after New, so it is safe to read from alien goroutines.
	watchCounts map[string]int

	// Recoveries records each containment-server down->healthy interval,
	// in order. The recovery-time benchmark and the recovery soak's
	// bounded-recovery assertion read it.
	Recoveries []time.Duration
}

// New attaches a supervisor to its subfarm and starts the probe loop.
func New(deps Deps, cfg Config) *Supervisor {
	cfg = cfg.withDefaults()
	s := deps.Sim
	o := s.Obs()
	sup := &Supervisor{
		cfg: cfg, deps: deps, s: s,
		sc:          o.Scope("supervisor."+deps.Name, obs.DefaultRingSize),
		tree:        o.Scope(TreeScope, obs.DefaultRingSize),
		strikes:     make(map[uint16][]time.Duration),
		quarantined: make(map[uint16]bool),
		deadSince:   -1,
		watchCounts: make(map[string]int),
	}
	pfx := "supervisor." + deps.Name + "."
	sup.restartsTotal = o.Reg.Counter(pfx + "restarts")
	sup.quarantinesTotal = o.Reg.Counter(pfx + "cs_quarantines")
	sup.sinkQuarantines = o.Reg.Counter(pfx + "sink_quarantines")
	sup.missesTotal = o.Reg.Counter(pfx + "heartbeats_missed")
	sup.inmateQuarantines = o.Reg.Counter(pfx + "inmate_quarantines")
	sup.lockdownsTotal = o.Reg.Counter(pfx + "lockdowns")
	sup.lockGauge = o.Reg.Gauge("supervisor." + deps.Name + LockdownGaugeSuffix)
	sup.recoveryMS = o.Reg.Histogram(pfx+"recovery_ms",
		10, 50, 100, 500, 1000, 5000, 15000, 30000, 60000, 120000)
	add := func(ep *endpoint) {
		ep.healthy = true
		ep.backoff = cfg.RestartBackoff
		ep.gauge = o.Reg.Gauge(HealthGaugeName(ep.kind, deps.Name, ep.id))
		ep.gauge.Set(1)
		sup.eps = append(sup.eps, ep)
		sup.watchCounts[string(ep.kind)]++
	}
	for i, e := range deps.Endpoints {
		ep := &endpoint{
			kind: KindCS, id: fmt.Sprintf("cs%d", i), csIdx: i,
			srv: e.Srv, host: e.Host,
			addr: e.Host.Addr(), bits: e.Host.PrefixBits(), gw: e.Host.Gateway(),
		}
		add(ep)
		sup.csEps = append(sup.csEps, ep)
	}
	for _, se := range deps.Sinks {
		add(&endpoint{
			kind: KindSink, id: se.ID, host: se.Host, port: se.Port,
			prober: deps.Prober, rebind: se.Rebind,
			addr: se.Host.Addr(), bits: se.Host.PrefixBits(), gw: se.Host.Gateway(),
		})
	}
	if deps.WatchController && deps.Controller != nil && deps.Mgmt != nil {
		add(&endpoint{
			kind: KindController, id: "controller",
			host: deps.Controller, port: inmate.ControllerPort, prober: deps.Mgmt,
			watchOnly: true, onDown: deps.OnControllerDown, onUp: deps.OnControllerUp,
			addr: deps.Controller.Addr(),
		})
	}
	deps.Router.SetHealthObserver(sup.onHealthReply)
	sup.ticker = s.Every(cfg.HeartbeatEvery, sup.tick)
	return sup
}

// Stop halts the probe loop (pending restarts still fire).
func (sup *Supervisor) Stop() { sup.ticker.Stop() }

// Name returns the node's subfarm name.
func (sup *Supervisor) Name() string { return sup.deps.Name }

// WatchCounts reports how many endpoints of each kind this node
// supervises. Fixed at build time; safe from any goroutine.
func (sup *Supervisor) WatchCounts() map[string]int {
	out := make(map[string]int, len(sup.watchCounts))
	for k, v := range sup.watchCounts {
		out[k] = v
	}
	return out
}

// tick probes every non-quarantined endpoint, in attach order, and arms
// the per-probe deadline.
func (sup *Supervisor) tick() {
	for _, ep := range sup.eps {
		if ep.quarantined {
			continue
		}
		ep.seq++
		ep.replied = false
		seq := ep.seq
		switch ep.kind {
		case KindCS:
			sup.deps.Router.SendHealthProbe(ep.csIdx, seq)
		case KindController:
			sup.probePing(ep, seq)
		default:
			sup.probeTCP(ep, seq)
		}
		e := ep
		sup.s.Schedule(sup.cfg.HeartbeatTimeout, func() { sup.checkDeadline(e, seq) })
	}
}

// probeTCP checks a sink endpoint with a bare TCP dial from the prober
// host: reaching ESTABLISHED within the deadline is alive. The probe
// connection is aborted immediately — it exists only for the handshake.
func (sup *Supervisor) probeTCP(ep *endpoint, seq uint64) {
	c := ep.prober.Dial(ep.host.Addr(), ep.port)
	done := false
	c.OnConnect = func() {
		done = true
		c.Abort()
		sup.onProbeReply(ep, seq)
	}
	sup.s.Schedule(sup.cfg.HeartbeatTimeout, func() {
		if !done {
			c.Abort()
		}
	})
}

// probePing checks the inmate controller with an application-level PING
// over the management network: only a PONG line within the deadline is
// alive, so a hung controller (accepting but not answering) reads as
// down even though its SYN backlog is healthy.
func (sup *Supervisor) probePing(ep *endpoint, seq uint64) {
	c := ep.prober.Dial(ep.host.Addr(), ep.port)
	done := false
	var buf []byte
	c.OnConnect = func() { c.Write([]byte("PING\n")) }
	c.OnData = func(d []byte) {
		if done {
			return
		}
		buf = append(buf, d...)
		nl := strings.IndexByte(string(buf), '\n')
		if nl < 0 {
			return
		}
		done = true
		if strings.TrimSpace(string(buf[:nl])) == "PONG" {
			sup.onProbeReply(ep, seq)
		}
		c.Close()
	}
	sup.s.Schedule(sup.cfg.HeartbeatTimeout, func() {
		if !done {
			done = true
			c.Abort()
		}
	})
}

// onHealthReply receives containment-server heartbeat echoes from the
// router.
func (sup *Supervisor) onHealthReply(idx int, seq uint64) {
	if idx < 0 || idx >= len(sup.csEps) {
		return
	}
	sup.onProbeReply(sup.csEps[idx], seq)
}

// onProbeReply handles a live probe answer for any endpoint kind.
func (sup *Supervisor) onProbeReply(ep *endpoint, seq uint64) {
	if ep.quarantined || seq != ep.seq {
		return // stale echo from before a restart; ignore
	}
	ep.replied = true
	ep.misses = 0
	if !ep.healthy {
		sup.markUp(ep)
	}
}

// checkDeadline runs HeartbeatTimeout after each probe: a missing echo is
// one miss; K consecutive misses mark the endpoint down and (re)schedule a
// restart. The miss count resets at each threshold crossing so an endpoint
// that crashes again mid-recovery earns a fresh (backed-off) restart
// instead of being forgotten. Watch-only endpoints re-notify the tree
// root at each crossing instead of restarting.
func (sup *Supervisor) checkDeadline(ep *endpoint, seq uint64) {
	if ep.quarantined || seq != ep.seq || ep.replied {
		return
	}
	ep.misses++
	sup.missesTotal.Inc()
	if ep.misses < sup.cfg.MissThreshold {
		return
	}
	ep.misses = 0
	if ep.healthy {
		sup.markDown(ep)
	} else if ep.watchOnly && ep.onDown != nil {
		// Still dead at the next threshold crossing: remind the restart
		// authority, which dedups and owns the backoff ladder.
		ep.onDown()
	}
	if !ep.watchOnly && !ep.restartPend {
		sup.scheduleRestart(ep)
	}
}

// markDown transitions an endpoint to unhealthy. A containment server
// additionally drops out of dispatch and has its stranded flows resolved
// fail-closed; every kind dumps the flight recorder for post-mortem.
func (sup *Supervisor) markDown(ep *endpoint) {
	ep.healthy = false
	ep.downAt = sup.s.Now()
	ep.gauge.Set(0)
	ep.transitions = append(ep.transitions, "down@"+sup.s.Now().String())
	switch ep.kind {
	case KindCS:
		sup.deps.Router.SetEndpointHealth(ep.csIdx, false)
		failed := sup.deps.Router.FailCloseEndpoint(ep.csIdx, "containment server down")
		sup.sc.Emit(obs.Event{
			Type: EvCSDown, N: uint64(ep.csIdx), SrcIP: uint32(ep.addr),
			Detail: ep.id,
		})
		sup.sc.Dump(fmt.Sprintf("containment server %s down (%d flows failed closed)", ep.id, failed))
		sup.checkContainment()
	default:
		sup.sc.Emit(obs.Event{
			Type: EvEndpointDown, SrcIP: uint32(ep.addr),
			Detail: string(ep.kind) + ":" + ep.id,
		})
		sup.sc.Dump(fmt.Sprintf("%s %s down", ep.kind, ep.id))
	}
	if ep.onDown != nil {
		ep.onDown()
	}
}

// markUp transitions an endpoint back to healthy once a probe confirms
// the restart took. Containment servers resume dispatch and record the
// down->up recovery time.
func (sup *Supervisor) markUp(ep *endpoint) {
	ep.healthy = true
	ep.backoff = sup.cfg.RestartBackoff
	ep.gauge.Set(1)
	ep.transitions = append(ep.transitions, "up@"+sup.s.Now().String())
	switch ep.kind {
	case KindCS:
		sup.deps.Router.SetEndpointHealth(ep.csIdx, true)
		recovery := sup.s.Now() - ep.downAt
		sup.Recoveries = append(sup.Recoveries, recovery)
		sup.recoveryMS.Observe(int64(recovery / time.Millisecond))
		sup.sc.Emit(obs.Event{
			Type: EvCSUp, N: uint64(ep.csIdx), SrcIP: uint32(ep.addr),
			Detail: ep.id,
		})
		sup.checkContainment()
	default:
		sup.sc.Emit(obs.Event{
			Type: EvEndpointUp, SrcIP: uint32(ep.addr),
			Detail: string(ep.kind) + ":" + ep.id,
		})
	}
	if ep.onUp != nil {
		ep.onUp()
	}
}

// scheduleRestart arms the next restart attempt: capped exponential backoff
// plus sim-RNG jitter, behind the circuit breaker.
func (sup *Supervisor) scheduleRestart(ep *endpoint) {
	now := sup.s.Now()
	// Prune restart history to the breaker window, then check the breaker.
	kept := ep.restarts[:0]
	for _, t := range ep.restarts {
		if now-t <= sup.cfg.BreakerWindow {
			kept = append(kept, t)
		}
	}
	ep.restarts = kept
	if len(ep.restarts) >= sup.cfg.BreakerThreshold {
		sup.quarantine(ep)
		return
	}
	delay := ep.backoff
	delay += time.Duration(sup.s.Rand().Float64() * sup.cfg.RestartJitter * float64(delay))
	ep.backoff *= 2
	if ep.backoff > sup.cfg.RestartBackoffMax {
		ep.backoff = sup.cfg.RestartBackoffMax
	}
	ep.restartPend = true
	sup.s.Schedule(delay, func() { sup.restart(ep) })
}

// restart brings a crashed endpoint back: reset the host, replay its
// addressing, rebind the listeners, re-announce ARP. Health is NOT
// assumed — only the next probe answer marks the endpoint up.
func (sup *Supervisor) restart(ep *endpoint) {
	ep.restartPend = false
	if ep.quarantined || ep.healthy {
		return
	}
	ep.host.Reset()
	ep.host.ConfigureStatic(ep.addr, ep.bits, ep.gw)
	switch {
	case ep.kind == KindCS:
		if err := ep.srv.Rebind(); err != nil {
			panic("supervisor: containment server rebind failed: " + err.Error())
		}
	case ep.rebind != nil:
		if err := ep.rebind(); err != nil {
			panic("supervisor: " + string(ep.kind) + " " + ep.id + " rebind failed: " + err.Error())
		}
	}
	ep.host.AnnounceARP()
	ep.restarts = append(ep.restarts, sup.s.Now())
	ep.transitions = append(ep.transitions, "restart@"+sup.s.Now().String())
	sup.restartsTotal.Inc()
	typ, detail := EvEndpointRestart, string(ep.kind)+":"+ep.id
	if ep.kind == KindCS {
		typ, detail = EvCSRestart, ep.id
	}
	sup.sc.Emit(obs.Event{
		Type: typ, N: uint64(ep.csIdx), SrcIP: uint32(ep.addr), Detail: detail,
	})
}

// quarantine trips the circuit breaker: the endpoint is drained (a
// containment server's remaining dependent flows fail-closed), excluded
// from dispatch, and no longer probed or restarted.
func (sup *Supervisor) quarantine(ep *endpoint) {
	if ep.quarantined {
		return
	}
	ep.quarantined = true
	ep.healthy = false
	ep.gauge.Set(0)
	ep.transitions = append(ep.transitions, "quarantine@"+sup.s.Now().String())
	switch ep.kind {
	case KindCS:
		sup.deps.Router.SetEndpointHealth(ep.csIdx, false)
		failed := sup.deps.Router.FailCloseEndpoint(ep.csIdx, "containment server quarantined")
		sup.quarantinesTotal.Inc()
		sup.sc.Emit(obs.Event{
			Type: EvCSQuarantine, N: uint64(ep.csIdx), SrcIP: uint32(ep.addr),
			Detail: ep.id,
		})
		sup.sc.Dump(fmt.Sprintf("containment server %s quarantined (%d flows failed closed)", ep.id, failed))
		sup.checkContainment()
	default:
		sup.sinkQuarantines.Inc()
		sup.sc.Emit(obs.Event{
			Type: EvEndpointQuarantine, SrcIP: uint32(ep.addr),
			Detail: string(ep.kind) + ":" + ep.id,
		})
		sup.sc.Dump(fmt.Sprintf("%s %s quarantined", ep.kind, ep.id))
	}
}

// containmentDead reports whether every containment server is down or
// quarantined — the state no flow can be adjudicated in.
func (sup *Supervisor) containmentDead() bool {
	for _, ep := range sup.csEps {
		if ep.healthy {
			return false
		}
	}
	return len(sup.csEps) > 0
}

// checkContainment runs after every containment-server health transition:
// the moment the whole plane goes dark the lockdown clock starts, and if
// it is still dark LockdownBudget later the node fails the subfarm
// closed. Any single recovery resets the clock.
func (sup *Supervisor) checkContainment() {
	if !sup.containmentDead() {
		sup.deadSince = -1
		return
	}
	if sup.deadSince >= 0 || sup.lockdown {
		return
	}
	stamp := sup.s.Now()
	sup.deadSince = stamp
	sup.escalations = append(sup.escalations, "containment_dead@"+stamp.String())
	sup.tree.Emit(obs.Event{Type: EvEscalate, Detail: sup.deps.Name + ": containment plane dead"})
	sup.s.Schedule(sup.cfg.LockdownBudget, func() {
		if sup.deadSince == stamp && !sup.lockdown && sup.containmentDead() {
			sup.EngageLockdown("containment plane dead past budget")
		}
	})
}

// EngageLockdown fails the whole subfarm closed: every live flow is
// resolved through the router's fail-close path and new traffic is
// dropped at the router until release. The escalation is journalled
// under supervisor.tree with a flight-recorder dump and reported to the
// tree root, which starts the global dead-man clock. Runs on the
// subfarm's domain goroutine; idempotent. Returns the number of flows
// failed closed.
func (sup *Supervisor) EngageLockdown(reason string) int {
	if sup.lockdown {
		return 0
	}
	sup.lockdown = true
	sup.lockGauge.Set(1)
	sup.lockdownsTotal.Inc()
	failed := sup.deps.Router.SetLockdown(true, "subfarm lockdown: "+reason)
	sup.escalations = append(sup.escalations, "lockdown@"+sup.s.Now().String()+" "+reason)
	sup.tree.Emit(obs.Event{Type: EvLockdown, N: uint64(failed), Detail: sup.deps.Name + ": " + reason})
	sup.tree.Dump(fmt.Sprintf("subfarm %s locked down (%s; %d flows failed closed)", sup.deps.Name, reason, failed))
	if sup.parent != nil {
		name := sup.deps.Name
		root := sup.parent
		if sup.parentDom == sup.s {
			root.onSubfarmLockdown(name)
		} else {
			sup.s.PostTo(sup.parentDom, 0, func() { root.onSubfarmLockdown(name) })
		}
	}
	return failed
}

// ReleaseLockdown reopens the subfarm: the router accepts new flows
// again, and if the containment plane is still dead a fresh lockdown
// budget starts counting. Runs on the subfarm's domain goroutine.
func (sup *Supervisor) ReleaseLockdown(reason string) {
	if !sup.lockdown {
		return
	}
	sup.lockdown = false
	sup.lockGauge.Set(0)
	sup.deps.Router.SetLockdown(false, reason)
	sup.escalations = append(sup.escalations, "release@"+sup.s.Now().String()+" "+reason)
	sup.tree.Emit(obs.Event{Type: EvLockdownRelease, Detail: sup.deps.Name + ": " + reason})
	if sup.parent != nil {
		name := sup.deps.Name
		root := sup.parent
		if sup.parentDom == sup.s {
			root.onSubfarmRelease(name)
		} else {
			sup.s.PostTo(sup.parentDom, 0, func() { root.onSubfarmRelease(name) })
		}
	}
	sup.deadSince = -1
	sup.checkContainment()
}

// LockedDown reports whether the subfarm is in fail-closed lockdown.
func (sup *Supervisor) LockedDown() bool { return sup.lockdown }

// Escalations returns the node's escalation history
// ("containment_dead@…", "lockdown@… <reason>", "release@… <reason>"),
// identical across worker counts for a (seed, profile) pair.
func (sup *Supervisor) Escalations() []string {
	return append([]string(nil), sup.escalations...)
}

// ObserveLifecycle records a trigger-driven lifecycle action against the
// inmate's strike count. Called from the subfarm's lifecycle sink, in the
// subfarm's domain.
func (sup *Supervisor) ObserveLifecycle(action string, vlan uint16) {
	sup.strike(vlan, "trigger:"+action)
}

// ReportEscape records a containment-probe escape against the inmate's
// strike count.
func (sup *Supervisor) ReportEscape(vlan uint16) {
	sup.strike(vlan, "probe-escape")
}

// strike adds one strike for an inmate and quarantines it at the
// threshold: repeated trigger firings or probe escapes mean containment is
// not holding the specimen — revert/stop it rather than keep fighting.
func (sup *Supervisor) strike(vlan uint16, why string) {
	if sup.quarantined[vlan] {
		return
	}
	now := sup.s.Now()
	kept := sup.strikes[vlan][:0]
	for _, t := range sup.strikes[vlan] {
		if now-t <= sup.cfg.InmateStrikeWindow {
			kept = append(kept, t)
		}
	}
	kept = append(kept, now)
	sup.strikes[vlan] = kept
	if len(kept) < sup.cfg.InmateStrikeThreshold {
		return
	}
	sup.quarantined[vlan] = true
	sup.inmateQuarantines.Inc()
	sup.sc.Emit(obs.Event{Type: EvInmateQuarantine, VLAN: vlan, Detail: why})
	sup.sc.Dump(fmt.Sprintf("inmate VLAN %d quarantined (%s)", vlan, why))
	// The quarantine action travels the real management network to the
	// farm controller, which cross-posts the execution into the inmate's
	// shard domain exactly like trigger-driven lifecycle actions.
	inmate.SendAction(sup.deps.Mgmt, sup.deps.Controller, sup.cfg.InmateQuarantineAction, vlan, nil)
}

// Healthy reports containment-server endpoint idx's current health.
func (sup *Supervisor) Healthy(idx int) bool {
	if idx < 0 || idx >= len(sup.csEps) {
		return false
	}
	return sup.csEps[idx].healthy
}

// Quarantined reports whether containment-server endpoint idx tripped the
// circuit breaker.
func (sup *Supervisor) Quarantined(idx int) bool {
	if idx < 0 || idx >= len(sup.csEps) {
		return false
	}
	return sup.csEps[idx].quarantined
}

// EndpointHealthy reports the current health of any supervised endpoint
// by kind and id ("cs0", "catchall", "controller", ...).
func (sup *Supervisor) EndpointHealthy(kind Kind, id string) bool {
	for _, ep := range sup.eps {
		if ep.kind == kind && ep.id == id {
			return ep.healthy
		}
	}
	return false
}

// InmateQuarantined reports whether the supervisor quarantined a VLAN.
func (sup *Supervisor) InmateQuarantined(vlan uint16) bool { return sup.quarantined[vlan] }

// HealthHistory returns each endpoint's health-transition history, keyed
// by endpoint id ("cs0", "catchall", "controller", ...). Identical
// across worker counts for a (seed, profile) pair — the shard-determinism
// test DeepEquals it.
func (sup *Supervisor) HealthHistory() map[string][]string {
	out := make(map[string][]string, len(sup.eps))
	for _, ep := range sup.eps {
		out[ep.id] = append([]string(nil), ep.transitions...)
	}
	return out
}
