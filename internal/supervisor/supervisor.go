// Package supervisor makes the containment plane self-healing while
// keeping it provably fail-closed. It watches every containment endpoint
// with sim-clock heartbeat probes over the shim channel, mirrors health
// into the router's dispatch (rendezvous hashing onto the healthy subset),
// fail-closes the flows a dead endpoint strands, restarts crashed servers
// with capped exponential backoff plus sim-RNG jitter behind a circuit
// breaker, and quarantines inmates that repeatedly trip containment
// triggers or probes.
//
// Determinism: every timer runs on the owning subfarm's simulation domain
// clock and every random choice (restart jitter) draws from that domain's
// RNG, so a (seed, profile) pair replays byte-identically at any worker
// count — the supervisor is just more events in the same ordered world.
// All state is touched only from the domain goroutine, like the router's.
package supervisor

import (
	"fmt"
	"time"

	"gq/internal/containment"
	"gq/internal/gateway"
	"gq/internal/host"
	"gq/internal/inmate"
	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/sim"
)

// Journalled supervision events (all under obs.EvSupervisorPrefix).
const (
	EvCSDown           = obs.EvSupervisorPrefix + "cs_down"
	EvCSUp             = obs.EvSupervisorPrefix + "cs_up"
	EvCSRestart        = obs.EvSupervisorPrefix + "cs_restart"
	EvCSQuarantine     = obs.EvSupervisorPrefix + "cs_quarantine"
	EvInmateQuarantine = obs.EvSupervisorPrefix + "inmate_quarantine"
)

// Config tunes the supervision loops. Zero values select the defaults.
type Config struct {
	// HeartbeatEvery is the probe cadence per endpoint.
	HeartbeatEvery time.Duration // default 5s
	// HeartbeatTimeout is how long one probe may go unanswered.
	HeartbeatTimeout time.Duration // default 1s
	// MissThreshold is K: consecutive missed deadlines marking an endpoint
	// unhealthy.
	MissThreshold int // default 3

	// RestartBackoff is the initial restart delay after an endpoint goes
	// down; it doubles per attempt up to RestartBackoffMax, each attempt
	// jittered by up to RestartJitter of the delay (sim RNG).
	RestartBackoff    time.Duration // default 5s
	RestartBackoffMax time.Duration // default 2m
	RestartJitter     float64       // default 0.5

	// BreakerThreshold restarts within BreakerWindow trip the circuit
	// breaker: the endpoint is drained and no longer redialed.
	BreakerWindow    time.Duration // default 10m
	BreakerThreshold int           // default 5

	// InmateStrikeThreshold strikes (trigger firings or containment-probe
	// escapes) within InmateStrikeWindow quarantine an inmate via the
	// controller, using InmateQuarantineAction as the lifecycle verb.
	InmateStrikeWindow     time.Duration // default 30m
	InmateStrikeThreshold  int           // default 3
	InmateQuarantineAction string        // default "stop"
}

func (c Config) withDefaults() Config {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 5 * time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = time.Second
	}
	if c.MissThreshold <= 0 {
		c.MissThreshold = 3
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 5 * time.Second
	}
	if c.RestartBackoffMax <= 0 {
		c.RestartBackoffMax = 2 * time.Minute
	}
	if c.RestartJitter <= 0 {
		c.RestartJitter = 0.5
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 10 * time.Minute
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.InmateStrikeWindow <= 0 {
		c.InmateStrikeWindow = 30 * time.Minute
	}
	if c.InmateStrikeThreshold <= 0 {
		c.InmateStrikeThreshold = 3
	}
	if c.InmateQuarantineAction == "" {
		c.InmateQuarantineAction = "stop"
	}
	return c
}

// Endpoint pairs a containment server with the host it runs on.
type Endpoint struct {
	Srv  *containment.Server
	Host *host.Host
}

// Deps wires a Supervisor into its subfarm. Everything lives in (or is
// reachable from) the subfarm's simulation domain.
type Deps struct {
	Sim    *sim.Simulator
	Router *gateway.Router
	Name   string // subfarm name, used in metric and scope names
	// Endpoints lists the containment servers in router endpoint-index
	// order (cluster order, or the single server).
	Endpoints []Endpoint
	// Mgmt is the subfarm's management-network host; inmate-quarantine
	// actions are sent from it to Controller over the real management
	// network, cross-posting into the inmate's shard domain like any other
	// controller action.
	Mgmt       *host.Host
	Controller *host.Host
}

// endpoint is the supervisor's per-containment-server state.
// HealthGaugePrefix prefixes every per-endpoint health gauge. The ops
// plane's /healthz handler scans the registry snapshot for gauges named
// HealthGaugePrefix + "<subfarm>-cs<i>" + HealthGaugeSuffix and reports
// degraded when any reads 0.
const (
	HealthGaugePrefix = "supervisor.cs."
	HealthGaugeSuffix = ".healthy"
)

// HealthGaugeName returns the registry gauge name for one containment-server
// endpoint's health bit (1 healthy, 0 down).
func HealthGaugeName(subfarm, id string) string {
	return HealthGaugePrefix + subfarm + "-" + id + HealthGaugeSuffix
}

type endpoint struct {
	id   string // "cs0", "cs1", ...
	srv  *containment.Server
	host *host.Host

	// Addressing snapshot taken at attach time, replayed on restart.
	addr netstack.Addr
	bits int
	gw   netstack.Addr

	healthy     bool
	quarantined bool
	misses      int  // consecutive missed probe deadlines
	seq         uint64
	replied     bool // current probe answered

	backoff     time.Duration
	restartPend bool
	restarts    []time.Duration // restart times inside the breaker window
	downAt      time.Duration

	// transitions is the endpoint's health history ("down@8m1s", ...),
	// part of the determinism proof: it must be identical across worker
	// counts for a (seed, profile) pair.
	transitions []string

	gauge *obs.Gauge // supervisor.cs.<subfarm>-<id>.healthy
}

// Supervisor is one subfarm's containment-plane supervisor.
type Supervisor struct {
	cfg  Config
	deps Deps
	s    *sim.Simulator
	sc   *obs.Scope

	eps    []*endpoint
	ticker *sim.Ticker

	// Inmate quarantine state: strike times per VLAN, and which VLANs have
	// already been quarantined.
	strikes     map[uint16][]time.Duration
	quarantined map[uint16]bool

	restartsTotal     *obs.Counter
	quarantinesTotal  *obs.Counter
	missesTotal       *obs.Counter
	inmateQuarantines *obs.Counter
	recoveryMS        *obs.Histogram

	// Recoveries records each down->healthy interval, in order. The
	// recovery-time benchmark and the recovery soak's bounded-recovery
	// assertion read it.
	Recoveries []time.Duration
}

// New attaches a supervisor to its subfarm and starts the heartbeat loop.
func New(deps Deps, cfg Config) *Supervisor {
	cfg = cfg.withDefaults()
	s := deps.Sim
	o := s.Obs()
	sup := &Supervisor{
		cfg: cfg, deps: deps, s: s,
		sc:          o.Scope("supervisor."+deps.Name, obs.DefaultRingSize),
		strikes:     make(map[uint16][]time.Duration),
		quarantined: make(map[uint16]bool),
	}
	pfx := "supervisor." + deps.Name + "."
	sup.restartsTotal = o.Reg.Counter(pfx + "restarts")
	sup.quarantinesTotal = o.Reg.Counter(pfx + "cs_quarantines")
	sup.missesTotal = o.Reg.Counter(pfx + "heartbeats_missed")
	sup.inmateQuarantines = o.Reg.Counter(pfx + "inmate_quarantines")
	sup.recoveryMS = o.Reg.Histogram(pfx+"recovery_ms",
		10, 50, 100, 500, 1000, 5000, 15000, 30000, 60000, 120000)
	for i, e := range deps.Endpoints {
		id := fmt.Sprintf("cs%d", i)
		ep := &endpoint{
			id: id, srv: e.Srv, host: e.Host,
			addr: e.Host.Addr(), bits: e.Host.PrefixBits(), gw: e.Host.Gateway(),
			healthy: true, backoff: cfg.RestartBackoff,
			gauge: o.Reg.Gauge(HealthGaugeName(deps.Name, id)),
		}
		ep.gauge.Set(1)
		sup.eps = append(sup.eps, ep)
	}
	deps.Router.SetHealthObserver(sup.onHealthReply)
	sup.ticker = s.Every(cfg.HeartbeatEvery, sup.tick)
	return sup
}

// Stop halts the heartbeat loop (pending restarts still fire).
func (sup *Supervisor) Stop() { sup.ticker.Stop() }

// tick probes every non-quarantined endpoint, in index order, and arms the
// per-probe deadline.
func (sup *Supervisor) tick() {
	for i, ep := range sup.eps {
		if ep.quarantined {
			continue
		}
		ep.seq++
		ep.replied = false
		seq := ep.seq
		sup.deps.Router.SendHealthProbe(i, seq)
		idx := i
		sup.s.Schedule(sup.cfg.HeartbeatTimeout, func() { sup.checkDeadline(idx, seq) })
	}
}

// onHealthReply receives heartbeat echoes from the router.
func (sup *Supervisor) onHealthReply(idx int, seq uint64) {
	if idx < 0 || idx >= len(sup.eps) {
		return
	}
	ep := sup.eps[idx]
	if ep.quarantined || seq != ep.seq {
		return // stale echo from before a restart; ignore
	}
	ep.replied = true
	ep.misses = 0
	if !ep.healthy {
		sup.markUp(idx)
	}
}

// checkDeadline runs HeartbeatTimeout after each probe: a missing echo is
// one miss; K consecutive misses mark the endpoint down and (re)schedule a
// restart. The miss count resets at each threshold crossing so an endpoint
// that crashes again mid-recovery earns a fresh (backed-off) restart
// instead of being forgotten.
func (sup *Supervisor) checkDeadline(idx int, seq uint64) {
	ep := sup.eps[idx]
	if ep.quarantined || seq != ep.seq || ep.replied {
		return
	}
	ep.misses++
	sup.missesTotal.Inc()
	if ep.misses < sup.cfg.MissThreshold {
		return
	}
	ep.misses = 0
	if ep.healthy {
		sup.markDown(idx)
	}
	if !ep.restartPend {
		sup.scheduleRestart(idx)
	}
}

// markDown transitions an endpoint to unhealthy: dispatch stops selecting
// it, its stranded flows are resolved fail-closed, and the subfarm's
// flight recorder dumps for post-mortem.
func (sup *Supervisor) markDown(idx int) {
	ep := sup.eps[idx]
	ep.healthy = false
	ep.downAt = sup.s.Now()
	ep.gauge.Set(0)
	ep.transitions = append(ep.transitions, "down@"+sup.s.Now().String())
	sup.deps.Router.SetEndpointHealth(idx, false)
	failed := sup.deps.Router.FailCloseEndpoint(idx, "containment server down")
	sup.sc.Emit(obs.Event{
		Type: EvCSDown, N: uint64(idx), SrcIP: uint32(ep.addr),
		Detail: ep.id,
	})
	sup.sc.Dump(fmt.Sprintf("containment server %s down (%d flows failed closed)", ep.id, failed))
}

// markUp transitions an endpoint back to healthy once a heartbeat echo
// confirms the restart took: dispatch resumes selecting it and the
// down->up recovery time is recorded.
func (sup *Supervisor) markUp(idx int) {
	ep := sup.eps[idx]
	ep.healthy = true
	ep.backoff = sup.cfg.RestartBackoff
	ep.gauge.Set(1)
	ep.transitions = append(ep.transitions, "up@"+sup.s.Now().String())
	sup.deps.Router.SetEndpointHealth(idx, true)
	recovery := sup.s.Now() - ep.downAt
	sup.Recoveries = append(sup.Recoveries, recovery)
	sup.recoveryMS.Observe(int64(recovery / time.Millisecond))
	sup.sc.Emit(obs.Event{
		Type: EvCSUp, N: uint64(idx), SrcIP: uint32(ep.addr),
		Detail: ep.id,
	})
}

// scheduleRestart arms the next restart attempt: capped exponential backoff
// plus sim-RNG jitter, behind the circuit breaker.
func (sup *Supervisor) scheduleRestart(idx int) {
	ep := sup.eps[idx]
	now := sup.s.Now()
	// Prune restart history to the breaker window, then check the breaker.
	kept := ep.restarts[:0]
	for _, t := range ep.restarts {
		if now-t <= sup.cfg.BreakerWindow {
			kept = append(kept, t)
		}
	}
	ep.restarts = kept
	if len(ep.restarts) >= sup.cfg.BreakerThreshold {
		sup.quarantineCS(idx)
		return
	}
	delay := ep.backoff
	delay += time.Duration(sup.s.Rand().Float64() * sup.cfg.RestartJitter * float64(delay))
	ep.backoff *= 2
	if ep.backoff > sup.cfg.RestartBackoffMax {
		ep.backoff = sup.cfg.RestartBackoffMax
	}
	ep.restartPend = true
	sup.s.Schedule(delay, func() { sup.restart(idx) })
}

// restart brings a crashed containment server back: reset the host, replay
// its addressing, rebind the listeners, re-announce ARP. Health is NOT
// assumed — only the next heartbeat echo marks the endpoint up.
func (sup *Supervisor) restart(idx int) {
	ep := sup.eps[idx]
	ep.restartPend = false
	if ep.quarantined || ep.healthy {
		return
	}
	ep.host.Reset()
	ep.host.ConfigureStatic(ep.addr, ep.bits, ep.gw)
	if err := ep.srv.Rebind(); err != nil {
		panic("supervisor: containment server rebind failed: " + err.Error())
	}
	ep.host.AnnounceARP()
	ep.restarts = append(ep.restarts, sup.s.Now())
	ep.transitions = append(ep.transitions, "restart@"+sup.s.Now().String())
	sup.restartsTotal.Inc()
	sup.sc.Emit(obs.Event{
		Type: EvCSRestart, N: uint64(idx), SrcIP: uint32(ep.addr),
		Detail: ep.id,
	})
}

// quarantineCS trips the circuit breaker: the endpoint is drained
// (remaining dependent flows fail-closed), excluded from dispatch, and no
// longer probed or restarted.
func (sup *Supervisor) quarantineCS(idx int) {
	ep := sup.eps[idx]
	if ep.quarantined {
		return
	}
	ep.quarantined = true
	ep.healthy = false
	ep.gauge.Set(0)
	ep.transitions = append(ep.transitions, "quarantine@"+sup.s.Now().String())
	sup.deps.Router.SetEndpointHealth(idx, false)
	failed := sup.deps.Router.FailCloseEndpoint(idx, "containment server quarantined")
	sup.quarantinesTotal.Inc()
	sup.sc.Emit(obs.Event{
		Type: EvCSQuarantine, N: uint64(idx), SrcIP: uint32(ep.addr),
		Detail: ep.id,
	})
	sup.sc.Dump(fmt.Sprintf("containment server %s quarantined (%d flows failed closed)", ep.id, failed))
}

// ObserveLifecycle records a trigger-driven lifecycle action against the
// inmate's strike count. Called from the subfarm's lifecycle sink, in the
// subfarm's domain.
func (sup *Supervisor) ObserveLifecycle(action string, vlan uint16) {
	sup.strike(vlan, "trigger:"+action)
}

// ReportEscape records a containment-probe escape against the inmate's
// strike count.
func (sup *Supervisor) ReportEscape(vlan uint16) {
	sup.strike(vlan, "probe-escape")
}

// strike adds one strike for an inmate and quarantines it at the
// threshold: repeated trigger firings or probe escapes mean containment is
// not holding the specimen — revert/stop it rather than keep fighting.
func (sup *Supervisor) strike(vlan uint16, why string) {
	if sup.quarantined[vlan] {
		return
	}
	now := sup.s.Now()
	kept := sup.strikes[vlan][:0]
	for _, t := range sup.strikes[vlan] {
		if now-t <= sup.cfg.InmateStrikeWindow {
			kept = append(kept, t)
		}
	}
	kept = append(kept, now)
	sup.strikes[vlan] = kept
	if len(kept) < sup.cfg.InmateStrikeThreshold {
		return
	}
	sup.quarantined[vlan] = true
	sup.inmateQuarantines.Inc()
	sup.sc.Emit(obs.Event{Type: EvInmateQuarantine, VLAN: vlan, Detail: why})
	sup.sc.Dump(fmt.Sprintf("inmate VLAN %d quarantined (%s)", vlan, why))
	// The quarantine action travels the real management network to the
	// farm controller, which cross-posts the execution into the inmate's
	// shard domain exactly like trigger-driven lifecycle actions.
	inmate.SendAction(sup.deps.Mgmt, sup.deps.Controller, sup.cfg.InmateQuarantineAction, vlan, nil)
}

// Healthy reports endpoint idx's current health.
func (sup *Supervisor) Healthy(idx int) bool {
	if idx < 0 || idx >= len(sup.eps) {
		return false
	}
	return sup.eps[idx].healthy
}

// Quarantined reports whether endpoint idx tripped the circuit breaker.
func (sup *Supervisor) Quarantined(idx int) bool {
	if idx < 0 || idx >= len(sup.eps) {
		return false
	}
	return sup.eps[idx].quarantined
}

// InmateQuarantined reports whether the supervisor quarantined a VLAN.
func (sup *Supervisor) InmateQuarantined(vlan uint16) bool { return sup.quarantined[vlan] }

// HealthHistory returns each endpoint's health-transition history, keyed
// by endpoint id ("cs0", ...). Identical across worker counts for a
// (seed, profile) pair — the shard-determinism test DeepEquals it.
func (sup *Supervisor) HealthHistory() map[string][]string {
	out := make(map[string][]string, len(sup.eps))
	for _, ep := range sup.eps {
		out[ep.id] = append([]string(nil), ep.transitions...)
	}
	return out
}
