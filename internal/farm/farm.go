// Package farm assembles GQ: the central gateway between the outside
// network and the internal machinery, per-subfarm packet routers and
// containment servers, infrastructure services (DHCP, DNS, sinks), the
// management network with the inmate controller, inmates with their
// auto-infection boot sequence, and reporting (Fig. 1, Fig. 3).
package farm

import (
	"fmt"
	"time"

	"gq/internal/containment"
	"gq/internal/dhcp"
	"gq/internal/dnsx"
	"gq/internal/gateway"
	"gq/internal/host"
	"gq/internal/inmate"
	"gq/internal/nat"
	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/policy"
	"gq/internal/rawiron"
	"gq/internal/report"
	"gq/internal/shim"
	"gq/internal/sim"
	"gq/internal/sink"
	"gq/internal/smtpx"
	"gq/internal/supervisor"
)

// Farm is a complete GQ deployment.
type Farm struct {
	Sim     *sim.Simulator
	Gateway *gateway.Gateway

	// Coord, when non-nil, shards the farm: each subfarm is built inside
	// its own simulation domain and the domains run on worker goroutines
	// under the coordinator's conservative lookahead synchronization. The
	// gateway core, management network and controller stay in the root
	// domain (f.Sim); external hosts are hash-assigned to the dedicated
	// external domains below, so the flat Internet segment no longer
	// serializes on the root.
	Coord *sim.Coordinator

	// extDomains/extSwitches are the external shards: dedicated domains
	// each carrying a slice of the flat Internet segment, bridged to the
	// root InternetSwitch over a trunk at netsim.TrunkLatency. Empty for
	// an unsharded farm.
	extDomains  []*sim.Simulator
	extSwitches []*netsim.Switch

	// InmateSwitch carries all subfarm VLANs; InternetSwitch is the flat
	// "outside world"; MgmtSwitch the management network.
	InmateSwitch   *netsim.Switch
	InternetSwitch *netsim.Switch
	MgmtSwitch     *netsim.Switch

	// Controller is the farm-wide inmate controller (conceptually on the
	// gateway, §5.5).
	Controller     *inmate.Controller
	ControllerHost *host.Host

	// CBL is the shared blacklist feed.
	CBL *report.CBL

	Subfarms []*Subfarm

	// Tree is the farm-root supervision node, built by SuperviseTree: it
	// owns the controller restart ladder, watches recycler progress and
	// external-shard hosts, and holds the global dead-man switch.
	Tree *supervisor.Root

	// extHosts records hosts placed on the flat Internet segment, in
	// creation order, so SuperviseTree can register aliveness watches over
	// the ones present at wiring time.
	extHosts []*host.Host

	// Controller addressing snapshot (taken at build) replayed by
	// restartController, plus the no-tree restart-dedup stamp.
	ctlAddr      netstack.Addr
	ctlBits      int
	ctlRestarted bool
	ctlRestartAt time.Duration

	nextMAC  uint32
	nextMgmt int
}

// New builds the farm skeleton: gateway, three networks, controller.
// Everything runs in one simulation domain on the calling goroutine.
func New(seed int64) *Farm {
	return build(seed, nil, 0)
}

// NewSharded builds the farm skeleton for sharded execution: every
// subsequently added subfarm gets its own simulation domain, external
// hosts land in one dedicated external domain, and Run drives the domains
// on up to workers goroutines under conservative lookahead
// synchronization (netsim.TrunkLatency — the modeled trunk latency).
// Results are byte-identical to each other for a given seed regardless of
// the worker count, though not to the single-domain farm: the trunk
// latency shifts event timing.
func NewSharded(seed int64, workers int) *Farm {
	return NewShardedN(seed, workers, 1)
}

// NewShardedN is NewSharded with an explicit external shard count: the
// flat Internet segment is split across extShards dedicated domains and
// AddExternalHost hash-assigns each host to one of them, so sink- and
// C&C-heavy workloads spread across shards instead of serializing on the
// root. extShards < 1 selects 1.
func NewShardedN(seed int64, workers, extShards int) *Farm {
	if extShards < 1 {
		extShards = 1
	}
	s := sim.New(seed)
	return build(seed, sim.NewCoordinator(s, netsim.TrunkLatency, workers), extShards)
}

func build(seed int64, coord *sim.Coordinator, extShards int) *Farm {
	var s *sim.Simulator
	if coord != nil {
		s = coord.Root()
	} else {
		s = sim.New(seed)
	}
	f := &Farm{
		Coord:          coord,
		Sim:            s,
		Gateway:        gateway.New(s),
		InmateSwitch:   netsim.NewSwitch(s, "inmate-net"),
		InternetSwitch: netsim.NewSwitch(s, "internet"),
		MgmtSwitch:     netsim.NewSwitch(s, "mgmt-net"),
		CBL:            report.NewCBL(s),
		nextMgmt:       10,
	}
	// Verdict bits render symbolically in journals; naming happens only at
	// serialization time, never on the datapath.
	s.Obs().Journal.SetVerdictNamer(func(v uint32) string { return shim.Verdict(v).String() })
	netsim.Connect(f.InmateSwitch.AddTrunkPort("gw-uplink"), f.Gateway.Trunk(), 0)
	netsim.Connect(f.InternetSwitch.AddAccessPort("gw", 100), f.Gateway.Outside(), 0)

	ctlHost := f.newHost("inmate-controller")
	netsim.Connect(f.MgmtSwitch.AddAccessPort("controller", 999), ctlHost.NIC(), 0)
	ctlHost.ConfigureStatic(netstack.MustParseAddr("172.16.0.1"), 24, 0)
	f.ctlAddr, f.ctlBits = netstack.MustParseAddr("172.16.0.1"), 24
	ctl, err := inmate.NewController(ctlHost)
	if err != nil {
		panic(err)
	}
	f.Controller = ctl
	f.ControllerHost = ctlHost

	// External shards: each is a dedicated domain carrying a slice of the
	// flat Internet segment on its own learning switch, bridged to the
	// root InternetSwitch with a VLAN-100 access-port pair at the trunk
	// latency. Broadcasts (gateway proxy-ARP) flood across the bridge both
	// ways, so the segment stays one flat L2 network — it just no longer
	// runs on the root's clock.
	for k := 0; k < extShards && coord != nil; k++ {
		dom := coord.NewDomain()
		sw := netsim.NewSwitch(dom, fmt.Sprintf("internet-ext%d", k))
		netsim.Connect(
			f.InternetSwitch.AddAccessPort(fmt.Sprintf("ext%d", k), 100),
			sw.AddAccessPort("uplink", 100),
			netsim.TrunkLatency,
		)
		f.extDomains = append(f.extDomains, dom)
		f.extSwitches = append(f.extSwitches, sw)
	}
	return f
}

func (f *Farm) newHost(name string) *host.Host { return f.newHostIn(f.Sim, name) }

// newHostIn creates a host in simulation domain s. MAC assignment stays a
// farm-wide counter: hosts are created during topology construction
// (single-goroutine), and farm-unique MACs are what lets each router keep
// an independent learning table.
func (f *Farm) newHostIn(s *sim.Simulator, name string) *host.Host {
	f.nextMAC++
	mac := netstack.MAC{0x02, 0x42, byte(f.nextMAC >> 16), byte(f.nextMAC >> 8), byte(f.nextMAC), 0x01}
	return host.New(s, name, mac)
}

// AddExternalHost attaches a host to the flat Internet segment. On a
// sharded farm the host is hash-assigned by address to one of the external
// domains, so the outside world's protocol stacks run in parallel with the
// gateway instead of serializing on the root. The assignment depends only
// on the address, keeping placement — and therefore the journal — stable
// across runs.
func (f *Farm) AddExternalHost(name string, addr netstack.Addr) *host.Host {
	dom, sw := f.Sim, f.InternetSwitch
	if n := len(f.extDomains); n > 0 {
		k := int(extShardHash(addr.String()) % uint32(n))
		dom, sw = f.extDomains[k], f.extSwitches[k]
	}
	h := f.newHostIn(dom, name)
	netsim.Connect(sw.AddAccessPort(name, 100), h.NIC(), 0)
	h.ConfigureStatic(addr, 0, 0) // flat Internet: everything on-link
	f.extHosts = append(f.extHosts, h)
	return h
}

// ExternalShards reports how many dedicated external domains the farm has
// (zero when unsharded).
func (f *Farm) ExternalShards() int { return len(f.extDomains) }

// ExternalShardFor reports which external shard AddExternalHost would
// place a host with the given address in (0 when the farm has none).
// Operators use it to co-locate chatty external services in one domain so
// their mutual traffic stays off the cross-domain trunks.
func (f *Farm) ExternalShardFor(addr netstack.Addr) int {
	if n := len(f.extDomains); n > 0 {
		return int(extShardHash(addr.String()) % uint32(n))
	}
	return 0
}

// extShardHash is FNV-1a over the address text.
func extShardHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Run advances the whole farm by d of virtual time — through the
// coordinator when the farm is sharded, directly otherwise.
func (f *Farm) Run(d time.Duration) {
	if f.Coord != nil {
		f.Coord.RunFor(d)
		return
	}
	f.Sim.RunFor(d)
}

// SubfarmConfig parameterises one independent experiment habitat (Fig. 3).
type SubfarmConfig struct {
	Name           string
	VLANLo, VLANHi uint16
	// ServiceVLAN hosts this subfarm's infrastructure.
	ServiceVLAN uint16

	InternalPrefix netstack.Prefix // default 10.0.0.0/16
	ServicePrefix  netstack.Prefix // default 10.3.0.0/16
	GlobalPool     netstack.Prefix
	InfraPool      netstack.Prefix
	InboundMode    nat.Mode

	MaxFlowsPerMinute        int
	MaxFlowsPerDestPerMinute int
	// MaxFlows bounds the router's flow table; at the bound the least-
	// recently-active flow is shed with an RST. Zero means the gateway
	// default (gateway.DefaultMaxFlows).
	MaxFlows int

	// PolicyConfig is the Fig. 6 containment server configuration text.
	PolicyConfig string
	// FallbackPolicy names the decider for unassigned VLANs (default
	// DefaultDeny).
	FallbackPolicy string

	// SampleLibrary holds the specimens Infection globs select from.
	SampleLibrary []*policy.Sample
	// RepeatBatches re-serves the last sample at batch end (long-running
	// deployments).
	RepeatBatches bool

	// CCHosts names family C&C endpoints for policies and specimens.
	CCHosts map[string]policy.AddrPort
	// SpamTargets are the MXes specimens will try to deliver to.
	SpamTargets []netstack.Addr
	// SpamBatch sets how many messages a spambot delivers per SMTP
	// session (0 = the specimen default of one). The paper's Table 1
	// engines batch aggressively — Rustock pushes many DATA transactions
	// down one connection — so spam-heavy reproductions set this to keep
	// sessions long-lived rather than one-shot.
	SpamBatch int
	// GMailMX is the probe target for Waledac-class bots.
	GMailMX netstack.Addr

	// StdlibHTTPSink serves the HTTP sink with an unmodified net/http
	// server over the hostnet blocking facade instead of the callback
	// HTTPSink. Its handler goroutines are detached (DESIGN.md §3g), so
	// the farm must be driven with Simulator.Pump and cannot be sharded;
	// AddSubfarm rejects the combination.
	StdlibHTTPSink bool

	// SinkDropProb configures the SMTP sink's probabilistic connection
	// dropping.
	SinkDropProb float64
	// SinkStrictness selects the sinks' SMTP engine tolerance.
	SinkStrictness smtpx.Strictness
	// BannerGrab enables the banner-grabbing sink behaviour.
	BannerGrab bool

	// DNSZones seeds the subfarm resolver.
	DNSZones map[string]netstack.Addr

	// AccessLatency is the one-way latency of every inmate and service
	// access link in the subfarm (0 = ideal wire). Setting it models the
	// switched path plus host turnaround, so protocol dialogs occupy
	// virtual time the way they occupy wall time on the real farm instead
	// of collapsing into instantaneous event cascades.
	AccessLatency time.Duration

	// ContainmentServers > 1 deploys a cluster of containment servers with
	// sticky per-inmate selection (§7.2 scalability extension).
	ContainmentServers int

	// GRETunnels graft additional routable address space from cooperating
	// networks (§7.2); NAT spills into the tunnel pools once GlobalPool is
	// exhausted. Deploy a gateway.GREPeer on the Internet switch to own
	// the other end.
	GRETunnels []gateway.GRETunnel
}

// Subfarm is one running habitat.
type Subfarm struct {
	Farm   *Farm
	Name   string
	Config SubfarmConfig
	Router *gateway.Router

	// Sim is the simulation domain this subfarm runs in: the farm's root
	// simulator normally, a dedicated domain when the farm is sharded.
	Sim *sim.Simulator
	// sw is the switch carrying this subfarm's VLANs: the farm-wide
	// InmateSwitch normally, a private per-subfarm switch when sharded.
	sw *netsim.Switch

	CS     *containment.Server
	CSHost *host.Host
	CSMgmt *host.Host
	// CSCluster holds all containment server instances (index 0 == CS).
	CSCluster    []*containment.Server
	Policy       *policy.Env
	PolicyConfig *policy.Config
	Samples      *policy.BatchProvider

	CatchAll   *sink.CatchAll
	SMTPSink   *sink.SMTPSink
	BannerSink *sink.SMTPSink
	// HTTPSink is the callback click sink; nil when the subfarm was built
	// with StdlibHTTPSink, in which case HTTPServerSink is set instead.
	HTTPSink       *sink.HTTPSink
	HTTPServerSink *sink.HTTPServerSink
	DHCP           *dhcp.Server
	DNS            *dnsx.Server

	// SvcHosts indexes the service-VLAN hosts by role ("cs0", "cs1", ...,
	// "catchall", "smtpsink", "bannersink", "httpsink") so fault injection
	// can take individual services down and bring them back.
	SvcHosts map[string]*host.Host

	// Supervisor, when non-nil (see Supervise), self-heals the containment
	// plane: heartbeat health tracking, health-aware dispatch, supervised
	// restarts, inmate quarantine.
	Supervisor *supervisor.Supervisor

	SMTPAnalyzer *report.SMTPAnalyzer
	ShimAnalyzer *report.ShimAnalyzer

	VLANs   *inmate.VLANPool
	Inmates map[uint16]*FarmInmate

	// OnBootHook, when set, replaces the default auto-infection boot
	// sequence (worm experiments install vulnerable services instead).
	OnBootHook func(fi *FarmInmate)

	// RawIron, when non-nil (see EnableRawIron), manages the subfarm's
	// physical boxes; Recycler, when non-nil (see AttachRecycler), drives
	// them through the detonate→capture→reimage→readmit pipeline.
	RawIron  *rawiron.Controller
	Recycler *Recycler
	// nextPower allocates power-sequencer ports for AddRawIronInmate.
	nextPower int
}

// Service addresses within a subfarm's service prefix.
var (
	csAddrOff         = 1 // .0.1
	catchAllOff       = 2
	smtpSinkOff       = 3
	bannerSinkOff     = 4
	httpSinkOff       = 5
	defaultSvcGateway = 254
)

// DefaultAutoinfect is the virtual auto-infection server location used
// when the policy config does not specify one.
var DefaultAutoinfect = policy.AddrPort{Addr: netstack.MustParseAddr("10.9.8.7"), Port: 6543}

// ContainmentPort is the containment servers' service port.
const ContainmentPort = 6666
