package farm

import (
	"fmt"

	"gq/internal/inmate"
	"gq/internal/obs"
	"gq/internal/policy"
	"gq/internal/rawiron"
)

// This file holds the runtime-control surface the live ops plane
// (internal/ops) drives. Every method here mutates sim-owned state and
// therefore MUST run on the subfarm's simulation goroutine — the ops plane
// arranges that by wrapping each call in an injected sim event. Each
// applied action is journalled on the subfarm's scope so a served run's
// journal records operator intervention in the same total order as
// everything else.

// opsScope returns the subfarm's journal scope (idempotent by name, so
// this is the same scope Build created).
func (sf *Subfarm) opsScope() *obs.Scope {
	return sf.Sim.Obs().Scope(sf.Name, 0)
}

// SwapPolicy replaces the containment policy for the VLAN range [lo,hi]
// on every cluster member with the named decider. An exact-match range is
// replaced in place; otherwise the new range is prepended so it shadows
// any overlapping assignment (first match wins in the dispatch). The swap
// is journalled as ops.policy_swap.
func (sf *Subfarm) SwapPolicy(lo, hi uint16, name string) error {
	if lo > hi {
		return fmt.Errorf("swap policy: inverted range [%d,%d]", lo, hi)
	}
	d, err := policy.New(name, sf.Policy)
	if err != nil {
		return fmt.Errorf("swap policy: %w", err)
	}
	d = policy.Instrument(d, sf.Sim.Obs().Reg)
	for _, srv := range sf.CSCluster {
		srv.SwapPolicy(lo, hi, d)
	}
	sf.opsScope().Emit(obs.Event{
		Type: obs.EvOpsPolicySwap, VLAN: lo, N: uint64(hi), Detail: name,
	})
	return nil
}

// QuarantineInmate routes a lifecycle action ("stop", "revert",
// "terminate", ...) for one inmate VLAN through the farm-wide inmate
// controller and journals it as ops.quarantine. On a sharded farm this
// runs inside the subfarm's domain while the controller is root-domain
// state, so the action is validated here and then posted across the
// management trunk; the controller executes it one lookahead later and
// dispatches the VMM command back into the inmate's domain.
func (sf *Subfarm) QuarantineInmate(vlan uint16, action string) error {
	if _, ok := sf.Inmates[vlan]; !ok {
		return fmt.Errorf("quarantine: no inmate on VLAN %d", vlan)
	}
	ctl, root := sf.Farm.Controller, sf.Farm.Sim
	if sf.Sim != root {
		if !inmate.KnownAction(action) {
			return fmt.Errorf("quarantine: unknown action %q", action)
		}
		sf.Sim.PostTo(root, 0, func() { ctl.Execute(action, vlan) })
	} else if err := ctl.Execute(action, vlan); err != nil {
		return fmt.Errorf("quarantine: %w", err)
	}
	sf.opsScope().Emit(obs.Event{
		Type: obs.EvOpsQuarantine, VLAN: vlan, Detail: action,
	})
	return nil
}

// MachineInfo is the ops plane's view of one raw-iron machine.
type MachineInfo struct {
	Subfarm     string `json:"subfarm"`
	Name        string `json:"name"`
	VLAN        uint16 `json:"vlan"`
	State       string `json:"state"`
	PowerOn     bool   `json:"power_on"`
	Busy        bool   `json:"busy"`
	DiskImage   string `json:"disk_image"`
	Retries     int    `json:"retries"`
	BreakerLoad int    `json:"breaker_load"`
	Quarantined bool   `json:"quarantined"`
}

// Machines lists the subfarm's raw-iron machines (registration order)
// with their lifecycle, retry, and breaker status.
func (sf *Subfarm) Machines() []MachineInfo {
	if sf.RawIron == nil {
		return nil
	}
	out := make([]MachineInfo, 0, len(sf.RawIron.Machines()))
	for _, m := range sf.RawIron.Machines() {
		out = append(out, MachineInfo{
			Subfarm: sf.Name, Name: m.Name, VLAN: m.VLAN,
			State: m.State.String(), PowerOn: sf.RawIron.Seq.On(m.PowerPort),
			Busy: m.Busy(), DiskImage: m.DiskImage, Retries: m.Retries,
			BreakerLoad: m.BreakerLoad(), Quarantined: m.State == rawiron.Quarantined,
		})
	}
	return out
}

// RecycleInmate forces one raw-iron inmate out of its detonation window
// through the capture→reimage→readmit path, journalled as ops.recycle.
func (sf *Subfarm) RecycleInmate(vlan uint16) error {
	if sf.Recycler == nil {
		return fmt.Errorf("recycle: subfarm %s has no recycling pipeline", sf.Name)
	}
	if err := sf.Recycler.Kick(vlan); err != nil {
		return fmt.Errorf("recycle: %w", err)
	}
	sf.opsScope().Emit(obs.Event{Type: obs.EvOpsRecycle, VLAN: vlan})
	return nil
}
