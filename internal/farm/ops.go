package farm

import (
	"fmt"

	"gq/internal/obs"
	"gq/internal/policy"
)

// This file holds the runtime-control surface the live ops plane
// (internal/ops) drives. Every method here mutates sim-owned state and
// therefore MUST run on the subfarm's simulation goroutine — the ops plane
// arranges that by wrapping each call in an injected sim event. Each
// applied action is journalled on the subfarm's scope so a served run's
// journal records operator intervention in the same total order as
// everything else.

// opsScope returns the subfarm's journal scope (idempotent by name, so
// this is the same scope Build created).
func (sf *Subfarm) opsScope() *obs.Scope {
	return sf.Sim.Obs().Scope(sf.Name, 0)
}

// SwapPolicy replaces the containment policy for the VLAN range [lo,hi]
// on every cluster member with the named decider. An exact-match range is
// replaced in place; otherwise the new range is prepended so it shadows
// any overlapping assignment (first match wins in the dispatch). The swap
// is journalled as ops.policy_swap.
func (sf *Subfarm) SwapPolicy(lo, hi uint16, name string) error {
	if lo > hi {
		return fmt.Errorf("swap policy: inverted range [%d,%d]", lo, hi)
	}
	d, err := policy.New(name, sf.Policy)
	if err != nil {
		return fmt.Errorf("swap policy: %w", err)
	}
	d = policy.Instrument(d, sf.Sim.Obs().Reg)
	for _, srv := range sf.CSCluster {
		srv.SwapPolicy(lo, hi, d)
	}
	sf.opsScope().Emit(obs.Event{
		Type: obs.EvOpsPolicySwap, VLAN: lo, N: uint64(hi), Detail: name,
	})
	return nil
}

// QuarantineInmate routes a lifecycle action ("stop", "revert",
// "terminate", ...) for one inmate VLAN through the farm-wide inmate
// controller and journals it as ops.quarantine.
func (sf *Subfarm) QuarantineInmate(vlan uint16, action string) error {
	if _, ok := sf.Inmates[vlan]; !ok {
		return fmt.Errorf("quarantine: no inmate on VLAN %d", vlan)
	}
	if err := sf.Farm.Controller.Execute(action, vlan); err != nil {
		return fmt.Errorf("quarantine: %w", err)
	}
	sf.opsScope().Emit(obs.Event{
		Type: obs.EvOpsQuarantine, VLAN: vlan, Detail: action,
	})
	return nil
}
