package farm

// Tests in this file reproduce the operational experiences of §7.1: the
// containment-derived insights GQ's six years of operation surfaced.

import (
	"strings"
	"testing"
	"time"

	"gq/internal/malware"
	"gq/internal/nat"
	"gq/internal/netstack"
	"gq/internal/policy"
	"gq/internal/smtpx"
)

// waledacFarm builds a subfarm running one Waledac inmate under the given
// policy, with a real (simulated) GMail MX outside.
func waledacFarm(t *testing.T, seed int64, decider string) (*Farm, *Subfarm, *FarmInmate, *malware.GMailMX) {
	t.Helper()
	f := New(seed)
	gmailAddr := netstack.MustParseAddr("172.217.0.25")
	gmailHost := f.AddExternalHost("gmail", gmailAddr)
	gmail, err := malware.NewGMailMX(gmailHost, []string{"wergvan"})
	if err != nil {
		t.Fatal(err)
	}
	// The GMail operator feeds the CBL: fingerprinted HELOs get their
	// senders listed (§7.1 "mysterious blacklisting").
	gmail.OnFingerprint = func(sender netstack.Addr, helo string) {
		f.CBL.List(sender, "recognisable HELO "+helo+" fingerprinted by receiving MX")
	}

	sf, err := f.AddSubfarm(SubfarmConfig{
		Name:   "Waledacfarm",
		VLANLo: 20, VLANHi: 24,
		ServiceVLAN:  12,
		GlobalPool:   netstack.MustParsePrefix("192.0.2.0/24"),
		InfraPool:    netstack.MustParsePrefix("192.0.9.0/24"),
		PolicyConfig: "[VLAN 20-24]\nDecider = " + decider + "\nInfection = waledac.*.exe\n",
		SampleLibrary: []*policy.Sample{
			policy.NewSample("waledac.090601.exe", "waledac", []byte("MZ-waledac")),
		},
		RepeatBatches: true,
		CCHosts: map[string]policy.AddrPort{
			"GMailMX": {Addr: gmailAddr, Port: 25},
		},
		GMailMX:        gmailAddr,
		SpamTargets:    []netstack.Addr{netstack.MustParseAddr("203.0.113.25")},
		SinkStrictness: smtpx.Lenient,
	})
	if err != nil {
		t.Fatal(err)
	}
	bot, err := sf.AddInmate("waledac-0")
	if err != nil {
		t.Fatal(err)
	}
	return f, sf, bot, gmail
}

// X1: "Mysterious blacklisting" — permitting even a single seemingly
// innocuous test SMTP message to GMail gets the inmate's global address
// onto the CBL, because the HELO string is fingerprinted remotely.
func TestWaledacBlacklisting(t *testing.T) {
	f, sf, bot, gmail := waledacFarm(t, 31, "WaledacTestSMTP")
	f.Run(30 * time.Minute)

	if gmail.Deliveries == 0 {
		t.Fatal("the permitted test message never arrived")
	}
	global := sf.Router.NAT().ByVLAN(bot.VLAN).Global
	if !f.CBL.Listed(global) {
		t.Fatalf("inmate %v not listed despite fingerprinted HELO", global)
	}
	// The report surfaces the containment failure.
	text := f.Reporter(false).Generate()
	if !strings.Contains(text, "WARNING") || !strings.Contains(text, "CBL") {
		t.Fatalf("report does not warn about the listing:\n%s", text)
	}
	// The consequence: GQ "stopped the policy of allowing even seemingly
	// innocuous non-spam test SMTP exchanges". The tightened policy keeps
	// the farm clean.
	f2, sf2, bot2, gmail2 := waledacFarm(t, 32, "Waledac")
	f2.Run(30 * time.Minute)
	if gmail2.Deliveries != 0 {
		t.Fatal("tightened policy leaked SMTP to GMail")
	}
	if f2.CBL.ListedCount() != 0 {
		t.Fatal("tightened policy still got inmates listed")
	}
	// And the bot went dormant (its probe was contained) — the fidelity
	// cost of tight containment the paper discusses.
	_ = sf2
	if sp, ok := bot2.Specimen.(interface{ Family() string }); !ok || sp.Family() != "waledac" {
		t.Fatal("specimen missing")
	}
	_ = sf
}

// X2: "Unexpected visitors" — a Storm proxy inmate receives a SOCKS-style
// relay job for FTP iframe injection from an upstream botmaster; the
// containment policy reflects the outbound FTP to the catch-all sink,
// where the attack becomes visible (and harmless).
func TestStormIframeInjection(t *testing.T) {
	f := New(33)
	ccAddr := netstack.MustParseAddr("198.51.100.80")
	f.AddExternalHost("storm-cc", ccAddr) // HTTP C&C endpoint (no listener needed for poll fidelity)
	masterHost := f.AddExternalHost("botmaster", netstack.MustParseAddr("198.51.100.90"))

	sf, err := f.AddSubfarm(SubfarmConfig{
		Name:   "Stormfarm",
		VLANLo: 40, VLANHi: 44,
		ServiceVLAN:  13,
		GlobalPool:   netstack.MustParsePrefix("192.0.3.0/24"),
		InboundMode:  nat.ForwardInbound,
		PolicyConfig: "[VLAN 40-44]\nDecider = Storm\nInfection = storm.*.exe\n",
		SampleLibrary: []*policy.Sample{
			policy.NewSample("storm.080601.exe", "storm-proxy", []byte("MZ-storm")),
		},
		RepeatBatches: true,
		CCHosts: map[string]policy.AddrPort{
			"Storm": {Addr: ccAddr, Port: 80},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bot, err := sf.AddInmate("storm-0")
	if err != nil {
		t.Fatal(err)
	}
	f.Run(2 * time.Minute) // boot + infection

	if bot.Family != "storm-proxy" {
		t.Fatalf("family %q", bot.Family)
	}
	// The upstream botmaster pushes the injection job to the proxy's
	// public address.
	global := sf.Router.NAT().ByVLAN(bot.VLAN).Global
	master := malware.NewStormMaster(masterHost)
	victimFTP := netstack.MustParseAddr("203.0.113.21")
	master.SendRelayJob(global, victimFTP, 21, []byte(malware.FTPInjectionPayload))
	f.Run(5 * time.Minute)

	proxy := bot.Specimen.(*malware.StormProxy)
	if proxy.JobsReceived != 1 || proxy.RelaysOpened != 1 {
		t.Fatalf("jobs=%d relays=%d", proxy.JobsReceived, proxy.RelaysOpened)
	}
	// The FTP attempt arrived at the sink, not the victim.
	hits := sf.CatchAll.FlowsMatching("iframe")
	if len(hits) != 1 || hits[0].Port != 21 {
		t.Fatalf("injection not captured at sink: %+v", sf.CatchAll.Flows)
	}
}

// X3/X4: the fidelity ladder — silent sink, wrong banner, plausible static
// banner, grabbed real banner — determines which rungs keep a
// banner-sensitive specimen alive (§7.1 "satisfying fidelity").
func TestFidelityLadder(t *testing.T) {
	run := func(seed int64, cfgFn func(*SubfarmConfig)) (*Subfarm, *FarmInmate, *Farm) {
		f := New(seed)
		gmailAddr := netstack.MustParseAddr("172.217.0.25")
		gmailHost := f.AddExternalHost("gmail", gmailAddr)
		malware.NewGMailMX(gmailHost, nil)
		// A "real" corporate MX outside, for banner grabbing.
		mxHost := f.AddExternalHost("realmx", netstack.MustParseAddr("203.0.113.25"))
		srv := &smtpx.Server{Banner: "220 mx.realcorp.example ESMTP", Strictness: smtpx.Lenient}
		srv.Serve(mxHost, 25)

		cfg := SubfarmConfig{
			Name:   "ladder",
			VLANLo: 20, VLANHi: 22,
			ServiceVLAN:  12,
			GlobalPool:   netstack.MustParsePrefix("192.0.2.0/24"),
			InfraPool:    netstack.MustParsePrefix("192.0.9.0/24"),
			PolicyConfig: "[VLAN 20-22]\nDecider = Waledac\nInfection = *.exe\n",
			SampleLibrary: []*policy.Sample{
				policy.NewSample("waledac.exe", "waledac", []byte("MZ"))},
			RepeatBatches:  true,
			CCHosts:        map[string]policy.AddrPort{"GMailMX": {Addr: gmailAddr, Port: 25}},
			GMailMX:        gmailAddr,
			SpamTargets:    []netstack.Addr{netstack.MustParseAddr("203.0.113.25")},
			SinkStrictness: smtpx.Lenient,
		}
		cfgFn(&cfg)
		sf, err := f.AddSubfarm(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bot, err := sf.AddInmate("w0")
		if err != nil {
			t.Fatal(err)
		}
		f.Run(45 * time.Minute)
		return sf, bot, f
	}

	// Waledac probes GMail first. Its probe is contained (Waledac policy
	// reflects all SMTP to the banner sink) — so the probe's fate depends
	// on the sink's fidelity toward the GMail banner.
	t.Run("wrong-banner-goes-dormant", func(t *testing.T) {
		sf, bot, _ := run(41, func(cfg *SubfarmConfig) {
			cfg.BannerGrab = false // static non-Google banner
		})
		w := bot.Specimen
		if w == nil {
			t.Fatal("no specimen")
		}
		if sf.BannerSink.DataTransfers != 0 {
			t.Fatalf("dormant bot delivered %d messages", sf.BannerSink.DataTransfers)
		}
	})
	t.Run("grabbed-banner-keeps-bot-alive", func(t *testing.T) {
		sf, _, _ := run(42, func(cfg *SubfarmConfig) {
			cfg.BannerGrab = true
		})
		if sf.BannerSink.GrabAttempts == 0 {
			t.Fatal("sink never grabbed a banner")
		}
		if sf.BannerSink.DataTransfers == 0 {
			t.Fatal("banner-grabbing sink failed to keep the specimen spamming")
		}
	})
}

// X3: protocol violations at farm level — a strict sink shows healthy
// connection-level activity but a meagre content level for sloppy bots.
func TestSMTPLeniencyFarm(t *testing.T) {
	build := func(seed int64, strict smtpx.Strictness) *Subfarm {
		f := New(seed)
		ccAddr := netstack.MustParseAddr("50.8.207.91")
		cc := f.AddExternalHost("cc", ccAddr)
		malware.NewCCServer(cc, malware.CCConfig{Template: "w",
			Targets: []netstack.Addr{netstack.MustParseAddr("203.0.113.25")}})
		sf, err := f.AddSubfarm(SubfarmConfig{
			Name: "grumfarm", VLANLo: 18, VLANHi: 19, ServiceVLAN: 12,
			GlobalPool:   netstack.MustParsePrefix("192.0.2.0/24"),
			PolicyConfig: "[VLAN 18-19]\nDecider = Grum\nInfection = *.exe\n",
			SampleLibrary: []*policy.Sample{
				policy.NewSample("grum.exe", "grum", []byte("MZ"))},
			RepeatBatches:  true,
			CCHosts:        map[string]policy.AddrPort{"Grum": {Addr: ccAddr, Port: 80}},
			SinkStrictness: strict,
		})
		if err != nil {
			t.Fatal(err)
		}
		sf.AddInmate("g0")
		f.Run(20 * time.Minute)
		return sf
	}
	strictFarm := build(51, smtpx.Strict)
	if strictFarm.BannerSink.Sessions == 0 {
		t.Fatal("no sessions under strict sink")
	}
	if strictFarm.BannerSink.DataTransfers != 0 {
		t.Fatalf("strict sink reached DATA %d times for sloppy Grum", strictFarm.BannerSink.DataTransfers)
	}
	lenientFarm := build(52, smtpx.Lenient)
	if lenientFarm.BannerSink.DataTransfers == 0 {
		t.Fatal("lenient sink never reached DATA")
	}
}

// X5: "Unclear phylogenies" — a split-personality specimen run under a
// mismatched policy stays contained: whichever personality it exhibits,
// no spam or unknown C&C escapes.
func TestSplitPersonalityContainment(t *testing.T) {
	for seed := int64(61); seed < 65; seed++ {
		f := New(seed)
		megadCC := netstack.MustParseAddr("198.51.100.77")
		grumCC := netstack.MustParseAddr("50.8.207.91")
		// External hosts exist so routing works; any arriving SMTP would be
		// a leak, checked against flow records below.
		for _, addr := range []netstack.Addr{megadCC, grumCC, netstack.MustParseAddr("203.0.113.25")} {
			f.AddExternalHost("x"+addr.String(), addr)
		}

		sf, err := f.AddSubfarm(SubfarmConfig{
			Name: "phylo", VLANLo: 70, VLANHi: 72, ServiceVLAN: 14,
			GlobalPool: netstack.MustParsePrefix("192.0.4.0/24"),
			// The analyst THINKS it's MegaD.
			PolicyConfig: "[VLAN 70-72]\nDecider = MegaD\nInfection = *.exe\n",
			SampleLibrary: []*policy.Sample{
				policy.NewSample("mystery.100215.exe", "split-personality", []byte("MZ?"))},
			RepeatBatches:  true,
			CCHosts:        map[string]policy.AddrPort{"MegaD": {Addr: megadCC, Port: 4560}},
			SinkStrictness: smtpx.Lenient,
		})
		if err != nil {
			t.Fatal(err)
		}
		bot, _ := sf.AddInmate("mystery")
		f.Run(15 * time.Minute)

		// Whichever personality emerged, zero spam reached the outside:
		// every SMTP flow was reflected.
		for _, rec := range sf.Router.Records() {
			if rec.RespPort == 25 && rec.Verdict != 0 && !rec.Verdict.Has(2 /*drop*/) {
				if rec.ActualRespIP != 0 && !sf.Config.GlobalPool.Contains(rec.ActualRespIP) &&
					!netstack.MustParsePrefix("10.0.0.0/8").Contains(rec.ActualRespIP) {
					t.Fatalf("seed %d: SMTP flow escaped to %v", seed, rec.ActualRespIP)
				}
			}
		}
		// And the mismatch is observable: a Grum personality produces
		// catch-all sink flows to the unexpected Grum C&C.
		sp := bot.Specimen.(interface{ Family() string })
		if sp.Family() != "split-personality" {
			t.Fatalf("family %q", sp.Family())
		}
	}
}
