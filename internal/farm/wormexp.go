package farm

import (
	"fmt"
	"time"

	"gq/internal/host"
	"gq/internal/malware"
	"gq/internal/nat"
	"gq/internal/netstack"
	"gq/internal/policy"
)

// InfectionEvent records one observed infection in a worm experiment.
type InfectionEvent struct {
	At         time.Duration
	VLAN       uint16
	Executable string
	Name       string
}

// WormExperiment runs GQ's original worm-capturing honeyfarm (§2, §7.1):
// inmates present vulnerable services; the traditional honeyfarm model
// lets external traffic infect them directly (inbound NAT forwarding); the
// WormCapture containment policy redirects outbound propagation attempts
// to additional analysis machines in the farm, so infection chains stay
// internal and incubation periods are measurable.
type WormExperiment struct {
	Farm    *Farm
	Subfarm *Subfarm
	Spec    malware.WormSpec

	// Infections lists every INFECT delivery observed, in order.
	Infections []InfectionEvent
	// SeededAt is when the external seed infection executed.
	SeededAt time.Duration

	worms   map[uint16]*malware.Worm
	nextVic int
}

// wormVictims implements policy.VictimPool over the experiment's inmates.
type wormVictims struct{ e *WormExperiment }

// VictimFor implements policy.VictimPool: round-robin over running inmates
// other than the scanner itself.
func (v wormVictims) VictimFor(vlan uint16, dst netstack.Addr) (netstack.Addr, bool) {
	sf := v.e.Subfarm
	n := len(sf.Inmates)
	if n == 0 {
		return 0, false
	}
	// Deterministic round-robin across VLAN order.
	vlans := make([]uint16, 0, n)
	for vl := range sf.Inmates {
		vlans = append(vlans, vl)
	}
	for i := 1; i < len(vlans); i++ {
		for j := i; j > 0 && vlans[j] < vlans[j-1]; j-- {
			vlans[j], vlans[j-1] = vlans[j-1], vlans[j]
		}
	}
	for i := 0; i < len(vlans); i++ {
		cand := vlans[(v.e.nextVic+i)%len(vlans)]
		if cand == vlan {
			continue
		}
		fi := sf.Inmates[cand]
		internal, _, ok := sf.Router.InmateByVLAN(cand)
		if !ok || fi.State.String() != "running" {
			continue
		}
		v.e.nextVic = (v.e.nextVic + i + 1) % len(vlans)
		return internal, true
	}
	return 0, false
}

// NewWormExperiment builds a honeyfarm subfarm for one Table 1 capture
// with the given number of honeypot inmates.
func NewWormExperiment(seed int64, spec malware.WormSpec, inmates int) (*WormExperiment, error) {
	f := New(seed)
	sf, err := f.AddSubfarm(SubfarmConfig{
		Name:   "wormfarm",
		VLANLo: 100, VLANHi: uint16(100 + inmates + 4),
		ServiceVLAN:  90,
		GlobalPool:   netstack.MustParsePrefix("192.0.2.0/24"),
		InboundMode:  nat.ForwardInbound,
		PolicyConfig: fmt.Sprintf("[VLAN 100-%d]\nDecider = WormCapture\n", 100+inmates+4),
	})
	if err != nil {
		return nil, err
	}
	e := &WormExperiment{Farm: f, Subfarm: sf, Spec: spec, worms: make(map[uint16]*malware.Worm)}
	sf.Policy.Victims = wormVictims{e}

	// Honeypot boot: a vulnerable service instead of auto-infection.
	sf.OnBootHook = func(fi *FarmInmate) {
		vlan := fi.VLAN
		malware.InstallVulnerableService(fi.Host, func(exe, name string) {
			e.onInfect(fi, vlan, exe, name)
		}, malware.WormPorts...)
	}
	for i := 0; i < inmates; i++ {
		if _, err := sf.AddInmate(fmt.Sprintf("honeypot-%d", i)); err != nil {
			return nil, err
		}
	}
	return e, nil
}

func (e *WormExperiment) onInfect(fi *FarmInmate, vlan uint16, exe, name string) {
	e.Infections = append(e.Infections, InfectionEvent{
		At: e.Farm.Sim.Now(), VLAN: vlan, Executable: exe, Name: name,
	})
	if _, already := e.worms[vlan]; already {
		return // reinfection of a running instance: counted, not re-executed
	}
	ctx := &malware.Context{
		Host: fi.Host, Sim: e.Farm.Sim,
		// The worm scans the global pool — random Internet addresses from
		// its point of view; containment redirects them to victims.
		ScanPrefix: e.Subfarm.Config.GlobalPool,
	}
	w := malware.NewWorm(e.Spec, ctx)
	e.worms[vlan] = w
	fi.Specimen = w
	w.Execute()
}

// Seed infects the first honeypot from an external attacker through the
// farm's inbound path (the traditional honeyfarm model).
func (e *WormExperiment) Seed() {
	attacker := e.Farm.AddExternalHost("patient-zero", netstack.MustParseAddr("203.0.113.66"))
	// Find the lowest-VLAN inmate's global address once it has one.
	var tryInfect func(attempt int)
	tryInfect = func(attempt int) {
		if attempt > 100 {
			return
		}
		var target netstack.Addr
		var lowest uint16 = 65535
		for vlan := range e.Subfarm.Inmates {
			if vlan < lowest {
				if b := e.Subfarm.Router.NAT().ByVLAN(vlan); b != nil {
					lowest = vlan
					target = b.Global
				}
			}
		}
		if target == 0 {
			// DHCP chatter has not established the binding yet.
			e.Farm.Sim.Schedule(2*time.Second, func() { tryInfect(attempt + 1) })
			return
		}
		e.SeededAt = e.Farm.Sim.Now()
		e.exploitFromOutside(attacker, target, 1)
	}
	tryInfect(0)
}

// exploitFromOutside drives the staged exploit from the external attacker,
// mirroring the worm's own connection sequence.
func (e *WormExperiment) exploitFromOutside(attacker *host.Host, target netstack.Addr, stage int) {
	c := attacker.Dial(target, e.Spec.Port())
	last := stage == e.Spec.Conns
	connected := false
	c.OnConnect = func() {
		connected = true
		if last {
			c.Write([]byte(fmt.Sprintf("INFECT %s %s\n", e.Spec.Executable, e.Spec.Name)))
		} else {
			c.Write([]byte(fmt.Sprintf("EXPLOIT %d/%d %s\n", stage, e.Spec.Conns, e.Spec.Executable)))
		}
		c.Abort()
		if !last {
			e.Farm.Sim.Schedule(200*time.Millisecond, func() {
				e.exploitFromOutside(attacker, target, stage+1)
			})
		}
	}
	c.OnClose = func(err error) {
		if !connected {
			// Inbound path not ready yet; retry shortly.
			e.Farm.Sim.Schedule(2*time.Second, func() {
				e.exploitFromOutside(attacker, target, stage)
			})
		}
	}
}

// Result summarises the experiment for Table 1: the observed event count,
// connections per infection, and the measured incubation period (delay
// from the seed infection to the next inmate infection).
type WormResult struct {
	Spec       malware.WormSpec
	Events     int
	Incubation time.Duration
}

// Result computes the measured quantities.
func (e *WormExperiment) Result() WormResult {
	r := WormResult{Spec: e.Spec, Events: len(e.Infections)}
	if len(e.Infections) >= 2 {
		// Incubation: delay from the first (seeded) infection to the next
		// inmate's infection.
		r.Incubation = e.Infections[1].At - e.Infections[0].At
	}
	return r
}

var _ = policy.AddrPort{} // keep the policy import for wormVictims' contract
