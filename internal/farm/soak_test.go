package farm

import (
	"testing"
	"time"

	"gq/internal/shim"
)

// TestSoak24Hours runs the Botfarm for a full virtual day — the paper's
// deployments ran for weeks — checking for long-horizon pathologies: flow
// table leaks, trigger storms, stalled specimens, report rotation drift.
func TestSoak24Hours(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	f, sf := buildBotfarm(t, 99, 0.35)
	for i := 0; i < 4; i++ {
		if _, err := sf.AddInmate("bot"); err != nil {
			t.Fatal(err)
		}
	}
	rep := f.Reporter(true)
	rep.StartRotation(time.Hour)

	f.Run(24 * time.Hour)

	// Specimens stayed productive across the whole day.
	if sf.SMTPSink.DataTransfers < 1000 {
		t.Fatalf("only %d DATA transfers in 24h", sf.SMTPSink.DataTransfers)
	}
	// Hourly rotation produced a report per hour.
	if len(rep.Reports) != 24 {
		t.Fatalf("%d rotated reports, want 24", len(rep.Reports))
	}
	// Flow table stays bounded: active entries should be a handful of
	// live C&C/spam flows, never accumulation.
	if n := sf.Router.ActiveFlows(); n > 50 {
		t.Fatalf("flow table grew to %d entries", n)
	}
	// No specimen wedged: every inmate is running and infected.
	for vlan, fi := range sf.Inmates {
		if fi.State.String() != "running" {
			t.Fatalf("inmate on VLAN %d stuck in %v", vlan, fi.State)
		}
		if fi.Specimen == nil {
			t.Fatalf("inmate on VLAN %d lost its specimen", vlan)
		}
	}
	// Triggers did not storm: active spambots must never be reverted by
	// the absence rule.
	if n := len(sf.CS.Triggers().Fired); n > 0 {
		t.Fatalf("absence trigger fired %d times against active spambots", n)
	}
	// Verdict accounting stayed consistent end to end.
	var adjudicated int
	for _, rec := range sf.Router.Records() {
		if rec.Verdict != 0 {
			adjudicated++
		}
	}
	if uint64(adjudicated) != sf.Router.VerdictsApplied.Value() {
		t.Fatalf("records with verdicts %d != verdicts applied %d",
			adjudicated, sf.Router.VerdictsApplied.Value())
	}
	// Safety: nothing in the records ever FORWARDed SMTP.
	for _, rec := range sf.Router.Records() {
		if rec.RespPort == 25 && rec.Verdict.Has(shim.Forward) {
			t.Fatalf("SMTP forwarded: %+v", rec)
		}
	}
}
