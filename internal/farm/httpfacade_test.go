package farm

import (
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"gq/internal/hostnet"
	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/shim"
)

// TestStdlibHTTPSinkThroughGateway is the facade's end-to-end acceptance
// run: an inmate drives an unmodified http.Client over the blocking
// facade, the gateway consults the Clickbot policy, the flow is REFLECTed
// to the HTTP sink — itself an unmodified stdlib http.Server — and the
// inmate reads a well-formed 200 believing it reached the ad network.
func TestStdlibHTTPSinkThroughGateway(t *testing.T) {
	f := New(77)
	sf, err := f.AddSubfarm(SubfarmConfig{
		Name:   "Clickfarm",
		VLANLo: 16, VLANHi: 16,
		ServiceVLAN:    11,
		GlobalPool:     netstack.MustParsePrefix("192.0.2.0/24"),
		InfraPool:      netstack.MustParsePrefix("192.0.9.0/24"),
		PolicyConfig:   "[VLAN 16-16]\nDecider = Clickbot\n",
		StdlibHTTPSink: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Take over the boot sequence: no auto-infection, just signal the
	// "specimen" (the alien goroutine below) that the OS is up with a
	// lease.
	var booted atomic.Bool
	sf.OnBootHook = func(fi *FarmInmate) { booted.Store(true) }
	fi, err := sf.AddInmate("clicker")
	if err != nil {
		t.Fatal(err)
	}

	stack := hostnet.New(fi.Host)
	var done atomic.Bool
	var status int
	var body []byte
	var httpErr error
	go func() {
		defer done.Store(true)
		for !booted.Load() {
			time.Sleep(time.Millisecond)
		}
		client := &http.Client{
			Transport: &http.Transport{
				DialContext:       stack.DialContext,
				DisableKeepAlives: true,
			},
			// Real-time safety net so a wedged farm fails the test instead
			// of hanging it.
			Timeout: 30 * time.Second,
		}
		resp, err := client.Get("http://198.51.100.10/click?ad=1")
		if err != nil {
			httpErr = err
			return
		}
		body, httpErr = io.ReadAll(resp.Body)
		resp.Body.Close()
		status = resp.StatusCode
	}()

	if ok := f.Sim.Pump(time.Hour, done.Load); !ok {
		t.Fatal("virtual hour elapsed before the click round trip finished")
	}
	if httpErr != nil {
		t.Fatalf("click request: %v", httpErr)
	}
	if status != 200 {
		t.Fatalf("status %d, want 200", status)
	}
	if len(body) != 0 {
		t.Fatalf("sink answered with a body: %q", body)
	}

	sink := sf.HTTPServerSink
	if sink == nil {
		t.Fatal("subfarm built without the stdlib sink")
	}
	if sink.Hits() != 1 {
		t.Fatalf("sink hits %d, want 1", sink.Hits())
	}
	if urls := sink.URLs(); len(urls) != 1 || urls[0] != "/click?ad=1" {
		t.Fatalf("sink URLs %v", urls)
	}

	// The flow must have been contained by an explicit REFLECT verdict on
	// port 80 — the click never reached 198.51.100.10.
	var reflected bool
	if d := f.Sim.Obs().Journal.DumpScope("Clickfarm", "post-run"); d != nil {
		for _, e := range d.Events {
			if e.Type == obs.EvFlowVerdict && e.DstPort == 80 &&
				shim.Verdict(e.Verdict).Has(shim.Reflect) {
				reflected = true
			}
		}
	}
	if !reflected {
		t.Fatal("no REFLECT verdict journaled for the port-80 flow")
	}
}
