package farm

import (
	"fmt"
	"io"
	"time"

	"gq/internal/hostnet"
	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/sim"
)

// FacadeEcho is the blocking-facade self-test AttachFacadeEcho installs: a
// proc-driven echo server and a periodic proc client on the service VLAN.
// Every round trip (or failure) lands in the journal, so the chaos soak's
// byte-determinism proof covers the facade's rendezvous path alongside the
// callback stacks. Counters are mutated only from procs and read after the
// run.
type FacadeEcho struct {
	// Rounds counts completed, payload-verified echo round trips.
	Rounds uint64
	// Errors counts rounds that failed (dial error, short/garbled echo,
	// deadline).
	Errors uint64

	Server, Client *hostnet.Stack
	scope          *obs.Scope
}

// Facade self-test service addresses and port within the service prefix.
const (
	facadeEchoOff   = 6
	facadeClientOff = 7
	// FacadeEchoPort is the echo server's TCP port.
	FacadeEchoPort = 7
)

// AttachFacadeEcho adds the facade echo pair to the subfarm. The client
// performs one echo round trip every interval, rounds times (0 = run for
// as long as the simulation does). Both endpoints are sim.Proc-driven, so
// the pair is safe in sharded domains and byte-deterministic.
func (sf *Subfarm) AttachFacadeEcho(interval time.Duration, rounds int) *FacadeEcho {
	cfg := sf.Config
	dom := sf.Sim
	svc := func(off int) netstack.Addr { return cfg.ServicePrefix.Nth(off) }
	svcRouterIP := cfg.ServicePrefix.Nth(defaultSvcGateway)
	newSvcHost := func(name string, addr netstack.Addr) *hostnet.Stack {
		h := sf.Farm.newHostIn(dom, cfg.Name+"-"+name)
		netsim.Connect(sf.sw.AddAccessPort(cfg.Name+"-"+name, cfg.ServiceVLAN), h.NIC(), 0)
		h.ConfigureStatic(addr, cfg.ServicePrefix.Bits, svcRouterIP)
		sf.Router.RegisterServiceHost(addr, cfg.ServiceVLAN)
		sf.SvcHosts[name] = h
		return hostnet.New(h)
	}

	fe := &FacadeEcho{
		Server: newSvcHost("facade-echo", svc(facadeEchoOff)),
		Client: newSvcHost("facade-client", svc(facadeClientOff)),
		scope:  dom.Obs().Scope(cfg.Name+".facade", 0),
	}

	dom.Go(cfg.Name+"-facade-echo", func(p *sim.Proc) {
		ln, err := fe.Server.Listen(FacadeEchoPort)
		if err != nil {
			return
		}
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			buf := make([]byte, 512)
			for {
				n, err := conn.Read(buf)
				if n > 0 {
					conn.Write(buf[:n])
				}
				if err != nil {
					conn.Close()
					break
				}
			}
		}
	})

	dom.Go(cfg.Name+"-facade-client", func(p *sim.Proc) {
		for i := 0; rounds == 0 || i < rounds; i++ {
			p.Sleep(interval)
			ok := fe.roundTrip(i)
			verdict := uint32(0)
			if !ok {
				verdict = 1
			}
			fe.scope.Emit(obs.Event{
				Type: obs.EvFacadeEcho, N: uint64(i), Verdict: verdict,
				SrcIP: uint32(svc(facadeClientOff)), DstIP: uint32(svc(facadeEchoOff)),
				DstPort: FacadeEchoPort, Proto: 6,
			})
		}
	})
	return fe
}

// roundTrip performs one deadline-guarded echo exchange from the client
// proc; it must only be called in proc context.
func (fe *FacadeEcho) roundTrip(i int) bool {
	conn, err := fe.Client.Dial(fe.Server.Host().Addr(), FacadeEchoPort)
	if err != nil {
		fe.Errors++
		return false
	}
	defer conn.Close()
	// Bound each round so a faulted habitat degrades to counted errors
	// instead of a wedged proc.
	conn.SetDeadline(fe.Client.Clock().Add(30 * time.Second))
	msg := fmt.Sprintf("facade-echo-%d", i)
	if _, err := conn.Write([]byte(msg)); err != nil {
		fe.Errors++
		return false
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != msg {
		fe.Errors++
		return false
	}
	fe.Rounds++
	return true
}
