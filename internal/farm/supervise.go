package farm

import (
	"gq/internal/supervisor"
)

// Supervise attaches a containment-plane supervisor to the subfarm: every
// containment server is heartbeat-probed over the shim channel, the router
// dispatches new flows onto the healthy cluster subset, crashed servers
// are restarted with backed-off, jittered, breaker-guarded timers on the
// subfarm's own sim clock, and inmates that repeatedly trip triggers or
// containment probes are quarantined through the farm controller.
// Call it once, after AddSubfarm and before Run.
func (sf *Subfarm) Supervise(cfg supervisor.Config) *supervisor.Supervisor {
	if sf.Supervisor != nil {
		return sf.Supervisor
	}
	deps := supervisor.Deps{
		Sim:        sf.Sim,
		Router:     sf.Router,
		Name:       sf.Name,
		Mgmt:       sf.CSMgmt,
		Controller: sf.Farm.ControllerHost,
	}
	for i, srv := range sf.CSCluster {
		deps.Endpoints = append(deps.Endpoints, supervisor.Endpoint{
			Srv: srv, Host: sf.SvcHosts[csName(i)],
		})
	}
	sf.Supervisor = supervisor.New(deps, cfg)
	return sf.Supervisor
}
