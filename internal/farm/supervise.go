package farm

import (
	"fmt"

	"gq/internal/host"
	"gq/internal/netsim"
	"gq/internal/supervisor"
)

// supProbeOff is the service-prefix offset of the subfarm's supervision
// prober host (after the sinks at offsets 2-5 and the facade echo pair
// at 6-7; containment clusters start at 20).
const supProbeOff = 8

// Supervise attaches the subfarm's supervision-tree node: every
// containment server is heartbeat-probed over the shim channel, every
// sink server is TCP-probed from a dedicated service-VLAN prober host,
// and the farm-wide inmate controller is PING-probed over the management
// network. Crashed CS and sink endpoints are restarted with backed-off,
// jittered, breaker-guarded timers on the subfarm's own sim clock;
// controller transitions are reported to the farm root (SuperviseTree),
// which owns its restart ladder; inmates that repeatedly trip triggers or
// containment probes are quarantined through the controller; and a
// containment plane that stays fully dead past its budget escalates to
// subfarm fail-closed lockdown. Probes never cross the router's flow
// table — sink probes ride the service VLAN, controller probes the
// management network, heartbeats the shim channel — so supervision keeps
// observing even inside a lockdown.
// Call it once, after AddSubfarm and before Run.
func (sf *Subfarm) Supervise(cfg supervisor.Config) *supervisor.Supervisor {
	if sf.Supervisor != nil {
		return sf.Supervisor
	}
	f := sf.Farm
	onDown := func() {
		from := sf.Name
		if sf.Sim == f.Sim {
			f.controllerDown(from)
		} else {
			sf.Sim.PostTo(f.Sim, 0, func() { f.controllerDown(from) })
		}
	}
	onUp := func() {
		from := sf.Name
		if sf.Sim == f.Sim {
			f.controllerUp(from)
		} else {
			sf.Sim.PostTo(f.Sim, 0, func() { f.controllerUp(from) })
		}
	}
	deps := supervisor.Deps{
		Sim:              sf.Sim,
		Router:           sf.Router,
		Name:             sf.Name,
		Mgmt:             sf.CSMgmt,
		Controller:       f.ControllerHost,
		Prober:           sf.proberHost(),
		Sinks:            sf.sinkEndpoints(),
		WatchController:  true,
		OnControllerDown: onDown,
		OnControllerUp:   onUp,
	}
	for i, srv := range sf.CSCluster {
		deps.Endpoints = append(deps.Endpoints, supervisor.Endpoint{
			Srv: srv, Host: sf.SvcHosts[csName(i)],
		})
	}
	sf.Supervisor = supervisor.New(deps, cfg)
	return sf.Supervisor
}

// sinkEndpoints lists the subfarm's supervisable sink servers with their
// probe ports and listener-rebind closures. The stdlib HTTP server sink
// is excluded: its handler goroutines are detached from the sim clock
// (DESIGN.md §3g), so a deterministic supervised restart cannot be
// guaranteed for it.
func (sf *Subfarm) sinkEndpoints() []supervisor.SinkEndpoint {
	var eps []supervisor.SinkEndpoint
	if sf.CatchAll != nil {
		eps = append(eps, supervisor.SinkEndpoint{
			// The catch-all listens on every port; 9 (discard) is as good a
			// probe target as any.
			ID: "catchall", Host: sf.SvcHosts["catchall"], Port: 9,
			Rebind: sf.CatchAll.Rebind,
		})
	}
	if sf.SMTPSink != nil {
		eps = append(eps, supervisor.SinkEndpoint{
			ID: "smtpsink", Host: sf.SvcHosts["smtpsink"], Port: 25,
			Rebind: sf.SMTPSink.Rebind,
		})
	}
	if sf.BannerSink != nil {
		eps = append(eps, supervisor.SinkEndpoint{
			ID: "bannersink", Host: sf.SvcHosts["bannersink"], Port: 25,
			Rebind: sf.BannerSink.Rebind,
		})
	}
	if sf.HTTPSink != nil {
		eps = append(eps, supervisor.SinkEndpoint{
			ID: "httpsink", Host: sf.SvcHosts["httpsink"], Port: 80,
			Rebind: sf.HTTPSink.Rebind,
		})
	}
	return eps
}

// RebindSink reinstalls the named sink server's listeners on its (reset)
// service host — the restore half of a hard sink crash, used by the chaos
// injector's unsupervised recovery path. Supervised subfarms never call
// it; their tree node owns sink restarts.
func (sf *Subfarm) RebindSink(name string) error {
	for _, ep := range sf.sinkEndpoints() {
		if ep.ID == name {
			return ep.Rebind()
		}
	}
	return fmt.Errorf("farm: no supervisable sink %q", name)
}

// proberHost lazily creates the subfarm's supervision prober: one more
// service-VLAN host, peer to the sinks it probes, so liveness dials stay
// on-link L2 and never touch the router's flow table.
func (sf *Subfarm) proberHost() *host.Host {
	if h := sf.SvcHosts["supprobe"]; h != nil {
		return h
	}
	cfg := sf.Config
	name := cfg.Name + "-supprobe"
	h := sf.Farm.newHostIn(sf.Sim, name)
	netsim.Connect(sf.sw.AddAccessPort(name, cfg.ServiceVLAN), h.NIC(), cfg.AccessLatency)
	h.ConfigureStatic(cfg.ServicePrefix.Nth(supProbeOff), cfg.ServicePrefix.Bits,
		cfg.ServicePrefix.Nth(defaultSvcGateway))
	sf.Router.RegisterServiceHost(h.Addr(), cfg.ServiceVLAN)
	sf.SvcHosts["supprobe"] = h
	return h
}

// SetLockdown engages or releases the subfarm's fail-closed lockdown
// from the ops plane (run it on the subfarm's domain via Driver.DoIn).
// A supervised subfarm goes through its tree node, so the transition
// lands in the escalation history and the tree journal; an unsupervised
// one flips the router directly. Returns the number of flows failed
// closed on engage.
func (sf *Subfarm) SetLockdown(on bool, reason string) int {
	if sup := sf.Supervisor; sup != nil {
		if on {
			return sup.EngageLockdown(reason)
		}
		sup.ReleaseLockdown(reason)
		return 0
	}
	return sf.Router.SetLockdown(on, reason)
}
