package farm

import (
	"testing"
	"time"

	"gq/internal/inmate"
	"gq/internal/rawiron"
)

// TestRawIronInmateFullCycle runs a raw-iron hosted inmate through the
// complete farm loop: PXE-class boot, DHCP, auto-infection, spamming, then
// a trigger-driven revert that performs a full ~6-minute network reimage —
// all transparent to the gateway (§5.2, §6.4).
func TestRawIronInmateFullCycle(t *testing.T) {
	f, sf := buildBotfarm(t, 71, 0)

	ric := rawiron.NewController(f.Sim)
	machine := &rawiron.Machine{Name: "iron0", VLAN: 0, PowerPort: 1}

	// The machine's host is created by the farm; bind it afterwards.
	backend := &rawiron.Backend{Controller: ric, Machine: machine, CleanImage: "winxp-golden"}
	bot, err := sf.AddInmateWithBackend("iron-0", backend)
	if err != nil {
		t.Fatal(err)
	}
	machine.Host = bot.Host
	machine.VLAN = bot.VLAN
	ric.AddMachine(machine)

	f.Run(5 * time.Minute)
	if bot.Family != "rustock" {
		t.Fatalf("raw-iron inmate never infected (family %q)", bot.Family)
	}
	firstSample := bot.SampleName

	// Force a revert: the reimage takes ~6 minutes of virtual time, far
	// longer than a VM snapshot, but the life-cycle machinery is the same.
	bot.Revert()
	f.Run(3 * time.Minute)
	if bot.State != inmate.StateReverting {
		t.Fatalf("reimage should still be running at +3min, state %v", bot.State)
	}
	f.Run(15 * time.Minute)
	if bot.State != inmate.StateRunning {
		t.Fatalf("state %v after reimage window", bot.State)
	}
	if machine.DiskImage != "winxp-golden" {
		t.Fatalf("disk image %q", machine.DiskImage)
	}
	if ric.Reimages != 1 {
		t.Fatalf("reimages %d", ric.Reimages)
	}
	// Reinfection happened with the next batch sample.
	if bot.Infections != 2 || bot.SampleName == firstSample {
		t.Fatalf("infections=%d sample=%q (first %q)", bot.Infections, bot.SampleName, firstSample)
	}
	// And the reborn specimen works: give it time to spam again.
	before := sf.SMTPSink.DataTransfers
	f.Run(10 * time.Minute)
	if sf.SMTPSink.DataTransfers <= before {
		t.Fatal("reimaged inmate never resumed spamming")
	}
}
