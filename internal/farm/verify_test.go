package farm

import (
	"testing"
	"time"

	"gq/internal/netstack"
)

func probeFarm(t *testing.T, fallback string) (*Farm, *Subfarm) {
	t.Helper()
	f := New(91)
	sf, err := f.AddSubfarm(SubfarmConfig{
		Name:   "probe",
		VLANLo: 16, VLANHi: 20,
		GlobalPool:     netstack.MustParsePrefix("192.0.2.0/24"),
		FallbackPolicy: fallback,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, sf
}

func TestContainmentProbeDefaultDeny(t *testing.T) {
	f, sf := probeFarm(t, "DefaultDeny")
	out, err := RunContainmentProbe(f, sf, nil, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Sent) == 0 {
		t.Fatal("no probes sent")
	}
	if escaped := out.Escaped(); len(escaped) != 0 {
		t.Fatalf("containment failure: %v", escaped)
	}
	// Under DefaultDeny every probe reflects to the catch-all.
	if out.SinkFlows != len(out.Sent) {
		t.Fatalf("sink absorbed %d of %d probes", out.SinkFlows, len(out.Sent))
	}
}

func TestContainmentProbeDetectsLeaks(t *testing.T) {
	// AllowAll is the deliberately unsafe calibration policy: the probe
	// must light up every canary — proving it detects escapes.
	f, sf := probeFarm(t, "AllowAll")
	out, err := RunContainmentProbe(f, sf, nil, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Escaped()) != len(out.Sent) {
		t.Fatalf("probe missed leaks: %d of %d escaped", len(out.Escaped()), len(out.Sent))
	}
}

func TestContainmentProbeMixedPolicy(t *testing.T) {
	// HardDeny drops silently: nothing escapes AND nothing hits the sink.
	f, sf := probeFarm(t, "HardDeny")
	out, err := RunContainmentProbe(f, sf, nil, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Escaped()) != 0 || out.SinkFlows != 0 {
		t.Fatalf("hard deny leaked: %s", out)
	}
}
