package farm

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"gq/internal/netstack"
	"gq/internal/report"
	"gq/internal/trace"
)

// TestTelemetryMatchesTrace is the ground-truth cross-check for the obs
// registry: it records the Botfarm demo's packet trace and bridge-tap
// stream, then independently re-derives flow and verdict totals from the
// pcap bytes (internal/report's trace audit) and demands exact agreement
// with the counters the datapath bumped while running. Any drift means a
// hot-path instrumentation site was lost or double-counted.
func TestTelemetryMatchesTrace(t *testing.T) {
	f, sf := buildBotfarm(t, 1, 0.35)

	var pcap bytes.Buffer
	tw := trace.NewWriter(&pcap)
	sf.Router.AddTap(func(p *netstack.Packet) {
		if err := tw.WritePacket(f.Sim.WallClock(), p.Marshal()); err != nil {
			t.Errorf("trace write: %v", err)
		}
	})
	var bridgePcap bytes.Buffer
	bw := trace.NewWriter(&bridgePcap)
	f.Gateway.AddBridgeTap(func(frame []byte) {
		if err := bw.WritePacket(f.Sim.WallClock(), frame); err != nil {
			t.Errorf("bridge trace write: %v", err)
		}
	})

	for i := 0; i < 4; i++ {
		if _, err := sf.AddInmate(fmt.Sprintf("inmate-%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	// Snapshot concurrently with the running sim — the registry advertises
	// this as safe, and with -race on this package the claim is checked.
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = f.Sim.Obs().Snapshot()
			}
		}
	}()

	f.Run(30 * time.Minute)
	for _, fi := range sf.Inmates {
		fi.Terminate()
	}
	f.Run(3 * time.Minute)
	close(stop)
	<-snapDone

	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := trace.Read(&pcap)
	if err != nil {
		t.Fatal(err)
	}
	csIPs := make([]netstack.Addr, 0, len(sf.CSCluster))
	for _, srv := range sf.CSCluster {
		csIPs = append(csIPs, srv.Host.Addr())
	}
	audit := report.AuditTrace(recs, ContainmentPort, csIPs...)
	t.Logf("trace audit: %s over %d records", audit.String(), len(recs))

	snap := f.Sim.Obs().Snapshot()
	created := snap.Counter("subfarm.Botfarm.flows_created")
	verdicts := snap.Counter("subfarm.Botfarm.verdicts_applied")
	if created == 0 {
		t.Fatal("no flows created — demo run produced no traffic")
	}
	if audit.FlowsCreated != created {
		t.Errorf("flows: trace derives %d, registry counted %d", audit.FlowsCreated, created)
	}
	if audit.Verdicts != verdicts {
		t.Errorf("verdicts: trace derives %d, registry counted %d", audit.Verdicts, verdicts)
	}

	bridgeRecs, err := trace.Read(&bridgePcap)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counter("gw.bridged_frames"); uint64(len(bridgeRecs)) != got {
		t.Errorf("bridged frames: tap saw %d, registry counted %d", len(bridgeRecs), got)
	}

	// The reporter's own cross-check walks per-flow analyzer state against
	// the same counters and must agree too.
	if problems := f.Reporter(false).CrossCheck(); len(problems) != 0 {
		t.Errorf("reporter cross-check: %v", problems)
	}
}
