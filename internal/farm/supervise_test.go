package farm

import (
	"testing"
	"time"

	"gq/internal/supervisor"
)

// superviseFarm builds the probe farm with an aggressive supervisor config
// so health transitions happen on test-friendly timescales.
func superviseFarm(t *testing.T) (*Farm, *Subfarm, *supervisor.Supervisor) {
	t.Helper()
	f, sf := probeFarm(t, "DefaultDeny")
	sup := sf.Supervise(supervisor.Config{
		HeartbeatEvery:   2 * time.Second,
		HeartbeatTimeout: time.Second,
		MissThreshold:    2,
		RestartBackoff:   2 * time.Second,
		BreakerWindow:    10 * time.Minute,
		BreakerThreshold: 2,
	})
	return f, sf, sup
}

// A crashed containment server must be detected by missed heartbeats and
// brought back by a supervised restart — health confirmed by a live echo,
// not assumed.
func TestSupervisorRestartsCrashedCS(t *testing.T) {
	f, sf, sup := superviseFarm(t)
	f.Run(10 * time.Second)
	if !sup.Healthy(0) {
		t.Fatal("endpoint unhealthy before any fault")
	}
	sf.CS.Host.Shutdown()
	// Two missed probes (ticks at 12s and 14s-minus-deadline) mark the
	// endpoint down at 13s; the first restart can fire no earlier than 15s
	// (backoff 2s), so at 14s the crash is detected but not yet healed.
	f.Run(4 * time.Second)
	if sup.Healthy(0) {
		t.Fatal("crash not detected: endpoint still marked healthy")
	}
	f.Run(30 * time.Second)
	if !sup.Healthy(0) {
		t.Fatal("supervised restart did not bring the endpoint back")
	}
	if len(sup.Recoveries) != 1 {
		t.Fatalf("recoveries = %v, want exactly one", sup.Recoveries)
	}
	hist := sup.HealthHistory()["cs0"]
	if len(hist) < 3 {
		t.Fatalf("health history too short: %v", hist)
	}
}

// Repeated crashes within the breaker window must trip the circuit breaker:
// the endpoint is quarantined — no more redial attempts — instead of being
// restarted forever.
func TestSupervisorBreakerQuarantine(t *testing.T) {
	f, sf, sup := superviseFarm(t)
	// Three kills with full recovery in between: with BreakerThreshold=2
	// the third restart attempt finds two recent restarts and quarantines.
	for i := 0; i < 3; i++ {
		f.Run(40 * time.Second)
		sf.CS.Host.Shutdown()
	}
	f.Run(40 * time.Second)
	if !sup.Quarantined(0) {
		t.Fatal("circuit breaker did not quarantine the flapping endpoint")
	}
	if sup.Healthy(0) {
		t.Fatal("quarantined endpoint still marked healthy")
	}
	// Quarantine is terminal: no further restarts, the host stays down.
	f.Run(2 * time.Minute)
	if sup.Healthy(0) {
		t.Fatal("quarantined endpoint was restarted anyway")
	}
}

// Repeated containment-probe escapes must quarantine the offending inmate
// through the farm controller, exactly once.
func TestSupervisorInmateQuarantine(t *testing.T) {
	f, sf, sup := superviseFarm(t)
	probe, err := sf.AddInmate("striker")
	if err != nil {
		t.Fatal(err)
	}
	f.Run(5 * time.Second)
	vlan := probe.VLAN
	for i := 0; i < 3; i++ {
		sup.ReportEscape(vlan)
	}
	if !sup.InmateQuarantined(vlan) {
		t.Fatal("three escape strikes did not quarantine the inmate")
	}
	// Further strikes are no-ops once quarantined.
	sup.ReportEscape(vlan)
	f.Run(5 * time.Second)
	snap := f.Sim.Obs().Snapshot()
	if got := snap.Counter("supervisor.probe.inmate_quarantines"); got != 1 {
		t.Fatalf("inmate_quarantines = %d, want exactly 1", got)
	}
}
