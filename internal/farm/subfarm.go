package farm

import (
	"fmt"
	"strings"

	"gq/internal/containment"
	"gq/internal/dhcp"
	"gq/internal/dnsx"
	"gq/internal/gateway"
	"gq/internal/host"
	"gq/internal/inmate"
	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/policy"
	"gq/internal/report"
	"gq/internal/sink"
)

// AddSubfarm builds a complete habitat: packet router, containment server
// (with its management-network interface), sinks, DHCP and DNS, policies
// and triggers from the Fig. 6 config text, and analyzers.
func (f *Farm) AddSubfarm(cfg SubfarmConfig) (*Subfarm, error) {
	if cfg.InternalPrefix.Bits == 0 {
		cfg.InternalPrefix = netstack.MustParsePrefix("10.0.0.0/16")
	}
	if cfg.ServicePrefix.Bits == 0 {
		cfg.ServicePrefix = netstack.MustParsePrefix("10.3.0.0/16")
	}
	if cfg.ServiceVLAN == 0 {
		cfg.ServiceVLAN = cfg.VLANHi + 1
	}
	if cfg.FallbackPolicy == "" {
		cfg.FallbackPolicy = "DefaultDeny"
	}

	sf := &Subfarm{
		Farm: f, Name: cfg.Name, Config: cfg,
		VLANs:    inmate.NewVLANPool(cfg.VLANLo, cfg.VLANHi),
		Inmates:  make(map[uint16]*FarmInmate),
		SvcHosts: make(map[string]*host.Host),
	}

	// In a sharded farm the whole habitat — router, switch, services,
	// inmates — lives in its own simulation domain; only the uplink to the
	// gateway core and the management NIC cross into the root domain.
	dom, sw := f.Sim, f.InmateSwitch
	if f.Coord != nil {
		dom = f.Coord.NewDomain()
		sw = netsim.NewSwitch(dom, "inmate-"+cfg.Name)
	}
	sf.Sim, sf.sw = dom, sw

	svc := func(off int) netstack.Addr { return cfg.ServicePrefix.Nth(off) }
	routerIP := cfg.InternalPrefix.Nth(1)
	svcRouterIP := cfg.ServicePrefix.Nth(defaultSvcGateway)
	nonceIP := netstack.MustParseAddr("10.4.0.1")

	nCS := cfg.ContainmentServers
	if nCS < 1 {
		nCS = 1
	}
	csAddr := func(i int) netstack.Addr {
		if i == 0 {
			return svc(csAddrOff)
		}
		return svc(20 + i)
	}
	var cluster []gateway.ContainmentEndpoint
	if nCS > 1 {
		for i := 0; i < nCS; i++ {
			cluster = append(cluster, gateway.ContainmentEndpoint{
				VLAN: cfg.ServiceVLAN, IP: csAddr(i), Port: ContainmentPort,
			})
		}
	}

	sf.Router = f.Gateway.AddRouterIn(dom, gateway.RouterConfig{
		Name:   cfg.Name,
		VLANLo: cfg.VLANLo, VLANHi: cfg.VLANHi,
		ServiceVLANs:       []uint16{cfg.ServiceVLAN},
		InternalPrefix:     cfg.InternalPrefix,
		RouterIP:           routerIP,
		ServicePrefix:      cfg.ServicePrefix,
		ServiceRouterIP:    svcRouterIP,
		GlobalPool:         cfg.GlobalPool,
		GlobalPoolStart:    16,
		InboundMode:        cfg.InboundMode,
		InfraPool:          cfg.InfraPool,
		ContainmentVLAN:    cfg.ServiceVLAN,
		ContainmentIP:      svc(csAddrOff),
		ContainmentPort:    ContainmentPort,
		NonceIP:            nonceIP,
		ContainmentCluster: cluster,
		GRETunnels:         cfg.GRETunnels,

		MaxFlowsPerMinute:        cfg.MaxFlowsPerMinute,
		MaxFlowsPerDestPerMinute: cfg.MaxFlowsPerDestPerMinute,
		MaxFlows:                 cfg.MaxFlows,
	})
	if f.Coord != nil {
		// Wire the private switch into the router's private trunk. The
		// switch and router share a domain, so the trunk hop itself is free;
		// the lookahead latency sits on the router's uplink to the core.
		netsim.Connect(sw.AddTrunkPort("uplink"), sf.Router.TrunkPort(), 0)
	}

	// Parse the policy configuration first: it locates services.
	pcfg := &policy.Config{Services: map[string]policy.AddrPort{}}
	if cfg.PolicyConfig != "" {
		parsed, err := policy.Parse(cfg.PolicyConfig)
		if err != nil {
			return nil, err
		}
		pcfg = parsed
	}
	sf.PolicyConfig = pcfg

	// Service hosts on the service VLAN.
	newSvcHost := func(name string, addr netstack.Addr) *host.Host {
		h := f.newHostIn(dom, cfg.Name+"-"+name)
		netsim.Connect(sw.AddAccessPort(cfg.Name+"-"+name, cfg.ServiceVLAN), h.NIC(), cfg.AccessLatency)
		h.ConfigureStatic(addr, cfg.ServicePrefix.Bits, svcRouterIP)
		sf.Router.RegisterServiceHost(addr, cfg.ServiceVLAN)
		sf.SvcHosts[name] = h
		return h
	}

	// Containment servers: inmate-network presence plus management NIC.
	for i := 0; i < nCS; i++ {
		h := newSvcHost(csName(i), csAddr(i))
		srv, err := containment.NewServer(h, ContainmentPort, nonceIP)
		if err != nil {
			return nil, err
		}
		sf.CSCluster = append(sf.CSCluster, srv)
		if i == 0 {
			sf.CSHost = h
			sf.CS = srv
		}
	}
	f.nextMgmt++
	// The management NIC lives in the subfarm's domain (the containment
	// server drives it from there); its link to the root-domain management
	// switch carries the cross-domain floor latency when sharded.
	sf.CSMgmt = f.newHostIn(dom, cfg.Name+"-cs-mgmt")
	netsim.Connect(f.MgmtSwitch.AddAccessPort(cfg.Name+"-cs", 999), sf.CSMgmt.NIC(), dom.CrossFloor(f.Sim))
	sf.CSMgmt.ConfigureStatic(netstack.AddrFrom4(172, 16, 0, byte(f.nextMgmt)), 24, 0)
	farmScope := dom.Obs().Scope(cfg.Name, 0)
	lifecycle := func(line string) {
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return
		}
		var vlan uint16
		fmt.Sscanf(fields[3], "%d", &vlan)
		// Journal the lifecycle action ("inmate.revert", ...) before it is
		// dispatched to the controller.
		farmScope.Emit(obs.Event{Type: obs.EvInmatePrefix + fields[1], VLAN: vlan})
		// A supervised subfarm also counts the firing as a strike toward
		// inmate quarantine.
		if sf.Supervisor != nil {
			sf.Supervisor.ObserveLifecycle(fields[1], vlan)
		}
		inmate.SendAction(sf.CSMgmt, f.ControllerHost, fields[1], vlan, nil)
	}
	for _, srv := range sf.CSCluster {
		srv.SetLifecycleSink(lifecycle)
	}

	// Sinks.
	var err error
	caHost := newSvcHost("catchall", svc(catchAllOff))
	sf.CatchAll = sink.NewCatchAll(caHost)

	smtpHost := newSvcHost("smtpsink", svc(smtpSinkOff))
	sf.SMTPSink, err = sink.NewSMTPSink(smtpHost, sink.SMTPConfig{
		Port: 25, DropProb: cfg.SinkDropProb, Strictness: cfg.SinkStrictness,
	})
	if err != nil {
		return nil, err
	}

	bannerHost := newSvcHost("bannersink", svc(bannerSinkOff))
	sf.BannerSink, err = sink.NewSMTPSink(bannerHost, sink.SMTPConfig{
		Port: 25, BannerGrab: cfg.BannerGrab, DropProb: cfg.SinkDropProb,
		Strictness: cfg.SinkStrictness,
	})
	if err != nil {
		return nil, err
	}

	httpHost := newSvcHost("httpsink", svc(httpSinkOff))
	if cfg.StdlibHTTPSink {
		// The stdlib server's goroutines reach the simulator through
		// Inject, which coordinated domains reject — and a farm that is
		// not pumped would deadlock on the first request.
		if f.Coord != nil {
			return nil, fmt.Errorf("subfarm %s: StdlibHTTPSink requires an unsharded, Pump-driven farm", cfg.Name)
		}
		sf.HTTPServerSink, err = sink.NewHTTPServerSink(httpHost, 80)
	} else {
		sf.HTTPSink, err = sink.NewHTTPSink(httpHost, 80)
	}
	if err != nil {
		return nil, err
	}

	// Infrastructure services in the inmates' broadcast domain: DHCP and
	// the recursive resolver carry inmate-subnet addresses but live on the
	// service VLAN; the gateway's bridge spans the restricted broadcast
	// domain (§5.3).
	dhcpHost := f.newHostIn(dom, cfg.Name+"-dhcp")
	netsim.Connect(sw.AddAccessPort(cfg.Name+"-dhcp", cfg.ServiceVLAN), dhcpHost.NIC(), 0)
	dhcpHost.ConfigureStatic(cfg.InternalPrefix.Nth(2), cfg.InternalPrefix.Bits, routerIP)
	dnsHost := f.newHostIn(dom, cfg.Name+"-dns")
	netsim.Connect(sw.AddAccessPort(cfg.Name+"-dns", cfg.ServiceVLAN), dnsHost.NIC(), 0)
	dnsHost.ConfigureStatic(cfg.InternalPrefix.Nth(3), cfg.InternalPrefix.Bits, routerIP)

	sf.DHCP, err = dhcp.NewServer(dhcpHost, dhcp.ServerConfig{
		Pool: cfg.InternalPrefix, PoolStart: 16,
		Router: routerIP, DNS: dnsHost.Addr(),
		SubnetBits: cfg.InternalPrefix.Bits,
	})
	if err != nil {
		return nil, err
	}
	sf.DNS, err = dnsx.NewServer(dnsHost, cfg.DNSZones)
	if err != nil {
		return nil, err
	}

	// Policy environment.
	services := map[string]policy.AddrPort{
		policy.SvcCatchAllSink:   {Addr: svc(catchAllOff)},
		policy.SvcSMTPSink:       {Addr: svc(smtpSinkOff), Port: 25},
		policy.SvcBannerSMTPSink: {Addr: svc(bannerSinkOff), Port: 25},
		policy.SvcHTTPSink:       {Addr: svc(httpSinkOff), Port: 80},
		policy.SvcAutoinfect:     DefaultAutoinfect,
	}
	for name, loc := range pcfg.Services {
		services[name] = loc
	}
	sf.Samples = policy.NewBatchProvider(cfg.RepeatBatches)
	sf.Policy = &policy.Env{
		Services:       services,
		InternalPrefix: cfg.InternalPrefix,
		CCHosts:        cfg.CCHosts,
		Samples:        sf.Samples,
		NotifySink: func(svcName string, inmateAddr, target netstack.Addr) {
			if svcName != policy.SvcBannerSMTPSink {
				return
			}
			// Control datagram from the CS to the banner sink (same
			// service subnet, direct L2).
			sock, err := sf.CSHost.ListenUDP(0, nil)
			if err != nil {
				return
			}
			defer sock.Close()
			msg := fmt.Sprintf("EXPECT %s %s", inmateAddr, target)
			sock.SendTo(svc(bannerSinkOff), 26, []byte(msg))
		},
	}

	// Apply policies and triggers from the config, to every cluster member.
	// Deciders are wrapped with registry counters; cluster members share
	// series because obs registration is idempotent by name.
	for _, srv := range sf.CSCluster {
		srv.Triggers().SetScope(farmScope)
		for _, rule := range pcfg.VLANRules {
			if rule.Decider != "" {
				d, err := policy.New(rule.Decider, sf.Policy)
				if err != nil {
					return nil, err
				}
				srv.AddPolicy(rule.Lo, rule.Hi, policy.Instrument(d, f.Sim.Obs().Reg))
			}
			for _, tr := range rule.Triggers {
				srv.Triggers().AddRule(rule.Lo, rule.Hi, tr)
			}
		}
		fallback, err := policy.New(cfg.FallbackPolicy, sf.Policy)
		if err != nil {
			return nil, err
		}
		srv.SetFallback(policy.Instrument(fallback, f.Sim.Obs().Reg))
	}

	// Analyzers on the subfarm tap.
	sf.SMTPAnalyzer = report.NewSMTPAnalyzer()
	sf.ShimAnalyzer = report.NewShimAnalyzer()
	sf.ShimAnalyzer.Cap = 10000
	sf.Router.AddTap(sf.SMTPAnalyzer.Tap)
	sf.Router.AddTap(sf.ShimAnalyzer.Tap)

	f.Subfarms = append(f.Subfarms, sf)
	return sf, nil
}

// csName is the SvcHosts key of containment-server cluster member i.
func csName(i int) string { return fmt.Sprintf("cs%d", i) }

// Reporter builds a Fig. 7 reporter over the farm's subfarms.
func (f *Farm) Reporter(anonymize bool) *report.Reporter {
	r := &report.Reporter{Sim: f.Sim, CBL: f.CBL, Anonymize: anonymize, Obs: f.Sim.Obs()}
	for _, sf := range f.Subfarms {
		r.Subfarms = append(r.Subfarms, report.SubfarmSource{
			Name: sf.Name, Router: sf.Router, SMTP: sf.SMTPAnalyzer,
		})
	}
	return r
}
