package farm

import (
	"testing"
	"time"

	"gq/internal/malware"
	"gq/internal/shim"
)

func korgoSpec(t *testing.T) malware.WormSpec {
	t.Helper()
	for _, w := range malware.Table1 {
		if w.Name == "W32.Korgo.V" && w.Events == 102 {
			return w
		}
	}
	t.Fatal("spec not found")
	return malware.WormSpec{}
}

func TestWormExperimentChainInfection(t *testing.T) {
	spec := korgoSpec(t) // 2 conns, 6.0s incubation
	e, err := NewWormExperiment(5, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Let the honeypots boot and acquire leases, then seed.
	e.Farm.Run(30 * time.Second)
	e.Seed()
	e.Farm.Run(10 * time.Minute)

	res := e.Result()
	if res.Events < 2 {
		t.Fatalf("only %d infections; chain never formed (%+v)", res.Events, e.Infections)
	}
	// Incubation shape: a fast Korgo should re-propagate within seconds to
	// tens of seconds, not minutes.
	if res.Incubation <= 0 || res.Incubation > 90*time.Second {
		t.Fatalf("measured incubation %v for spec %v", res.Incubation, spec.Incubation)
	}

	// Containment held: every outbound propagation was REDIRECTed inside
	// the farm, never FORWARDed.
	var redirects, forwards int
	for _, rec := range e.Subfarm.Router.Records() {
		if rec.Inbound {
			continue
		}
		switch {
		case rec.Verdict.Has(shim.Redirect):
			redirects++
		case rec.Verdict.Has(shim.Forward):
			forwards++
		}
	}
	if redirects == 0 {
		t.Fatal("no redirected propagation attempts")
	}
	if forwards != 0 {
		t.Fatalf("%d worm flows escaped via FORWARD", forwards)
	}
}

func TestWormExperimentSlowFamilyShape(t *testing.T) {
	// A slow Spybot (57s) must measure slower than a fast Korgo (6s) —
	// the Table 1 ordering is preserved.
	var spybot malware.WormSpec
	for _, w := range malware.Table1 {
		if w.Executable == "MsUpdaters.exe" {
			spybot = w
		}
	}
	fast, err := NewWormExperiment(3, korgoSpec(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	fast.Farm.Run(30 * time.Second)
	fast.Seed()
	fast.Farm.Run(15 * time.Minute)

	slow, err := NewWormExperiment(3, spybot, 3)
	if err != nil {
		t.Fatal(err)
	}
	slow.Farm.Run(30 * time.Second)
	slow.Seed()
	slow.Farm.Run(15 * time.Minute)

	fr, sr := fast.Result(), slow.Result()
	if fr.Events < 2 || sr.Events < 2 {
		t.Fatalf("events fast=%d slow=%d", fr.Events, sr.Events)
	}
	if fr.Incubation >= sr.Incubation {
		t.Fatalf("incubation ordering violated: Korgo %v vs Spybot %v",
			fr.Incubation, sr.Incubation)
	}
	// Faster worms accumulate more events in the same window.
	if fr.Events <= sr.Events {
		t.Fatalf("event ordering violated: Korgo %d vs Spybot %d", fr.Events, sr.Events)
	}
}
