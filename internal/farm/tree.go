package farm

import (
	"time"

	"gq/internal/supervisor"
)

// ctlRestartDedup bounds how often the no-tree fallback path restarts
// the controller.
const ctlRestartDedup = 30 * time.Second

// This file wires the farm-root supervision node (supervisor.Root) into
// the farm: controller restart authority, recycler progress watches, and
// external-shard host watches. See DESIGN.md §3k.

// SuperviseTree builds the complete supervision tree: a root node on the
// farm's root domain, every subfarm supervised (Supervise, idempotent)
// and attached under it, progress watches over the recyclers attached so
// far, and aliveness watches over the external hosts present at wiring
// time. Controller down-reports from subfarm probes then feed the root's
// breaker-guarded restart ladder, and a subfarm lockdown that persists
// past DeadManBudget — or a controller that cannot be restarted —
// escalates to global dead-man lockdown. Call once, after the topology
// is built and before Run.
func (f *Farm) SuperviseTree(cfg supervisor.Config) *supervisor.Root {
	if f.Tree != nil {
		return f.Tree
	}
	f.Tree = supervisor.NewRoot(supervisor.RootDeps{
		Sim:               f.Sim,
		ControllerHost:    f.ControllerHost,
		RestartController: f.restartController,
	}, cfg)
	for _, h := range f.extHosts {
		f.Tree.WatchHost(supervisor.KindShard, h.Name, h)
	}
	for _, sf := range f.Subfarms {
		sup := sf.Supervise(cfg)
		f.Tree.Attach(sup)
		f.watchRecycler(sf)
	}
	return f.Tree
}

// watchRecycler registers the tree's progress watch over a subfarm's
// recycler, if both exist. The read and re-arm closures run on the
// subfarm's domain goroutine (the root round-trips via sim.PostTo).
func (f *Farm) watchRecycler(sf *Subfarm) {
	r := sf.Recycler
	if f.Tree == nil || r == nil || r.watched {
		return
	}
	r.watched = true
	f.Tree.WatchProgress(supervisor.KindRecycler, sf.Name, sf.Sim,
		func() (int, bool) { return r.Progress(), r.Active() },
		r.Rearm)
}

// controllerDown receives a subfarm node's controller down-report on the
// root domain goroutine. With a tree, the root's ladder dedups reports
// and owns backoff/breaker; without one, the farm restarts the
// controller directly, deduped to one restart per 30s of sim time so
// multiple subfarms' probes don't stack resets.
func (f *Farm) controllerDown(from string) {
	if f.Tree != nil {
		f.Tree.ReportControllerDown(from)
		return
	}
	now := f.Sim.Now()
	if f.ctlRestarted && now-f.ctlRestartAt < ctlRestartDedup {
		return
	}
	f.ctlRestarted = true
	f.ctlRestartAt = now
	f.restartController()
}

// controllerUp receives the matching recovery report.
func (f *Farm) controllerUp(from string) {
	if f.Tree != nil {
		f.Tree.ReportControllerUp(from)
	}
}

// restartController power-cycles the inmate controller host and rebinds
// the control listener, replaying the addressing snapshot taken at
// build. Runs on the root domain goroutine.
func (f *Farm) restartController() {
	h := f.ControllerHost
	h.Reset()
	h.ConfigureStatic(f.ctlAddr, f.ctlBits, 0)
	if err := f.Controller.Rebind(); err != nil {
		panic("farm: controller rebind failed: " + err.Error())
	}
	h.AnnounceARP()
}
