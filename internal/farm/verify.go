package farm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gq/internal/host"
	"gq/internal/netstack"
	"gq/internal/obs"
)

// This file implements the enforcement half of the paper's "verifiable
// containment" wish (§4): where internal/policy.Prober checks what a
// policy WOULD decide, the containment probe checks what the running farm
// actually DOES — synthetic flows from a probe inmate toward canary hosts
// on the simulated Internet, with every canary byte accounted for.

// ProbeTarget is one synthetic flow to attempt.
type ProbeTarget struct {
	Addr netstack.Addr
	Port uint16
}

// ProbeOutcome reports where the probe traffic ended up.
type ProbeOutcome struct {
	// Sent lists every attempted probe, in order.
	Sent []ProbeTarget
	// ReachedCanary maps "addr:port" to the payload observed at the canary
	// — every entry is traffic that escaped the farm.
	ReachedCanary map[string]string
	// SinkFlows is how many probe flows the catch-all sink absorbed.
	SinkFlows int

	// mu guards ReachedCanary while the farm runs: on a sharded farm the
	// canaries are hash-spread across external domains, so two escapes can
	// land on different worker goroutines in the same round.
	mu sync.Mutex
}

// Escaped lists the probes that reached the outside world, sorted.
func (o *ProbeOutcome) Escaped() []string {
	out := make([]string, 0, len(o.ReachedCanary))
	for k := range o.ReachedCanary {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String summarises the outcome.
func (o *ProbeOutcome) String() string {
	return fmt.Sprintf("containment probe: %d sent, %d escaped, %d sunk",
		len(o.Sent), len(o.ReachedCanary), o.SinkFlows)
}

// DefaultProbeTargets builds the standard canary matrix: two destinations
// crossed with the sensitive ports.
func DefaultProbeTargets() []ProbeTarget {
	var out []ProbeTarget
	for _, addr := range []string{"198.51.100.201", "198.51.100.202"} {
		a := netstack.MustParseAddr(addr)
		for _, port := range []uint16{21, 22, 25, 80, 135, 443, 445, 6667} {
			out = append(out, ProbeTarget{Addr: a, Port: port})
		}
	}
	return out
}

// RunContainmentProbe adds canary hosts for every distinct target address,
// boots a probe inmate in sf that opens one flow per target carrying a
// recognisable payload, runs the farm, and accounts for every byte. The
// caller judges the outcome against the subfarm's policy intent (for
// DefaultDeny, any escape is a containment failure).
func RunContainmentProbe(f *Farm, sf *Subfarm, targets []ProbeTarget, window time.Duration) (*ProbeOutcome, error) {
	if len(targets) == 0 {
		targets = DefaultProbeTargets()
	}
	out := &ProbeOutcome{Sent: targets, ReachedCanary: make(map[string]string)}

	// One canary host per distinct address, listening everywhere.
	seen := map[netstack.Addr]bool{}
	for _, tgt := range targets {
		if seen[tgt.Addr] {
			continue
		}
		seen[tgt.Addr] = true
		h := f.AddExternalHost("canary-"+tgt.Addr.String(), tgt.Addr)
		addr := tgt.Addr
		h.ListenAny(func(c *host.Conn) {
			port := c.LocalPort()
			c.OnData = func(d []byte) {
				key := fmt.Sprintf("%s:%d", addr, port)
				out.mu.Lock()
				out.ReachedCanary[key] += string(d)
				out.mu.Unlock()
			}
			c.OnPeerClose = func() { c.Close() }
		})
	}

	sinkBefore := sf.CatchAll.TCPConns
	prevHook := sf.OnBootHook
	// The hook must fire for the probe inmate ONLY: any other inmate that
	// happens to boot during the window (e.g. a raw-iron box re-admitted
	// mid-probe) lives on a VLAN whose policy may legitimately forward
	// traffic — running the probe dials from there would count contained-
	// by-policy flows as escapes.
	var probe *FarmInmate
	sf.OnBootHook = func(fi *FarmInmate) {
		if fi != probe {
			if prevHook != nil {
				prevHook(fi)
			}
			return
		}
		for _, tgt := range targets {
			tgt := tgt
			c := fi.Host.Dial(tgt.Addr, tgt.Port)
			c.OnConnect = func() {
				c.Write([]byte(fmt.Sprintf("GQ-CONTAINMENT-PROBE %s:%d", tgt.Addr, tgt.Port)))
				// Half-close after the payload so probe flows tear down and
				// leave the gateway's flow table empty again.
				c.Close()
			}
		}
	}
	probe, err := sf.AddInmate("containment-probe")
	if err != nil {
		sf.OnBootHook = prevHook
		return nil, err
	}
	f.Run(window)
	sf.OnBootHook = prevHook
	probe.Terminate()

	out.SinkFlows = int(sf.CatchAll.TCPConns - sinkBefore)
	// Keep only probe payloads in the canary ledger (other experiment
	// traffic may legitimately reach external hosts).
	for k, v := range out.ReachedCanary {
		if !strings.Contains(v, "GQ-CONTAINMENT-PROBE") {
			delete(out.ReachedCanary, k)
		}
	}
	if len(out.ReachedCanary) > 0 {
		// Containment failed: freeze the subfarm's flight recorder so the
		// events leading up to the escape survive for the post-mortem.
		f.Sim.Obs().Journal.DumpScope(sf.Name,
			fmt.Sprintf("containment probe escaped: %d target(s)", len(out.ReachedCanary)))
		// A supervised subfarm counts the escape as a strike toward inmate
		// quarantine.
		if sf.Supervisor != nil {
			sf.Supervisor.ReportEscape(probe.VLAN)
		}
	}
	return out, nil
}

// FlightDumps returns the flight-recorder dumps accumulated so far (trigger
// firings, failed containment probes).
func (f *Farm) FlightDumps() []*obs.Dump { return f.Sim.Obs().Journal.Dumps() }
