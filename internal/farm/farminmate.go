package farm

import (
	"fmt"
	"strings"
	"time"

	"gq/internal/dhcp"
	"gq/internal/httpx"
	"gq/internal/inmate"
	"gq/internal/malware"
	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/policy"
)

// FarmInmate couples an inmate's life-cycle machinery with the specimen it
// currently executes.
type FarmInmate struct {
	*inmate.Inmate
	Subfarm *Subfarm

	// Specimen is the running behaviour model (nil before infection).
	Specimen malware.Specimen
	// SampleName and Family identify the served sample.
	SampleName string
	Family     string

	// Infections counts completed auto-infections across generations.
	Infections int
}

// AddInmate creates an inmate on a fresh VLAN with the default VM backend,
// registers it with the controller and the policy sample batches, and
// powers it on. The default boot sequence runs DHCP and then the
// auto-infection script (§6.6).
func (sf *Subfarm) AddInmate(name string) (*FarmInmate, error) {
	return sf.addInmate(name, &inmate.VMBackend{Sim: sf.Sim})
}

// AddInmateWithBackend uses a specific hosting technology.
func (sf *Subfarm) AddInmateWithBackend(name string, b inmate.Backend) (*FarmInmate, error) {
	return sf.addInmate(name, b)
}

func (sf *Subfarm) addInmate(name string, backend inmate.Backend) (*FarmInmate, error) {
	vlan, err := sf.VLANs.Allocate()
	if err != nil {
		return nil, err
	}
	h := sf.Farm.newHostIn(sf.Sim, name)
	netsim.Connect(sf.sw.AddAccessPort(fmt.Sprintf("%s-vlan%d", name, vlan), vlan), h.NIC(), sf.Config.AccessLatency)

	im := inmate.New(sf.Sim, name, vlan, h, backend)
	fi := &FarmInmate{Inmate: im, Subfarm: sf}
	sf.Inmates[vlan] = fi
	sf.Farm.Controller.Register(im)

	// Assign the sample batch from the policy config's Infection glob.
	if rule, ok := sf.PolicyConfig.RuleFor(vlan); ok && rule.Infection != "" {
		sf.Samples.AssignMatching(vlan, rule.Infection, sf.Config.SampleLibrary)
	}

	im.OnBoot = func(*inmate.Inmate) { fi.boot() }
	im.OnTerminate = func(*inmate.Inmate) {
		if fi.Specimen != nil {
			fi.Specimen.Stop()
		}
	}
	im.Start()
	return fi, nil
}

// Expire retires an inmate and releases its VLAN; the global address is
// burned (§6.7).
func (sf *Subfarm) Expire(fi *FarmInmate) {
	fi.Terminate()
	sf.Farm.Controller.Unregister(fi.VLAN)
	sf.Router.NAT().Release(fi.VLAN)
	delete(sf.Inmates, fi.VLAN)
	sf.VLANs.Release(fi.VLAN)
}

// boot is the inmate's OS-up sequence: stop any prior specimen, acquire a
// lease, then run the experiment's boot hook or the default auto-infection
// script.
func (fi *FarmInmate) boot() {
	if fi.Specimen != nil {
		fi.Specimen.Stop()
		fi.Specimen = nil
	}
	dhcp.RunClient(fi.Host, func(addr netstack.Addr) {
		if fi.Subfarm.OnBootHook != nil {
			fi.Subfarm.OnBootHook(fi)
			return
		}
		fi.autoinfect()
	})
}

// autoinfect contacts the (virtual) auto-infection HTTP server at its
// preconfigured address and port, requests the malware sample, and
// executes it (§6.6). The containment server impersonates the server via a
// REWRITE containment.
func (fi *FarmInmate) autoinfect() {
	ai := fi.Subfarm.Policy.Service(policy.SvcAutoinfect)
	req := httpx.NewRequest("GET", "/sample", ai.Addr.String(), nil)
	httpx.Do(fi.Host, ai.Addr, ai.Port, req, func(resp *httpx.Response, err error) {
		if err != nil || resp == nil || resp.Status != 200 {
			// Batch exhausted or containment refused; retry later (the
			// revert-trigger cycle may re-provision us).
			fi.Subfarm.Sim.Schedule(time.Minute, func() {
				if fi.State == inmate.StateRunning {
					fi.autoinfect()
				}
			})
			return
		}
		fi.SampleName = resp.Headers["x-sample-name"]
		fi.Family = resp.Headers["x-sample-family"]
		fi.Infections++
		fi.ExecuteSample(fi.Family)
	})
}

// ExecuteSample instantiates and runs the behaviour model for a family.
func (fi *FarmInmate) ExecuteSample(family string) {
	sf := fi.Subfarm
	ctx := &malware.Context{
		Host: fi.Host, Sim: sf.Sim,
		DNS:                fi.Host.DNS(),
		GMailMX:            sf.Config.GMailMX,
		SpamTargets:        sf.Config.SpamTargets,
		SpamInterval:       15 * time.Second,
		MessagesPerSession: sf.Config.SpamBatch,
		ScanPrefix:         sf.Config.GlobalPool,
	}
	if cc, ok := sf.Config.CCHosts[familyKeyFor(family)]; ok {
		ctx.CCAddr, ctx.CCPort = cc.Addr, cc.Port
	}
	sp, err := malware.New(family, ctx)
	if err != nil {
		// Worm samples carry their Table 1 name as the family.
		if spec, ok := wormSpecByName(family); ok {
			w := malware.NewWorm(spec, ctx)
			fi.Specimen = w
			w.Execute()
		}
		return
	}
	fi.Specimen = sp
	sp.Execute()
}

// familyKeyFor maps a specimen family to its CCHosts key.
func familyKeyFor(family string) string {
	switch family {
	case "rustock":
		return "Rustock"
	case "grum":
		return "Grum"
	case "megad", "split-personality":
		return "MegaD"
	case "storm-proxy":
		return "Storm"
	case "clickbot":
		return "Clickbot"
	default:
		return strings.Title(family)
	}
}

func wormSpecByName(name string) (malware.WormSpec, bool) {
	for _, w := range malware.Table1 {
		if w.Name == name {
			return w, true
		}
	}
	return malware.WormSpec{}, false
}
