package farm

import (
	"fmt"
	"time"

	"gq/internal/inmate"
	"gq/internal/obs"
	"gq/internal/rawiron"
	"gq/internal/sim"
)

// This file is the farm-level specimen-recycling pipeline over raw iron:
// detonate → capture → reimage → re-admit. A Recycler drives a pool of
// raw-iron inmates through bounded-concurrency restores so the subfarm
// sustains the paper's specimens/day cadence even while individual boxes
// retry or sit in breaker quarantine.

// Journalled pipeline events, emitted under "lifecycle.<subfarm>".
const (
	EvLifecycleDetonate = obs.EvLifecyclePrefix + "detonate"
	EvLifecycleCapture  = obs.EvLifecyclePrefix + "capture"
	EvLifecycleReimage  = obs.EvLifecyclePrefix + "reimage"
	EvLifecycleRecycled = obs.EvLifecyclePrefix + "recycled"
	EvLifecycleLost     = obs.EvLifecyclePrefix + "lost"
)

// Recycling-member phases.
const (
	phaseIdle     = "idle"
	phaseDetonate = "detonate"
	phaseCapture  = "capture"
	phaseReimage  = "reimage"
	phaseLost     = "lost"
)

// EnableRawIron attaches a raw-iron controller (§6.4) to the subfarm. It
// runs in the subfarm's simulation domain, so machine lifecycle events
// ride the same deterministic event order as the rest of the subfarm.
// Idempotent; the first call's config wins.
func (sf *Subfarm) EnableRawIron(cfg rawiron.Config) *rawiron.Controller {
	if sf.RawIron == nil {
		sf.RawIron = rawiron.NewControllerWith(sf.Sim, cfg)
	}
	return sf.RawIron
}

// AddRawIronInmate provisions one raw-iron box as a farm inmate: a fresh
// VLAN and access port, a machine on the next power-sequencer port, and a
// raw-iron backend whose Revert is a full network reimage of cleanImage.
func (sf *Subfarm) AddRawIronInmate(name, cleanImage string) (*FarmInmate, *rawiron.Machine, error) {
	sf.EnableRawIron(rawiron.Config{})
	sf.nextPower++
	m := &rawiron.Machine{
		// The machine name carries the subfarm prefix so per-machine
		// journal scopes ("rawiron.<machine>") stay unique farm-wide.
		Name:      sf.Name + "-" + name,
		PowerPort: sf.nextPower,
		DiskImage: cleanImage,
	}
	b := &rawiron.Backend{Controller: sf.RawIron, Machine: m, CleanImage: cleanImage}
	fi, err := sf.AddInmateWithBackend(name, b)
	if err != nil {
		return nil, nil, err
	}
	m.Host = fi.Host
	m.VLAN = fi.VLAN
	sf.RawIron.AddMachine(m)
	return fi, m, nil
}

// RecyclerConfig tunes the detonate→capture→reimage→readmit pipeline.
type RecyclerConfig struct {
	// DetonateFor is each specimen's execution window before harvest.
	DetonateFor time.Duration // default 10m
	// Stagger offsets successive members' first detonation so harvests
	// don't all hit the PXE/TFTP trunk at once.
	Stagger time.Duration // default 90s
	// Capture, when set, reads the post-detonation disk back into an
	// image (named after the machine and generation) before the clean
	// reimage — the paper's capture step.
	Capture bool
}

func (cfg RecyclerConfig) withDefaults() RecyclerConfig {
	if cfg.DetonateFor <= 0 {
		cfg.DetonateFor = 10 * time.Minute
	}
	if cfg.Stagger <= 0 {
		cfg.Stagger = 90 * time.Second
	}
	return cfg
}

// recycleMember is one raw-iron inmate in the rotation.
type recycleMember struct {
	fi *FarmInmate
	m  *rawiron.Machine

	phase  string
	cycles int
	timer  *sim.Event // pending detonation-window end (or staggered start)
}

// Recycler drives the subfarm's raw-iron pool through endless
// detonate→capture→reimage→readmit cycles until Stop.
type Recycler struct {
	sf  *Subfarm
	cfg RecyclerConfig
	sc  *obs.Scope

	members map[uint16]*recycleMember
	order   []uint16 // registration order, for deterministic starts

	recycled *obs.Counter

	// Cycles counts completed full cycles across all members; Lost counts
	// members dropped from rotation (their machine ended in breaker
	// quarantine).
	Cycles int
	Lost   int

	// progress is the supervision tree's monotone progress mark: it
	// advances at every phase transition, so a rotation whose mark freezes
	// while Active is wedged.
	progress int
	// watched dedups the tree's progress watch over this recycler.
	watched bool

	started, stopped bool
}

// AttachRecycler creates the subfarm's recycling pipeline. Idempotent;
// the first call's config wins.
func (sf *Subfarm) AttachRecycler(cfg RecyclerConfig) *Recycler {
	if sf.Recycler != nil {
		return sf.Recycler
	}
	r := &Recycler{
		sf: sf, cfg: cfg.withDefaults(),
		sc:       sf.Sim.Obs().Scope(obs.EvLifecyclePrefix+sf.Name, obs.DefaultRingSize),
		recycled: sf.Sim.Obs().Reg.Counter("lifecycle.recycled"),
		members:  make(map[uint16]*recycleMember),
	}
	sf.Recycler = r
	sf.Farm.registerRecycleAction()
	sf.Farm.watchRecycler(sf)
	return r
}

// Manage adds a raw-iron inmate (from AddRawIronInmate) to the rotation.
// Call before Start.
func (r *Recycler) Manage(fi *FarmInmate) error {
	b, ok := fi.Backend.(*rawiron.Backend)
	if !ok {
		return fmt.Errorf("recycler: inmate %s is not raw-iron backed (%s)", fi.Name, fi.Backend.Kind())
	}
	mb := &recycleMember{fi: fi, m: b.Machine, phase: phaseIdle}
	r.members[fi.VLAN] = mb
	r.order = append(r.order, fi.VLAN)
	// Re-admission is detected at the inmate's boot callback: a boot
	// arriving while the member is mid-reimage closes the cycle.
	prevBoot := fi.OnBoot
	fi.OnBoot = func(im *inmate.Inmate) {
		if prevBoot != nil {
			prevBoot(im)
		}
		r.onBoot(mb)
	}
	// A terminal revert failure (breaker quarantine) drops the member
	// from rotation instead of wedging it in StateReverting.
	b.OnFail = func(_ *inmate.Inmate, err error) { r.lose(mb) }
	return nil
}

// Manages reports whether vlan belongs to this recycler's rotation.
// Membership is fixed at build time, so this is safe to call from the
// root domain when routing the "recycle" controller verb.
func (r *Recycler) Manages(vlan uint16) bool {
	_, ok := r.members[vlan]
	return ok
}

// Start begins the rotation: each member detonates for DetonateFor
// (staggered), is harvested — stopped and optionally captured — then
// reimaged clean; its re-admission boot closes the cycle and the next
// detonation window opens immediately.
func (r *Recycler) Start() {
	if r.started {
		return
	}
	r.started = true
	for i, vlan := range r.order {
		mb := r.members[vlan]
		mb.timer = r.sf.Sim.Schedule(time.Duration(i)*r.cfg.Stagger, func() { r.detonate(mb) })
	}
}

// Stop ends the rotation: pending detonation windows are cancelled, and
// in-flight capture/reimage operations run to completion — their closing
// boot still counts the cycle but opens no new window.
func (r *Recycler) Stop() {
	if r.stopped {
		return
	}
	r.stopped = true
	for _, vlan := range r.order {
		mb := r.members[vlan]
		if mb.timer != nil {
			mb.timer.Cancel()
			mb.timer = nil
		}
	}
}

// Kick forces one member out of its detonation window into harvest now —
// the ops plane's POST /recycle/{inmate}.
func (r *Recycler) Kick(vlan uint16) error {
	mb := r.members[vlan]
	if mb == nil {
		return fmt.Errorf("recycler: no raw-iron member on VLAN %d", vlan)
	}
	switch mb.phase {
	case phaseDetonate:
	case phaseLost:
		return fmt.Errorf("recycler: member on VLAN %d lost to quarantine", vlan)
	default:
		return fmt.Errorf("recycler: member on VLAN %d is mid-%s, not detonating", vlan, mb.phase)
	}
	if mb.timer != nil {
		mb.timer.Cancel()
		mb.timer = nil
	}
	r.harvest(mb)
	return nil
}

func (r *Recycler) detonate(mb *recycleMember) {
	if r.stopped || mb.phase == phaseLost {
		return
	}
	mb.phase = phaseDetonate
	r.progress++
	r.sc.Emit(obs.Event{Type: EvLifecycleDetonate, VLAN: mb.fi.VLAN, N: uint64(mb.cycles)})
	mb.timer = r.sf.Sim.Schedule(r.cfg.DetonateFor, func() { r.harvest(mb) })
}

// harvest ends the detonation window: the specimen is powered down and
// the disk optionally captured before the clean reimage.
func (r *Recycler) harvest(mb *recycleMember) {
	if mb.phase != phaseDetonate {
		return
	}
	mb.timer = nil
	r.progress++
	mb.fi.Stop()
	if r.cfg.Capture {
		mb.phase = phaseCapture
		r.sc.Emit(obs.Event{Type: EvLifecycleCapture, VLAN: mb.fi.VLAN, N: uint64(mb.cycles)})
		img := fmt.Sprintf("%s-gen%d", mb.m.Name, mb.fi.Generation)
		err := r.sf.RawIron.CaptureImage(mb.m, img, func(err error) {
			if err != nil {
				r.lose(mb)
				return
			}
			r.reimage(mb)
		})
		if err != nil {
			r.lose(mb)
		}
		return
	}
	r.reimage(mb)
}

func (r *Recycler) reimage(mb *recycleMember) {
	if mb.phase == phaseLost {
		return
	}
	mb.phase = phaseReimage
	r.progress++
	r.sc.Emit(obs.Event{Type: EvLifecycleReimage, VLAN: mb.fi.VLAN, N: uint64(mb.cycles)})
	// Revert drives Backend.Revert → Controller.Reimage; failure lands in
	// the backend's OnFail (wired by Manage) and loses the member.
	mb.fi.Revert()
}

// onBoot fires on every inmate boot; one arriving mid-reimage is the
// re-admission that closes the cycle.
func (r *Recycler) onBoot(mb *recycleMember) {
	if mb.phase != phaseReimage {
		return
	}
	mb.phase = phaseIdle
	mb.cycles++
	r.Cycles++
	r.progress++
	r.recycled.Inc()
	r.sc.Emit(obs.Event{Type: EvLifecycleRecycled, VLAN: mb.fi.VLAN, N: uint64(mb.cycles)})
	if r.stopped {
		return
	}
	r.detonate(mb)
}

// lose drops a member from rotation — its machine ended in breaker
// quarantine — so the pipeline carries on with the surviving pool
// rather than wedging.
func (r *Recycler) lose(mb *recycleMember) {
	if mb.phase == phaseLost {
		return
	}
	mb.phase = phaseLost
	if mb.timer != nil {
		mb.timer.Cancel()
		mb.timer = nil
	}
	r.Lost++
	r.progress++
	r.sc.Emit(obs.Event{Type: EvLifecycleLost, VLAN: mb.fi.VLAN, N: uint64(mb.cycles)})
	// The inmate may be stranded mid-revert; stop it so the farm has no
	// phantom booting machine.
	mb.fi.Stop()
}

// Progress returns the rotation's monotone progress mark (one increment
// per phase transition across all members). The supervision tree polls it
// together with Active: an active rotation whose mark freezes past the
// wedge budget gets re-armed.
func (r *Recycler) Progress() int { return r.progress }

// Active reports whether the rotation should be making progress: started,
// not stopped, and at least one member still in rotation.
func (r *Recycler) Active() bool {
	if !r.started || r.stopped {
		return false
	}
	for _, vlan := range r.order {
		if r.members[vlan].phase != phaseLost {
			return true
		}
	}
	return false
}

// Wedge cancels every pending rotation timer without stopping the
// rotation — the chaos recycler-wedge fault: members freeze in place
// (idle members never detonate, detonating members never harvest) until
// the supervision tree notices the frozen progress mark and re-arms them.
// Returns the number of timers cancelled.
func (r *Recycler) Wedge() int {
	n := 0
	for _, vlan := range r.order {
		mb := r.members[vlan]
		if mb.timer != nil {
			mb.timer.Cancel()
			mb.timer = nil
			n++
		}
	}
	return n
}

// Rearm restarts members whose pending timer was lost (a wedge): idle
// members detonate now, detonating members harvest now. Members
// mid-capture or mid-reimage are event-driven, not timer-driven, and
// need no kick. Invoked by the supervision tree on the subfarm's domain.
func (r *Recycler) Rearm() {
	if !r.started || r.stopped {
		return
	}
	for _, vlan := range r.order {
		mb := r.members[vlan]
		if mb.timer != nil {
			continue
		}
		switch mb.phase {
		case phaseIdle:
			r.detonate(mb)
		case phaseDetonate:
			r.harvest(mb)
		}
	}
}

// registerRecycleAction wires the "recycle" verb into the farm-wide
// inmate controller, routing it to the subfarm recycler that owns the
// VLAN. Cross-domain members are kicked via a posted event — the OK then
// acknowledges acceptance, like every other cross-domain VMM command.
func (f *Farm) registerRecycleAction() {
	if f.Controller.RecycleFn != nil {
		return
	}
	f.Controller.RecycleFn = func(vlan uint16) error {
		for _, sf := range f.Subfarms {
			r := sf.Recycler
			if r == nil || !r.Manages(vlan) {
				continue
			}
			if target := sf.Sim; target != f.Sim {
				f.Sim.PostTo(target, 0, func() { r.Kick(vlan) })
				return nil
			}
			return r.Kick(vlan)
		}
		return fmt.Errorf("farm: no recycler manages VLAN %d", vlan)
	}
}
