package farm

import (
	"testing"
	"time"
)

// TestExpireReleasesResources: retiring an inmate frees its VLAN for reuse
// while deliberately burning its global address (§6.7: blacklist-prone
// addresses are not recycled).
func TestExpireReleasesResources(t *testing.T) {
	f, sf := buildBotfarm(t, 55, 0)
	bot, err := sf.AddInmate("shortlived")
	if err != nil {
		t.Fatal(err)
	}
	f.Run(5 * time.Minute)
	vlan := bot.VLAN
	global := sf.Router.NAT().ByVLAN(vlan).Global

	sf.Expire(bot)
	if bot.State.String() != "terminated" {
		t.Fatalf("state %v", bot.State)
	}
	if sf.Router.NAT().ByVLAN(vlan) != nil {
		t.Fatal("NAT binding survived expiry")
	}
	if f.Controller.Inmate(vlan) != nil {
		t.Fatal("controller still knows the inmate")
	}
	if _, ok := sf.Inmates[vlan]; ok {
		t.Fatal("subfarm still tracks the inmate")
	}

	// The VLAN returns to the pool (reusable after the cursor wraps); the
	// burned global address does not.
	if sf.VLANs.InUse() != 0 {
		t.Fatalf("VLAN pool still holds %d after expiry", sf.VLANs.InUse())
	}
	next, err := sf.AddInmate("replacement")
	if err != nil {
		t.Fatal(err)
	}
	reused := next.VLAN == vlan
	for !reused && sf.VLANs.InUse() < sf.VLANs.Size() {
		extra, err := sf.AddInmate("filler")
		if err != nil {
			t.Fatal(err)
		}
		reused = extra.VLAN == vlan
	}
	if !reused {
		t.Fatalf("VLAN %d never returned to circulation", vlan)
	}
	f.Run(5 * time.Minute)
	if b := sf.Router.NAT().ByVLAN(next.VLAN); b == nil || b.Global == global {
		t.Fatalf("replacement binding %+v reused burned global %v", b, global)
	}
	if next.Family == "" {
		t.Fatal("replacement never infected")
	}
}
