package farm

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"gq/internal/inmate"
	"gq/internal/malware"
	"gq/internal/netstack"
	"gq/internal/policy"
	"gq/internal/shim"
	"gq/internal/smtpx"
)

// botfarmConfig reproduces the Fig. 6 setup: Rustock on VLANs 16-17, Grum
// on 18-19, a revert trigger, and the service locations.
const botfarmPolicy = `[VLAN 16-17]
Decider = Rustock
Infection = rustock.100921.*.exe

[VLAN 18-19]
Decider = Grum
Infection = grum.100818.*.exe

[VLAN 16-19]
Trigger = *:25/tcp / 30min < 1 -> revert
`

func sampleLibrary() []*policy.Sample {
	return []*policy.Sample{
		policy.NewSample("rustock.100921.001.exe", "rustock", []byte("MZ-rustock-001")),
		policy.NewSample("rustock.100921.002.exe", "rustock", []byte("MZ-rustock-002")),
		policy.NewSample("grum.100818.001.exe", "grum", []byte("MZ-grum-001")),
	}
}

// buildBotfarm assembles the Fig. 7 Botfarm with external C&C hosts.
func buildBotfarm(t *testing.T, seed int64, dropProb float64) (*Farm, *Subfarm) {
	t.Helper()
	f := New(seed)
	ccAddr := netstack.MustParseAddr("50.8.207.91")
	ccHost := f.AddExternalHost("steephost", ccAddr)
	if _, err := malware.NewCCServer(ccHost, malware.CCConfig{
		Template:  "cheap meds",
		Targets:   []netstack.Addr{netstack.MustParseAddr("203.0.113.25"), netstack.MustParseAddr("203.0.113.26")},
		Forbidden: []string{"DDOS 203.0.113.99", "PROXY 203.0.113.98:1080"},
	}); err != nil {
		t.Fatal(err)
	}

	sf, err := f.AddSubfarm(SubfarmConfig{
		Name:   "Botfarm",
		VLANLo: 16, VLANHi: 30,
		ServiceVLAN:   11,
		GlobalPool:    netstack.MustParsePrefix("192.0.2.0/24"),
		InfraPool:     netstack.MustParsePrefix("192.0.9.0/24"),
		PolicyConfig:  botfarmPolicy,
		SampleLibrary: sampleLibrary(),
		RepeatBatches: true,
		CCHosts: map[string]policy.AddrPort{
			"Rustock": {Addr: ccAddr, Port: 443},
			"Grum":    {Addr: ccAddr, Port: 80},
		},
		SinkDropProb:   dropProb,
		SinkStrictness: smtpx.Lenient,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, sf
}

func TestBotfarmEndToEnd(t *testing.T) {
	f, sf := buildBotfarm(t, 42, 0)

	rustockInmate, err := sf.AddInmate("rustock-0")
	if err != nil {
		t.Fatal(err)
	}
	grumInmate, err := sf.AddInmate("grum-0")
	if err != nil {
		t.Fatal(err)
	}
	if rustockInmate.VLAN != 16 || grumInmate.VLAN != 17 {
		t.Fatalf("VLANs %d %d", rustockInmate.VLAN, grumInmate.VLAN)
	}
	// VLAN 17 belongs to the Rustock range; add two more to land in Grum's.
	g2, _ := sf.AddInmate("grum-1")
	if g2.VLAN != 18 {
		t.Fatalf("third inmate VLAN %d", g2.VLAN)
	}

	f.Run(30 * time.Minute)

	// Auto-infection happened and the right families run.
	if rustockInmate.Family != "rustock" || rustockInmate.SampleName != "rustock.100921.001.exe" {
		t.Fatalf("rustock inmate family=%q sample=%q", rustockInmate.Family, rustockInmate.SampleName)
	}
	if g2.Family != "grum" {
		t.Fatalf("grum inmate family=%q", g2.Family)
	}
	if rustockInmate.Specimen == nil || g2.Specimen == nil {
		t.Fatal("specimens not executing")
	}

	// The C&C lifeline worked: bots got their templates through the farm.
	recs := sf.Router.Records()
	var forwards, reflects, rewrites int
	for _, r := range recs {
		switch {
		case r.Verdict.Has(shim.Forward):
			forwards++
		case r.Verdict.Has(shim.Reflect):
			reflects++
		case r.Verdict.Has(shim.Rewrite):
			rewrites++
		}
	}
	if forwards == 0 {
		t.Fatal("no forwarded C&C flows")
	}
	if rewrites < 3 {
		t.Fatalf("rewrites %d; expected at least the three auto-infections", rewrites)
	}
	if reflects == 0 {
		t.Fatal("no reflected spam flows")
	}

	// Spam landed in the sinks, not the Internet: the C&C targets are
	// 203.0.113.x which do not exist — any leak would show as failed
	// handshakes, and containment means the sinks saw sessions.
	total := sf.SMTPSink.Sessions + sf.BannerSink.Sessions
	if total == 0 {
		t.Fatal("no spam harvested")
	}
	// Rustock (simple sink, 3 msgs/session) vs Grum (banner sink, 1).
	if sf.SMTPSink.DataTransfers < 2*sf.SMTPSink.Sessions {
		t.Fatalf("rustock sink DATA=%d sessions=%d", sf.SMTPSink.DataTransfers, sf.SMTPSink.Sessions)
	}

	// The tap-fed SMTP analyzer agrees with the sinks.
	var analyzerSessions uint64
	for _, st := range sf.SMTPAnalyzer.PerInmate {
		analyzerSessions += st.Sessions
	}
	if analyzerSessions != total {
		t.Fatalf("analyzer sessions %d, sinks %d", analyzerSessions, total)
	}

	// The shim analyzer observed containment requests for every inmate.
	for _, vlan := range []uint16{16, 17, 18} {
		if sf.ShimAnalyzer.RequestsByVLAN[vlan] == 0 {
			t.Fatalf("no shims observed for VLAN %d", vlan)
		}
	}
}

func TestFigure7Report(t *testing.T) {
	f, sf := buildBotfarm(t, 7, 0.3)
	sf.AddInmate("rustock-0")
	g, _ := sf.AddInmate("x")
	_ = g
	grum, _ := sf.AddInmate("grum-0") // VLAN 18
	_ = grum
	f.Run(time.Hour)

	rep := f.Reporter(true)
	text := rep.Generate()

	for _, want := range []string{
		"Inmate Activity",
		"Active subfarms: Botfarm",
		"Subfarm 'Botfarm' [Containment server VLAN 11]",
		"Rustock [xxx.yyy.",
		"Grum [xxx.yyy.",
		"VLAN 16",
		"VLAN 18",
		"FORWARD",
		"REFLECT",
		"REWRITE",
		"autoinfection ",
		"SMTP sessions",
		"SMTP DATA transfers",
		"C&C",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q\n----\n%s", want, text)
		}
	}
	// Internal addresses appear unanonymised; globals masked.
	if !strings.Contains(text, "/10.0.0.") {
		t.Errorf("internal addresses missing:\n%s", text)
	}
	if strings.Contains(text, "192.0.2.") {
		t.Errorf("global addresses leaked unanonymised:\n%s", text)
	}

	// The Fig. 7 numeric shape: with a dropping sink, REFLECTed flows
	// exceed completed SMTP sessions.
	reflected := 0
	for _, r := range sf.Router.Records() {
		if r.Verdict.Has(shim.Reflect) && r.RespPort == 25 {
			reflected++
		}
	}
	var sessions uint64
	for _, st := range sf.SMTPAnalyzer.PerInmate {
		sessions += st.Sessions
	}
	if reflected == 0 || uint64(reflected) <= sessions {
		t.Fatalf("reflected=%d sessions=%d: dropping sink must make flows exceed sessions",
			reflected, sessions)
	}
}

func TestTriggerRevertsQuietInmate(t *testing.T) {
	f, sf := buildBotfarm(t, 9, 0)
	// An inmate whose sample batch is empty: it boots, auto-infection is
	// refused (batch exhausted -> DROP), it never spams, and the 30-minute
	// absence trigger reverts it.
	sf.Config.SampleLibrary = nil
	bot, err := sf.AddInmate("quiet")
	if err != nil {
		t.Fatal(err)
	}
	f.Run(100 * time.Minute)
	if bot.Generation == 0 {
		t.Fatalf("quiet inmate was never reverted (gen=%d, transitions=%v)",
			bot.Generation, bot.Transitions)
	}
	if len(sf.CS.Triggers().Fired) == 0 {
		t.Fatal("trigger engine never fired")
	}
	// The action travelled over the management network.
	found := false
	for _, rec := range f.Controller.Log {
		if rec.Action == "revert" && rec.VLAN == bot.VLAN && rec.OK {
			found = true
		}
	}
	if !found {
		t.Fatalf("controller log %+v", f.Controller.Log)
	}
}

func TestBatchServesSequentially(t *testing.T) {
	f, sf := buildBotfarm(t, 11, 0)
	bot, _ := sf.AddInmate("rustock-0")
	f.Run(time.Minute)
	if bot.SampleName != "rustock.100921.001.exe" {
		t.Fatalf("first sample %q", bot.SampleName)
	}
	// Force a revert: the next infection serves the next batch entry.
	bot.Revert()
	f.Run(5 * time.Minute)
	if bot.SampleName != "rustock.100921.002.exe" {
		t.Fatalf("second sample %q", bot.SampleName)
	}
	if bot.Infections != 2 {
		t.Fatalf("infections %d", bot.Infections)
	}
}

func TestRawIronInmateInFarm(t *testing.T) {
	f, sf := buildBotfarm(t, 13, 0)
	// Raw-iron backends behave identically from the farm's perspective,
	// just slower to revert.
	b := &inmate.QEMUBackend{Sim: f.Sim}
	bot, err := sf.AddInmateWithBackend("emu-0", b)
	if err != nil {
		t.Fatal(err)
	}
	f.Run(10 * time.Minute)
	if bot.Family == "" {
		t.Fatal("emulated inmate never infected")
	}
}

func TestSubfarmIsolation(t *testing.T) {
	// Fig. 3: parallel subfarms with disjoint VLAN sets operate
	// independently: distinct policies, distinct records.
	f := New(21)
	ccAddr := netstack.MustParseAddr("50.8.207.91")
	cc := f.AddExternalHost("cc", ccAddr)
	malware.NewCCServer(cc, malware.CCConfig{Template: "x",
		Targets: []netstack.Addr{netstack.MustParseAddr("203.0.113.25")}})

	mk := func(name string, lo, hi, svc uint16, pool, infra string) *Subfarm {
		sf, err := f.AddSubfarm(SubfarmConfig{
			Name: name, VLANLo: lo, VLANHi: hi, ServiceVLAN: svc,
			GlobalPool:   netstack.MustParsePrefix(pool),
			InfraPool:    netstack.MustParsePrefix(infra),
			PolicyConfig: "[VLAN " + itoa(lo) + "-" + itoa(hi) + "]\nDecider = Rustock\nInfection = *.exe\n",
			SampleLibrary: []*policy.Sample{
				policy.NewSample("bot.exe", "rustock", []byte("MZ")),
			},
			RepeatBatches:  true,
			CCHosts:        map[string]policy.AddrPort{"Rustock": {Addr: ccAddr, Port: 443}},
			SinkStrictness: smtpx.Lenient,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sf
	}
	sfA := mk("alpha", 16, 20, 11, "192.0.2.0/24", "192.0.9.0/24")
	sfB := mk("beta", 40, 44, 12, "198.51.100.0/24", "192.0.10.0/24")
	sfC := mk("gamma", 60, 64, 13, "203.0.114.0/24", "192.0.11.0/24")

	a, _ := sfA.AddInmate("a0")
	b, _ := sfB.AddInmate("b0")
	c, _ := sfC.AddInmate("c0")
	f.Run(20 * time.Minute)

	for i, bot := range []*FarmInmate{a, b, c} {
		if bot.Family != "rustock" {
			t.Fatalf("inmate %d never infected", i)
		}
	}
	// Records stay within each subfarm.
	for _, sf := range []*Subfarm{sfA, sfB, sfC} {
		for _, rec := range sf.Router.Records() {
			if rec.Subfarm != sf.Name {
				t.Fatalf("record %+v leaked into %s", rec, sf.Name)
			}
			if rec.VLAN < sf.Config.VLANLo || rec.VLAN > sf.Config.VLANHi {
				t.Fatalf("record VLAN %d outside %s", rec.VLAN, sf.Name)
			}
		}
		if len(sf.Router.Records()) == 0 {
			t.Fatalf("subfarm %s has no activity", sf.Name)
		}
	}
	// NAT pools don't bleed.
	if sfA.Router.NAT().ByVLAN(a.VLAN).Global == sfB.Router.NAT().ByVLAN(b.VLAN).Global {
		t.Fatal("global pools overlap")
	}
}

func itoa(v uint16) string { return strconv.Itoa(int(v)) }
