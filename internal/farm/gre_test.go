package farm

import (
	"testing"
	"time"

	"gq/internal/gateway"
	"gq/internal/malware"
	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/policy"
	"gq/internal/smtpx"
)

// TestGREGraftedAddressSpaceInFarm: a subfarm whose primary pool holds one
// usable address runs two spambots; the second inmate's global binding
// spills into GRE-tunnelled space contributed by a peer router, and its
// C&C lifeline works end to end through the tunnel.
func TestGREGraftedAddressSpaceInFarm(t *testing.T) {
	f := New(88)
	tunnel := gateway.GRETunnel{
		LocalAddr: netstack.MustParseAddr("192.0.2.2"),
		PeerAddr:  netstack.MustParseAddr("198.51.100.254"),
		ExtraPool: netstack.MustParsePrefix("203.0.114.0/24"),
		PoolStart: 16,
	}
	peer := gateway.NewGREPeer(f.Sim, tunnel)
	netsim.Connect(f.InternetSwitch.AddAccessPort("grepeer", 100), peer.Port(), 0)

	ccAddr := netstack.MustParseAddr("50.8.207.91")
	cc := f.AddExternalHost("cc", ccAddr)
	ccSrv, err := malware.NewCCServer(cc, malware.CCConfig{
		Template: "x", Targets: []netstack.Addr{netstack.MustParseAddr("203.0.113.25")},
	})
	if err != nil {
		t.Fatal(err)
	}

	sf, err := f.AddSubfarm(SubfarmConfig{
		Name:   "grefarm",
		VLANLo: 16, VLANHi: 20,
		ServiceVLAN: 11,
		// /28 with start 16 is ALREADY exhausted: every binding tunnels.
		GlobalPool:   netstack.MustParsePrefix("192.0.2.0/28"),
		GRETunnels:   []gateway.GRETunnel{tunnel},
		PolicyConfig: "[VLAN 16-20]\nDecider = Rustock\nInfection = *.exe\n",
		SampleLibrary: []*policy.Sample{
			policy.NewSample("bot.exe", "rustock", []byte("MZ")),
		},
		RepeatBatches:  true,
		CCHosts:        map[string]policy.AddrPort{"Rustock": {Addr: ccAddr, Port: 443}},
		SinkStrictness: smtpx.Lenient,
	})
	if err != nil {
		t.Fatal(err)
	}
	bot, err := sf.AddInmate("tunnelled-bot")
	if err != nil {
		t.Fatal(err)
	}
	f.Run(15 * time.Minute)

	b := sf.Router.NAT().ByVLAN(bot.VLAN)
	if b == nil || !tunnel.ExtraPool.Contains(b.Global) {
		t.Fatalf("binding %+v not in tunnelled pool", b)
	}
	if bot.Family != "rustock" {
		t.Fatalf("inmate never infected (family %q)", bot.Family)
	}
	// The C&C lifeline crossed the tunnel in both directions.
	if ccSrv.Hellos == 0 {
		t.Fatal("C&C never heard from the tunnelled bot")
	}
	if peer.TunnelledIn == 0 || peer.TunnelledOut == 0 {
		t.Fatalf("tunnel idle: in=%d out=%d", peer.TunnelledIn, peer.TunnelledOut)
	}
	// Spam stayed contained regardless of addressing.
	if sf.SMTPSink.DataTransfers == 0 {
		t.Fatal("no contained spam harvested")
	}
}
