package farm

import (
	"bytes"
	"testing"
	"time"

	"gq/internal/netstack"
	"gq/internal/report"
	"gq/internal/trace"
)

// A containment server that stalls verdicts past the await-verdict deadline
// must not weaken containment: every probe flow resolves fail-closed — a
// synthetic Drop, nothing reflected to the catch-all, zero bytes at any
// canary — the flow table drains empty, and the on-wire trace proves no
// verdict was ever issued.
func TestVerdictStallFailsClosed(t *testing.T) {
	f, sf := probeFarm(t, "DefaultDeny")

	// Independent on-wire evidence for the audit.
	var pcap bytes.Buffer
	tw := trace.NewWriter(&pcap)
	sf.Router.AddTap(func(p *netstack.Packet) {
		if err := tw.WritePacket(sf.Sim.WallClock(), p.Marshal()); err != nil {
			t.Errorf("trace write: %v", err)
		}
	})

	// Stall every verdict far past the await deadline: the server is alive
	// (heartbeats would still echo) but adjudicates nothing.
	sf.CS.SetVerdictStall(2 * time.Hour)

	out, err := RunContainmentProbe(f, sf, nil, 4*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	f.Run(3 * time.Minute) // drain past the sweep horizons

	if escaped := out.Escaped(); len(escaped) != 0 {
		t.Fatalf("probe escaped under verdict stall: %v", escaped)
	}
	if out.SinkFlows != 0 {
		t.Fatalf("fail-closed probes must not reach the catch-all, got %d sink flows", out.SinkFlows)
	}
	if n := sf.Router.ActiveFlows(); n != 0 {
		t.Fatalf("flow table leaked under stall: %d entries", n)
	}

	snap := f.Sim.Obs().Snapshot()
	created := snap.Counter("subfarm.probe.flows_created")
	failclosed := snap.Counter("subfarm.probe.flows_failclosed")
	if created == 0 {
		t.Fatal("no flows created — probe produced no traffic")
	}
	if failclosed != created {
		t.Fatalf("flows_failclosed=%d, flows_created=%d — every stalled flow must fail closed",
			failclosed, created)
	}
	if v := snap.Counter("subfarm.probe.verdicts_applied"); v != 0 {
		t.Fatalf("verdicts_applied=%d under a total stall", v)
	}
	for _, rec := range sf.Router.Records() {
		if !rec.FailClosed || rec.Policy != "" {
			t.Fatalf("record %+v: want pre-verdict fail-close (FailClosed, no policy)", rec)
		}
	}

	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.Read(bytes.NewReader(pcap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	audit := report.AuditTrace(recs, ContainmentPort, sf.CS.Host.Addr())
	if audit.Verdicts != 0 {
		t.Fatalf("trace shows %d verdicts crossed the wire during a total stall", audit.Verdicts)
	}
	if audit.FlowsCreated != created {
		t.Fatalf("trace derives %d flows, registry counted %d", audit.FlowsCreated, created)
	}
	if problems := f.Reporter(false).CrossCheck(); len(problems) != 0 {
		t.Fatalf("cross-check: %v", problems)
	}
}
