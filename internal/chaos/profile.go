// Package chaos is the farm's fault-injection harness. A Profile describes
// which faults to inject — link impairment on inmate access links, link
// flaps, containment-server crash/restart cycles, stalled verdicts, sink
// outages — and an Injector applies it to a running subfarm. Everything is
// driven by the shared simulator: all randomness comes from the simulator
// RNG and all scheduling runs on the virtual clock, so a given (seed,
// profile) pair replays the exact same fault sequence every run.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Profile is a declarative fault-injection plan. The zero value injects
// nothing.
type Profile struct {
	Name string

	// Link impairment, applied to both directions of every inmate access
	// link present when the profile is applied (see netsim.Impairment).
	Loss    float64
	Jitter  time.Duration
	Reorder float64
	Dup     float64
	Corrupt float64

	// Link flapping: every FlapEvery, one inmate link (chosen by the sim
	// RNG) goes administratively down for FlapDown. Zero FlapEvery
	// disables flapping.
	FlapEvery time.Duration
	FlapDown  time.Duration

	// Containment-server crash schedule: at each listed offset a cluster
	// member is shut down mid-session and restarted CSDownFor later with
	// its listeners rebound. Members are chosen round-robin.
	CSCrashAt []time.Duration
	CSDownFor time.Duration

	// Stalled verdicts: from StallAt for StallFor, every containment
	// server sits on each verdict for StallDelay before answering.
	StallAt    time.Duration
	StallFor   time.Duration
	StallDelay time.Duration

	// Sink outage: the named service host (default "smtpsink") loses its
	// NIC from SinkDownAt for SinkDownFor. Zero SinkDownFor disables it.
	Sink        string
	SinkDownAt  time.Duration
	SinkDownFor time.Duration

	// Sink crash schedule: at each listed offset the named sink service
	// host (SinkCrashTarget, default "smtpsink") is shut down mid-session
	// — listeners and live connections destroyed, not just the NIC pulled.
	// On an unsupervised subfarm chaos restores it SinkCrashFor later; on
	// a supervised one recovery belongs to the supervision tree.
	SinkCrashAt     []time.Duration
	SinkCrashTarget string
	SinkCrashFor    time.Duration

	// Controller hang: at each listed offset the farm-wide inmate
	// controller stops consuming its control connections (TCP handshakes
	// still complete; the application goes silent) for CtlHangFor. A
	// supervised farm recovers through the tree's restart ladder;
	// otherwise chaos unhangs it.
	CtlHangAt  []time.Duration
	CtlHangFor time.Duration

	// Recycler wedge: at each listed offset every armed timer in the
	// subfarm's detonation/recycling pipeline is cancelled. A supervision
	// tree's progress watch re-arms the pipeline; otherwise chaos re-arms
	// it RecyclerWedgeFor later.
	RecyclerWedgeAt  []time.Duration
	RecyclerWedgeFor time.Duration

	// Raw-iron reimage faults, installed on the subfarm's raw-iron
	// controller when one is attached (see internal/rawiron.Faults):
	// per-opportunity probabilities of a hung netboot, a stalled or
	// corrupted image transfer, and a stuck power port. All zero means no
	// fault hooks — the controller then draws no randomness at all.
	ReimageNetbootHang float64
	ReimageXferStall   float64
	ReimageXferCorrupt float64
	ReimagePowerStick  float64
}

// ReimageFaultsActive reports whether any raw-iron fault hook is set.
func (p Profile) ReimageFaultsActive() bool {
	return p.ReimageNetbootHang > 0 || p.ReimageXferStall > 0 ||
		p.ReimageXferCorrupt > 0 || p.ReimagePowerStick > 0
}

// presets are the named baseline profiles -chaos accepts. "soak" is the
// acceptance profile: ≥5% loss, reordering, one scheduled CS crash, a
// verdict-stall window, and a sink outage.
var presets = map[string]Profile{
	"soak": {
		Name: "soak",
		Loss: 0.05, Reorder: 0.05, Dup: 0.02, Corrupt: 0.001,
		Jitter:    2 * time.Millisecond,
		FlapEvery: 5 * time.Minute, FlapDown: 10 * time.Second,
		CSCrashAt: []time.Duration{8 * time.Minute}, CSDownFor: 30 * time.Second,
		StallAt: 13 * time.Minute, StallFor: 20 * time.Second, StallDelay: 5 * time.Second,
		SinkDownAt: 16 * time.Minute, SinkDownFor: time.Minute,
	},
	"light": {
		Name: "light",
		Loss: 0.02, Jitter: time.Millisecond,
	},
	"crash": {
		Name:      "crash",
		CSCrashAt: []time.Duration{5 * time.Minute}, CSDownFor: 30 * time.Second,
	},
	// killstorm is the recovery soak's profile: moderate impairment plus a
	// sustained round-robin kill schedule across the containment cluster.
	// Without supervision this blackholes the dead members' inmates for
	// CSDownFor each time; with supervision, recovery must beat it.
	"killstorm": {
		Name: "killstorm",
		Loss: 0.02, Reorder: 0.02, Jitter: time.Millisecond,
		CSCrashAt: []time.Duration{
			4 * time.Minute, 6 * time.Minute, 8 * time.Minute,
			10 * time.Minute, 12 * time.Minute, 14 * time.Minute,
		},
		CSDownFor: time.Minute,
	},
	// blackout is the fleet soak's profile: a killstorm-grade CS crash
	// schedule plus sink crashes, a controller hang, and a recycler wedge
	// — every fault class the supervision tree is expected to survive (or
	// escalate) at once.
	"blackout": {
		Name: "blackout",
		Loss: 0.02, Reorder: 0.02, Jitter: time.Millisecond,
		CSCrashAt: []time.Duration{
			4 * time.Minute, 6 * time.Minute, 8 * time.Minute, 10 * time.Minute,
		},
		CSDownFor:   time.Minute,
		SinkCrashAt: []time.Duration{5 * time.Minute, 9 * time.Minute},
		CtlHangAt:   []time.Duration{7 * time.Minute}, CtlHangFor: 90 * time.Second,
		RecyclerWedgeAt: []time.Duration{6 * time.Minute},
	},
	// reimage is the recycling soak's profile: light link impairment plus
	// raw-iron hardware faults at rates high enough that most soak runs
	// see retries on every fault path and the occasional breaker trip.
	"reimage": {
		Name: "reimage",
		Loss: 0.01, Jitter: time.Millisecond,
		ReimageNetbootHang: 0.12, ReimageXferStall: 0.10,
		ReimageXferCorrupt: 0.06, ReimagePowerStick: 0.08,
	},
}

// Parse builds a Profile from a -chaos spec: either a preset name ("soak",
// "light", "crash", "killstorm", "blackout", "reimage"), or a preset
// followed by comma-separated key=value overrides, or overrides alone on
// top of the zero profile. Keys: loss, jitter, reorder, dup, corrupt,
// flapevery, flapdown, cscrash (repeatable), csdownfor, stallat, stallfor,
// stalldelay, sink, sinkdownat, sinkdownfor, sinkcrash (repeatable),
// sinkcrashtarget, sinkcrashfor, ctlhang (repeatable), ctlhangfor,
// recyclerwedge (repeatable), recyclerwedgefor, nbhang, xferstall,
// xfercorrupt, powerstick.
//
//	soak
//	soak,loss=0.10,cscrash=4m,cscrash=12m
//	loss=0.05,reorder=0.05,cscrash=8m
func Parse(spec string) (Profile, error) {
	var p Profile
	sawCrash, sawSinkCrash, sawCtlHang, sawWedge := false, false, false, false
	for i, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if !strings.Contains(tok, "=") {
			base, ok := presets[tok]
			if !ok || i != 0 {
				return Profile{}, fmt.Errorf("chaos: unknown preset %q", tok)
			}
			p = base
			// A preset's schedules are replaced, not extended, by explicit
			// cscrash=/sinkcrash=/ctlhang=/recyclerwedge= overrides.
			p.CSCrashAt = append([]time.Duration(nil), base.CSCrashAt...)
			p.SinkCrashAt = append([]time.Duration(nil), base.SinkCrashAt...)
			p.CtlHangAt = append([]time.Duration(nil), base.CtlHangAt...)
			p.RecyclerWedgeAt = append([]time.Duration(nil), base.RecyclerWedgeAt...)
			continue
		}
		k, v, _ := strings.Cut(tok, "=")
		var err error
		switch strings.ToLower(k) {
		case "loss":
			p.Loss, err = strconv.ParseFloat(v, 64)
		case "reorder":
			p.Reorder, err = strconv.ParseFloat(v, 64)
		case "dup":
			p.Dup, err = strconv.ParseFloat(v, 64)
		case "corrupt":
			p.Corrupt, err = strconv.ParseFloat(v, 64)
		case "jitter":
			p.Jitter, err = time.ParseDuration(v)
		case "flapevery":
			p.FlapEvery, err = time.ParseDuration(v)
		case "flapdown":
			p.FlapDown, err = time.ParseDuration(v)
		case "cscrash":
			var d time.Duration
			d, err = time.ParseDuration(v)
			if !sawCrash {
				p.CSCrashAt = nil
				sawCrash = true
			}
			p.CSCrashAt = append(p.CSCrashAt, d)
		case "csdownfor":
			p.CSDownFor, err = time.ParseDuration(v)
		case "stallat":
			p.StallAt, err = time.ParseDuration(v)
		case "stallfor":
			p.StallFor, err = time.ParseDuration(v)
		case "stalldelay":
			p.StallDelay, err = time.ParseDuration(v)
		case "sink":
			p.Sink = v
		case "sinkdownat":
			p.SinkDownAt, err = time.ParseDuration(v)
		case "sinkdownfor":
			p.SinkDownFor, err = time.ParseDuration(v)
		case "sinkcrash":
			var d time.Duration
			d, err = time.ParseDuration(v)
			if !sawSinkCrash {
				p.SinkCrashAt = nil
				sawSinkCrash = true
			}
			p.SinkCrashAt = append(p.SinkCrashAt, d)
		case "sinkcrashtarget":
			p.SinkCrashTarget = v
		case "sinkcrashfor":
			p.SinkCrashFor, err = time.ParseDuration(v)
		case "ctlhang":
			var d time.Duration
			d, err = time.ParseDuration(v)
			if !sawCtlHang {
				p.CtlHangAt = nil
				sawCtlHang = true
			}
			p.CtlHangAt = append(p.CtlHangAt, d)
		case "ctlhangfor":
			p.CtlHangFor, err = time.ParseDuration(v)
		case "recyclerwedge":
			var d time.Duration
			d, err = time.ParseDuration(v)
			if !sawWedge {
				p.RecyclerWedgeAt = nil
				sawWedge = true
			}
			p.RecyclerWedgeAt = append(p.RecyclerWedgeAt, d)
		case "recyclerwedgefor":
			p.RecyclerWedgeFor, err = time.ParseDuration(v)
		case "nbhang":
			p.ReimageNetbootHang, err = strconv.ParseFloat(v, 64)
		case "xferstall":
			p.ReimageXferStall, err = strconv.ParseFloat(v, 64)
		case "xfercorrupt":
			p.ReimageXferCorrupt, err = strconv.ParseFloat(v, 64)
		case "powerstick":
			p.ReimagePowerStick, err = strconv.ParseFloat(v, 64)
		default:
			return Profile{}, fmt.Errorf("chaos: unknown key %q", k)
		}
		if err != nil {
			return Profile{}, fmt.Errorf("chaos: bad value for %q: %v", k, err)
		}
	}
	if p.Name == "" {
		p.Name = "custom"
	}
	p.applyDefaults()
	return p, nil
}

func (p *Profile) applyDefaults() {
	if len(p.CSCrashAt) > 0 && p.CSDownFor <= 0 {
		p.CSDownFor = 30 * time.Second
	}
	if p.FlapEvery > 0 && p.FlapDown <= 0 {
		p.FlapDown = 10 * time.Second
	}
	if p.StallFor > 0 && p.StallDelay <= 0 {
		p.StallDelay = 5 * time.Second
	}
	if p.SinkDownFor > 0 && p.Sink == "" {
		p.Sink = "smtpsink"
	}
	if len(p.SinkCrashAt) > 0 {
		if p.SinkCrashTarget == "" {
			p.SinkCrashTarget = "smtpsink"
		}
		if p.SinkCrashFor <= 0 {
			p.SinkCrashFor = time.Minute
		}
	}
	if len(p.CtlHangAt) > 0 && p.CtlHangFor <= 0 {
		p.CtlHangFor = time.Minute
	}
	if len(p.RecyclerWedgeAt) > 0 && p.RecyclerWedgeFor <= 0 {
		p.RecyclerWedgeFor = time.Minute
	}
}

// String renders the profile compactly for run summaries.
func (p Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: loss=%.3f reorder=%.3f dup=%.3f corrupt=%.4f jitter=%v",
		p.Name, p.Loss, p.Reorder, p.Dup, p.Corrupt, p.Jitter)
	if p.FlapEvery > 0 {
		fmt.Fprintf(&b, " flap=%v/%v", p.FlapEvery, p.FlapDown)
	}
	if len(p.CSCrashAt) > 0 {
		fmt.Fprintf(&b, " cscrash=%v down=%v", p.CSCrashAt, p.CSDownFor)
	}
	if p.StallFor > 0 {
		fmt.Fprintf(&b, " stall=%v+%v delay=%v", p.StallAt, p.StallFor, p.StallDelay)
	}
	if p.SinkDownFor > 0 {
		fmt.Fprintf(&b, " sink=%s down=%v+%v", p.Sink, p.SinkDownAt, p.SinkDownFor)
	}
	if len(p.SinkCrashAt) > 0 {
		fmt.Fprintf(&b, " sinkcrash=%s@%v for=%v", p.SinkCrashTarget, p.SinkCrashAt, p.SinkCrashFor)
	}
	if len(p.CtlHangAt) > 0 {
		fmt.Fprintf(&b, " ctlhang=%v for=%v", p.CtlHangAt, p.CtlHangFor)
	}
	if len(p.RecyclerWedgeAt) > 0 {
		fmt.Fprintf(&b, " recyclerwedge=%v rearm=%v", p.RecyclerWedgeAt, p.RecyclerWedgeFor)
	}
	if p.ReimageFaultsActive() {
		fmt.Fprintf(&b, " reimage=%.2f/%.2f/%.2f/%.2f",
			p.ReimageNetbootHang, p.ReimageXferStall, p.ReimageXferCorrupt, p.ReimagePowerStick)
	}
	return b.String()
}
