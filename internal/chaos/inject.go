package chaos

import (
	"sort"
	"time"

	"gq/internal/farm"
	"gq/internal/netsim"
	"gq/internal/obs"
	"gq/internal/rawiron"
	"gq/internal/sim"
)

// Journalled fault events (all under obs.EvChaosPrefix). The chaos scope
// has its own flight-recorder ring, so every injected fault is provably
// captured alongside the subsystems' own event streams.
const (
	EvLinkDown     = obs.EvChaosPrefix + "link_down"
	EvLinkUp       = obs.EvChaosPrefix + "link_up"
	EvCSCrash      = obs.EvChaosPrefix + "cs_crash"
	EvCSRestart    = obs.EvChaosPrefix + "cs_restart"
	EvVerdictStall = obs.EvChaosPrefix + "verdict_stall"
	EvSinkDown     = obs.EvChaosPrefix + "sink_down"
	EvSinkUp       = obs.EvChaosPrefix + "sink_up"
	EvSinkCrash    = obs.EvChaosPrefix + "sink_crash"
	EvSinkRestore  = obs.EvChaosPrefix + "sink_restore"
	EvCtlHang      = obs.EvChaosPrefix + "ctl_hang"
	EvCtlRestore   = obs.EvChaosPrefix + "ctl_restore"
	EvRecWedge     = obs.EvChaosPrefix + "recycler_wedge"
	EvRecRearm     = obs.EvChaosPrefix + "recycler_rearm"
)

// ScopeFor is the journal scope fault events for one subfarm are emitted
// under ("chaos.<subfarm>"). Per-subfarm scopes keep multi-subfarm chaos
// runs from colliding: each injector journals into its own subfarm's
// domain, with its own flight-recorder ring.
func ScopeFor(subfarm string) string { return "chaos." + subfarm }

// link is one impaired inmate access link: the host-side NIC and the
// switch-side port it connects to.
type link struct {
	vlan    uint16
	nic, sw *netsim.Port
}

// Injector applies a Profile to a subfarm and owns the scheduled faults.
type Injector struct {
	sf *farm.Subfarm
	p  Profile
	s  *sim.Simulator
	sc *obs.Scope

	links   []link
	tickers []*sim.Ticker

	// starts are pending fault-start events (cancelled by Stop); restores
	// are pending fault-end events (run immediately by Stop so nothing is
	// left broken). Keys are allocation order, keeping Stop deterministic.
	starts     []*sim.Event
	restores   map[int]*restore
	nextRestID int

	stopped bool

	// rawIron, when non-nil, has fault hooks installed that Stop clears.
	rawIron *rawiron.Controller

	// Crashes counts containment-server crash injections performed.
	Crashes int
}

type restore struct {
	ev *sim.Event
	fn func()
}

// Apply installs the profile's faults on sf. Impairment covers the inmate
// access links present at call time — apply after the experiment's inmates
// are added. The returned Injector keeps injecting until Stop.
func Apply(sf *farm.Subfarm, p Profile) *Injector {
	// Everything the injector touches — links, service hosts, containment
	// servers — lives in the subfarm's simulation domain, so faults are
	// scheduled and journalled there, under the subfarm's own chaos scope.
	inj := &Injector{
		sf: sf, p: p, s: sf.Sim,
		sc:       sf.Sim.Obs().Scope(ScopeFor(sf.Name), obs.DefaultRingSize),
		restores: make(map[int]*restore),
	}

	// Snapshot inmate links in VLAN order: map iteration must not leak
	// into fault selection or the run stops replaying identically.
	vlans := make([]int, 0, len(sf.Inmates))
	for vlan := range sf.Inmates {
		vlans = append(vlans, int(vlan))
	}
	sort.Ints(vlans)
	im := netsim.Impairment{
		Loss: p.Loss, Jitter: p.Jitter, Reorder: p.Reorder,
		Dup: p.Dup, Corrupt: p.Corrupt,
	}
	for _, v := range vlans {
		nic := sf.Inmates[uint16(v)].Host.NIC()
		l := link{vlan: uint16(v), nic: nic, sw: nic.Peer()}
		if l.sw == nil {
			continue
		}
		l.nic.Impair(im)
		l.sw.Impair(im)
		inj.links = append(inj.links, l)
	}

	if p.FlapEvery > 0 && len(inj.links) > 0 {
		inj.tickers = append(inj.tickers, inj.s.Every(p.FlapEvery, inj.flapOnce))
	}
	for i, at := range p.CSCrashAt {
		idx := i % len(sf.CSCluster)
		inj.start(at, func() { inj.crashCS(idx) })
	}
	if p.StallFor > 0 && p.StallDelay > 0 {
		inj.start(p.StallAt, inj.startStall)
	}
	if p.SinkDownFor > 0 {
		if h := sf.SvcHosts[p.Sink]; h != nil {
			inj.start(p.SinkDownAt, func() { inj.sinkDown(p.Sink) })
		}
	}
	if h := sf.SvcHosts[p.SinkCrashTarget]; h != nil {
		for _, at := range p.SinkCrashAt {
			inj.start(at, func() { inj.crashSink(p.SinkCrashTarget) })
		}
	}
	for _, at := range p.CtlHangAt {
		inj.start(at, inj.hangController)
	}
	for _, at := range p.RecyclerWedgeAt {
		inj.start(at, inj.wedgeRecycler)
	}
	if p.ReimageFaultsActive() && sf.RawIron != nil {
		// Raw-iron hardware faults install directly on the controller:
		// it draws per-opportunity fault decisions from its own domain's
		// RNG and journals them under each machine's scope.
		inj.rawIron = sf.RawIron
		inj.rawIron.InjectFaults(rawiron.Faults{
			NetbootHang:     p.ReimageNetbootHang,
			TransferStall:   p.ReimageXferStall,
			TransferCorrupt: p.ReimageXferCorrupt,
			PowerStick:      p.ReimagePowerStick,
		})
	}
	return inj
}

// start schedules a fault beginning; cancelled wholesale by Stop.
func (inj *Injector) start(d time.Duration, fn func()) {
	inj.starts = append(inj.starts, inj.s.Schedule(d, func() {
		if !inj.stopped {
			fn()
		}
	}))
}

// scheduleRestore schedules the end of a fault. If the injector is stopped
// first, Stop runs the restore immediately so the farm is left healthy.
func (inj *Injector) scheduleRestore(d time.Duration, fn func()) {
	id := inj.nextRestID
	inj.nextRestID++
	r := &restore{fn: fn}
	r.ev = inj.s.Schedule(d, func() {
		delete(inj.restores, id)
		fn()
	})
	inj.restores[id] = r
}

// flapOnce takes one randomly-selected inmate link down for FlapDown.
func (inj *Injector) flapOnce() {
	if inj.stopped {
		return
	}
	l := inj.links[inj.s.Rand().Intn(len(inj.links))]
	if !l.sw.Up() || !l.nic.Up() {
		return // already down (overlapping flap); skip this round
	}
	l.sw.SetUp(false)
	l.nic.SetUp(false)
	inj.sc.Emit(obs.Event{Type: EvLinkDown, VLAN: l.vlan})
	inj.scheduleRestore(inj.p.FlapDown, func() {
		l.sw.SetUp(true)
		l.nic.SetUp(true)
		inj.sc.Emit(obs.Event{Type: EvLinkUp, VLAN: l.vlan})
	})
}

// crashCS shuts a containment-server cluster member down mid-session —
// destroying its connections and listeners — and restarts it CSDownFor
// later with identical addressing and freshly bound listeners.
func (inj *Injector) crashCS(idx int) {
	srv := inj.sf.CSCluster[idx]
	h := srv.Host
	addr, bits, gw := h.Addr(), h.PrefixBits(), h.Gateway()
	inj.Crashes++
	inj.sc.Emit(obs.Event{Type: EvCSCrash, N: uint64(idx), SrcIP: uint32(addr)})
	h.Shutdown()
	if inj.sf.Supervisor != nil {
		// A supervised subfarm owns its own recovery: the injector only
		// breaks things, and the supervisor's health tracking + backed-off
		// restart brings the server back. Scheduling the chaos restore too
		// would race it with a double restart.
		return
	}
	inj.scheduleRestore(inj.p.CSDownFor, func() {
		h.Reset()
		h.ConfigureStatic(addr, bits, gw)
		if err := srv.Rebind(); err != nil {
			panic("chaos: containment server rebind failed: " + err.Error())
		}
		h.AnnounceARP()
		inj.sc.Emit(obs.Event{Type: EvCSRestart, N: uint64(idx), SrcIP: uint32(addr)})
	})
}

// startStall makes every cluster member answer verdicts late for StallFor.
func (inj *Injector) startStall() {
	for _, srv := range inj.sf.CSCluster {
		srv.SetVerdictStall(inj.p.StallDelay)
	}
	inj.sc.Emit(obs.Event{Type: EvVerdictStall, N: uint64(inj.p.StallDelay.Milliseconds()), Detail: "begin"})
	inj.scheduleRestore(inj.p.StallFor, func() {
		for _, srv := range inj.sf.CSCluster {
			srv.SetVerdictStall(0)
		}
		inj.sc.Emit(obs.Event{Type: EvVerdictStall, Detail: "end"})
	})
}

// sinkDown pulls the named service host's NIC for SinkDownFor.
func (inj *Injector) sinkDown(name string) {
	h := inj.sf.SvcHosts[name]
	h.NIC().SetUp(false)
	if p := h.NIC().Peer(); p != nil {
		p.SetUp(false)
	}
	inj.sc.Emit(obs.Event{Type: EvSinkDown, SrcIP: uint32(h.Addr()), Detail: "outage"})
	inj.scheduleRestore(inj.p.SinkDownFor, func() {
		h.NIC().SetUp(true)
		if p := h.NIC().Peer(); p != nil {
			p.SetUp(true)
		}
		inj.sc.Emit(obs.Event{Type: EvSinkUp, SrcIP: uint32(h.Addr())})
	})
}

// crashSink shuts the named sink service host down mid-session —
// destroying its listeners and live connections, a harder fault than
// sinkDown's NIC pull. On a supervised subfarm the injector stops there:
// the subfarm node's TCP probes detect the dead listener and its
// breaker-guarded restart rebinds it, so recovery (and its journal trail)
// belongs to the supervisor, not chaos. Unsupervised subfarms get a
// chaos-owned restore SinkCrashFor later.
func (inj *Injector) crashSink(name string) {
	h := inj.sf.SvcHosts[name]
	if h == nil {
		return
	}
	addr, bits, gw := h.Addr(), h.PrefixBits(), h.Gateway()
	inj.sc.Emit(obs.Event{Type: EvSinkCrash, SrcIP: uint32(addr), Detail: name})
	h.Shutdown()
	if inj.sf.Supervisor != nil {
		return
	}
	inj.scheduleRestore(inj.p.SinkCrashFor, func() {
		h.Reset()
		h.ConfigureStatic(addr, bits, gw)
		if err := inj.sf.RebindSink(name); err != nil {
			panic("chaos: sink rebind failed: " + err.Error())
		}
		h.AnnounceARP()
		inj.sc.Emit(obs.Event{Type: EvSinkRestore, SrcIP: uint32(addr), Detail: name})
	})
}

// hangController silences the farm-wide inmate controller: its TCP
// listener keeps accepting and handshakes still complete, but the
// application swallows every line — exactly the failure mode a TCP-level
// liveness probe cannot see and the supervisor's app-level PING can. On a
// supervised subfarm recovery is the tree's: probes miss, the root's
// restart ladder power-cycles the controller host (Rebind clears the
// hang). Unsupervised, chaos unhangs it CtlHangFor later.
func (inj *Injector) hangController() {
	ctl := inj.sf.Farm.Controller
	if ctl == nil {
		return
	}
	inj.sc.Emit(obs.Event{Type: EvCtlHang, Detail: "begin"})
	inj.postRoot(func() { ctl.SetHung(true) })
	if inj.sf.Supervisor != nil {
		return
	}
	inj.scheduleRestore(inj.p.CtlHangFor, func() {
		inj.postRoot(func() { ctl.SetHung(false) })
		inj.sc.Emit(obs.Event{Type: EvCtlRestore})
	})
}

// wedgeRecycler cancels every armed timer in the subfarm's recycling
// pipeline. With a supervision tree the root's progress watch notices the
// stall past its budget and re-arms the pipeline (journalling the rearm);
// without one chaos re-arms it RecyclerWedgeFor later.
func (inj *Injector) wedgeRecycler() {
	r := inj.sf.Recycler
	if r == nil {
		return
	}
	n := r.Wedge()
	inj.sc.Emit(obs.Event{Type: EvRecWedge, N: uint64(n)})
	if inj.sf.Farm.Tree != nil {
		return
	}
	inj.scheduleRestore(inj.p.RecyclerWedgeFor, func() {
		r.Rearm()
		inj.sc.Emit(obs.Event{Type: EvRecRearm})
	})
}

// postRoot runs fn on the farm root's domain goroutine (where the
// controller lives), immediately when the subfarm shares that domain.
func (inj *Injector) postRoot(fn func()) {
	f := inj.sf.Farm
	if inj.s == f.Sim {
		fn()
		return
	}
	inj.s.PostTo(f.Sim, 0, fn)
}

// Stop ends injection: future faults are cancelled, in-flight faults are
// restored immediately (links up, stalls cleared, crashed servers brought
// back), and link impairment is removed. The farm can then drain cleanly.
func (inj *Injector) Stop() {
	if inj.stopped {
		return
	}
	inj.stopped = true
	for _, t := range inj.tickers {
		t.Stop()
	}
	for _, ev := range inj.starts {
		ev.Cancel()
	}
	// Run outstanding restores in scheduling order for determinism.
	ids := make([]int, 0, len(inj.restores))
	for id := range inj.restores {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		r := inj.restores[id]
		r.ev.Cancel()
		r.fn()
		delete(inj.restores, id)
	}
	for _, l := range inj.links {
		l.nic.Impair(netsim.Impairment{})
		l.sw.Impair(netsim.Impairment{})
		l.nic.SetUp(true)
		l.sw.SetUp(true)
	}
	for _, srv := range inj.sf.CSCluster {
		srv.SetVerdictStall(0)
	}
	if inj.rawIron != nil {
		// In-flight faulted stages still fail via their armed deadlines,
		// but every retry from here on runs clean.
		inj.rawIron.ClearFaults()
	}
}
