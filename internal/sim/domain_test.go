package sim

import (
	"fmt"
	"testing"
	"time"
)

// pingPongTrace runs a 3-domain ping-pong workload under the given worker
// count and returns a deterministic trace of every callback execution.
func pingPongTrace(t *testing.T, workers int) []string {
	t.Helper()
	root := New(42)
	c := NewCoordinator(root, 10*time.Millisecond, workers)
	a, b := c.NewDomain(), c.NewDomain()

	// Per-shard traces: each is appended only from its own domain's
	// goroutine, so recording is race-free and the per-shard order is the
	// deterministic quantity to compare.
	var shardTrace [3][]string
	rec := func(d *Simulator, tag string) {
		shardTrace[d.Shard()] = append(shardTrace[d.Shard()],
			fmt.Sprintf("%v shard%d %s", d.Now(), d.Shard(), tag))
	}

	// Each domain runs local chatter and bounces messages to the others.
	var bounce func(from, to *Simulator, hops int)
	bounce = func(from, to *Simulator, hops int) {
		if hops == 0 {
			return
		}
		from.PostTo(to, 10*time.Millisecond, func() {
			rec(to, fmt.Sprintf("hop%d", hops))
			// Domain-local follow-up work plus RNG consumption.
			to.Schedule(time.Duration(to.Rand().Intn(1000))*time.Microsecond, func() {
				rec(to, "local")
			})
			bounce(to, from, hops-1)
		})
	}
	root.Schedule(0, func() {
		rec(root, "start")
		bounce(root, a, 6)
		bounce(root, b, 6)
	})
	a.Schedule(5*time.Millisecond, func() { rec(a, "a-timer") })
	b.Every(17*time.Millisecond, func() { rec(b, "b-tick") })

	c.RunUntil(200 * time.Millisecond)

	if got := c.Now(); got != 200*time.Millisecond {
		t.Fatalf("root clock = %v, want 200ms", got)
	}
	for _, d := range []*Simulator{root, a, b} {
		if d.Now() != 200*time.Millisecond {
			t.Fatalf("shard %d clock = %v, want 200ms", d.Shard(), d.Now())
		}
	}
	var trace []string
	for _, st := range shardTrace {
		trace = append(trace, st...)
	}
	return trace
}

// TestCoordinatorDeterministicAcrossWorkers is the core determinism
// property: the same seed must produce an identical execution trace no
// matter how many workers run the domains.
func TestCoordinatorDeterministicAcrossWorkers(t *testing.T) {
	base := pingPongTrace(t, 1)
	if len(base) < 20 {
		t.Fatalf("trace too short to be meaningful: %d entries", len(base))
	}
	for _, workers := range []int{2, 4, 8} {
		got := pingPongTrace(t, workers)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: trace length %d != %d", workers, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: trace diverges at %d: %q != %q", workers, i, got[i], base[i])
			}
		}
	}
}

// TestPostToClampsToLookahead checks the conservative-synchronization
// invariant: cross-domain effects cannot arrive sooner than the lookahead.
func TestPostToClampsToLookahead(t *testing.T) {
	root := New(1)
	c := NewCoordinator(root, 20*time.Millisecond, 2)
	d := c.NewDomain()

	var arrived time.Duration
	root.Schedule(0, func() {
		root.PostTo(d, 0, func() { arrived = d.Now() })
	})
	c.RunUntil(100 * time.Millisecond)
	if arrived != 20*time.Millisecond {
		t.Fatalf("zero-delay cross message arrived at %v, want 20ms (lookahead)", arrived)
	}

	// Same-simulator PostTo is plain Schedule: no clamp.
	var local time.Duration
	root.Schedule(0, func() {
		root.PostTo(root, time.Millisecond, func() { local = root.Now() })
	})
	c.RunFor(100 * time.Millisecond)
	if local != 101*time.Millisecond {
		t.Fatalf("local PostTo arrived at %v, want 101ms", local)
	}
}

// TestPostToExactLookaheadBoundary pins the clamp edge: a delay of
// exactly the lookahead is already legal wire latency and must pass
// through unmodified, and anything longer must not be rounded down.
func TestPostToExactLookaheadBoundary(t *testing.T) {
	root := New(5)
	c := NewCoordinator(root, 20*time.Millisecond, 2)
	d := c.NewDomain()

	var at, over time.Duration
	root.Schedule(10*time.Millisecond, func() {
		root.PostTo(d, 20*time.Millisecond, func() { at = d.Now() })
		root.PostTo(d, 20*time.Millisecond+time.Microsecond, func() { over = d.Now() })
	})
	c.RunUntil(100 * time.Millisecond)
	if at != 30*time.Millisecond {
		t.Fatalf("exact-lookahead post arrived at %v, want 30ms", at)
	}
	if want := 30*time.Millisecond + time.Microsecond; over != want {
		t.Fatalf("lookahead+1us post arrived at %v, want %v", over, want)
	}
}

// TestWindowCapsSelfInducedFuture guards the one hazard of demand-driven
// windows: a busy domain whose window was widened by an idle peer sends a
// message, the recipient reacts immediately, and the reply must still
// arrive at its proper virtual time — the sender cannot have run past it.
func TestWindowCapsSelfInducedFuture(t *testing.T) {
	root := New(11)
	c := NewCoordinator(root, 10*time.Millisecond, 1)
	d := c.NewDomain()

	var replyAt time.Duration
	var beforeReply, afterReply int
	root.Schedule(0, func() {
		root.PostTo(d, 0, func() { // arrives at 10ms
			d.PostTo(root, 0, func() { replyAt = root.Now() }) // due back at 20ms
		})
	})
	// Dense root-local chatter: without the winEnd cap the idle-granted
	// window would let the root burn through all of it before the reply
	// can be delivered, executing the 20ms reply late.
	for i := 1; i <= 50; i++ {
		at := time.Duration(i) * time.Millisecond
		root.Schedule(at, func() {
			if replyAt == 0 {
				beforeReply++
			} else {
				afterReply++
			}
		})
	}
	c.RunUntil(100 * time.Millisecond)
	if replyAt != 20*time.Millisecond {
		t.Fatalf("induced reply executed at %v, want exactly 20ms", replyAt)
	}
	if beforeReply != 20 || afterReply != 30 {
		t.Fatalf("local events split %d before / %d after the reply, want 20/30",
			beforeReply, afterReply)
	}
}

// TestSparseWorkloadElidesBarriers: an idle domain grants an unbounded
// window (the elided null message), so a single busy domain runs its whole
// span in one synchronization round instead of one round per lookahead.
func TestSparseWorkloadElidesBarriers(t *testing.T) {
	root := New(17)
	c := NewCoordinator(root, 10*time.Millisecond, 2)
	c.NewDomain() // idle peer

	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 100 {
			root.Schedule(time.Millisecond, tick)
		}
	}
	root.Schedule(0, tick)
	c.RunUntil(time.Second)
	if n != 100 {
		t.Fatalf("ran %d ticks, want 100", n)
	}
	if rounds, _ := c.Stats(); rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (idle domain must elide its barriers)", rounds)
	}
}

// TestCrossPostStraddlesHalt: a cross-domain message posted before a halt
// survives the freeze undelivered and arrives at its original virtual time
// after Resume — the pending queue is part of the paused world state.
func TestCrossPostStraddlesHalt(t *testing.T) {
	root := New(13)
	c := NewCoordinator(root, 10*time.Millisecond, 2)
	d := c.NewDomain()

	var arrived time.Duration
	root.Schedule(0, func() {
		root.PostTo(d, 30*time.Millisecond, func() { arrived = d.Now() })
	})
	root.Schedule(5*time.Millisecond, func() { root.Halt() })
	c.RunUntil(100 * time.Millisecond)
	if arrived != 0 {
		t.Fatalf("message delivered across a halt at %v", arrived)
	}
	if !c.Halted() {
		t.Fatal("coordinator should report halted")
	}

	root.Resume()
	c.RunUntil(100 * time.Millisecond)
	if arrived != 30*time.Millisecond {
		t.Fatalf("post-resume delivery at %v, want 30ms", arrived)
	}
	if got := d.Now(); got != 100*time.Millisecond {
		t.Fatalf("domain clock = %v, want 100ms", got)
	}
}

// TestCoordinatorPostRunsInDomain: Coordinator.Post hands a control action
// from an alien goroutine into the owning domain's event loop; it executes
// at the domain's clock and may use PostTo like any other event.
func TestCoordinatorPostRunsInDomain(t *testing.T) {
	root := New(19)
	c := NewCoordinator(root, 10*time.Millisecond, 2)
	d := c.NewDomain()
	d.Every(time.Millisecond, func() {}) // keep the domain busy

	c.RunUntil(50 * time.Millisecond)
	var ranAt, echoAt time.Duration
	c.Post(d, func() {
		ranAt = d.Now()
		d.PostTo(root, 0, func() { echoAt = root.Now() })
	})
	c.RunUntil(100 * time.Millisecond)
	if ranAt != 50*time.Millisecond {
		t.Fatalf("posted action ran at %v, want 50ms (the quiesce clock)", ranAt)
	}
	if echoAt != 60*time.Millisecond {
		t.Fatalf("cross-domain echo at %v, want 60ms (one lookahead later)", echoAt)
	}
}

// TestCoordinatorHaltStopsRun: halting any domain freezes the whole
// coordinated run at that window instead of jumping clocks to deadline.
func TestCoordinatorHaltStopsRun(t *testing.T) {
	root := New(7)
	c := NewCoordinator(root, 10*time.Millisecond, 4)
	d := c.NewDomain()

	fired := 0
	d.Schedule(30*time.Millisecond, func() {
		fired++
		d.Halt()
	})
	d.Schedule(500*time.Millisecond, func() { fired++ })
	c.RunUntil(time.Second)

	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (event after halt must not run)", fired)
	}
	if !c.Halted() {
		t.Fatal("coordinator should report halted")
	}
	if root.Now() >= time.Second {
		t.Fatalf("halt did not freeze root clock: %v", root.Now())
	}

	// Resume lets a later run proceed and deliver the remaining event.
	d.Resume()
	c.RunUntil(time.Second)
	if fired != 2 {
		t.Fatalf("after Resume fired = %d, want 2", fired)
	}
}

// TestCrossFloorAndSameWorld covers the topology-validation helpers used
// by netsim.Connect.
func TestCrossFloorAndSameWorld(t *testing.T) {
	root := New(3)
	c := NewCoordinator(root, 15*time.Millisecond, 2)
	d := c.NewDomain()
	other := New(3)

	if !root.SameWorld(d) || !d.SameWorld(root) {
		t.Fatal("domains of one coordinator must share a world")
	}
	if root.SameWorld(other) {
		t.Fatal("unrelated simulators must not share a world")
	}
	if got := root.CrossFloor(d); got != 15*time.Millisecond {
		t.Fatalf("CrossFloor = %v, want 15ms", got)
	}
	if got := root.CrossFloor(root); got != 0 {
		t.Fatalf("CrossFloor(self) = %v, want 0", got)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("PostTo to an unrelated simulator must panic")
		}
	}()
	root.PostTo(other, 0, func() {})
}

// TestDomainRNGStreamsIndependent: each domain's RNG is seeded from
// (root seed, shard id) and never consumed by another domain.
func TestDomainRNGStreamsIndependent(t *testing.T) {
	draw := func(workers int) [3][]int {
		root := New(99)
		c := NewCoordinator(root, 10*time.Millisecond, workers)
		a, b := c.NewDomain(), c.NewDomain()
		var out [3][]int
		for i, d := range []*Simulator{root, a, b} {
			i, d := i, d
			d.Every(7*time.Millisecond, func() {
				out[i] = append(out[i], d.Rand().Intn(1<<20))
			})
		}
		c.RunUntil(100 * time.Millisecond)
		return out
	}
	one, four := draw(1), draw(4)
	for i := range one {
		if len(one[i]) == 0 {
			t.Fatalf("shard %d drew nothing", i)
		}
		if fmt.Sprint(one[i]) != fmt.Sprint(four[i]) {
			t.Fatalf("shard %d RNG stream differs across worker counts:\n%v\n%v", i, one[i], four[i])
		}
	}
	if fmt.Sprint(one[1]) == fmt.Sprint(one[2]) {
		t.Fatal("distinct shards drew identical RNG streams")
	}
}
