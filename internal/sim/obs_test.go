package sim

import (
	"testing"
	"time"

	"gq/internal/obs"
)

// TestObsClockTracksVirtualTime checks that snapshots taken off the
// simulator goroutine read the virtual clock, not wall time.
func TestObsClockTracksVirtualTime(t *testing.T) {
	s := New(1)
	s.Schedule(5*time.Second, func() {})
	s.Run()
	if got := s.Obs().Snapshot().SimTimeNS; got != 5*time.Second {
		t.Fatalf("snapshot sim time %v want 5s", got)
	}
}

// TestConcurrentSnapshotDuringRun drives a simulation whose events bump
// counters and journal entries while another goroutine repeatedly calls
// Snapshot(). Run under -race this verifies the advertised contract that
// snapshots are safe against a live simulation.
func TestConcurrentSnapshotDuringRun(t *testing.T) {
	s := New(1)
	c := s.Obs().Reg.Counter("test.ticks")
	g := s.Obs().Reg.Gauge("test.level")
	h := s.Obs().Reg.Histogram("test.lat_us", 10, 100, 1000)
	sc := s.Obs().Journal.Scope("test", 32)
	tick := s.Every(time.Millisecond, func() {
		c.Inc()
		g.Add(1)
		h.Observe(int64(c.Value() % 500))
		sc.Emit(obs.Event{Type: obs.EvFlowCreated, N: c.Value()})
	})
	defer tick.Stop()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			snap := s.Obs().Snapshot()
			if snap.Counter("test.ticks") > 0 && snap.SimTimeNS < 0 {
				t.Error("negative sim time")
				return
			}
		}
	}()
	// Keep the virtual clock moving until the snapshotter finishes so the
	// two genuinely overlap.
	for {
		select {
		case <-done:
			if c.Value() == 0 {
				t.Fatal("no ticks fired")
			}
			return
		default:
			s.RunFor(10 * time.Millisecond)
		}
	}
}
