package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(3*time.Second, func() { got = append(got, 3) })
	s.Schedule(1*time.Second, func() { got = append(got, 1) })
	s.Schedule(2*time.Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("simultaneous events ran out of order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.Schedule(time.Second, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestFiredEventIsNotCancelled(t *testing.T) {
	s := New(1)
	ran := false
	e := s.Schedule(time.Second, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("event never ran")
	}
	if e.Cancelled() {
		t.Fatal("Cancelled() = true for an event that fired")
	}
	if !e.Fired() {
		t.Fatal("Fired() = false for an event that fired")
	}
	// Cancelling after the fact stays a no-op and must not flip Cancelled.
	e.Cancel()
	if e.Cancelled() {
		t.Fatal("Cancel after firing reported the event as cancelled")
	}
}

func TestRunUntilHaltFreezesClock(t *testing.T) {
	s := New(1)
	s.Schedule(time.Second, func() { s.Halt() })
	s.RunUntil(time.Minute)
	if s.Now() != time.Second {
		t.Fatalf("Now = %v after Halt, want clock frozen at 1s", s.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var at []time.Duration
	s.Schedule(time.Second, func() {
		at = append(at, s.Now())
		s.Schedule(time.Second, func() { at = append(at, s.Now()) })
	})
	s.Run()
	if len(at) != 2 || at[0] != time.Second || at[1] != 2*time.Second {
		t.Fatalf("nested schedule times = %v", at)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	count := 0
	s.Every(time.Second, func() { count++ })
	s.RunUntil(5500 * time.Millisecond)
	if count != 5 {
		t.Fatalf("ticker fired %d times, want 5", count)
	}
	if s.Now() != 5500*time.Millisecond {
		t.Fatalf("Now = %v after RunUntil", s.Now())
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	s := New(1)
	s.RunFor(time.Minute)
	if s.Now() != time.Minute {
		t.Fatalf("Now = %v, want 1m", s.Now())
	}
}

func TestTickerStop(t *testing.T) {
	s := New(1)
	count := 0
	var tk *Ticker
	tk = s.Every(time.Second, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	s.RunFor(time.Minute)
	if count != 3 {
		t.Fatalf("ticker fired %d times after Stop, want 3", count)
	}
}

func TestHalt(t *testing.T) {
	s := New(1)
	count := 0
	s.Schedule(time.Second, func() { count++; s.Halt() })
	s.Schedule(2*time.Second, func() { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("events after Halt ran: count=%d", count)
	}
}

// TestResumeAfterHalt: Halt is sticky but not terminal — Resume clears it
// with the queue intact, so a farm halted by a trigger can be driven
// further (inspect state, then continue the run).
func TestResumeAfterHalt(t *testing.T) {
	s := New(1)
	count := 0
	s.Schedule(time.Second, func() { count++; s.Halt() })
	s.Schedule(2*time.Second, func() { count++ })
	s.RunFor(time.Minute)
	if count != 1 || !s.Halted() {
		t.Fatalf("after halt: count=%d halted=%v, want 1/true", count, s.Halted())
	}
	if s.Now() != time.Second {
		t.Fatalf("halt clock = %v, want 1s", s.Now())
	}

	// While halted, nothing runs — Run loops are inert.
	s.RunFor(time.Minute)
	if count != 1 || s.Now() != time.Second {
		t.Fatalf("halted simulator advanced: count=%d now=%v", count, s.Now())
	}

	s.Resume()
	if s.Halted() {
		t.Fatal("Resume did not clear halted state")
	}
	s.RunFor(time.Minute)
	if count != 2 {
		t.Fatalf("pending event did not survive halt/resume: count=%d", count)
	}
	if s.Now() != 61*time.Second {
		t.Fatalf("clock after resume = %v, want 61s", s.Now())
	}
}

func TestScheduleAtPastClamps(t *testing.T) {
	s := New(1)
	s.RunFor(10 * time.Second)
	fired := time.Duration(-1)
	s.ScheduleAt(time.Second, func() { fired = s.Now() })
	s.Run()
	if fired != 10*time.Second {
		t.Fatalf("past event fired at %v, want clamped to 10s", fired)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		s := New(42)
		var out []int64
		for i := 0; i < 100; i++ {
			d := time.Duration(s.Rand().Intn(1000)) * time.Millisecond
			s.Schedule(d, func() { out = append(out, int64(s.Now()), s.Rand().Int63n(1e9)) })
		}
		s.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic event counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestWallClock(t *testing.T) {
	s := New(1)
	s.RunFor(90 * time.Minute)
	want := Epoch.Add(90 * time.Minute)
	if !s.WallClock().Equal(want) {
		t.Fatalf("WallClock = %v, want %v", s.WallClock(), want)
	}
}

// Property: events always fire in non-decreasing time order regardless of
// insertion order.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(7)
		var fired []time.Duration
		for _, d := range delays {
			s.Schedule(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, s.Now())
			})
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
