package sim

import (
	"fmt"
	"runtime"
	"time"
)

// This file provides the two bridges between ordinary Go goroutines and
// the single-threaded event loop, in increasing order of generality and
// decreasing order of determinism:
//
//   - Proc: a goroutine *coupled* to the simulator. At any instant either
//     the event loop runs or the proc runs, never both; control transfers
//     through an unbuffered-channel rendezvous. Park/Unpark/Sleep are
//     therefore deterministic — the proc is just a resumable coroutine
//     whose wake-ups are ordinary events — and procs work inside sharded
//     domains without disturbing byte-identical replay. This is the only
//     bridge allowed in determinism-checked topologies (chaos soak,
//     TestShardDeterminism).
//
//   - Inject + Pump: a thread-safe mailbox for *alien* goroutines the
//     simulator cannot track (stdlib net/http spawns its own). Injected
//     closures run on the loop goroutine at the current virtual time; Pump
//     drives the loop while yielding real time to the aliens so their
//     next injections can land before virtual time runs away from them.
//     Ordering depends on OS scheduling, so this bridge is NOT
//     byte-deterministic and panics on coordinated domains.
//
// DESIGN.md §3g states the rules; internal/hostnet is the consumer.

// goid returns the calling goroutine's id, parsed from the first line of
// runtime.Stack ("goroutine 123 [running]:"). Costs on the order of a
// microsecond, so it is used at facade entry points, never per event.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id int64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	if id == 0 {
		panic("sim: cannot parse goroutine id")
	}
	return id
}

// Proc is a goroutine coupled to a Simulator's event loop. Exactly one of
// {event loop, proc} executes at a time; the handoff is two unbuffered
// channels, so every switch is a synchronized rendezvous with a total
// order — which is what keeps proc-driven workloads replayable.
//
// A proc may freely use its Simulator (Schedule, Rand, Obs, hosts living
// on it) while running, because the loop is provably suspended. It gives
// up control with Park or Sleep and is resumed by Unpark from an event
// callback (or by the timer Sleep plants).
type Proc struct {
	sim  *Simulator
	name string
	gid  int64

	// resume releases the proc to run; yield returns control to the
	// resumer. Both unbuffered: each transfer is a rendezvous.
	resume chan struct{}
	yield  chan struct{}

	// parked and done are only ever accessed by whichever side holds
	// control, and every handoff is a channel synchronization, so they
	// need no further locking.
	parked bool
	done   bool
}

// Go spawns fn as a proc coupled to s and runs it until its first Park
// (or until it returns). The caller blocks for that first slice, so after
// Go returns the proc is either parked or finished — there is never a
// half-started proc racing the event loop.
func (s *Simulator) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		sim:    s,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	go func() {
		p.gid = goid()
		s.registerProc(p)
		<-p.resume
		fn(p)
		p.done = true
		s.unregisterProc(p.gid)
		p.yield <- struct{}{}
	}()
	p.resume <- struct{}{}
	<-p.yield
	return p
}

// Park suspends the proc and returns control to whoever resumed it. It
// returns when some event calls Unpark. Must only be called from the
// proc's own goroutine.
func (p *Proc) Park() {
	p.parked = true
	p.yield <- struct{}{}
	<-p.resume
}

// Unpark resumes a parked proc and blocks until it parks again or
// finishes. Call it from an event callback (or between Run calls) on the
// proc's simulator — never from another proc or an alien goroutine.
//
// Unparking a proc that is not parked panics: under the coupling
// discipline a proc is always parked when the loop runs, so a non-parked
// target means the discipline was broken somewhere else.
func (p *Proc) Unpark() {
	if p.done {
		return
	}
	if !p.parked {
		panic(fmt.Sprintf("sim: Unpark of proc %q which is not parked", p.name))
	}
	p.parked = false
	p.resume <- struct{}{}
	<-p.yield
}

// Sleep parks the proc for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	p.sim.Schedule(d, p.Unpark)
	p.Park()
}

// Name returns the label given to Go.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulator the proc is coupled to.
func (p *Proc) Sim() *Simulator { return p.sim }

// Done reports whether the proc's function has returned. Only meaningful
// while the caller holds control (i.e. from the loop side).
func (p *Proc) Done() bool { return p.done }

func (s *Simulator) registerProc(p *Proc) {
	s.procsMu.Lock()
	if s.procs == nil {
		s.procs = make(map[int64]*Proc)
	}
	s.procs[p.gid] = p
	s.procsMu.Unlock()
}

func (s *Simulator) unregisterProc(gid int64) {
	s.procsMu.Lock()
	delete(s.procs, gid)
	s.procsMu.Unlock()
}

// CallerProc returns the Proc the calling goroutine was spawned as by
// s.Go, or nil. Facade layers use it to pick the deterministic parking
// path for proc callers and the Inject path for everything else.
func (s *Simulator) CallerProc() *Proc {
	s.procsMu.RLock()
	p := s.procs[goid()]
	s.procsMu.RUnlock()
	return p
}

// beginLoop marks the calling goroutine as the one executing s's event
// loop for the duration of a Run/RunUntil/Pump call or a coordinator
// window; endLoop clears the mark.
func (s *Simulator) beginLoop() { s.loopG.Store(goid()) }
func (s *Simulator) endLoop()   { s.loopG.Store(0) }

// OnEventLoop reports whether the calling goroutine is currently
// executing s's event loop. Blocking facade operations refuse to run in
// that position: parking there would deadlock the simulation.
func (s *Simulator) OnEventLoop() bool { return s.loopG.Load() == goid() }

// Inject schedules fn to run on the simulator's loop goroutine at the
// current virtual time. It is the only Simulator entry point that is safe
// to call from an arbitrary goroutine while the simulation runs; every
// other method requires the caller to hold control of the loop.
//
// Injected closures run in FIFO order before the next event fires, but
// *when* an alien goroutine's Inject lands relative to virtual time
// depends on the OS scheduler — runs that use Inject are not
// byte-deterministic. It therefore panics on a coordinated domain, where
// byte-identical replay is the contract.
func (s *Simulator) Inject(fn func()) {
	if s.coord != nil {
		panic("sim: Inject on a coordinated domain (use a Proc; see DESIGN.md §3g)")
	}
	if fn == nil {
		panic("sim: nil injected function")
	}
	s.injectMu.Lock()
	s.injected = append(s.injected, fn)
	s.injectMu.Unlock()
	s.injectN.Store(1)
	select {
	case s.injectSig <- struct{}{}:
	default:
	}
}

// drainInjected runs all closures handed over by Inject. Called by the
// loop goroutine only.
func (s *Simulator) drainInjected() {
	for s.injectN.Load() != 0 {
		s.injectMu.Lock()
		fns := s.injected
		s.injected = nil
		s.injectN.Store(0)
		s.injectMu.Unlock()
		for _, fn := range fns {
			fn()
		}
	}
}

// Pacing constants for Pump: how long to wait for injections when the
// queue is empty, and the virtual gap beyond which Pump pauses briefly
// instead of leaping ahead (so alien goroutines — stdlib servers, HTTP
// clients — get real time to post their next operation before timers such
// as TCP retransmits fire en masse).
const (
	pumpIdleWait = time.Millisecond
	pumpBigGap   = 250 * time.Millisecond
)

// Pump drives the event loop for the benefit of detached (alien)
// goroutines, interleaving injected operations with events until stop
// reports true or virtual time would pass deadline. It returns whether
// stop was satisfied.
//
// Unlike Run/RunUntil, Pump paces itself against real time: before
// advancing the clock across a large gap it yields and briefly waits for
// injections, so an alien blocked in a facade Read gets its data before
// the retransmit timer for the same segment fires. This makes Pump
// correct for running unmodified stdlib network code, and unsuitable for
// determinism-checked experiments — see DESIGN.md §3g.
func (s *Simulator) Pump(deadline time.Duration, stop func() bool) bool {
	if stop == nil {
		panic("sim: Pump requires a stop predicate")
	}
	if s.coord != nil {
		panic("sim: Pump on a coordinated domain")
	}
	s.beginLoop()
	defer s.endLoop()
	for !s.halted {
		s.drainInjected()
		if stop() {
			return true
		}
		next, ok := s.peek()
		if !ok {
			// Nothing scheduled: the only possible progress is an
			// injection from an alien goroutine.
			select {
			case <-s.injectSig:
			case <-time.After(pumpIdleWait):
			}
			continue
		}
		if next > deadline {
			return false
		}
		if gap := next - s.now; gap > 0 {
			// Give aliens the scheduler before skipping virtual time.
			runtime.Gosched()
			if s.injectN.Load() != 0 {
				continue
			}
			if gap >= pumpBigGap {
				select {
				case <-s.injectSig:
					continue
				case <-time.After(pumpIdleWait):
				}
			}
		}
		s.Step()
	}
	return false
}
