package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements sharded simulation: a Coordinator owns a set of
// Simulators ("domains") and runs them on worker goroutines under
// conservative lookahead synchronization (classic CMB-style, organized as
// adaptive barrier windows):
//
//   - Every cross-domain effect is posted with PostTo and takes at least
//     the coordinator's lookahead of virtual time to arrive. That is the
//     physical trunk/uplink latency between a subfarm and the gateway, so
//     the clamp models wire delay, not an artificial fudge.
//   - Each round the coordinator picks T = min(next event across all
//     domains, earliest pending cross message) and lets every domain run
//     its local events in [T, T+lookahead) in parallel. Because anything
//     a domain sends cannot land before its own now + lookahead >= T +
//     lookahead, no message can arrive inside the window that produced
//     it; delivering queued messages at the window boundary is safe.
//   - Cross messages are delivered in (arrival time, source shard, source
//     sequence) order, a unique total order independent of how the
//     domains were interleaved on OS threads. Together with per-domain
//     RNG streams and per-domain journal streams this makes a sharded run
//     byte-identical for a given seed regardless of GOMAXPROCS or worker
//     count.
//
// Idle stretches cost nothing: T jumps straight to the next event, so a
// quiet farm synchronizes as rarely as a busy one synchronizes often.

// crossMsg is one scheduled cross-domain callback.
type crossMsg struct {
	at       time.Duration
	src, dst int
	seq      uint64
	fn       func()
}

// DefaultLookahead is the coordinator's default synchronization window —
// the modeled trunk latency between a subfarm and the gateway core. Large
// enough that barrier overhead is negligible against per-window event
// work, small enough that control-plane round trips (ARP retries, TCP
// handshakes with external hosts) stay well inside protocol timeouts.
const DefaultLookahead = 20 * time.Millisecond

// Coordinator runs a root Simulator plus per-shard domains in lockstep
// windows. Construct with NewCoordinator around an existing root
// Simulator, carve out domains with NewDomain while building the
// topology, then drive virtual time with RunUntil/RunFor instead of the
// root's own Run methods.
type Coordinator struct {
	root      *Simulator
	domains   []*Simulator
	lookahead time.Duration
	workers   int

	// pending holds undelivered cross-domain messages sorted by
	// (at, src, seq).
	pending []crossMsg

	// Per-round state shared with worker goroutines. Written by the
	// coordinator before workers are released each round (the channel
	// send orders the memory), read-only during the round.
	curActive []*Simulator
	curEnd    time.Duration
	curLimit  time.Duration
	nextIdx   atomic.Int64

	startCh chan struct{}
	doneCh  chan struct{}
	wg      sync.WaitGroup

	active []*Simulator // scratch, reused across rounds

	// rounds counts synchronization windows executed; windows counts
	// domain-windows run across them (windows/rounds = average parallelism
	// available, independent of how many CPUs actually ran it).
	rounds, windows uint64
}

// NewCoordinator makes root shard 0 of a coordinated simulation.
// lookahead <= 0 selects DefaultLookahead; workers <= 0 selects
// GOMAXPROCS. The root's journal is switched into buffered parallel mode:
// events from all domains are merged deterministically whenever the
// coordinator quiesces (end of each RunUntil).
func NewCoordinator(root *Simulator, lookahead time.Duration, workers int) *Coordinator {
	if root.coord != nil {
		panic("sim: simulator already coordinated")
	}
	if lookahead <= 0 {
		lookahead = DefaultLookahead
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c := &Coordinator{root: root, lookahead: lookahead, workers: workers}
	root.coord = c
	root.shard = 0
	c.domains = []*Simulator{root}
	root.obs.Journal.SetParallel()
	return c
}

// Root returns the root (shard 0) simulator.
func (c *Coordinator) Root() *Simulator { return c.root }

// Lookahead returns the synchronization window (= minimum cross-domain
// latency).
func (c *Coordinator) Lookahead() time.Duration { return c.lookahead }

// Workers returns the configured worker count.
func (c *Coordinator) Workers() int { return c.workers }

// Domains returns how many domains exist, including the root.
func (c *Coordinator) Domains() int { return len(c.domains) }

// Now returns the root domain's clock (all domains agree at every quiesce
// point).
func (c *Coordinator) Now() time.Duration { return c.root.now }

// NewDomain creates a new simulation domain. Its RNG stream is derived
// deterministically from (root seed, shard id) — golden-ratio stride so
// neighboring shards decorrelate — and its telemetry is a shard view of
// the root's: shared registry and journal, domain-local clock and event
// stream. Call during topology construction, never mid-run.
func (c *Coordinator) NewDomain() *Simulator {
	shard := len(c.domains)
	const goldenGamma = -0x61C8864680B583EB // 0x9E3779B97F4A7C15 as int64
	seed := c.root.seed + int64(shard)*goldenGamma
	d := &Simulator{
		rng:   rand.New(rand.NewSource(seed)),
		seed:  seed,
		shard: shard,
		coord: c,
	}
	d.setNow(c.root.now)
	d.obs = c.root.obs.ShardView(func() time.Duration {
		return time.Duration(d.nowShared.Load())
	})
	c.domains = append(c.domains, d)
	return d
}

// Shard returns this simulator's domain id (0 for the root or a
// standalone simulator).
func (s *Simulator) Shard() int { return s.shard }

// Coordinator returns the coordinator owning this simulator, or nil.
func (s *Simulator) Coordinator() *Coordinator { return s.coord }

// SameWorld reports whether s and o can exchange events: either the same
// simulator, or two domains of the same coordinator.
func (s *Simulator) SameWorld(o *Simulator) bool {
	return s == o || (s.coord != nil && s.coord == o.coord)
}

// CrossFloor returns the minimum virtual latency for effects travelling
// from s to o: zero within a domain, the coordinator's lookahead across
// domains.
func (s *Simulator) CrossFloor(o *Simulator) time.Duration {
	if s == o || s.coord == nil || s.coord != o.coord {
		return 0
	}
	return s.coord.lookahead
}

// PostTo schedules fn on dst after delay d of virtual time. Within one
// simulator it is exactly Schedule. Across domains the delay is clamped
// up to the coordinator's lookahead (the modeled trunk latency) and the
// callback is delivered through the coordinator's deterministic merge.
// Panics if the simulators do not share a coordinator.
func (s *Simulator) PostTo(dst *Simulator, d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	if dst == s {
		s.Schedule(d, fn)
		return
	}
	c := s.coord
	if c == nil || dst.coord != c {
		panic("sim: PostTo between unrelated simulators")
	}
	if d < c.lookahead {
		d = c.lookahead
	}
	s.outbox = append(s.outbox, crossMsg{
		at: s.now + d, src: s.shard, dst: dst.shard, seq: s.outSeq, fn: fn,
	})
	s.outSeq++
}

// runWindow drains events with firing times inside [now, end) and not
// beyond limit (the run deadline, inclusive). It is the per-domain body
// of one coordinator round and never blocks.
func (s *Simulator) runWindow(end, limit time.Duration) {
	s.beginLoop()
	defer s.endLoop()
	for !s.halted {
		next, ok := s.peek()
		if !ok || next >= end || next > limit {
			return
		}
		s.Step()
	}
}

// RunFor advances the coordinated simulation by d of virtual time.
func (c *Coordinator) RunFor(d time.Duration) { c.RunUntil(c.root.now + d) }

// RunUntil executes events across all domains with firing times <=
// deadline, advancing every domain's clock to deadline afterwards (unless
// a domain halted, which freezes all clocks at that window, mirroring
// Simulator.RunUntil). On return all domains are quiesced and the
// journal's buffered events have been merged and flushed in deterministic
// order.
func (c *Coordinator) RunUntil(deadline time.Duration) {
	helpers := c.workers - 1
	if n := len(c.domains) - 1; helpers > n {
		helpers = n
	}
	if helpers > 0 {
		c.startCh = make(chan struct{})
		c.doneCh = make(chan struct{})
		for i := 0; i < helpers; i++ {
			c.wg.Add(1)
			go c.helper()
		}
	}

	halted := false
	for !halted {
		t, ok := c.nextTime()
		if !ok || t > deadline {
			break
		}
		end := t + c.lookahead
		c.deliver(end)
		c.runRound(end, deadline, helpers)
		c.collect()
		for _, d := range c.domains {
			if d.halted {
				halted = true
			}
		}
	}

	if helpers > 0 {
		close(c.startCh)
		c.wg.Wait()
		c.startCh, c.doneCh = nil, nil
	}

	if !halted {
		for _, d := range c.domains {
			if d.now < deadline {
				d.setNow(deadline)
			}
		}
	}
	c.root.obs.Journal.FlushOrdered()
}

// nextTime finds the earliest actionable virtual time across all domains
// and undelivered cross messages.
func (c *Coordinator) nextTime() (time.Duration, bool) {
	var t time.Duration
	found := false
	for _, d := range c.domains {
		if next, ok := d.peek(); ok && (!found || next < t) {
			t, found = next, true
		}
	}
	if len(c.pending) > 0 && (!found || c.pending[0].at < t) {
		t, found = c.pending[0].at, true
	}
	return t, found
}

// deliver moves pending cross messages due before end onto their target
// domains' queues, in (at, src, seq) order.
func (c *Coordinator) deliver(end time.Duration) {
	n := 0
	for n < len(c.pending) && c.pending[n].at < end {
		m := &c.pending[n]
		c.domains[m.dst].ScheduleAt(m.at, m.fn)
		n++
	}
	if n > 0 {
		c.pending = c.pending[:copy(c.pending, c.pending[n:])]
	}
}

// collect gathers every domain's outbox into the sorted pending list.
func (c *Coordinator) collect() {
	added := false
	for _, d := range c.domains {
		if len(d.outbox) > 0 {
			c.pending = append(c.pending, d.outbox...)
			d.outbox = d.outbox[:0]
			added = true
		}
	}
	if !added {
		return
	}
	sort.Slice(c.pending, func(i, j int) bool {
		a, b := &c.pending[i], &c.pending[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
}

// runRound executes one window across the active domains, using helper
// goroutines when more than one domain has work.
func (c *Coordinator) runRound(end, limit time.Duration, helpers int) {
	active := c.active[:0]
	for _, d := range c.domains {
		if next, ok := d.peek(); ok && next < end && next <= limit {
			active = append(active, d)
		}
	}
	c.active = active
	if len(active) == 0 {
		return
	}
	c.rounds++
	c.windows += uint64(len(active))
	if helpers == 0 || len(active) == 1 {
		for _, d := range active {
			d.runWindow(end, limit)
		}
		return
	}
	c.curActive, c.curEnd, c.curLimit = active, end, limit
	c.nextIdx.Store(0)
	release := helpers
	if n := len(active) - 1; release > n {
		release = n
	}
	for i := 0; i < release; i++ {
		c.startCh <- struct{}{}
	}
	c.drain()
	for i := 0; i < release; i++ {
		<-c.doneCh
	}
}

// helper is a persistent worker: woken once per parallel round, it steals
// domains from the shared active list until none remain.
func (c *Coordinator) helper() {
	defer c.wg.Done()
	for range c.startCh {
		c.drain()
		c.doneCh <- struct{}{}
	}
}

// drain claims active domains one at a time and runs their windows.
func (c *Coordinator) drain() {
	for {
		i := int(c.nextIdx.Add(1)) - 1
		if i >= len(c.curActive) {
			return
		}
		c.curActive[i].runWindow(c.curEnd, c.curLimit)
	}
}

// Stats reports synchronization rounds executed and domain-windows run
// across them. windows/rounds is the run's average available parallelism —
// a property of the workload, not of how many CPUs happened to execute it.
func (c *Coordinator) Stats() (rounds, windows uint64) { return c.rounds, c.windows }

// Halted reports whether any domain is halted.
func (c *Coordinator) Halted() bool {
	for _, d := range c.domains {
		if d.halted {
			return true
		}
	}
	return false
}

// String identifies the coordinator in panics and logs.
func (c *Coordinator) String() string {
	return fmt.Sprintf("sim.Coordinator{domains: %d, lookahead: %v, workers: %d}",
		len(c.domains), c.lookahead, c.workers)
}
