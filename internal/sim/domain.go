package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gq/internal/obs"
)

// This file implements sharded simulation: a Coordinator owns a set of
// Simulators ("domains") and runs them on worker goroutines under
// conservative lookahead synchronization (classic CMB-style, with
// demand-driven per-domain windows — null-message elision):
//
//   - Every cross-domain effect is posted with PostTo and takes at least
//     the coordinator's lookahead of virtual time to arrive. That is the
//     physical trunk/uplink latency between a subfarm and the gateway, so
//     the clamp models wire delay, not an artificial fudge.
//   - Each round the coordinator collects every domain's next actionable
//     time next_o = min(local event queue, earliest undelivered cross
//     message bound for o). Domain d may then run freely up to
//     end_d = min over o != d of (next_o + lookahead): nothing any other
//     domain o does before next_o exists, and nothing it does at or after
//     next_o can reach d before next_o + lookahead. An idle domain has
//     next_o = +inf and so grants an unbounded window — the implicit
//     null message of the CMB scheme, elided rather than sent — which
//     lets a sparse workload run one busy domain straight to the deadline
//     in a single round instead of paying a barrier every lookahead.
//   - The one hazard of a wide window is a domain inducing its own
//     future: if d sends a message while running, a recipient may react
//     and reply. The reply cannot arrive before the original message's
//     arrival time + lookahead, so PostTo tightens the sender's own
//     window end to that bound (Simulator.winEnd) the moment a message
//     is posted. Deeper reaction chains only arrive later.
//   - Cross messages are delivered in (arrival time, source shard, source
//     sequence) order, a unique total order independent of how the
//     domains were interleaved on OS threads. Together with per-domain
//     RNG streams and per-domain journal streams this makes a sharded run
//     byte-identical for a given seed regardless of GOMAXPROCS or worker
//     count.
//
// Idle stretches cost nothing: the round start jumps straight to the next
// event, so a quiet farm synchronizes as rarely as a busy one synchronizes
// often.

// crossMsg is one scheduled cross-domain callback.
type crossMsg struct {
	at       time.Duration
	src, dst int
	seq      uint64
	fn       func()
}

// DefaultLookahead is the coordinator's default synchronization window —
// the modeled trunk latency between a subfarm and the gateway core. Large
// enough that barrier overhead is negligible against per-window event
// work, small enough that control-plane round trips (ARP retries, TCP
// handshakes with external hosts) stay well inside protocol timeouts.
const DefaultLookahead = 20 * time.Millisecond

// Coordinator runs a root Simulator plus per-shard domains in lockstep
// windows. Construct with NewCoordinator around an existing root
// Simulator, carve out domains with NewDomain while building the
// topology, then drive virtual time with RunUntil/RunFor instead of the
// root's own Run methods.
type Coordinator struct {
	root      *Simulator
	domains   []*Simulator
	lookahead time.Duration
	workers   int

	// pending holds undelivered cross-domain messages sorted by
	// (at, src, seq).
	pending []crossMsg

	// Per-round state shared with worker goroutines. Written by the
	// coordinator before workers are released each round (the channel
	// send orders the memory), read-only during the round.
	curActive []*Simulator
	curLimit  time.Duration
	nextIdx   atomic.Int64

	startCh chan struct{}
	doneCh  chan struct{}
	wg      sync.WaitGroup

	// Round-planning scratch, reused across rounds: per-domain next
	// actionable times and per-domain window ends (indexed by shard id).
	active []*Simulator
	nexts  []time.Duration
	ends   []time.Duration

	// rounds counts synchronization windows executed; windows counts
	// domain-windows run across them (windows/rounds = average parallelism
	// available, independent of how many CPUs actually ran it).
	rounds, windows uint64

	// Live shard-utilization metrics in the shared registry: how many
	// domains ran in the most recent round, plus cumulative round and
	// domain-window counts so observers can derive domains/round.
	busyGauge  *obs.Gauge
	roundsCtr  *obs.Counter
	windowsCtr *obs.Counter

	// posted holds control actions handed in from alien goroutines
	// (Coordinator.Post); drained onto domain queues at quiesce points.
	postMu sync.Mutex
	posted []ctlPost
}

// ctlPost is one queued control action bound for a domain.
type ctlPost struct {
	dom *Simulator
	fn  func()
}

// maxTime is the "no event" sentinel for round planning.
const maxTime = time.Duration(1<<63 - 1)

// NewCoordinator makes root shard 0 of a coordinated simulation.
// lookahead <= 0 selects DefaultLookahead; workers <= 0 selects
// GOMAXPROCS. The root's journal is switched into buffered parallel mode:
// events from all domains are merged deterministically whenever the
// coordinator quiesces (end of each RunUntil).
func NewCoordinator(root *Simulator, lookahead time.Duration, workers int) *Coordinator {
	if root.coord != nil {
		panic("sim: simulator already coordinated")
	}
	if lookahead <= 0 {
		lookahead = DefaultLookahead
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c := &Coordinator{root: root, lookahead: lookahead, workers: workers}
	root.coord = c
	root.shard = 0
	c.domains = []*Simulator{root}
	root.obs.Journal.SetParallel()
	c.busyGauge = root.obs.Reg.Gauge("sim.domains_busy")
	c.roundsCtr = root.obs.Reg.Counter("sim.rounds")
	c.windowsCtr = root.obs.Reg.Counter("sim.domain_windows")
	return c
}

// Root returns the root (shard 0) simulator.
func (c *Coordinator) Root() *Simulator { return c.root }

// Lookahead returns the synchronization window (= minimum cross-domain
// latency).
func (c *Coordinator) Lookahead() time.Duration { return c.lookahead }

// Workers returns the configured worker count.
func (c *Coordinator) Workers() int { return c.workers }

// Domains returns how many domains exist, including the root.
func (c *Coordinator) Domains() int { return len(c.domains) }

// Now returns the root domain's clock (all domains agree at every quiesce
// point).
func (c *Coordinator) Now() time.Duration { return c.root.now }

// NewDomain creates a new simulation domain. Its RNG stream is derived
// deterministically from (root seed, shard id) — golden-ratio stride so
// neighboring shards decorrelate — and its telemetry is a shard view of
// the root's: shared registry and journal, domain-local clock and event
// stream. Call during topology construction, never mid-run.
func (c *Coordinator) NewDomain() *Simulator {
	shard := len(c.domains)
	const goldenGamma = -0x61C8864680B583EB // 0x9E3779B97F4A7C15 as int64
	seed := c.root.seed + int64(shard)*goldenGamma
	d := &Simulator{
		rng:   rand.New(rand.NewSource(seed)),
		seed:  seed,
		shard: shard,
		coord: c,
	}
	d.setNow(c.root.now)
	d.obs = c.root.obs.ShardView(func() time.Duration {
		return time.Duration(d.nowShared.Load())
	})
	c.domains = append(c.domains, d)
	return d
}

// Shard returns this simulator's domain id (0 for the root or a
// standalone simulator).
func (s *Simulator) Shard() int { return s.shard }

// Coordinator returns the coordinator owning this simulator, or nil.
func (s *Simulator) Coordinator() *Coordinator { return s.coord }

// SameWorld reports whether s and o can exchange events: either the same
// simulator, or two domains of the same coordinator.
func (s *Simulator) SameWorld(o *Simulator) bool {
	return s == o || (s.coord != nil && s.coord == o.coord)
}

// CrossFloor returns the minimum virtual latency for effects travelling
// from s to o: zero within a domain, the coordinator's lookahead across
// domains.
func (s *Simulator) CrossFloor(o *Simulator) time.Duration {
	if s == o || s.coord == nil || s.coord != o.coord {
		return 0
	}
	return s.coord.lookahead
}

// PostTo schedules fn on dst after delay d of virtual time. Within one
// simulator it is exactly Schedule. Across domains the delay is clamped
// up to the coordinator's lookahead (the modeled trunk latency) and the
// callback is delivered through the coordinator's deterministic merge.
// Panics if the simulators do not share a coordinator.
func (s *Simulator) PostTo(dst *Simulator, d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	if dst == s {
		s.Schedule(d, fn)
		return
	}
	c := s.coord
	if c == nil || dst.coord != c {
		panic("sim: PostTo between unrelated simulators")
	}
	if d < c.lookahead {
		d = c.lookahead
	}
	at := s.now + d
	s.outbox = append(s.outbox, crossMsg{
		at: at, src: s.shard, dst: dst.shard, seq: s.outSeq, fn: fn,
	})
	s.outSeq++
	// A recipient may react to this message; its earliest possible
	// response lands at arrival + lookahead (deeper chains later still).
	// Tighten this window so we stop before any induced effect could be
	// due back here.
	if s.winEnd != 0 {
		if bound := at + c.lookahead; bound < s.winEnd {
			s.winEnd = bound
		}
	}
}

// runWindow drains events with firing times inside [now, winEnd) and not
// beyond limit (the run deadline, inclusive). winEnd is set by the
// coordinator's round plan and may shrink mid-window when PostTo sends a
// cross message. It is the per-domain body of one coordinator round and
// never blocks.
func (s *Simulator) runWindow(limit time.Duration) {
	s.beginLoop()
	defer s.endLoop()
	for !s.halted {
		next, ok := s.peek()
		if !ok || next >= s.winEnd || next > limit {
			break
		}
		s.Step()
	}
	s.winEnd = 0
}

// RunFor advances the coordinated simulation by d of virtual time.
func (c *Coordinator) RunFor(d time.Duration) { c.RunUntil(c.root.now + d) }

// RunUntil executes events across all domains with firing times <=
// deadline, advancing every domain's clock to deadline afterwards (unless
// a domain halted, which freezes all clocks at that window, mirroring
// Simulator.RunUntil). On return all domains are quiesced and the
// journal's buffered events have been merged and flushed in deterministic
// order.
func (c *Coordinator) RunUntil(deadline time.Duration) {
	helpers := c.workers - 1
	if n := len(c.domains) - 1; helpers > n {
		helpers = n
	}
	if helpers > 0 {
		c.startCh = make(chan struct{})
		c.doneCh = make(chan struct{})
		for i := 0; i < helpers; i++ {
			c.wg.Add(1)
			go c.helper()
		}
	}

	halted := false
	c.drainPosted()
	for !halted {
		t, ok := c.nextTime()
		if !ok || t > deadline {
			break
		}
		c.planRound()
		c.deliver()
		c.runRound(deadline, helpers)
		c.collect()
		for _, d := range c.domains {
			if d.halted {
				halted = true
			}
		}
	}

	if helpers > 0 {
		close(c.startCh)
		c.wg.Wait()
		c.startCh, c.doneCh = nil, nil
	}

	if !halted {
		for _, d := range c.domains {
			if d.now < deadline {
				d.setNow(deadline)
			}
		}
	}
	c.root.obs.Journal.FlushOrdered()
}

// nextTime finds the earliest actionable virtual time across all domains
// and undelivered cross messages.
func (c *Coordinator) nextTime() (time.Duration, bool) {
	var t time.Duration
	found := false
	for _, d := range c.domains {
		if next, ok := d.peek(); ok && (!found || next < t) {
			t, found = next, true
		}
	}
	if len(c.pending) > 0 && (!found || c.pending[0].at < t) {
		t, found = c.pending[0].at, true
	}
	return t, found
}

// planRound computes each domain's next actionable time (local queue or
// earliest pending cross message) and from those the per-domain window
// ends: end_d = min over o != d of (next_o + lookahead). Idle domains
// contribute nothing — their implicit null message is "not before +inf" —
// so when only one domain has work its window is unbounded.
func (c *Coordinator) planRound() {
	nexts := c.nexts[:0]
	for _, d := range c.domains {
		n := maxTime
		if next, ok := d.peek(); ok {
			n = next
		}
		nexts = append(nexts, n)
	}
	for i := range c.pending {
		m := &c.pending[i]
		if m.at < nexts[m.dst] {
			nexts[m.dst] = m.at
		}
	}
	c.nexts = nexts

	// The two smallest next times determine every window end: for the
	// globally earliest domain the binding constraint is the runner-up,
	// for everyone else it is the global minimum.
	min1, min2, arg1 := maxTime, maxTime, -1
	for i, n := range nexts {
		if n < min1 {
			min2 = min1
			min1, arg1 = n, i
		} else if n < min2 {
			min2 = n
		}
	}
	ends := c.ends[:0]
	for i := range nexts {
		other := min1
		if i == arg1 {
			other = min2
		}
		end := maxTime
		if other != maxTime {
			end = other + c.lookahead
		}
		ends = append(ends, end)
	}
	c.ends = ends
}

// deliver moves pending cross messages due before their target domain's
// window end onto that domain's queue, in (at, src, seq) order.
func (c *Coordinator) deliver() {
	kept := c.pending[:0]
	for i := range c.pending {
		m := &c.pending[i]
		if m.at < c.ends[m.dst] {
			c.domains[m.dst].ScheduleAt(m.at, m.fn)
		} else {
			kept = append(kept, *m)
		}
	}
	c.pending = kept
}

// collect gathers every domain's outbox into the sorted pending list.
func (c *Coordinator) collect() {
	added := false
	for _, d := range c.domains {
		if len(d.outbox) > 0 {
			c.pending = append(c.pending, d.outbox...)
			d.outbox = d.outbox[:0]
			added = true
		}
	}
	if !added {
		return
	}
	sort.Slice(c.pending, func(i, j int) bool {
		a, b := &c.pending[i], &c.pending[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
}

// runRound executes one round across the active domains, using helper
// goroutines when more than one domain has work. Each active domain runs
// inside its own planned window (Simulator.winEnd).
func (c *Coordinator) runRound(limit time.Duration, helpers int) {
	active := c.active[:0]
	for i, d := range c.domains {
		if next, ok := d.peek(); ok && next < c.ends[i] && next <= limit {
			d.winEnd = c.ends[i]
			active = append(active, d)
		}
	}
	c.active = active
	if len(active) == 0 {
		return
	}
	c.rounds++
	c.windows += uint64(len(active))
	c.busyGauge.Set(int64(len(active)))
	c.roundsCtr.Inc()
	c.windowsCtr.Add(uint64(len(active)))
	if helpers == 0 || len(active) == 1 {
		for _, d := range active {
			d.runWindow(limit)
		}
		return
	}
	c.curActive, c.curLimit = active, limit
	c.nextIdx.Store(0)
	release := helpers
	if n := len(active) - 1; release > n {
		release = n
	}
	for i := 0; i < release; i++ {
		c.startCh <- struct{}{}
	}
	c.drain()
	for i := 0; i < release; i++ {
		<-c.doneCh
	}
}

// helper is a persistent worker: woken once per parallel round, it steals
// domains from the shared active list until none remain.
func (c *Coordinator) helper() {
	defer c.wg.Done()
	for range c.startCh {
		c.drain()
		c.doneCh <- struct{}{}
	}
}

// drain claims active domains one at a time and runs their windows.
func (c *Coordinator) drain() {
	for {
		i := int(c.nextIdx.Add(1)) - 1
		if i >= len(c.curActive) {
			return
		}
		c.curActive[i].runWindow(c.curLimit)
	}
}

// Post hands fn in from an alien goroutine (an ops driver, a signal
// handler) to run inside dom's event loop at dom's current clock. The
// action is queued thread-safely and scheduled at the next quiesce point —
// the start of the next RunUntil, when every domain is parked — so it
// executes on dom's own goroutine, stamped with dom's clock, journalled on
// dom's stream, with cross-domain effects riding the regular PostTo
// machinery. This is the shard-safe analogue of Simulator.Inject.
func (c *Coordinator) Post(dom *Simulator, fn func()) {
	if dom.coord != c {
		panic("sim: Coordinator.Post to a foreign domain")
	}
	c.postMu.Lock()
	c.posted = append(c.posted, ctlPost{dom: dom, fn: fn})
	c.postMu.Unlock()
}

// drainPosted schedules queued control actions onto their domains. Called
// only while the coordinator is quiesced (start of RunUntil).
func (c *Coordinator) drainPosted() {
	c.postMu.Lock()
	posted := c.posted
	c.posted = nil
	c.postMu.Unlock()
	for _, p := range posted {
		p.dom.ScheduleAt(p.dom.now, p.fn)
	}
}

// Stats reports synchronization rounds executed and domain-windows run
// across them. windows/rounds is the run's average available parallelism —
// a property of the workload, not of how many CPUs happened to execute it.
func (c *Coordinator) Stats() (rounds, windows uint64) { return c.rounds, c.windows }

// Halted reports whether any domain is halted.
func (c *Coordinator) Halted() bool {
	for _, d := range c.domains {
		if d.halted {
			return true
		}
	}
	return false
}

// String identifies the coordinator in panics and logs.
func (c *Coordinator) String() string {
	return fmt.Sprintf("sim.Coordinator{domains: %d, lookahead: %v, workers: %d}",
		len(c.domains), c.lookahead, c.workers)
}
