// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue with stable FIFO ordering among
// simultaneous events, cancellable timers, and a seeded random source.
//
// All of GQ's simulated machinery (links, hosts, protocol stacks, malware
// specimens, reimaging controllers) runs on a single Simulator. Virtual
// time only advances when the event queue is drained up to the next event,
// so experiments that span hours of farm operation complete in milliseconds
// and are bit-for-bit reproducible for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gq/internal/obs"
)

// Event is a scheduled callback. Events with equal firing times run in the
// order they were scheduled.
type Event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	idx   int // heap index; -1 once removed
	dead  bool
	fired bool
}

// At reports the virtual time at which the event fires.
func (e *Event) At() time.Duration { return e.at }

// Cancel prevents a pending event from firing. Cancelling an already-fired
// or already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil && !e.fired {
		e.dead = true
	}
}

// Cancelled reports whether Cancel was called before the event fired. An
// event that actually ran is not cancelled, even though it is no longer
// pending.
func (e *Event) Cancelled() bool { return e.dead }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { return e.fired }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Simulator is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all simulated components run inside event callbacks.
//
// A Simulator may also serve as one *domain* of a sharded simulation: a
// Coordinator owns several Simulators (the root plus one per shard) and
// runs them on worker goroutines under conservative lookahead
// synchronization. Within a domain nothing changes — components schedule
// on their own Simulator exactly as in the single-domain case; only
// PostTo crosses domains.
type Simulator struct {
	now    time.Duration
	seq    uint64
	queue  eventHeap
	rng    *rand.Rand
	seed   int64
	halted bool

	// Sharding state: which domain this is, the coordinator that owns it
	// (nil for a standalone simulator), and the outbox of cross-domain
	// messages generated during the current window.
	shard  int
	coord  *Coordinator
	outbox []crossMsg
	outSeq uint64

	// winEnd is the exclusive end of the window this domain is currently
	// running (zero outside a window). PostTo tightens it to the first
	// cross-message's arrival time + lookahead so a domain granted a wide
	// window can never outrun a response its own message might induce.
	// Touched only by the goroutine running this domain's window.
	winEnd time.Duration

	// nowShared mirrors now so observers on other goroutines (telemetry
	// snapshots) can read the clock without racing the event loop.
	nowShared atomic.Int64

	// Goroutine bridges (proc.go): the registry of coupled procs, the
	// loop-goroutine mark, and the Inject mailbox for alien goroutines.
	procsMu   sync.RWMutex
	procs     map[int64]*Proc
	loopG     atomic.Int64
	injectMu  sync.Mutex
	injected  []func()
	injectN   atomic.Int32
	injectSig chan struct{}

	obs *obs.Obs

	// Fired counts events executed since construction.
	Fired uint64
}

// New returns a Simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	s := &Simulator{
		rng:       rand.New(rand.NewSource(seed)),
		seed:      seed,
		injectSig: make(chan struct{}, 1),
	}
	s.obs = obs.New(func() time.Duration {
		return time.Duration(s.nowShared.Load())
	})
	s.obs.Journal.Epoch = Epoch
	return s
}

// Obs returns the simulation's telemetry instance (metrics registry, event
// journal, flight recorder). Every component reaches telemetry through its
// Simulator reference, so all layers share one registry per experiment.
func (s *Simulator) Obs() *obs.Obs { return s.obs }

// setNow advances the clock, keeping the observer mirror in sync.
func (s *Simulator) setNow(t time.Duration) {
	s.now = t
	s.nowShared.Store(int64(t))
}

// Now returns the current virtual time as an offset from the simulation
// epoch.
func (s *Simulator) Now() time.Duration { return s.now }

// ObservedNow returns the clock through the mirror maintained for
// observers on other goroutines. Unlike Now it is safe to call from any
// goroutine, at the price of lagging by the event currently executing.
func (s *Simulator) ObservedNow() time.Duration { return time.Duration(s.nowShared.Load()) }

// Epoch is the wall-clock instant virtual time zero corresponds to when a
// human-readable timestamp is needed (reports, pcap headers). The date is
// arbitrary but fixed so output is reproducible.
var Epoch = time.Date(2011, time.November, 2, 0, 0, 0, 0, time.UTC)

// WallClock converts the current virtual time to an absolute timestamp.
func (s *Simulator) WallClock() time.Time { return Epoch.Add(s.now) }

// Rand exposes the simulation's seeded random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Schedule runs fn after delay d of virtual time. A negative delay is
// treated as zero. The returned Event may be cancelled.
func (s *Simulator) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.ScheduleAt(s.now+d, fn)
}

// ScheduleAt runs fn at absolute virtual time at (clamped to now).
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	if at < s.now {
		at = s.now
	}
	e := &Event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// Halt stops Run/RunUntil/Step loops after the current event returns. The
// halted state is sticky: pending events stay queued and the clock freezes
// where the halting event fired, but no further events run until Resume.
// In a coordinated (sharded) run, halting any domain stops the whole
// coordinator at the end of the current synchronization window.
func (s *Simulator) Halt() { s.halted = true }

// Resume clears a previous Halt so Run/RunUntil/Step process events again.
// The event queue is untouched: everything scheduled before or during the
// halt (timers, retries, tickers) is still pending, so a farm halted by a
// trigger can be resumed and driven further with Run*.
func (s *Simulator) Resume() { s.halted = false }

// Halted reports whether the simulator is currently halted.
func (s *Simulator) Halted() bool { return s.halted }

// Pending reports the number of events in the queue, including cancelled
// events that have not yet been discarded.
func (s *Simulator) Pending() int { return len(s.queue) }

// Step executes the next pending event, advancing the clock to its firing
// time. It returns false when the queue is empty or the simulator halted.
func (s *Simulator) Step() bool {
	if s.injectN.Load() != 0 {
		s.drainInjected()
	}
	for len(s.queue) > 0 && !s.halted {
		e := heap.Pop(&s.queue).(*Event)
		if e.dead {
			continue
		}
		s.setNow(e.at)
		e.fired = true
		s.Fired++
		e.fn()
		return true
	}
	return false
}

// Run drains the event queue completely (or until Halt).
func (s *Simulator) Run() {
	s.beginLoop()
	defer s.endLoop()
	for s.Step() {
	}
}

// RunUntil executes events with firing times <= deadline, advancing the
// clock to deadline afterwards even if the queue emptied earlier. A Halt()
// freezes the clock where the halting event fired rather than jumping
// ahead to the deadline.
func (s *Simulator) RunUntil(deadline time.Duration) {
	s.beginLoop()
	defer s.endLoop()
	for !s.halted {
		next, ok := s.peek()
		if !ok || next > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline && !s.halted {
		s.setNow(deadline)
	}
}

// RunFor advances the simulation by d of virtual time.
func (s *Simulator) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

func (s *Simulator) peek() (time.Duration, bool) {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if e.dead {
			heap.Pop(&s.queue)
			continue
		}
		return e.at, true
	}
	return 0, false
}

// Ticker repeatedly invokes fn every interval until stopped.
type Ticker struct {
	sim      *Simulator
	interval time.Duration
	fn       func()
	ev       *Event
	stopped  bool
}

// Every schedules fn to run every interval, first firing one interval from
// now. It panics if interval is not positive.
func (s *Simulator) Every(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker interval %v", interval))
	}
	t := &Ticker{sim: s, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.sim.Schedule(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}
