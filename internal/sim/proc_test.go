package sim

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestProcSleepWakesAtVirtualTime pins the core rendezvous contract: a
// proc's Sleep parks it and an ordinary timer event resumes it at the
// exact virtual instant, interleaved with other events in deterministic
// order.
func TestProcSleepWakesAtVirtualTime(t *testing.T) {
	s := New(1)
	var trace []string
	s.Schedule(5*time.Millisecond, func() {
		trace = append(trace, fmt.Sprintf("event@%v", s.Now()))
	})
	p := s.Go("sleeper", func(p *Proc) {
		trace = append(trace, fmt.Sprintf("proc-start@%v", s.Now()))
		p.Sleep(10 * time.Millisecond)
		trace = append(trace, fmt.Sprintf("proc-wake@%v", s.Now()))
	})
	s.Run()
	if !p.Done() {
		t.Fatal("proc did not finish")
	}
	want := []string{"proc-start@0s", "event@5ms", "proc-wake@10ms"}
	if fmt.Sprint(trace) != fmt.Sprint(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

// TestProcParkUnpark checks the explicit handoff: an event callback
// unparks a waiting proc and regains control when the proc parks again.
func TestProcParkUnpark(t *testing.T) {
	s := New(1)
	var trace []string
	p := s.Go("worker", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Park()
			trace = append(trace, fmt.Sprintf("slice%d@%v", i, s.Now()))
		}
	})
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		s.Schedule(d, func() {
			trace = append(trace, fmt.Sprintf("pre@%v", s.Now()))
			p.Unpark()
			trace = append(trace, fmt.Sprintf("post@%v", s.Now()))
		})
	}
	s.Run()
	want := "[pre@1ms slice0@1ms post@1ms pre@2ms slice1@2ms post@2ms pre@3ms slice2@3ms post@3ms]"
	if fmt.Sprint(trace) != want {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	if !p.Done() {
		t.Fatal("proc did not finish")
	}
	p.Unpark() // done: must be a no-op, not a panic or hang
}

// TestProcUnparkNotParkedPanics pins the discipline violation loudly: a
// proc that is running is by definition not parked, so unparking it (here
// from its own goroutine, the only side that can hold control) panics.
func TestProcUnparkNotParkedPanics(t *testing.T) {
	s := New(1)
	var recovered any
	s.Go("self", func(p *Proc) {
		defer func() { recovered = recover() }()
		p.Unpark()
	})
	if recovered == nil {
		t.Fatal("expected panic from Unpark of a running proc")
	}
}

// TestCallerProc checks the registry resolves only from the proc's own
// goroutine.
func TestCallerProc(t *testing.T) {
	s := New(1)
	if s.CallerProc() != nil {
		t.Fatal("CallerProc outside any proc should be nil")
	}
	var got *Proc
	p := s.Go("me", func(p *Proc) {
		got = s.CallerProc()
	})
	s.Run()
	if got != p {
		t.Fatalf("CallerProc inside proc = %v, want %v", got, p)
	}
	if s.CallerProc() != nil {
		t.Fatal("registry entry should be gone after proc completion")
	}
}

// TestOnEventLoop checks the loop-goroutine mark is set exactly while
// Run executes events.
func TestOnEventLoop(t *testing.T) {
	s := New(1)
	if s.OnEventLoop() {
		t.Fatal("not running yet")
	}
	var during bool
	s.Schedule(0, func() { during = s.OnEventLoop() })
	s.Run()
	if !during {
		t.Fatal("OnEventLoop false inside an event callback")
	}
	if s.OnEventLoop() {
		t.Fatal("mark should clear after Run returns")
	}
}

// TestInjectAndPump exercises the alien-goroutine bridge: operations
// injected from a plain goroutine run on the loop, interleaved with
// timers, until the stop predicate holds.
func TestInjectAndPump(t *testing.T) {
	s := New(1)
	var mu sync.Mutex
	var got []string
	done := make(chan struct{})
	ticks := 0
	s.Every(time.Second, func() { ticks++ })
	go func() {
		for i := 0; i < 3; i++ {
			i := i
			ack := make(chan struct{})
			s.Inject(func() {
				mu.Lock()
				got = append(got, fmt.Sprintf("op%d", i))
				mu.Unlock()
				close(ack)
			})
			<-ack
		}
		close(done)
	}()
	ok := s.Pump(time.Hour, func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	})
	if !ok {
		t.Fatal("Pump hit deadline before aliens finished")
	}
	mu.Lock()
	defer mu.Unlock()
	want := "[op0 op1 op2]"
	if fmt.Sprint(got) != want {
		t.Fatalf("ops = %v, want %v", got, want)
	}
}

// TestPumpDeadline: with no injections and no satisfied predicate, Pump
// must stop at the virtual deadline rather than spin.
func TestPumpDeadline(t *testing.T) {
	s := New(1)
	s.Every(10*time.Minute, func() {})
	if ok := s.Pump(30*time.Minute, func() bool { return false }); ok {
		t.Fatal("predicate never true, Pump returned true")
	}
	if s.Now() != 30*time.Minute {
		t.Fatalf("clock = %v, want 30m", s.Now())
	}
}

// TestInjectOnDomainPanics pins the determinism guard: the alien bridge
// is forbidden inside coordinated (sharded) simulations.
func TestInjectOnDomainPanics(t *testing.T) {
	root := New(1)
	c := NewCoordinator(root, 0, 1)
	d := c.NewDomain()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Inject(func() {})
}

// TestProcInDomainDeterministic runs proc-driven workloads inside a
// sharded simulation at 1 and 2 workers and demands identical traces:
// the coupling discipline must survive domains executing on helper
// goroutines.
func TestProcInDomainDeterministic(t *testing.T) {
	run := func(workers int) []string {
		root := New(42)
		c := NewCoordinator(root, 0, workers)
		var trace []string
		var mu sync.Mutex
		for i := 0; i < 3; i++ {
			i := i
			d := c.NewDomain()
			d.Go(fmt.Sprintf("proc%d", i), func(p *Proc) {
				for k := 0; k < 5; k++ {
					p.Sleep(time.Duration(i+1) * 7 * time.Millisecond)
					mu.Lock()
					trace = append(trace, fmt.Sprintf("p%d.%d@%v", i, k, d.Now()))
					mu.Unlock()
				}
			})
		}
		c.RunUntil(time.Second)
		// Order the trace by the deterministic (time, proc) key: domains
		// run concurrently, so append order across domains is not the
		// determinism surface — the virtual timestamps are.
		mu.Lock()
		defer mu.Unlock()
		out := append([]string(nil), trace...)
		sortStrings(out)
		return out
	}
	a, b := run(1), run(2)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("workers=1 vs workers=2 diverged:\n%v\n%v", a, b)
	}
	if len(a) != 15 {
		t.Fatalf("expected 15 wakeups, got %d: %v", len(a), a)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
