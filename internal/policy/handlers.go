package policy

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"strings"

	"gq/internal/containment"
	"gq/internal/httpx"
)

// NewSample builds a Sample, computing its MD5.
func NewSample(name, family string, content []byte) *Sample {
	sum := md5.Sum(content)
	return &Sample{Name: name, Family: family, Content: content, MD5: hex.EncodeToString(sum[:])}
}

// AutoinfectHandler impersonates the auto-infection HTTP server (§6.6):
// the inmate's infection script requests a sample; the containment server
// serves it without any real server existing, which "simplifies the
// implementation substantially: the containment server observes the
// attempted HTTP connection anyway".
type AutoinfectHandler struct {
	sample *Sample
	parser httpx.Parser
	// Served counts successful deliveries.
	Served int
}

// NewAutoinfectHandler builds the handler for one decided flow.
func NewAutoinfectHandler(sample *Sample) *AutoinfectHandler {
	h := &AutoinfectHandler{sample: sample}
	return h
}

// OnClientData implements containment.StreamHandler.
func (h *AutoinfectHandler) OnClientData(s *containment.Session, data []byte) {
	if h.parser.OnRequest == nil {
		h.parser.OnRequest = func(req *httpx.Request) {
			resp := httpx.NewResponse(200, h.sample.Content)
			resp.Headers["content-type"] = "application/octet-stream"
			resp.Headers["x-sample-name"] = h.sample.Name
			resp.Headers["x-sample-family"] = h.sample.Family
			s.WriteClient(resp.Marshal())
			h.Served++
			s.CloseClient()
		}
		h.parser.OnError = func(error) { s.AbortClient() }
	}
	h.parser.Feed(data)
}

// OnServerData implements containment.StreamHandler (never used: there is
// no server).
func (h *AutoinfectHandler) OnServerData(s *containment.Session, data []byte) {}

// OnClientClose implements containment.StreamHandler.
func (h *AutoinfectHandler) OnClientClose(s *containment.Session) {}

// OnServerClose implements containment.StreamHandler.
func (h *AutoinfectHandler) OnServerClose(s *containment.Session) {}

// CCFilterHandler performs content control on line-oriented C&C exchanges:
// requests pass through to the real C&C server; response directives that
// would cause harm (DDoS orders, proxy-relay jobs, update URLs) are
// stripped before reaching the inmate, while harmless directives (spam
// templates, target lists) pass so the specimen keeps operating.
type CCFilterHandler struct {
	respBuf []byte
	// Dropped counts stripped directives; Passed counts forwarded ones.
	Dropped, Passed int
}

// NewCCFilterHandler builds a filter for one decided flow.
func NewCCFilterHandler() *CCFilterHandler { return &CCFilterHandler{} }

// forbiddenDirectives are C&C verbs that must never reach an inmate.
var forbiddenDirectives = []string{"DDOS", "FLOOD", "PROXY", "UPDATE", "EXEC", "SCAN"}

// OnClientData implements containment.StreamHandler: bot->C&C passes.
func (h *CCFilterHandler) OnClientData(s *containment.Session, data []byte) {
	s.WriteServer(data)
}

// OnServerData implements containment.StreamHandler: C&C->bot is filtered
// line by line.
func (h *CCFilterHandler) OnServerData(s *containment.Session, data []byte) {
	h.respBuf = append(h.respBuf, data...)
	var out []byte
	for {
		nl := strings.IndexByte(string(h.respBuf), '\n')
		if nl < 0 {
			break
		}
		line := string(h.respBuf[:nl+1])
		h.respBuf = h.respBuf[nl+1:]
		if h.forbidden(line) {
			h.Dropped++
			continue
		}
		h.Passed++
		out = append(out, line...)
	}
	if len(out) > 0 {
		s.WriteClient(out)
	}
}

func (h *CCFilterHandler) forbidden(line string) bool {
	up := strings.ToUpper(strings.TrimSpace(line))
	for _, d := range forbiddenDirectives {
		if strings.HasPrefix(up, d+" ") || up == d {
			return true
		}
	}
	return false
}

// OnClientClose implements containment.StreamHandler.
func (h *CCFilterHandler) OnClientClose(s *containment.Session) { s.CloseServer() }

// OnServerClose implements containment.StreamHandler: flush any unfiltered
// tail (a trailing line without newline is held back unless benign).
func (h *CCFilterHandler) OnServerClose(s *containment.Session) {
	if len(h.respBuf) > 0 && !h.forbidden(string(h.respBuf)) {
		s.WriteClient(h.respBuf)
		h.respBuf = nil
	}
	s.CloseClient()
}

// BatchProvider is the standard SampleProvider: per-VLAN sample queues
// served sequentially, then repeating the last batch entry for reinfection
// ("instead of serving the same sample repeatedly, we maintain the batch
// as a list of files and serve them sequentially", §6.6).
type BatchProvider struct {
	batches map[uint16][]*Sample
	next    map[uint16]int
	// Repeat controls behaviour at batch end: repeat the final sample
	// (long-running deployments) or stop (classification runs).
	Repeat bool
}

// NewBatchProvider creates an empty provider.
func NewBatchProvider(repeat bool) *BatchProvider {
	return &BatchProvider{
		batches: make(map[uint16][]*Sample),
		next:    make(map[uint16]int),
		Repeat:  repeat,
	}
}

// Assign sets the sample batch for a VLAN.
func (b *BatchProvider) Assign(vlan uint16, samples []*Sample) {
	b.batches[vlan] = samples
	b.next[vlan] = 0
}

// AssignMatching assigns every sample in library whose name matches the
// Infection glob, preserving library order.
func (b *BatchProvider) AssignMatching(vlan uint16, glob string, library []*Sample) int {
	var batch []*Sample
	for _, s := range library {
		if MatchSample(glob, s.Name) {
			batch = append(batch, s)
		}
	}
	b.Assign(vlan, batch)
	return len(batch)
}

// NextSample implements SampleProvider.
func (b *BatchProvider) NextSample(vlan uint16) (*Sample, bool) {
	batch := b.batches[vlan]
	if len(batch) == 0 {
		return nil, false
	}
	i := b.next[vlan]
	if i >= len(batch) {
		if !b.Repeat {
			return nil, false
		}
		i = len(batch) - 1
	} else {
		b.next[vlan] = i + 1
	}
	return batch[i], true
}

// Remaining reports how many unserved samples a VLAN's batch holds.
func (b *BatchProvider) Remaining(vlan uint16) int {
	n := len(b.batches[vlan]) - b.next[vlan]
	if n < 0 {
		return 0
	}
	return n
}

// String summarises the provider.
func (b *BatchProvider) String() string {
	total := 0
	for _, batch := range b.batches {
		total += len(batch)
	}
	return fmt.Sprintf("policy.BatchProvider{%d VLANs, %d samples}", len(b.batches), total)
}
