package policy

import (
	"gq/internal/containment"
	"gq/internal/shim"
)

// The built-in policy hierarchy (§6.2): from a base implementing
// default-deny we derive classes for each endpoint-control verdict, and
// from these specialise further — e.g. a spambot base that reflects all
// outbound SMTP, refined per family.

func init() {
	Register("DefaultDeny", func(env *Env) containment.Decider { return &DefaultDeny{base{env, "DefaultDeny"}} })
	Register("HardDeny", func(env *Env) containment.Decider { return &HardDeny{base{env, "HardDeny"}} })
	Register("AllowAll", func(env *Env) containment.Decider { return &AllowAll{base{env, "AllowAll"}} })
	Register("SpambotBase", func(env *Env) containment.Decider { return &Spambot{base: base{env, "SpambotBase"}, sink: SvcSMTPSink} })
	Register("Rustock", func(env *Env) containment.Decider {
		return &Rustock{Spambot{base: base{env, "Rustock"}, sink: SvcSMTPSink}}
	})
	Register("Grum", func(env *Env) containment.Decider {
		return &Grum{Spambot{base: base{env, "Grum"}, sink: SvcBannerSMTPSink}}
	})
	Register("Waledac", func(env *Env) containment.Decider {
		return &Waledac{Spambot{base: base{env, "Waledac"}, sink: SvcBannerSMTPSink}, false}
	})
	Register("WaledacTestSMTP", func(env *Env) containment.Decider {
		return &Waledac{Spambot{base: base{env, "WaledacTestSMTP"}, sink: SvcBannerSMTPSink}, true}
	})
	Register("MegaD", func(env *Env) containment.Decider {
		return &MegaD{Spambot{base: base{env, "MegaD"}, sink: SvcSMTPSink}}
	})
	Register("Storm", func(env *Env) containment.Decider { return &Storm{base{env, "Storm"}} })
	Register("Clickbot", func(env *Env) containment.Decider { return &Clickbot{base{env, "Clickbot"}} })
	Register("WormCapture", func(env *Env) containment.Decider { return &WormCapture{base{env, "WormCapture"}} })
}

type base struct {
	env  *Env
	name string
}

// Name implements containment.Decider.
func (b *base) Name() string { return b.name }

// reflectTo builds a REFLECT decision toward a named service, preserving
// the original destination port unless the service declares its own.
func (b *base) reflectTo(svc string, req *shim.Request, ann string) containment.Decision {
	loc := b.env.Service(svc)
	port := loc.Port
	if port == 0 {
		port = req.RespPort
	}
	if loc.Addr == 0 {
		// No sink configured: hard deny rather than leak.
		return containment.Decision{Verdict: shim.Drop, Annotation: "no sink for " + svc}
	}
	return containment.Decision{Verdict: shim.Reflect, RespIP: loc.Addr, RespPort: port, Annotation: ann}
}

// autoinfection intercepts flows to the (virtual) auto-infection server and
// serves the next sample by impersonation (§6.6). All policies that operate
// using auto-infection derive from this behaviour.
func (b *base) autoinfection(req *shim.Request) (containment.Decision, bool) {
	ai := b.env.Service(SvcAutoinfect)
	if ai.IsZero() || req.RespIP != ai.Addr || req.RespPort != ai.Port {
		return containment.Decision{}, false
	}
	if b.env.Samples == nil {
		return containment.Decision{Verdict: shim.Drop, Annotation: "autoinfection without samples"}, true
	}
	sample, ok := b.env.Samples.NextSample(req.VLAN)
	if !ok {
		return containment.Decision{Verdict: shim.Drop, Annotation: "sample batch exhausted"}, true
	}
	return containment.Decision{
		Verdict:    shim.Rewrite,
		Annotation: "autoinfection " + sample.MD5,
		Handler:    NewAutoinfectHandler(sample),
	}, true
}

// inbound reports whether the flow's initiator is outside the farm.
func (b *base) inbound(req *shim.Request) bool {
	return !b.env.InternalPrefix.Contains(req.OrigIP)
}

// DefaultDeny is the §3 starting point: reflect everything to the
// catch-all sink so the specimen comes alive enough to observe, while
// nothing reaches the outside world.
type DefaultDeny struct{ base }

// Decide implements containment.Decider.
func (p *DefaultDeny) Decide(req *shim.Request) containment.Decision {
	if dec, ok := p.autoinfection(req); ok {
		return dec
	}
	return p.reflectTo(SvcCatchAllSink, req, "default-deny reflection")
}

// HardDeny drops everything — complete containment, no observation.
type HardDeny struct{ base }

// Decide implements containment.Decider.
func (p *HardDeny) Decide(req *shim.Request) containment.Decision {
	return containment.Decision{Verdict: shim.Drop, Annotation: "hard deny"}
}

// AllowAll forwards everything. It exists for calibration experiments and
// must never be applied to a live specimen.
type AllowAll struct{ base }

// Decide implements containment.Decider.
func (p *AllowAll) Decide(req *shim.Request) containment.Decision {
	return containment.Decision{Verdict: shim.Forward, Annotation: "uncontained (calibration only)"}
}

// Spambot is the spambot base class: all outbound SMTP is reflected to a
// (configurable-fidelity) SMTP sink; everything else falls to the
// catch-all; auto-infection is honoured.
type Spambot struct {
	base
	sink string // which SMTP sink service this family needs
}

// Decide implements containment.Decider.
func (p *Spambot) Decide(req *shim.Request) containment.Decision {
	if dec, ok := p.autoinfection(req); ok {
		return dec
	}
	if req.RespPort == 25 {
		ann := "full SMTP containment"
		if p.sink == SvcSMTPSink {
			ann = "simple SMTP containment"
		}
		if p.env.NotifySink != nil {
			p.env.NotifySink(p.sink, req.OrigIP, req.RespIP)
		}
		return p.reflectTo(p.sink, req, ann)
	}
	return p.reflectTo(SvcCatchAllSink, req, "non-C&C containment")
}

// Rustock (Fig. 7): C&C rides HTTPS (forwarded — it is the bot's lifeline)
// and HTTP (rewritten through the C&C filter); spam goes to the simple
// SMTP sink.
type Rustock struct{ Spambot }

// Decide implements containment.Decider.
func (p *Rustock) Decide(req *shim.Request) containment.Decision {
	if dec, ok := p.autoinfection(req); ok {
		return dec
	}
	switch req.RespPort {
	case 443:
		return containment.Decision{Verdict: shim.Forward, Annotation: "C&C"}
	case 80:
		return containment.Decision{
			Verdict: shim.Rewrite, Annotation: "C&C filtering",
			Handler: NewCCFilterHandler(),
		}
	}
	return p.Spambot.Decide(req)
}

// Grum (Fig. 7): C&C is plain HTTP to a known host; everything else is
// contained; its SMTP engine is banner-sensitive, so spam reflects to the
// banner-grabbing sink.
type Grum struct{ Spambot }

// Decide implements containment.Decider.
func (p *Grum) Decide(req *shim.Request) containment.Decision {
	cc := p.env.CC("Grum")
	if !cc.IsZero() && req.RespIP == cc.Addr && req.RespPort == cc.Port {
		return containment.Decision{Verdict: shim.Forward, Annotation: "C&C"}
	}
	return p.Spambot.Decide(req)
}

// Waledac reflects SMTP to the banner-grabbing sink. The testSMTP variant
// reproduces the §7.1 "mysterious blacklisting": a single seemingly
// innocuous test message to a GMail server is forwarded — which sufficed
// for the CBL to list the inmates, because the bots' recognisable
// HELO (wergvan) was fingerprinted at the receiving side.
type Waledac struct {
	Spambot
	allowTestSMTP bool
}

// Decide implements containment.Decider.
func (p *Waledac) Decide(req *shim.Request) containment.Decision {
	if p.allowTestSMTP {
		if gmail := p.env.CC("GMailMX"); !gmail.IsZero() &&
			req.RespIP == gmail.Addr && req.RespPort == gmail.Port {
			return containment.Decision{Verdict: shim.Forward, Annotation: "test SMTP exchange"}
		}
	}
	return p.Spambot.Decide(req)
}

// MegaD uses a custom-port binary C&C protocol.
type MegaD struct{ Spambot }

// Decide implements containment.Decider.
func (p *MegaD) Decide(req *shim.Request) containment.Decision {
	cc := p.env.CC("MegaD")
	if !cc.IsZero() && req.RespIP == cc.Addr && req.RespPort == cc.Port {
		return containment.Decision{Verdict: shim.Forward, Annotation: "C&C"}
	}
	return p.Spambot.Decide(req)
}

// Storm contains the C&C-relaying proxy bots from the middle of the Storm
// hierarchy (§7.1 "unexpected visitors"): outside reachability is
// preserved (the requirement for their becoming relay agents), the
// HTTP-borne C&C protocol is forwarded, and all other outgoing activity is
// redirected to the standard sink server — which is how the FTP iframe-
// injection jobs were discovered.
type Storm struct{ base }

// Decide implements containment.Decider.
func (p *Storm) Decide(req *shim.Request) containment.Decision {
	if dec, ok := p.autoinfection(req); ok {
		return dec
	}
	if p.inbound(req) {
		return containment.Decision{Verdict: shim.Forward, Annotation: "proxy reachability"}
	}
	if req.RespPort == 80 {
		return containment.Decision{Verdict: shim.Forward, Annotation: "HTTP-borne C&C"}
	}
	return p.reflectTo(SvcCatchAllSink, req, "non-C&C containment")
}

// Clickbot steers click-fraud HTTP to the HTTP sink while keeping the C&C
// channel alive for analysis.
type Clickbot struct{ base }

// Decide implements containment.Decider.
func (p *Clickbot) Decide(req *shim.Request) containment.Decision {
	if dec, ok := p.autoinfection(req); ok {
		return dec
	}
	cc := p.env.CC("Clickbot")
	if !cc.IsZero() && req.RespIP == cc.Addr && req.RespPort == cc.Port {
		return containment.Decision{
			Verdict: shim.Rewrite, Annotation: "C&C filtering",
			Handler: NewCCFilterHandler(),
		}
	}
	if req.RespPort == 80 {
		return p.reflectTo(SvcHTTPSink, req, "click traffic containment")
	}
	return p.reflectTo(SvcCatchAllSink, req, "non-C&C containment")
}

// WormCapture is the original honeyfarm containment: outbound propagation
// attempts are redirected to additional analysis machines in the farm, so
// infection chains stay internal (§2, Potemkin-style).
type WormCapture struct{ base }

// Decide implements containment.Decider.
func (p *WormCapture) Decide(req *shim.Request) containment.Decision {
	if dec, ok := p.autoinfection(req); ok {
		return dec
	}
	if p.inbound(req) {
		// The traditional honeyfarm model: external traffic directly
		// infects honeypot machines (§4 "infection strategy").
		return containment.Decision{Verdict: shim.Forward, Annotation: "honeypot exposure"}
	}
	if p.env.Victims != nil {
		if victim, ok := p.env.Victims.VictimFor(req.VLAN, req.RespIP); ok {
			return containment.Decision{
				Verdict: shim.Redirect,
				RespIP:  victim, RespPort: req.RespPort,
				Annotation: "propagation redirected to victim",
			}
		}
	}
	return p.reflectTo(SvcCatchAllSink, req, "no victim available")
}
