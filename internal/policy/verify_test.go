package policy

import (
	"strings"
	"testing"

	"gq/internal/containment"
	"gq/internal/netstack"
	"gq/internal/shim"
)

func prober(env *Env) *Prober {
	return &Prober{Cases: DefaultCases(env), Rules: StandardSafetyRules(env)}
}

func TestVerifyBuiltinPoliciesAreSafe(t *testing.T) {
	env := testEnv()
	for _, name := range []string{
		"DefaultDeny", "HardDeny", "SpambotBase",
		"Rustock", "Grum", "Waledac", "MegaD", "Storm", "Clickbot", "WormCapture",
	} {
		d, err := New(name, env)
		if err != nil {
			t.Fatal(err)
		}
		vs, counts := prober(env).Verify(d)
		if len(vs) != 0 {
			t.Errorf("policy %s:\n%s", name, Report(name, vs, counts))
		}
		// Every probe got a verdict.
		total := 0
		for _, n := range counts {
			total += n
		}
		if total != len(DefaultCases(env)) {
			t.Errorf("policy %s: %d verdicts for %d probes", name, total, len(DefaultCases(env)))
		}
	}
}

func TestVerifyCatchesUnsafePolicy(t *testing.T) {
	env := testEnv()
	vs, counts := prober(env).Verify(leakyPolicy{})
	if len(vs) == 0 {
		t.Fatal("the prober blessed a policy that forwards raw SMTP")
	}
	text := Report("Leaky", vs, counts)
	if !strings.Contains(text, "SAFETY VIOLATIONS") || !strings.Contains(text, "no raw SMTP") {
		t.Fatalf("report:\n%s", text)
	}
}

// leakyPolicy forwards everything — the §3 anti-pattern.
type leakyPolicy struct{}

func (leakyPolicy) Name() string { return "Leaky" }
func (leakyPolicy) Decide(req *shim.Request) containment.Decision {
	return containment.Decision{Verdict: shim.Forward}
}

func TestVerifyWaledacTestSMTPDocumentsTheIncident(t *testing.T) {
	// The §7.1 blacklisting policy: the prober flags exactly the test-SMTP
	// exception when the GMail MX is not registered as a known C&C (i.e.
	// the analyst forgot to whitelist the exception in the rules).
	env := testEnv()
	d, _ := New("WaledacTestSMTP", env)
	// The safety rules come from an auditor who does NOT consider GMail a
	// sanctioned C&C endpoint — the situation the farm was actually in.
	auditEnv := testEnv()
	auditEnv.CCHosts = map[string]AddrPort{"Grum": env.CC("Grum")}
	p := &Prober{Cases: DefaultCases(env), Rules: StandardSafetyRules(auditEnv)}
	// Add the GMail MX as an explicit probe target.
	p.Cases = append(p.Cases, ProbeCase{
		Desc: "test SMTP to GMail",
		Req: shim.Request{
			OrigIP: netstack.MustParseAddr("10.0.0.23"), OrigPort: 1234,
			RespIP: env.CC("GMailMX").Addr, RespPort: 25, VLAN: 20,
		},
	})
	vs, _ := p.Verify(d)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Case.Desc, "GMail") && v.Verdict == shim.Forward {
			found = true
		}
	}
	if !found {
		t.Fatal("the prober should flag the forwarded test SMTP — the exact hole that got the farm blacklisted")
	}
}
