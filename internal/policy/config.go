// Package policy provides GQ's containment policies: the configuration file
// format of Fig. 6, a registry of codified policies (Python classes in the
// paper, Go types here) arranged in the §6.2 hierarchy — a default-deny
// base, endpoint-control specialisations, a spambot base that reflects all
// outbound SMTP, and per-family refinements — plus the content-control
// handlers (auto-infection serving, C&C filtering).
package policy

import (
	"fmt"
	"path"
	"strconv"
	"strings"

	"gq/internal/containment"
	"gq/internal/netstack"
)

// AddrPort locates a service.
type AddrPort struct {
	Addr netstack.Addr
	Port uint16
}

// IsZero reports whether the location is unset.
func (ap AddrPort) IsZero() bool { return ap.Addr == 0 && ap.Port == 0 }

// String renders "addr:port".
func (ap AddrPort) String() string { return fmt.Sprintf("%s:%d", ap.Addr, ap.Port) }

// VLANRule is one "[VLAN lo-hi]" section: which policy contains those
// inmates, which samples to infect them with, and any activity triggers.
type VLANRule struct {
	Lo, Hi    uint16
	Decider   string
	Infection string // glob over sample names, e.g. rustock.100921.*.exe
	Triggers  []*containment.Trigger
}

// Config is a parsed containment server configuration file. It serves four
// purposes (§6.2): initial policy assignment per inmate, the malware
// binaries to infect inmates with, activity triggers, and the locations of
// infrastructure services in the subfarm.
type Config struct {
	VLANRules []VLANRule
	Services  map[string]AddrPort
}

// Service returns a named service location (zero value if absent).
func (c *Config) Service(name string) AddrPort { return c.Services[name] }

// RuleFor returns the first VLAN rule with a decider covering vlan.
func (c *Config) RuleFor(vlan uint16) (VLANRule, bool) {
	for _, r := range c.VLANRules {
		if vlan >= r.Lo && vlan <= r.Hi && r.Decider != "" {
			return r, true
		}
	}
	return VLANRule{}, false
}

// TriggersFor collects triggers from every section covering vlan.
func (c *Config) TriggersFor(vlan uint16) []*containment.Trigger {
	var out []*containment.Trigger
	for _, r := range c.VLANRules {
		if vlan >= r.Lo && vlan <= r.Hi {
			out = append(out, r.Triggers...)
		}
	}
	return out
}

// Parse reads the Fig. 6 configuration format.
func Parse(text string) (*Config, error) {
	cfg := &Config{Services: make(map[string]AddrPort)}
	var vlanRule *VLANRule // current [VLAN ...] section
	var svcName string     // current service section
	var svc AddrPort

	flushSvc := func() {
		if svcName != "" {
			cfg.Services[svcName] = svc
			svcName, svc = "", AddrPort{}
		}
	}
	flushVLAN := func() {
		if vlanRule != nil {
			cfg.VLANRules = append(cfg.VLANRules, *vlanRule)
			vlanRule = nil
		}
	}

	for lineno, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("policy: line %d: unterminated section %q", lineno+1, line)
			}
			flushSvc()
			flushVLAN()
			name := strings.TrimSpace(line[1 : len(line)-1])
			if strings.HasPrefix(strings.ToUpper(name), "VLAN ") {
				lo, hi, err := parseVLANRange(name[5:])
				if err != nil {
					return nil, fmt.Errorf("policy: line %d: %v", lineno+1, err)
				}
				vlanRule = &VLANRule{Lo: lo, Hi: hi}
			} else {
				svcName = name
			}
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return nil, fmt.Errorf("policy: line %d: expected key = value, got %q", lineno+1, line)
		}
		key := strings.TrimSpace(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		switch {
		case vlanRule != nil:
			switch key {
			case "Decider":
				vlanRule.Decider = val
			case "Infection":
				vlanRule.Infection = val
			case "Trigger":
				tr, err := containment.ParseTrigger(val)
				if err != nil {
					return nil, fmt.Errorf("policy: line %d: %v", lineno+1, err)
				}
				vlanRule.Triggers = append(vlanRule.Triggers, tr)
			default:
				return nil, fmt.Errorf("policy: line %d: unknown VLAN key %q", lineno+1, key)
			}
		case svcName != "":
			switch key {
			case "Address":
				a, err := netstack.ParseAddr(val)
				if err != nil {
					return nil, fmt.Errorf("policy: line %d: %v", lineno+1, err)
				}
				svc.Addr = a
			case "Port":
				p, err := strconv.Atoi(val)
				if err != nil || p < 0 || p > 65535 {
					return nil, fmt.Errorf("policy: line %d: bad port %q", lineno+1, val)
				}
				svc.Port = uint16(p)
			default:
				return nil, fmt.Errorf("policy: line %d: unknown service key %q", lineno+1, key)
			}
		default:
			return nil, fmt.Errorf("policy: line %d: assignment outside any section", lineno+1)
		}
	}
	flushSvc()
	flushVLAN()
	return cfg, nil
}

func parseVLANRange(s string) (uint16, uint16, error) {
	s = strings.TrimSpace(s)
	lo, hi := s, s
	if dash := strings.IndexByte(s, '-'); dash >= 0 {
		lo, hi = strings.TrimSpace(s[:dash]), strings.TrimSpace(s[dash+1:])
	}
	l, err := strconv.Atoi(lo)
	if err != nil {
		return 0, 0, fmt.Errorf("bad VLAN range %q", s)
	}
	h, err := strconv.Atoi(hi)
	if err != nil {
		return 0, 0, fmt.Errorf("bad VLAN range %q", s)
	}
	if l < 1 || h > int(netstack.MaxVLAN) || l > h {
		return 0, 0, fmt.Errorf("VLAN range %q out of order or bounds", s)
	}
	return uint16(l), uint16(h), nil
}

// MatchSample reports whether a sample name matches an Infection glob.
func MatchSample(glob, name string) bool {
	ok, err := path.Match(glob, name)
	return err == nil && ok
}
