package policy

import (
	"gq/internal/containment"
	"gq/internal/obs"
	"gq/internal/shim"
)

// Instrumented wraps a containment.Decider with per-policy counters:
// policy.<name>.decisions counts every verdict the policy issues and
// policy.<name>.drops the subset that denied the flow. Cluster members
// running the same policy share counters (registration is idempotent), so
// the series describes the logical policy, not a server instance.
type Instrumented struct {
	d         containment.Decider
	decisions *obs.Counter
	drops     *obs.Counter
}

// Instrument wraps d with registry-backed decision counters. A nil decider
// passes through untouched.
func Instrument(d containment.Decider, reg *obs.Registry) containment.Decider {
	if d == nil {
		return nil
	}
	pfx := "policy." + d.Name() + "."
	return &Instrumented{
		d:         d,
		decisions: reg.Counter(pfx + "decisions"),
		drops:     reg.Counter(pfx + "drops"),
	}
}

// Name implements containment.Decider.
func (i *Instrumented) Name() string { return i.d.Name() }

// Decide implements containment.Decider.
func (i *Instrumented) Decide(req *shim.Request) containment.Decision {
	dec := i.d.Decide(req)
	i.decisions.Inc()
	// A zero verdict is hardened to DROP by the server (see Server.decide),
	// so count it as a drop here too.
	if dec.Verdict == 0 || dec.Verdict.Has(shim.Drop) {
		i.drops.Inc()
	}
	return dec
}
