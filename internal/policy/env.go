package policy

import (
	"fmt"
	"sort"

	"gq/internal/containment"
	"gq/internal/netstack"
)

// Well-known service names used in configuration files and by the built-in
// policies.
const (
	SvcCatchAllSink   = "CatchAllSink"
	SvcSMTPSink       = "SmtpSink"
	SvcBannerSMTPSink = "BannerSmtpSink"
	SvcHTTPSink       = "HttpSink"
	SvcAutoinfect     = "Autoinfect"
)

// Sample is a malware specimen servable by auto-infection.
type Sample struct {
	Name    string
	Content []byte
	MD5     string // hex digest of Content, shown in activity reports
	// Family keys the behaviour model the inmate instantiates on
	// execution (consumed by internal/malware).
	Family string
}

// SampleProvider hands out the next specimen for an inmate; batches are
// served sequentially (§6.6).
type SampleProvider interface {
	NextSample(vlan uint16) (*Sample, bool)
}

// VictimPool allocates redirect targets for worm-capture containment: an
// outbound propagation attempt is steered to a fresh victim inmate.
type VictimPool interface {
	// VictimFor returns the internal address of the inmate that should
	// receive a propagation attempt from vlan toward dst.
	VictimFor(vlan uint16, dst netstack.Addr) (netstack.Addr, bool)
}

// Env supplies policies with their subfarm context.
type Env struct {
	// Services locates the subfarm's sinks and virtual servers.
	Services map[string]AddrPort
	// InternalPrefix distinguishes outbound from inbound initiators.
	InternalPrefix netstack.Prefix
	// CCHosts names each family's known C&C endpoints, learned during
	// iterative policy development.
	CCHosts map[string]AddrPort
	// Samples provides auto-infection content; may be nil.
	Samples SampleProvider
	// Victims provides worm-redirect targets; may be nil.
	Victims VictimPool
	// NotifySink, when set, tells a sink which real target an inmate's
	// reflected flow was intended for (the banner-grabbing sink needs
	// this). service is the sink's service name.
	NotifySink func(service string, inmate, target netstack.Addr)
}

// Service looks up a service location.
func (e *Env) Service(name string) AddrPort {
	if e.Services == nil {
		return AddrPort{}
	}
	return e.Services[name]
}

// CC looks up a family C&C endpoint.
func (e *Env) CC(family string) AddrPort {
	if e.CCHosts == nil {
		return AddrPort{}
	}
	return e.CCHosts[family]
}

// Factory builds a policy decider bound to an environment.
type Factory func(env *Env) containment.Decider

var registry = map[string]Factory{}

// Register adds a named policy factory. Duplicate registration panics:
// policies are wired at init time.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("policy: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New instantiates a registered policy.
func New(name string, env *Env) (containment.Decider, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q", name)
	}
	return f(env), nil
}

// Names lists registered policies, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
