package policy

import (
	"strings"
	"testing"

	"gq/internal/netstack"
	"gq/internal/shim"
)

// fig6 is the exact configuration snippet from the paper's Fig. 6.
const fig6 = `[VLAN 16-17]
Decider = Rustock
Infection = rustock.100921.*.exe

[VLAN 18-19]
Decider = Grum
Infection = grum.100818.*.exe

[VLAN 16-19]
Trigger = *:25/tcp / 30min < 1 -> revert

[Autoinfect]
Address = 10.9.8.7
Port = 6543

[BannerSmtpSink]
Address = 10.3.1.4
Port = 2526
`

func TestParseFig6(t *testing.T) {
	cfg, err := Parse(fig6)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.VLANRules) != 3 {
		t.Fatalf("%d VLAN rules", len(cfg.VLANRules))
	}
	r, ok := cfg.RuleFor(16)
	if !ok || r.Decider != "Rustock" || r.Infection != "rustock.100921.*.exe" {
		t.Fatalf("rule for 16: %+v", r)
	}
	if r, _ := cfg.RuleFor(19); r.Decider != "Grum" {
		t.Fatalf("rule for 19: %+v", r)
	}
	for _, vlan := range []uint16{16, 17, 18, 19} {
		trs := cfg.TriggersFor(vlan)
		if len(trs) != 1 || trs[0].Action != "revert" {
			t.Fatalf("triggers for %d: %v", vlan, trs)
		}
	}
	if cfg.Service("Autoinfect") != (AddrPort{netstack.MustParseAddr("10.9.8.7"), 6543}) {
		t.Fatalf("autoinfect %v", cfg.Service("Autoinfect"))
	}
	if cfg.Service("BannerSmtpSink") != (AddrPort{netstack.MustParseAddr("10.3.1.4"), 2526}) {
		t.Fatalf("banner sink %v", cfg.Service("BannerSmtpSink"))
	}
	if _, ok := cfg.RuleFor(20); ok {
		t.Fatal("rule for uncovered VLAN")
	}
}

func TestParseRejectsBadConfigs(t *testing.T) {
	bad := []string{
		"Decider = X",                   // assignment outside section
		"[VLAN 5-3]\nDecider = X",       // inverted range
		"[VLAN 0-3]\nDecider = X",       // VLAN 0
		"[VLAN a-b]\nDecider = X",       // non-numeric
		"[VLAN 1-2]\nBogus = X",         // unknown key
		"[VLAN 1-2]\nTrigger = garbage", // bad trigger
		"[Sink]\nAddress = not.an.ip",   // bad address
		"[Sink]\nPort = 99999",          // bad port
		"[Sink\nAddress = 10.0.0.1",     // unterminated section
		"[VLAN 1-2]\nDecider",           // no equals
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestParseCommentsAndSingleVLAN(t *testing.T) {
	cfg, err := Parse("# comment\n; also comment\n[VLAN 7]\nDecider = Storm\n")
	if err != nil {
		t.Fatal(err)
	}
	r, ok := cfg.RuleFor(7)
	if !ok || r.Lo != 7 || r.Hi != 7 || r.Decider != "Storm" {
		t.Fatalf("rule %+v", r)
	}
}

func TestMatchSample(t *testing.T) {
	if !MatchSample("rustock.100921.*.exe", "rustock.100921.001.exe") {
		t.Error("glob should match")
	}
	if MatchSample("rustock.100921.*.exe", "grum.100818.001.exe") {
		t.Error("glob should not match")
	}
}

func testEnv() *Env {
	return &Env{
		Services: map[string]AddrPort{
			SvcCatchAllSink:   {netstack.MustParseAddr("10.3.1.2"), 0},
			SvcSMTPSink:       {netstack.MustParseAddr("10.3.1.3"), 2525},
			SvcBannerSMTPSink: {netstack.MustParseAddr("10.3.1.4"), 2526},
			SvcHTTPSink:       {netstack.MustParseAddr("10.3.1.5"), 80},
			SvcAutoinfect:     {netstack.MustParseAddr("10.9.8.7"), 6543},
		},
		InternalPrefix: netstack.MustParsePrefix("10.0.0.0/16"),
		CCHosts: map[string]AddrPort{
			"Grum":    {netstack.MustParseAddr("50.8.207.91"), 80},
			"MegaD":   {netstack.MustParseAddr("198.51.100.77"), 4560},
			"GMailMX": {netstack.MustParseAddr("172.217.0.25"), 25},
		},
		Samples: func() SampleProvider {
			bp := NewBatchProvider(true)
			bp.Assign(16, []*Sample{NewSample("rustock.100921.001.exe", "rustock", []byte("MZ1"))})
			return bp
		}(),
	}
}

func req(vlan uint16, src, dst string, dport uint16) *shim.Request {
	return &shim.Request{
		OrigIP: netstack.MustParseAddr(src), OrigPort: 1234,
		RespIP: netstack.MustParseAddr(dst), RespPort: dport,
		VLAN: vlan,
	}
}

func TestDefaultDenyReflectsToCatchAll(t *testing.T) {
	d, err := New("DefaultDeny", testEnv())
	if err != nil {
		t.Fatal(err)
	}
	dec := d.Decide(req(16, "10.0.0.23", "203.0.113.5", 6667))
	if dec.Verdict != shim.Reflect || dec.RespIP != netstack.MustParseAddr("10.3.1.2") || dec.RespPort != 6667 {
		t.Fatalf("decision %+v", dec)
	}
}

func TestDefaultDenyWithoutSinkDrops(t *testing.T) {
	env := testEnv()
	delete(env.Services, SvcCatchAllSink)
	d, _ := New("DefaultDeny", env)
	dec := d.Decide(req(16, "10.0.0.23", "203.0.113.5", 80))
	if dec.Verdict != shim.Drop {
		t.Fatalf("missing sink must fail closed, got %v", dec.Verdict)
	}
}

func TestSpambotBaseReflectsSMTP(t *testing.T) {
	d, _ := New("SpambotBase", testEnv())
	dec := d.Decide(req(16, "10.0.0.23", "203.0.113.25", 25))
	if dec.Verdict != shim.Reflect || dec.RespIP != netstack.MustParseAddr("10.3.1.3") || dec.RespPort != 2525 {
		t.Fatalf("decision %+v", dec)
	}
}

func TestRustockPolicy(t *testing.T) {
	d, _ := New("Rustock", testEnv())
	// HTTPS C&C forwarded.
	if dec := d.Decide(req(16, "10.0.0.23", "203.0.113.5", 443)); dec.Verdict != shim.Forward {
		t.Fatalf("https: %+v", dec)
	}
	// HTTP C&C rewritten.
	if dec := d.Decide(req(16, "10.0.0.23", "203.0.113.5", 80)); !dec.Verdict.Has(shim.Rewrite) || dec.Handler == nil {
		t.Fatalf("http: %+v", dec)
	}
	// SMTP reflected to the simple sink.
	if dec := d.Decide(req(16, "10.0.0.23", "203.0.113.25", 25)); dec.Verdict != shim.Reflect ||
		dec.RespIP != netstack.MustParseAddr("10.3.1.3") {
		t.Fatalf("smtp: %+v", dec)
	}
	// Autoinfection rewritten with the sample digest in the annotation.
	dec := d.Decide(req(16, "10.0.0.23", "10.9.8.7", 6543))
	if !dec.Verdict.Has(shim.Rewrite) || !strings.HasPrefix(dec.Annotation, "autoinfection ") {
		t.Fatalf("autoinfect: %+v", dec)
	}
	// Everything else contained.
	if dec := d.Decide(req(16, "10.0.0.23", "203.0.113.5", 21)); dec.Verdict != shim.Reflect {
		t.Fatalf("ftp: %+v", dec)
	}
}

func TestGrumPolicy(t *testing.T) {
	d, _ := New("Grum", testEnv())
	// Known C&C host forwarded.
	if dec := d.Decide(req(18, "10.0.0.24", "50.8.207.91", 80)); dec.Verdict != shim.Forward {
		t.Fatalf("cc: %+v", dec)
	}
	// Other HTTP contained.
	if dec := d.Decide(req(18, "10.0.0.24", "203.0.113.5", 80)); dec.Verdict != shim.Reflect {
		t.Fatalf("other http: %+v", dec)
	}
	// SMTP to the banner-grabbing sink.
	if dec := d.Decide(req(18, "10.0.0.24", "203.0.113.25", 25)); dec.RespIP != netstack.MustParseAddr("10.3.1.4") {
		t.Fatalf("smtp: %+v", dec)
	}
}

func TestWaledacVariants(t *testing.T) {
	strict, _ := New("Waledac", testEnv())
	loose, _ := New("WaledacTestSMTP", testEnv())
	gmail := req(20, "10.0.0.30", "172.217.0.25", 25)
	if dec := strict.Decide(gmail); dec.Verdict != shim.Reflect {
		t.Fatalf("strict should reflect even GMail: %+v", dec)
	}
	if dec := loose.Decide(gmail); dec.Verdict != shim.Forward {
		t.Fatalf("loose should forward the test message: %+v", dec)
	}
	other := req(20, "10.0.0.30", "203.0.113.25", 25)
	if dec := loose.Decide(other); dec.Verdict != shim.Reflect {
		t.Fatalf("loose must still contain ordinary spam: %+v", dec)
	}
}

func TestStormPolicy(t *testing.T) {
	d, _ := New("Storm", testEnv())
	// Inbound flows (external initiator) forwarded for reachability.
	in := &shim.Request{
		OrigIP: netstack.MustParseAddr("198.51.100.9"), OrigPort: 4000,
		RespIP: netstack.MustParseAddr("192.0.2.16"), RespPort: 8001, VLAN: 9,
	}
	if dec := d.Decide(in); dec.Verdict != shim.Forward {
		t.Fatalf("inbound: %+v", dec)
	}
	// Outbound HTTP C&C forwarded.
	if dec := d.Decide(req(9, "10.0.0.30", "203.0.113.5", 80)); dec.Verdict != shim.Forward {
		t.Fatalf("http: %+v", dec)
	}
	// Outbound FTP (the iframe-injection jobs) reflected to the sink.
	if dec := d.Decide(req(9, "10.0.0.30", "203.0.113.21", 21)); dec.Verdict != shim.Reflect {
		t.Fatalf("ftp: %+v", dec)
	}
}

type fakeVictims struct{ addr netstack.Addr }

func (f fakeVictims) VictimFor(vlan uint16, dst netstack.Addr) (netstack.Addr, bool) {
	if f.addr == 0 {
		return 0, false
	}
	return f.addr, true
}

func TestWormCapturePolicy(t *testing.T) {
	env := testEnv()
	env.Victims = fakeVictims{netstack.MustParseAddr("10.0.0.45")}
	d, _ := New("WormCapture", env)
	dec := d.Decide(req(11, "10.0.0.44", "203.0.113.99", 445))
	if dec.Verdict != shim.Redirect || dec.RespIP != netstack.MustParseAddr("10.0.0.45") || dec.RespPort != 445 {
		t.Fatalf("decision %+v", dec)
	}
	// Pool exhausted: fall back to the sink, never the real target.
	env.Victims = fakeVictims{}
	d, _ = New("WormCapture", env)
	if dec := d.Decide(req(11, "10.0.0.44", "203.0.113.99", 445)); dec.Verdict != shim.Reflect {
		t.Fatalf("fallback %+v", dec)
	}
}

func TestBatchProviderSequential(t *testing.T) {
	bp := NewBatchProvider(false)
	lib := []*Sample{
		NewSample("grum.100818.001.exe", "grum", []byte("A")),
		NewSample("grum.100818.002.exe", "grum", []byte("B")),
		NewSample("rustock.100921.001.exe", "rustock", []byte("C")),
	}
	n := bp.AssignMatching(18, "grum.100818.*.exe", lib)
	if n != 2 {
		t.Fatalf("matched %d", n)
	}
	s1, _ := bp.NextSample(18)
	s2, _ := bp.NextSample(18)
	if s1.Name != "grum.100818.001.exe" || s2.Name != "grum.100818.002.exe" {
		t.Fatalf("order %s %s", s1.Name, s2.Name)
	}
	if _, ok := bp.NextSample(18); ok {
		t.Fatal("non-repeat batch should exhaust")
	}
	if bp.Remaining(18) != 0 {
		t.Fatal("remaining wrong")
	}

	rp := NewBatchProvider(true)
	rp.Assign(16, lib[:1])
	rp.NextSample(16)
	again, ok := rp.NextSample(16)
	if !ok || again.Name != lib[0].Name {
		t.Fatal("repeat provider should keep serving the last sample")
	}
}

func TestSampleMD5(t *testing.T) {
	s := NewSample("x.exe", "x", []byte("hello"))
	if s.MD5 != "5d41402abc4b2a76b9719d911017c592" {
		t.Fatalf("md5 %s", s.MD5)
	}
}

func TestCCFilterForbiddenDirectives(t *testing.T) {
	h := NewCCFilterHandler()
	for _, line := range []string{"DDOS 1.2.3.4", "ddos 1.2.3.4", "UPDATE http://x/y.exe", "EXEC cmd"} {
		if !h.forbidden(line) {
			t.Errorf("%q should be forbidden", line)
		}
	}
	for _, line := range []string{"TEMPLATE abc", "TARGET a@b.com", "SLEEP 60", "DDOSX notreally"} {
		if h.forbidden(line) {
			t.Errorf("%q should pass", line)
		}
	}
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := []string{"DefaultDeny", "Grum", "Rustock", "Storm", "WormCapture"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("policy %q not registered (have %v)", w, names)
		}
	}
	if _, err := New("NoSuchPolicy", testEnv()); err == nil {
		t.Error("unknown policy accepted")
	}
}
