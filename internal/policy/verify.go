package policy

import (
	"fmt"
	"sort"
	"strings"

	"gq/internal/containment"
	"gq/internal/netstack"
	"gq/internal/shim"
)

// This file implements the paper's stated future work (§4 "verifiable
// containment", §8): "a traffic generation tool that can automatically
// produce test cases for a given concrete containment policy would
// strengthen confidence in the policy's correctness significantly."
//
// Prober enumerates a matrix of synthetic flow four-tuples (the paper's
// endpoint-control domain), runs them through a decider, and checks the
// verdicts against declarative safety rules.

// ProbeCase is one synthetic flow presented to a policy.
type ProbeCase struct {
	Desc string
	Req  shim.Request
}

// Rule is a declarative safety assertion over a policy's behaviour.
type Rule struct {
	Desc string
	// Match selects the probes the rule applies to.
	Match func(req *shim.Request) bool
	// Allowed lists the acceptable verdict bits for matching probes; a
	// verdict is acceptable if every set bit is in Allowed.
	Allowed shim.Verdict
}

// Violation records a probe whose verdict broke a rule.
type Violation struct {
	Case    ProbeCase
	Verdict shim.Verdict
	Rule    string
}

// Prober drives the verification.
type Prober struct {
	// Cases to present; DefaultCases() if empty.
	Cases []ProbeCase
	// Rules to enforce.
	Rules []Rule
}

// DefaultCases builds the standard probe matrix: the well-known service
// ports crossed with inside/outside initiators and representative
// destinations.
func DefaultCases(env *Env) []ProbeCase {
	inside := netstack.MustParseAddr("10.0.0.23")
	outside := netstack.MustParseAddr("198.51.100.200")
	dests := []struct {
		name string
		addr netstack.Addr
	}{
		{"random-external", netstack.MustParseAddr("203.0.113.77")},
		{"another-external", netstack.MustParseAddr("198.51.100.1")},
	}
	if cc := env.CC("Grum"); !cc.IsZero() {
		dests = append(dests, struct {
			name string
			addr netstack.Addr
		}{"known-cc", cc.Addr})
	}
	ports := []uint16{21, 22, 23, 25, 53, 80, 110, 135, 139, 143, 443, 445, 587, 1080, 3389, 6667, 8080, 31337}
	var cases []ProbeCase
	for _, d := range dests {
		for _, port := range ports {
			cases = append(cases, ProbeCase{
				Desc: fmt.Sprintf("outbound to %s:%d (%s)", d.addr, port, d.name),
				Req: shim.Request{
					OrigIP: inside, OrigPort: 1234,
					RespIP: d.addr, RespPort: port, VLAN: 16, NoncePort: 40000,
				},
			})
		}
	}
	// Inbound probes: an external initiator reaching the inmate's global
	// address.
	for _, port := range []uint16{25, 80, 445, 8001} {
		cases = append(cases, ProbeCase{
			Desc: fmt.Sprintf("inbound to inmate port %d", port),
			Req: shim.Request{
				OrigIP: outside, OrigPort: 4000,
				RespIP: netstack.MustParseAddr("192.0.2.16"), RespPort: port,
				VLAN: 16, NoncePort: 40001,
			},
		})
	}
	// Auto-infection.
	if ai := env.Service(SvcAutoinfect); !ai.IsZero() {
		cases = append(cases, ProbeCase{
			Desc: "auto-infection fetch",
			Req: shim.Request{
				OrigIP: inside, OrigPort: 1235,
				RespIP: ai.Addr, RespPort: ai.Port, VLAN: 16, NoncePort: 40002,
			},
		})
	}
	return cases
}

// StandardSafetyRules encode the farm's non-negotiables: raw SMTP must
// never be forwarded to arbitrary destinations, exploit-prone ports must
// never leave the farm, and every flow must receive SOME verdict.
func StandardSafetyRules(env *Env) []Rule {
	isKnownCC := func(req *shim.Request) bool {
		for _, cc := range env.CCHosts {
			if req.RespIP == cc.Addr && req.RespPort == cc.Port {
				return true
			}
		}
		return false
	}
	return []Rule{
		{
			Desc: "no raw SMTP to the Internet",
			Match: func(req *shim.Request) bool {
				return req.RespPort == 25 && env.InternalPrefix.Contains(req.OrigIP) && !isKnownCC(req)
			},
			Allowed: shim.Reflect | shim.Redirect | shim.Drop | shim.Rewrite | shim.Limit,
		},
		{
			Desc: "no exploit ports to the Internet",
			Match: func(req *shim.Request) bool {
				switch req.RespPort {
				case 135, 139, 445, 3389:
					return env.InternalPrefix.Contains(req.OrigIP)
				}
				return false
			},
			Allowed: shim.Reflect | shim.Redirect | shim.Drop | shim.Rewrite | shim.Limit,
		},
	}
}

// Verify runs every case through the decider and returns violations plus
// a verdict histogram for the coverage report.
func (p *Prober) Verify(d containment.Decider) ([]Violation, map[shim.Verdict]int) {
	hist := make(map[shim.Verdict]int)
	var out []Violation
	for _, c := range p.Cases {
		req := c.Req
		dec := d.Decide(&req)
		v := dec.Verdict
		if v == 0 {
			v = shim.Drop // the server's fail-closed default
		}
		hist[v]++
		for _, rule := range p.Rules {
			if !rule.Match(&req) {
				continue
			}
			if v&^rule.Allowed != 0 {
				out = append(out, Violation{Case: c, Verdict: v, Rule: rule.Desc})
			}
		}
	}
	return out, hist
}

// Report renders a human-readable verification summary.
func Report(policyName string, violations []Violation, hist map[shim.Verdict]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Containment verification for policy %s\n", policyName)
	keys := make([]int, 0, len(hist))
	for v := range hist {
		keys = append(keys, int(v))
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-20s %d probes\n", shim.Verdict(k), hist[shim.Verdict(k)])
	}
	if len(violations) == 0 {
		b.WriteString("  no safety violations\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %d SAFETY VIOLATIONS:\n", len(violations))
	for _, v := range violations {
		fmt.Fprintf(&b, "    %s -> %s breaks %q\n", v.Case.Desc, v.Verdict, v.Rule)
	}
	return b.String()
}
