package report

import (
	"strings"
	"testing"
	"time"

	"gq/internal/netstack"
	"gq/internal/shim"
	"gq/internal/sim"
)

func tcpPacket(vlan uint16, src netstack.Addr, sport uint16, dst netstack.Addr, dport uint16, flags uint8, payload string) *netstack.Packet {
	return &netstack.Packet{
		Eth:     netstack.Ethernet{VLAN: vlan, EtherType: netstack.EtherTypeIPv4},
		IP:      &netstack.IPv4{Src: src, Dst: dst, TTL: 64, Protocol: netstack.ProtoTCP},
		TCP:     &netstack.TCP{SrcPort: sport, DstPort: dport, Flags: flags},
		Payload: []byte(payload),
	}
}

func TestSMTPAnalyzerCountsSessions(t *testing.T) {
	a := NewSMTPAnalyzer()
	inmate := netstack.MustParseAddr("10.0.0.23")
	mx := netstack.MustParseAddr("203.0.113.25")

	// Client SYN, server banner, DATA go-ahead, acceptance.
	a.Tap(tcpPacket(16, inmate, 1234, mx, 25, netstack.FlagSYN, ""))
	a.Tap(tcpPacket(16, mx, 25, inmate, 1234, netstack.FlagACK, "220 mx ESMTP\r\n"))
	a.Tap(tcpPacket(16, mx, 25, inmate, 1234, netstack.FlagACK, "250 Hello\r\n"))
	a.Tap(tcpPacket(16, mx, 25, inmate, 1234, netstack.FlagACK, "354 End data\r\n"))
	a.Tap(tcpPacket(16, mx, 25, inmate, 1234, netstack.FlagACK, "250 OK queued\r\n"))
	// Second DATA in the same session.
	a.Tap(tcpPacket(16, mx, 25, inmate, 1234, netstack.FlagACK, "354 End data\r\n250 OK\r\n"))

	st := a.PerInmate[inmate]
	if st == nil || st.Sessions != 1 || st.DataTransfers != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSMTPAnalyzerRejectedDataNotCounted(t *testing.T) {
	a := NewSMTPAnalyzer()
	inmate := netstack.MustParseAddr("10.0.0.23")
	mx := netstack.MustParseAddr("203.0.113.25")
	a.Tap(tcpPacket(16, mx, 25, inmate, 1234, netstack.FlagACK, "220 mx\r\n"))
	a.Tap(tcpPacket(16, mx, 25, inmate, 1234, netstack.FlagACK, "354 go\r\n"))
	a.Tap(tcpPacket(16, mx, 25, inmate, 1234, netstack.FlagACK, "554 rejected\r\n"))
	st := a.PerInmate[inmate]
	if st.DataTransfers != 0 {
		t.Fatalf("rejected DATA counted: %+v", st)
	}
}

func TestSMTPAnalyzerFlowCleanup(t *testing.T) {
	a := NewSMTPAnalyzer()
	inmate := netstack.MustParseAddr("10.0.0.23")
	mx := netstack.MustParseAddr("203.0.113.25")
	a.Tap(tcpPacket(16, inmate, 1234, mx, 25, netstack.FlagSYN, ""))
	a.Tap(tcpPacket(16, mx, 25, inmate, 1234, netstack.FlagACK, "220 mx\r\n"))
	a.Tap(tcpPacket(16, inmate, 1234, mx, 25, netstack.FlagFIN|netstack.FlagACK, ""))
	if len(a.flows) != 0 {
		t.Fatalf("flow state leaked: %d entries", len(a.flows))
	}
	// A fresh connection on the same tuple is a new session.
	a.Tap(tcpPacket(16, mx, 25, inmate, 1234, netstack.FlagACK, "220 mx\r\n"))
	if a.PerInmate[inmate].Sessions != 2 {
		t.Fatalf("sessions %d", a.PerInmate[inmate].Sessions)
	}
}

func TestShimAnalyzer(t *testing.T) {
	a := NewShimAnalyzer()
	req := &shim.Request{
		OrigIP: netstack.MustParseAddr("10.0.0.23"), OrigPort: 1234,
		RespIP: netstack.MustParseAddr("203.0.113.5"), RespPort: 80,
		VLAN: 16, NoncePort: 40000,
	}
	p := tcpPacket(16, netstack.MustParseAddr("10.0.0.23"), 1234,
		netstack.MustParseAddr("10.3.0.1"), 6666, netstack.FlagACK, "")
	p.Payload = req.Marshal()
	a.Tap(p)
	// Non-shim payloads are ignored.
	a.Tap(tcpPacket(16, 1, 1, 2, 2, netstack.FlagACK, "GET / HTTP/1.1\r\n\r\npadpadpadpad"))
	if a.RequestsByVLAN[16] != 1 || len(a.Requests) != 1 {
		t.Fatalf("analyzer %+v", a.RequestsByVLAN)
	}
	if a.Requests[0].NoncePort != 40000 {
		t.Fatalf("decoded %+v", a.Requests[0])
	}
}

func TestCBL(t *testing.T) {
	s := sim.New(1)
	c := NewCBL(s)
	addr := netstack.MustParseAddr("192.0.2.16")
	if c.Listed(addr) {
		t.Fatal("empty list matched")
	}
	c.List(addr, "wergvan HELO")
	c.List(addr, "duplicate reason ignored")
	if !c.Listed(addr) || c.ListedCount() != 1 {
		t.Fatal("listing broken")
	}
	if c.Reasons[addr] != "wergvan HELO" {
		t.Fatalf("reason %q", c.Reasons[addr])
	}
}

func TestReporterRotation(t *testing.T) {
	s := sim.New(1)
	r := &Reporter{Sim: s}
	tk := r.StartRotation(time.Hour)
	s.RunFor(3*time.Hour + time.Minute)
	tk.Stop()
	if len(r.Reports) != 3 {
		t.Fatalf("%d rotated reports, want 3 (hourly)", len(r.Reports))
	}
	for _, rep := range r.Reports {
		if !strings.Contains(rep, "Inmate Activity") {
			t.Fatal("rotated report malformed")
		}
	}
}

func TestAnonymization(t *testing.T) {
	r := &Reporter{Anonymize: true}
	if got := r.globalString(netstack.MustParseAddr("192.0.2.170")); got != "xxx.yyy.2.170" {
		t.Fatalf("global %q", got)
	}
	// RFC 1918 addresses stay readable (the paper publishes them as-is).
	if got := r.globalString(netstack.MustParseAddr("10.3.9.241")); got != "10.3.9.241" {
		t.Fatalf("internal %q", got)
	}
	r.Anonymize = false
	if got := r.globalString(netstack.MustParseAddr("192.0.2.170")); got != "192.0.2.170" {
		t.Fatalf("unmasked %q", got)
	}
	if got := r.globalString(0); got != "?" {
		t.Fatalf("zero %q", got)
	}
}

func TestPortService(t *testing.T) {
	cases := map[uint16]string{25: "smtp", 80: "http", 443: "https", 21: "ftp", 53: "domain", 6543: "6543"}
	for port, want := range cases {
		row := &aggRow{port: port}
		if got := portService(row); got != want {
			t.Errorf("port %d -> %q, want %q", port, got, want)
		}
	}
	if portService(&aggRow{port: 25, mixedPort: true}) != "*" {
		t.Error("mixed ports should render *")
	}
}
