package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"gq/internal/gateway"
	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/shim"
	"gq/internal/sim"
)

// SubfarmSource names one subfarm's data feeds.
type SubfarmSource struct {
	Name   string
	Router *gateway.Router
	SMTP   *SMTPAnalyzer // may be nil
}

// Reporter assembles Fig. 7-style activity reports. Reports break down
// activity by subfarm, inmate, and containment decision, "allowing us to
// verify that the gateway enforces these decisions as expected".
type Reporter struct {
	Sim *sim.Simulator
	// Subfarms lists the active subfarms in display order.
	Subfarms []SubfarmSource
	// CBL, when set, is cross-checked against inmate global addresses.
	CBL *CBL
	// Anonymize masks the first two octets of global addresses (the paper
	// anonymises them as xxx.yyy in published reports).
	Anonymize bool
	// Obs, when set, appends a telemetry snapshot to each report and enables
	// CrossCheck against the registry counters.
	Obs *obs.Obs

	// Reports retains rotated report texts.
	Reports []string
}

// StartRotation emits a report every interval (Bro's log rotation drove
// hourly and daily reports).
func (r *Reporter) StartRotation(interval time.Duration) *sim.Ticker {
	return r.Sim.Every(interval, func() {
		r.Reports = append(r.Reports, r.Generate())
	})
}

// verdictOrder fixes section ordering in reports.
var verdictOrder = []shim.Verdict{shim.Forward, shim.Limit, shim.Drop, shim.Redirect, shim.Reflect, shim.Rewrite}

// aggRow is one "annotation -> target/port/#flows" line.
type aggRow struct {
	annotation string
	targets    map[netstack.Addr]bool
	port       uint16
	mixedPort  bool
	flows      int
}

// Generate renders the current activity report.
func (r *Reporter) Generate() string {
	var b strings.Builder
	b.WriteString("Inmate Activity\n===============\n\n")
	names := make([]string, len(r.Subfarms))
	for i, sf := range r.Subfarms {
		names[i] = sf.Name
	}
	fmt.Fprintf(&b, "Active subfarms: %s\n\n", strings.Join(names, ", "))

	for _, sf := range r.Subfarms {
		r.renderSubfarm(&b, sf)
	}
	if r.CBL != nil {
		r.renderBlacklist(&b)
	}
	if r.Obs != nil {
		b.WriteString("\n")
		r.Obs.Snapshot().WriteText(&b)
	}
	return b.String()
}

// CrossCheck verifies the registry counters against the reporter's
// independent per-flow records ("allowing us to verify that the gateway
// enforces these decisions as expected"). It returns one message per
// inconsistency; an empty result means the telemetry and the flow records
// agree exactly.
func (r *Reporter) CrossCheck() []string {
	if r.Obs == nil {
		return []string{"cross-check: no telemetry attached"}
	}
	snap := r.Obs.Snapshot()
	var problems []string
	for _, sf := range r.Subfarms {
		recs := sf.Router.Records()
		// A fail-closed record with a Policy went through a real verdict
		// before supervision killed it (counted by verdicts_applied AND
		// flows_failclosed); one without a Policy never got a verdict over
		// the wire — its Drop is synthetic, counted only by flows_failclosed.
		var adjudicated, preFC, postFC uint64
		for _, rec := range recs {
			switch {
			case rec.FailClosed && rec.Policy != "":
				postFC++
			case rec.FailClosed:
				preFC++
			case rec.Verdict != 0:
				adjudicated++
			}
		}
		pfx := "subfarm." + sf.Name + "."
		if got := snap.Counter(pfx + "flows_created"); got != uint64(len(recs)) {
			problems = append(problems, fmt.Sprintf(
				"%s: %sflows_created=%d but %d flow records", sf.Name, pfx, got, len(recs)))
		}
		if got := snap.Counter(pfx + "verdicts_applied"); got != adjudicated+postFC {
			problems = append(problems, fmt.Sprintf(
				"%s: %sverdicts_applied=%d but %d adjudicated flow records", sf.Name, pfx, got, adjudicated+postFC))
		}
		if got := snap.Counter(pfx + "flows_failclosed"); got != preFC+postFC {
			problems = append(problems, fmt.Sprintf(
				"%s: %sflows_failclosed=%d but %d fail-closed flow records", sf.Name, pfx, got, preFC+postFC))
		}
	}
	return problems
}

func (r *Reporter) renderSubfarm(b *strings.Builder, sf SubfarmSource) {
	cfg := sf.Router.Config()
	head := fmt.Sprintf("Subfarm '%s' [Containment server VLAN %d]", sf.Name, cfg.ContainmentVLAN)
	fmt.Fprintf(b, "%s\n%s\n\n", head, strings.Repeat("-", len(head)))

	// Group records per inmate VLAN.
	byVLAN := make(map[uint16][]*gateway.FlowRecord)
	for _, rec := range sf.Router.Records() {
		byVLAN[rec.VLAN] = append(byVLAN[rec.VLAN], rec)
	}
	vlans := make([]int, 0, len(byVLAN))
	for v := range byVLAN {
		vlans = append(vlans, int(v))
	}
	sort.Ints(vlans)

	for _, v := range vlans {
		vlan := uint16(v)
		recs := byVLAN[vlan]
		policy := dominantPolicy(recs)
		internal, _, _ := sf.Router.InmateByVLAN(vlan)
		global := netstack.Addr(0)
		if bnd := sf.Router.NAT().ByVLAN(vlan); bnd != nil {
			global = bnd.Global
		}
		head := fmt.Sprintf("%s [%s/%s, VLAN %d]", policy, r.globalString(global), internal, vlan)
		fmt.Fprintf(b, "%s\n%s\n", head, strings.Repeat("-", len(head)))

		rows := aggregate(recs)
		for _, verdict := range verdictOrder {
			vrows := rows[verdict]
			if len(vrows) == 0 {
				continue
			}
			fmt.Fprintf(b, "%s\n", verdict)
			keys := make([]string, 0, len(vrows))
			for k := range vrows {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				row := vrows[k]
				fmt.Fprintf(b, "- %-40s target          port    #flows\n", row.annotation)
				fmt.Fprintf(b, "  %-40s %-15s %-7s %d\n", "",
					r.targetString(row), portService(row), row.flows)
			}
		}
		if sf.SMTP != nil {
			if st, ok := sf.SMTP.PerInmate[internal]; ok {
				fmt.Fprintf(b, "\nSMTP sessions       %d\nSMTP DATA transfers %d\n", st.Sessions, st.DataTransfers)
			}
		}
		b.WriteString("\n")
	}
}

func (r *Reporter) renderBlacklist(b *strings.Builder) {
	var listed []string
	for _, sf := range r.Subfarms {
		for _, bnd := range sf.Router.NAT().Bindings() {
			if r.CBL.Listed(bnd.Global) {
				listed = append(listed, fmt.Sprintf("%s (VLAN %d): %s",
					r.globalString(bnd.Global), bnd.VLAN, r.CBL.Reasons[bnd.Global]))
			}
		}
	}
	if len(listed) == 0 {
		b.WriteString("Blacklist check: all inmate addresses clean\n")
		return
	}
	b.WriteString("WARNING: inmate addresses listed on CBL — possible containment failure:\n")
	for _, l := range listed {
		fmt.Fprintf(b, "  %s\n", l)
	}
}

// dominantPolicy picks the most frequent policy label among records.
func dominantPolicy(recs []*gateway.FlowRecord) string {
	counts := make(map[string]int)
	for _, rec := range recs {
		if rec.Policy != "" {
			counts[rec.Policy]++
		}
	}
	best, n := "(no policy)", 0
	for p, c := range counts {
		if c > n || (c == n && p < best) {
			best, n = p, c
		}
	}
	return best
}

// aggregate groups records into verdict -> annotation rows.
func aggregate(recs []*gateway.FlowRecord) map[shim.Verdict]map[string]*aggRow {
	out := make(map[shim.Verdict]map[string]*aggRow)
	for _, rec := range recs {
		if rec.Verdict == 0 {
			continue // never adjudicated (e.g. still in flight)
		}
		rows := out[rec.Verdict]
		if rows == nil {
			rows = make(map[string]*aggRow)
			out[rec.Verdict] = rows
		}
		ann := rec.Annotation
		if ann == "" {
			ann = "(unannotated)"
		}
		row := rows[ann]
		if row == nil {
			row = &aggRow{annotation: ann, targets: make(map[netstack.Addr]bool), port: rec.RespPort}
			rows[ann] = row
		}
		row.targets[rec.RespIP] = true
		if row.port != rec.RespPort {
			row.mixedPort = true
		}
		row.flows++
	}
	return out
}

func (r *Reporter) targetString(row *aggRow) string {
	if len(row.targets) != 1 {
		return "*.*.*.*"
	}
	for t := range row.targets {
		return r.globalString(t)
	}
	return "*.*.*.*"
}

// globalString renders an address, anonymising routable space when asked.
func (r *Reporter) globalString(a netstack.Addr) string {
	if a == 0 {
		return "?"
	}
	s := a.String()
	if r.Anonymize && !isRFC1918(a) {
		parts := strings.Split(s, ".")
		return "xxx.yyy." + parts[2] + "." + parts[3]
	}
	return s
}

func isRFC1918(a netstack.Addr) bool {
	return netstack.MustParsePrefix("10.0.0.0/8").Contains(a) ||
		netstack.MustParsePrefix("172.16.0.0/12").Contains(a) ||
		netstack.MustParsePrefix("192.168.0.0/16").Contains(a)
}

func portService(row *aggRow) string {
	if row.mixedPort {
		return "*"
	}
	switch row.port {
	case 25:
		return "smtp"
	case 80:
		return "http"
	case 443:
		return "https"
	case 21:
		return "ftp"
	case 53:
		return "domain"
	default:
		return fmt.Sprintf("%d", row.port)
	}
}
