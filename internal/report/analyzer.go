// Package report implements GQ's reporting component (§6.5). The paper's
// deployment used Bro with a custom analyzer for the shimming protocol and
// Bro's SMTP analyzer; here the same roles are filled by tap-fed analyzers
// that reassemble activity from the subfarm's packet stream, a blacklist
// cross-check, and a generator producing activity reports in the Fig. 7
// format, with hourly/daily rotation.
package report

import (
	"strings"
	"time"

	"gq/internal/netstack"
	"gq/internal/shim"
	"gq/internal/sim"
)

// SMTPStats aggregates one inmate's SMTP activity as seen on the wire.
type SMTPStats struct {
	Sessions      uint64 // greeted connections
	DataTransfers uint64 // completed DATA stages
}

// SMTPAnalyzer reconstructs SMTP session and DATA-transfer counts from the
// subfarm tap ("we leverage Bro's SMTP analyzer to track attempted and
// succeeding message delivery for our spambots"). It is deliberately
// independent of the sinks' own counters so reports verify enforcement
// rather than echo it.
type SMTPAnalyzer struct {
	// PerInmate keys stats by the inmate-side (internal) address.
	PerInmate map[netstack.Addr]*SMTPStats

	flows map[netstack.FlowKey]*smtpFlow
}

type smtpFlow struct {
	inmate      netstack.Addr
	greeted     bool
	dataPending bool
}

// NewSMTPAnalyzer creates an analyzer; attach Tap to a router tap.
func NewSMTPAnalyzer() *SMTPAnalyzer {
	return &SMTPAnalyzer{
		PerInmate: make(map[netstack.Addr]*SMTPStats),
		flows:     make(map[netstack.FlowKey]*smtpFlow),
	}
}

func (a *SMTPAnalyzer) stats(inmate netstack.Addr) *SMTPStats {
	st, ok := a.PerInmate[inmate]
	if !ok {
		st = &SMTPStats{}
		a.PerInmate[inmate] = st
	}
	return st
}

// Tap consumes one tapped packet (inmate-side addressing).
func (a *SMTPAnalyzer) Tap(p *netstack.Packet) {
	if p.TCP == nil || p.IP == nil {
		return
	}
	key, ok := p.FlowKey()
	if !ok {
		return
	}
	switch {
	case p.TCP.DstPort == 25:
		// Client direction.
		f := a.flows[key]
		if f == nil {
			f = &smtpFlow{inmate: p.IP.Src}
			a.flows[key] = f
		}
		if p.TCP.Flags&(netstack.FlagFIN|netstack.FlagRST) != 0 {
			delete(a.flows, key)
		}
	case p.TCP.SrcPort == 25:
		// Server direction: match the client-side key.
		rkey := key.Reverse()
		// The tap records egress with the inmate VLAN; align keys.
		f := a.flows[rkey]
		if f == nil {
			f = &smtpFlow{inmate: p.IP.Dst}
			a.flows[rkey] = f
		}
		a.serverLines(f, string(p.Payload))
		if p.TCP.Flags&(netstack.FlagFIN|netstack.FlagRST) != 0 {
			delete(a.flows, rkey)
		}
	}
}

func (a *SMTPAnalyzer) serverLines(f *smtpFlow, payload string) {
	for _, line := range strings.Split(payload, "\n") {
		line = strings.TrimSpace(line)
		if len(line) < 3 {
			continue
		}
		switch {
		case strings.HasPrefix(line, "220") && !f.greeted:
			f.greeted = true
			a.stats(f.inmate).Sessions++
		case strings.HasPrefix(line, "354"):
			f.dataPending = true
		case strings.HasPrefix(line, "250") && f.dataPending:
			f.dataPending = false
			a.stats(f.inmate).DataTransfers++
		case strings.HasPrefix(line, "4"), strings.HasPrefix(line, "5"):
			f.dataPending = false
		}
	}
}

// ShimAnalyzer tracks containment activity from the wire by decoding
// request shims on their way to the containment server — the direct
// counterpart of the paper's custom Bro analyzer for the shimming protocol.
type ShimAnalyzer struct {
	// RequestsByVLAN counts containment requests observed per inmate.
	RequestsByVLAN map[uint16]uint64
	// Requests retains the decoded shims (capped).
	Requests []shim.Request
	// Cap bounds retained shims (0 = keep all).
	Cap int
}

// NewShimAnalyzer creates an analyzer; attach Tap to a router tap.
func NewShimAnalyzer() *ShimAnalyzer {
	return &ShimAnalyzer{RequestsByVLAN: make(map[uint16]uint64)}
}

// Tap consumes one tapped packet.
func (a *ShimAnalyzer) Tap(p *netstack.Packet) {
	if p.TCP == nil && p.UDP == nil {
		return
	}
	payload := p.Payload
	if len(payload) < shim.RequestLen {
		return
	}
	req, err := shim.UnmarshalRequest(payload[:shim.RequestLen])
	if err != nil {
		return
	}
	a.RequestsByVLAN[req.VLAN]++
	if a.Cap == 0 || len(a.Requests) < a.Cap {
		a.Requests = append(a.Requests, *req)
	}
}

// CBL simulates the Composite Blocking List: third-party infrastructure
// (like the GMail MX's HELO fingerprinting) reports sender addresses, and
// the farm cross-checks its inmates' global addresses against the list —
// a listing being "a strong indication of a possible containment failure"
// (§7.1).
type CBL struct {
	sim    *sim.Simulator
	listed map[netstack.Addr]time.Duration
	// Reasons records why each address was listed.
	Reasons map[netstack.Addr]string
}

// NewCBL creates an empty blacklist.
func NewCBL(s *sim.Simulator) *CBL {
	return &CBL{
		sim:     s,
		listed:  make(map[netstack.Addr]time.Duration),
		Reasons: make(map[netstack.Addr]string),
	}
}

// List adds an address with a reason.
func (c *CBL) List(a netstack.Addr, reason string) {
	if _, dup := c.listed[a]; !dup {
		c.listed[a] = c.sim.Now()
		c.Reasons[a] = reason
	}
}

// Listed reports whether an address is on the blacklist.
func (c *CBL) Listed(a netstack.Addr) bool {
	_, ok := c.listed[a]
	return ok
}

// ListedCount returns the number of listed addresses.
func (c *CBL) ListedCount() int { return len(c.listed) }
