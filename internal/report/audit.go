package report

import (
	"fmt"

	"gq/internal/netstack"
	"gq/internal/shim"
	"gq/internal/trace"
)

// TraceAudit summarises gateway datapath activity derived purely from
// on-the-wire evidence in a subfarm packet trace. It is the reporting-side
// counterpart of the gateway's own telemetry: because it reconstructs the
// same quantities from an independent observation point (the trace tap), it
// can cross-check the registry counters instead of echoing them.
type TraceAudit struct {
	// FlowsCreated is the number of distinct flows the gateway admitted:
	// each TCP flow manifests as a redirected SYN toward the containment
	// server, each UDP flow as a shim-wrapped datagram with a distinct
	// request tuple.
	FlowsCreated uint64
	// Verdicts is the number of distinct containment response shims
	// observed coming back from the containment server.
	Verdicts uint64
	// RequestShims counts request shims on the wire before deduplication
	// (rewrite-proxied UDP flows re-wrap every datagram).
	RequestShims uint64
}

// tcpSynKey identifies one TCP flow incarnation: reverted inmates reuse
// ephemeral ports, but a fresh incarnation carries a fresh ISN.
type tcpSynKey struct {
	src   netstack.Addr
	sport uint16
	seq   uint32
}

// verdictKey identifies one adjudicated flow on the response path.
type verdictKey struct {
	dst   netstack.Addr
	dport uint16
	seq   uint32 // TCP stream position; 0 for UDP (nonce port disambiguates)
	udp   bool
}

// AuditTrace derives flow-level counters from a subfarm trace (as written
// by a Router tap, e.g. gqfarm -trace). csIP/csPort name the containment
// endpoint; for clustered subfarms pass each member's address in csIPs.
func AuditTrace(recs []trace.Record, csPort uint16, csIPs ...netstack.Addr) TraceAudit {
	isCS := func(a netstack.Addr) bool {
		for _, c := range csIPs {
			if a == c {
				return true
			}
		}
		return false
	}

	var a TraceAudit
	tcpFlows := make(map[tcpSynKey]bool)
	udpFlows := make(map[shim.Request]bool)
	verdicts := make(map[verdictKey]bool)

	for _, rec := range recs {
		p, err := netstack.ParseFrame(rec.Frame)
		if err != nil || p.IP == nil {
			continue
		}
		switch {
		case p.TCP != nil && p.TCP.DstPort == csPort && isCS(p.IP.Dst):
			// Initiator -> CS. A pure SYN opens leg 1 of exactly one flow.
			if p.TCP.Flags&(netstack.FlagSYN|netstack.FlagACK) == netstack.FlagSYN {
				tcpFlows[tcpSynKey{p.IP.Src, p.TCP.SrcPort, p.TCP.Seq}] = true
			}
			if req := parseRequestShim(p.Payload); req != nil {
				a.RequestShims++
			}

		case p.TCP != nil && p.TCP.SrcPort == csPort && isCS(p.IP.Src):
			// CS -> initiator. The verdict travels as a response shim at the
			// head of the stream; retransmissions repeat the sequence number.
			if resp := parseResponseShim(p.Payload); resp != nil {
				verdicts[verdictKey{p.IP.Dst, p.TCP.DstPort, p.TCP.Seq, false}] = true
			}

		case p.UDP != nil && p.UDP.DstPort == csPort && isCS(p.IP.Dst):
			// Shim-wrapped datagram toward the CS: the request tuple (which
			// includes the per-flow nonce port) identifies the flow even when
			// rewrite proxying re-wraps every datagram.
			if req := parseRequestShim(p.Payload); req != nil {
				a.RequestShims++
				udpFlows[*req] = true
			}

		case p.UDP != nil && p.UDP.SrcPort == csPort && isCS(p.IP.Src):
			// CS reply: response shim addressed to the flow's nonce port.
			if resp := parseResponseShim(p.Payload); resp != nil {
				verdicts[verdictKey{p.IP.Dst, p.UDP.DstPort, 0, true}] = true
			}
		}
	}

	a.FlowsCreated = uint64(len(tcpFlows) + len(udpFlows))
	a.Verdicts = uint64(len(verdicts))
	return a
}

// parseRequestShim decodes a request shim at the head of payload, nil if
// the bytes are not a shim request.
func parseRequestShim(payload []byte) *shim.Request {
	if len(payload) < shim.RequestLen {
		return nil
	}
	req, err := shim.UnmarshalRequest(payload[:shim.RequestLen])
	if err != nil {
		return nil
	}
	return req
}

// parseResponseShim decodes a response shim at the head of payload, nil if
// the bytes are not a shim response.
func parseResponseShim(payload []byte) *shim.Response {
	if len(payload) < shim.ResponseMinLen {
		return nil
	}
	resp, _, err := shim.UnmarshalResponse(payload)
	if err != nil {
		return nil
	}
	return resp
}

// String renders the audit compactly.
func (a TraceAudit) String() string {
	return fmt.Sprintf("report.TraceAudit{%d flows, %d verdicts, %d request shims}",
		a.FlowsCreated, a.Verdicts, a.RequestShims)
}
