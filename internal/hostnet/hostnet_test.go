package hostnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"gq/internal/host"
	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/sim"
)

// pair builds two hosts on one switch and returns their stacks.
func pair(seed int64) (*sim.Simulator, *Stack, *Stack) {
	s := sim.New(seed)
	sw := netsim.NewSwitch(s, "sw")
	a := host.New(s, "a", netstack.MAC{2, 0, 0, 0, 0, 1})
	b := host.New(s, "b", netstack.MAC{2, 0, 0, 0, 0, 2})
	netsim.Connect(sw.AddAccessPort("a", 10), a.NIC(), time.Millisecond)
	netsim.Connect(sw.AddAccessPort("b", 10), b.NIC(), time.Millisecond)
	a.ConfigureStatic(netstack.MustParseAddr("10.0.0.1"), 24, 0)
	b.ConfigureStatic(netstack.MustParseAddr("10.0.0.2"), 24, 0)
	return s, New(a), New(b)
}

// echoProc listens on port, accepts one connection and echoes until EOF.
// It runs as a proc body: Listen executes in proc context before the
// first park, so no pump is needed for setup.
func echoProc(t *testing.T, s *Stack, port uint16) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		ln, err := s.Listen(port)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		conn, err := ln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := conn.Read(buf)
			if n > 0 {
				if _, werr := conn.Write(buf[:n]); werr != nil {
					t.Errorf("echo write: %v", werr)
					return
				}
			}
			if err == io.EOF {
				conn.Close()
				ln.Close()
				return
			}
			if err != nil {
				t.Errorf("echo read: %v", err)
				return
			}
		}
	}
}

// TestProcEcho drives a blocking echo session entirely with coupled
// procs under plain Run: the facade's deterministic path.
func TestProcEcho(t *testing.T) {
	s, sa, sb := pair(1)
	s.Go("server", echoProc(t, sb, 7))

	var got []byte
	var readErr error
	s.Go("client", func(p *sim.Proc) {
		conn, err := sa.Dial(netstack.MustParseAddr("10.0.0.2"), 7)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for i := 0; i < 3; i++ {
			msg := fmt.Sprintf("ping-%d", i)
			if _, err := conn.Write([]byte(msg)); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(conn, buf); err != nil {
				t.Errorf("read: %v", err)
				return
			}
			got = append(got, buf...)
			p.Sleep(10 * time.Millisecond) // interleave with virtual time
		}
		conn.Close()
		// Read after local close must fail with net.ErrClosed.
		_, readErr = conn.Read(make([]byte, 1))
	})
	s.Run()
	if string(got) != "ping-0ping-1ping-2" {
		t.Fatalf("echo got %q", got)
	}
	if !errors.Is(readErr, net.ErrClosed) {
		t.Fatalf("read after close: %v, want net.ErrClosed", readErr)
	}
}

// TestProcEchoDeterministic runs the same proc workload twice and
// demands identical (virtual time, payload) traces: the rendezvous
// discipline must leave no room for scheduling noise.
func TestProcEchoDeterministic(t *testing.T) {
	run := func() []string {
		s, sa, sb := pair(7)
		s.Go("server", echoProc(t, sb, 7))
		var trace []string
		s.Go("client", func(p *sim.Proc) {
			conn, err := sa.Dial(netstack.MustParseAddr("10.0.0.2"), 7)
			if err != nil {
				return
			}
			for i := 0; i < 5; i++ {
				fmt.Fprintf(conn, "m%d", i)
				buf := make([]byte, 2)
				io.ReadFull(conn, buf)
				trace = append(trace, fmt.Sprintf("%v:%s", s.Now(), buf))
				p.Sleep(time.Duration(i) * 3 * time.Millisecond)
			}
			conn.Close()
		})
		s.Run()
		return trace
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("facade proc traces diverged:\n%v\n%v", a, b)
	}
	if len(a) != 5 {
		t.Fatalf("trace incomplete: %v", a)
	}
}

// TestShardedFacadeDeterministic puts a proc-driven facade echo pair in
// every domain of a sharded simulation and checks traces are identical
// at 1 and 2 workers.
func TestShardedFacadeDeterministic(t *testing.T) {
	run := func(workers int) []string {
		root := sim.New(11)
		c := sim.NewCoordinator(root, 0, workers)
		traces := make([][]string, 3)
		for i := 0; i < 3; i++ {
			i := i
			d := c.NewDomain()
			sw := netsim.NewSwitch(d, "sw")
			a := host.New(d, fmt.Sprintf("a%d", i), netstack.MAC{2, 0, 0, byte(i), 0, 1})
			b := host.New(d, fmt.Sprintf("b%d", i), netstack.MAC{2, 0, 0, byte(i), 0, 2})
			netsim.Connect(sw.AddAccessPort("a", 10), a.NIC(), time.Millisecond)
			netsim.Connect(sw.AddAccessPort("b", 10), b.NIC(), time.Millisecond)
			a.ConfigureStatic(netstack.MustParseAddr("10.0.0.1"), 24, 0)
			b.ConfigureStatic(netstack.MustParseAddr("10.0.0.2"), 24, 0)
			sa, sb := New(a), New(b)
			d.Go("server", echoProc(t, sb, 7))
			d.Go("client", func(p *sim.Proc) {
				p.Sleep(time.Duration(i) * 5 * time.Millisecond)
				conn, err := sa.Dial(netstack.MustParseAddr("10.0.0.2"), 7)
				if err != nil {
					return
				}
				for k := 0; k < 4; k++ {
					fmt.Fprintf(conn, "x%d", k)
					buf := make([]byte, 2)
					io.ReadFull(conn, buf)
					traces[i] = append(traces[i], fmt.Sprintf("d%d:%v:%s", i, d.Now(), buf))
					p.Sleep(7 * time.Millisecond)
				}
				conn.Close()
			})
		}
		c.RunUntil(30 * time.Second)
		var all []string
		for _, tr := range traces {
			all = append(all, tr...)
		}
		return all
	}
	one, two := run(1), run(2)
	if fmt.Sprint(one) != fmt.Sprint(two) {
		t.Fatalf("sharded facade diverged between 1 and 2 workers:\n%v\n%v", one, two)
	}
	if len(one) != 12 {
		t.Fatalf("expected 12 echo round trips, got %d: %v", len(one), one)
	}
}

// TestReadDeadline pins deadline semantics: a Read past the virtual
// deadline fails with os.ErrDeadlineExceeded at exactly the armed
// instant, and clearing the deadline makes the conn usable again.
func TestReadDeadline(t *testing.T) {
	s, sa, sb := pair(2)
	s.Go("mute-server", func(p *sim.Proc) {
		// Accept and hold the conn open without ever writing.
		ln, err := sb.Listen(9)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		p.Sleep(10 * time.Minute)
	})
	var deadlineErr error
	var expiredAt time.Duration
	var isTimeout bool
	s.Go("client", func(p *sim.Proc) {
		conn, err := sa.Dial(netstack.MustParseAddr("10.0.0.2"), 9)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		start := s.Now()
		conn.SetReadDeadline(sim.Epoch.Add(start + 50*time.Millisecond))
		_, deadlineErr = conn.Read(make([]byte, 1))
		expiredAt = s.Now() - start
		var ne net.Error
		isTimeout = errors.As(deadlineErr, &ne) && ne.Timeout()
		conn.SetReadDeadline(time.Time{}) // clear: next read blocks again
		conn.SetReadDeadline(sim.Epoch.Add(s.Now() + 20*time.Millisecond))
		_, err = conn.Read(make([]byte, 1))
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Errorf("second deadline read: %v", err)
		}
		conn.Close()
	})
	s.Run()
	if !errors.Is(deadlineErr, os.ErrDeadlineExceeded) {
		t.Fatalf("read returned %v, want os.ErrDeadlineExceeded", deadlineErr)
	}
	if !isTimeout {
		t.Fatal("deadline error does not satisfy net.Error.Timeout()")
	}
	if expiredAt != 50*time.Millisecond {
		t.Fatalf("deadline fired after %v, want exactly 50ms of virtual time", expiredAt)
	}
}

// TestHalfCloseEOF pins EOF propagation: client sends a request and
// half-closes; the server reads to EOF, responds on its still-open half,
// and the client drains the response before its own EOF.
func TestHalfCloseEOF(t *testing.T) {
	s, sa, sb := pair(3)
	s.Go("server", func(p *sim.Proc) {
		ln, err := sb.Listen(80)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		req, err := io.ReadAll(conn) // drains until client FIN
		if err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		conn.Write([]byte("resp:" + string(req)))
		conn.Close()
	})
	var resp []byte
	var respErr error
	s.Go("client", func(p *sim.Proc) {
		conn, err := sa.Dial(netstack.MustParseAddr("10.0.0.2"), 80)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		conn.Write([]byte("query"))
		conn.(*Conn).hc.Close() // half-close the raw send side; keep reading via the facade
		resp, respErr = io.ReadAll(conn)
		conn.Close()
	})
	s.Run()
	if respErr != nil {
		t.Fatalf("client read: %v", respErr)
	}
	if string(resp) != "resp:query" {
		t.Fatalf("response %q", resp)
	}
}

// TestFacadeSimultaneousClose: both ends close in the same virtual
// instant (FINs cross, CLOSING -> TIME_WAIT path) and both procs see
// clean shutdowns; no connection leaks after TIME_WAIT expires.
func TestFacadeSimultaneousClose(t *testing.T) {
	s, sa, sb := pair(4)
	var server net.Conn
	s.Go("server", func(p *sim.Proc) {
		ln, err := sb.Listen(80)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		server, _ = ln.Accept()
	})
	var client net.Conn
	s.Go("client", func(p *sim.Proc) {
		client, _ = sa.Dial(netstack.MustParseAddr("10.0.0.2"), 80)
	})
	s.RunFor(5 * time.Second)
	if client == nil || server == nil {
		t.Fatal("connection not established")
	}
	// Close both ends without running the sim in between: the FINs cross
	// in flight.
	s.Go("closerA", func(p *sim.Proc) { client.Close() })
	s.Go("closerB", func(p *sim.Proc) { server.Close() })
	s.RunFor(time.Minute)
	if n := sa.Host().Conns(); n != 0 {
		t.Fatalf("client host leaks %d conns after simultaneous close", n)
	}
	if n := sb.Host().Conns(); n != 0 {
		t.Fatalf("server host leaks %d conns after simultaneous close", n)
	}
	var readErr error
	s.Go("reader", func(p *sim.Proc) { _, readErr = client.Read(make([]byte, 1)) })
	if !errors.Is(readErr, net.ErrClosed) {
		t.Fatalf("client read after close: %v", readErr)
	}
}

// TestDialRefused: a SYN to a closed port draws RST and Dial fails with
// a reset error, not a hang.
func TestDialRefused(t *testing.T) {
	s, sa, _ := pair(5)
	var dialErr error
	s.Go("client", func(p *sim.Proc) {
		_, dialErr = sa.Dial(netstack.MustParseAddr("10.0.0.2"), 81)
	})
	s.Run()
	if !errors.Is(dialErr, host.ErrConnReset) {
		t.Fatalf("dial to closed port: %v, want connection reset", dialErr)
	}
	var oe *net.OpError
	if !errors.As(dialErr, &oe) || oe.Op != "dial" {
		t.Fatalf("dial error not a net.OpError: %#v", dialErr)
	}
}

// TestBlockingCallInsideEventPanics pins the discipline guard: facade
// calls from event callbacks would deadlock the loop and must panic.
func TestBlockingCallInsideEventPanics(t *testing.T) {
	s, sa, sb := pair(6)
	var conn net.Conn
	s.Go("server", func(p *sim.Proc) {
		ln, err := sb.Listen(80)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		c, _ := ln.Accept()
		defer c.Close()
		p.Sleep(time.Minute)
	})
	s.Go("client", func(p *sim.Proc) {
		conn, _ = sa.Dial(netstack.MustParseAddr("10.0.0.2"), 80)
	})
	s.RunFor(5 * time.Second)
	if conn == nil {
		t.Fatal("no conn")
	}
	var recovered any
	s.Schedule(0, func() {
		defer func() { recovered = recover() }()
		conn.Read(make([]byte, 1))
	})
	s.RunFor(time.Second)
	if recovered == nil {
		t.Fatal("blocking Read inside an event callback did not panic")
	}
}

// TestStdlibHTTPRoundTrip is the tentpole's acceptance core at package
// level: an unmodified net/http server on one host, an unmodified
// http.Client on another, aliens bridged by Inject and driven by Pump.
// Run under -race this also proves the detached path is properly
// synchronized.
func TestStdlibHTTPRoundTrip(t *testing.T) {
	s, sa, sb := pair(8)
	var done atomic.Bool
	var body []byte
	var status int
	var httpErr error
	go func() {
		defer done.Store(true)
		// Everything here is detached: each facade call is injected into
		// the pumping loop below.
		ln, err := sb.Listen(80)
		if err != nil {
			httpErr = err
			return
		}
		srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, "hello %s from %s", r.URL.Path, r.RemoteAddr)
		})}
		go srv.Serve(ln)
		defer srv.Close()

		client := &http.Client{Transport: &http.Transport{
			DialContext:       sa.DialContext,
			DisableKeepAlives: true,
		}}
		resp, err := client.Get("http://10.0.0.2:80/greeting")
		if err != nil {
			httpErr = err
			return
		}
		body, httpErr = io.ReadAll(resp.Body)
		resp.Body.Close()
		status = resp.StatusCode
	}()
	if ok := s.Pump(time.Hour, done.Load); !ok {
		t.Fatal("Pump deadline before HTTP round trip finished")
	}
	if httpErr != nil {
		t.Fatalf("http: %v", httpErr)
	}
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	if string(body) != "hello /greeting from 10.0.0.1:32768" {
		t.Fatalf("body %q", body)
	}
}

// TestDialContextCancel: cancelling the context mid-handshake aborts a
// detached dial. The cancel is triggered at a fixed virtual instant from
// the Pump predicate, long before SYN retransmissions are exhausted.
func TestDialContextCancel(t *testing.T) {
	s := sim.New(9)
	sw := netsim.NewSwitch(s, "sw")
	a := host.New(s, "a", netstack.MAC{2, 0, 0, 0, 0, 1})
	netsim.Connect(sw.AddAccessPort("a", 10), a.NIC(), time.Millisecond)
	a.ConfigureStatic(netstack.MustParseAddr("10.0.0.1"), 24, 0)
	sa := New(a)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Bool
	var dialErr error
	go func() {
		defer done.Store(true)
		// 10.0.0.99 does not exist: ARP never resolves, the SYN just
		// retries. Only the cancel can end this dial early.
		_, dialErr = sa.DialContext(ctx, "tcp", "10.0.0.99:80")
	}()
	cancelled := false
	s.Pump(10*time.Minute, func() bool {
		if !cancelled && s.Now() >= 2*time.Second {
			cancelled = true
			cancel()
		}
		return done.Load()
	})
	if !done.Load() {
		t.Fatal("dial did not return")
	}
	if !errors.Is(dialErr, context.Canceled) {
		t.Fatalf("cancelled dial returned %v, want context.Canceled", dialErr)
	}
}
