package hostnet

import (
	"io"
	"net"
	"os"
	"time"

	"gq/internal/host"
	"gq/internal/sim"
)

// Conn implements net.Conn over a host.Conn. All fields below the raw
// connection are mutated only in loop context (events, or facade calls
// with the loop suspended), so they need no lock: the loop/proc handoff
// and the Inject channel handshake provide the ordering.
type Conn struct {
	stack *Stack
	hc    *host.Conn

	q   waitQ
	buf []byte // received, not yet Read

	connected bool  // reached ESTABLISHED
	eof       bool  // peer FIN seen (or clean teardown)
	closed    bool  // local Close called
	dead      bool  // OnClose fired: conn gone from the host
	termErr   error // abnormal teardown cause (reset, timeout)
	ctxErr    error // dial cancelled by context

	// Deadlines are absolute virtual times; a nil timer means none armed.
	rdAt, wrAt   time.Duration
	rdSet, wrSet bool
	rdTimer      *sim.Event
	wrTimer      *sim.Event
}

// newConn wires the facade callbacks. Must run in loop context, before
// any event can deliver data on hc.
func newConn(s *Stack, hc *host.Conn) *Conn {
	c := &Conn{stack: s, hc: hc}
	hc.OnConnect = func() {
		c.connected = true
		c.q.wake()
	}
	hc.OnData = func(d []byte) {
		c.buf = append(c.buf, d...)
		c.q.wake()
	}
	hc.OnPeerClose = func() {
		c.eof = true
		c.q.wake()
	}
	hc.OnClose = func(err error) {
		c.dead = true
		if err != nil {
			c.termErr = err
		} else {
			// Clean teardown implies the stream ended; pending readers
			// drain the buffer and then see EOF rather than an error.
			c.eof = true
		}
		c.q.wake()
	}
	return c
}

// Read blocks until data, EOF, an error, or the read deadline.
func (c *Conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	var n int
	var err error
	c.stack.block(&c.q, func() bool {
		switch {
		case len(c.buf) > 0:
			n = copy(p, c.buf)
			c.buf = c.buf[n:]
			if len(c.buf) == 0 {
				c.buf = nil
			}
			return true
		case c.closed:
			err = net.ErrClosed
			return true
		case c.termErr != nil:
			err = c.termErr
			return true
		case c.eof:
			err = io.EOF
			return true
		case c.rdSet && c.rdAt <= c.stack.s.Now():
			err = os.ErrDeadlineExceeded
			return true
		}
		return false
	})
	return n, c.opErr("read", err)
}

// Write queues data on the connection. The simulated stack buffers
// without backpressure, so Write does not block on window space; it
// fails once the connection is closed, reset, or past the write
// deadline.
func (c *Conn) Write(p []byte) (int, error) {
	var err error
	c.stack.run(func() {
		switch {
		case c.closed || (c.dead && c.termErr == nil):
			err = net.ErrClosed
		case c.termErr != nil:
			err = c.termErr
		case c.wrSet && c.wrAt <= c.stack.s.Now():
			err = os.ErrDeadlineExceeded
		default:
			c.hc.Write(p)
		}
	})
	if err != nil {
		return 0, c.opErr("write", err)
	}
	return len(p), nil
}

// Close starts a graceful shutdown and releases all blocked callers.
func (c *Conn) Close() error {
	c.stack.run(func() {
		if c.closed {
			return
		}
		c.closed = true
		if c.rdTimer != nil {
			c.rdTimer.Cancel()
		}
		if c.wrTimer != nil {
			c.wrTimer.Cancel()
		}
		if !c.dead {
			c.hc.Close()
		}
		c.q.wake()
	})
	return nil
}

// LocalAddr returns the local endpoint.
func (c *Conn) LocalAddr() net.Addr {
	return tcpAddr(c.stack.h.Addr(), c.hc.LocalPort())
}

// RemoteAddr returns the peer endpoint.
func (c *Conn) RemoteAddr() net.Addr {
	ip, port := c.hc.RemoteAddr()
	return tcpAddr(ip, port)
}

// SetDeadline sets both read and write deadlines.
func (c *Conn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)
	return c.SetWriteDeadline(t)
}

// SetReadDeadline sets the read deadline on the simulation clock (zero
// clears it). Pending and future Reads fail with os.ErrDeadlineExceeded
// once the virtual clock passes t. Deadlines derived from the real
// time.Now() land far beyond any experiment's virtual horizon and are
// effectively "no deadline" — compute deadlines from Stack.Clock.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.stack.run(func() {
		c.rdSet, c.rdAt, c.rdTimer = c.armDeadline(t, c.rdTimer)
	})
	return nil
}

// SetWriteDeadline sets the write deadline (zero clears it).
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.stack.run(func() {
		c.wrSet, c.wrAt, c.wrTimer = c.armDeadline(t, c.wrTimer)
	})
	return nil
}

// armDeadline cancels old and arms a wake-up at t's virtual time. Runs in
// loop context.
func (c *Conn) armDeadline(t time.Time, old *sim.Event) (bool, time.Duration, *sim.Event) {
	if old != nil {
		old.Cancel()
	}
	if t.IsZero() {
		return false, 0, nil
	}
	at := t.Sub(sim.Epoch)
	s := c.stack.s
	if at <= s.Now() {
		// Already expired: release current waiters immediately.
		c.q.wake()
		return true, at, nil
	}
	return true, at, s.Schedule(at-s.Now(), func() { c.q.wake() })
}

// opErr wraps non-sentinel errors the way the net package does, so
// callers matching on net.OpError or net.Error keep working. The
// sentinels (io.EOF, net.ErrClosed, os.ErrDeadlineExceeded) pass through
// untouched — wrapped by the caller-visible contract already.
func (c *Conn) opErr(op string, err error) error {
	if err == nil || err == io.EOF {
		return err
	}
	return &net.OpError{Op: op, Net: "tcp", Source: c.LocalAddr(), Addr: c.RemoteAddr(), Err: err}
}
