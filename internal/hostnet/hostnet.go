// Package hostnet is a blocking net.Conn / net.Listener / DialContext
// facade over the callback TCP stack in internal/host, modeled on the
// adapter layers real userspace stacks grow (a Listener/Connector pair
// plus a DialContext that drops into http.Transport). It is what lets an
// unmodified Go protocol library — stdlib net/http above all — run as a
// sink or a specimen inside the farm.
//
// The facade bridges two worlds with incompatible execution models. The
// simulator is a single-threaded event loop: host.Conn callbacks fire
// inside events and must never block. net.Conn callers are goroutines
// that expect Read to block until data arrives. The bridge offers two
// disciplines (DESIGN.md §3g):
//
//   - sim.Proc callers ("coupled"): the proc runs only while the event
//     loop is suspended, so facade calls touch connection state directly
//     and blocking is Park — resumed by the OnData/OnPeerClose/OnClose
//     events through a synchronized rendezvous. Fully deterministic,
//     works inside sharded domains, and is the only discipline allowed in
//     determinism-checked topologies.
//
//   - detached callers ("alien"): any other goroutine, including the ones
//     stdlib net/http spawns internally. Operations are Injected into the
//     simulator and the caller blocks on a channel; someone must drive
//     the loop with Simulator.Pump. Correct, race-free, but not
//     byte-deterministic — the OS scheduler decides when injections land
//     in virtual time.
//
// Calling a blocking facade operation from inside an event callback
// panics immediately: parking there would deadlock the simulation.
package hostnet

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"time"

	"gq/internal/host"
	"gq/internal/netstack"
	"gq/internal/sim"
)

// Stack adapts one host.Host to the net package's blocking interfaces.
type Stack struct {
	h *host.Host
	s *sim.Simulator
}

// New wraps h. Multiple Stacks over the same host are allowed (they share
// the host's port space).
func New(h *host.Host) *Stack {
	return &Stack{h: h, s: h.Sim()}
}

// Host returns the wrapped host.
func (s *Stack) Host() *host.Host { return s.h }

// Clock returns the current virtual time as an absolute timestamp
// (sim.Epoch based). Deadlines handed to SetDeadline are interpreted on
// this clock, so callers compute them as s.Clock().Add(timeout). It reads
// the simulator's shared clock mirror and is safe from any goroutine.
func (s *Stack) Clock() time.Time { return sim.Epoch.Add(s.s.ObservedNow()) }

// run executes fn with the event loop provably suspended: directly for a
// sim.Proc caller (the loop already waits on the proc), via Inject+wait
// for a detached caller. It panics when invoked from inside an event
// callback — fn is allowed to mutate connection state, and the callback
// path must use the raw host API instead.
func (s *Stack) run(fn func()) {
	if s.s.CallerProc() != nil {
		fn()
		return
	}
	if s.s.OnEventLoop() {
		panic("hostnet: blocking facade call from inside a simulator event callback (use a sim.Proc or the raw host API)")
	}
	done := make(chan struct{})
	s.s.Inject(func() {
		fn()
		close(done)
	})
	<-done
}

// waiter is one blocked caller: a coupled proc to Unpark, or a channel a
// detached goroutine waits on.
type waiter struct {
	p  *sim.Proc
	ch chan struct{}
}

// waitQ collects blocked callers of one conn or listener. Mutated only
// while the event loop is suspended or from loop events themselves.
type waitQ struct {
	ws []waiter
}

// wake releases every waiter. Procs are resumed immediately (they run to
// their next park while the loop is suspended); detached waiters get
// their channel closed and re-enter through Inject.
func (q *waitQ) wake() {
	ws := q.ws
	q.ws = nil
	for _, w := range ws {
		if w.p != nil {
			w.p.Unpark()
		} else {
			close(w.ch)
		}
	}
}

// block runs try with the loop suspended until it reports done, parking
// (proc) or channel-waiting (detached) on q between attempts. try runs in
// loop context and communicates results through captured variables.
func (s *Stack) block(q *waitQ, try func() bool) {
	if p := s.s.CallerProc(); p != nil {
		for !try() {
			q.ws = append(q.ws, waiter{p: p})
			p.Park()
		}
		return
	}
	if s.s.OnEventLoop() {
		panic("hostnet: blocking facade call from inside a simulator event callback (use a sim.Proc or the raw host API)")
	}
	for {
		ok := false
		ch := make(chan struct{})
		done := make(chan struct{})
		s.s.Inject(func() {
			if ok = try(); !ok {
				q.ws = append(q.ws, waiter{ch: ch})
			}
			close(done)
		})
		<-done
		if ok {
			return
		}
		<-ch
	}
}

// tcpAddr converts a simulated address to the net package's form.
func tcpAddr(a netstack.Addr, port uint16) *net.TCPAddr {
	return &net.TCPAddr{
		IP:   net.IPv4(byte(a>>24), byte(a>>16), byte(a>>8), byte(a)),
		Port: int(port),
	}
}

// resolve parses "ip:port" against the simulated address space.
func resolve(address string) (netstack.Addr, uint16, error) {
	hostStr, portStr, err := net.SplitHostPort(address)
	if err != nil {
		return 0, 0, err
	}
	addr, err := netstack.ParseAddr(hostStr)
	if err != nil {
		return 0, 0, fmt.Errorf("hostnet: %w", err)
	}
	port, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil || port == 0 {
		return 0, 0, fmt.Errorf("hostnet: bad port %q", portStr)
	}
	return addr, uint16(port), nil
}

// Dial opens a blocking connection to dst:port. Equivalent to
// DialContext with a background context.
func (s *Stack) Dial(dst netstack.Addr, port uint16) (net.Conn, error) {
	return s.dial(context.Background(), dst, port)
}

// DialContext implements the http.Transport DialContext signature over
// the simulated network: network must be "tcp" and address an "ip:port"
// inside the simulation. Context cancellation is honoured for detached
// callers; a sim.Proc caller cannot observe a concurrent cancellation
// (nothing else runs while it does) and only checks ctx on entry.
func (s *Stack) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	switch network {
	case "tcp", "tcp4":
	default:
		return nil, fmt.Errorf("hostnet: unsupported network %q", network)
	}
	dst, port, err := resolve(address)
	if err != nil {
		return nil, err
	}
	return s.dial(ctx, dst, port)
}

func (s *Stack) dial(ctx context.Context, dst netstack.Addr, port uint16) (net.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var c *Conn
	s.run(func() {
		c = newConn(s, s.h.Dial(dst, port))
	})

	// Detached callers get live cancellation: a watcher injects the
	// abort. stopWatch keeps the watcher from outliving the dial.
	var stopWatch chan struct{}
	if s.s.CallerProc() == nil && ctx.Done() != nil {
		stopWatch = make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				s.s.Inject(func() {
					if !c.connected && !c.dead {
						c.ctxErr = ctx.Err()
						c.hc.Abort()
						c.q.wake()
					}
				})
			case <-stopWatch:
			}
		}()
	}

	var dialErr error
	s.block(&c.q, func() bool {
		switch {
		case c.ctxErr != nil:
			dialErr = c.ctxErr
			return true
		case c.connected:
			return true
		case c.dead:
			if dialErr = c.termErr; dialErr == nil {
				dialErr = net.ErrClosed
			}
			return true
		}
		return false
	})
	if stopWatch != nil {
		close(stopWatch)
	}
	if dialErr != nil {
		return nil, &net.OpError{Op: "dial", Net: "tcp", Addr: tcpAddr(dst, port), Err: dialErr}
	}
	return c, nil
}

// Listen starts a blocking TCP listener on port.
func (s *Stack) Listen(port uint16) (net.Listener, error) {
	l := &Listener{stack: s, port: port}
	var err error
	s.run(func() {
		err = s.h.Listen(port, func(hc *host.Conn) {
			c := newConn(s, hc)
			c.connected = true
			l.backlog = append(l.backlog, c)
			l.q.wake()
		})
	})
	if err != nil {
		return nil, err
	}
	return l, nil
}

// Listener implements net.Listener over a host TCP port.
type Listener struct {
	stack   *Stack
	port    uint16
	q       waitQ
	backlog []*Conn
	closed  bool
}

// Accept blocks until a connection reaches ESTABLISHED or the listener
// is closed.
func (l *Listener) Accept() (net.Conn, error) {
	var c *Conn
	var err error
	l.stack.block(&l.q, func() bool {
		switch {
		case len(l.backlog) > 0:
			c = l.backlog[0]
			l.backlog = l.backlog[1:]
			return true
		case l.closed:
			err = net.ErrClosed
			return true
		}
		return false
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Close stops the listener, wakes pending Accepts with net.ErrClosed and
// aborts connections nobody accepted.
func (l *Listener) Close() error {
	l.stack.run(func() {
		if l.closed {
			return
		}
		l.closed = true
		l.stack.h.Unlisten(l.port)
		for _, c := range l.backlog {
			c.hc.Abort()
		}
		l.backlog = nil
		l.q.wake()
	})
	return nil
}

// Addr returns the listening address.
func (l *Listener) Addr() net.Addr { return tcpAddr(l.stack.h.Addr(), l.port) }
