package inmate

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"gq/internal/host"
)

// ActionRecord logs one life-cycle action handled by the controller.
type ActionRecord struct {
	Action string
	VLAN   uint16
	OK     bool
	At     time.Duration
}

// Controller is the inmate controller (§6.3): "a simple message receiver
// that interprets the life-cycle control instructions coming in from the
// containment servers", using a simple text-based message format:
//
//	ACTION <start|stop|reboot|revert|terminate> VLAN <id>
//
// It lives on the management network (conceptually on the gateway, for
// immediate access to all VMMs and the Raw Iron Controller) and needs only
// the inmate's VLAN ID to identify the target of an action.
type Controller struct {
	h      *host.Host
	byVLAN map[uint16]*Inmate

	// Log records handled actions.
	Log []ActionRecord

	// RecycleFn, when set, handles the "recycle" verb: the farm routes it
	// to the recycling pipeline that owns the inmate, forcing it out of
	// its detonation window into capture → reimage → re-admission.
	RecycleFn func(vlan uint16) error

	// hung simulates a wedged controller process (the chaos ctl-hang
	// fault): connections still complete their TCP handshake, but every
	// received line is swallowed unanswered — which is exactly why the
	// supervision tree probes with an application-level PING rather than a
	// bare dial.
	hung bool
}

// ControllerPort is the management-network port the controller listens on.
const ControllerPort = 7777

// NewController starts the controller on the management-network host h.
func NewController(h *host.Host) (*Controller, error) {
	c := &Controller{h: h, byVLAN: make(map[uint16]*Inmate)}
	if err := c.install(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Controller) install() error {
	return c.h.Listen(ControllerPort, func(conn *host.Conn) {
		var buf []byte
		conn.OnData = func(d []byte) {
			if c.hung {
				return
			}
			buf = append(buf, d...)
			for {
				nl := strings.IndexByte(string(buf), '\n')
				if nl < 0 {
					return
				}
				line := strings.TrimSpace(string(buf[:nl]))
				buf = buf[nl+1:]
				if line == "" {
					continue
				}
				reply := c.handleLine(line)
				conn.Write([]byte(reply + "\n"))
			}
		}
		conn.OnPeerClose = func() { conn.Close() }
	})
}

// SetHung wedges (or unwedges) the controller's protocol engine; see the
// hung field. Must run on the controller's domain goroutine.
func (c *Controller) SetHung(hung bool) { c.hung = hung }

// Rebind reinstalls the control listener after a supervised host reset
// and clears any wedge: the restarted process starts responsive. The
// inmate inventory and action log carry over — they model the VMM scan
// the paper's controller performs at startup, which reconstructs the same
// inventory.
func (c *Controller) Rebind() error {
	c.hung = false
	return c.install()
}

// KnownAction reports whether verb is a lifecycle action Execute accepts.
// Callers in other simulation domains use it to validate an action before
// posting it across, since the cross-domain dispatch cannot return errors.
func KnownAction(verb string) bool {
	switch verb {
	case "start", "stop", "reboot", "revert", "terminate", "recycle":
		return true
	}
	return false
}

// Register adds an inmate to the controller's inventory ("at startup, the
// controller scans the VMMs deployed on the management network to assemble
// an inventory of inmates and their VLAN IDs").
func (c *Controller) Register(im *Inmate) { c.byVLAN[im.VLAN] = im }

// Unregister removes an expired inmate.
func (c *Controller) Unregister(vlan uint16) { delete(c.byVLAN, vlan) }

// Inmate looks up an inmate by VLAN ID.
func (c *Controller) Inmate(vlan uint16) *Inmate { return c.byVLAN[vlan] }

// Execute performs an action directly (the in-process path used when the
// containment server and controller share a farm object in tests). When
// the target inmate lives in a different simulation domain the action is
// dispatched into that domain — the "OK" then acknowledges acceptance of
// the VMM command, which takes effect one cross-domain hop later.
func (c *Controller) Execute(action string, vlan uint16) error {
	im := c.byVLAN[vlan]
	rec := ActionRecord{Action: action, VLAN: vlan, At: c.h.Sim().Now()}
	defer func() { c.Log = append(c.Log, rec) }()
	if im == nil {
		return fmt.Errorf("inmate: no inmate on VLAN %d", vlan)
	}
	var fn func()
	switch action {
	case "start":
		fn = im.Start
	case "stop":
		fn = im.Stop
	case "reboot":
		fn = im.Reboot
	case "revert":
		fn = im.Revert
	case "terminate":
		fn = im.Terminate
	case "recycle":
		if c.RecycleFn == nil {
			return fmt.Errorf("inmate: no recycling pipeline attached")
		}
		if err := c.RecycleFn(vlan); err != nil {
			return err
		}
		rec.OK = true
		return nil
	default:
		return fmt.Errorf("inmate: unknown action %q", action)
	}
	rec.OK = true
	if target := im.Host.Sim(); target != c.h.Sim() {
		c.h.Sim().PostTo(target, 0, fn)
		return nil
	}
	fn()
	return nil
}

func (c *Controller) handleLine(line string) string {
	// Liveness probe from the supervision tree: answered inline by the
	// protocol engine, so a hung controller reads as down even while its
	// TCP handshakes still complete.
	if strings.EqualFold(line, "PING") {
		return "PONG"
	}
	fields := strings.Fields(line)
	if len(fields) != 4 || strings.ToUpper(fields[0]) != "ACTION" || strings.ToUpper(fields[2]) != "VLAN" {
		return "ERR syntax: ACTION <verb> VLAN <id>"
	}
	vlan, err := strconv.Atoi(fields[3])
	if err != nil || vlan < 1 || vlan > 4094 {
		return "ERR bad VLAN id"
	}
	if err := c.Execute(strings.ToLower(fields[1]), uint16(vlan)); err != nil {
		return "ERR " + err.Error()
	}
	return "OK"
}

// SendAction dials the controller from another management host and sends
// one action line (the containment server's side of the protocol). done
// receives the reply line.
func SendAction(from *host.Host, controller *host.Host, action string, vlan uint16, done func(reply string)) {
	c := from.Dial(controller.Addr(), ControllerPort)
	var buf []byte
	c.OnConnect = func() {
		c.Write([]byte(fmt.Sprintf("ACTION %s VLAN %d\n", action, vlan)))
	}
	c.OnData = func(d []byte) {
		buf = append(buf, d...)
		if nl := strings.IndexByte(string(buf), '\n'); nl >= 0 {
			if done != nil {
				done(strings.TrimSpace(string(buf[:nl])))
				done = nil
			}
			c.Close()
		}
	}
	c.OnClose = func(err error) {
		if done != nil {
			done("ERR " + fmt.Sprint(err))
		}
	}
}
