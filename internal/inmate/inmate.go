// Package inmate implements GQ's inmate life-cycle machinery (§5.5, §6.3):
// the inmate controller that receives text-protocol life-cycle actions from
// containment servers over the management network, the VMM abstraction that
// hides whether an inmate runs virtualised, emulated, or on raw iron, and
// the VLAN ID pool that hands each inmate its unique link-layer identity.
package inmate

import (
	"fmt"
	"time"

	"gq/internal/host"
	"gq/internal/sim"
)

// State is an inmate's life-cycle state.
type State int

// Life-cycle states.
const (
	StateCreated State = iota
	StateBooting
	StateRunning
	StateStopped
	StateReverting
	StateTerminated
)

var stateNames = [...]string{"created", "booting", "running", "stopped", "reverting", "terminated"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Backend abstracts the hosting technology. The hosting technology employed
// for a given inmate remains transparent to the gateway (§5.2); the
// controller "abstracts physical details of the inmates, such as their
// hosting server and whether they run virtualized or on raw iron".
type Backend interface {
	// Kind names the technology ("vmware-esx", "qemu", "raw-iron").
	Kind() string
	// BootDelay is how long power-on to OS-up takes.
	BootDelay() time.Duration
	// Revert restores the inmate to a clean snapshot, invoking done when
	// the machine is back at power-on.
	Revert(im *Inmate, done func())
}

// VMBackend models full-system virtualisation (VMware ESX-class): fast
// boots and fast snapshot reverts.
type VMBackend struct{ Sim *sim.Simulator }

// Kind implements Backend.
func (b *VMBackend) Kind() string { return "vmware-esx" }

// BootDelay implements Backend.
func (b *VMBackend) BootDelay() time.Duration { return 2 * time.Second }

// Revert implements Backend.
func (b *VMBackend) Revert(im *Inmate, done func()) {
	b.Sim.Schedule(10*time.Second, done)
}

// QEMUBackend models customised whole-system emulation: slower in every
// phase but immune to some VM-detection tricks.
type QEMUBackend struct{ Sim *sim.Simulator }

// Kind implements Backend.
func (b *QEMUBackend) Kind() string { return "qemu" }

// BootDelay implements Backend.
func (b *QEMUBackend) BootDelay() time.Duration { return 6 * time.Second }

// Revert implements Backend.
func (b *QEMUBackend) Revert(im *Inmate, done func()) {
	b.Sim.Schedule(20*time.Second, done)
}

// Inmate is one contained machine.
type Inmate struct {
	Name    string
	VLAN    uint16
	Host    *host.Host
	Backend Backend

	State State
	// Generation increments on every revert; infection scripts key off it
	// ("subsequent reboots should not trigger reinfection", §6.6 — but a
	// revert produces a fresh first boot).
	Generation int

	// OnBoot runs when the (re)booted OS comes up: the farm installs DHCP
	// configuration and the auto-infection script here.
	OnBoot func(im *Inmate)
	// OnTerminate runs after a terminate action.
	OnTerminate func(im *Inmate)

	sim *sim.Simulator
	// Transitions records state changes for tests and reports.
	Transitions []string
}

// New creates an inmate in StateCreated.
func New(s *sim.Simulator, name string, vlan uint16, h *host.Host, b Backend) *Inmate {
	return &Inmate{Name: name, VLAN: vlan, Host: h, Backend: b, sim: s}
}

func (im *Inmate) transition(st State) {
	im.State = st
	im.Transitions = append(im.Transitions, fmt.Sprintf("%v@%v", st, im.sim.Now()))
}

// Start powers the inmate on; OnBoot fires after the backend's boot delay.
func (im *Inmate) Start() {
	if im.State == StateRunning || im.State == StateBooting || im.State == StateTerminated {
		return
	}
	im.transition(StateBooting)
	gen := im.Generation
	im.sim.Schedule(im.Backend.BootDelay(), func() {
		if im.State != StateBooting || im.Generation != gen {
			return
		}
		im.transition(StateRunning)
		if im.OnBoot != nil {
			im.OnBoot(im)
		}
	})
}

// Stop powers the inmate off.
func (im *Inmate) Stop() {
	if im.State == StateTerminated {
		return
	}
	im.Host.Shutdown()
	im.transition(StateStopped)
}

// Reboot power-cycles without reverting state (malware often reboots its
// host intentionally; the infection survives).
func (im *Inmate) Reboot() {
	if im.State == StateTerminated {
		return
	}
	im.Host.Shutdown()
	im.transition(StateStopped)
	// Note: no Reset — the "disk" keeps its state; the network stack
	// configuration is re-acquired at boot.
	im.Host.Reset()
	im.transition(StateBooting)
	gen := im.Generation
	im.sim.Schedule(im.Backend.BootDelay(), func() {
		if im.Generation != gen || im.State != StateBooting {
			return
		}
		im.transition(StateRunning)
		if im.OnBoot != nil {
			im.OnBoot(im)
		}
	})
}

// Revert restores the clean snapshot and boots; the inmate comes back as a
// fresh machine ready for reinfection.
func (im *Inmate) Revert() {
	if im.State == StateTerminated || im.State == StateReverting {
		return
	}
	im.Host.Shutdown()
	im.transition(StateReverting)
	im.Generation++
	gen := im.Generation
	im.Backend.Revert(im, func() {
		if im.Generation != gen || im.State != StateReverting {
			return
		}
		im.Host.Reset()
		im.transition(StateBooting)
		im.sim.Schedule(im.Backend.BootDelay(), func() {
			if im.Generation != gen || im.State != StateBooting {
				return
			}
			im.transition(StateRunning)
			if im.OnBoot != nil {
				im.OnBoot(im)
			}
		})
	})
}

// Terminate permanently retires the inmate.
func (im *Inmate) Terminate() {
	if im.State == StateTerminated {
		return
	}
	im.Host.Shutdown()
	im.transition(StateTerminated)
	if im.OnTerminate != nil {
		im.OnTerminate(im)
	}
}

// VLANPool hands out unique VLAN IDs. IEEE 802.1Q's twelve-bit ID limits a
// single inmate network to 4,094 usable IDs (§7.2).
type VLANPool struct {
	lo, hi uint16
	used   map[uint16]bool
	next   uint16
}

// NewVLANPool creates a pool over [lo, hi].
func NewVLANPool(lo, hi uint16) *VLANPool {
	return &VLANPool{lo: lo, hi: hi, used: make(map[uint16]bool), next: lo}
}

// Allocate returns a free VLAN ID.
func (p *VLANPool) Allocate() (uint16, error) {
	for i := 0; i <= int(p.hi-p.lo); i++ {
		v := p.next
		p.next++
		if p.next > p.hi {
			p.next = p.lo
		}
		if !p.used[v] {
			p.used[v] = true
			return v, nil
		}
	}
	return 0, fmt.Errorf("inmate: VLAN pool %d-%d exhausted", p.lo, p.hi)
}

// Release returns an ID to the pool.
func (p *VLANPool) Release(v uint16) { delete(p.used, v) }

// InUse reports the number of allocated IDs.
func (p *VLANPool) InUse() int { return len(p.used) }

// Size reports pool capacity.
func (p *VLANPool) Size() int { return int(p.hi-p.lo) + 1 }
