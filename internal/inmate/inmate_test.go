package inmate

import (
	"strings"
	"testing"
	"time"

	"gq/internal/host"
	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/sim"
)

func newInmate(s *sim.Simulator, vlan uint16) *Inmate {
	h := host.New(s, "inmate", netstack.MAC{2, 0, 0, 0, 0, byte(vlan)})
	return New(s, "inmate", vlan, h, &VMBackend{Sim: s})
}

func TestLifecycleStartStop(t *testing.T) {
	s := sim.New(1)
	im := newInmate(s, 16)
	boots := 0
	im.OnBoot = func(*Inmate) { boots++ }
	im.Start()
	if im.State != StateBooting {
		t.Fatalf("state %v", im.State)
	}
	s.RunFor(5 * time.Second)
	if im.State != StateRunning || boots != 1 {
		t.Fatalf("state %v boots %d", im.State, boots)
	}
	im.Stop()
	if im.State != StateStopped {
		t.Fatalf("state %v", im.State)
	}
	// Start is idempotent while booting/running.
	im.Start()
	s.RunFor(5 * time.Second)
	if boots != 2 {
		t.Fatalf("boots %d", boots)
	}
}

func TestRevertIncrementsGeneration(t *testing.T) {
	s := sim.New(1)
	im := newInmate(s, 16)
	var bootGens []int
	im.OnBoot = func(i *Inmate) { bootGens = append(bootGens, i.Generation) }
	im.Start()
	s.RunFor(5 * time.Second)
	im.Revert()
	if im.State != StateReverting {
		t.Fatalf("state %v", im.State)
	}
	s.RunFor(time.Minute)
	if im.State != StateRunning || im.Generation != 1 {
		t.Fatalf("state %v gen %d", im.State, im.Generation)
	}
	if len(bootGens) != 2 || bootGens[0] != 0 || bootGens[1] != 1 {
		t.Fatalf("boot generations %v", bootGens)
	}
}

func TestRebootKeepsGeneration(t *testing.T) {
	s := sim.New(1)
	im := newInmate(s, 16)
	im.Start()
	s.RunFor(5 * time.Second)
	im.Reboot()
	s.RunFor(time.Minute)
	if im.Generation != 0 || im.State != StateRunning {
		t.Fatalf("gen %d state %v", im.Generation, im.State)
	}
}

func TestTerminateIsFinal(t *testing.T) {
	s := sim.New(1)
	im := newInmate(s, 16)
	terminated := false
	im.OnTerminate = func(*Inmate) { terminated = true }
	im.Start()
	s.RunFor(5 * time.Second)
	im.Terminate()
	if !terminated || im.State != StateTerminated {
		t.Fatalf("state %v", im.State)
	}
	im.Start()
	im.Revert()
	s.RunFor(time.Minute)
	if im.State != StateTerminated {
		t.Fatalf("terminated inmate resurrected: %v", im.State)
	}
}

func TestQEMUBackendSlower(t *testing.T) {
	s := sim.New(1)
	vm := &VMBackend{Sim: s}
	q := &QEMUBackend{Sim: s}
	if q.BootDelay() <= vm.BootDelay() {
		t.Error("QEMU should boot slower than ESX-class VMs")
	}
	if vm.Kind() == q.Kind() {
		t.Error("kinds must differ")
	}
}

func TestVLANPool(t *testing.T) {
	p := NewVLANPool(16, 19)
	if p.Size() != 4 {
		t.Fatalf("size %d", p.Size())
	}
	seen := map[uint16]bool{}
	for i := 0; i < 4; i++ {
		v, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if seen[v] {
			t.Fatalf("duplicate VLAN %d", v)
		}
		seen[v] = true
	}
	if _, err := p.Allocate(); err == nil {
		t.Fatal("exhausted pool allocated")
	}
	p.Release(17)
	v, err := p.Allocate()
	if err != nil || v != 17 {
		t.Fatalf("release/realloc got %d, %v", v, err)
	}
	if p.InUse() != 4 {
		t.Fatalf("in use %d", p.InUse())
	}
}

// mgmt builds a management network: controller host + containment-server
// host.
func mgmt(t *testing.T) (*sim.Simulator, *Controller, *host.Host, *host.Host) {
	t.Helper()
	s := sim.New(1)
	sw := netsim.NewSwitch(s, "mgmt")
	ctlHost := host.New(s, "controller", netstack.MAC{2, 0, 0, 0, 9, 1})
	csHost := host.New(s, "cs-mgmt", netstack.MAC{2, 0, 0, 0, 9, 2})
	netsim.Connect(sw.AddAccessPort("ctl", 999), ctlHost.NIC(), 0)
	netsim.Connect(sw.AddAccessPort("cs", 999), csHost.NIC(), 0)
	ctlHost.ConfigureStatic(netstack.MustParseAddr("172.16.0.1"), 24, 0)
	csHost.ConfigureStatic(netstack.MustParseAddr("172.16.0.2"), 24, 0)
	ctl, err := NewController(ctlHost)
	if err != nil {
		t.Fatal(err)
	}
	return s, ctl, ctlHost, csHost
}

func TestControllerProtocol(t *testing.T) {
	s, ctl, ctlHost, csHost := mgmt(t)
	im := newInmate(s, 16)
	ctl.Register(im)
	im.Start()
	s.RunFor(5 * time.Second)

	var reply string
	SendAction(csHost, ctlHost, "revert", 16, func(r string) { reply = r })
	s.RunFor(time.Minute)
	if reply != "OK" {
		t.Fatalf("reply %q", reply)
	}
	if im.Generation != 1 || im.State != StateRunning {
		t.Fatalf("revert not applied: gen=%d state=%v", im.Generation, im.State)
	}
	if len(ctl.Log) != 1 || !ctl.Log[0].OK || ctl.Log[0].Action != "revert" {
		t.Fatalf("log %+v", ctl.Log)
	}
}

func TestControllerErrors(t *testing.T) {
	s, _, ctlHost, csHost := mgmt(t)
	var replies []string
	collect := func(r string) { replies = append(replies, r) }
	SendAction(csHost, ctlHost, "revert", 99, collect)  // unknown VLAN
	SendAction(csHost, ctlHost, "explode", 16, collect) // unknown verb
	s.RunFor(time.Minute)
	if len(replies) != 2 {
		t.Fatalf("replies %v", replies)
	}
	for _, r := range replies {
		if !strings.HasPrefix(r, "ERR") {
			t.Errorf("reply %q, want ERR", r)
		}
	}
}

func TestControllerMalformedLine(t *testing.T) {
	s, ctl, _, _ := mgmt(t)
	if got := ctl.handleLine("MAKE ME A SANDWICH"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("reply %q", got)
	}
	if got := ctl.handleLine("ACTION revert VLAN banana"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("reply %q", got)
	}
	_ = s
}
