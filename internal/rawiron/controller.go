package rawiron

import (
	"fmt"
	"time"

	"gq/internal/obs"
	"gq/internal/sim"
)

// opKind selects which lifecycle operation an admission runs.
type opKind int

const (
	opReimage opKind = iota
	opCapture
	opRestore
)

var opNames = [...]string{"reimage", "capture", "restore"}

func (k opKind) String() string { return opNames[k] }

// operation is one admitted lifecycle operation on one machine. It owns
// the box (Machine.op) from admission until completion, quarantine, or —
// never — a silent wedge: every stage arms a deadline, so the operation
// always reaches a terminal outcome.
type operation struct {
	kind  opKind
	m     *Machine
	image string // installed on success (reimage/restore), captured name (capture)
	done  func(error)

	started time.Duration // admission time, for the reimage_ms histogram
	attempt int
	backoff time.Duration
	slotted bool // holds one of the MaxConcurrent netboot slots

	// gen invalidates stale stage callbacks: every stage start and every
	// attempt failure bumps it, so callbacks from a superseded attempt
	// fall through harmlessly (the supervisor's generation idiom).
	gen      int
	stage    string
	deadline *sim.Event
	xfer     *transfer
}

// Controller is the Raw Iron Controller: a supervised state machine over
// the farm's physical boxes. All methods must run on the controller's
// simulation-domain goroutine.
type Controller struct {
	Sim *sim.Simulator
	Seq *PowerSequencer
	Cfg Config

	machines []*Machine // registration order, for deterministic listings
	byName   map[string]*Machine

	trunk  *trunk
	faults Faults

	// FIFO queue for netboot operations beyond Cfg.MaxConcurrent.
	active  int
	waiting []*operation

	// Completed-operation and failure accounting.
	Reimages, Captures             int
	Failures, Retries, Quarantines int
	FaultsInjected                 int

	retriesC     *obs.Counter
	quarantinedC *obs.Counter
	faultsC      *obs.Counter
	reimageMS    *obs.Histogram
}

// NewController creates a controller with paper-calibrated timings.
func NewController(s *sim.Simulator) *Controller {
	return NewControllerWith(s, Config{})
}

// NewControllerWith creates a controller with explicit tuning; zero
// fields select the defaults.
func NewControllerWith(s *sim.Simulator, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	reg := s.Obs().Reg
	return &Controller{
		Sim: s, Seq: NewPowerSequencer(s), Cfg: cfg,
		byName:       make(map[string]*Machine),
		trunk:        newTrunk(s, cfg.TrunkMBps),
		retriesC:     reg.Counter("rawiron.retries"),
		quarantinedC: reg.Counter("rawiron.quarantined"),
		faultsC:      reg.Counter("rawiron.faults_injected"),
		reimageMS: reg.Histogram("rawiron.reimage_ms",
			60000, 120000, 240000, 360000, 480000, 600000, 900000, 1800000, 3600000),
	}
}

// AddMachine registers a box with the controller and its power port.
func (c *Controller) AddMachine(m *Machine) {
	c.byName[m.Name] = m
	c.machines = append(c.machines, m)
	m.sc = c.Sim.Obs().Scope(obs.EvRawIronPrefix+m.Name, obs.DefaultRingSize)
	c.Seq.PowerOn(m.PowerPort)
	m.setState(Running)
}

// Machine looks up a registered box.
func (c *Controller) Machine(name string) *Machine { return c.byName[name] }

// Machines lists registered boxes in registration order.
func (c *Controller) Machines() []*Machine { return c.machines }

// InjectFaults installs deterministic fault probabilities (the chaos
// harness's hook). ClearFaults removes them.
func (c *Controller) InjectFaults(f Faults) { c.faults = f }

// ClearFaults removes all injected fault probabilities.
func (c *Controller) ClearFaults() { c.faults = Faults{} }

// ActiveTransfers reports how many image transfers currently share the
// trunk.
func (c *Controller) ActiveTransfers() int { return len(c.trunk.active) }

// roll draws one fault decision from the sim RNG. A zero probability
// draws nothing, so fault-free runs consume no randomness.
func (c *Controller) roll(m *Machine, prob float64, kind string) bool {
	if prob <= 0 || c.Sim.Rand().Float64() >= prob {
		return false
	}
	c.FaultsInjected++
	c.faultsC.Inc()
	m.sc.Emit(obs.Event{Type: EvFault, VLAN: m.VLAN, Detail: kind})
	return true
}

// Reimage performs the §6.4 network reimaging cycle: enable PXE in the
// DHCP server, power-cycle, netboot a small Linux boot image, download the
// compressed Windows image over the shared trunk and write it with
// NTFS-aware tools, disable netboot, power-cycle again, and boot the
// freshly installed OS locally. done (optional) receives nil on success
// or ErrQuarantined if the breaker pulls the box mid-operation; transient
// failures retry internally and are not surfaced.
func (c *Controller) Reimage(m *Machine, image string, done func(error)) error {
	return c.admit(&operation{kind: opReimage, m: m, image: image, done: done})
}

// CaptureImage reads a suitably configured OS installation back into an
// image file using the same netboot mechanism — and, since it is the same
// mechanism, the same transition log as Reimage: NetBooting, Imaging,
// LocalBooting, Running.
func (c *Controller) CaptureImage(m *Machine, name string, done func(error)) error {
	return c.admit(&operation{kind: opCapture, m: m, image: name, done: done})
}

// RestoreFromHiddenPartition restores machines from their hidden second
// partitions. Slightly slower per machine (around 10 minutes) but the
// restores read local disk, not the trunk, so all machines restore
// simultaneously. Machines without a hidden image are skipped; machines
// that cannot be admitted (busy, quarantined) or end quarantined count
// toward done's failed total.
func (c *Controller) RestoreFromHiddenPartition(machines []*Machine, done func(failed int)) {
	pending, failed := 0, 0
	finished := false
	finish := func(err error) {
		pending--
		if err != nil {
			failed++
		}
		if pending == 0 && !finished {
			finished = true
			if done != nil {
				done(failed)
			}
		}
	}
	for _, m := range machines {
		if m.HiddenImage != "" {
			pending++
		}
	}
	if pending == 0 {
		if done != nil {
			done(0)
		}
		return
	}
	for _, m := range machines {
		if m.HiddenImage == "" {
			continue
		}
		op := &operation{kind: opRestore, m: m, image: m.HiddenImage, done: finish}
		if err := c.admit(op); err != nil {
			finish(err)
		}
	}
}

// Readmit returns a quarantined box to service: the operator cleared the
// fault, so the breaker history is wiped and a fresh reimage brings the
// machine back up.
func (c *Controller) Readmit(m *Machine, image string, done func(error)) error {
	if m.sc == nil {
		return ErrUnknownMachine
	}
	if m.State != Quarantined {
		return fmt.Errorf("rawiron: %s is not quarantined (state %v)", m.Name, m.State)
	}
	m.failures = m.failures[:0]
	m.setState(PoweredOff)
	m.sc.Emit(obs.Event{Type: EvReadmit, VLAN: m.VLAN})
	return c.Reimage(m, image, done)
}

// admit validates and enqueues one operation. The machine is owned from
// here until the operation's terminal outcome.
func (c *Controller) admit(op *operation) error {
	m := op.m
	if m.sc == nil { // never passed through AddMachine
		return ErrUnknownMachine
	}
	if m.State == Quarantined {
		return ErrQuarantined
	}
	if m.op != nil {
		return ErrBusy
	}
	m.op = op
	op.backoff = c.Cfg.RetryBackoff
	op.started = c.Sim.Now()
	c.enqueue(op)
	return nil
}

// enqueue starts the operation, or queues it when the netboot concurrency
// bound is saturated. Restores bypass the bound (no trunk involvement).
func (c *Controller) enqueue(op *operation) {
	if op.kind != opRestore && c.Cfg.MaxConcurrent > 0 {
		if c.active >= c.Cfg.MaxConcurrent {
			c.waiting = append(c.waiting, op)
			op.m.sc.Emit(obs.Event{Type: EvQueued, VLAN: op.m.VLAN,
				N: uint64(len(c.waiting)), Detail: op.kind.String()})
			return
		}
		c.active++
		op.slotted = true
	}
	c.beginAttempt(op)
}

// releaseSlot frees the operation's netboot slot (if it holds one) and
// starts queued operations that now fit.
func (c *Controller) releaseSlot(op *operation) {
	if !op.slotted {
		return
	}
	op.slotted = false
	c.active--
	for len(c.waiting) > 0 && c.active < c.Cfg.MaxConcurrent {
		next := c.waiting[0]
		c.waiting = c.waiting[1:]
		c.active++
		next.slotted = true
		c.beginAttempt(next)
	}
}

func (c *Controller) beginAttempt(op *operation) {
	op.attempt++
	op.m.sc.Emit(obs.Event{Type: EvOpStart, VLAN: op.m.VLAN,
		N: uint64(op.attempt), Detail: op.kind.String()})
	if op.kind == opRestore {
		c.runRestore(op)
		return
	}
	c.runNetbootOp(op)
}

// stage arms the next transition's deadline and returns the generation a
// completion callback must present. A deadline miss fails the attempt.
func (c *Controller) stage(op *operation, name string, d time.Duration) int {
	op.gen++
	gen := op.gen
	op.stage = name
	op.deadline = c.Sim.Schedule(d, func() {
		if op.m.op != op || op.gen != gen {
			return
		}
		c.failAttempt(op, name)
	})
	return gen
}

// stageOK reports whether a stage-completion callback is still current —
// the operation still owns the box and no failure superseded the stage —
// and disarms the stage deadline when it is.
func (c *Controller) stageOK(op *operation, gen int) bool {
	if op.m.op != op || op.gen != gen {
		return false
	}
	if op.deadline != nil {
		op.deadline.Cancel()
	}
	return true
}

// cycle power-cycles the operation's box, unless a stuck-power fault
// fires: then the relay latches open, the port stays dark, and the armed
// power-stage deadline declares the attempt dead (the retry's own Cycle
// supersedes the wedged command).
func (c *Controller) cycle(op *operation, done func()) {
	if c.roll(op.m, c.faults.PowerStick, FaultPowerStick) {
		c.Seq.stick(op.m.PowerPort)
		return
	}
	c.Seq.Cycle(op.m.PowerPort, done)
}

// runNetbootOp is the shared reimage/capture pipeline: power-cycle into
// PXE, netboot, transfer the image over the shared trunk (down for
// reimage, up for capture), power-cycle out of PXE, boot locally.
func (c *Controller) runNetbootOp(op *operation) {
	m := op.m
	m.NetbootEnabled = true
	m.Host.Shutdown()
	gen := c.stage(op, stagePower, c.Cfg.PowerDeadline)
	c.cycle(op, func() {
		if !c.stageOK(op, gen) {
			return
		}
		m.setState(NetBooting)
		gen := c.stage(op, stageNetboot, c.Cfg.NetbootDeadline)
		if c.roll(m, c.faults.NetbootHang, FaultNetbootHang) {
			// The boot image never comes up; the netboot deadline will
			// declare the attempt dead.
			return
		}
		c.Sim.Schedule(bootDelay, func() {
			if !c.stageOK(op, gen) {
				return
			}
			m.setState(Imaging)
			gen := c.stage(op, stageTransfer, c.Cfg.TransferDeadline)
			if c.roll(m, c.faults.TransferStall, FaultTransferStall) {
				// The TFTP session stops moving bytes; the session
				// timeout declares it dead well before the stage's own
				// backstop deadline.
				c.Sim.Schedule(c.Cfg.StallTimeout, func() {
					if op.m.op != op || op.gen != gen {
						return
					}
					c.failAttempt(op, FaultTransferStall)
				})
				return
			}
			// A corrupted transfer is only detectable once the checksum
			// runs over the complete image, so the decision is drawn now
			// but the failure surfaces at transfer end.
			corrupt := c.roll(m, c.faults.TransferCorrupt, FaultTransferCorrupt)
			op.xfer = c.trunk.begin(float64(c.Cfg.ImageSizeMB), func() {
				op.xfer = nil
				if !c.stageOK(op, gen) {
					return
				}
				if corrupt {
					c.failAttempt(op, FaultTransferCorrupt)
					return
				}
				m.NetbootEnabled = false
				gen := c.stage(op, stagePower, c.Cfg.PowerDeadline)
				c.cycle(op, func() {
					if !c.stageOK(op, gen) {
						return
					}
					m.setState(LocalBooting)
					gen := c.stage(op, stageLocalBoot, c.Cfg.BootDeadline)
					c.Sim.Schedule(bootDelay, func() {
						if !c.stageOK(op, gen) {
							return
						}
						c.complete(op)
					})
				})
			})
		})
	})
}

// runRestore is the hidden-partition pipeline: power-cycle, boot the
// restorer from the hidden partition, copy locally, power-cycle, boot.
func (c *Controller) runRestore(op *operation) {
	m := op.m
	m.Host.Shutdown()
	gen := c.stage(op, stagePower, c.Cfg.PowerDeadline)
	c.cycle(op, func() {
		if !c.stageOK(op, gen) {
			return
		}
		m.setState(LocalBooting) // boots the hidden-partition restorer
		copyTime := time.Duration(float64(c.Cfg.ImageSizeMB) / float64(c.Cfg.HiddenRestoreMBps) * float64(time.Second))
		gen := c.stage(op, stageRestore, c.Cfg.RestoreDeadline)
		c.Sim.Schedule(bootDelay+copyTime, func() {
			if !c.stageOK(op, gen) {
				return
			}
			gen := c.stage(op, stagePower, c.Cfg.PowerDeadline)
			c.cycle(op, func() {
				if !c.stageOK(op, gen) {
					return
				}
				gen := c.stage(op, stageLocalBoot, c.Cfg.BootDeadline)
				c.Sim.Schedule(bootDelay, func() {
					if !c.stageOK(op, gen) {
						return
					}
					c.complete(op)
				})
			})
		})
	})
}

// failAttempt is the single failure path: abort in-flight work, power the
// box down, record the failure against the breaker window, then either
// quarantine (threshold reached) or schedule a backed-off, jittered retry.
func (c *Controller) failAttempt(op *operation, why string) {
	m := op.m
	op.gen++ // invalidate every in-flight stage callback
	if op.deadline != nil {
		op.deadline.Cancel()
		op.deadline = nil
	}
	if op.xfer != nil {
		c.trunk.abort(op.xfer)
		op.xfer = nil
	}
	c.releaseSlot(op)
	c.Failures++
	m.setState(PoweredOff)
	c.Seq.PowerOff(m.PowerPort)

	now := c.Sim.Now()
	kept := m.failures[:0]
	for _, t := range m.failures {
		if now-t <= c.Cfg.BreakerWindow {
			kept = append(kept, t)
		}
	}
	m.failures = append(kept, now)
	if len(m.failures) >= c.Cfg.BreakerThreshold {
		c.quarantine(op, why)
		return
	}

	m.Retries++
	c.Retries++
	c.retriesC.Inc()
	m.sc.Emit(obs.Event{Type: EvRetry, VLAN: m.VLAN, N: uint64(op.attempt), Detail: why})
	delay := op.backoff
	delay += time.Duration(c.Sim.Rand().Float64() * c.Cfg.RetryJitter * float64(delay))
	op.backoff *= 2
	if op.backoff > c.Cfg.RetryBackoffMax {
		op.backoff = c.Cfg.RetryBackoffMax
	}
	c.Sim.Schedule(delay, func() {
		if m.op != op {
			return
		}
		c.enqueue(op)
	})
}

// quarantine is the breaker tripping: the box is pulled from rotation,
// its journal ring is dumped to the flight recorder, and the operation
// reports ErrQuarantined to its caller.
func (c *Controller) quarantine(op *operation, why string) {
	m := op.m
	m.setState(Quarantined)
	m.op = nil
	c.Quarantines++
	c.quarantinedC.Inc()
	m.sc.Emit(obs.Event{Type: EvQuarantine, VLAN: m.VLAN, N: uint64(op.attempt), Detail: why})
	m.sc.Dump(fmt.Sprintf("machine %s quarantined by breaker after %d failures in window (last: %s, attempt %d)",
		m.Name, len(m.failures), why, op.attempt))
	if op.done != nil {
		op.done(ErrQuarantined)
	}
}

// complete is the operation's success path.
func (c *Controller) complete(op *operation) {
	m := op.m
	m.setState(Running)
	took := c.Sim.Now() - op.started
	switch op.kind {
	case opReimage, opRestore:
		m.DiskImage = op.image
		c.Reimages++
		c.reimageMS.Observe(int64(took / time.Millisecond))
	case opCapture:
		c.Captures++
	}
	m.Host.Reset()
	m.op = nil
	c.releaseSlot(op)
	m.sc.Emit(obs.Event{Type: EvOpDone, VLAN: m.VLAN,
		N: uint64(took / time.Millisecond), Detail: op.kind.String()})
	if op.done != nil {
		op.done(nil)
	}
}

// trunk models the shared PXE/TFTP uplink: every concurrent image
// transfer gets an equal share of the trunk capacity, re-divided whenever
// a transfer starts or finishes.
type trunk struct {
	s      *sim.Simulator
	mbps   float64
	active []*transfer
}

type transfer struct {
	remainMB float64
	rate     float64 // MB/s granted at the last rebalance
	since    time.Duration
	ev       *sim.Event
	done     func()
}

func newTrunk(s *sim.Simulator, mbps int) *trunk {
	return &trunk{s: s, mbps: float64(mbps)}
}

func (t *trunk) begin(sizeMB float64, done func()) *transfer {
	x := &transfer{remainMB: sizeMB, done: done}
	t.active = append(t.active, x)
	t.rebalance()
	return x
}

func (t *trunk) abort(x *transfer) {
	t.remove(x)
	if x.ev != nil {
		x.ev.Cancel()
		x.ev = nil
	}
	t.rebalance()
}

func (t *trunk) remove(x *transfer) {
	for i, a := range t.active {
		if a == x {
			t.active = append(t.active[:i], t.active[i+1:]...)
			return
		}
	}
}

func (t *trunk) finish(x *transfer) {
	t.remove(x)
	x.ev = nil
	t.rebalance()
	x.done()
}

// rebalance settles every active transfer's progress at its old rate,
// then reschedules its completion at the new equal share.
func (t *trunk) rebalance() {
	if len(t.active) == 0 {
		return
	}
	now := t.s.Now()
	share := t.mbps / float64(len(t.active))
	for _, x := range t.active {
		if x.rate > 0 {
			x.remainMB -= x.rate * (now - x.since).Seconds()
			if x.remainMB < 0 {
				x.remainMB = 0
			}
		}
		x.since = now
		x.rate = share
		if x.ev != nil {
			x.ev.Cancel()
		}
		x := x
		x.ev = t.s.Schedule(time.Duration(x.remainMB/share*float64(time.Second)), func() { t.finish(x) })
	}
}
