package rawiron

import (
	"time"

	"gq/internal/inmate"
)

// Backend adapts a raw-iron machine to the inmate life-cycle (implements
// gq/internal/inmate.Backend).
type Backend struct {
	Controller *Controller
	Machine    *Machine
	// CleanImage is what Revert reinstalls.
	CleanImage string
	// OnFail, when set, is told that a revert cannot complete — the
	// reimage could not be admitted or the breaker quarantined the box —
	// so the inmate is not left wedged in StateReverting forever. The
	// recycling pipeline uses this to drop the member from rotation.
	OnFail func(im *inmate.Inmate, err error)
}

// Kind implements inmate.Backend.
func (b *Backend) Kind() string { return "raw-iron" }

// BootDelay implements inmate.Backend.
func (b *Backend) BootDelay() time.Duration { return bootDelay }

// Revert implements inmate.Backend: a full network reimaging cycle. From
// the gateway's viewpoint nothing distinguishes this from a VM snapshot
// revert except the time it takes. Transient hardware failures retry
// inside the controller; only a terminal failure reaches OnFail.
func (b *Backend) Revert(im *inmate.Inmate, done func()) {
	err := b.Controller.Reimage(b.Machine, b.CleanImage, func(err error) {
		if err != nil {
			if b.OnFail != nil {
				b.OnFail(im, err)
			}
			return
		}
		done()
	})
	if err != nil && b.OnFail != nil {
		b.OnFail(im, err)
	}
}
