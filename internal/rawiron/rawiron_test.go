package rawiron

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"gq/internal/host"
	"gq/internal/inmate"
	"gq/internal/netstack"
	"gq/internal/sim"
)

func machine(s *sim.Simulator, name string, port int) *Machine {
	return &Machine{
		Name: name, VLAN: uint16(30 + port), PowerPort: port,
		Host: host.New(s, name, netstack.MAC{2, 0, 0, 1, 0, byte(port)}),
	}
}

func TestReimageCycle(t *testing.T) {
	s := sim.New(1)
	c := NewController(s)
	m := machine(s, "iron0", 1)
	c.AddMachine(m)

	done := false
	if err := c.Reimage(m, "winxp-sp2-clean", func(err error) { done = err == nil }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(20 * time.Minute)
	if !done {
		t.Fatal("reimage never completed")
	}
	if m.DiskImage != "winxp-sp2-clean" || m.State != Running {
		t.Fatalf("image %q state %v", m.DiskImage, m.State)
	}
	if m.NetbootEnabled {
		t.Fatal("netboot left enabled after reimage")
	}
	if c.Reimages != 1 || c.Seq.Cycles != 2 {
		t.Fatalf("reimages=%d cycles=%d", c.Reimages, c.Seq.Cycles)
	}
	if m.Busy() {
		t.Fatal("machine still owned after completion")
	}
}

func TestReimageDurationPrecise(t *testing.T) {
	s := sim.New(1)
	c := NewController(s)
	m := machine(s, "iron0", 1)
	c.AddMachine(m)
	var took time.Duration
	start := s.Now()
	c.Reimage(m, "img", func(error) { took = s.Now() - start })
	s.RunFor(30 * time.Minute)
	if took < 5*time.Minute || took > 8*time.Minute {
		t.Fatalf("single reimage took %v, paper reports around 6 minutes", took)
	}
}

func TestHiddenPartitionParallelRestore(t *testing.T) {
	s := sim.New(1)
	c := NewController(s)
	var machines []*Machine
	for i := 1; i <= 6; i++ {
		m := machine(s, "iron", i)
		m.HiddenImage = "winxp-hidden"
		c.AddMachine(m)
		machines = append(machines, m)
	}
	var took time.Duration
	failed := -1
	start := s.Now()
	c.RestoreFromHiddenPartition(machines, func(f int) { took = s.Now() - start; failed = f })
	s.RunFor(time.Hour)
	if took == 0 {
		t.Fatal("restore never completed")
	}
	if failed != 0 {
		t.Fatalf("restore reported %d failures", failed)
	}
	// ~10 minutes, and crucially: parallel — 6 machines take about as long
	// as one, not 6x (restores read local disk, not the shared trunk).
	if took < 8*time.Minute || took > 14*time.Minute {
		t.Fatalf("parallel restore took %v, paper reports around 10 minutes", took)
	}
	for _, m := range machines {
		if m.DiskImage != "winxp-hidden" || m.State != Running {
			t.Fatalf("machine %s image %q state %v", m.Name, m.DiskImage, m.State)
		}
	}
	if c.Reimages != 6 {
		t.Fatalf("reimages %d", c.Reimages)
	}
}

func TestRestoreSkipsMachinesWithoutHiddenImage(t *testing.T) {
	s := sim.New(1)
	c := NewController(s)
	m := machine(s, "iron0", 1)
	c.AddMachine(m) // no hidden image
	done := false
	c.RestoreFromHiddenPartition([]*Machine{m}, func(int) { done = true })
	s.RunFor(time.Minute)
	if !done {
		t.Fatal("restore with nothing to do should complete immediately")
	}
}

func TestCaptureImage(t *testing.T) {
	s := sim.New(1)
	c := NewController(s)
	m := machine(s, "iron0", 1)
	c.AddMachine(m)
	captured := false
	if err := c.CaptureImage(m, "golden-2011-06", func(err error) { captured = err == nil }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(30 * time.Minute)
	if !captured || c.Captures != 1 || m.State != Running {
		t.Fatalf("captured %v captures %d state %v", captured, c.Captures, m.State)
	}
}

func TestCaptureTransitionsMatchReimage(t *testing.T) {
	// Capture uses the same netboot mechanism as reimage, so its
	// transition log must read identically (it used to skip Imaging).
	s := sim.New(1)
	c := NewController(s)
	a, b := machine(s, "iron-a", 1), machine(s, "iron-b", 2)
	c.AddMachine(a)
	c.AddMachine(b)
	c.Reimage(a, "img", nil)
	c.CaptureImage(b, "golden", nil)
	s.RunFor(30 * time.Minute)
	if !reflect.DeepEqual(a.Transitions, b.Transitions) {
		t.Fatalf("transition logs differ:\nreimage: %v\ncapture: %v", a.Transitions, b.Transitions)
	}
	want := []string{"running", "netboot", "imaging", "localboot", "running"}
	if !reflect.DeepEqual(a.Transitions, want) {
		t.Fatalf("transitions %v, want %v", a.Transitions, want)
	}
}

func TestOverlappingOperationsRejected(t *testing.T) {
	s := sim.New(1)
	c := NewController(s)
	m := machine(s, "iron0", 1)
	m.HiddenImage = "hidden"
	c.AddMachine(m)

	if err := c.Reimage(m, "img", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.CaptureImage(m, "golden", nil); !errors.Is(err, ErrBusy) {
		t.Fatalf("overlapping capture: err %v, want ErrBusy", err)
	}
	if err := c.Reimage(m, "img2", nil); !errors.Is(err, ErrBusy) {
		t.Fatalf("overlapping reimage: err %v, want ErrBusy", err)
	}
	failed := -1
	c.RestoreFromHiddenPartition([]*Machine{m}, func(f int) { failed = f })
	if failed != 1 {
		t.Fatalf("overlapping restore should fail immediately, failed=%d", failed)
	}
	s.RunFor(20 * time.Minute)
	if m.State != Running || m.DiskImage != "img" || c.Reimages != 1 {
		t.Fatalf("first operation corrupted: state %v image %q reimages %d",
			m.State, m.DiskImage, c.Reimages)
	}
	// The box is idle again: new admissions succeed.
	if err := c.CaptureImage(m, "golden", nil); err != nil {
		t.Fatalf("post-completion capture rejected: %v", err)
	}
}

func TestUnregisteredMachineRejected(t *testing.T) {
	s := sim.New(1)
	c := NewController(s)
	m := machine(s, "ghost", 1)
	if err := c.Reimage(m, "img", nil); !errors.Is(err, ErrUnknownMachine) {
		t.Fatalf("err %v, want ErrUnknownMachine", err)
	}
}

func TestPowerSequencer(t *testing.T) {
	s := sim.New(1)
	p := NewPowerSequencer(s)
	p.PowerOn(3)
	if !p.On(3) || p.On(4) {
		t.Fatal("power state wrong")
	}
	cycled := false
	p.Cycle(3, func() { cycled = true })
	if p.On(3) {
		t.Fatal("port should be off mid-cycle")
	}
	s.RunFor(10 * time.Second)
	if !cycled || !p.On(3) {
		t.Fatal("cycle did not complete")
	}
}

func TestPowerSequencerOverlapSerializes(t *testing.T) {
	// Two Cycle commands on one port must serialize, not interleave: the
	// second runs after the first completes, and both callbacks fire.
	s := sim.New(1)
	p := NewPowerSequencer(s)
	p.PowerOn(3)
	var first, second time.Duration
	p.Cycle(3, func() { first = s.Now() })
	p.Cycle(3, func() { second = s.Now() })
	if p.Cycles != 1 {
		t.Fatalf("second cycle should queue, not start: cycles=%d", p.Cycles)
	}
	s.RunFor(10 * time.Second)
	if first == 0 || second == 0 {
		t.Fatalf("callbacks did not both fire: first=%v second=%v", first, second)
	}
	if second <= first {
		t.Fatalf("cycles interleaved: first done %v, second done %v", first, second)
	}
	if p.Cycles != 2 || !p.On(3) {
		t.Fatalf("cycles=%d on=%v after both complete", p.Cycles, p.On(3))
	}
}

// runUntil steps the sim in small increments until cond holds (or the
// budget runs out), so fault tests don't depend on exact failure timing.
func runUntil(t *testing.T, s *sim.Simulator, budget time.Duration, cond func() bool) {
	t.Helper()
	for end := s.Now() + budget; s.Now() < end; {
		if cond() {
			return
		}
		s.RunFor(5 * time.Second)
	}
	if !cond() {
		t.Fatal("condition never held within budget")
	}
}

// retryTest injects one fault kind at probability 1, waits for the first
// failed attempt, clears faults, and demands the retry completes the
// reimage.
func retryTest(t *testing.T, f Faults, kind string) {
	t.Helper()
	s := sim.New(1)
	c := NewControllerWith(s, Config{
		NetbootDeadline: 45 * time.Second,
		BootDeadline:    45 * time.Second,
		RetryBackoff:    10 * time.Second,
	})
	m := machine(s, "iron0", 1)
	c.AddMachine(m)
	c.InjectFaults(f)
	var opErr error
	done := false
	if err := c.Reimage(m, "clean", func(err error) { done = true; opErr = err }); err != nil {
		t.Fatal(err)
	}
	runUntil(t, s, time.Hour, func() bool { return c.Failures >= 1 })
	c.ClearFaults()
	s.RunFor(30 * time.Minute)
	if !done || opErr != nil {
		t.Fatalf("%s: reimage did not recover: done=%v err=%v", kind, done, opErr)
	}
	if m.State != Running || m.DiskImage != "clean" {
		t.Fatalf("%s: state %v image %q", kind, m.State, m.DiskImage)
	}
	if c.Retries < 1 || m.Retries < 1 {
		t.Fatalf("%s: retries not recorded: controller %d machine %d", kind, c.Retries, m.Retries)
	}
	if c.FaultsInjected < 1 {
		t.Fatalf("%s: injected faults not recorded", kind)
	}
	if c.Failures != c.Retries+c.Quarantines {
		t.Fatalf("%s: failures=%d retries=%d quarantines=%d", kind, c.Failures, c.Retries, c.Quarantines)
	}
	if !c.Seq.On(m.PowerPort) {
		t.Fatalf("%s: power port left off", kind)
	}
}

func TestNetbootHangRetries(t *testing.T) {
	retryTest(t, Faults{NetbootHang: 1}, FaultNetbootHang)
}

func TestTransferStallRetries(t *testing.T) {
	retryTest(t, Faults{TransferStall: 1}, FaultTransferStall)
}

func TestTransferCorruptRetries(t *testing.T) {
	retryTest(t, Faults{TransferCorrupt: 1}, FaultTransferCorrupt)
}

func TestPowerStickRetries(t *testing.T) {
	retryTest(t, Faults{PowerStick: 1}, FaultPowerStick)
}

func TestBreakerQuarantineAndReadmit(t *testing.T) {
	s := sim.New(1)
	c := NewControllerWith(s, Config{
		NetbootDeadline: 45 * time.Second,
		RetryBackoff:    10 * time.Second,
	})
	m := machine(s, "iron0", 1)
	c.AddMachine(m)
	c.InjectFaults(Faults{NetbootHang: 1}) // every attempt hangs

	var opErr error
	if err := c.Reimage(m, "clean", func(err error) { opErr = err }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(time.Hour)
	if m.State != Quarantined {
		t.Fatalf("breaker never tripped: state %v after %d failures", m.State, c.Failures)
	}
	if !errors.Is(opErr, ErrQuarantined) {
		t.Fatalf("operation reported %v, want ErrQuarantined", opErr)
	}
	if c.Quarantines != 1 || m.Busy() {
		t.Fatalf("quarantines=%d busy=%v", c.Quarantines, m.Busy())
	}
	if c.Failures != c.Retries+c.Quarantines {
		t.Fatalf("failures=%d retries=%d quarantines=%d", c.Failures, c.Retries, c.Quarantines)
	}
	if c.Seq.On(m.PowerPort) {
		t.Fatal("quarantined box left powered")
	}
	// Quarantined boxes reject new work until an operator re-admits them.
	if err := c.Reimage(m, "clean", nil); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("err %v, want ErrQuarantined", err)
	}
	if err := c.Readmit(machine(s, "other", 9), "clean", nil); err == nil {
		t.Fatal("readmitting an unregistered machine should fail")
	}

	// Operator clears the hardware fault and re-admits: the breaker
	// history resets and a fresh reimage brings the box back.
	c.ClearFaults()
	var readmitted error = errors.New("pending")
	if err := c.Readmit(m, "clean", func(err error) { readmitted = err }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(30 * time.Minute)
	if readmitted != nil {
		t.Fatalf("readmit reimage failed: %v", readmitted)
	}
	if m.State != Running || m.DiskImage != "clean" || m.BreakerLoad() != 0 {
		t.Fatalf("state %v image %q breaker load %d", m.State, m.DiskImage, m.BreakerLoad())
	}
	// Readmit only applies to quarantined boxes.
	if err := c.Readmit(m, "clean", nil); err == nil {
		t.Fatal("readmitting a running machine should fail")
	}
}

func TestTrunkContention(t *testing.T) {
	// Two concurrent reimages share the PXE/TFTP trunk: each transfer
	// runs at half rate, so both take roughly twice a solo transfer.
	solo := func() time.Duration {
		s := sim.New(1)
		c := NewController(s)
		m := machine(s, "iron0", 1)
		c.AddMachine(m)
		var took time.Duration
		start := s.Now()
		c.Reimage(m, "img", func(error) { took = s.Now() - start })
		s.RunFor(time.Hour)
		return took
	}()

	s := sim.New(1)
	c := NewController(s)
	a, b := machine(s, "iron-a", 1), machine(s, "iron-b", 2)
	c.AddMachine(a)
	c.AddMachine(b)
	var tookA, tookB time.Duration
	start := s.Now()
	c.Reimage(a, "img", func(error) { tookA = s.Now() - start })
	c.Reimage(b, "img", func(error) { tookB = s.Now() - start })
	if c.ActiveTransfers() != 0 {
		t.Fatalf("transfers active before netboot: %d", c.ActiveTransfers())
	}
	s.RunFor(time.Hour)
	if tookA == 0 || tookB == 0 {
		t.Fatal("contended reimages never completed")
	}
	if c.ActiveTransfers() != 0 {
		t.Fatalf("%d transfers leaked", c.ActiveTransfers())
	}
	// The transfer is the dominant phase; contention should land both
	// well past 1.5x solo but under 2.5x.
	for _, took := range []time.Duration{tookA, tookB} {
		if took < solo*3/2 || took > solo*5/2 {
			t.Fatalf("contended reimage took %v (solo %v): trunk not shared realistically", took, solo)
		}
	}
}

func TestMaxConcurrentQueuesFIFO(t *testing.T) {
	// With MaxConcurrent=1 the second reimage queues: it starts only
	// after the first finishes, and each then sees the full trunk.
	s := sim.New(1)
	c := NewControllerWith(s, Config{MaxConcurrent: 1})
	a, b := machine(s, "iron-a", 1), machine(s, "iron-b", 2)
	c.AddMachine(a)
	c.AddMachine(b)
	var doneA, doneB time.Duration
	start := s.Now()
	c.Reimage(a, "img", func(error) { doneA = s.Now() - start })
	c.Reimage(b, "img", func(error) { doneB = s.Now() - start })
	s.RunFor(time.Hour)
	if doneA == 0 || doneB == 0 {
		t.Fatal("queued reimages never completed")
	}
	if doneB <= doneA {
		t.Fatalf("queue order violated: a=%v b=%v", doneA, doneB)
	}
	// Serialized: b takes about twice a's wall time, and both run at the
	// uncontended ~6min pace.
	if doneA > 8*time.Minute || doneB < doneA*3/2 {
		t.Fatalf("not serialized: a=%v b=%v", doneA, doneB)
	}
}

func TestRawIronBackendRevert(t *testing.T) {
	// The inmate life-cycle drives a full reimage transparently.
	s := sim.New(1)
	c := NewController(s)
	m := machine(s, "iron0", 1)
	c.AddMachine(m)
	b := &Backend{Controller: c, Machine: m, CleanImage: "clean"}
	im := inmate.New(s, "iron-inmate", 31, m.Host, b)
	im.Start()
	s.RunFor(time.Minute)
	if im.State != inmate.StateRunning {
		t.Fatalf("state %v", im.State)
	}
	im.Revert()
	s.RunFor(3 * time.Minute)
	if im.State != inmate.StateReverting {
		t.Fatalf("reimage should still be in progress at 3min: %v", im.State)
	}
	s.RunFor(10 * time.Minute)
	if im.State != inmate.StateRunning || m.DiskImage != "clean" {
		t.Fatalf("state %v image %q", im.State, m.DiskImage)
	}
	if b.Kind() != "raw-iron" {
		t.Error("kind wrong")
	}
}

func TestBackendRevertQuarantineReachesOnFail(t *testing.T) {
	// A breaker trip mid-revert must surface through OnFail instead of
	// leaving the inmate wedged in StateReverting forever.
	s := sim.New(1)
	c := NewControllerWith(s, Config{
		NetbootDeadline: 45 * time.Second,
		RetryBackoff:    10 * time.Second,
	})
	m := machine(s, "iron0", 1)
	c.AddMachine(m)
	var failErr error
	b := &Backend{Controller: c, Machine: m, CleanImage: "clean",
		OnFail: func(_ *inmate.Inmate, err error) { failErr = err }}
	im := inmate.New(s, "iron-inmate", 31, m.Host, b)
	im.Start()
	s.RunFor(time.Minute)
	c.InjectFaults(Faults{NetbootHang: 1})
	im.Revert()
	s.RunFor(time.Hour)
	if !errors.Is(failErr, ErrQuarantined) {
		t.Fatalf("OnFail got %v, want ErrQuarantined", failErr)
	}
	if m.State != Quarantined {
		t.Fatalf("machine state %v", m.State)
	}
}
