package rawiron

import (
	"testing"
	"time"

	"gq/internal/host"
	"gq/internal/inmate"
	"gq/internal/netstack"
	"gq/internal/sim"
)

func machine(s *sim.Simulator, name string, port int) *Machine {
	return &Machine{
		Name: name, VLAN: uint16(30 + port), PowerPort: port,
		Host: host.New(s, name, netstack.MAC{2, 0, 0, 1, 0, byte(port)}),
	}
}

func TestReimageCycle(t *testing.T) {
	s := sim.New(1)
	c := NewController(s)
	m := machine(s, "iron0", 1)
	c.AddMachine(m)

	done := false
	start := s.Now()
	c.Reimage(m, "winxp-sp2-clean", func() { done = true })
	s.RunFor(20 * time.Minute)
	if !done {
		t.Fatal("reimage never completed")
	}
	elapsed := s.Now() - start
	_ = elapsed
	if m.DiskImage != "winxp-sp2-clean" || m.State != Running {
		t.Fatalf("image %q state %v", m.DiskImage, m.State)
	}
	if m.NetbootEnabled {
		t.Fatal("netboot left enabled after reimage")
	}
	if c.Reimages != 1 || c.Seq.Cycles != 2 {
		t.Fatalf("reimages=%d cycles=%d", c.Reimages, c.Seq.Cycles)
	}
}

func TestReimageDurationPrecise(t *testing.T) {
	s := sim.New(1)
	c := NewController(s)
	m := machine(s, "iron0", 1)
	c.AddMachine(m)
	var took time.Duration
	start := s.Now()
	c.Reimage(m, "img", func() { took = s.Now() - start })
	s.RunFor(30 * time.Minute)
	if took < 5*time.Minute || took > 8*time.Minute {
		t.Fatalf("single reimage took %v, paper reports around 6 minutes", took)
	}
}

func TestHiddenPartitionParallelRestore(t *testing.T) {
	s := sim.New(1)
	c := NewController(s)
	var machines []*Machine
	for i := 1; i <= 6; i++ {
		m := machine(s, "iron", i)
		m.HiddenImage = "winxp-hidden"
		c.AddMachine(m)
		machines = append(machines, m)
	}
	var took time.Duration
	start := s.Now()
	c.RestoreFromHiddenPartition(machines, func() { took = s.Now() - start })
	s.RunFor(time.Hour)
	if took == 0 {
		t.Fatal("restore never completed")
	}
	// ~10 minutes, and crucially: parallel — 6 machines take about as long
	// as one, not 6x.
	if took < 8*time.Minute || took > 14*time.Minute {
		t.Fatalf("parallel restore took %v, paper reports around 10 minutes", took)
	}
	for _, m := range machines {
		if m.DiskImage != "winxp-hidden" || m.State != Running {
			t.Fatalf("machine %s image %q state %v", m.Name, m.DiskImage, m.State)
		}
	}
	if c.Reimages != 6 {
		t.Fatalf("reimages %d", c.Reimages)
	}
}

func TestRestoreSkipsMachinesWithoutHiddenImage(t *testing.T) {
	s := sim.New(1)
	c := NewController(s)
	m := machine(s, "iron0", 1)
	c.AddMachine(m) // no hidden image
	done := false
	c.RestoreFromHiddenPartition([]*Machine{m}, func() { done = true })
	s.RunFor(time.Minute)
	if !done {
		t.Fatal("restore with nothing to do should complete immediately")
	}
}

func TestCaptureImage(t *testing.T) {
	s := sim.New(1)
	c := NewController(s)
	m := machine(s, "iron0", 1)
	c.AddMachine(m)
	var captured string
	c.CaptureImage(m, "golden-2011-06", func(img string) { captured = img })
	s.RunFor(30 * time.Minute)
	if captured != "golden-2011-06" || c.Captures != 1 || m.State != Running {
		t.Fatalf("captured %q captures %d state %v", captured, c.Captures, m.State)
	}
}

func TestPowerSequencer(t *testing.T) {
	s := sim.New(1)
	p := NewPowerSequencer(s)
	p.PowerOn(3)
	if !p.On(3) || p.On(4) {
		t.Fatal("power state wrong")
	}
	cycled := false
	p.Cycle(3, func() { cycled = true })
	if p.On(3) {
		t.Fatal("port should be off mid-cycle")
	}
	s.RunFor(10 * time.Second)
	if !cycled || !p.On(3) {
		t.Fatal("cycle did not complete")
	}
}

func TestRawIronBackendRevert(t *testing.T) {
	// The inmate life-cycle drives a full reimage transparently.
	s := sim.New(1)
	c := NewController(s)
	m := machine(s, "iron0", 1)
	c.AddMachine(m)
	b := &Backend{Controller: c, Machine: m, CleanImage: "clean"}
	im := inmate.New(s, "iron-inmate", 31, m.Host, b)
	im.Start()
	s.RunFor(time.Minute)
	if im.State != inmate.StateRunning {
		t.Fatalf("state %v", im.State)
	}
	im.Revert()
	s.RunFor(3 * time.Minute)
	if im.State != inmate.StateReverting {
		t.Fatalf("reimage should still be in progress at 3min: %v", im.State)
	}
	s.RunFor(10 * time.Minute)
	if im.State != inmate.StateRunning || m.DiskImage != "clean" {
		t.Fatalf("state %v image %q", im.State, m.DiskImage)
	}
	if b.Kind() != "raw-iron" {
		t.Error("kind wrong")
	}
}
