// Package rawiron implements GQ's raw-iron management (§6.4). Rather than
// fighting VM-detecting anti-forensics in malware, GQ provides identically
// configured physical x86 systems on a network-controlled power sequencer.
// Each system's boot configuration alternates between booting over the
// network (leading to an OS image transfer and installation) and booting
// from local disk when network booting fails (leading to normal inmate
// execution). A dedicated Raw Iron Controller runs the PXE/DHCP/TFTP/NFS
// machinery over a VLAN trunk covering all raw-iron VLANs.
//
// Because the hardware is real, the lifecycle is supervised rather than a
// happy-path callback chain: every transition (power cycle, netboot, image
// transfer, local boot) carries a sim-clock deadline, missed deadlines
// retry with capped exponential backoff and sim-RNG jitter, and a
// per-machine circuit breaker quarantines boxes that keep failing — with
// the failure history journalled under "rawiron.<machine>" and dumped to
// the flight recorder, mirroring internal/supervisor's conventions. Image
// transfers share one PXE/TFTP trunk of fixed capacity, so K concurrent
// reimages contend realistically instead of each seeing the full pipe.
package rawiron

import (
	"errors"
	"fmt"
	"time"

	"gq/internal/host"
	"gq/internal/obs"
	"gq/internal/sim"
)

// MachineState tracks where a box is in its boot/reimage cycle.
type MachineState int

// Machine states.
const (
	PoweredOff MachineState = iota
	NetBooting              // PXE + Trinity-Rescue-Kit-style boot image
	Imaging                 // transferring the OS image over the trunk
	LocalBooting
	Running
	// Quarantined is the circuit breaker's terminal state: the box failed
	// too many restore attempts inside the breaker window and is pulled
	// from rotation until an operator re-admits it.
	Quarantined
)

var stateNames = [...]string{"off", "netboot", "imaging", "localboot", "running", "quarantined"}

func (s MachineState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("MachineState(%d)", int(s))
}

// Journalled lifecycle events, emitted under each machine's own
// "rawiron.<machine>" scope so a quarantine dumps that box's full recent
// history to the flight recorder.
const (
	EvOpStart    = obs.EvRawIronPrefix + "op_start"
	EvFault      = obs.EvRawIronPrefix + "fault"
	EvRetry      = obs.EvRawIronPrefix + "retry"
	EvQueued     = obs.EvRawIronPrefix + "queued"
	EvQuarantine = obs.EvRawIronPrefix + "quarantine"
	EvReadmit    = obs.EvRawIronPrefix + "readmit"
	EvOpDone     = obs.EvRawIronPrefix + "op_done"
)

// Injectable fault kinds (also the Detail of the matching EvFault/EvRetry
// events). Deadline-detected failures use the stage name instead.
const (
	FaultNetbootHang     = "netboot_hang"
	FaultTransferStall   = "transfer_stall"
	FaultTransferCorrupt = "transfer_corrupt"
	FaultPowerStick      = "power_stick"
)

// Stage names: each stage of an operation arms a deadline under this name,
// and a deadline miss journals the stage as the failure reason.
const (
	stagePower     = "power"
	stageNetboot   = "netboot"
	stageTransfer  = "transfer"
	stageRestore   = "restore"
	stageLocalBoot = "localboot"
)

// Operation admission errors.
var (
	// ErrBusy rejects overlapping operations on one machine: the §6.4
	// boot-alternation sequencing cannot run two cycles at once without
	// corrupting State/Transitions.
	ErrBusy = errors.New("rawiron: operation already in progress on machine")
	// ErrQuarantined rejects operations on a breaker-quarantined machine;
	// it is also what a failing operation's done callback receives when
	// the breaker trips mid-operation.
	ErrQuarantined = errors.New("rawiron: machine quarantined by circuit breaker")
	// ErrUnknownMachine rejects operations on a box never registered with
	// AddMachine.
	ErrUnknownMachine = errors.New("rawiron: machine not registered with controller")
)

// Machine is one small-form-factor raw-iron system.
type Machine struct {
	Name      string
	VLAN      uint16
	PowerPort int
	Host      *host.Host

	State MachineState
	// NetbootEnabled mirrors the controller's per-machine DHCP PXE flag.
	NetbootEnabled bool
	// DiskImage is the OS image currently installed on the main disk.
	DiskImage string
	// HiddenImage is the restore image on the hidden second partition.
	HiddenImage string

	// Retries counts retried attempts across all operations on this box.
	Retries int

	// Transitions logs state changes for tests.
	Transitions []string

	// failures holds the sim times of recent attempt failures, pruned to
	// the breaker window (supervisor-style sliding history).
	failures []time.Duration
	// op is the operation currently owning the box (nil when idle).
	op *operation
	// sc is the machine's journal scope, set at AddMachine.
	sc *obs.Scope
}

func (m *Machine) setState(s MachineState) {
	m.State = s
	m.Transitions = append(m.Transitions, s.String())
}

// Busy reports whether an operation (running or queued) owns the box.
func (m *Machine) Busy() bool { return m.op != nil }

// BreakerLoad reports how many failures currently count against the
// breaker (the pruned sliding-window history length).
func (m *Machine) BreakerLoad() int { return len(m.failures) }

// Config tunes the controller's timing, contention, retry, and breaker
// behaviour. The zero value selects paper-calibrated defaults.
type Config struct {
	// Image transfer characteristics; the defaults produce the paper's
	// "around 6 minutes per reimaging cycle" and ~10-minute hidden
	// restores.
	ImageSizeMB       int // default 2048
	TrunkMBps         int // default 7: shared PXE/TFTP trunk capacity
	HiddenRestoreMBps int // default 4: local hidden-partition restore rate

	// MaxConcurrent bounds concurrent netboot operations (reimage and
	// capture); excess admissions queue FIFO. Hidden-partition restores
	// bypass the bound — they read local disk, not the trunk. 0 means
	// unlimited (beware: many concurrent transfers sharing the trunk can
	// outlast TransferDeadline).
	MaxConcurrent int

	// Per-stage deadlines. A missed deadline fails the attempt.
	PowerDeadline    time.Duration // default 10s
	NetbootDeadline  time.Duration // default 2m
	TransferDeadline time.Duration // default 30m (backstop; stalls detect sooner)
	StallTimeout     time.Duration // default 90s: a no-progress TFTP session is dead
	RestoreDeadline  time.Duration // default 20m
	BootDeadline     time.Duration // default 2m

	// Retry policy: capped exponential backoff with sim-RNG jitter.
	RetryBackoff    time.Duration // default 15s
	RetryBackoffMax time.Duration // default 4m
	RetryJitter     float64       // default 0.5

	// Circuit breaker: BreakerThreshold attempt failures within
	// BreakerWindow quarantine the machine.
	BreakerWindow    time.Duration // default 1h
	BreakerThreshold int           // default 4
}

func (cfg Config) withDefaults() Config {
	if cfg.ImageSizeMB <= 0 {
		cfg.ImageSizeMB = 2048
	}
	if cfg.TrunkMBps <= 0 {
		cfg.TrunkMBps = 7
	}
	if cfg.HiddenRestoreMBps <= 0 {
		cfg.HiddenRestoreMBps = 4
	}
	if cfg.PowerDeadline <= 0 {
		cfg.PowerDeadline = 10 * time.Second
	}
	if cfg.NetbootDeadline <= 0 {
		cfg.NetbootDeadline = 2 * time.Minute
	}
	if cfg.TransferDeadline <= 0 {
		cfg.TransferDeadline = 30 * time.Minute
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 90 * time.Second
	}
	if cfg.RestoreDeadline <= 0 {
		cfg.RestoreDeadline = 20 * time.Minute
	}
	if cfg.BootDeadline <= 0 {
		cfg.BootDeadline = 2 * time.Minute
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 15 * time.Second
	}
	if cfg.RetryBackoffMax <= 0 {
		cfg.RetryBackoffMax = 4 * time.Minute
	}
	if cfg.RetryJitter <= 0 {
		cfg.RetryJitter = 0.5
	}
	if cfg.BreakerWindow <= 0 {
		cfg.BreakerWindow = time.Hour
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 4
	}
	return cfg
}

// Faults are the deterministic fault-hook probabilities internal/chaos
// installs: each is the per-opportunity chance (drawn from the sim RNG)
// of the corresponding hardware failure. The zero value draws nothing —
// a fault-free run consumes no randomness and replays exactly as it did
// before fault hooks existed.
type Faults struct {
	NetbootHang     float64 // PXE boot image never comes up
	TransferStall   float64 // TFTP session stops moving bytes
	TransferCorrupt float64 // image fails checksum verification at the end
	PowerStick      float64 // power relay latches open, port stays dark
}

// PowerSequencer is the network-controlled power strip enabling remote,
// OS-independent reboots. Cycle commands on one port are serialized: a
// second command issued mid-cycle queues behind the first instead of
// interleaving relay operations.
type PowerSequencer struct {
	sim      *sim.Simulator
	ports    map[int]bool
	inflight map[int]*powerCycle

	// Cycles counts power cycles performed (including stuck ones).
	Cycles int
}

// powerCycle is one in-flight cycle command on a port. A stuck cycle has
// no completion event — the relay latched open — and is superseded by the
// next command on the port.
type powerCycle struct {
	stuck bool
	queue []func()
}

// NewPowerSequencer creates an all-off sequencer.
func NewPowerSequencer(s *sim.Simulator) *PowerSequencer {
	return &PowerSequencer{sim: s, ports: make(map[int]bool), inflight: make(map[int]*powerCycle)}
}

// On reports a port's power state.
func (p *PowerSequencer) On(port int) bool { return p.ports[port] }

// PowerOn enables a port.
func (p *PowerSequencer) PowerOn(port int) { p.ports[port] = true }

// PowerOff disables a port.
func (p *PowerSequencer) PowerOff(port int) { p.ports[port] = false }

// Cycle power-cycles a port: off, a beat, on, then done. A Cycle issued
// while another is in flight on the same port runs after it completes; a
// Cycle issued on a stuck port supersedes the wedged command.
func (p *PowerSequencer) Cycle(port int, done func()) {
	if cur := p.inflight[port]; cur != nil {
		if !cur.stuck {
			cur.queue = append(cur.queue, done)
			return
		}
		delete(p.inflight, port)
	}
	p.begin(port, false, done)
}

// stick injects a stuck cycle: the relay opens and never re-closes. The
// port stays dark until a later Cycle supersedes the wedged command.
func (p *PowerSequencer) stick(port int) {
	if cur := p.inflight[port]; cur != nil && cur.stuck {
		return
	}
	p.begin(port, true, nil)
}

func (p *PowerSequencer) begin(port int, stuck bool, done func()) {
	p.Cycles++
	p.ports[port] = false
	cur := &powerCycle{stuck: stuck}
	p.inflight[port] = cur
	if stuck {
		return
	}
	p.sim.Schedule(2*time.Second, func() {
		p.ports[port] = true
		if p.inflight[port] == cur {
			delete(p.inflight, port)
		}
		if done != nil {
			done()
		}
		for _, q := range cur.queue {
			p.Cycle(port, q)
		}
	})
}

// bootDelay is POST + bootloader on real hardware.
const bootDelay = 30 * time.Second
