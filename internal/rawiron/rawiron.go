// Package rawiron implements GQ's raw-iron management (§6.4). Rather than
// fighting VM-detecting anti-forensics in malware, GQ provides identically
// configured physical x86 systems on a network-controlled power sequencer.
// Each system's boot configuration alternates between booting over the
// network (leading to an OS image transfer and installation) and booting
// from local disk when network booting fails (leading to normal inmate
// execution). A dedicated Raw Iron Controller runs the PXE/DHCP/TFTP/NFS
// machinery over a VLAN trunk covering all raw-iron VLANs.
package rawiron

import (
	"fmt"
	"time"

	"gq/internal/host"
	"gq/internal/inmate"
	"gq/internal/sim"
)

// MachineState tracks where a box is in its boot/reimage cycle.
type MachineState int

// Machine states.
const (
	PoweredOff MachineState = iota
	NetBooting              // PXE + Trinity-Rescue-Kit-style boot image
	Imaging                 // downloading and writing the OS image
	LocalBooting
	Running
)

var stateNames = [...]string{"off", "netboot", "imaging", "localboot", "running"}

func (s MachineState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("MachineState(%d)", int(s))
}

// Machine is one small-form-factor raw-iron system.
type Machine struct {
	Name      string
	VLAN      uint16
	PowerPort int
	Host      *host.Host

	State MachineState
	// NetbootEnabled mirrors the controller's per-machine DHCP PXE flag.
	NetbootEnabled bool
	// DiskImage is the OS image currently installed on the main disk.
	DiskImage string
	// HiddenImage is the restore image on the hidden second partition.
	HiddenImage string

	// Transitions logs state changes for tests.
	Transitions []string
}

// PowerSequencer is the network-controlled power strip enabling remote,
// OS-independent reboots.
type PowerSequencer struct {
	sim   *sim.Simulator
	ports map[int]bool

	// Cycles counts power cycles performed.
	Cycles int
}

// NewPowerSequencer creates an all-off sequencer.
func NewPowerSequencer(s *sim.Simulator) *PowerSequencer {
	return &PowerSequencer{sim: s, ports: make(map[int]bool)}
}

// On reports a port's power state.
func (p *PowerSequencer) On(port int) bool { return p.ports[port] }

// PowerOn enables a port.
func (p *PowerSequencer) PowerOn(port int) { p.ports[port] = true }

// PowerOff disables a port.
func (p *PowerSequencer) PowerOff(port int) { p.ports[port] = false }

// Cycle power-cycles a port: off, a beat, on, then done.
func (p *PowerSequencer) Cycle(port int, done func()) {
	p.Cycles++
	p.ports[port] = false
	p.sim.Schedule(2*time.Second, func() {
		p.ports[port] = true
		if done != nil {
			done()
		}
	})
}

// Controller is the Raw Iron Controller.
type Controller struct {
	Sim *sim.Simulator
	Seq *PowerSequencer

	// Image transfer characteristics; the defaults produce the paper's
	// "around 6 minutes per reimaging cycle".
	ImageSizeMB     int
	TransferMBps    int
	HiddenRestoreMB int // effective rate for local partition restore

	machines map[string]*Machine

	// Reimages and Captures count completed operations.
	Reimages, Captures int
}

// NewController creates a controller with paper-calibrated timings.
func NewController(s *sim.Simulator) *Controller {
	return &Controller{
		Sim: s, Seq: NewPowerSequencer(s),
		ImageSizeMB: 2048, TransferMBps: 7, HiddenRestoreMB: 4,
		machines: make(map[string]*Machine),
	}
}

// AddMachine registers a box with the controller and its power port.
func (c *Controller) AddMachine(m *Machine) {
	c.machines[m.Name] = m
	c.Seq.PowerOn(m.PowerPort)
	m.setState(Running)
}

// Machine looks up a registered box.
func (c *Controller) Machine(name string) *Machine { return c.machines[name] }

func (m *Machine) setState(s MachineState) {
	m.State = s
	m.Transitions = append(m.Transitions, s.String())
}

// bootDelay is POST + bootloader on real hardware.
const bootDelay = 30 * time.Second

// Reimage performs the §6.4 network reimaging cycle: enable PXE in the
// DHCP server, power-cycle, netboot a small Linux boot image, download the
// compressed Windows image and write it with NTFS-aware tools, disable
// netboot, power-cycle again, and boot the freshly installed OS locally.
func (c *Controller) Reimage(m *Machine, image string, done func()) {
	m.NetbootEnabled = true
	m.Host.Shutdown()
	c.Seq.Cycle(m.PowerPort, func() {
		m.setState(NetBooting)
		c.Sim.Schedule(bootDelay, func() {
			m.setState(Imaging)
			transfer := time.Duration(c.ImageSizeMB/c.TransferMBps) * time.Second
			c.Sim.Schedule(transfer, func() {
				m.DiskImage = image
				m.NetbootEnabled = false
				c.Seq.Cycle(m.PowerPort, func() {
					m.setState(LocalBooting)
					c.Sim.Schedule(bootDelay, func() {
						m.setState(Running)
						m.Host.Reset()
						c.Reimages++
						if done != nil {
							done()
						}
					})
				})
			})
		})
	})
}

// RestoreFromHiddenPartition restores machines from their hidden second
// partitions. Slightly slower per machine (around 10 minutes) but all
// machines restore simultaneously.
func (c *Controller) RestoreFromHiddenPartition(machines []*Machine, done func()) {
	remaining := len(machines)
	if remaining == 0 {
		if done != nil {
			done()
		}
		return
	}
	for _, m := range machines {
		m := m
		if m.HiddenImage == "" {
			remaining--
			continue
		}
		m.Host.Shutdown()
		c.Seq.Cycle(m.PowerPort, func() {
			m.setState(LocalBooting) // boots the hidden-partition restorer
			restore := time.Duration(c.ImageSizeMB/c.HiddenRestoreMB) * time.Second
			c.Sim.Schedule(bootDelay+restore, func() {
				m.DiskImage = m.HiddenImage
				c.Seq.Cycle(m.PowerPort, func() {
					c.Sim.Schedule(bootDelay, func() {
						m.setState(Running)
						m.Host.Reset()
						c.Reimages++
						remaining--
						if remaining == 0 && done != nil {
							done()
						}
					})
				})
			})
		})
	}
	if remaining == 0 && done != nil {
		done()
	}
}

// CaptureImage reads a suitably configured OS installation back into an
// image file using the same netboot mechanism.
func (c *Controller) CaptureImage(m *Machine, name string, done func(image string)) {
	m.NetbootEnabled = true
	m.Host.Shutdown()
	c.Seq.Cycle(m.PowerPort, func() {
		m.setState(NetBooting)
		transfer := time.Duration(c.ImageSizeMB/c.TransferMBps) * time.Second
		c.Sim.Schedule(bootDelay+transfer, func() {
			m.NetbootEnabled = false
			c.Captures++
			c.Seq.Cycle(m.PowerPort, func() {
				c.Sim.Schedule(bootDelay, func() {
					m.setState(Running)
					m.Host.Reset()
					if done != nil {
						done(name)
					}
				})
			})
		})
	})
}

// Backend adapts a raw-iron machine to the inmate life-cycle (implements
// gq/internal/inmate.Backend).
type Backend struct {
	Controller *Controller
	Machine    *Machine
	// CleanImage is what Revert reinstalls.
	CleanImage string
}

// Kind implements inmate.Backend.
func (b *Backend) Kind() string { return "raw-iron" }

// BootDelay implements inmate.Backend.
func (b *Backend) BootDelay() time.Duration { return bootDelay }

// Revert implements inmate.Backend: a full network reimaging cycle. From
// the gateway's viewpoint nothing distinguishes this from a VM snapshot
// revert except the time it takes.
func (b *Backend) Revert(im *inmate.Inmate, done func()) {
	b.Controller.Reimage(b.Machine, b.CleanImage, done)
}
