// Package host implements a simulated end host: a NIC, ARP, IPv4 with
// static or DHCP-assigned addressing, a full TCP state machine, and UDP
// sockets, all exposed through a callback-based socket API driven by the
// discrete-event simulator.
//
// Every machine in the farm except the gateway — inmates, containment
// servers, sink servers, infrastructure services, and external Internet
// hosts — is a Host. The gateway operates on raw frames instead (see
// internal/gateway) because it rewrites traffic in flight.
package host

import (
	"fmt"
	"sort"
	"time"

	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/sim"
)

// ARP behaviour parameters.
const (
	arpRetryInterval = 1 * time.Second
	arpMaxRetries    = 3
)

type pendingIP struct {
	proto   uint8
	payload []byte
	dst     netstack.Addr
}

// Host is a simulated machine with one NIC.
type Host struct {
	Name string

	sim *sim.Simulator
	mac netstack.MAC
	nic *netsim.Port

	// IP configuration.
	addr    netstack.Addr
	bits    int
	gw      netstack.Addr
	dns     netstack.Addr
	ipID    uint16
	dropRx  bool // true while "powered off"
	rxHooks []func(*netstack.Packet)

	// ARP.
	arpCache   map[netstack.Addr]netstack.MAC
	arpPending map[netstack.Addr][]pendingIP
	arpRetry   map[netstack.Addr]*arpAttempt

	// Transport.
	conns       map[connKey]*Conn
	listeners   map[uint16]func(*Conn)
	anyListener func(*Conn) // wildcard TCP listener (catch-all sinks)
	udpSocks    map[uint16]*UDPSock
	anyUDP      func(dstPort uint16, src netstack.Addr, srcPort uint16, data []byte)
	nextEphem   uint16
	rawUDPHook  func(p *netstack.Packet) bool
}

type arpAttempt struct {
	tries int
	ev    *sim.Event
}

type connKey struct {
	localPort  uint16
	remoteIP   netstack.Addr
	remotePort uint16
}

// New creates a host with the given MAC address. The NIC is unconnected;
// wire it with netsim.Connect.
func New(s *sim.Simulator, name string, mac netstack.MAC) *Host {
	h := &Host{
		Name:       name,
		sim:        s,
		mac:        mac,
		arpCache:   make(map[netstack.Addr]netstack.MAC),
		arpPending: make(map[netstack.Addr][]pendingIP),
		arpRetry:   make(map[netstack.Addr]*arpAttempt),
		conns:      make(map[connKey]*Conn),
		listeners:  make(map[uint16]func(*Conn)),
		udpSocks:   make(map[uint16]*UDPSock),
		nextEphem:  32768,
	}
	h.nic = netsim.NewPort(s, name+"/eth0", h.receiveFrame)
	return h
}

// NIC returns the host's network port for wiring into the topology.
func (h *Host) NIC() *netsim.Port { return h.nic }

// MAC returns the hardware address.
func (h *Host) MAC() netstack.MAC { return h.mac }

// Sim returns the simulator the host runs on.
func (h *Host) Sim() *sim.Simulator { return h.sim }

// Conns returns the number of live TCP connections (any state, including
// TIME_WAIT). Tests use it to assert teardown leaves nothing behind.
func (h *Host) Conns() int { return len(h.conns) }

// Addr returns the configured IPv4 address (zero before configuration).
func (h *Host) Addr() netstack.Addr { return h.addr }

// Gateway returns the default router address.
func (h *Host) Gateway() netstack.Addr { return h.gw }

// PrefixBits returns the configured prefix length (zero before
// configuration). Fault injection snapshots it to reconfigure a host
// identically after a crash/restart cycle.
func (h *Host) PrefixBits() int { return h.bits }

// DNS returns the configured resolver address.
func (h *Host) DNS() netstack.Addr { return h.dns }

// ConfigureStatic assigns an address, prefix length, and default gateway.
func (h *Host) ConfigureStatic(addr netstack.Addr, bits int, gw netstack.Addr) {
	h.addr = addr
	h.bits = bits
	h.gw = gw
}

// SetDNS records the resolver address (typically from DHCP).
func (h *Host) SetDNS(dns netstack.Addr) { h.dns = dns }

// AnnounceARP broadcasts a gratuitous ARP for the host's address — the
// boot-time chatter that lets switches and the gateway learn freshly
// configured inmates.
func (h *Host) AnnounceARP() {
	if h.addr.IsZero() {
		return
	}
	p := &netstack.Packet{
		Eth: netstack.Ethernet{Dst: netstack.BroadcastMAC, Src: h.mac, EtherType: netstack.EtherTypeARP},
		ARP: &netstack.ARP{
			Op:       netstack.ARPRequest,
			SenderHW: h.mac, SenderIP: h.addr,
			TargetIP: h.addr,
		},
	}
	h.nic.Send(p.Marshal())
}

// AddRxHook registers an observer invoked for every parsed packet the host
// receives, before protocol processing. Used by instrumentation.
func (h *Host) AddRxHook(fn func(*netstack.Packet)) {
	h.rxHooks = append(h.rxHooks, fn)
}

// SetRawUDPHook installs a hook that sees UDP packets before socket
// dispatch; returning true consumes the packet. The DHCP client uses this
// to receive replies addressed to 255.255.255.255 before the host has an
// address.
func (h *Host) SetRawUDPHook(fn func(p *netstack.Packet) bool) { h.rawUDPHook = fn }

// Alive reports whether the host is powered on (not Shutdown). The
// supervision tree's root node polls it for watch-only service hosts.
func (h *Host) Alive() bool { return !h.dropRx }

// Shutdown aborts all connections and stops processing frames, emulating
// power-off. The host can be Reset afterwards.
func (h *Host) Shutdown() {
	h.dropRx = true
	for _, c := range h.sortedConns() {
		c.destroy(fmt.Errorf("host %s shut down", h.Name))
	}
}

// sortedConns snapshots h.conns in connKey order so bulk teardown
// (Shutdown, Reset) destroys connections — and fires their OnClose
// cascades — in a deterministic sequence rather than map order.
func (h *Host) sortedConns() []*Conn {
	keys := make([]connKey, 0, len(h.conns))
	for k := range h.conns {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.localPort != b.localPort {
			return a.localPort < b.localPort
		}
		if a.remoteIP != b.remoteIP {
			return a.remoteIP < b.remoteIP
		}
		return a.remotePort < b.remotePort
	})
	conns := make([]*Conn, len(keys))
	for i, k := range keys {
		conns[i] = h.conns[k]
	}
	return conns
}

// Reset returns the host to an unconfigured, powered-on state with empty
// caches and no sockets: the networking half of reverting an inmate to a
// clean snapshot.
func (h *Host) Reset() {
	h.dropRx = false
	h.addr, h.bits, h.gw, h.dns = 0, 0, 0, 0
	h.arpCache = make(map[netstack.Addr]netstack.MAC)
	h.arpPending = make(map[netstack.Addr][]pendingIP)
	for _, a := range h.arpRetry {
		a.ev.Cancel()
	}
	h.arpRetry = make(map[netstack.Addr]*arpAttempt)
	for _, c := range h.sortedConns() {
		c.destroy(fmt.Errorf("host %s reset", h.Name))
	}
	h.conns = make(map[connKey]*Conn)
	h.listeners = make(map[uint16]func(*Conn))
	h.udpSocks = make(map[uint16]*UDPSock)
	h.rawUDPHook = nil
	h.nextEphem = 32768
}

func (h *Host) receiveFrame(frame []byte) {
	if h.dropRx {
		return
	}
	p, err := netstack.ParseFrame(frame)
	if err != nil {
		return
	}
	// Hosts sit on access ports: frames arrive untagged. Ignore stray tags.
	if !p.Eth.Dst.IsBroadcast() && p.Eth.Dst != h.mac {
		return
	}
	for _, fn := range h.rxHooks {
		fn(p)
	}
	switch {
	case p.ARP != nil:
		h.handleARP(p.ARP)
	case p.IP != nil:
		h.handleIP(p)
	}
}

func (h *Host) handleARP(a *netstack.ARP) {
	// Opportunistically learn the sender.
	if !a.SenderIP.IsZero() {
		h.arpCache[a.SenderIP] = a.SenderHW
		h.flushARPPending(a.SenderIP)
	}
	if a.Op == netstack.ARPRequest && !h.addr.IsZero() && a.TargetIP == h.addr {
		reply := &netstack.Packet{
			Eth: netstack.Ethernet{Dst: a.SenderHW, Src: h.mac, EtherType: netstack.EtherTypeARP},
			ARP: &netstack.ARP{
				Op:       netstack.ARPReply,
				SenderHW: h.mac, SenderIP: h.addr,
				TargetHW: a.SenderHW, TargetIP: a.SenderIP,
			},
		}
		h.nic.Send(reply.Marshal())
	}
}

func (h *Host) handleIP(p *netstack.Packet) {
	if !p.IP.Dst.IsBroadcast() && !h.addr.IsZero() && p.IP.Dst != h.addr {
		return // not a router
	}
	switch {
	case p.TCP != nil:
		h.handleTCP(p)
	case p.UDP != nil:
		h.handleUDP(p)
	}
}

func (h *Host) handleUDP(p *netstack.Packet) {
	if h.rawUDPHook != nil && h.rawUDPHook(p) {
		return
	}
	if s, ok := h.udpSocks[p.UDP.DstPort]; ok && s.recv != nil {
		s.RxDatagrams++
		s.recv(p.IP.Src, p.UDP.SrcPort, p.Payload)
		return
	}
	// Wildcard receivers only see unicast: broadcast chatter (DHCP et al.)
	// is infrastructure noise, not contained flows.
	if h.anyUDP != nil && !p.IP.Dst.IsBroadcast() {
		h.anyUDP(p.UDP.DstPort, p.IP.Src, p.UDP.SrcPort, p.Payload)
	}
}

// ListenAny installs a wildcard TCP accept callback consulted when no
// port-specific listener exists. GQ's catch-all sink servers "accept
// arbitrary traffic without meaningfully responding to it" on every port.
func (h *Host) ListenAny(accept func(*Conn)) { h.anyListener = accept }

// ListenUDPAny installs a wildcard UDP receiver for ports without a bound
// socket.
func (h *Host) ListenUDPAny(recv func(dstPort uint16, src netstack.Addr, srcPort uint16, data []byte)) {
	h.anyUDP = recv
}

// sendIP routes and transmits an IP payload, resolving the next hop via
// ARP and queueing while resolution is in flight.
func (h *Host) sendIP(dst netstack.Addr, proto uint8, payload []byte) {
	if dst.IsBroadcast() {
		h.emitIP(netstack.BroadcastMAC, dst, proto, payload)
		return
	}
	nexthop := dst
	if h.bits > 0 && dst.Mask(h.bits) != h.addr.Mask(h.bits) {
		if h.gw.IsZero() {
			return // no route
		}
		nexthop = h.gw
	}
	if mac, ok := h.arpCache[nexthop]; ok {
		h.emitIP(mac, dst, proto, payload)
		return
	}
	h.arpPending[nexthop] = append(h.arpPending[nexthop], pendingIP{proto: proto, payload: payload, dst: dst})
	if _, inflight := h.arpRetry[nexthop]; !inflight {
		h.startARP(nexthop, 0)
	}
}

func (h *Host) startARP(target netstack.Addr, tries int) {
	req := &netstack.Packet{
		Eth: netstack.Ethernet{Dst: netstack.BroadcastMAC, Src: h.mac, EtherType: netstack.EtherTypeARP},
		ARP: &netstack.ARP{
			Op:       netstack.ARPRequest,
			SenderHW: h.mac, SenderIP: h.addr,
			TargetIP: target,
		},
	}
	h.nic.Send(req.Marshal())
	ev := h.sim.Schedule(arpRetryInterval, func() {
		att := h.arpRetry[target]
		if att == nil {
			return
		}
		if att.tries+1 >= arpMaxRetries {
			delete(h.arpRetry, target)
			delete(h.arpPending, target) // unresolvable: drop queued traffic
			return
		}
		h.startARP(target, att.tries+1)
	})
	h.arpRetry[target] = &arpAttempt{tries: tries, ev: ev}
}

func (h *Host) flushARPPending(addr netstack.Addr) {
	if att, ok := h.arpRetry[addr]; ok {
		att.ev.Cancel()
		delete(h.arpRetry, addr)
	}
	queued := h.arpPending[addr]
	if len(queued) == 0 {
		return
	}
	delete(h.arpPending, addr)
	mac := h.arpCache[addr]
	for _, q := range queued {
		h.emitIP(mac, q.dst, q.proto, q.payload)
	}
}

func (h *Host) emitIP(dstMAC netstack.MAC, dst netstack.Addr, proto uint8, payload []byte) {
	h.ipID++
	p := &netstack.Packet{
		Eth: netstack.Ethernet{Dst: dstMAC, Src: h.mac, EtherType: netstack.EtherTypeIPv4},
		IP: &netstack.IPv4{
			ID: h.ipID, TTL: netstack.DefaultTTL, Protocol: proto,
			Src: h.addr, Dst: dst,
		},
		Payload: payload,
	}
	// payload already contains the marshalled transport segment; marshal
	// the IP layer directly around it.
	buf := p.Eth.Marshal(make([]byte, 0, p.Eth.HeaderLen()+netstack.IPv4HeaderLen+len(payload)))
	buf = p.IP.Marshal(buf, payload)
	h.nic.Send(buf)
}

// ephemeralSpan is the size of the ephemeral port range [32768, 65536):
// allocEphemeral probes each port exactly once before declaring
// exhaustion, so it only panics when every ephemeral port is truly taken.
const ephemeralSpan = 65536 - 32768

func (h *Host) allocEphemeral() uint16 {
	for i := 0; i < ephemeralSpan; i++ {
		port := h.nextEphem
		h.nextEphem++
		if h.nextEphem < 32768 {
			h.nextEphem = 32768
		}
		if _, taken := h.udpSocks[port]; taken {
			continue
		}
		if _, taken := h.listeners[port]; taken {
			continue
		}
		inUse := false
		for k := range h.conns {
			if k.localPort == port {
				inUse = true
				break
			}
		}
		if !inUse {
			return port
		}
	}
	panic("host: ephemeral port space exhausted")
}

// UDPSock is a bound UDP socket.
type UDPSock struct {
	host *Host
	port uint16
	recv func(src netstack.Addr, srcPort uint16, data []byte)

	RxDatagrams uint64
	TxDatagrams uint64
}

// ListenUDP binds a UDP port. Passing port 0 allocates an ephemeral port.
func (h *Host) ListenUDP(port uint16, recv func(src netstack.Addr, srcPort uint16, data []byte)) (*UDPSock, error) {
	if port == 0 {
		port = h.allocEphemeral()
	}
	if _, taken := h.udpSocks[port]; taken {
		return nil, fmt.Errorf("host %s: UDP port %d in use", h.Name, port)
	}
	s := &UDPSock{host: h, port: port, recv: recv}
	h.udpSocks[port] = s
	return s, nil
}

// Port returns the bound port.
func (s *UDPSock) Port() uint16 { return s.port }

// SendTo transmits a datagram.
func (s *UDPSock) SendTo(dst netstack.Addr, dstPort uint16, data []byte) {
	u := netstack.UDP{SrcPort: s.port, DstPort: dstPort}
	src := s.host.addr
	seg := u.Marshal(nil, src, dst, data)
	s.TxDatagrams++
	s.host.sendIP(dst, netstack.ProtoUDP, seg)
}

// Close unbinds the socket.
func (s *UDPSock) Close() { delete(s.host.udpSocks, s.port) }
