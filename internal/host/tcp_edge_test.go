package host

import (
	"testing"
	"time"

	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/sim"
)

// rawPeer lets tests inject hand-crafted segments at a host, bypassing any
// well-behaved stack — for exercising reassembly and RST paths the
// in-order simulated network never produces naturally.
type rawPeer struct {
	port *netsim.Port
	mac  netstack.MAC
	addr netstack.Addr
	rx   []*netstack.Packet
}

func newRawPeer(s *sim.Simulator, addr netstack.Addr) *rawPeer {
	p := &rawPeer{mac: netstack.MAC{2, 0, 0, 0, 9, 9}, addr: addr}
	p.port = netsim.NewPort(s, "raw", func(frame []byte) {
		pkt, err := netstack.ParseFrame(frame)
		if err != nil {
			return
		}
		// Answer ARP so the victim can deliver its segments.
		if pkt.ARP != nil && pkt.ARP.Op == netstack.ARPRequest && pkt.ARP.TargetIP == p.addr {
			reply := &netstack.Packet{
				Eth: netstack.Ethernet{Dst: pkt.ARP.SenderHW, Src: p.mac, EtherType: netstack.EtherTypeARP},
				ARP: &netstack.ARP{
					Op:       netstack.ARPReply,
					SenderHW: p.mac, SenderIP: p.addr,
					TargetHW: pkt.ARP.SenderHW, TargetIP: pkt.ARP.SenderIP,
				},
			}
			p.port.Send(reply.Marshal())
			return
		}
		p.rx = append(p.rx, pkt)
	})
	return p
}

func (p *rawPeer) send(dstMAC netstack.MAC, dst netstack.Addr, t *netstack.TCP, payload []byte) {
	pkt := &netstack.Packet{
		Eth:     netstack.Ethernet{Dst: dstMAC, Src: p.mac, EtherType: netstack.EtherTypeIPv4},
		IP:      &netstack.IPv4{TTL: 64, Protocol: netstack.ProtoTCP, Src: p.addr, Dst: dst},
		TCP:     t,
		Payload: payload,
	}
	p.port.Send(pkt.Marshal())
}

// lastTCP returns the most recent TCP segment the peer received.
func (p *rawPeer) lastTCP() *netstack.Packet {
	for i := len(p.rx) - 1; i >= 0; i-- {
		if p.rx[i].TCP != nil {
			return p.rx[i]
		}
	}
	return nil
}

func rawSetup(t *testing.T) (*sim.Simulator, *Host, *rawPeer) {
	t.Helper()
	s := sim.New(5)
	sw := netsim.NewSwitch(s, "sw")
	h := New(s, "victim", netstack.MAC{2, 0, 0, 0, 0, 1})
	peer := newRawPeer(s, netstack.MustParseAddr("10.0.0.9"))
	netsim.Connect(sw.AddAccessPort("h", 10), h.NIC(), 0)
	netsim.Connect(sw.AddAccessPort("p", 10), peer.port, 0)
	h.ConfigureStatic(netstack.MustParseAddr("10.0.0.1"), 24, 0)
	return s, h, peer
}

// handshake completes a raw three-way handshake from the peer and returns
// (server ISN, client next seq).
func rawHandshake(t *testing.T, s *sim.Simulator, h *Host, peer *rawPeer, port uint16) (uint32, uint32) {
	t.Helper()
	const iss = 1000
	peer.send(h.MAC(), h.Addr(), &netstack.TCP{
		SrcPort: 5555, DstPort: port, Seq: iss, Flags: netstack.FlagSYN, Window: 65535,
	}, nil)
	s.RunFor(time.Second)
	synack := peer.lastTCP()
	if synack == nil || synack.TCP.Flags&netstack.FlagSYN == 0 {
		t.Fatal("no SYN-ACK")
	}
	serverISN := synack.TCP.Seq
	peer.send(h.MAC(), h.Addr(), &netstack.TCP{
		SrcPort: 5555, DstPort: port, Seq: iss + 1, Ack: serverISN + 1,
		Flags: netstack.FlagACK, Window: 65535,
	}, nil)
	s.RunFor(time.Second)
	return serverISN, iss + 1
}

func TestTCPOutOfOrderReassembly(t *testing.T) {
	s, h, peer := rawSetup(t)
	var got []byte
	h.Listen(80, func(c *Conn) {
		c.OnData = func(d []byte) { got = append(got, d...) }
	})
	serverISN, next := rawHandshake(t, s, h, peer, 80)

	seg := func(off int, payload string) {
		peer.send(h.MAC(), h.Addr(), &netstack.TCP{
			SrcPort: 5555, DstPort: 80,
			Seq: next + uint32(off), Ack: serverISN + 1,
			Flags: netstack.FlagACK | netstack.FlagPSH, Window: 65535,
		}, []byte(payload))
	}
	// Deliver the middle and tail before the head.
	seg(5, "WORLD")
	seg(10, "!")
	s.RunFor(time.Second)
	if len(got) != 0 {
		t.Fatalf("out-of-order data delivered early: %q", got)
	}
	seg(0, "HELLO")
	s.RunFor(time.Second)
	if string(got) != "HELLOWORLD!" {
		t.Fatalf("reassembled %q", got)
	}
}

func TestTCPDuplicateSegmentsDeliveredOnce(t *testing.T) {
	s, h, peer := rawSetup(t)
	var got []byte
	h.Listen(80, func(c *Conn) {
		c.OnData = func(d []byte) { got = append(got, d...) }
	})
	serverISN, next := rawHandshake(t, s, h, peer, 80)
	for i := 0; i < 3; i++ {
		peer.send(h.MAC(), h.Addr(), &netstack.TCP{
			SrcPort: 5555, DstPort: 80, Seq: next, Ack: serverISN + 1,
			Flags: netstack.FlagACK | netstack.FlagPSH, Window: 65535,
		}, []byte("ONCE"))
	}
	s.RunFor(time.Second)
	if string(got) != "ONCE" {
		t.Fatalf("duplicates delivered: %q", got)
	}
}

func TestTCPOverlappingSegmentTrimmed(t *testing.T) {
	s, h, peer := rawSetup(t)
	var got []byte
	h.Listen(80, func(c *Conn) {
		c.OnData = func(d []byte) { got = append(got, d...) }
	})
	serverISN, next := rawHandshake(t, s, h, peer, 80)
	peer.send(h.MAC(), h.Addr(), &netstack.TCP{
		SrcPort: 5555, DstPort: 80, Seq: next, Ack: serverISN + 1,
		Flags: netstack.FlagACK, Window: 65535,
	}, []byte("ABCDE"))
	// Retransmission covering old data plus two new bytes.
	peer.send(h.MAC(), h.Addr(), &netstack.TCP{
		SrcPort: 5555, DstPort: 80, Seq: next + 3, Ack: serverISN + 1,
		Flags: netstack.FlagACK, Window: 65535,
	}, []byte("DEFG"))
	s.RunFor(time.Second)
	if string(got) != "ABCDEFG" {
		t.Fatalf("overlap handling produced %q", got)
	}
}

func TestTCPSimultaneousClose(t *testing.T) {
	s := sim.New(6)
	sw := netsim.NewSwitch(s, "sw")
	a := New(s, "a", netstack.MAC{2, 0, 0, 0, 0, 1})
	b := New(s, "b", netstack.MAC{2, 0, 0, 0, 0, 2})
	netsim.Connect(sw.AddAccessPort("a", 10), a.NIC(), 0)
	netsim.Connect(sw.AddAccessPort("b", 10), b.NIC(), 0)
	a.ConfigureStatic(netstack.MustParseAddr("10.0.0.1"), 24, 0)
	b.ConfigureStatic(netstack.MustParseAddr("10.0.0.2"), 24, 0)

	var serverConn *Conn
	var serverClosed, clientClosed bool
	b.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnClose = func(err error) { serverClosed = err == nil }
	})
	c := a.Dial(b.Addr(), 80)
	c.OnClose = func(err error) { clientClosed = err == nil }
	s.RunFor(5 * time.Second) // both ends established
	if serverConn == nil {
		t.Fatal("server never accepted")
	}
	// Close both ends in the same simulator tick: FINs cross in flight
	// (the CLOSING state path).
	c.Close()
	serverConn.Close()
	s.RunFor(time.Minute)
	if !clientClosed || !serverClosed {
		t.Fatalf("simultaneous close: client=%v server=%v", clientClosed, serverClosed)
	}
	if len(a.conns) != 0 || len(b.conns) != 0 {
		t.Fatalf("conn leak: a=%d b=%d", len(a.conns), len(b.conns))
	}
}

func TestTCPHalfClose(t *testing.T) {
	s := sim.New(7)
	sw := netsim.NewSwitch(s, "sw")
	a := New(s, "a", netstack.MAC{2, 0, 0, 0, 0, 1})
	b := New(s, "b", netstack.MAC{2, 0, 0, 0, 0, 2})
	netsim.Connect(sw.AddAccessPort("a", 10), a.NIC(), 0)
	netsim.Connect(sw.AddAccessPort("b", 10), b.NIC(), 0)
	a.ConfigureStatic(netstack.MustParseAddr("10.0.0.1"), 24, 0)
	b.ConfigureStatic(netstack.MustParseAddr("10.0.0.2"), 24, 0)

	// Server keeps sending after receiving the client's FIN (half-close):
	// classic request/response-stream shape.
	b.Listen(80, func(c *Conn) {
		c.OnPeerClose = func() {
			c.Write([]byte("late-response"))
			c.Close()
		}
	})
	var got []byte
	var closed bool
	c := a.Dial(b.Addr(), 80)
	c.OnConnect = func() { c.Write([]byte("req")); c.Close() }
	c.OnData = func(d []byte) { got = append(got, d...) }
	c.OnClose = func(err error) { closed = err == nil }
	s.RunFor(time.Minute)
	if string(got) != "late-response" {
		t.Fatalf("half-close data lost: %q", got)
	}
	if !closed {
		t.Fatal("connection never finished")
	}
}

// TestTCPPartialOverlapStashDelivered pins the reassembly fix for stashes
// that only partially overlap later in-order data: an out-of-order segment
// at next+3 must still be delivered (trimmed) when the head segment covers
// next..next+5, instead of stranding in the ooo map forever.
func TestTCPPartialOverlapStashDelivered(t *testing.T) {
	s, h, peer := rawSetup(t)
	var got []byte
	var conn *Conn
	h.Listen(80, func(c *Conn) {
		conn = c
		c.OnData = func(d []byte) { got = append(got, d...) }
	})
	serverISN, next := rawHandshake(t, s, h, peer, 80)

	seg := func(off int, payload string) {
		peer.send(h.MAC(), h.Addr(), &netstack.TCP{
			SrcPort: 5555, DstPort: 80,
			Seq: next + uint32(off), Ack: serverISN + 1,
			Flags: netstack.FlagACK | netstack.FlagPSH, Window: 65535,
		}, []byte(payload))
	}
	seg(3, "DEFGH") // out of order: stashed at next+3
	s.RunFor(100 * time.Millisecond)
	seg(0, "ABCDE") // head overlaps the stash by two bytes
	s.RunFor(100 * time.Millisecond)
	if string(got) != "ABCDEFGH" {
		t.Fatalf("partial-overlap stash mishandled: got %q, want %q", got, "ABCDEFGH")
	}
	if conn == nil || len(conn.ooo) != 0 {
		t.Fatalf("ooo map not drained: %d entries", len(conn.ooo))
	}
	if ack := peer.lastTCP(); ack == nil || ack.TCP.Ack != next+8 {
		t.Fatalf("final ACK %d, want %d", ack.TCP.Ack, next+8)
	}
}

// TestTCPOutOfOrderFINImmediateEOF pins the early-FIN fix: when a FIN
// arrives ahead of a lost data segment and the retransmit then fills the
// gap, the receiver must signal EOF as soon as the stream is complete —
// not a full RTO later when the peer resends the FIN.
func TestTCPOutOfOrderFINImmediateEOF(t *testing.T) {
	s, h, peer := rawSetup(t)
	var got []byte
	var peerClosed bool
	var conn *Conn
	h.Listen(80, func(c *Conn) {
		conn = c
		c.OnData = func(d []byte) { got = append(got, d...) }
		c.OnPeerClose = func() { peerClosed = true }
	})
	serverISN, next := rawHandshake(t, s, h, peer, 80)

	// Tail of the stream plus FIN arrives first (head was "lost").
	peer.send(h.MAC(), h.Addr(), &netstack.TCP{
		SrcPort: 5555, DstPort: 80, Seq: next + 5, Ack: serverISN + 1,
		Flags: netstack.FlagACK | netstack.FlagPSH | netstack.FlagFIN, Window: 65535,
	}, []byte("WORLD"))
	s.RunFor(100 * time.Millisecond)
	if peerClosed {
		t.Fatal("EOF signalled with the stream still incomplete")
	}
	// The "retransmitted" head fills the gap; EOF must follow immediately,
	// well inside the 1s initial RTO.
	peer.send(h.MAC(), h.Addr(), &netstack.TCP{
		SrcPort: 5555, DstPort: 80, Seq: next, Ack: serverISN + 1,
		Flags: netstack.FlagACK | netstack.FlagPSH, Window: 65535,
	}, []byte("HELLO"))
	s.RunFor(100 * time.Millisecond)
	if string(got) != "HELLOWORLD" {
		t.Fatalf("reassembled %q", got)
	}
	if !peerClosed {
		t.Fatal("EOF delayed: out-of-order FIN was not processed when the gap filled")
	}
	if conn.State() != StateCloseWait {
		t.Fatalf("state %v after peer FIN, want CLOSE_WAIT", conn.State())
	}
	if ack := peer.lastTCP(); ack == nil || ack.TCP.Ack != next+11 {
		t.Fatalf("final ACK %d, want %d (data+FIN)", ack.TCP.Ack, next+11)
	}
}

// TestTCPDuplicateFINSignaledOnce pins FIN idempotency: a retransmitted
// FIN must neither re-fire OnPeerClose nor consume another sequence
// number.
func TestTCPDuplicateFINSignaledOnce(t *testing.T) {
	s, h, peer := rawSetup(t)
	peerCloses := 0
	h.Listen(80, func(c *Conn) {
		c.OnPeerClose = func() { peerCloses++ }
	})
	serverISN, next := rawHandshake(t, s, h, peer, 80)
	finSeg := func() {
		peer.send(h.MAC(), h.Addr(), &netstack.TCP{
			SrcPort: 5555, DstPort: 80, Seq: next, Ack: serverISN + 1,
			Flags: netstack.FlagACK | netstack.FlagPSH | netstack.FlagFIN, Window: 65535,
		}, []byte("DATA"))
	}
	finSeg()
	s.RunFor(100 * time.Millisecond)
	finSeg() // retransmission of the same data+FIN
	s.RunFor(100 * time.Millisecond)
	if peerCloses != 1 {
		t.Fatalf("OnPeerClose fired %d times, want 1", peerCloses)
	}
	if ack := peer.lastTCP(); ack == nil || ack.TCP.Ack != next+5 {
		t.Fatalf("ACK %d, want %d (duplicate FIN must not consume sequence space)", ack.TCP.Ack, next+5)
	}
}

// TestTCPCloseBeforeAcceptCompletes pins the SYN_RCVD close fix: an
// application closing a passively-opened connection before the handshake
// ACK arrives (host teardown does exactly this) queues a FIN, and that
// FIN must flush on the transition into ESTABLISHED — the handshake ACK
// cancels the retransmit timer, so before the fix nothing ever sent it.
func TestTCPCloseBeforeAcceptCompletes(t *testing.T) {
	s, h, peer := rawSetup(t)
	h.Listen(80, func(c *Conn) {})
	const iss = 1000
	peer.send(h.MAC(), h.Addr(), &netstack.TCP{
		SrcPort: 5555, DstPort: 80, Seq: iss, Flags: netstack.FlagSYN, Window: 65535,
	}, nil)
	s.RunFor(time.Second)
	synack := peer.lastTCP()
	if synack == nil || synack.TCP.Flags&netstack.FlagSYN == 0 {
		t.Fatal("no SYN-ACK")
	}
	// Grab the embryonic connection and close it while still in SYN_RCVD.
	var conn *Conn
	for _, c := range h.conns {
		conn = c
	}
	if conn == nil || conn.State() != StateSynRcvd {
		t.Fatalf("expected a SYN_RCVD conn, got %v", conn)
	}
	conn.Close()
	// Handshake completes; the queued FIN must go out promptly.
	peer.send(h.MAC(), h.Addr(), &netstack.TCP{
		SrcPort: 5555, DstPort: 80, Seq: iss + 1, Ack: synack.TCP.Seq + 1,
		Flags: netstack.FlagACK, Window: 65535,
	}, nil)
	s.RunFor(500 * time.Millisecond) // well under the 1s initial RTO
	last := peer.lastTCP()
	if last == nil || last.TCP.Flags&netstack.FlagFIN == 0 {
		t.Fatal("queued FIN never flushed after SYN_RCVD -> ESTABLISHED")
	}
	if conn.State() != StateFinWait1 {
		t.Fatalf("state %v, want FIN_WAIT_1", conn.State())
	}
}

// TestTCPWriteAndCloseBeforeSynAck pins the SYN_SENT close fix: data
// written and Close called before the SYN-ACK arrives must still be
// delivered and the connection closed cleanly, instead of being torn
// down with the buffered bytes discarded.
func TestTCPWriteAndCloseBeforeSynAck(t *testing.T) {
	s := sim.New(8)
	sw := netsim.NewSwitch(s, "sw")
	a := New(s, "a", netstack.MAC{2, 0, 0, 0, 0, 1})
	b := New(s, "b", netstack.MAC{2, 0, 0, 0, 0, 2})
	netsim.Connect(sw.AddAccessPort("a", 10), a.NIC(), 0)
	netsim.Connect(sw.AddAccessPort("b", 10), b.NIC(), 0)
	a.ConfigureStatic(netstack.MustParseAddr("10.0.0.1"), 24, 0)
	b.ConfigureStatic(netstack.MustParseAddr("10.0.0.2"), 24, 0)

	var got []byte
	b.Listen(80, func(c *Conn) {
		c.OnData = func(d []byte) { got = append(got, d...) }
		c.OnPeerClose = func() { c.Close() }
	})
	var closed, cleanly bool
	c := a.Dial(b.Addr(), 80)
	c.Write([]byte("early-request"))
	c.Close() // still in SYN_SENT, with data buffered
	c.OnClose = func(err error) { closed, cleanly = true, err == nil }
	s.RunFor(time.Minute)
	if string(got) != "early-request" {
		t.Fatalf("data written before SYN-ACK lost: got %q", got)
	}
	if !closed || !cleanly {
		t.Fatalf("close before SYN-ACK: closed=%v cleanly=%v", closed, cleanly)
	}
	if len(a.conns) != 0 || len(b.conns) != 0 {
		t.Fatalf("conn leak: a=%d b=%d", len(a.conns), len(b.conns))
	}
}

func TestTCPRSTForUnknownSegment(t *testing.T) {
	s, h, peer := rawSetup(t)
	// A stray ACK to a closed port must draw RST.
	peer.send(h.MAC(), h.Addr(), &netstack.TCP{
		SrcPort: 5555, DstPort: 81, Seq: 1, Ack: 2,
		Flags: netstack.FlagACK, Window: 65535,
	}, nil)
	s.RunFor(time.Second)
	last := peer.lastTCP()
	if last == nil || last.TCP.Flags&netstack.FlagRST == 0 {
		t.Fatal("no RST for stray segment")
	}
	// RFC 793: RST for an ACK-bearing segment uses the segment's ACK as
	// its sequence number.
	if last.TCP.Seq != 2 {
		t.Fatalf("RST seq %d, want 2", last.TCP.Seq)
	}
}
