package host

import (
	"errors"
	"fmt"
	"time"

	"gq/internal/netstack"
	"gq/internal/sim"
)

// TCP tuning. Values are modest because the farm's links are fast and the
// experiments care about behaviour, not bulk throughput.
const (
	MSS              = 1400
	DefaultWindow    = 65535
	rtoInitial       = 1 * time.Second
	rtoMax           = 16 * time.Second
	maxRetransmits   = 5
	timeWaitDuration = 10 * time.Second
	synBacklogLimit  = 128
)

// TCPState enumerates the RFC 793 connection states.
type TCPState int

// Connection states.
const (
	StateClosed TCPState = iota
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateLastAck
	StateClosing
	StateTimeWait
)

var stateNames = [...]string{
	"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
	"FIN_WAIT_1", "FIN_WAIT_2", "CLOSE_WAIT", "LAST_ACK", "CLOSING", "TIME_WAIT",
}

func (s TCPState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("TCPState(%d)", int(s))
}

// ErrConnReset is delivered to OnClose when the peer resets the connection.
var ErrConnReset = errors.New("connection reset by peer")

// ErrTimeout is delivered to OnClose when retransmissions are exhausted.
var ErrTimeout = errors.New("connection timed out")

// Conn is a TCP connection endpoint. Callbacks fire from within simulator
// events; applications must not block inside them.
type Conn struct {
	host *Host
	key  connKey

	state      TCPState
	localPort  uint16
	remoteIP   netstack.Addr
	remotePort uint16

	// Send state. sndBuf holds bytes from sequence number sndUna onward;
	// the first sndNxt-sndUna bytes are in flight.
	iss, sndUna, sndNxt uint32
	sndWnd              uint16
	sndBuf              []byte
	finQueued, finSent  bool

	// Receive state. ooo stashes segments received beyond rcvNxt, keyed
	// by starting sequence number; entries may overlap the delivered
	// stream (go-back-N resends from sndUna) and are trimmed on drain.
	irs, rcvNxt uint32
	ooo         map[uint32][]byte
	// oooFin records a FIN observed beyond rcvNxt at sequence oooFinSeq;
	// finRcvd makes FIN processing idempotent under retransmission.
	oooFin    bool
	oooFinSeq uint32
	finRcvd   bool

	rtx      *sim.Event
	retries  int
	rto      time.Duration
	timeWait *sim.Event
	acceptFn func(*Conn) // deferred listener callback for passive opens

	// OnConnect fires when the connection reaches ESTABLISHED (for both
	// active and passive opens).
	OnConnect func()
	// OnData delivers in-order payload bytes.
	OnData func([]byte)
	// OnPeerClose fires when the peer's FIN is received (EOF). The
	// connection can still send until Close is called.
	OnPeerClose func()
	// OnClose fires exactly once when the connection is fully torn down;
	// err is nil for a clean bidirectional close.
	OnClose func(err error)

	closed bool

	// BytesIn and BytesOut count application payload.
	BytesIn, BytesOut uint64
}

// State returns the connection state.
func (c *Conn) State() TCPState { return c.state }

// LocalPort returns the local port.
func (c *Conn) LocalPort() uint16 { return c.localPort }

// RemoteAddr returns the peer address and port.
func (c *Conn) RemoteAddr() (netstack.Addr, uint16) { return c.remoteIP, c.remotePort }

// LocalAddr returns the host address.
func (c *Conn) LocalAddr() netstack.Addr { return c.host.addr }

// Listen registers an accept callback for a TCP port. The callback receives
// connections once they reach ESTABLISHED.
func (h *Host) Listen(port uint16, accept func(*Conn)) error {
	if _, taken := h.listeners[port]; taken {
		return fmt.Errorf("host %s: TCP port %d already listening", h.Name, port)
	}
	h.listeners[port] = accept
	return nil
}

// Unlisten removes a listener; established connections are unaffected.
func (h *Host) Unlisten(port uint16) { delete(h.listeners, port) }

// Dial opens a connection to dst:port from an ephemeral local port and
// returns it in SYN_SENT. Attach callbacks before the next simulator event.
func (h *Host) Dial(dst netstack.Addr, port uint16) *Conn {
	c := h.newConn(h.allocEphemeral(), dst, port)
	c.state = StateSynSent
	c.iss = h.sim.Rand().Uint32()
	c.sndUna, c.sndNxt = c.iss, c.iss+1
	h.conns[c.key] = c
	c.sendSegment(netstack.FlagSYN, c.iss, 0, nil)
	c.armRetransmit()
	return c
}

func (h *Host) newConn(localPort uint16, rip netstack.Addr, rport uint16) *Conn {
	return &Conn{
		host:      h,
		key:       connKey{localPort: localPort, remoteIP: rip, remotePort: rport},
		localPort: localPort, remoteIP: rip, remotePort: rport,
		rto:    rtoInitial,
		sndWnd: DefaultWindow,
		ooo:    make(map[uint32][]byte),
	}
}

// Write queues application data for transmission. Writing after Close or on
// a reset connection is a silent no-op (matching the fire-and-forget style
// of the simulated applications).
func (c *Conn) Write(data []byte) {
	if c.closed || c.finQueued || len(data) == 0 {
		return
	}
	switch c.state {
	case StateSynSent, StateSynRcvd, StateEstablished, StateCloseWait:
		c.sndBuf = append(c.sndBuf, data...)
		c.BytesOut += uint64(len(data))
		c.trySend()
	}
}

// Close initiates a graceful shutdown: queued data is flushed, then a FIN.
func (c *Conn) Close() {
	if c.closed || c.finQueued {
		return
	}
	switch c.state {
	case StateSynSent:
		if len(c.sndBuf) > 0 {
			// Data was written before the SYN-ACK arrived: queue the FIN
			// behind it and let the flush on establishment send both.
			c.finQueued = true
			return
		}
		// Nothing sent yet beyond SYN; tear down silently.
		c.destroy(nil)
	case StateSynRcvd, StateEstablished, StateCloseWait:
		c.finQueued = true
		c.trySend()
	}
}

// Abort sends a RST and tears the connection down immediately.
func (c *Conn) Abort() {
	if c.closed {
		return
	}
	if c.state != StateSynSent && c.state != StateClosed {
		c.sendSegment(netstack.FlagRST|netstack.FlagACK, c.sndNxt, c.rcvNxt, nil)
	}
	c.destroy(ErrConnReset)
}

// trySend transmits as much queued data (and a queued FIN) as the peer's
// window allows.
func (c *Conn) trySend() {
	if c.state != StateEstablished && c.state != StateCloseWait {
		return
	}
	inFlight := c.sndNxt - c.sndUna
	avail := uint32(len(c.sndBuf)) - inFlight
	window := uint32(c.sndWnd)
	sent := false
	for avail > 0 && inFlight < window {
		n := avail
		if n > MSS {
			n = MSS
		}
		if inFlight+n > window {
			n = window - inFlight
		}
		off := inFlight
		seg := c.sndBuf[off : off+n]
		c.sendSegment(netstack.FlagACK|netstack.FlagPSH, c.sndNxt, c.rcvNxt, seg)
		c.sndNxt += n
		inFlight += n
		avail -= n
		sent = true
	}
	if c.finQueued && !c.finSent && avail == 0 {
		c.sendSegment(netstack.FlagFIN|netstack.FlagACK, c.sndNxt, c.rcvNxt, nil)
		c.sndNxt++
		c.finSent = true
		sent = true
		switch c.state {
		case StateEstablished:
			c.state = StateFinWait1
		case StateCloseWait:
			c.state = StateLastAck
		}
	}
	if sent {
		c.armRetransmit()
	}
}

func (c *Conn) sendSegment(flags uint8, seq, ack uint32, payload []byte) {
	t := netstack.TCP{
		SrcPort: c.localPort, DstPort: c.remotePort,
		Seq: seq, Ack: ack, Flags: flags, Window: DefaultWindow,
	}
	seg := t.Marshal(nil, c.host.addr, c.remoteIP, payload)
	c.host.sendIP(c.remoteIP, netstack.ProtoTCP, seg)
}

func (c *Conn) armRetransmit() {
	if c.rtx != nil {
		c.rtx.Cancel()
	}
	c.rtx = c.host.sim.Schedule(c.rto, c.retransmit)
}

// resetRTO is called whenever the peer acknowledges forward progress: the
// retry budget refills and the timeout collapses back to the initial value.
func (c *Conn) resetRTO() {
	c.retries = 0
	c.rto = rtoInitial
}

func (c *Conn) retransmit() {
	if c.closed {
		return
	}
	c.retries++
	if c.retries > maxRetransmits {
		c.destroy(ErrTimeout)
		return
	}
	// Exponential backoff with a cap: under heavy injected loss the
	// retransmission interval doubles (1s, 2s, 4s, ... rtoMax) instead of
	// hammering the link at a fixed cadence.
	if c.rto < rtoMax {
		c.rto *= 2
		if c.rto > rtoMax {
			c.rto = rtoMax
		}
	}
	switch c.state {
	case StateSynSent:
		c.sendSegment(netstack.FlagSYN, c.iss, 0, nil)
	case StateSynRcvd:
		c.sendSegment(netstack.FlagSYN|netstack.FlagACK, c.iss, c.rcvNxt, nil)
	default:
		// Go-back-N from sndUna.
		c.sndNxt = c.sndUna
		c.finSent = false
		if c.state == StateFinWait1 {
			c.state = StateEstablished
		}
		if c.state == StateLastAck {
			c.state = StateCloseWait
		}
		c.trySend()
		if c.sndNxt == c.sndUna {
			// Nothing to resend (pure ACK loss); keep the timer for FIN states.
			c.armRetransmit()
			return
		}
	}
	c.armRetransmit()
}

// destroy finalises the connection and fires OnClose exactly once.
func (c *Conn) destroy(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.state = StateClosed
	c.ooo = nil // sweep any stale reassembly stash with the conn
	c.oooFin = false
	if c.rtx != nil {
		c.rtx.Cancel()
	}
	if c.timeWait != nil {
		c.timeWait.Cancel()
	}
	delete(c.host.conns, c.key)
	if c.OnClose != nil {
		c.OnClose(err)
	}
}

// handleTCP dispatches an inbound segment to its connection, or to a
// listener for SYNs, or answers with RST.
func (h *Host) handleTCP(p *netstack.Packet) {
	t := p.TCP
	key := connKey{localPort: t.DstPort, remoteIP: p.IP.Src, remotePort: t.SrcPort}
	if c, ok := h.conns[key]; ok {
		c.handleSegment(t, p.Payload)
		return
	}
	if t.Flags&netstack.FlagSYN != 0 && t.Flags&netstack.FlagACK == 0 {
		accept, ok := h.listeners[t.DstPort]
		if !ok && h.anyListener != nil {
			accept, ok = h.anyListener, true
		}
		if ok {
			if len(h.conns) >= synBacklogLimit*64 {
				return // implausible in simulation; guard anyway
			}
			c := h.newConn(t.DstPort, p.IP.Src, t.SrcPort)
			c.state = StateSynRcvd
			c.irs = t.Seq
			c.rcvNxt = t.Seq + 1
			c.iss = h.sim.Rand().Uint32()
			c.sndUna, c.sndNxt = c.iss, c.iss+1
			c.sndWnd = t.Window
			c.acceptFn = accept
			h.conns[key] = c
			c.sendSegment(netstack.FlagSYN|netstack.FlagACK, c.iss, c.rcvNxt, nil)
			c.armRetransmit()
			return
		}
	}
	// No socket: answer non-RST segments with RST.
	if t.Flags&netstack.FlagRST == 0 {
		h.sendRST(p)
	}
}

// sendRST answers a segment with a reset, per RFC 793 sequence rules.
func (h *Host) sendRST(p *netstack.Packet) {
	t := p.TCP
	var r netstack.TCP
	r.SrcPort, r.DstPort = t.DstPort, t.SrcPort
	if t.Flags&netstack.FlagACK != 0 {
		r.Flags = netstack.FlagRST
		r.Seq = t.Ack
	} else {
		r.Flags = netstack.FlagRST | netstack.FlagACK
		r.Ack = t.Seq + segLen(t, len(p.Payload))
	}
	seg := r.Marshal(nil, h.addr, p.IP.Src, nil)
	h.sendIP(p.IP.Src, netstack.ProtoTCP, seg)
}

// segLen is the sequence space consumed by a segment.
func segLen(t *netstack.TCP, payloadLen int) uint32 {
	n := uint32(payloadLen)
	if t.Flags&netstack.FlagSYN != 0 {
		n++
	}
	if t.Flags&netstack.FlagFIN != 0 {
		n++
	}
	return n
}

// seqLEQ compares sequence numbers with wraparound.
func seqLEQ(a, b uint32) bool { return int32(b-a) >= 0 }
func seqLT(a, b uint32) bool  { return int32(b-a) > 0 }

func (c *Conn) handleSegment(t *netstack.TCP, payload []byte) {
	if c.closed {
		return
	}
	c.sndWnd = t.Window

	// RST processing.
	if t.Flags&netstack.FlagRST != 0 {
		if c.state == StateSynSent && t.Flags&netstack.FlagACK != 0 && t.Ack != c.sndNxt {
			return // RST for a different incarnation
		}
		if c.state == StateTimeWait {
			// RFC 1337: a late duplicate of our own traffic can draw an
			// RST from the peer's closed socket; letting it assassinate
			// TIME_WAIT would turn a clean shutdown into a reset.
			return
		}
		c.destroy(ErrConnReset)
		return
	}

	switch c.state {
	case StateSynSent:
		if t.Flags&netstack.FlagSYN == 0 {
			return
		}
		c.irs = t.Seq
		c.rcvNxt = t.Seq + 1
		if t.Flags&netstack.FlagACK != 0 {
			if t.Ack != c.sndNxt {
				c.sendSegment(netstack.FlagRST, t.Ack, 0, nil)
				c.destroy(ErrConnReset)
				return
			}
			c.sndUna = t.Ack
			c.state = StateEstablished
			c.resetRTO()
			c.rtx.Cancel()
			c.sendSegment(netstack.FlagACK, c.sndNxt, c.rcvNxt, nil)
			if c.OnConnect != nil {
				c.OnConnect()
			}
			c.trySend()
		}
		return

	case StateSynRcvd:
		if t.Flags&netstack.FlagACK != 0 && t.Ack == c.sndNxt {
			c.sndUna = t.Ack
			c.state = StateEstablished
			c.resetRTO()
			c.rtx.Cancel()
			if c.acceptFn != nil {
				c.acceptFn(c)
				c.acceptFn = nil
			}
			if c.OnConnect != nil {
				c.OnConnect()
			}
			if c.closed {
				return // app tore the connection down from a callback
			}
			// Flush anything queued before establishment: the handshake
			// ACK sets sndUna == t.Ack, so the ACK-processing block below
			// will not run and data or a FIN queued while in SYN_RCVD
			// (close-before-accept) would otherwise wait for an RTO.
			c.trySend()
			// Fall through to process any data carried on the ACK.
		} else {
			return
		}
	}

	// ACK processing for synchronized states.
	if t.Flags&netstack.FlagACK != 0 && seqLT(c.sndUna, t.Ack) && seqLEQ(t.Ack, c.sndNxt) {
		acked := t.Ack - c.sndUna
		dataAcked := acked
		if c.finSent && t.Ack == c.sndNxt {
			dataAcked-- // FIN consumed one sequence number
		}
		if int(dataAcked) <= len(c.sndBuf) {
			c.sndBuf = c.sndBuf[dataAcked:]
		} else {
			c.sndBuf = nil
		}
		c.sndUna = t.Ack
		c.resetRTO()
		if c.sndUna == c.sndNxt {
			if c.rtx != nil {
				c.rtx.Cancel()
			}
			// Entire send space acknowledged: advance closing states.
			if c.finSent {
				switch c.state {
				case StateFinWait1:
					c.state = StateFinWait2
				case StateClosing:
					c.enterTimeWait()
				case StateLastAck:
					c.destroy(nil)
					return
				}
			}
		} else {
			c.armRetransmit()
		}
		c.trySend()
	}

	// Data and FIN processing.
	c.processData(t, payload)
}

func (c *Conn) processData(t *netstack.TCP, payload []byte) {
	if c.closed {
		return
	}
	seq := t.Seq
	fin := t.Flags&netstack.FlagFIN != 0
	if len(payload) == 0 && !fin {
		return
	}

	if seqLT(c.rcvNxt, seq) {
		// Out of order: stash (keeping the longest run per start) and ack
		// a duplicate. The FIN position is recorded separately so a pure
		// FIN cannot shadow a stashed data segment at the same sequence.
		if len(payload) > 0 {
			if have, ok := c.ooo[seq]; !ok || len(have) < len(payload) {
				c.ooo[seq] = append([]byte(nil), payload...)
			}
		}
		if fin {
			c.oooFin = true
			c.oooFinSeq = seq + uint32(len(payload))
		}
		c.sendSegment(netstack.FlagACK, c.sndNxt, c.rcvNxt, nil)
		return
	}

	// Trim any already-received prefix.
	if seqLT(seq, c.rcvNxt) {
		skip := c.rcvNxt - seq
		if skip >= uint32(len(payload)) {
			payload = nil
		} else {
			payload = payload[skip:]
		}
		seq = c.rcvNxt
		if len(payload) == 0 && !fin {
			// Pure duplicate.
			c.sendSegment(netstack.FlagACK, c.sndNxt, c.rcvNxt, nil)
			return
		}
	}

	if len(payload) > 0 {
		c.deliver(payload)
		if c.closed {
			return // app aborted from callback
		}
		c.drainOOO()
		if c.closed {
			return
		}
	}

	if fin {
		c.handleFIN()
	}
	if !c.closed {
		c.sendSegment(netstack.FlagACK, c.sndNxt, c.rcvNxt, nil)
	}
}

// deliver hands in-order payload to the application and advances rcvNxt.
func (c *Conn) deliver(payload []byte) {
	c.rcvNxt += uint32(len(payload))
	c.BytesIn += uint64(len(payload))
	if c.OnData != nil {
		c.OnData(payload)
	}
}

// drainOOO delivers stashed segments made contiguous by an advance of
// rcvNxt. Because go-back-N retransmits resend from sndUna, stashed runs
// may only partially overlap the delivered stream: each candidate is
// trimmed against rcvNxt and fully-duplicate entries are swept, so
// nothing strands in the map. The candidate with the lowest sequence
// number is always drained first, keeping delivery order independent of
// map iteration order (a determinism requirement). If the drain reaches
// a recorded out-of-order FIN, the FIN is processed immediately instead
// of waiting for the peer's retransmission.
func (c *Conn) drainOOO() {
	for len(c.ooo) > 0 {
		bestSeq, found := uint32(0), false
		for s := range c.ooo {
			if seqLEQ(s, c.rcvNxt) && (!found || seqLT(s, bestSeq)) {
				bestSeq, found = s, true
			}
		}
		if !found {
			return
		}
		seg := c.ooo[bestSeq]
		delete(c.ooo, bestSeq)
		if skip := c.rcvNxt - bestSeq; skip < uint32(len(seg)) {
			c.deliver(seg[skip:])
			if c.closed {
				return
			}
		}
		// else: entirely below rcvNxt — stale duplicate, swept.
	}
	if c.oooFin && c.rcvNxt == c.oooFinSeq {
		c.handleFIN()
	}
}

// handleFIN performs the receive-side FIN transition exactly once:
// consume the sequence number, move the state machine, and signal EOF.
func (c *Conn) handleFIN() {
	if c.finRcvd {
		return
	}
	c.finRcvd = true
	c.oooFin = false
	c.rcvNxt++
	switch c.state {
	case StateEstablished:
		c.state = StateCloseWait
	case StateFinWait1:
		// Our FIN not yet acked and peer FIN arrived: simultaneous close.
		c.state = StateClosing
	case StateFinWait2:
		c.enterTimeWait()
	}
	if c.OnPeerClose != nil {
		c.OnPeerClose()
	}
}

func (c *Conn) enterTimeWait() {
	c.state = StateTimeWait
	if c.rtx != nil {
		c.rtx.Cancel()
	}
	if c.timeWait == nil {
		c.timeWait = c.host.sim.Schedule(timeWaitDuration, func() { c.destroy(nil) })
	}
}
