package host

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/sim"
)

// TestTCPStreamIntegrityUnderImpairment replays the reassembly fixes
// under the chaos knobs that originally exposed them: loss, reordering
// and duplication on the data path plus ACK loss on the return path, so
// go-back-N retransmits resend from a shifted sndUna and produce
// partially-overlapping segments. The stream must arrive byte-exact and
// the connection must close cleanly — before the overlap-trim fix,
// partially-overlapping stashes strand in the ooo map and the transfer
// wedges until retransmission exhaustion.
func TestTCPStreamIntegrityUnderImpairment(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			s := sim.New(seed)
			a := New(s, "client", netstack.MAC{2, 0, 0, 0, 0, 1})
			b := New(s, "server", netstack.MAC{2, 0, 0, 0, 0, 2})
			netsim.Connect(a.NIC(), b.NIC(), time.Millisecond)
			a.ConfigureStatic(netstack.MustParseAddr("10.0.0.1"), 24, 0)
			b.ConfigureStatic(netstack.MustParseAddr("10.0.0.2"), 24, 0)
			a.NIC().Impair(netsim.Impairment{Loss: 0.05, Reorder: 0.3, Dup: 0.2})
			b.NIC().Impair(netsim.Impairment{Loss: 0.1})

			// Odd-sized chunks so retransmit runs never share boundaries
			// with the original transmission.
			var want []byte
			chunk := func(i int) []byte {
				n := 700 + (i*523)%1900
				d := make([]byte, n)
				for j := range d {
					d[j] = byte(i + j)
				}
				return d
			}
			for i := 0; i < 20; i++ {
				want = append(want, chunk(i)...)
			}

			var got []byte
			var serverSawEOF bool
			strandedAtEOF := -1
			b.Listen(80, func(c *Conn) {
				c.OnData = func(d []byte) { got = append(got, d...) }
				c.OnPeerClose = func() {
					serverSawEOF = true
					// At EOF every stashed segment has either been
					// delivered (trimmed) or swept as a stale duplicate;
					// anything left is stranded by the reassembly bug.
					strandedAtEOF = len(c.ooo)
					c.Close()
				}
			})
			var clientClosed, clientClean bool
			c := a.Dial(b.Addr(), 80)
			c.OnConnect = func() {
				for i := 0; i < 20; i++ {
					i := i
					s.Schedule(time.Duration(i)*50*time.Millisecond, func() {
						c.Write(chunk(i))
						if i == 19 {
							c.Close()
						}
					})
				}
			}
			c.OnClose = func(err error) { clientClosed, clientClean = true, err == nil }
			s.RunFor(10 * time.Minute)

			if !bytes.Equal(got, want) {
				t.Fatalf("stream corrupted under impairment: got %d bytes, want %d (first diff at %d)",
					len(got), len(want), firstDiff(got, want))
			}
			if !serverSawEOF {
				t.Fatal("server never saw EOF")
			}
			if strandedAtEOF != 0 {
				t.Fatalf("%d segments stranded in the reassembly stash at EOF", strandedAtEOF)
			}
			if !clientClosed || !clientClean {
				t.Fatalf("client close: closed=%v clean=%v", clientClosed, clientClean)
			}
			if len(a.conns) != 0 || len(b.conns) != 0 {
				t.Fatalf("conn leak: a=%d b=%d", len(a.conns), len(b.conns))
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestTCPTimeWaitIgnoresRST pins the RFC 1337 guard: a late RST (drawn by
// a duplicate of our own traffic hitting the peer's already-closed
// socket) must not assassinate TIME_WAIT and turn a clean shutdown into
// a reset.
func TestTCPTimeWaitIgnoresRST(t *testing.T) {
	s, h, peer := rawSetup(t)
	var conn *Conn
	var closeErr error
	closed := false
	h.Listen(80, func(c *Conn) {
		conn = c
		c.OnPeerClose = func() { c.Close() }
		c.OnClose = func(err error) { closed, closeErr = true, err }
	})
	serverISN, next := rawHandshake(t, s, h, peer, 80)
	// Victim closes first (active closer) so it is the side that ends in
	// TIME_WAIT.
	conn.Close()
	s.RunFor(100 * time.Millisecond)
	fin := peer.lastTCP()
	if fin == nil || fin.TCP.Flags&netstack.FlagFIN == 0 {
		t.Fatal("victim sent no FIN")
	}
	// ACK the FIN and send our own: victim lands in TIME_WAIT.
	peer.send(h.MAC(), h.Addr(), &netstack.TCP{
		SrcPort: 5555, DstPort: 80, Seq: next, Ack: serverISN + 2,
		Flags: netstack.FlagACK | netstack.FlagFIN, Window: 65535,
	}, nil)
	s.RunFor(100 * time.Millisecond)
	if conn.State() != StateTimeWait {
		t.Fatalf("state %v, want TIME_WAIT", conn.State())
	}
	// Late RST must be ignored; the conn waits out TIME_WAIT and closes
	// cleanly.
	peer.send(h.MAC(), h.Addr(), &netstack.TCP{
		SrcPort: 5555, DstPort: 80, Seq: next + 1, Ack: serverISN + 2,
		Flags: netstack.FlagRST | netstack.FlagACK, Window: 65535,
	}, nil)
	s.RunFor(time.Second)
	if conn.State() != StateTimeWait {
		t.Fatalf("RST assassinated TIME_WAIT: state %v", conn.State())
	}
	s.RunFor(time.Minute)
	if !closed || closeErr != nil {
		t.Fatalf("TIME_WAIT did not end cleanly: closed=%v err=%v", closed, closeErr)
	}
}

// TestAllocEphemeralScansFullRange pins the exhaustion fix: with every
// ephemeral port but one occupied, allocEphemeral must find the free one
// no matter where it sits relative to the scan cursor. The pre-fix scan
// gave up after 28000 probes over a 32768-port range and panicked with
// thousands of ports still free.
func TestAllocEphemeralScansFullRange(t *testing.T) {
	s := sim.New(1)
	h := New(s, "h", netstack.MAC{2, 0, 0, 0, 0, 1})
	// Occupy the whole ephemeral range except one port >28000 probes from
	// the initial cursor (32768). Listeners are the cheapest occupancy.
	const free = 62000
	for p := 32768; p < 65536; p++ {
		if p != free {
			h.listeners[uint16(p)] = func(*Conn) {}
		}
	}
	if got := h.allocEphemeral(); got != free {
		t.Fatalf("allocEphemeral = %d, want %d", got, free)
	}
}

// TestAllocEphemeralWraparound: a cursor near the top of the range must
// wrap to 32768 and keep scanning.
func TestAllocEphemeralWraparound(t *testing.T) {
	s := sim.New(1)
	h := New(s, "h", netstack.MAC{2, 0, 0, 0, 0, 1})
	const free = 32800
	for p := 32768; p < 65536; p++ {
		if p != free {
			h.listeners[uint16(p)] = func(*Conn) {}
		}
	}
	h.nextEphem = 65500
	if got := h.allocEphemeral(); got != free {
		t.Fatalf("allocEphemeral after wraparound = %d, want %d", got, free)
	}
	if h.nextEphem < 32768 {
		t.Fatalf("cursor left outside ephemeral range: %d", h.nextEphem)
	}
}

// TestAllocEphemeralTrueExhaustion: only a genuinely full range panics.
func TestAllocEphemeralTrueExhaustion(t *testing.T) {
	s := sim.New(1)
	h := New(s, "h", netstack.MAC{2, 0, 0, 0, 0, 1})
	for p := 32768; p < 65536; p++ {
		h.listeners[uint16(p)] = func(*Conn) {}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on true exhaustion")
		}
	}()
	h.allocEphemeral()
}
