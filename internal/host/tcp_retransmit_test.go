package host

import (
	"errors"
	"testing"
	"time"

	"gq/internal/netstack"
	"gq/internal/sim"
)

// warmARP primes both hosts' ARP caches with a UDP round so subsequent
// loss windows only affect TCP segments, never address resolution.
func warmARP(t *testing.T, s *sim.Simulator, a, b *Host) {
	t.Helper()
	sock, err := a.ListenUDP(40000, nil)
	if err != nil {
		t.Fatal(err)
	}
	heard := false
	if _, err := b.ListenUDP(40001, func(netstack.Addr, uint16, []byte) { heard = true }); err != nil {
		t.Fatal(err)
	}
	sock.SendTo(b.Addr(), 40001, []byte("warm"))
	s.Run()
	if !heard {
		t.Fatal("ARP warm-up ping not delivered")
	}
}

// TestTCPSYNLossRetransmit drops the initial SYN and checks the connection
// still establishes off the 1s retransmission, with the RTO collapsed back
// to its initial value once the handshake completes.
func TestTCPSYNLossRetransmit(t *testing.T) {
	s := sim.New(1)
	a, b := pair(t, s)
	warmARP(t, s, a, b)
	echoServer(b, 80)

	a.NIC().Loss = 1 // swallow the first SYN
	s.Schedule(500*time.Millisecond, func() { a.NIC().Loss = 0 })

	t0 := s.Now()
	var connectedAt time.Duration
	c := a.Dial(b.Addr(), 80)
	c.OnConnect = func() { connectedAt = s.Now() }
	s.RunFor(time.Minute)

	if connectedAt == 0 {
		t.Fatal("never connected after SYN loss")
	}
	if got := connectedAt - t0; got < rtoInitial {
		t.Fatalf("connected %v after dial; first SYN cannot have been lost", got)
	}
	if c.rto != rtoInitial || c.retries != 0 {
		t.Fatalf("RTO not reset after establish: rto=%v retries=%d", c.rto, c.retries)
	}
}

// TestTCPMidStreamLossRecovery drops a data segment on an established
// connection and checks retransmission delivers it and that the ACK
// refills the retry budget.
func TestTCPMidStreamLossRecovery(t *testing.T) {
	s := sim.New(1)
	a, b := pair(t, s)
	warmARP(t, s, a, b)

	var got []byte
	b.Listen(80, func(c *Conn) {
		c.OnData = func(d []byte) { got = append(got, d...) }
	})

	c := a.Dial(b.Addr(), 80)
	c.OnConnect = func() {
		a.NIC().Loss = 1 // the segment written next is dropped
		c.Write([]byte("retransmit me"))
		s.Schedule(500*time.Millisecond, func() { a.NIC().Loss = 0 })
	}
	s.RunFor(time.Minute)

	if string(got) != "retransmit me" {
		t.Fatalf("got %q after mid-stream loss", got)
	}
	if c.rto != rtoInitial || c.retries != 0 {
		t.Fatalf("RTO not reset after ACK progress: rto=%v retries=%d", c.rto, c.retries)
	}
}

// TestTCPFINLossClose drops the FIN and checks the close handshake still
// completes cleanly off the retransmission, leaving no connection state.
func TestTCPFINLossClose(t *testing.T) {
	s := sim.New(1)
	a, b := pair(t, s)
	warmARP(t, s, a, b)
	echoServer(b, 80) // closes when the peer closes

	var closedClean bool
	c := a.Dial(b.Addr(), 80)
	c.OnConnect = func() {
		a.NIC().Loss = 1 // swallow the FIN
		c.Close()
		s.Schedule(500*time.Millisecond, func() { a.NIC().Loss = 0 })
	}
	c.OnClose = func(err error) { closedClean = err == nil }
	s.RunFor(2 * time.Minute) // past retransmission + TIME_WAIT

	if !closedClean {
		t.Fatal("connection did not close cleanly after FIN loss")
	}
	if len(a.conns) != 0 || len(b.conns) != 0 {
		t.Fatalf("conn state leaked after FIN loss: a=%d b=%d", len(a.conns), len(b.conns))
	}
}

// TestTCPRetransmitExhaustion blackholes the link permanently and checks
// the connection dies with ErrTimeout at exactly the time the capped
// exponential backoff schedule predicts: retransmissions at 1, 3, 7, 15
// and 31 seconds after the SYN (intervals 1, 2, 4, 8, 16), then a final
// 16s wait — 47 seconds in all.
func TestTCPRetransmitExhaustion(t *testing.T) {
	s := sim.New(1)
	a, b := pair(t, s)
	warmARP(t, s, a, b)
	a.NIC().Loss = 1 // permanent blackhole

	t0 := s.Now()
	var gotErr error
	var diedAt time.Duration
	c := a.Dial(b.Addr(), 80)
	c.OnClose = func(err error) { gotErr, diedAt = err, s.Now() }
	s.RunFor(time.Minute)

	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want %v", gotErr, ErrTimeout)
	}
	want := 47 * time.Second
	if got := diedAt - t0; got != want {
		t.Fatalf("connection died %v after dial, want exactly %v (1+2+4+8+16+16s backoff)", got, want)
	}
	if c.retries != maxRetransmits+1 {
		t.Fatalf("retries = %d, want %d", c.retries, maxRetransmits+1)
	}
}

// TestTCPBackoffDoublesToCap samples the RTO between retransmissions and
// checks it doubles from the initial value up to rtoMax and then sticks
// there instead of growing unbounded.
func TestTCPBackoffDoublesToCap(t *testing.T) {
	s := sim.New(1)
	a, b := pair(t, s)
	warmARP(t, s, a, b)
	a.NIC().Loss = 1

	c := a.Dial(b.Addr(), 80)
	// Sample just after each scheduled retransmission (at 1, 3, 7, 15, 31s).
	sampleAt := []time.Duration{
		1500 * time.Millisecond,
		3500 * time.Millisecond,
		7500 * time.Millisecond,
		15500 * time.Millisecond,
		31500 * time.Millisecond,
	}
	want := []time.Duration{
		2 * time.Second,
		4 * time.Second,
		8 * time.Second,
		16 * time.Second,
		16 * time.Second, // capped at rtoMax
	}
	var prev time.Duration
	for i, at := range sampleAt {
		s.RunFor(at - prev)
		prev = at
		if c.rto != want[i] {
			t.Fatalf("rto = %v at t+%v, want %v", c.rto, at, want[i])
		}
	}
}
