package host

import (
	"errors"
	"testing"
	"time"

	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/sim"
)

// pair builds two hosts on one VLAN of a switch with static addresses in
// 10.0.0.0/24.
func pair(t *testing.T, s *sim.Simulator) (*Host, *Host) {
	t.Helper()
	sw := netsim.NewSwitch(s, "sw")
	a := New(s, "a", netstack.MAC{2, 0, 0, 0, 0, 1})
	b := New(s, "b", netstack.MAC{2, 0, 0, 0, 0, 2})
	netsim.Connect(sw.AddAccessPort("a", 10), a.NIC(), 0)
	netsim.Connect(sw.AddAccessPort("b", 10), b.NIC(), 0)
	a.ConfigureStatic(netstack.MustParseAddr("10.0.0.1"), 24, 0)
	b.ConfigureStatic(netstack.MustParseAddr("10.0.0.2"), 24, 0)
	return a, b
}

func TestARPResolution(t *testing.T) {
	s := sim.New(1)
	a, b := pair(t, s)
	sock, err := a.ListenUDP(1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	if _, err := b.ListenUDP(2000, func(src netstack.Addr, sp uint16, data []byte) {
		got = data
		if src != a.Addr() || sp != 1000 {
			t.Errorf("src %v:%d", src, sp)
		}
	}); err != nil {
		t.Fatal(err)
	}
	sock.SendTo(b.Addr(), 2000, []byte("ping"))
	s.Run()
	if string(got) != "ping" {
		t.Fatalf("got %q", got)
	}
	// ARP cache should now be warm in both directions (b learned a from the
	// request, a learned b from the reply).
	if _, ok := a.arpCache[b.Addr()]; !ok {
		t.Error("a did not cache b's MAC")
	}
	if _, ok := b.arpCache[a.Addr()]; !ok {
		t.Error("b did not cache a's MAC")
	}
}

func TestARPUnresolvableDrops(t *testing.T) {
	s := sim.New(1)
	a, _ := pair(t, s)
	sock, _ := a.ListenUDP(1000, nil)
	sock.SendTo(netstack.MustParseAddr("10.0.0.99"), 7, []byte("x"))
	s.Run()
	if len(a.arpPending) != 0 || len(a.arpRetry) != 0 {
		t.Error("pending ARP state not cleaned up after retries exhausted")
	}
	// Retries happen at 1s intervals; total time should be ~3s.
	if s.Now() < 2*time.Second || s.Now() > 5*time.Second {
		t.Errorf("ARP retry schedule ran until %v", s.Now())
	}
}

func TestUDPBroadcast(t *testing.T) {
	s := sim.New(1)
	a, b := pair(t, s)
	sock, _ := a.ListenUDP(68, nil)
	var heard bool
	b.ListenUDP(67, func(_ netstack.Addr, _ uint16, data []byte) { heard = string(data) == "discover" })
	sock.SendTo(netstack.Addr(0xffffffff), 67, []byte("discover"))
	s.Run()
	if !heard {
		t.Fatal("broadcast datagram not delivered")
	}
}

func TestUDPPortConflict(t *testing.T) {
	s := sim.New(1)
	a, _ := pair(t, s)
	if _, err := a.ListenUDP(53, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ListenUDP(53, nil); err == nil {
		t.Fatal("duplicate bind allowed")
	}
}

// echoServer makes b echo everything it receives on port.
func echoServer(b *Host, port uint16) {
	b.Listen(port, func(c *Conn) {
		c.OnData = func(data []byte) { c.Write(data) }
		c.OnPeerClose = func() { c.Close() }
	})
}

func TestTCPConnectEchoClose(t *testing.T) {
	s := sim.New(1)
	a, b := pair(t, s)
	echoServer(b, 80)

	var got []byte
	var connected, closedClean bool
	c := a.Dial(b.Addr(), 80)
	c.OnConnect = func() { connected = true; c.Write([]byte("hello containment")) }
	c.OnData = func(d []byte) {
		got = append(got, d...)
		if len(got) == len("hello containment") {
			c.Close()
		}
	}
	c.OnClose = func(err error) { closedClean = err == nil }
	s.Run()

	if !connected {
		t.Fatal("never connected")
	}
	if string(got) != "hello containment" {
		t.Fatalf("echo got %q", got)
	}
	if !closedClean {
		t.Fatal("connection did not close cleanly")
	}
	if len(a.conns) != 0 {
		t.Errorf("client conns leaked: %d", len(a.conns))
	}
	// Server side may sit in TIME_WAIT briefly; run past it.
	s.RunFor(time.Minute)
	if len(b.conns) != 0 {
		t.Errorf("server conns leaked: %d", len(b.conns))
	}
}

func TestTCPLargeTransfer(t *testing.T) {
	s := sim.New(1)
	a, b := pair(t, s)

	// b counts received bytes.
	var received int
	b.Listen(9000, func(c *Conn) {
		c.OnData = func(d []byte) { received += len(d) }
		c.OnPeerClose = func() { c.Close() }
	})

	const total = 1 << 20 // 1 MiB, hundreds of segments
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i)
	}
	c := a.Dial(b.Addr(), 9000)
	c.OnConnect = func() { c.Write(payload); c.Close() }
	s.Run()
	if received != total {
		t.Fatalf("received %d of %d bytes", received, total)
	}
}

func TestTCPLossRecovery(t *testing.T) {
	s := sim.New(3)
	sw := netsim.NewSwitch(s, "sw")
	a := New(s, "a", netstack.MAC{2, 0, 0, 0, 0, 1})
	b := New(s, "b", netstack.MAC{2, 0, 0, 0, 0, 2})
	ap := sw.AddAccessPort("a", 10)
	netsim.Connect(ap, a.NIC(), 0)
	netsim.Connect(sw.AddAccessPort("b", 10), b.NIC(), 0)
	a.ConfigureStatic(netstack.MustParseAddr("10.0.0.1"), 24, 0)
	b.ConfigureStatic(netstack.MustParseAddr("10.0.0.2"), 24, 0)

	var received int
	b.Listen(80, func(c *Conn) {
		c.OnData = func(d []byte) { received += len(d) }
	})

	c := a.Dial(b.Addr(), 80)
	payload := make([]byte, 64*1024)
	c.OnConnect = func() {
		// Start dropping 20% of client->switch frames after the handshake.
		a.NIC().Loss = 0.2
		c.Write(payload)
	}
	s.RunFor(5 * time.Minute)
	if received != len(payload) {
		t.Fatalf("received %d of %d bytes under loss", received, len(payload))
	}
}

func TestTCPConnectionRefused(t *testing.T) {
	s := sim.New(1)
	a, b := pair(t, s)
	var gotErr error
	c := a.Dial(b.Addr(), 81) // nothing listening
	c.OnClose = func(err error) { gotErr = err }
	s.Run()
	if !errors.Is(gotErr, ErrConnReset) {
		t.Fatalf("err = %v, want reset", gotErr)
	}
}

func TestTCPTimeout(t *testing.T) {
	s := sim.New(1)
	a, _ := pair(t, s)
	var gotErr error
	// Address that resolves via ARP? It won't; ARP fails first and the SYN
	// is simply never delivered, so retransmissions exhaust.
	c := a.Dial(netstack.MustParseAddr("10.0.0.77"), 80)
	c.OnClose = func(err error) { gotErr = err }
	s.RunFor(time.Minute)
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", gotErr)
	}
}

func TestTCPAbortSendsRST(t *testing.T) {
	s := sim.New(1)
	a, b := pair(t, s)
	var serverErr error
	b.Listen(80, func(c *Conn) {
		c.OnClose = func(err error) { serverErr = err }
	})
	c := a.Dial(b.Addr(), 80)
	c.OnConnect = func() { c.Abort() }
	s.RunFor(time.Minute)
	if !errors.Is(serverErr, ErrConnReset) {
		t.Fatalf("server err = %v, want reset", serverErr)
	}
}

func TestTCPServerInitiatedClose(t *testing.T) {
	s := sim.New(1)
	a, b := pair(t, s)
	b.Listen(25, func(c *Conn) {
		c.Write([]byte("220 banner\r\n"))
		c.Close()
	})
	var got []byte
	var eof, closed bool
	c := a.Dial(b.Addr(), 25)
	c.OnData = func(d []byte) { got = append(got, d...) }
	c.OnPeerClose = func() { eof = true; c.Close() }
	c.OnClose = func(err error) { closed = err == nil }
	s.RunFor(time.Minute)
	if string(got) != "220 banner\r\n" || !eof || !closed {
		t.Fatalf("got=%q eof=%v closed=%v", got, eof, closed)
	}
}

func TestTCPDataWithDialPipelined(t *testing.T) {
	// Write before OnConnect: data must be queued and flushed after the
	// handshake completes.
	s := sim.New(1)
	a, b := pair(t, s)
	var got []byte
	b.Listen(80, func(c *Conn) {
		c.OnData = func(d []byte) { got = append(got, d...) }
	})
	c := a.Dial(b.Addr(), 80)
	c.Write([]byte("early"))
	s.RunFor(time.Minute)
	if string(got) != "early" {
		t.Fatalf("got %q", got)
	}
}

func TestTCPResetDuringTransfer(t *testing.T) {
	s := sim.New(1)
	a, b := pair(t, s)
	var clientErr error
	b.Listen(80, func(c *Conn) {
		c.OnData = func(d []byte) { c.Abort() }
	})
	c := a.Dial(b.Addr(), 80)
	c.OnConnect = func() { c.Write([]byte("x")) }
	c.OnClose = func(err error) { clientErr = err }
	s.RunFor(time.Minute)
	if !errors.Is(clientErr, ErrConnReset) {
		t.Fatalf("client err = %v", clientErr)
	}
}

func TestHostResetClearsState(t *testing.T) {
	s := sim.New(1)
	a, b := pair(t, s)
	echoServer(b, 80)
	c := a.Dial(b.Addr(), 80)
	var closed bool
	c.OnClose = func(err error) { closed = true }
	s.RunFor(time.Second * 2)
	a.Reset()
	if !closed {
		t.Error("Reset did not close connections")
	}
	if a.Addr() != 0 || len(a.conns) != 0 || len(a.listeners) != 0 {
		t.Error("Reset left state behind")
	}
	s.RunFor(time.Minute) // b's half times out eventually; no panics
}

func TestEphemeralPortAllocation(t *testing.T) {
	s := sim.New(1)
	a, b := pair(t, s)
	echoServer(b, 80)
	seen := map[uint16]bool{}
	for i := 0; i < 100; i++ {
		c := a.Dial(b.Addr(), 80)
		if seen[c.LocalPort()] {
			t.Fatalf("ephemeral port %d reused while in use", c.LocalPort())
		}
		seen[c.LocalPort()] = true
	}
}

func TestShutdownStopsTraffic(t *testing.T) {
	s := sim.New(1)
	a, b := pair(t, s)
	var heard bool
	b.ListenUDP(5, func(netstack.Addr, uint16, []byte) { heard = true })
	sock, _ := a.ListenUDP(6, nil)
	sock.SendTo(b.Addr(), 5, []byte("pre"))
	s.Run()
	if !heard {
		t.Fatal("setup failed")
	}
	heard = false
	b.Shutdown()
	sock.SendTo(b.Addr(), 5, []byte("post"))
	s.Run()
	if heard {
		t.Fatal("shut-down host processed a datagram")
	}
}

func TestTCPStateStrings(t *testing.T) {
	if StateEstablished.String() != "ESTABLISHED" || StateTimeWait.String() != "TIME_WAIT" {
		t.Error("state names wrong")
	}
}
