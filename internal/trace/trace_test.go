package trace

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"gq/internal/netstack"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ts := time.Date(2011, 11, 2, 12, 0, 0, 123456000, time.UTC)
	frames := [][]byte{
		[]byte("frame-one"),
		[]byte("frame-two-longer"),
	}
	for i, f := range frames {
		if err := w.WritePacket(ts.Add(time.Duration(i)*time.Second), f); err != nil {
			t.Fatal(err)
		}
	}
	if w.Packets != 2 {
		t.Fatalf("packets %d", w.Packets)
	}
	if want := uint64(len(frames[0]) + len(frames[1])); w.Bytes != want {
		t.Fatalf("bytes %d want %d", w.Bytes, want)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if !bytes.Equal(recs[0].Frame, frames[0]) || !bytes.Equal(recs[1].Frame, frames[1]) {
		t.Fatal("frames corrupted")
	}
	if !recs[0].Time.Equal(ts.Truncate(time.Microsecond)) {
		t.Fatalf("timestamp %v want %v", recs[0].Time, ts)
	}
	if recs[1].OrigLen != len(frames[1]) {
		t.Fatalf("orig len %d", recs[1].OrigLen)
	}
}

func TestHeaderOnlyOnce(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteHeader()
	w.WriteHeader()
	w.WritePacket(time.Unix(0, 0), []byte("x"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 24+16+1 {
		t.Fatalf("stream length %d", buf.Len())
	}
}

func TestNanoRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewNanoWriter(&buf)
	ts := time.Date(2011, 11, 2, 12, 0, 0, 123456789, time.UTC)
	if err := w.WritePacket(ts, []byte("nanoframe")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	if !recs[0].Time.Equal(ts) {
		t.Fatalf("timestamp %v want %v (nanosecond precision lost)", recs[0].Time, ts)
	}
}

func TestFlushEmptyTraceIsValidPcap(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("%d records in empty trace", len(recs))
	}
}

func TestBytesCountsOriginalLength(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	big := make([]byte, pcapSnaplen+500)
	if err := w.WritePacket(time.Unix(0, 0), big); err != nil {
		t.Fatal(err)
	}
	if w.Bytes != uint64(len(big)) {
		t.Fatalf("Bytes %d want original length %d", w.Bytes, len(big))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs[0].Frame) != pcapSnaplen || recs[0].OrigLen != len(big) {
		t.Fatalf("capture %d orig %d", len(recs[0].Frame), recs[0].OrigLen)
	}
}

func TestReadRejectsJunk(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a pcap"))); err == nil {
		t.Fatal("junk accepted")
	}
	var hdr [24]byte
	hdr[0] = 0xd4 // wrong endianness magic
	if _, err := Read(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestRealFrameRoundTrip(t *testing.T) {
	p := &netstack.Packet{
		Eth: netstack.Ethernet{
			Dst: netstack.MAC{2, 0, 0, 0, 0, 1}, Src: netstack.MAC{2, 0, 0, 0, 0, 2},
			VLAN: 16, EtherType: netstack.EtherTypeIPv4,
		},
		IP:      &netstack.IPv4{TTL: 64, Protocol: netstack.ProtoTCP, Src: 1, Dst: 2},
		TCP:     &netstack.TCP{SrcPort: 1234, DstPort: 80, Flags: netstack.FlagSYN},
		Payload: nil,
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WritePacket(time.Unix(100, 0), p.Marshal())
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q, err := netstack.ParseFrame(recs[0].Frame)
	if err != nil {
		t.Fatal(err)
	}
	if q.Eth.VLAN != 16 || q.TCP == nil || q.TCP.DstPort != 80 {
		t.Fatalf("decoded %+v", q)
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(payloads [][]byte, secs []uint32) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteHeader(); err != nil {
			return false
		}
		n := len(payloads)
		if len(secs) < n {
			n = len(secs)
		}
		for i := 0; i < n; i++ {
			if err := w.WritePacket(time.Unix(int64(secs[i]), 0), payloads[i]); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		recs, err := Read(&buf)
		if err != nil || len(recs) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(recs[i].Frame, payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
