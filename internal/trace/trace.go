// Package trace implements GQ's two-pronged packet trace recording (§5.6):
// per-subfarm recording from the inmate network's perspective (with
// unroutable internal addresses, giving some immediate anonymity for data
// sharing), and system-wide recording at the upstream interface. Traces are
// written in libpcap format — classic microsecond or nanosecond-precision —
// so standard tooling can read them.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Pcap file constants.
const (
	pcapMagic = 0xa1b2c3d4
	// pcapMagicNano marks nanosecond-resolution timestamps (the farm's
	// virtual clock is nanosecond-granular, so sub-microsecond event spacing
	// survives only in this mode).
	pcapMagicNano = 0xa1b23c4d
	pcapVMajor    = 2
	pcapVMinor    = 4
	pcapSnaplen   = 65535
	// LinkTypeEthernet is DLT_EN10MB.
	LinkTypeEthernet = 1
)

// Writer emits a pcap stream. Output is buffered: call Flush (or Close)
// before handing the underlying file to a reader.
type Writer struct {
	w       *bufio.Writer
	nano    bool
	started bool

	// Packets counts records written; Bytes counts original on-wire frame
	// bytes (not snaplen-capped capture bytes), matching what interface
	// counters would have seen.
	Packets uint64
	Bytes   uint64
}

// NewWriter wraps w with a classic (microsecond-timestamp) pcap writer; the
// file header is emitted lazily on first packet (or explicitly via
// WriteHeader).
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// NewNanoWriter wraps w with a nanosecond-precision pcap writer (magic
// 0xa1b23c4d).
func NewNanoWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w), nano: true} }

// WriteHeader emits the pcap global header.
func (t *Writer) WriteHeader() error {
	if t.started {
		return nil
	}
	t.started = true
	magic := uint32(pcapMagic)
	if t.nano {
		magic = pcapMagicNano
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVMinor)
	// thiszone, sigfigs zero.
	binary.LittleEndian.PutUint32(hdr[16:20], pcapSnaplen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	_, err := t.w.Write(hdr[:])
	return err
}

// WritePacket records one frame captured at absolute time ts.
func (t *Writer) WritePacket(ts time.Time, frame []byte) error {
	if err := t.WriteHeader(); err != nil {
		return err
	}
	capped := frame
	if len(capped) > pcapSnaplen {
		capped = capped[:pcapSnaplen]
	}
	subsec := uint32(ts.Nanosecond())
	if !t.nano {
		subsec /= 1000
	}
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(rec[4:8], subsec)
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(capped)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	if _, err := t.w.Write(rec[:]); err != nil {
		return err
	}
	if _, err := t.w.Write(capped); err != nil {
		return err
	}
	t.Packets++
	t.Bytes += uint64(len(frame))
	return nil
}

// Flush drains buffered records to the underlying writer.
func (t *Writer) Flush() error {
	if !t.started {
		// An empty trace should still be a valid pcap file.
		if err := t.WriteHeader(); err != nil {
			return err
		}
	}
	return t.w.Flush()
}

// Close flushes the stream and, if the underlying writer is an io.Closer,
// closes it too.
func (t *Writer) Close() error {
	if err := t.Flush(); err != nil {
		return err
	}
	return nil
}

// Record is one packet read back from a pcap stream.
type Record struct {
	Time  time.Time
	Frame []byte
	// OrigLen is the original on-wire length (>= len(Frame) if truncated).
	OrigLen int
}

// Read parses a pcap stream produced by Writer (little-endian, microsecond
// or nanosecond timestamps).
func Read(r io.Reader) ([]Record, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading global header: %w", err)
	}
	var subsecScale int64
	switch binary.LittleEndian.Uint32(hdr[0:4]) {
	case pcapMagic:
		subsecScale = 1000 // microseconds on the wire
	case pcapMagicNano:
		subsecScale = 1
	default:
		return nil, fmt.Errorf("trace: bad magic %#x", binary.LittleEndian.Uint32(hdr[0:4]))
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != LinkTypeEthernet {
		return nil, fmt.Errorf("trace: unsupported link type %d", lt)
	}
	var out []Record
	for {
		var rec [16]byte
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("trace: reading record header: %w", err)
		}
		sec := binary.LittleEndian.Uint32(rec[0:4])
		subsec := binary.LittleEndian.Uint32(rec[4:8])
		incl := binary.LittleEndian.Uint32(rec[8:12])
		orig := binary.LittleEndian.Uint32(rec[12:16])
		if incl > pcapSnaplen {
			return nil, fmt.Errorf("trace: record length %d exceeds snaplen", incl)
		}
		frame := make([]byte, incl)
		if _, err := io.ReadFull(r, frame); err != nil {
			return nil, fmt.Errorf("trace: reading packet body: %w", err)
		}
		out = append(out, Record{
			Time:    time.Unix(int64(sec), int64(subsec)*subsecScale).UTC(),
			Frame:   frame,
			OrigLen: int(orig),
		})
	}
}
